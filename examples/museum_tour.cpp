// Museum tour: the poster's flagship collaborative scenario. A group of
// visitors walks through a gallery pointing their phones at exhibits; the
// same artworks are recognized again and again across the group, so cache
// entries computed by one phone save DNN runs on every other phone.
//
//   $ ./museum_tour [visitors] [minutes]
//
// Compares the group's experience with and without P2P sharing, and prints
// the per-device breakdown.

#include <cstdio>
#include <cstdlib>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace {

apx::ScenarioConfig museum(int visitors, double minutes) {
  apx::ScenarioConfig cfg = apx::default_scenario();
  cfg.num_devices = visitors;
  cfg.duration = static_cast<apx::SimDuration>(minutes * 60) * apx::kSecond;
  cfg.seed = 2026;
  // A gallery: a modest set of exhibits, strongly popular highlights,
  // visitors who stop in front of works (stationary) and stroll between
  // them (minor/major motion).
  cfg.scene.num_classes = 48;
  cfg.zipf_s = 1.1;
  cfg.p_stationary = 0.55;
  cfg.p_minor = 0.35;
  cfg.p_major = 0.10;
  cfg.co_located = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const int visitors = argc > 1 ? std::atoi(argv[1]) : 6;
  const double minutes = argc > 2 ? std::atof(argv[2]) : 2.0;
  if (visitors < 1 || minutes <= 0) {
    std::fprintf(stderr, "usage: museum_tour [visitors >= 1] [minutes > 0]\n");
    return 1;
  }

  std::printf("Museum tour: %d visitors, %.1f minutes in the gallery\n\n",
              visitors, minutes);

  apx::ScenarioConfig cfg = museum(visitors, minutes);
  cfg.pipeline = apx::make_nocache_config();
  const apx::ExperimentMetrics nocache = apx::run_scenario(cfg);

  cfg.pipeline = apx::make_full_system_config();
  cfg.pipeline.enable_p2p = false;
  const apx::ExperimentMetrics solo = apx::run_scenario(cfg);

  cfg.pipeline.enable_p2p = true;
  apx::ExperimentRunner collaborative{cfg};
  const apx::ExperimentMetrics shared = collaborative.run();

  apx::TextTable table;
  table.header({"config", "mean ms", "p99 ms", "reuse", "accuracy",
                "reduction"});
  auto row = [&](const char* name, const apx::ExperimentMetrics& m) {
    table.row({name, apx::TextTable::num(m.mean_latency_ms()),
               apx::TextTable::num(m.latency_quantile_ms(0.99)),
               apx::TextTable::num(m.reuse_ratio(), 3),
               apx::TextTable::num(m.accuracy(), 3),
               apx::TextTable::num(
                   m.reduction_vs_percent(nocache.mean_latency_ms()), 1) +
                   "%"});
  };
  row("no-cache", nocache);
  row("solo caching", solo);
  row("collaborative", shared);
  std::printf("%s\n", table.render().c_str());

  std::printf("per-visitor experience (collaborative):\n");
  apx::TextTable devices;
  devices.header({"visitor", "frames", "mean ms", "reuse"});
  int id = 0;
  for (const auto& m : collaborative.device_metrics()) {
    devices.row({"#" + std::to_string(id++),
                 std::to_string(m.frames()),
                 apx::TextTable::num(m.mean_latency_ms()),
                 apx::TextTable::num(m.reuse_ratio(), 3)});
  }
  std::printf("%s\n", devices.render().c_str());

  const apx::Counter p2p = collaborative.p2p_counters();
  std::printf("P2P activity: %llu lookups, %llu adverts, %llu entries merged\n",
              static_cast<unsigned long long>(p2p.get("lookup_sent")),
              static_cast<unsigned long long>(p2p.get("advert_sent")),
              static_cast<unsigned long long>(p2p.get("merged")));
  return 0;
}

// Shelf scanner: multi-object recognition with region-level reuse. A fixed
// camera watches a 2x2 display shelf whose slots are restocked
// independently; the app recognizes all four products per frame. Shows the
// vision API (MultiObjectStream, crop_region) and why region granularity
// is the right unit of caching for multi-object scenes.
//
//   $ ./shelf_scanner [minutes]

#include <cstdio>
#include <cstdlib>

#include "src/cache/approx_cache.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/features/extractor.hpp"
#include "src/util/table.hpp"
#include "src/vision/multi_object.hpp"

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 1.0;
  if (minutes <= 0) {
    std::fprintf(stderr, "usage: shelf_scanner [minutes > 0]\n");
    return 1;
  }
  const int frames = static_cast<int>(minutes * 60.0 * 10.0);  // 10 fps

  apx::SceneGenerator::Config world;
  world.num_classes = 64;
  world.seed = 77;
  const apx::SceneGenerator scenes{world};
  const apx::ZipfSampler popularity{64, 0.9};
  apx::MultiObjectStream::Config stream_cfg;
  stream_cfg.slot_change_rate = 0.10;  // a restock every ~10 s per slot
  apx::MultiObjectStream stream{scenes, popularity, stream_cfg, 5};

  const auto extractor = apx::make_cnn_extractor();
  const apx::ModelProfile profile = apx::mobilenet_v2_profile();
  auto model = apx::make_oracle_model(profile, 64);
  apx::Rng rng{9};

  apx::ApproxCacheConfig cache_cfg;
  cache_cfg.capacity = 512;
  cache_cfg.hknn.max_distance = extractor->recommended_max_distance();
  apx::ApproxCache cache{extractor->dim(), cache_cfg,
                         apx::make_utility_policy()};

  std::printf("Shelf scanner: %d frames of a 2x2 shelf, restock every ~10 s "
              "per slot\n\n", frames);

  std::size_t inferences = 0, hits = 0, correct = 0;
  double busy_us = 0.0;
  for (int f = 0; f < frames; ++f) {
    const apx::MultiFrame frame = stream.next();
    busy_us += static_cast<double>(apx::kRegionDetectLatency);
    for (int region = 0; region < apx::MultiFrame::kRegions; ++region) {
      const apx::Label truth =
          frame.true_labels[static_cast<std::size_t>(region)];
      const apx::Image crop = apx::crop_region(frame.image, region);
      busy_us += static_cast<double>(extractor->latency());
      const apx::FeatureVec key = extractor->extract(crop);
      const auto lookup = cache.lookup({.features = key, .now = frame.t});
      busy_us += static_cast<double>(lookup.latency);
      apx::Label answer;
      if (lookup.vote.has_value()) {
        ++hits;
        answer = lookup.vote->label;
      } else {
        ++inferences;
        busy_us +=
            static_cast<double>(apx::sample_profile_latency(profile, rng));
        const apx::Prediction pred = model->infer(crop, truth, rng);
        answer = pred.label;
        cache.insert(key, pred.label, pred.confidence, frame.t);
      }
      if (answer == truth) ++correct;
    }
  }

  const double objects = static_cast<double>(frames) *
                         apx::MultiFrame::kRegions;
  apx::TextTable table;
  table.header({"metric", "value"});
  table.row({"objects recognized", apx::TextTable::num(objects, 0)});
  table.row({"DNN inferences", std::to_string(inferences)});
  table.row({"cache hits",
             std::to_string(hits) + " (" +
                 apx::TextTable::num(100.0 * hits / objects, 1) + "%)"});
  table.row({"accuracy", apx::TextTable::num(correct / objects, 4)});
  table.row({"mean busy time / frame",
             apx::TextTable::num(busy_us / 1000.0 / frames, 2) + " ms"});
  table.row({"vs always-infer",
             apx::TextTable::num(
                 4.0 * apx::to_ms(profile.mean_latency), 1) +
                 " ms/frame"});
  std::printf("%s", table.render().c_str());
  std::printf("\nEach restocked slot costs one inference; the other three "
              "regions keep hitting the cache.\n");
  return 0;
}

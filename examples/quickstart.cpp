// Quickstart: run the full approximate-caching system on a 4-device
// co-located scenario and compare it against the no-cache baseline.
//
//   $ ./quickstart [seed]
//
// This is the 60-second tour of the public API: configure a scenario, run
// it, read the pooled metrics.

#include <cstdio>
#include <cstdlib>

#include "src/obs/report.hpp"
#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  apx::ScenarioConfig scenario = apx::default_scenario();
  scenario.seed = seed;
  scenario.duration = 60 * apx::kSecond;
  scenario.num_devices = 4;

  std::printf("ApproxCache quickstart: %d devices, %.0f s of 10 fps video, "
              "%d object classes (seed %llu)\n\n",
              scenario.num_devices, apx::to_seconds(scenario.duration),
              scenario.scene.num_classes,
              static_cast<unsigned long long>(seed));

  // Baseline: every frame runs the DNN.
  scenario.pipeline = apx::make_nocache_config();
  const apx::ExperimentMetrics baseline = apx::run_scenario(scenario);

  // Full system: IMU gate + temporal reuse + local approximate cache + P2P.
  scenario.pipeline = apx::make_full_system_config();
  apx::ExperimentRunner runner{scenario};
  const apx::ExperimentMetrics full = runner.run();

  apx::TextTable table;
  table.header({"config", "mean ms", "p95 ms", "accuracy", "reuse", "mJ/frame"});
  auto row = [&table](const char* name, const apx::ExperimentMetrics& m) {
    table.row({name, apx::TextTable::num(m.mean_latency_ms()),
               apx::TextTable::num(m.latency_quantile_ms(0.95)),
               apx::TextTable::num(m.accuracy(), 3),
               apx::TextTable::num(m.reuse_ratio(), 3),
               apx::TextTable::num(m.mean_total_energy_mj(), 1)});
  };
  row("no-cache", baseline);
  row("full-system", full);
  std::printf("%s\n", table.render().c_str());

  std::printf("latency reduction: %.1f%%  (accuracy delta: %+.3f)\n",
              full.reduction_vs_percent(baseline.mean_latency_ms()),
              full.accuracy() - baseline.accuracy());
  std::printf("\nreuse breakdown:\n");
  for (const auto& [source, count] : full.sources().items()) {
    std::printf("  %-13s %6llu  (%.1f%%)\n", source.c_str(),
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(full.frames()));
  }

  // Where the time goes: per-rung latency attribution from the traced
  // pipeline (the observability subsystem, src/obs/).
  const std::string rungs = apx::per_rung_summary(runner.metrics());
  if (!rungs.empty()) {
    std::printf("\nper-rung breakdown (full-system run):\n%s", rungs.c_str());
  }
  return 0;
}

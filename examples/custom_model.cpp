// Custom model integration: shows the two extension points a downstream
// user touches — plugging a custom RecognitionModel cost profile into a
// scenario, and driving the real (non-oracle) CentroidClassifier through
// the library's image -> feature -> cache -> decision path directly,
// without the scenario runner.
//
//   $ ./custom_model

#include <cstdio>

#include "src/cache/approx_cache.hpp"
#include "src/dnn/centroid.hpp"
#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace {

// Part 1: a hypothetical NPU-accelerated model profile.
apx::ModelProfile my_npu_model() {
  apx::ModelProfile p;
  p.name = "my-npu-model";
  p.mean_latency = 18 * apx::kMillisecond;  // fast NPU inference...
  p.latency_jitter = 2 * apx::kMillisecond;
  p.energy_mj = 45.0;                       // ...and frugal
  p.top1_accuracy = 0.94;
  return p;
}

void scenario_with_custom_profile() {
  std::printf("== scenario with a custom model profile ==\n");
  apx::ScenarioConfig cfg = apx::default_scenario();
  cfg.duration = 30 * apx::kSecond;
  cfg.model = my_npu_model();

  cfg.pipeline = apx::make_nocache_config();
  const apx::ExperimentMetrics base = apx::run_scenario(cfg);
  cfg.pipeline = apx::make_full_system_config();
  const apx::ExperimentMetrics full = apx::run_scenario(cfg);
  std::printf("%s: %.1f ms -> %.1f ms (%.1f%% reduction) — reuse still pays "
              "even for a fast NPU model\n\n",
              cfg.model.name.c_str(), base.mean_latency_ms(),
              full.mean_latency_ms(),
              full.reduction_vs_percent(base.mean_latency_ms()));
}

// Part 2: drive the cache directly with a real classifier, no runner.
void direct_api_usage() {
  std::printf("== direct API: real classifier + approximate cache ==\n");
  apx::SceneGenerator::Config world;
  world.num_classes = 12;
  world.seed = 9;
  const apx::SceneGenerator scenes{world};

  // Train the real classifier; share its CNN embeddings as cache keys.
  apx::CentroidClassifier classifier{scenes, /*samples_per_class=*/8,
                                     my_npu_model()};
  apx::ApproxCacheConfig cache_cfg;
  cache_cfg.capacity = 256;
  cache_cfg.hknn.max_distance = 0.5f;
  apx::ApproxCache cache{64, cache_cfg, apx::make_utility_policy()};

  apx::Rng rng{17};
  int inferences = 0, hits = 0, correct = 0;
  const int frames = 300;
  for (int i = 0; i < frames; ++i) {
    const int truth = static_cast<int>(rng.uniform_u64(12));
    apx::ViewParams view;
    view.dx = static_cast<float>(rng.normal(0.0, 0.25));
    view.noise_sigma = 0.02f;
    view.noise_seed = rng.next_u64();
    const apx::Image frame = scenes.render(truth, view);

    const apx::FeatureVec key = classifier.embed(frame);
    const apx::SimTime now = i * 100 * apx::kMillisecond;
    const auto lookup = cache.lookup({.features = key, .now = now});
    int label;
    if (lookup.vote.has_value()) {
      ++hits;
      label = lookup.vote->label;
    } else {
      ++inferences;
      const apx::Prediction pred = classifier.infer(frame, truth, rng);
      label = pred.label;
      cache.insert(key, pred.label, pred.confidence, now);
    }
    if (label == truth) ++correct;
  }

  apx::TextTable t;
  t.header({"frames", "inferences", "cache hits", "hit rate", "accuracy"});
  t.row({std::to_string(frames), std::to_string(inferences),
         std::to_string(hits),
         apx::TextTable::num(100.0 * hits / frames, 1) + "%",
         apx::TextTable::num(static_cast<double>(correct) / frames, 3)});
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  scenario_with_custom_profile();
  direct_api_usage();
  return 0;
}

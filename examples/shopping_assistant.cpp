// Shopping assistant: a single phone scanning supermarket shelves with
// live video — no peers, so all savings come from the IMU fast path,
// temporal locality, and the local approximate cache. Demonstrates the
// accuracy/latency trade-off exposed by the H-kNN similarity threshold.
//
//   $ ./shopping_assistant [minutes]

#include <cstdio>
#include <cstdlib>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace {

apx::ScenarioConfig shop(double minutes) {
  apx::ScenarioConfig cfg = apx::default_scenario();
  cfg.num_devices = 1;
  cfg.co_located = false;
  cfg.duration = static_cast<apx::SimDuration>(minutes * 60) * apx::kSecond;
  cfg.seed = 404;
  // A big product catalogue with confusable variants (same brand, different
  // flavour) — the regime where careless reuse costs accuracy.
  cfg.scene.num_classes = 256;
  cfg.scene.class_confusion = 0.35f;
  cfg.scene.group_size = 4;
  cfg.zipf_s = 0.9;
  // Shopper behaviour: glance, move, glance.
  cfg.p_stationary = 0.35;
  cfg.p_minor = 0.45;
  cfg.p_major = 0.20;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::atof(argv[1]) : 2.0;
  if (minutes <= 0) {
    std::fprintf(stderr, "usage: shopping_assistant [minutes > 0]\n");
    return 1;
  }

  std::printf("Shopping assistant: single device, %.1f minutes, 256 products "
              "with confusable variants\n\n", minutes);

  apx::ScenarioConfig cfg = shop(minutes);
  cfg.pipeline = apx::make_nocache_config();
  const apx::ExperimentMetrics baseline = apx::run_scenario(cfg);
  std::printf("baseline (always infer): %.1f ms mean, accuracy %.3f\n\n",
              baseline.mean_latency_ms(), baseline.accuracy());

  apx::TextTable table;
  table.header({"similarity threshold", "mean ms", "reuse", "accuracy",
                "accuracy delta"});
  for (const float threshold : {0.02f, 0.04f, 0.08f, 0.15f, 0.50f}) {
    cfg.auto_threshold = false;  // sweeping the threshold by hand
    cfg.pipeline = apx::make_approx_video_config();  // IMU + video + cache
    cfg.pipeline.cache.hknn.max_distance = threshold;
    const apx::ExperimentMetrics m = apx::run_scenario(cfg);
    table.row({apx::TextTable::num(threshold, 2),
               apx::TextTable::num(m.mean_latency_ms()),
               apx::TextTable::num(m.reuse_ratio(), 3),
               apx::TextTable::num(m.accuracy(), 3),
               apx::TextTable::num(m.accuracy() - baseline.accuracy(), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nLoose thresholds buy latency with accuracy; H-kNN keeps the "
              "loss graceful rather than catastrophic.\n");
  return 0;
}

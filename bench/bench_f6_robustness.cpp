// F6 (Figure 6) — robustness of the collaborative layer: radio loss sweep,
// in/out-of-range churn sweep, and two fault-injection exhibits (burst loss
// at increasing levels; a partition that heals mid-run). Expected shape:
// graceful degradation — higher loss and faster churn shrink the P2P
// contribution toward the solo-caching level, but never below it (the
// system falls back to local reuse + inference, lost lookups cost only the
// bounded timeout, and sustained timeouts trip the backoff so a cut-off
// device stops paying even that).

#include "bench/common.hpp"

#include "src/net/faults.hpp"
#include "src/sim/trace.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F6", "robustness to radio loss and range churn",
         "degrades toward (never below) the solo-caching level");

  // Collaboration-dependent workload (the F1/F8 photo app): every frame is
  // a fresh object, so reuse comes from recognition history and the P2P
  // contribution is large enough that losing it is visible.
  auto churny = [] {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.scene.num_classes = 192;
    cfg.zipf_s = 1.0;
    cfg.duration = 120 * kSecond;
    cfg.video.fps = 0.5;
    cfg.video.change_rate_stationary = 2.0;
    cfg.video.change_rate_minor = 2.0;
    cfg.video.change_rate_major = 2.0;
    cfg.video.view_pan_sigma = 0.15f;
    cfg.video.view_zoom_min = 0.95f;
    cfg.video.view_zoom_max = 1.15f;
    cfg.model = resnet50_profile();
    cfg.num_devices = 6;
    return cfg;
  };

  {
    ScenarioConfig solo = churny();
    solo.pipeline = make_full_system_config();
    solo.pipeline.enable_p2p = false;
    const ExperimentMetrics m = run_seeds(solo, 2);
    std::printf("solo-caching reference: %.2f ms, reuse %.3f\n\n",
                m.mean_latency_ms(), m.reuse_ratio());
  }

  std::printf("--- radio loss sweep ---\n");
  TextTable loss_table;
  loss_table.header({"loss prob", "mean ms", "reuse", "merged", "timeouts?"});
  for (const double loss : {0.0, 0.05, 0.15, 0.30, 0.60}) {
    ScenarioConfig cfg = churny();
    cfg.medium.loss_prob = loss;
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4000;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    const Counter p2p = runner.p2p_counters();
    // Lookups whose responses were all lost pay the timeout.
    const std::uint64_t sent = p2p.get("lookup_sent");
    const std::uint64_t resp = p2p.get("response_recv");
    loss_table.row({TextTable::num(loss, 2),
                    TextTable::num(m.mean_latency_ms()),
                    TextTable::num(m.reuse_ratio(), 3),
                    std::to_string(p2p.get("merged")),
                    std::to_string(sent) + " lookups / " +
                        std::to_string(resp) + " responses"});
  }
  std::printf("%s\n", loss_table.render().c_str());

  std::printf("--- range churn sweep ---\n");
  TextTable churn_table;
  churn_table.header({"churn period s", "mean ms", "reuse", "merged"});
  for (const double period : {0.0, 20.0, 8.0, 3.0, 1.0}) {
    ScenarioConfig cfg = churny();
    cfg.churn_period = static_cast<SimDuration>(period * kSecond);
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4001;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    churn_table.row({period == 0.0 ? "none" : TextTable::num(period, 0),
                     TextTable::num(m.mean_latency_ms()),
                     TextTable::num(m.reuse_ratio(), 3),
                     std::to_string(runner.p2p_counters().get("merged"))});
  }
  std::printf("%s\n", churn_table.render().c_str());

  // Bursty loss is harsher than i.i.d. loss at the same rate: a bad-state
  // dwell swallows a whole lookup round (request + every response), so
  // rounds time out instead of thinning. The accuracy column is the
  // headline: it must stay within ~2 points of the 0% row while latency
  // degrades toward (never past) solo.
  std::printf("--- burst loss sweep (Gilbert-Elliott, --faults burst:L) ---\n");
  TextTable burst_table;
  burst_table.header({"burst loss", "mean ms", "accuracy", "reuse",
                      "degraded rounds", "backoff skips"});
  for (const double loss : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    ScenarioConfig cfg = churny();
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4002;
    cfg.faults.burst_loss = loss;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    burst_table.row(
        {TextTable::num(loss, 1), TextTable::num(m.mean_latency_ms()),
         TextTable::num(m.accuracy(), 4), TextTable::num(m.reuse_ratio(), 3),
         std::to_string(runner.metrics().counter_value("p2p/degraded")),
         std::to_string(runner.metrics().counter_value("p2p/backoff_skip"))});
  }
  std::printf("%s\n", burst_table.render().c_str());

  // Partition-heal timeline: the cell shatters at t=40 s and heals at
  // t=80 s. Per-10 s buckets show the three regimes — collaborating, cut
  // off (backoff converges the ladder to standalone latency), and
  // re-collaborating after heal (re-discovery + adverts re-warm the fleet).
  std::printf("--- partition-heal timeline (full partition 40..80 s) ---\n");
  {
    ScenarioConfig cfg = churny();
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4003;
    cfg.record_trace = true;
    cfg.faults.partition = PartitionMode::kFull;
    cfg.faults.partition_start = 40 * kSecond;
    cfg.faults.partition_duration = 40 * kSecond;
    ExperimentRunner runner{cfg};
    runner.run();
    constexpr SimDuration kBucket = 10 * kSecond;
    TextTable timeline;
    timeline.header(
        {"window s", "state", "mean ms", "dnn share", "p2p hits", "frames"});
    for (SimTime lo = 0; lo < cfg.duration; lo += kBucket) {
      double latency_ms_sum = 0.0;
      std::uint64_t frames = 0, p2p_hits = 0, dnn = 0;
      for (const TraceEvent& ev : runner.trace().events()) {
        const SimTime t = ev.result.frame_time;
        if (t < lo || t >= lo + kBucket) continue;
        ++frames;
        latency_ms_sum += static_cast<double>(ev.result.latency) / 1000.0;
        p2p_hits += ev.result.source == ResultSource::kPeerCacheHit ? 1 : 0;
        dnn += ev.result.source == ResultSource::kFullInference ? 1 : 0;
      }
      const bool cut = lo >= cfg.faults.partition_start &&
                       lo < cfg.faults.partition_start +
                                cfg.faults.partition_duration;
      timeline.row(
          {TextTable::num(to_seconds(lo), 0) + "-" +
               TextTable::num(to_seconds(lo + kBucket), 0),
           cut ? "partitioned" : "connected",
           frames == 0 ? "-"
                       : TextTable::num(latency_ms_sum /
                                        static_cast<double>(frames)),
           frames == 0 ? "-"
                       : TextTable::num(static_cast<double>(dnn) /
                                            static_cast<double>(frames),
                                        2),
           std::to_string(p2p_hits), std::to_string(frames)});
    }
    std::printf("%s", timeline.render().c_str());
  }
  return 0;
}

// F6 (Figure 6) — robustness of the collaborative layer: radio loss sweep
// and in/out-of-range churn sweep. Expected shape: graceful degradation —
// higher loss and faster churn shrink the P2P contribution toward the
// solo-caching level, but never below it (the system falls back to local
// reuse + inference, and lost lookups only cost the bounded timeout).

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F6", "robustness to radio loss and range churn",
         "degrades toward (never below) the solo-caching level");

  // Collaboration-dependent workload (the F1/F8 photo app): every frame is
  // a fresh object, so reuse comes from recognition history and the P2P
  // contribution is large enough that losing it is visible.
  auto churny = [] {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.scene.num_classes = 192;
    cfg.zipf_s = 1.0;
    cfg.duration = 120 * kSecond;
    cfg.video.fps = 0.5;
    cfg.video.change_rate_stationary = 2.0;
    cfg.video.change_rate_minor = 2.0;
    cfg.video.change_rate_major = 2.0;
    cfg.video.view_pan_sigma = 0.15f;
    cfg.video.view_zoom_min = 0.95f;
    cfg.video.view_zoom_max = 1.15f;
    cfg.model = resnet50_profile();
    cfg.num_devices = 6;
    return cfg;
  };

  {
    ScenarioConfig solo = churny();
    solo.pipeline = make_full_system_config();
    solo.pipeline.enable_p2p = false;
    const ExperimentMetrics m = run_seeds(solo, 2);
    std::printf("solo-caching reference: %.2f ms, reuse %.3f\n\n",
                m.mean_latency_ms(), m.reuse_ratio());
  }

  std::printf("--- radio loss sweep ---\n");
  TextTable loss_table;
  loss_table.header({"loss prob", "mean ms", "reuse", "merged", "timeouts?"});
  for (const double loss : {0.0, 0.05, 0.15, 0.30, 0.60}) {
    ScenarioConfig cfg = churny();
    cfg.medium.loss_prob = loss;
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4000;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    const Counter p2p = runner.p2p_counters();
    // Lookups whose responses were all lost pay the timeout.
    const std::uint64_t sent = p2p.get("lookup_sent");
    const std::uint64_t resp = p2p.get("response_recv");
    loss_table.row({TextTable::num(loss, 2),
                    TextTable::num(m.mean_latency_ms()),
                    TextTable::num(m.reuse_ratio(), 3),
                    std::to_string(p2p.get("merged")),
                    std::to_string(sent) + " lookups / " +
                        std::to_string(resp) + " responses"});
  }
  std::printf("%s\n", loss_table.render().c_str());

  std::printf("--- range churn sweep ---\n");
  TextTable churn_table;
  churn_table.header({"churn period s", "mean ms", "reuse", "merged"});
  for (const double period : {0.0, 20.0, 8.0, 3.0, 1.0}) {
    ScenarioConfig cfg = churny();
    cfg.churn_period = static_cast<SimDuration>(period * kSecond);
    cfg.pipeline = make_full_system_config();
    cfg.seed = 4001;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    churn_table.row({period == 0.0 ? "none" : TextTable::num(period, 0),
                     TextTable::num(m.mean_latency_ms()),
                     TextTable::num(m.reuse_ratio(), 3),
                     std::to_string(runner.p2p_counters().get("merged"))});
  }
  std::printf("%s", churn_table.render().c_str());
  return 0;
}

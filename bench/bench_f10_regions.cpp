// F10 (Figure 10) — region-level vs whole-frame caching on multi-object
// scenes. Whole-frame caching fails on multi-object scenes in two ways:
// (a) one label cannot describe a mixed scene, and (b) worse, a one-slot
// change moves the pooled whole-frame feature so little that the STALE
// entry still matches — silent wrong reuse. Per-region caching answers
// every object and invalidates exactly the changed region. Expected shape:
// per-region keeps high reuse AND high per-object accuracy as slot churn
// grows; whole-frame accuracy collapses.

// A second experiment shares one region EdgeCacheService between two
// devices running the same per-region workload: cross-device reuse through
// the real sharded, admission-gated, TTL-swept edge backend (direct API —
// the sim-network path is measured by bench_f8_edge).

#include <cstdio>

#include <memory>
#include <vector>

#include "src/cache/approx_cache.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/features/extractor.hpp"
#include "src/util/table.hpp"
#include "src/vision/multi_object.hpp"

namespace {

using namespace apx;

struct Outcome {
  double reuse = 0.0;
  double mean_latency_ms = 0.0;
  double accuracy = 0.0;
};

ApproxCacheConfig region_cache_config() {
  ApproxCacheConfig cfg;
  cfg.capacity = 1024;
  cfg.hknn.max_distance = 0.045f;
  return cfg;
}

ApproxCache make_cache() {
  return ApproxCache{64, region_cache_config(), make_utility_policy()};
}

/// Runs `frames` multi-object frames through cache-or-infer, either one
/// whole-frame decision per frame or one per region.
Outcome run(bool per_region, double slot_change_rate, int frames) {
  SceneGenerator::Config world;
  world.num_classes = 96;
  world.seed = 41;
  const SceneGenerator scenes{world};
  const ZipfSampler popularity{96, 1.0};
  MultiObjectStream::Config stream_cfg;
  stream_cfg.slot_change_rate = slot_change_rate;
  MultiObjectStream stream{scenes, popularity, stream_cfg, 11};

  const auto extractor = make_cnn_extractor();
  const ModelProfile profile = mobilenet_v2_profile();
  auto model = make_oracle_model(profile, 96);
  Rng rng{13};
  auto cache = make_cache();

  std::size_t decisions = 0, hits = 0, correct = 0;
  double total_latency_us = 0.0;
  for (int f = 0; f < frames; ++f) {
    const MultiFrame frame = stream.next();
    double frame_latency =
        static_cast<double>(per_region ? kRegionDetectLatency : 0);
    // Returns the label the cache-or-infer path answered for `img` whose
    // ground truth (for the oracle) is `oracle_truth`.
    auto decide = [&](const Image& img, Label oracle_truth) {
      ++decisions;
      frame_latency += static_cast<double>(extractor->latency());
      const FeatureVec key = extractor->extract(img);
      const auto lookup = cache.lookup({.features = key, .now = frame.t});
      frame_latency += static_cast<double>(lookup.latency);
      if (lookup.vote.has_value()) {
        ++hits;
        return lookup.vote->label;
      }
      frame_latency +=
          static_cast<double>(sample_profile_latency(profile, rng));
      const Prediction pred = model->infer(img, oracle_truth, rng);
      cache.insert(key, pred.label, pred.confidence, frame.t);
      return pred.label;
    };
    if (per_region) {
      for (int region = 0; region < MultiFrame::kRegions; ++region) {
        const Label truth =
            frame.true_labels[static_cast<std::size_t>(region)];
        if (decide(crop_region(frame.image, region), truth) == truth) {
          ++correct;
        }
      }
    } else {
      // A whole-frame answer is one label; each of the 4 objects counts
      // individually, so a mixed scene can score at most 1 of 4 even when
      // the dominant label is right — the structural ceiling of
      // whole-frame recognition. The oracle is consulted with the
      // dominant (first) object as the nominal truth.
      const Label answer = decide(frame.image, frame.true_labels[0]);
      for (const Label truth : frame.true_labels) {
        if (answer == truth) ++correct;
      }
    }
    total_latency_us += frame_latency;
  }
  Outcome out;
  out.reuse = static_cast<double>(hits) / static_cast<double>(decisions);
  out.mean_latency_ms = total_latency_us / 1000.0 / frames;
  // Accuracy is per OBJECT for both modes (4 objects per frame).
  out.accuracy = static_cast<double>(correct) /
                 (static_cast<double>(frames) * MultiFrame::kRegions);
  return out;
}

/// Per-region cache-or-infer for `num_devices` interleaved devices. Each
/// device owns a private ApproxCache; with `shared_edge` every miss also
/// asks one region EdgeCacheService before paying inference, and every
/// validated answer is offered back through its admission gate. A nominal
/// round-trip stands in for the device-to-edge link (the event-sim version
/// with real loss/partitions is bench_f8_edge).
Outcome run_fleet(bool shared_edge, double slot_change_rate, int frames,
                  int num_devices) {
  constexpr SimDuration kEdgeRtt = 2 * kMillisecond;
  SceneGenerator::Config world;
  world.num_classes = 96;
  world.seed = 41;
  const SceneGenerator scenes{world};
  const ZipfSampler popularity{96, 1.0};

  const auto extractor = make_cnn_extractor();
  const ModelProfile profile = mobilenet_v2_profile();
  auto model = make_oracle_model(profile, 96);
  Rng rng{13};

  EdgeParams edge_params;
  edge_params.shards = 4;
  edge_params.capacity = 1024;
  edge_params.ttl = 1 * kSecond;  // churn-matched: stale labels die fast
  edge_params.error_budget = 0.25f;
  edge_params.cache = region_cache_config();
  EdgeCacheService edge{extractor->dim(), edge_params};
  SimTime next_sweep = edge_params.sweep_interval;

  struct Device {
    std::unique_ptr<MultiObjectStream> stream;
    std::unique_ptr<ApproxCache> cache;
  };
  std::vector<Device> fleet;
  for (int d = 0; d < num_devices; ++d) {
    MultiObjectStream::Config stream_cfg;
    stream_cfg.slot_change_rate = slot_change_rate;
    Device dev;
    dev.stream = std::make_unique<MultiObjectStream>(
        scenes, popularity, stream_cfg, 11 + static_cast<std::uint64_t>(d));
    dev.cache = std::make_unique<ApproxCache>(
        extractor->dim(), region_cache_config(), make_utility_policy());
    fleet.push_back(std::move(dev));
  }

  std::size_t decisions = 0, hits = 0, correct = 0;
  double total_latency_us = 0.0;
  for (int f = 0; f < frames; ++f) {
    for (Device& dev : fleet) {
      const MultiFrame frame = dev.stream->next();
      double frame_latency = static_cast<double>(kRegionDetectLatency);
      // The deterministic staleness sweep runs on the workload clock.
      while (shared_edge && frame.t >= next_sweep) {
        edge.sweep(next_sweep);
        next_sweep += edge_params.sweep_interval;
      }
      for (int region = 0; region < MultiFrame::kRegions; ++region) {
        const Label truth = frame.true_labels[static_cast<std::size_t>(region)];
        const Image img = crop_region(frame.image, region);
        ++decisions;
        frame_latency += static_cast<double>(extractor->latency());
        const FeatureVec key = extractor->extract(img);
        const auto local = dev.cache->lookup({.features = key, .now = frame.t});
        frame_latency += static_cast<double>(local.latency);
        Label answer;
        if (local.vote.has_value()) {
          ++hits;
          answer = local.vote->label;
        } else {
          bool answered = false;
          if (shared_edge) {
            const CacheResult remote = edge.query(key, frame.t);
            frame_latency += static_cast<double>(kEdgeRtt + remote.latency);
            if (remote.vote.has_value()) {
              ++hits;
              answer = remote.vote->label;
              answered = true;
            }
          }
          if (!answered) {
            frame_latency +=
                static_cast<double>(sample_profile_latency(profile, rng));
            const Prediction pred = model->infer(img, truth, rng);
            dev.cache->insert(key, pred.label, pred.confidence, frame.t);
            if (shared_edge) {
              edge.feed(key, pred.label, pred.confidence, frame.t);
            }
            answer = pred.label;
          }
        }
        if (answer == truth) ++correct;
      }
      total_latency_us += frame_latency;
    }
  }
  Outcome out;
  out.reuse = static_cast<double>(hits) / static_cast<double>(decisions);
  out.mean_latency_ms =
      total_latency_us / 1000.0 / (static_cast<double>(frames) * num_devices);
  out.accuracy = static_cast<double>(correct) / static_cast<double>(decisions);
  return out;
}

}  // namespace

int main() {
  std::printf("=== F10: region-level vs whole-frame caching ===\n");
  std::printf("expected shape: per-region holds high reuse AND per-object "
              "accuracy as slot churn grows; whole-frame accuracy sits at "
              "its mixed-scene ceiling (~0.25) or below\n\n");

  TextTable table;
  table.header({"slot churn /s", "granularity", "reuse", "object accuracy",
                "frame ms", "ms/object"});
  for (const double rate : {0.02, 0.05, 0.15, 0.40}) {
    const Outcome whole = run(/*per_region=*/false, rate, 400);
    const Outcome region = run(/*per_region=*/true, rate, 400);
    table.row({TextTable::num(rate, 2), "whole-frame",
               TextTable::num(whole.reuse, 3),
               TextTable::num(whole.accuracy, 3),
               TextTable::num(whole.mean_latency_ms),
               "-"});
    table.row({TextTable::num(rate, 2), "per-region",
               TextTable::num(region.reuse, 3),
               TextTable::num(region.accuracy, 3),
               TextTable::num(region.mean_latency_ms),
               TextTable::num(region.mean_latency_ms / MultiFrame::kRegions)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nObject accuracy is per object for both modes: whole-frame "
              "answers one label for four objects (structural ~0.25 "
              "ceiling on mixed scenes) and a one-slot change moves its "
              "pooled feature too little to invalidate the stale entry. "
              "Per-region pays 4 extractions per frame but answers every "
              "object.\n");

  std::printf("\n=== F10b: per-region fleet on a shared edge cache ===\n");
  std::printf("two devices, same scene pool: the region EdgeCacheService "
              "(4 shards, error-budget admission, TTL sweep) turns one "
              "device's inferences into the other's hits\n\n");
  TextTable fleet;
  fleet.header({"slot churn /s", "backend", "reuse", "object accuracy",
                "frame ms"});
  for (const double rate : {0.05, 0.15, 0.40}) {
    const Outcome solo = run_fleet(/*shared_edge=*/false, rate, 400, 2);
    const Outcome edge = run_fleet(/*shared_edge=*/true, rate, 400, 2);
    fleet.row({TextTable::num(rate, 2), "private caches",
               TextTable::num(solo.reuse, 3), TextTable::num(solo.accuracy, 3),
               TextTable::num(solo.mean_latency_ms)});
    fleet.row({TextTable::num(rate, 2), "shared edge",
               TextTable::num(edge.reuse, 3), TextTable::num(edge.accuracy, 3),
               TextTable::num(edge.mean_latency_ms)});
  }
  std::printf("%s", fleet.render().c_str());
  std::printf("\nExpected shape: shared-edge reuse meets or beats private "
              "caches at every churn rate (cross-device hits). The cost is "
              "cross-device error propagation — one device's wrong "
              "inference can serve the other — bounded by the churn-matched "
              "TTL to a few points at the heaviest churn.\n");
  return 0;
}

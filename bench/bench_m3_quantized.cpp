// M3 — quantized-scan microbenchmark: SQ8 asymmetric-distance candidate
// scoring against the float gather kernel, swept over dim x entries, plus
// end-to-end LSH lookup latency and float-vs-q8 top-1 parity on the
// clustered workload the approximate cache actually holds.
//
// The quantized path wins on memory traffic: a uint8 code row is a quarter
// of the float row, and per-entry feature storage drops from 4*dim bytes
// to dim + 12 (codes + offset/scale/|recon|^2). The exact re-rank of the
// top rerank_k survivors keeps returned distances float-exact, so the
// H-kNN vote is unchanged (DESIGN.md §8).
//
// Emits a machine-readable BENCH_quantized.json (path = argv[1], default
// ./BENCH_quantized.json); the headline combo is dim=64, entries=10k.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/ann/lsh.hpp"
#include "src/ann/quantize.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, ns_since(t0));
  }
  return best;
}

struct ScanResult {
  double float_ns_row = 0.0;
  double adc_ns_row = 0.0;
};

/// Candidate scoring over every stored row: the float l2_sq gather pass
/// against the SQ8 asymmetric-distance pass over the code arena.
ScanResult bench_scan(std::size_t dim, std::size_t n, int reps) {
  Rng rng{17};
  std::vector<float> arena(n * dim);
  for (float& x : arena) x = static_cast<float>(rng.normal());

  std::vector<std::uint8_t> codes(n * dim);
  std::vector<float> offsets(n), scales(n), recon_norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Sq8Stats st = sq8_encode(
        std::span<const float>{arena.data() + i * dim, dim},
        codes.data() + i * dim);
    offsets[i] = st.offset;
    scales[i] = st.scale;
    recon_norms[i] = st.recon_norm_sq;
  }

  FeatureVec q(dim);
  for (float& x : q) x = static_cast<float>(rng.normal());
  float q_norm_sq = 0.0f, q_sum = 0.0f;
  for (const float x : q) {
    q_norm_sq += x * x;
    q_sum += x;
  }

  std::vector<std::uint32_t> slots(n);
  std::iota(slots.begin(), slots.end(), 0u);
  std::vector<float> out(n);

  volatile float sink = 0.0f;
  ScanResult r;
  r.float_ns_row = best_of(reps, [&] {
                     l2_sq_gather(q, arena.data(), slots, out.data());
                     sink = sink + out[n / 2];
                   }) /
                   static_cast<double>(n);
  r.adc_ns_row = best_of(reps, [&] {
                   adc_l2_sq_gather(q, q_norm_sq, q_sum, codes.data(),
                                    offsets.data(), scales.data(),
                                    recon_norms.data(), slots, out.data());
                   sink = sink + out[n / 2];
                 }) /
                 static_cast<double>(n);
  return r;
}

/// Clustered workload matching bench_m2: near-duplicate views of kClusters
/// objects. label(i) = i % kClusters.
struct Workload {
  std::vector<FeatureVec> data;
  std::vector<FeatureVec> queries;
  std::vector<std::size_t> query_cluster;
  std::size_t clusters = 128;
};

Workload make_workload(std::size_t dim, std::size_t entries,
                       std::size_t num_queries) {
  Workload w;
  Rng rng{2025};
  std::vector<FeatureVec> centers;
  for (std::size_t c = 0; c < w.clusters; ++c) {
    FeatureVec v(dim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    normalize(v);
    centers.push_back(std::move(v));
  }
  auto near_center = [&rng, &centers, dim](std::size_t c) {
    FeatureVec v = centers[c];
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.03));
    normalize(v);
    return v;
  };
  w.data.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    w.data.push_back(near_center(i % w.clusters));
  }
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::size_t c = rng.uniform_u64(w.clusters);
    w.queries.push_back(near_center(c));
    w.query_cluster.push_back(c);
  }
  return w;
}

double p50(std::vector<double>& ns) {
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

}  // namespace
}  // namespace apx::bench

int main(int argc, char** argv) {
  using namespace apx;
  using namespace apx::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_quantized.json";
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kEntries = 10'000;

  std::printf("=== M3: quantized SQ8 scan microbenchmarks ===\n");
  std::printf("headline: dim=%zu entries=%zu (kernels: best-of-5)\n\n", kDim,
              kEntries);

  BenchJson json{"m3_quantized", kDim, kEntries};

  // --- candidate-scan sweep: dim x entries ---
  ScanResult headline{};
  for (const std::size_t dim : {std::size_t{32}, kDim, std::size_t{128}}) {
    for (const std::size_t n : {std::size_t{1000}, kEntries}) {
      const ScanResult r = bench_scan(dim, n, 5);
      std::printf(
          "scan d=%3zu n=%5zu : float %6.2f ns/row | adc %6.2f ns/row | "
          "%.2fx\n",
          dim, n, r.float_ns_row, r.adc_ns_row,
          r.float_ns_row / r.adc_ns_row);
      char name[64];
      std::snprintf(name, sizeof(name), "candidate_scan_d%zu_n%zu", dim, n);
      json.metric(name, r.float_ns_row, r.adc_ns_row);
      if (dim == kDim && n == kEntries) headline = r;
    }
  }
  json.metric("candidate_scan", headline.float_ns_row, headline.adc_ns_row);

  // --- end-to-end lookup + parity: float index vs q8 index ---
  LshParams params;
  params.num_tables = 4;
  params.hashes_per_table = 8;
  params.bucket_width = 2.5f;
  params.probes_per_table = 2;
  LshParams q8_params = params;
  q8_params.quantize.enabled = true;
  q8_params.quantize.rerank_k = 32;

  const Workload w = make_workload(kDim, kEntries, 2000);
  PStableLshIndex float_index{kDim, params};
  PStableLshIndex q8_index{kDim, q8_params};
  for (std::size_t i = 0; i < w.data.size(); ++i) {
    float_index.insert(static_cast<VecId>(i), w.data[i]);
    q8_index.insert(static_cast<VecId>(i), w.data[i]);
  }

  std::vector<Neighbor> float_out, q8_out;
  std::vector<double> float_ns, q8_ns;
  std::size_t top1_id_match = 0;
  std::size_t top1_label_match = 0;
  std::size_t both_nonempty = 0;
  for (const auto& q : w.queries) {  // warm-up (scratch, caches)
    float_index.query_into(q, 8, float_out);
    q8_index.query_into(q, 8, q8_out);
  }
  for (const auto& q : w.queries) {
    auto t0 = Clock::now();
    float_index.query_into(q, 8, float_out);
    float_ns.push_back(ns_since(t0));
    t0 = Clock::now();
    q8_index.query_into(q, 8, q8_out);
    q8_ns.push_back(ns_since(t0));
    if (float_out.empty() || q8_out.empty()) continue;
    ++both_nonempty;
    if (float_out.front().id == q8_out.front().id) ++top1_id_match;
    if (float_out.front().id % w.clusters == q8_out.front().id % w.clusters) {
      ++top1_label_match;
    }
  }
  const double float_p50 = p50(float_ns);
  const double q8_p50 = p50(q8_ns);
  const double id_parity =
      100.0 * static_cast<double>(top1_id_match) /
      static_cast<double>(std::max<std::size_t>(both_nonempty, 1));
  const double label_parity =
      100.0 * static_cast<double>(top1_label_match) /
      static_cast<double>(std::max<std::size_t>(both_nonempty, 1));

  std::printf("\nLSH lookup (10k entries, k=8, 2 probes/table):\n");
  std::printf("  float p50 %8.0f ns | q8 p50 %8.0f ns | %.2fx\n", float_p50,
              q8_p50, float_p50 / q8_p50);
  std::printf("  top-1 parity: id %.1f%% | vote(label) %.1f%%\n", id_parity,
              label_parity);
  json.metric("lsh_lookup_p50", float_p50, q8_p50);
  json.extra("top1_id_parity_pct", id_parity);
  json.extra("top1_vote_parity_pct", label_parity);

  // --- per-entry feature memory ---
  const double bytes_float = static_cast<double>(kDim) * sizeof(float);
  const double bytes_q8 = static_cast<double>(kDim) + 3 * sizeof(float);
  std::printf("  feature memory/entry: float %.0f B | q8 %.0f B | %.2fx\n",
              bytes_float, bytes_q8, bytes_float / bytes_q8);
  json.extra("bytes_per_entry_float", bytes_float);
  json.extra("bytes_per_entry_q8", bytes_q8);
  json.extra("memory_reduction", bytes_float / bytes_q8);

  if (!json.write(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

// F5 (Figure 5) — sensitivity to device motion: latency, accuracy, and
// reuse-source mix as the mobility mix sweeps from fully stationary to
// fully major-motion. Expected shape: graceful degradation — reuse falls
// as motion grows (fast path and temporal reuse vanish first), accuracy
// holds because the IMU gate disables the unsafe paths instead of letting
// them reuse stale results.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F5", "latency / accuracy / source mix vs motion intensity",
         "reuse falls gracefully with motion; accuracy stays flat because "
         "gating disables unsafe paths");

  struct Mix {
    const char* name;
    double stationary, minor, major;
  };
  const Mix mixes[] = {
      {"all-stationary", 1.00, 0.00, 0.00},
      {"mostly-still", 0.70, 0.25, 0.05},
      {"mixed", 0.40, 0.40, 0.20},
      {"mostly-moving", 0.15, 0.45, 0.40},
      {"all-major", 0.00, 0.00, 1.00},
  };

  TextTable table;
  table.header({"mobility", "mean ms", "reuse", "accuracy", "fastpath",
                "temporal", "cache", "inference"});
  for (const Mix& mix : mixes) {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.p_stationary = mix.stationary;
    cfg.p_minor = mix.minor;
    cfg.p_major = mix.major;
    cfg.pipeline = make_full_system_config();
    const ExperimentMetrics m = run_seeds(cfg);
    table.row({mix.name, TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.accuracy(), 3),
               TextTable::num(m.source_fraction(ResultSource::kImuFastPath), 3),
               TextTable::num(m.source_fraction(ResultSource::kTemporalReuse), 3),
               TextTable::num(
                   m.source_fraction(ResultSource::kLocalCacheHit) +
                       m.source_fraction(ResultSource::kPeerCacheHit),
                   3),
               TextTable::num(m.source_fraction(ResultSource::kFullInference),
                              3)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// F4 (Figure 4) — per-frame latency CDF per configuration. Expected shape:
// the full system's CDF is sharply bimodal — a large fast mode (reuse paths
// at ~0.1-10 ms) and a small slow mode (DNN fallback), while no-cache is a
// single mode around the model latency.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F4", "per-frame latency CDF per configuration",
         "full system bimodal: big fast mode + small inference mode; "
         "no-cache unimodal at the model latency");

  const double percentiles[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                                0.75, 0.90, 0.95, 0.99};

  TextTable table;
  {
    std::vector<std::string> header{"configuration"};
    for (const double p : percentiles) {
      header.push_back("p" + std::to_string(static_cast<int>(p * 100)));
    }
    table.header(std::move(header));
  }

  for (const auto& [name, pipeline] : configuration_ladder()) {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.pipeline = pipeline;
    const ExperimentMetrics m = run_seeds(cfg);
    std::vector<std::string> row{name};
    for (const double p : percentiles) {
      row.push_back(TextTable::num(m.latency_quantile_ms(p), 2));
    }
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(all values in ms; read each row as the latency CDF of one "
              "configuration)\n");
  return 0;
}

// A2 (Ablation 2) — H-kNN vs plain kNN vs 1-NN on confusable neighbour-
// hoods: the wrong-reuse/abstention trade-off that underlies "minimal
// accuracy loss". We synthesize cache neighbourhoods with a controlled
// fraction of mislabeled near neighbours and measure, per decision rule:
// wrong-reuse rate (reused a wrong label), useful-reuse rate, abstention.
// Expected shape: H-kNN trades a little reuse for a large cut in wrong
// reuse, growing with the contamination level; 1-NN is the most reckless.

#include <cstdio>

#include "src/ann/hknn.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;

struct Outcome {
  int reused_right = 0;
  int reused_wrong = 0;
  int abstained = 0;
};

void tally(const std::optional<HknnVote>& vote, Label truth, Outcome& out) {
  if (!vote.has_value()) {
    ++out.abstained;
  } else if (vote->label == truth) {
    ++out.reused_right;
  } else {
    ++out.reused_wrong;
  }
}

}  // namespace

int main() {
  std::printf("=== A2: H-kNN vs plain kNN vs 1-NN on confusable data ===\n");
  std::printf("expected shape: H-kNN cuts wrong reuse sharply at modest "
              "abstention cost; 1-NN worst\n\n");

  HknnParams params;
  params.k = 4;
  params.homogeneity_threshold = 0.8f;
  params.max_distance = 0.5f;

  HknnParams one_nn = params;
  one_nn.k = 1;

  TextTable table;
  table.header({"contamination", "rule", "wrong-reuse", "right-reuse",
                "abstain"});
  for (const double contamination : {0.0, 0.1, 0.25, 0.4}) {
    Outcome hknn_out, knn_out, nn1_out;
    Rng rng{77};
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      const Label truth = 1;
      const Label wrong = 2;
      // A neighbourhood of 5 candidates around the query; each is
      // mislabeled with the contamination probability. Distances are small
      // (all "look like" valid matches) — exactly the dangerous case.
      std::vector<Neighbor> neighbors;
      std::vector<Label> labels;
      for (VecId id = 0; id < 5; ++id) {
        neighbors.push_back(
            {id, static_cast<float>(rng.uniform(0.02, 0.30))});
        labels.push_back(rng.chance(contamination) ? wrong : truth);
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.distance < b.distance;
                });
      auto label_of = [&](VecId id) {
        return labels[static_cast<std::size_t>(id)];
      };
      tally(hknn_vote(neighbors, label_of, params), truth, hknn_out);
      tally(plain_knn_vote(neighbors, label_of, params), truth, knn_out);
      tally(plain_knn_vote(neighbors, label_of, one_nn), truth, nn1_out);
    }
    struct Row {
      const char* name;
      const Outcome* out;
    };
    for (const Row row : {Row{"h-knn", &hknn_out}, Row{"plain-knn", &knn_out},
                          Row{"1-nn", &nn1_out}}) {
      const double n = 4000.0;
      table.row({TextTable::num(contamination, 2), row.name,
                 TextTable::num(row.out->reused_wrong / n, 4),
                 TextTable::num(row.out->reused_right / n, 4),
                 TextTable::num(row.out->abstained / n, 4)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

#pragma once
// Shared helpers for the exhibit-regeneration benches (see DESIGN.md §3 for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results).

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/ann/exact_knn.hpp"
#include "src/ann/index.hpp"
#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace apx::bench {

/// Exact answer key for a recall measurement: the true top-k of every query,
/// computed once from an ExactKnnIndex and shared across all backends under
/// comparison, so each is judged against the same ground truth.
struct GroundTruth {
  std::size_t k = 0;
  std::vector<std::vector<Neighbor>> exact;  ///< per query, closest first
};

inline GroundTruth exact_ground_truth(const ExactKnnIndex& truth,
                                      const std::vector<FeatureVec>& queries,
                                      std::size_t k) {
  GroundTruth gt;
  gt.k = k;
  gt.exact.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    truth.query_into(queries[i], k, gt.exact[i]);
  }
  return gt;
}

/// Distance-threshold recall@k: a returned neighbour counts as recalled
/// when its distance is within epsilon of the exact k-th distance, so ties
/// (distinct ids at equal distance) are not penalized. Queries with no
/// exact answer (empty index) are skipped.
inline double recall_at_k(const std::vector<std::vector<Neighbor>>& results,
                          const GroundTruth& truth) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::vector<Neighbor>& exact = truth.exact[i];
    if (exact.empty()) continue;
    ++counted;
    const float kth = exact.back().distance + 1e-6f;
    std::size_t matched = 0;
    for (const Neighbor& nb : results[i]) {
      if (nb.distance <= kth) ++matched;
    }
    total += static_cast<double>(std::min(matched, exact.size())) /
             static_cast<double>(exact.size());
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

/// Interpolated percentile (p in [0, 100]); sorts `samples` in place.
inline double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

/// Writer for the committed BENCH_*.json exhibits. One schema for every
/// bench so the perf trajectory is machine-diffable across PRs:
///
///   {"bench": ..., "dim": N, "entries": N,
///    "metrics": {name: {"base_ns_op": x, "new_ns_op": y, "speedup": x/y}},
///    "extras":  {name: value}}
///
/// "base" is the comparison baseline (old implementation, float path, ...),
/// "new" the measured path under test; extras carry scalar context
/// (candidate counts, parity percentages, bytes per entry).
class BenchJson {
 public:
  BenchJson(std::string bench, std::size_t dim, std::size_t entries)
      : bench_(std::move(bench)), dim_(dim), entries_(entries) {}

  void metric(const std::string& name, double base_ns_op, double new_ns_op) {
    metrics_.push_back({name, base_ns_op, new_ns_op});
  }

  void extra(const std::string& name, double value) {
    extras_.push_back({name, value});
  }

  /// Writes the exhibit; returns false (and prints to stderr) on I/O error.
  bool write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    std::fprintf(f, "  \"dim\": %zu,\n  \"entries\": %zu,\n", dim_, entries_);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f,
                   "%s\n    \"%s\": {\"base_ns_op\": %.2f, "
                   "\"new_ns_op\": %.2f, \"speedup\": %.2f}",
                   i == 0 ? "" : ",", m.name.c_str(), m.base_ns_op,
                   m.new_ns_op,
                   m.new_ns_op > 0.0 ? m.base_ns_op / m.new_ns_op : 0.0);
    }
    std::fprintf(f, "\n  },\n  \"extras\": {");
    for (std::size_t i = 0; i < extras_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.2f", i == 0 ? "" : ",",
                   extras_[i].first.c_str(), extras_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Metric {
    std::string name;
    double base_ns_op = 0.0;
    double new_ns_op = 0.0;
  };

  std::string bench_;
  std::size_t dim_ = 0;
  std::size_t entries_ = 0;
  std::vector<Metric> metrics_;
  std::vector<std::pair<std::string, double>> extras_;
};

/// The evaluation's canonical workload: a co-located group of four devices
/// watching a shared 64-class world, mixed mobility, 10 fps video.
inline ScenarioConfig evaluation_scenario() {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 4;
  cfg.duration = 45 * kSecond;
  cfg.scene.num_classes = 64;
  cfg.zipf_s = 0.9;
  return cfg;
}

/// High-locality variant behind the abstract's "up to 94%": users mostly
/// dwelling on objects (kiosk / museum / shelf-scanning behaviour).
inline ScenarioConfig high_locality_scenario() {
  ScenarioConfig cfg = evaluation_scenario();
  cfg.p_stationary = 0.80;
  cfg.p_minor = 0.17;
  cfg.p_major = 0.03;
  cfg.zipf_s = 1.1;
  return cfg;
}

/// Runs `cfg` under `seeds` different seeds and pools the metrics.
inline ExperimentMetrics run_seeds(ScenarioConfig cfg, int seeds = 3) {
  ExperimentMetrics pooled;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + static_cast<std::uint64_t>(s) * 7919;
    pooled.merge(run_scenario(cfg));
  }
  return pooled;
}

/// The named pipeline configurations every per-configuration exhibit sweeps.
struct NamedConfig {
  std::string name;
  PipelineConfig config;
};

inline std::vector<NamedConfig> configuration_ladder() {
  return {
      {"no-cache", make_nocache_config()},
      {"exact-cache", make_exactcache_config()},
      {"approx-local", make_approx_local_config()},
      {"approx+imu", make_approx_imu_config()},
      {"approx+imu+video", make_approx_video_config()},
      {"full-system(+p2p)", make_full_system_config()},
  };
}

/// Standard exhibit banner.
inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("=== %s: %s ===\n", id, title);
  std::printf("expected shape: %s\n\n", claim);
}

}  // namespace apx::bench

#pragma once
// Shared helpers for the exhibit-regeneration benches (see DESIGN.md §3 for
// the experiment index and EXPERIMENTS.md for paper-vs-measured results).

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/runner.hpp"
#include "src/util/table.hpp"

namespace apx::bench {

/// The evaluation's canonical workload: a co-located group of four devices
/// watching a shared 64-class world, mixed mobility, 10 fps video.
inline ScenarioConfig evaluation_scenario() {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 4;
  cfg.duration = 45 * kSecond;
  cfg.scene.num_classes = 64;
  cfg.zipf_s = 0.9;
  return cfg;
}

/// High-locality variant behind the abstract's "up to 94%": users mostly
/// dwelling on objects (kiosk / museum / shelf-scanning behaviour).
inline ScenarioConfig high_locality_scenario() {
  ScenarioConfig cfg = evaluation_scenario();
  cfg.p_stationary = 0.80;
  cfg.p_minor = 0.17;
  cfg.p_major = 0.03;
  cfg.zipf_s = 1.1;
  return cfg;
}

/// Runs `cfg` under `seeds` different seeds and pools the metrics.
inline ExperimentMetrics run_seeds(ScenarioConfig cfg, int seeds = 3) {
  ExperimentMetrics pooled;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + static_cast<std::uint64_t>(s) * 7919;
    pooled.merge(run_scenario(cfg));
  }
  return pooled;
}

/// The named pipeline configurations every per-configuration exhibit sweeps.
struct NamedConfig {
  std::string name;
  PipelineConfig config;
};

inline std::vector<NamedConfig> configuration_ladder() {
  return {
      {"no-cache", make_nocache_config()},
      {"exact-cache", make_exactcache_config()},
      {"approx-local", make_approx_local_config()},
      {"approx+imu", make_approx_imu_config()},
      {"approx+imu+video", make_approx_video_config()},
      {"full-system(+p2p)", make_full_system_config()},
  };
}

/// Standard exhibit banner.
inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("=== %s: %s ===\n", id, title);
  std::printf("expected shape: %s\n\n", claim);
}

}  // namespace apx::bench

// F2 (Figure 2) — the accuracy/latency trade-off over the similarity
// threshold (H-kNN max_distance), on the confusable world where loose
// reuse actually costs accuracy. Expected shape: a knee — latency drops
// quickly as the threshold loosens, accuracy degrades slowly at first and
// faster past the knee.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F2", "accuracy / latency / reuse vs similarity threshold",
         "latency falls and accuracy decays with looser thresholds; knee in "
         "the middle of the sweep");

  ScenarioConfig base = evaluation_scenario();
  base.scene.class_confusion = 0.35f;
  base.scene.group_size = 4;

  base.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_seeds(base);
  std::printf("no-cache reference: %.2f ms, accuracy %.4f\n\n",
              baseline.mean_latency_ms(), baseline.accuracy());

  TextTable table;
  table.header({"max_distance", "mean ms", "reuse", "accuracy",
                "accuracy delta"});
  // The sweep spans the CNN-embedding geometry: intra-class ~0.02-0.03,
  // inter-class >= ~0.065 (tighter under class confusion) up into the
  // saturated regime where only H-kNN homogeneity protects accuracy.
  for (const float threshold :
       {0.01f, 0.02f, 0.04f, 0.06f, 0.10f, 0.20f, 0.50f}) {
    ScenarioConfig cfg = base;
    cfg.auto_threshold = false;  // this exhibit sweeps it explicitly
    cfg.pipeline = make_full_system_config();
    cfg.pipeline.cache.hknn.max_distance = threshold;
    const ExperimentMetrics m = run_seeds(cfg);
    table.row({TextTable::num(threshold, 2),
               TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.accuracy(), 4),
               TextTable::num(m.accuracy() - baseline.accuracy(), 4)});
  }
  std::printf("%s", table.render().c_str());

  // The flat accuracy at loose thresholds is H-kNN doing its job; the
  // plain-kNN contrast shows what it protects against.
  std::printf("\n--- same sweep endpoints with homogeneity DISABLED "
              "(plain kNN vote) ---\n");
  TextTable plain;
  plain.header({"max_distance", "mean ms", "reuse", "accuracy",
                "accuracy delta"});
  for (const float threshold : {0.04f, 0.20f, 0.50f}) {
    ScenarioConfig cfg = base;
    cfg.auto_threshold = false;
    cfg.pipeline = make_full_system_config();
    cfg.pipeline.cache.hknn.max_distance = threshold;
    cfg.pipeline.cache.hknn.require_homogeneity = false;
    const ExperimentMetrics m = run_seeds(cfg);
    plain.row({TextTable::num(threshold, 2),
               TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.accuracy(), 4),
               TextTable::num(m.accuracy() - baseline.accuracy(), 4)});
  }
  std::printf("%s", plain.render().c_str());
  return 0;
}

// M1 — google-benchmark micro suite: wall-clock cost of the primitives the
// simulation's cost model abstracts (feature extraction, index operations,
// codec, event loop, scene rendering, cache lookups). These justify the
// per-operation latency constants used elsewhere and catch performance
// regressions in the library itself.

#include <benchmark/benchmark.h>

#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/exact_knn.hpp"
#include "src/cache/approx_cache.hpp"
#include "src/features/extractor.hpp"
#include "src/image/scene.hpp"
#include "src/imu/motion_estimator.hpp"
#include "src/net/event_sim.hpp"
#include "src/net/messages.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace apx;

SceneGenerator& scenes() {
  static SceneGenerator gen{[] {
    SceneGenerator::Config cfg;
    cfg.num_classes = 64;
    cfg.image_size = 32;
    return cfg;
  }()};
  return gen;
}

Image test_image() { return scenes().render(7, ViewParams{}); }

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

void BM_SceneRender(benchmark::State& state) {
  ViewParams view;
  view.noise_sigma = 0.02f;
  int cls = 0;
  for (auto _ : state) {
    view.noise_seed = static_cast<std::uint64_t>(state.iterations());
    benchmark::DoNotOptimize(scenes().render(cls++ % 64, view));
  }
}
BENCHMARK(BM_SceneRender);

void BM_ExtractDownsample(benchmark::State& state) {
  const auto extractor = make_downsample_extractor();
  const Image img = test_image();
  for (auto _ : state) benchmark::DoNotOptimize(extractor->extract(img));
}
BENCHMARK(BM_ExtractDownsample);

void BM_ExtractHistogram(benchmark::State& state) {
  const auto extractor = make_histogram_extractor();
  const Image img = test_image();
  for (auto _ : state) benchmark::DoNotOptimize(extractor->extract(img));
}
BENCHMARK(BM_ExtractHistogram);

void BM_ExtractHog(benchmark::State& state) {
  const auto extractor = make_hog_extractor();
  const Image img = test_image();
  for (auto _ : state) benchmark::DoNotOptimize(extractor->extract(img));
}
BENCHMARK(BM_ExtractHog);

void BM_ExtractCnn(benchmark::State& state) {
  const auto extractor = make_cnn_extractor();
  const Image img = test_image();
  for (auto _ : state) benchmark::DoNotOptimize(extractor->extract(img));
}
BENCHMARK(BM_ExtractCnn);

void BM_LshInsert(benchmark::State& state) {
  LshParams params;
  PStableLshIndex index{64, params};
  Rng rng{1};
  VecId id = 0;
  for (auto _ : state) {
    index.insert(id++, random_unit(rng, 64));
  }
}
BENCHMARK(BM_LshInsert);

void BM_LshQuery(benchmark::State& state) {
  LshParams params;
  PStableLshIndex index{64, params};
  Rng rng{1};
  for (VecId id = 0; id < static_cast<VecId>(state.range(0)); ++id) {
    index.insert(id, random_unit(rng, 64));
  }
  const FeatureVec q = random_unit(rng, 64);
  for (auto _ : state) benchmark::DoNotOptimize(index.query(q, 4));
}
BENCHMARK(BM_LshQuery)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ExactKnnQuery(benchmark::State& state) {
  ExactKnnIndex index{64};
  Rng rng{1};
  for (VecId id = 0; id < static_cast<VecId>(state.range(0)); ++id) {
    index.insert(id, random_unit(rng, 64));
  }
  const FeatureVec q = random_unit(rng, 64);
  for (auto _ : state) benchmark::DoNotOptimize(index.query(q, 4));
}
BENCHMARK(BM_ExactKnnQuery)->Arg(128)->Arg(1024)->Arg(8192);

void BM_CacheLookup(benchmark::State& state) {
  ApproxCacheConfig cfg;
  cfg.capacity = 4096;
  ApproxCache cache{64, cfg, make_utility_policy()};
  Rng rng{1};
  for (int i = 0; i < 2048; ++i) {
    cache.insert(random_unit(rng, 64), i % 64, 0.9f, i);
  }
  const FeatureVec q = random_unit(rng, 64);
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({.features = q, .now = now++}));
  }
}
BENCHMARK(BM_CacheLookup);

void BM_CodecEncodeAdvert(benchmark::State& state) {
  EntryAdvertMsg msg;
  Rng rng{1};
  for (int i = 0; i < 16; ++i) {
    WireEntry e;
    e.feature = random_unit(rng, 64);
    e.label = i;
    msg.entries.push_back(std::move(e));
  }
  for (auto _ : state) benchmark::DoNotOptimize(encode(msg));
}
BENCHMARK(BM_CodecEncodeAdvert);

void BM_CodecDecodeAdvert(benchmark::State& state) {
  EntryAdvertMsg msg;
  Rng rng{1};
  for (int i = 0; i < 16; ++i) {
    WireEntry e;
    e.feature = random_unit(rng, 64);
    e.label = i;
    msg.entries.push_back(std::move(e));
  }
  const auto bytes = encode(msg);
  for (auto _ : state) benchmark::DoNotOptimize(decode_entry_advert(bytes));
}
BENCHMARK(BM_CodecDecodeAdvert);

void BM_EventSimThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventSimulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSimThroughput);

void BM_MotionEstimate(benchmark::State& state) {
  MotionEstimator est;
  ImuSample sample;
  sample.accel = {0.1f, 0.0f, 9.8f};
  for (auto _ : state) {
    est.add(sample);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_MotionEstimate);

}  // namespace

BENCHMARK_MAIN();

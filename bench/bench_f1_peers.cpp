// F1 (Figure 1) — collaboration scaling: mean latency, reuse ratio, and
// P2P traffic as the number of co-located devices grows from 1 to 8.
// Expected shape: latency falls and reuse rises with more peers (shared
// results arrive before the local device has to infer), saturating once
// the popular objects are covered.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F1", "latency & reuse vs number of nearby devices",
         "latency falls / reuse rises with peers, then saturates");

  TextTable table;
  table.header({"devices", "mean ms", "p95 ms", "reuse", "peer-assisted",
                "adverts", "merged entries"});
  for (const int devices : {1, 2, 3, 4, 6, 8}) {
    // Churn-heavy regime: devices keep encountering objects they have not
    // personally seen, which is where collaboration pays — a peer's entry
    // (~10 ms round trip) replaces a full inference.
    ScenarioConfig cfg = evaluation_scenario();
    // Static-image workload (the abstract's other headline case): a photo
    // app snapping a different object every couple of seconds. No temporal
    // locality exists, so reuse must come from recognition history — own
    // or, crucially, nearby devices'.
    cfg.scene.num_classes = 192;
    cfg.zipf_s = 1.0;
    cfg.duration = 120 * kSecond;
    cfg.video.fps = 0.5;                    // one photo per 2 s
    cfg.video.change_rate_stationary = 2.0; // every photo: a new object
    cfg.video.change_rate_minor = 2.0;
    cfg.video.change_rate_major = 2.0;
    cfg.p_stationary = 0.2;
    cfg.p_minor = 0.6;
    cfg.p_major = 0.2;
    cfg.num_devices = devices;
    cfg.model = resnet50_profile();  // collaboration pays when inference is dear
    // Co-located people physically see the same object from similar
    // vantage points; without view overlap no feature scheme can match
    // another device's entry.
    cfg.video.view_pan_sigma = 0.15f;
    cfg.video.view_zoom_min = 0.95f;
    cfg.video.view_zoom_max = 1.15f;
    cfg.pipeline = make_full_system_config();
    cfg.seed = 2000;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    const Counter p2p = runner.p2p_counters();
    // "Peer-assisted" pools direct peer-cache hits with local hits on
    // entries that arrived via gossip (counted as merges).
    table.row({std::to_string(devices), TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.latency_quantile_ms(0.95)),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.source_fraction(ResultSource::kPeerCacheHit),
                              4),
               std::to_string(p2p.get("advert_sent")),
               std::to_string(p2p.get("merged"))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nNote: with gossip on, most collaboration value lands as "
              "local-cache hits on merged entries; the peer-cache column "
              "counts only synchronous remote round trips.\n");
  return 0;
}

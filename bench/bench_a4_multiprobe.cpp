// A4 (Ablation 4) — multiprobe LSH: recall and candidate-set size vs the
// number of probes per table, at a fixed narrow bucket width, compared to
// adding whole tables. Expected shape: a few probes recover most of the
// recall a narrow width loses, at a fraction of the memory cost of extra
// tables (probes share the same tables; more tables duplicate storage).

#include <cstdio>

#include "src/ann/lsh.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;

constexpr std::size_t kDim = 32;

FeatureVec random_unit(Rng& rng) {
  FeatureVec v(kDim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

struct Result {
  double recall = 0.0;
  double candidates = 0.0;
};

Result measure(const LshParams& params) {
  PStableLshIndex index{kDim, params};
  Rng rng{42};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 2000; ++id) {
    base.push_back(random_unit(rng));
    index.insert(id, base.back());
  }
  Rng qrng{7};
  std::size_t found = 0, candidates = 0;
  const std::size_t queries = 500;
  for (std::size_t q = 0; q < queries; ++q) {
    const VecId target = qrng.uniform_u64(base.size());
    FeatureVec query = base[target];
    for (float& x : query) x += static_cast<float>(qrng.normal(0.0, 0.015));
    const auto result = index.query(query, 1);
    if (!result.empty() && result[0].id == target) ++found;
    candidates += index.last_candidate_count();
  }
  return {static_cast<double>(found) / static_cast<double>(queries),
          static_cast<double>(candidates) / static_cast<double>(queries)};
}

}  // namespace

int main() {
  std::printf("=== A4: multiprobe LSH vs extra tables ===\n");
  std::printf("expected shape: a few probes recover the recall a narrow "
              "width loses, cheaper than extra tables\n\n");

  LshParams narrow;
  narrow.num_tables = 4;
  narrow.hashes_per_table = 6;
  narrow.bucket_width = 0.5f;

  TextTable table;
  table.header({"variant", "tables", "probes/table", "recall@1",
                "mean candidates", "stored copies"});
  for (const std::size_t probes : {0u, 1u, 2u, 4u, 6u}) {
    LshParams params = narrow;
    params.probes_per_table = probes;
    const Result r = measure(params);
    table.row({"multiprobe", "4", std::to_string(probes),
               TextTable::num(r.recall, 3), TextTable::num(r.candidates, 1),
               "4x"});
  }
  for (const std::size_t tables : {8u, 16u}) {
    LshParams params = narrow;
    params.num_tables = tables;
    const Result r = measure(params);
    table.row({"more-tables", std::to_string(tables), "0",
               TextTable::num(r.recall, 3), TextTable::num(r.candidates, 1),
               std::to_string(tables) + "x"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// A4 (Ablation 4) — multiprobe LSH: recall and candidate-set size vs the
// number of probes per table, at a fixed narrow bucket width, compared to
// adding whole tables. Expected shape: a few probes recover most of the
// recall a narrow width loses, at a fraction of the memory cost of extra
// tables (probes share the same tables; more tables duplicate storage).
//
// Every variant is scored against ONE exact ground truth computed once
// from the shared dataset, so the recall column compares like with like.

#include <cstdio>

#include "bench/common.hpp"
#include "src/ann/lsh.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;
using namespace apx::bench;

constexpr std::size_t kDim = 32;
constexpr std::size_t kEntries = 2000;
constexpr std::size_t kQueries = 500;

FeatureVec random_unit(Rng& rng) {
  FeatureVec v(kDim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

struct Workload {
  std::vector<FeatureVec> base;
  std::vector<FeatureVec> queries;
  GroundTruth truth;
};

Workload make_workload() {
  Workload w;
  Rng rng{42};
  for (std::size_t id = 0; id < kEntries; ++id) {
    w.base.push_back(random_unit(rng));
  }
  Rng qrng{7};
  for (std::size_t q = 0; q < kQueries; ++q) {
    FeatureVec query = w.base[qrng.uniform_u64(w.base.size())];
    for (float& x : query) x += static_cast<float>(qrng.normal(0.0, 0.015));
    w.queries.push_back(std::move(query));
  }
  ExactKnnIndex exact{kDim};
  for (VecId id = 0; id < kEntries; ++id) exact.insert(id, w.base[id]);
  w.truth = exact_ground_truth(exact, w.queries, 1);
  return w;
}

struct Result {
  double recall = 0.0;
  double candidates = 0.0;
};

Result measure(const LshParams& params, const Workload& w) {
  PStableLshIndex index{kDim, params};
  for (VecId id = 0; id < kEntries; ++id) index.insert(id, w.base[id]);
  std::vector<std::vector<Neighbor>> results(w.queries.size());
  QueryStats st;
  double candidates = 0.0;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    index.query_into(w.queries[q], 1, results[q], &st);
    candidates += static_cast<double>(st.candidates);
  }
  return {recall_at_k(results, w.truth),
          candidates / static_cast<double>(w.queries.size())};
}

}  // namespace

int main() {
  banner("A4", "multiprobe LSH vs extra tables",
         "a few probes recover the recall a narrow width loses, cheaper "
         "than extra tables");

  const Workload w = make_workload();

  LshParams narrow;
  narrow.num_tables = 4;
  narrow.hashes_per_table = 6;
  narrow.bucket_width = 0.5f;

  TextTable table;
  table.header({"variant", "tables", "probes/table", "recall@1",
                "mean candidates", "stored copies"});
  for (const std::size_t probes : {0u, 1u, 2u, 4u, 6u}) {
    LshParams params = narrow;
    params.probes_per_table = probes;
    const Result r = measure(params, w);
    table.row({"multiprobe", "4", std::to_string(probes),
               TextTable::num(r.recall, 3), TextTable::num(r.candidates, 1),
               "4x"});
  }
  for (const std::size_t tables : {8u, 16u}) {
    LshParams params = narrow;
    params.num_tables = tables;
    const Result r = measure(params, w);
    table.row({"more-tables", std::to_string(tables), "0",
               TextTable::num(r.recall, 3), TextTable::num(r.candidates, 1),
               std::to_string(tables) + "x"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// T1 (Table 1) — the headline exhibit. Mean recognition latency per
// configuration ladder rung, on the evaluation workload and on the
// high-locality workload, for each model in the zoo. Reproduces the
// abstract's claim: "lowers the average latency ... by up to 94% with
// minimal loss of recognition accuracy" — the full system on the
// high-locality workload with a heavy model is the "up to" point.

#include "bench/common.hpp"
#include "src/dnn/zoo.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("T1", "mean latency per configuration",
         "latency falls monotonically down the ladder; full system reaches "
         "~85-94% reduction on the high-locality workload");

  struct Workload {
    const char* name;
    ScenarioConfig scenario;
  };
  const Workload workloads[] = {
      {"mixed-mobility", evaluation_scenario()},
      {"high-locality", high_locality_scenario()},
  };

  for (const auto& workload : workloads) {
    for (const ModelProfile& model :
         {mobilenet_v2_profile(), resnet50_profile()}) {
      std::printf("--- workload: %s, model: %s (%.0f ms/inference) ---\n",
                  workload.name, model.name.c_str(),
                  to_ms(model.mean_latency));
      TextTable table;
      table.header({"configuration", "mean ms", "p50 ms", "p95 ms", "p99 ms",
                    "reuse", "reduction"});
      double baseline_ms = 0.0;
      for (const auto& [name, pipeline] : configuration_ladder()) {
        ScenarioConfig cfg = workload.scenario;
        cfg.model = model;
        cfg.pipeline = pipeline;
        const ExperimentMetrics m = run_seeds(cfg);
        if (name == "no-cache") baseline_ms = m.mean_latency_ms();
        table.row({name, TextTable::num(m.mean_latency_ms()),
                   TextTable::num(m.latency_quantile_ms(0.50)),
                   TextTable::num(m.latency_quantile_ms(0.95)),
                   TextTable::num(m.latency_quantile_ms(0.99)),
                   TextTable::num(m.reuse_ratio(), 3),
                   TextTable::num(m.reduction_vs_percent(baseline_ms), 1) +
                       "%"});
      }
      std::printf("%s\n", table.render().c_str());
    }
  }
  return 0;
}

// A5 (Ablation 5) — the adaptive threshold controller vs fixed thresholds,
// across worlds of different difficulty. A fixed threshold tuned for one
// world is wrong for another; the controller should track each world's
// sweet spot: near-best latency on the easy world, near-best accuracy on
// the hard one, without re-tuning.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("A5", "adaptive threshold vs fixed thresholds across worlds",
         "the controller is never far from the per-world best fixed "
         "threshold on either axis");

  struct World {
    const char* name;
    float confusion;
  };
  for (const World world :
       {World{"easy", 0.0f}, World{"medium", 0.3f}, World{"hard", 0.5f}}) {
    std::printf("--- world: %s (confusion %.1f) ---\n", world.name,
                world.confusion);
    ScenarioConfig base = evaluation_scenario();
    base.scene.class_confusion = world.confusion;
    base.scene.group_size = 4;

    base.pipeline = make_nocache_config();
    const ExperimentMetrics baseline = run_seeds(base, 2);

    TextTable table;
    table.header({"policy", "mean ms", "reuse", "accuracy",
                  "accuracy delta"});
    for (const float fixed : {0.03f, 0.08f, 0.50f}) {
      ScenarioConfig cfg = base;
      cfg.auto_threshold = false;
      cfg.pipeline = make_full_system_config();
      cfg.pipeline.cache.hknn.max_distance = fixed;
      const ExperimentMetrics m = run_seeds(cfg, 2);
      table.row({"fixed " + TextTable::num(fixed, 2),
                 TextTable::num(m.mean_latency_ms()),
                 TextTable::num(m.reuse_ratio(), 3),
                 TextTable::num(m.accuracy(), 4),
                 TextTable::num(m.accuracy() - baseline.accuracy(), 4)});
    }
    ScenarioConfig cfg = base;
    cfg.auto_threshold = false;
    cfg.pipeline = make_adaptive_config();
    cfg.pipeline.cache.hknn.max_distance = 0.08f;  // the adapted base
    const ExperimentMetrics m = run_seeds(cfg, 2);
    table.row({"adaptive", TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.accuracy(), 4),
               TextTable::num(m.accuracy() - baseline.accuracy(), 4)});
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}

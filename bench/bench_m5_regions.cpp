// M5 — region splice micro-benchmark: real wall-clock cost of the staged
// MiniCnn forward pass with spliced cached activations (DESIGN.md §11)
// against the full extraction it replaces.
//
// Part 1 sweeps changed-block fraction x grid size under controlled
// perturbation: exactly k blocks of a keyframe change, the dirty masks are
// propagated through the conv/pool footprint, and the spliced forward is
// timed against the full staged forward of the same frame. Results are
// bit-identical by construction (asserted every iteration), so "speedup"
// is pure latency: the exhibit claim is that a partial-frame hit with <=
// 25% changed blocks beats full feature extraction. The splice side pays
// its whole honest pipeline — block diff against the keyframe, dirty-mask
// propagation, then the partial conv — while the full side pays only
// prepare + forward.
//
// Part 2 runs a live MultiObjectStream (per-slot Poisson changes, camera
// jitter and sensor noise) through the real BlockKeyframeTracker +
// ActivationCache loop and reports fidelity extras: how often frames
// splice, how many blocks they reuse, and the cosine similarity between
// spliced and fully-recomputed embeddings (the threshold admits pixel
// noise, so this is where approximation actually enters).
//
// Emits BENCH_regions.json (path = first non-flag arg); --smoke shrinks
// the iteration counts for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/dnn/activation_cache.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/scene.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"
#include "src/video/locality.hpp"
#include "src/vision/multi_object.hpp"

namespace apx::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Scattered deterministic pick of k changed blocks out of grid*grid.
std::vector<std::uint8_t> pick_blocks(int grid, int k) {
  const int total = grid * grid;
  std::vector<std::uint8_t> changed(static_cast<std::size_t>(total), 0);
  int placed = 0;
  for (int i = 0; placed < k && i < total; ++i) {
    const int b = (i * 7 + 3) % total;  // stride 7 is coprime with 4/16/64
    if (changed[static_cast<std::size_t>(b)] == 0) {
      changed[static_cast<std::size_t>(b)] = 1;
      ++placed;
    }
  }
  return changed;
}

/// Inverts every pixel of the flagged blocks (well past any threshold).
Image perturb_blocks(const Image& frame, int grid,
                     const std::vector<std::uint8_t>& changed) {
  Image out = frame;
  const int bw = frame.width() / grid;
  for (int by = 0; by < grid; ++by) {
    for (int bx = 0; bx < grid; ++bx) {
      if (changed[static_cast<std::size_t>(by) * grid + bx] == 0) continue;
      for (int y = by * bw; y < (by + 1) * bw; ++y) {
        for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
          for (int c = 0; c < frame.channels(); ++c) {
            out.at(x, y, c) = 1.0f - out.at(x, y, c);
          }
        }
      }
    }
  }
  return out;
}

struct SweepPoint {
  double full_ns = 0.0;
  double splice_ns = 0.0;
  bool identical = true;
};

/// Times full extraction vs the honest splice pipeline (block diff +
/// mask propagation + partial forward) for exactly `k` changed blocks.
SweepPoint sweep_point(const MiniCnn& cnn, const Image& keyframe, int grid,
                       int k, int iters) {
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  const std::vector<std::uint8_t> changed = pick_blocks(grid, k);
  const Image current = perturb_blocks(keyframe, grid, changed);

  // Cache the keyframe's activations once (the rung's steady state).
  MiniCnn::ForwardState key_state;
  FeatureVec key_out;
  cnn.embed_into(keyframe, key_state, key_out);
  const ActivationCache::Params cache_params{grid, /*ttl=*/0};
  ActivationCache acts{plan, cache_params};
  const std::vector<std::uint8_t> all(changed.size(), 1);
  acts.install(key_state.stage1, key_state.stage2, all, /*now=*/0);
  BlockMatchParams match;
  match.grid = grid;
  BlockKeyframeTracker matcher{match};
  std::vector<std::uint8_t> classified(changed.size());
  matcher.classify(keyframe, classified);
  matcher.update(classified);

  MiniCnn::ForwardState state;
  FeatureVec full_out, splice_out;
  std::vector<std::uint8_t> input_mask(plan.input.size() / 3);
  std::vector<std::uint8_t> stage1_mask(plan.stage1.size() /
                                        plan.stage1.channels);
  std::vector<std::uint8_t> stage2_mask(plan.stage2.size() /
                                        plan.stage2.channels);

  SweepPoint point;
  // Warm both paths (scratch high-water marks, branch predictors).
  cnn.embed_into(current, state, full_out);

  const auto f0 = Clock::now();
  for (int i = 0; i < iters; ++i) cnn.embed_into(current, state, full_out);
  point.full_ns = ns_since(f0) / iters;

  const auto s0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    matcher.classify(current, classified);
    acts.block_to_pixel_mask(classified, MiniCnn::kInputSide, input_mask);
    MiniCnn::propagate_dirty(input_mask, plan.input.width, plan.input.height,
                             stage1_mask);
    MiniCnn::propagate_dirty(stage1_mask, plan.stage1.width,
                             plan.stage1.height, stage2_mask);
    cnn.prepare_input(current, state);
    cnn.forward_spliced(state, acts.stage1(), acts.stage2(), stage1_mask,
                        stage2_mask, splice_out);
  }
  point.splice_ns = ns_since(s0) / iters;
  point.identical = point.identical && (splice_out == full_out);
  return point;
}

struct StreamStats {
  double splice_rate = 0.0;       ///< fraction of frames that spliced
  double reused_fraction = 0.0;   ///< blocks reused per spliced frame
  double mean_cos_sim = 1.0;      ///< spliced vs full embedding
};

/// Live multi-object loop: tracker-classified splices against a real
/// jittering stream, fidelity measured against full recomputation.
StreamStats stream_fidelity(const MiniCnn& cnn, int grid, int frames) {
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  SceneGenerator::Config world;
  world.num_classes = 32;
  world.image_size = 32;
  world.seed = 23;
  const SceneGenerator scenes{world};
  const ZipfSampler popularity{32, 0.9};
  MultiObjectStream::Config stream_cfg;
  stream_cfg.slot_change_rate = 0.6;  // brisk churn: plenty of partials
  MultiObjectStream stream{scenes, popularity, stream_cfg, 7};

  BlockMatchParams match;
  match.grid = grid;
  BlockKeyframeTracker matcher{match};
  ActivationCache acts{plan, ActivationCache::Params{grid, /*ttl=*/0}};
  const int total = acts.block_count();

  MiniCnn::ForwardState state, full_state;
  FeatureVec out, full_out;
  std::vector<std::uint8_t> changed(static_cast<std::size_t>(total));
  std::vector<std::uint8_t> input_mask(plan.input.size() / 3);
  std::vector<std::uint8_t> stage1_mask(plan.stage1.size() /
                                        plan.stage1.channels);
  std::vector<std::uint8_t> stage2_mask(plan.stage2.size() /
                                        plan.stage2.channels);
  const std::vector<std::uint8_t> all(changed.size(), 1);

  int spliced_frames = 0;
  double reused_sum = 0.0, cos_sum = 0.0;
  for (int i = 0; i < frames; ++i) {
    const MultiFrame frame = stream.next();
    const int changed_count = matcher.classify(frame.image, changed);
    cnn.prepare_input(frame.image, state);
    if (!acts.valid() || changed_count == total) {
      cnn.forward(state, /*from_stage=*/0, out);
      matcher.update(all);
      acts.install(state.stage1, state.stage2, all, /*now=*/i);
      continue;
    }
    acts.block_to_pixel_mask(changed, MiniCnn::kInputSide, input_mask);
    MiniCnn::propagate_dirty(input_mask, plan.input.width, plan.input.height,
                             stage1_mask);
    MiniCnn::propagate_dirty(stage1_mask, plan.stage1.width,
                             plan.stage1.height, stage2_mask);
    cnn.forward_spliced(state, acts.stage1(), acts.stage2(), stage1_mask,
                        stage2_mask, out);
    matcher.update(changed);
    acts.install(state.stage1, state.stage2, changed, /*now=*/i);
    cnn.embed_into(frame.image, full_state, full_out);
    ++spliced_frames;
    reused_sum += static_cast<double>(total - changed_count) / total;
    cos_sum += static_cast<double>(dot(out, full_out));
  }

  StreamStats stats;
  if (frames > 0) {
    stats.splice_rate = static_cast<double>(spliced_frames) / frames;
  }
  if (spliced_frames > 0) {
    stats.reused_fraction = reused_sum / spliced_frames;
    stats.mean_cos_sim = cos_sum / spliced_frames;
  }
  return stats;
}

}  // namespace
}  // namespace apx::bench

int main(int argc, char** argv) {
  using namespace apx;
  using namespace apx::bench;

  bool smoke = false;
  std::string json_path = "BENCH_regions.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const int iters = smoke ? 20 : 400;
  const int stream_frames = smoke ? 60 : 600;

  banner("M5", "region splice vs full extraction",
         "spliced partial forwards beat full extraction for <=25% changed "
         "blocks; fidelity stays near-exact on a live stream");

  const MiniCnn cnn{64, 7};
  SceneGenerator::Config world;
  world.num_classes = 8;
  world.image_size = 32;
  world.seed = 11;
  const SceneGenerator scenes{world};
  const Image keyframe = scenes.render(2, ViewParams{});

  BenchJson json{"m5_regions", cnn.dim(), static_cast<std::size_t>(iters)};
  TextTable table;
  table.header({"grid", "changed", "full ns/frame", "splice ns/frame",
                "speedup", "identical"});
  bool all_identical = true;
  const double fracs[] = {0.0, 0.25, 0.5, 1.0};
  for (const int grid : {2, 4, 8}) {
    const int total = grid * grid;
    for (const double frac : fracs) {
      const int k = static_cast<int>(frac * total + 0.5);
      const SweepPoint p = sweep_point(cnn, keyframe, grid, k, iters);
      all_identical = all_identical && p.identical;
      const std::string label = "grid" + std::to_string(grid) + "_changed" +
                                std::to_string(static_cast<int>(frac * 100)) +
                                "pct";
      json.metric(label, p.full_ns, p.splice_ns);
      table.row({std::to_string(grid),
                 std::to_string(k) + "/" + std::to_string(total),
                 TextTable::num(p.full_ns, 0), TextTable::num(p.splice_ns, 0),
                 TextTable::num(p.full_ns / p.splice_ns, 2),
                 p.identical ? "yes" : "NO"});
    }
  }
  std::printf("%s", table.render().c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: spliced embedding diverged from full forward\n");
    return 1;
  }

  std::printf("\nlive stream fidelity (grid=4, %d frames):\n", stream_frames);
  const StreamStats stats = stream_fidelity(cnn, 4, stream_frames);
  std::printf("  splice rate          %.2f\n", stats.splice_rate);
  std::printf("  mean reused blocks   %.2f\n", stats.reused_fraction);
  std::printf("  mean cosine to full  %.4f\n", stats.mean_cos_sim);
  json.extra("stream_splice_rate", stats.splice_rate);
  json.extra("stream_reused_fraction", stats.reused_fraction);
  json.extra("stream_mean_cos_sim", stats.mean_cos_sim);

  if (!json.write(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

// T2 (Table 2) — recognition accuracy per configuration, on the easy
// (well-separated classes) and hard (confusable classes) worlds.
// Reproduces "minimal loss of recognition accuracy": the full system must
// stay within a few points of the no-cache DNN accuracy, with H-kNN doing
// the protecting on the confusable world.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("T2", "accuracy per configuration",
         "full-system accuracy within a few points of no-cache, on both the "
         "separable and the confusable world");

  struct World {
    const char* name;
    float confusion;
  };
  for (const World world : {World{"separable", 0.0f},
                            World{"confusable", 0.4f}}) {
    std::printf("--- world: %s (class_confusion=%.1f) ---\n", world.name,
                world.confusion);
    TextTable table;
    table.header({"configuration", "accuracy", "delta vs no-cache", "reuse",
                  "acc@reuse-paths", "acc@inference"});
    double baseline_acc = 0.0;
    for (const auto& [name, pipeline] : configuration_ladder()) {
      ScenarioConfig cfg = evaluation_scenario();
      cfg.scene.class_confusion = world.confusion;
      cfg.scene.group_size = 4;
      cfg.pipeline = pipeline;
      const ExperimentMetrics m = run_seeds(cfg);
      if (name == "no-cache") baseline_acc = m.accuracy();
      // Attribute correctness to paths: reuse-path accuracy vs DNN-path
      // accuracy shows whether reuse, not the model, loses the points.
      double reuse_correct = 0.0, reuse_answered = 0.0;
      for (const ResultSource source :
           {ResultSource::kImuFastPath, ResultSource::kTemporalReuse,
            ResultSource::kLocalCacheHit, ResultSource::kPeerCacheHit}) {
        const double fraction = m.source_fraction(source);
        reuse_answered += fraction;
        reuse_correct += fraction * m.accuracy_by_source(source);
      }
      const double reuse_acc =
          reuse_answered > 0.0 ? reuse_correct / reuse_answered : 0.0;
      table.row({name, TextTable::num(m.accuracy(), 4),
                 TextTable::num(m.accuracy() - baseline_acc, 4),
                 TextTable::num(m.reuse_ratio(), 3),
                 reuse_answered > 0.0 ? TextTable::num(reuse_acc, 4) : "-",
                 TextTable::num(
                     m.accuracy_by_source(ResultSource::kFullInference), 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}

// T3 (Table 3) — energy per recognized frame per configuration: on-device
// compute energy plus radio energy for the P2P traffic. Expected shape:
// reuse saves far more compute energy than the radio costs, so total
// energy falls down the ladder even for the P2P configuration.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("T3", "energy per frame per configuration",
         "compute energy falls with reuse; radio adds little; net saving "
         "grows down the ladder");

  TextTable table;
  table.header({"configuration", "compute mJ/frame", "radio mJ/frame",
                "total mJ/frame", "saving"});
  double baseline_total = 0.0;
  for (const auto& [name, pipeline] : configuration_ladder()) {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.pipeline = pipeline;
    const ExperimentMetrics m = run_seeds(cfg);
    const double compute = m.mean_compute_energy_mj();
    const double total = m.mean_total_energy_mj();
    const double radio = total - compute;
    if (name == "no-cache") baseline_total = total;
    table.row({name, TextTable::num(compute, 2), TextTable::num(radio, 3),
               TextTable::num(total, 2),
               TextTable::num(
                   baseline_total > 0.0
                       ? 100.0 * (1.0 - total / baseline_total)
                       : 0.0,
                   1) +
                   "%"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// F7 (Figure 7) — warm-start from a cache snapshot (extension; see
// cache/snapshot.hpp). A first session's cache is snapshotted; a second
// session over the same venue starts either cold or restored from the
// snapshot. Expected shape: the warm start eliminates most of the initial
// inference burst; the benefit decays over session time as both caches
// converge.

#include <cstdio>

#include "src/cache/snapshot.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/features/extractor.hpp"
#include "src/sim/runner.hpp"
#include "src/util/table.hpp"
#include "src/video/stream.hpp"

namespace {

using namespace apx;

struct SessionResult {
  std::vector<int> inferences_per_window;  ///< DNN runs per 10 s window
  double reuse = 0.0;
};

/// Replays `frames` frames of a venue stream against `cache`, counting DNN
/// fallbacks per window. Minimal single-device loop (no pipeline extras —
/// this exhibit isolates the cache-warmth effect).
SessionResult run_session(ApproxCache& cache, const SceneGenerator& scenes,
                          std::uint64_t stream_seed, int frames) {
  const auto extractor = make_cnn_extractor();
  auto model = make_oracle_model(mobilenet_v2_profile(), scenes.num_classes());
  Rng rng{stream_seed ^ 0xfeedULL};
  // Kiosk-style venue: the camera is steady (so views of an object do not
  // random-walk away from the vantage point) but objects rotate through
  // the frame quickly — many first encounters, which is where a warm cache
  // can help at all. Under free movement the per-frame view drift destroys
  // cross-session view similarity and warm-starting has nothing to offer
  // (the earlier revisions of this bench measured exactly that).
  const MobilityModel mobility = MobilityModel::constant(
      MotionState::kStationary, static_cast<SimDuration>(frames) * kSecond);
  const ZipfSampler zipf{
      static_cast<std::size_t>(scenes.num_classes()), 1.0};
  VideoStreamConfig video;
  video.change_rate_stationary = 0.8;  // objects rotate through the frame
  video.view_pan_sigma = 0.12f;        // consistent vantage points
  video.view_zoom_min = 0.95f;
  video.view_zoom_max = 1.10f;
  VideoStreamGenerator stream{scenes, mobility, zipf, video, stream_seed};
  SessionResult result;
  int window_inferences = 0;
  int hits = 0;
  for (int i = 0; i < frames; ++i) {
    const Frame frame = stream.next();
    const FeatureVec key = extractor->extract(frame.image);
    const auto lookup = cache.lookup({.features = key, .now = frame.t});
    if (lookup.vote.has_value()) {
      ++hits;
    } else {
      ++window_inferences;
      const Prediction pred = model->infer(frame.image, frame.true_label, rng);
      cache.insert(key, pred.label, pred.confidence, frame.t);
    }
    if ((i + 1) % 100 == 0) {  // 10 s at 10 fps
      result.inferences_per_window.push_back(window_inferences);
      window_inferences = 0;
    }
  }
  result.reuse = static_cast<double>(hits) / static_cast<double>(frames);
  return result;
}

ApproxCache make_cache() {
  ApproxCacheConfig cfg;
  cfg.capacity = 1024;
  // CNN-embedding geometry: intra-class distances ~0.02-0.03, inter-class
  // >= ~0.065 — the threshold must sit between them, or a dense warm cache
  // pulls wrong-class neighbours into every vote and abstains.
  cfg.hknn.max_distance = 0.04f;
  return ApproxCache{64, cfg, make_utility_policy()};
}

}  // namespace

int main() {
  std::printf("=== F7: warm-start from a cache snapshot ===\n");
  std::printf("expected shape: warm start removes most of the early "
              "inference burst; benefit fades as the cold cache fills\n\n");

  SceneGenerator::Config world;
  world.num_classes = 96;
  world.seed = 31;
  const SceneGenerator scenes{world};
  constexpr int kFrames = 600;  // one minute at 10 fps

  // Session 1 builds the snapshot (a longer visit covering the venue).
  ApproxCache first = make_cache();
  run_session(first, scenes, /*stream_seed=*/100, 2 * kFrames);
  const auto snapshot = save_snapshot(first, kFrames * 100 * kMillisecond);
  std::printf("session 1 left %zu entries (%zu snapshot bytes)\n\n",
              first.size(), snapshot.size());

  // Session 2, different visitor (different stream), cold vs warm.
  ApproxCache cold = make_cache();
  const SessionResult cold_result =
      run_session(cold, scenes, /*stream_seed=*/200, kFrames);
  ApproxCache warm = make_cache();
  load_snapshot(warm, snapshot, 0);
  const SessionResult warm_result =
      run_session(warm, scenes, /*stream_seed=*/200, kFrames);

  TextTable table;
  table.header({"window (10 s)", "cold inferences", "warm inferences"});
  for (std::size_t w = 0; w < cold_result.inferences_per_window.size(); ++w) {
    table.row({std::to_string(w + 1),
               std::to_string(cold_result.inferences_per_window[w]),
               std::to_string(warm_result.inferences_per_window[w])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("session reuse: cold %.3f vs warm %.3f\n", cold_result.reuse,
              warm_result.reuse);
  return 0;
}

// F9 (Figure 9) — sustainable frame rate. The pipeline drops frames while
// busy, so a configuration's real-time capacity shows up as the dropped
// fraction when the camera rate exceeds what it can absorb. Expected
// shape: no-cache saturates near 1/model-latency (~16 fps for the 60 ms
// model) and sheds the rest; the full system absorbs 30 fps because most
// frames take ~0.1-10 ms.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F9", "dropped frames & latency vs camera frame rate",
         "no-cache saturates near 1/inference-latency; the full system "
         "absorbs 30 fps");

  TextTable table;
  table.header({"fps", "configuration", "offered", "processed", "dropped %",
                "mean ms"});
  for (const double fps : {5.0, 10.0, 20.0, 30.0}) {
    for (const auto& [name, pipeline] :
         {configuration_ladder()[0],    // no-cache
          configuration_ladder()[5]}) { // full system
      ScenarioConfig cfg = evaluation_scenario();
      cfg.duration = 30 * kSecond;
      cfg.video.fps = fps;
      cfg.pipeline = pipeline;
      cfg.seed = 6000;
      const ExperimentMetrics m = run_scenario(cfg);
      const std::size_t offered = m.frames() + m.dropped();
      table.row({TextTable::num(fps, 0), name, std::to_string(offered),
                 std::to_string(m.frames()),
                 TextTable::num(offered > 0
                                    ? 100.0 * static_cast<double>(m.dropped()) /
                                          static_cast<double>(offered)
                                    : 0.0,
                                1),
                 TextTable::num(m.mean_latency_ms())});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

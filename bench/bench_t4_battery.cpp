// T4 (Table 4) — battery lifetime: hours of continuous recognition on one
// charge per configuration, derived from each configuration's measured
// per-frame energy (compute + radio) plus the phone's baseline idle+camera
// rails. Expected shape: lifetime extends substantially down the ladder,
// but sub-linearly in the energy saving (the baseline rails dominate once
// recognition energy is small) — the honest version of "saves battery".

#include "bench/common.hpp"
#include "src/device/battery.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("T4", "battery lifetime per configuration",
         "lifetime grows down the ladder, saturating at the idle+camera "
         "floor");

  const BatteryParams battery;  // 3000 mAh @ 3.85 V, ~1.35 W baseline
  const double fps = 10.0;
  {
    // The ceiling nothing can beat: recognition for free.
    const double ceiling = continuous_recognition_hours(battery, 0.0, fps);
    std::printf("baseline rails only (idle+camera): %.2f h ceiling\n\n",
                ceiling);
  }

  TextTable table;
  table.header({"configuration", "mJ/frame", "recognition W", "lifetime h",
                "vs no-cache"});
  double nocache_hours = 0.0;
  for (const auto& [name, pipeline] : configuration_ladder()) {
    ScenarioConfig cfg = evaluation_scenario();
    cfg.pipeline = pipeline;
    const ExperimentMetrics m = run_seeds(cfg);
    const double per_frame = m.mean_total_energy_mj();
    const double hours =
        continuous_recognition_hours(battery, per_frame, fps);
    if (name == "no-cache") nocache_hours = hours;
    const double delta_pct =
        nocache_hours > 0.0 ? 100.0 * (hours / nocache_hours - 1.0) : 0.0;
    table.row({name, TextTable::num(per_frame, 1),
               TextTable::num(per_frame * fps / 1000.0, 2),
               TextTable::num(hours, 2),
               (delta_pct >= 0.0 ? "+" : "") + TextTable::num(delta_pct, 1) +
                   "%"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// F8 (Figure 8) — infrastructure-less P2P vs the region edge aggregation
// tier (src/edge), on the collaboration-friendly workload. The edge is a
// sharded region cache with error-controlled admission that devices query
// after a local/P2P miss and feed on DNN validation. Expected shape: in a
// stable group P2P recovers most of the edge benefit without
// infrastructure; under range churn the edge pulls ahead, because a device
// that walked away from its peers still reaches the region service.
// The second half sweeps EdgeParams::error_budget on a direct-API
// admission stress: a feed stream with a controlled wrong-label rate
// hammering one service. The full-sim path cannot exercise the gate
// densely — a device only feeds after a miss everywhere, and a miss
// usually means the neighbourhood is empty, where admission is free at any
// budget — so the stress isolates what the gate actually trades.
//
// Writes the committed exhibit BENCH_edge.json.

#include <cmath>
#include <cstdint>

#include "bench/common.hpp"
#include "src/obs/report.hpp"
#include "src/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace apx;
  using namespace apx::bench;

  banner("F8", "infrastructure-less P2P vs region edge tier",
         "P2P recovers most of the edge benefit in a stable group; the edge "
         "wins under churn and its admission budget trades hits for error");

  // --smoke: shrunk run for CI legs; same structure, same JSON schema.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::string out_path =
      argc > 2 ? argv[2] : (smoke ? "BENCH_edge_smoke.json" : "BENCH_edge.json");

  auto workload = [&](bool churn) {
    ScenarioConfig cfg = evaluation_scenario();
    // Static-image workload (the abstract's other headline case): a photo
    // app snapping a different object every couple of seconds. No temporal
    // locality exists, so reuse must come from recognition history — own
    // or, crucially, nearby devices'.
    cfg.scene.num_classes = 192;
    cfg.zipf_s = 1.0;
    cfg.duration = (smoke ? 30 : 120) * kSecond;
    cfg.video.fps = 0.5;                    // one photo per 2 s
    cfg.video.change_rate_stationary = 2.0; // every photo: a new object
    cfg.video.change_rate_minor = 2.0;
    cfg.video.change_rate_major = 2.0;
    cfg.p_stationary = 0.2;
    cfg.p_minor = 0.6;
    cfg.p_major = 0.2;
    cfg.num_devices = 6;
    cfg.model = resnet50_profile();  // collaboration pays when inference is dear
    // Co-located people physically see the same object from similar
    // vantage points; without view overlap no feature scheme can match
    // another device's entry.
    cfg.video.view_pan_sigma = 0.15f;
    cfg.video.view_zoom_min = 0.95f;
    cfg.video.view_zoom_max = 1.15f;
    cfg.seed = 5000;
    if (churn) cfg.churn_period = 5 * kSecond;
    return cfg;
  };

  struct Outcome {
    double mean_ms = 0.0;
    double reuse = 0.0;
    double accuracy = 0.0;
    double edge_hit_rate = 0.0;  ///< frames answered by the edge tier
    std::size_t edge_entries = 0;
  };
  auto measure = [](const ScenarioConfig& cfg) {
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    Outcome o;
    o.mean_ms = m.mean_latency_ms();
    o.reuse = m.reuse_ratio();
    o.accuracy = m.accuracy();
    o.edge_hit_rate = static_cast<double>(m.sources().get("edge-cache")) /
                      static_cast<double>(m.frames());
    o.edge_entries = runner.edge_cache_size();
    return o;
  };

  struct Variant {
    const char* name;
    const char* ladder;
    std::size_t hotset;
  };
  const Variant variants[] = {
      {"solo (no sharing)", "imu,temporal,local,dnn", 0},
      {"p2p", "imu,temporal,local,p2p,dnn", 0},
      {"p2p + hot-set push", "imu,temporal,local,p2p,dnn", 24},
      {"edge only", "imu,temporal,local,edge,dnn", 0},
      {"p2p + edge", "imu,temporal,local,p2p,edge,dnn", 0},
  };

  const std::size_t dim = make_extractor(ExtractorKind::kCnn)->dim();
  BenchJson json("f8_edge", dim, EdgeParams{}.capacity);

  for (const bool churn : {false, true}) {
    const char* regime = churn ? "churn" : "stable";
    std::printf("--- %s ---\n", churn ? "with range churn (5 s period)"
                                      : "stable group");
    TextTable table;
    table.header({"deployment", "mean ms", "reuse", "edge hits", "entries"});
    Outcome p2p_only, p2p_edge;
    for (const Variant& v : variants) {
      ScenarioConfig cfg = workload(churn);
      cfg.pipeline = make_ladder_config(v.ladder);
      cfg.peer.hotset_push_max = v.hotset;
      const Outcome o = measure(cfg);
      table.row({v.name, TextTable::num(o.mean_ms),
                 TextTable::num(o.reuse, 3), TextTable::num(o.edge_hit_rate, 3),
                 std::to_string(o.edge_entries)});
      if (std::string(v.name) == "p2p") p2p_only = o;
      if (std::string(v.name) == "p2p + edge") p2p_edge = o;
    }
    std::printf("%s\n", table.render().c_str());
    // base = P2P-only, new = P2P+edge: "speedup" is the latency ratio the
    // edge tier buys on this regime.
    json.metric(std::string(regime) + "_mean_latency_ms", p2p_only.mean_ms,
                p2p_edge.mean_ms);
    json.extra(std::string(regime) + "_p2p_reuse", p2p_only.reuse);
    json.extra(std::string(regime) + "_edge_reuse", p2p_edge.reuse);
    json.extra(std::string(regime) + "_edge_hit_rate", p2p_edge.edge_hit_rate);
    json.extra(std::string(regime) + "_edge_entries",
               static_cast<double>(p2p_edge.edge_entries));
  }

  // Error-budget sweep: the admission gate's accuracy/hit-rate trade-off,
  // on a direct-API stress where 15% of fed labels are wrong (a noisy
  // model, or a stale device echoing the region). Expected shape: a tight
  // budget rejects conflicting feeds, so incumbent neighbourhoods stay
  // homogeneous and keep ANSWERING — high hit rate, but contested regions
  // keep serving whichever label arrived first. The open budget=1 ablation
  // admits every conflict; H-kNN homogeneity collapses and the edge
  // abstains on a third of queries — the surviving votes are pristine, but
  // coverage is gone. The budget walks that curve.
  std::printf("--- admission error-budget sweep "
              "(direct stress, 15%% wrong-label feeds) ---\n");
  const std::size_t kDim = 64, kClasses = 48;
  const int kEvents = smoke ? 1500 : 6000;
  const float kWrongRate = 0.15f;
  // Class centroids: random unit vectors from a fixed seed; views jitter
  // around them tightly (~0.11 apart) so same-class views match under
  // max_distance while distinct classes (~sqrt(2) apart) never do.
  Rng world{99};
  std::vector<float> centroids(kClasses * kDim);
  for (std::size_t c = 0; c < kClasses; ++c) {
    float norm = 0.0f;
    for (std::size_t i = 0; i < kDim; ++i) {
      const float x = static_cast<float>(world.normal());
      centroids[c * kDim + i] = x;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < kDim; ++i) centroids[c * kDim + i] /= norm;
  }
  auto view_of = [&](std::size_t c, Rng& rng) {
    FeatureVec v(kDim);
    float norm = 0.0f;
    for (std::size_t i = 0; i < kDim; ++i) {
      v[i] = centroids[c * kDim + i] + 0.01f * static_cast<float>(rng.normal());
      norm += v[i] * v[i];
    }
    norm = std::sqrt(norm);
    for (std::size_t i = 0; i < kDim; ++i) v[i] /= norm;
    return v;
  };

  TextTable sweep;
  sweep.header({"error budget", "hit rate", "served accuracy", "admitted",
                "rejected"});
  const char* budgets[] = {"0", "0.1", "0.25", "0.5", "1"};
  for (const char* b : budgets) {
    EdgeParams params;
    params.shards = 4;
    params.capacity = 2048;
    params.ttl = 60 * kSecond;  // longer than the stress: expiry stays out
    params.error_budget = static_cast<float>(std::atof(b));
    params.cache.hknn.max_distance = 0.3f;
    params.cache.hknn.k = 8;
    EdgeCacheService edge{kDim, params};

    Rng rng{7};
    std::size_t queries = 0, hits = 0, correct_hits = 0;
    for (int e = 0; e < kEvents; ++e) {
      const auto c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kClasses) - 1));
      const SimTime now = static_cast<SimTime>(e) * kMillisecond;
      const FeatureVec key = view_of(c, rng);
      if (rng.uniform() < 0.5) {
        ++queries;
        const CacheResult res = edge.query(key, now);
        if (res.vote.has_value()) {
          ++hits;
          if (res.vote->label == static_cast<Label>(c)) ++correct_hits;
        }
      } else {
        Label label = static_cast<Label>(c);
        if (rng.uniform() < kWrongRate) {
          label = static_cast<Label>(
              (c + 1 +
               static_cast<std::size_t>(rng.uniform_int(
                   0, static_cast<std::int64_t>(kClasses) - 2))) %
              kClasses);
        }
        edge.feed(key, label, 0.9f, now);
      }
    }
    const double hit_rate =
        static_cast<double>(hits) / static_cast<double>(queries);
    const double served_acc =
        hits > 0 ? static_cast<double>(correct_hits) /
                       static_cast<double>(hits)
                 : 0.0;
    sweep.row({b, TextTable::num(hit_rate, 3), TextTable::num(served_acc, 4),
               std::to_string(edge.counters().get("admit")),
               std::to_string(edge.counters().get("reject_budget"))});
    json.extra(std::string("budget_") + b + "_hit_rate", hit_rate);
    json.extra(std::string("budget_") + b + "_served_accuracy", served_acc);
  }
  std::printf("%s\n", sweep.render().c_str());

  if (!json.write(out_path)) return 1;
  std::printf("exhibit -> %s\n", out_path.c_str());
  return 0;
}

// F8 (Figure 8) — infrastructure-less P2P vs an infrastructure-based edge
// cache server, on the collaboration-friendly workload. The edge server is
// a device-less super-peer with a large cache (see DESIGN.md extensions).
// Expected shape: the edge helps about as much as a well-populated peer
// group (it aggregates everyone's results), showing that the poster's
// infrastructure-less design recovers most of the infrastructure benefit;
// combining both adds little on top. The hot-set push closes part of the
// churn gap without any infrastructure.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F8", "infrastructure-less P2P vs edge cache server",
         "P2P recovers most of the edge benefit without infrastructure; "
         "hot-set push helps under churn");

  auto workload = [](bool churn) {
    ScenarioConfig cfg = evaluation_scenario();
    // Static-image workload (the abstract's other headline case): a photo
    // app snapping a different object every couple of seconds. No temporal
    // locality exists, so reuse must come from recognition history — own
    // or, crucially, nearby devices'.
    cfg.scene.num_classes = 192;
    cfg.zipf_s = 1.0;
    cfg.duration = 120 * kSecond;
    cfg.video.fps = 0.5;                    // one photo per 2 s
    cfg.video.change_rate_stationary = 2.0; // every photo: a new object
    cfg.video.change_rate_minor = 2.0;
    cfg.video.change_rate_major = 2.0;
    cfg.p_stationary = 0.2;
    cfg.p_minor = 0.6;
    cfg.p_major = 0.2;
    cfg.num_devices = 6;
    cfg.model = resnet50_profile();  // collaboration pays when inference is dear
    // Co-located people physically see the same object from similar
    // vantage points; without view overlap no feature scheme can match
    // another device's entry.
    cfg.video.view_pan_sigma = 0.15f;
    cfg.video.view_zoom_min = 0.95f;
    cfg.video.view_zoom_max = 1.15f;
    if (churn) cfg.churn_period = 5 * kSecond;
    return cfg;
  };

  for (const bool churn : {false, true}) {
    std::printf("--- %s ---\n", churn ? "with range churn (5 s period)"
                                      : "stable group");
    TextTable table;
    table.header({"deployment", "mean ms", "reuse", "edge entries"});

    struct Variant {
      const char* name;
      bool p2p;
      bool edge;
      std::size_t hotset;
    };
    const Variant variants[] = {
        {"solo (no sharing)", false, false, 0},
        {"p2p", true, false, 0},
        {"p2p + hot-set push", true, false, 24},
        {"p2p + edge server", true, true, 0},
        {"p2p + edge + hot-set", true, true, 24},
    };
    for (const Variant& v : variants) {
      ScenarioConfig cfg = workload(churn);
      cfg.pipeline = make_full_system_config();
      cfg.pipeline.enable_p2p = v.p2p;
      cfg.edge_server = v.edge;
      cfg.peer.hotset_push_max = v.hotset;
      cfg.seed = 5000;
      ExperimentRunner runner{cfg};
      const ExperimentMetrics m = runner.run();
      table.row({v.name, TextTable::num(m.mean_latency_ms()),
                 TextTable::num(m.reuse_ratio(), 3),
                 std::to_string(runner.edge_cache_size())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}

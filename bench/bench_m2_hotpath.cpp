// M2 — hot-path microbenchmark: old-vs-new kernels and LSH lookup latency.
//
// Measures (a) candidate scoring: the pre-overhaul per-pair scalar path
// (hash-map entry lookup + one-element-at-a-time l2) against the batched
// arena kernel l2_sq_batch / l2_sq_gather; (b) end-to-end LSH lookup
// p50/p99 at 10k entries (dim 64) against a faithful in-file copy of the
// pre-overhaul PStableLshIndex (per-hash dot() calls, per-query vector
// allocations, byte-at-a-time FNV key, sort+unique dedup).
//
// Emits a machine-readable BENCH_hotpath.json (path = argv[1], default
// ./BENCH_hotpath.json) so the perf trajectory is tracked across PRs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "src/ann/lsh.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Best-of-`reps` wall time for `fn()`, in nanoseconds.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, ns_since(t0));
  }
  return best;
}

// ------------------------------------------------------------------
// Faithful copy of the pre-overhaul index (insert/query only): per-hash
// projection dot()s, byte-at-a-time FNV bucket key, per-query coords/
// fractions/candidates allocations, sort+unique dedup, one hash-map
// lookup per scored candidate. The benchmark baseline, not library code.
class BaselineLshIndex {
 public:
  BaselineLshIndex(std::size_t dim, const LshParams& params)
      : dim_(dim), params_(params) {
    Rng rng{params.seed};
    tables_.resize(params.num_tables);
    for (auto& table : tables_) {
      table.projections.resize(params.hashes_per_table);
      table.offsets.resize(params.hashes_per_table);
      for (std::size_t h = 0; h < params.hashes_per_table; ++h) {
        auto& proj = table.projections[h];
        proj.resize(dim);
        for (float& x : proj) x = static_cast<float>(rng.normal());
        table.offsets[h] =
            static_cast<float>(rng.uniform(0.0, params.bucket_width));
      }
    }
  }

  void insert(VecId id, const FeatureVec& v) {
    Entry entry{v, {}};
    entry.keys.reserve(tables_.size());
    for (auto& table : tables_) {
      const std::uint64_t key = bucket_key(table, v);
      table.buckets[key].push_back(id);
      entry.keys.push_back(key);
    }
    entries_.emplace(id, std::move(entry));
  }

  std::vector<Neighbor> query(std::span<const float> q, std::size_t k) const {
    std::vector<VecId> candidates;
    std::vector<float> fractions;
    for (const auto& table : tables_) {
      auto coords = quantized_coords(table, q, &fractions);
      const auto base_it = table.buckets.find(fnv_hash(coords));
      if (base_it != table.buckets.end()) {
        candidates.insert(candidates.end(), base_it->second.begin(),
                          base_it->second.end());
      }
      if (params_.probes_per_table > 0) {
        std::vector<std::size_t> order(coords.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&fractions](std::size_t a, std::size_t b) {
                    const float da =
                        std::min(fractions[a], 1.0f - fractions[a]);
                    const float db =
                        std::min(fractions[b], 1.0f - fractions[b]);
                    return da < db;
                  });
        const std::size_t probes =
            std::min(params_.probes_per_table, coords.size());
        for (std::size_t p = 0; p < probes; ++p) {
          const std::size_t h = order[p];
          const std::int64_t delta = fractions[h] < 0.5f ? -1 : 1;
          coords[h] += delta;
          const auto it = table.buckets.find(fnv_hash(coords));
          if (it != table.buckets.end()) {
            candidates.insert(candidates.end(), it->second.begin(),
                              it->second.end());
          }
          coords[h] -= delta;
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    std::vector<Neighbor> result;
    result.reserve(candidates.size());
    for (const VecId id : candidates) {
      const auto& vec = entries_.at(id).vec;
      result.push_back({id, std::sqrt(ref::l2_sq(q, vec))});
    }
    const std::size_t take = std::min(k, result.size());
    std::partial_sort(result.begin(),
                      result.begin() + static_cast<std::ptrdiff_t>(take),
                      result.end(), [](const Neighbor& a, const Neighbor& b) {
                        return a.distance < b.distance ||
                               (a.distance == b.distance && a.id < b.id);
                      });
    result.resize(take);
    return result;
  }

 private:
  struct Table {
    std::vector<FeatureVec> projections;
    std::vector<float> offsets;
    std::unordered_map<std::uint64_t, std::vector<VecId>> buckets;
  };
  struct Entry {
    FeatureVec vec;
    std::vector<std::uint64_t> keys;
  };

  static std::uint64_t fnv_hash(std::span<const std::int64_t> coords) {
    std::uint64_t key = 0xcbf29ce484222325ULL;
    for (const std::int64_t q : coords) {
      const auto uq = static_cast<std::uint64_t>(q);
      for (int byte = 0; byte < 8; ++byte) {
        key ^= (uq >> (8 * byte)) & 0xff;
        key *= 0x100000001b3ULL;
      }
    }
    return key;
  }

  std::vector<std::int64_t> quantized_coords(
      const Table& table, std::span<const float> v,
      std::vector<float>* fractions) const {
    std::vector<std::int64_t> coords(params_.hashes_per_table);
    if (fractions != nullptr) fractions->resize(params_.hashes_per_table);
    for (std::size_t h = 0; h < params_.hashes_per_table; ++h) {
      const float scaled =
          (ref::dot(table.projections[h], v) + table.offsets[h]) /
          params_.bucket_width;
      const float floor_val = std::floor(scaled);
      coords[h] = static_cast<std::int64_t>(floor_val);
      if (fractions != nullptr) (*fractions)[h] = scaled - floor_val;
    }
    return coords;
  }

  std::uint64_t bucket_key(const Table& table, std::span<const float> v) const {
    return fnv_hash(quantized_coords(table, v, nullptr));
  }

  std::size_t dim_;
  LshParams params_;
  std::vector<Table> tables_;
  std::unordered_map<VecId, Entry> entries_;
};

struct KernelResult {
  double scalar_ns_op = 0.0;
  double batch_ns_op = 0.0;
  double speedup() const { return scalar_ns_op / batch_ns_op; }
};

/// Candidate scoring, old shape vs new: hash-map lookup + scalar l2 per
/// pair, against one batched pass over the contiguous arena.
KernelResult bench_scoring(std::size_t dim, std::size_t n, int reps) {
  Rng rng{11};
  std::vector<float> arena(n * dim);
  for (float& x : arena) x = static_cast<float>(rng.normal());
  std::unordered_map<VecId, FeatureVec> map_rows;  // the old entry store
  for (std::size_t i = 0; i < n; ++i) {
    map_rows.emplace(static_cast<VecId>(i),
                     FeatureVec(arena.begin() + static_cast<std::ptrdiff_t>(i * dim),
                                arena.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim)));
  }
  FeatureVec q(dim);
  for (float& x : q) x = static_cast<float>(rng.normal());

  volatile float sink = 0.0f;
  KernelResult r;
  r.scalar_ns_op = best_of(reps, [&] {
                     float acc = 0.0f;
                     for (std::size_t i = 0; i < n; ++i) {
                       acc += ref::l2_sq(q, map_rows.at(static_cast<VecId>(i)));
                     }
                     sink = sink + acc;
                   }) /
                   static_cast<double>(n);
  std::vector<float> out(n);
  r.batch_ns_op = best_of(reps, [&] {
                    l2_sq_batch(q, arena.data(), n, out.data());
                    sink = sink + out[n / 2];
                  }) /
                  static_cast<double>(n);
  return r;
}

/// Pure kernel comparison on one pair (no layout effects).
KernelResult bench_pair_kernel(std::size_t dim, int reps) {
  Rng rng{13};
  FeatureVec a(dim), b(dim);
  for (float& x : a) x = static_cast<float>(rng.normal());
  for (float& x : b) x = static_cast<float>(rng.normal());
  const int iters = 20000;
  volatile float sink = 0.0f;
  KernelResult r;
  r.scalar_ns_op = best_of(reps, [&] {
                     float acc = 0.0f;
                     for (int i = 0; i < iters; ++i) {
                       acc += ref::l2_sq(a, b);
                       a[0] = acc * 1e-30f;  // serialize iterations
                     }
                     sink = sink + acc;
                   }) /
                   iters;
  r.batch_ns_op = best_of(reps, [&] {
                    float acc = 0.0f;
                    for (int i = 0; i < iters; ++i) {
                      acc += l2_sq(a, b);
                      a[0] = acc * 1e-30f;
                    }
                    sink = sink + acc;
                  }) /
                  iters;
  return r;
}

struct LookupResult {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_candidates = 0.0;
};

template <typename Index>
LookupResult bench_lookup(Index& index, const std::vector<FeatureVec>& queries,
                          std::size_t k) {
  // Warm-up pass (populates caches/scratch), then one timed pass per query.
  for (const auto& q : queries) (void)index.query(q, k);
  std::vector<double> ns;
  ns.reserve(queries.size());
  std::size_t candidates = 0;
  std::vector<Neighbor> result;
  for (const auto& q : queries) {
    const auto t0 = Clock::now();
    result = index.query(q, k);
    ns.push_back(ns_since(t0));
    if (!result.empty()) ++candidates;  // keep the result observable
  }
  std::sort(ns.begin(), ns.end());
  LookupResult r;
  r.p50_ns = ns[ns.size() / 2];
  r.p99_ns = ns[static_cast<std::size_t>(
      static_cast<double>(ns.size() - 1) * 0.99)];
  r.mean_candidates = static_cast<double>(candidates);
  return r;
}

}  // namespace
}  // namespace apx::bench

int main(int argc, char** argv) {
  using namespace apx;
  using namespace apx::bench;

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kEntries = 10'000;

  std::printf("=== M2: hot-path microbenchmarks ===\n");
  std::printf("dim=%zu entries=%zu (kernels: best-of-5)\n\n", kDim, kEntries);

  const KernelResult pair = bench_pair_kernel(kDim, 5);
  std::printf("l2_sq single pair      : scalar %7.2f ns/op | unrolled %7.2f ns/op | %.2fx\n",
              pair.scalar_ns_op, pair.batch_ns_op, pair.speedup());

  const KernelResult scoring = bench_scoring(kDim, kEntries, 5);
  std::printf("candidate scoring      : per-pair %6.2f ns/row | l2_sq_batch %6.2f ns/row | %.2fx\n",
              scoring.scalar_ns_op, scoring.batch_ns_op, scoring.speedup());

  // --- end-to-end LSH lookup, old implementation vs new ---
  // Clustered workload, matching what the approximate cache actually holds:
  // many near-duplicate views of a modest set of objects, queried with yet
  // another view. Buckets therefore contain whole clusters and the lookup
  // cost is dominated by candidate scanning — the case the paper's latency
  // claim depends on.
  LshParams params;
  params.num_tables = 4;
  params.hashes_per_table = 8;
  params.bucket_width = 2.5f;  // ~8 x intra-cluster d_k, where A-LSH converges
  params.probes_per_table = 2;
  constexpr std::size_t kClusters = 128;

  Rng rng{2025};
  std::vector<FeatureVec> centers;
  for (std::size_t c = 0; c < kClusters; ++c) {
    FeatureVec v(kDim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    normalize(v);
    centers.push_back(std::move(v));
  }
  auto near_center = [&rng, &centers, kDim](std::size_t c) {
    FeatureVec v = centers[c];
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.03));
    normalize(v);
    return v;
  };
  std::vector<FeatureVec> data;
  data.reserve(kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    data.push_back(near_center(i % kClusters));
  }
  std::vector<FeatureVec> queries;
  for (int i = 0; i < 2000; ++i) {
    queries.push_back(near_center(rng.uniform_u64(kClusters)));
  }

  BaselineLshIndex old_index{kDim, params};
  PStableLshIndex new_index{kDim, params};
  for (std::size_t i = 0; i < data.size(); ++i) {
    old_index.insert(static_cast<VecId>(i), data[i]);
    new_index.insert(static_cast<VecId>(i), data[i]);
  }

  const LookupResult old_lookup = bench_lookup(old_index, queries, 8);
  const LookupResult new_lookup = bench_lookup(new_index, queries, 8);
  const double speedup_p50 = old_lookup.p50_ns / new_lookup.p50_ns;
  const double speedup_p99 = old_lookup.p99_ns / new_lookup.p99_ns;
  std::printf("\nLSH lookup (10k entries, k=8, 2 probes/table):\n");
  std::printf("  old  p50 %8.0f ns   p99 %8.0f ns\n", old_lookup.p50_ns,
              old_lookup.p99_ns);
  std::printf("  new  p50 %8.0f ns   p99 %8.0f ns\n", new_lookup.p50_ns,
              new_lookup.p99_ns);
  std::printf("  speedup: %.2fx (p50), %.2fx (p99)\n", speedup_p50,
              speedup_p99);
  double mean_candidates = 0.0;
  std::vector<Neighbor> nn;
  QueryStats qst;
  for (const auto& q : queries) {
    new_index.query_into(q, 8, nn, &qst);
    mean_candidates += static_cast<double>(qst.candidates);
  }
  mean_candidates /= static_cast<double>(queries.size());
  std::printf("  candidates scanned/query: %.0f\n", mean_candidates);

  BenchJson json{"m2_hotpath", kDim, kEntries};
  json.metric("l2_sq_pair", pair.scalar_ns_op, pair.batch_ns_op);
  json.metric("candidate_scoring", scoring.scalar_ns_op, scoring.batch_ns_op);
  json.metric("lsh_lookup_p50", old_lookup.p50_ns, new_lookup.p50_ns);
  json.metric("lsh_lookup_p99", old_lookup.p99_ns, new_lookup.p99_ns);
  json.extra("mean_candidates", mean_candidates);
  if (!json.write(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

// A1 (Ablation 1) — adaptive vs fixed-width LSH as the cache densifies.
// Measures, at several cache sizes, the candidate-set size (the work a
// lookup does) and the top-1 recall against exact kNN, for (a) fixed LSH
// with a too-wide initial width, (b) fixed LSH with a too-narrow width,
// and (c) A-LSH started from the too-wide width. Expected shape: the wide
// fixed index scans ever more candidates; the narrow one loses recall;
// A-LSH holds both steady — the reason it exists.

#include <cstdio>

#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/exact_knn.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;

constexpr std::size_t kDim = 32;
constexpr std::size_t kClusters = 64;
constexpr float kClusterSigma = 0.04f;

FeatureVec cluster_point(std::size_t cluster, Rng& rng) {
  Rng crng{cluster * 7717 + 1};
  FeatureVec v(kDim);
  for (float& x : v) x = static_cast<float>(crng.normal());
  normalize(v);
  for (float& x : v) x += static_cast<float>(rng.normal(0.0, kClusterSigma));
  return v;
}

struct Probe {
  double recall = 0.0;
  double mean_candidates = 0.0;
  float width = 0.0f;
};

Probe probe(NnIndex& index, const ExactKnnIndex& truth, Rng& rng,
            std::size_t queries) {
  Probe p;
  std::size_t agree = 0, candidates = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const FeatureVec query = cluster_point(q % kClusters, rng);
    const auto approx = index.query(query, 1);
    const auto exact = truth.query(query, 1);
    if (!approx.empty() && !exact.empty() &&
        approx[0].distance <= exact[0].distance + 1e-6f) {
      ++agree;
    }
    if (auto* lsh = dynamic_cast<PStableLshIndex*>(&index)) {
      candidates += lsh->last_candidate_count();
      p.width = lsh->params().bucket_width;
    } else if (auto* alsh = dynamic_cast<AdaptiveLshIndex*>(&index)) {
      candidates += alsh->last_candidate_count();
      p.width = alsh->current_width();
    }
  }
  p.recall = static_cast<double>(agree) / static_cast<double>(queries);
  p.mean_candidates =
      static_cast<double>(candidates) / static_cast<double>(queries);
  return p;
}

}  // namespace

int main() {
  std::printf("=== A1: adaptive vs fixed LSH under growing cache density ===\n");
  std::printf("expected shape: fixed-wide scans more and more; fixed-narrow "
              "loses recall; A-LSH holds both\n\n");

  LshParams wide;
  wide.num_tables = 4;
  wide.hashes_per_table = 8;
  wide.bucket_width = 20.0f;  // pathologically wide: everything collides
  LshParams narrow = wide;
  narrow.bucket_width = 0.02f;  // too narrow: nothing collides

  AdaptiveLshParams adaptive;
  adaptive.lsh = wide;  // A-LSH starts from the same bad width
  adaptive.min_queries_between_rebuilds = 64;

  TextTable table;
  table.header({"size", "index", "recall@1", "mean candidates", "width"});
  for (const std::size_t size : {500u, 2000u, 8000u}) {
    ExactKnnIndex truth{kDim};
    PStableLshIndex fixed_wide{kDim, wide};
    PStableLshIndex fixed_narrow{kDim, narrow};
    AdaptiveLshIndex alsh{kDim, adaptive};
    Rng rng{42};
    for (VecId id = 0; id < size; ++id) {
      const FeatureVec v = cluster_point(id % kClusters, rng);
      truth.insert(id, v);
      fixed_wide.insert(id, v);
      fixed_narrow.insert(id, v);
      alsh.insert(id, v);
      // Interleave queries so the adaptive controller sees real traffic.
      if (id % 8 == 0) alsh.query(cluster_point(id % kClusters, rng), 4);
    }
    struct Row {
      const char* name;
      NnIndex* index;
    };
    for (const Row row : {Row{"fixed-wide", &fixed_wide},
                          Row{"fixed-narrow", &fixed_narrow},
                          Row{"a-lsh", &alsh}}) {
      Rng qrng{7};
      const Probe p = probe(*row.index, truth, qrng, 300);
      table.row({std::to_string(size), row.name,
                 TextTable::num(p.recall, 3),
                 TextTable::num(p.mean_candidates, 1),
                 TextTable::num(p.width, 3)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

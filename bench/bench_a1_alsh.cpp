// A1 (Ablation 1) — the recall-vs-latency frontier of the three local
// index backends: fixed/adaptive bucketed p-stable LSH vs query-aware
// QALSH, as the cache densifies from 10k to 1M entries.
//
// The workload is the cache's steady state: a bounded object population
// (64 clusters) accumulating near-duplicate views, so clusters grow into
// dense hotspots as n grows. Most queries are fresh views of a cached
// object (tiny k-th-neighbour distance); a minority are drifted views
// whose nearest neighbour sits ~25x further out. That drift tail is the
// fixed-width killer: a bucketed index must widen its ONE global width
// until the tail's neighbours collide, and at that width every easy query
// drags in its whole hotspot (candidates grow linearly with n). QALSH
// sizes the search radius per query — the controller's start radius keeps
// the easy majority at a narrow first round, and only the drifted tail
// pays extra virtual-rehash rounds — so the median stays cheap at 1M.
//
// Every backend is scored against the same exact ground truth (computed
// once per dataset) and reports recall@1 alongside wall-clock p50/p99 and
// mean candidates. The committed BENCH_qalsh.json exhibit compares, per
// size, the best p-stable operating point reaching 0.95 recall@1 against
// the best QALSH point reaching it.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/exact_knn.hpp"
#include "src/ann/qalsh.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using namespace apx;
using namespace apx::bench;

constexpr std::size_t kDim = 32;
constexpr std::size_t kClusters = 64;
constexpr double kViewSigma = 0.01;   ///< per-dim spread of cached views
constexpr double kEasySigma = 0.003;  ///< fresh view of a cached entry
constexpr double kHardSigma = 0.13;   ///< drifted view (~40x the easy d_1)

FeatureVec cluster_point(std::size_t cluster, Rng& rng) {
  Rng crng{cluster * 7717 + 1};
  FeatureVec v(kDim);
  for (float& x : v) x = static_cast<float>(crng.normal());
  normalize(v);
  for (float& x : v) x += static_cast<float>(rng.normal(0.0, kViewSigma));
  return v;
}

/// A query re-observes a random stored view; every tenth query has
/// drifted far enough that its neighbourhood is ~40x wider.
FeatureVec query_point(const std::vector<FeatureVec>& data, std::size_t q,
                       Rng& rng) {
  FeatureVec v = data[rng.uniform_u64(data.size())];
  const double sigma = q % 10 == 0 ? kHardSigma : kEasySigma;
  for (float& x : v) x += static_cast<float>(rng.normal(0.0, sigma));
  return v;
}

struct Frontier {
  double recall = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_candidates = 0.0;
};

/// Warms the backend (its width/radius controller sees real traffic), then
/// times every query and scores the batch against the shared ground truth.
Frontier probe(NnIndex& index, const GroundTruth& truth,
               const std::vector<FeatureVec>& queries) {
  using Clock = std::chrono::steady_clock;
  std::vector<Neighbor> out;
  QueryStats st;
  const std::size_t warm = std::min<std::size_t>(64, queries.size());
  std::vector<float> dks;
  dks.reserve(warm);
  for (std::size_t i = 0; i < warm; ++i) {
    index.query_into(queries[i], 1, out, &st);
    if (!out.empty()) dks.push_back(out.back().distance);
  }
  // The cache folds observed k-th-neighbour distances back into the index
  // after each lookup batch; give every backend the same signal (a no-op
  // for p-stable, the start-radius retune for QALSH).
  index.observe_query_feedback(dks, warm);
  std::vector<std::vector<Neighbor>> results(queries.size());
  std::vector<double> ns(queries.size());
  double candidates = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto t0 = Clock::now();
    index.query_into(queries[i], 1, results[i], &st);
    const auto t1 = Clock::now();
    ns[i] = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    candidates += static_cast<double>(st.candidates);
  }
  Frontier f;
  f.recall = recall_at_k(results, truth);
  f.mean_candidates = candidates / static_cast<double>(queries.size());
  f.p50_ns = percentile(ns, 50.0);
  f.p99_ns = percentile(ns, 99.0);
  return f;
}

struct Row {
  std::string name;
  enum class Family { kPStable, kAdaptive, kQalsh } family;
  Frontier f;
};

/// Best p50 among rows of `family` reaching `min_recall`; falls back to the
/// family's highest-recall row when none does (reported as-is: the exhibit
/// then shows the family simply cannot reach the recall target).
const Row* best_at_recall(const std::vector<Row>& rows,
                          Row::Family family, double min_recall) {
  const Row* best = nullptr;
  const Row* fallback = nullptr;
  for (const Row& row : rows) {
    if (row.family != family) continue;
    if (fallback == nullptr || row.f.recall > fallback->f.recall) {
      fallback = &row;
    }
    if (row.f.recall >= min_recall &&
        (best == nullptr || row.f.p50_ns < best->f.p50_ns)) {
      best = &row;
    }
  }
  return best != nullptr ? best : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_qalsh.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  banner("A1", "index backend recall-vs-latency frontier",
         "bucketed LSH trades recall for candidates with one global width; "
         "QALSH holds recall per query and keeps the median cheap");

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};

  BenchJson json("a1_qalsh_frontier", kDim, sizes.back());
  TextTable table;
  table.header({"size", "backend", "recall@1", "p50(us)", "p99(us)",
                "mean candidates"});

  for (const std::size_t size : sizes) {
    Rng rng{42};
    std::vector<FeatureVec> data;
    data.reserve(size);
    for (std::size_t id = 0; id < size; ++id) {
      data.push_back(cluster_point(id % kClusters, rng));
    }
    const std::size_t nq = size >= 1'000'000 ? 200 : 300;
    Rng qrng{7};
    std::vector<FeatureVec> queries;
    queries.reserve(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      queries.push_back(query_point(data, q, qrng));
    }
    ExactKnnIndex truth{kDim};
    for (VecId id = 0; id < size; ++id) truth.insert(id, data[id]);
    const GroundTruth gt = exact_ground_truth(truth, queries, 1);

    std::vector<Row> rows;
    for (const float width : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f}) {
      LshParams p;
      p.num_tables = 4;
      p.hashes_per_table = 8;
      p.bucket_width = width;
      PStableLshIndex index{kDim, p};
      for (VecId id = 0; id < size; ++id) index.insert(id, data[id]);
      char name[32];
      std::snprintf(name, sizeof(name), "pstable_w%g",
                    static_cast<double>(width));
      rows.push_back({name, Row::Family::kPStable,
                      probe(index, gt, queries)});
    }
    {
      AdaptiveLshParams p;
      p.lsh.num_tables = 4;
      p.lsh.hashes_per_table = 8;
      p.lsh.bucket_width = 4.0f;  // starts bad on purpose; the EMA adapts
      p.min_queries_between_rebuilds = 32;
      AdaptiveLshIndex index{kDim, p};
      for (VecId id = 0; id < size; ++id) index.insert(id, data[id]);
      rows.push_back({"a-lsh", Row::Family::kAdaptive,
                      probe(index, gt, queries)});
    }
    for (const float c : {1.5f, 2.0f, 3.0f}) {
      QalshParams p;
      p.c = c;
      QalshIndex index{kDim, p};
      for (VecId id = 0; id < size; ++id) index.insert(id, data[id]);
      index.flush();  // bulk load done: no unsorted tails during queries
      char name[32];
      std::snprintf(name, sizeof(name), "qalsh_c%g",
                    static_cast<double>(c));
      rows.push_back({name, Row::Family::kQalsh,
                      probe(index, gt, queries)});
    }

    char size_label[16];
    if (size % 1'000'000 == 0) {
      std::snprintf(size_label, sizeof(size_label), "%zuM",
                    size / 1'000'000);
    } else {
      std::snprintf(size_label, sizeof(size_label), "%zuk", size / 1'000);
    }
    for (const Row& row : rows) {
      table.row({size_label, row.name, TextTable::num(row.f.recall, 3),
                 TextTable::num(row.f.p50_ns / 1000.0, 1),
                 TextTable::num(row.f.p99_ns / 1000.0, 1),
                 TextTable::num(row.f.mean_candidates, 1)});
      json.extra(std::string(size_label) + "_" + row.name + "_recall",
                 row.f.recall);
    }
    const Row* pstable =
        best_at_recall(rows, Row::Family::kPStable, 0.95);
    const Row* qalsh = best_at_recall(rows, Row::Family::kQalsh, 0.95);
    const Row* alsh = best_at_recall(rows, Row::Family::kAdaptive, 0.95);
    if (pstable != nullptr && qalsh != nullptr) {
      json.metric(std::string("p50_at_recall95_") + size_label,
                  pstable->f.p50_ns, qalsh->f.p50_ns);
      json.extra(std::string(size_label) + "_pstable_pick_recall",
                 pstable->f.recall);
      json.extra(std::string(size_label) + "_qalsh_pick_recall",
                 qalsh->f.recall);
    }
    if (alsh != nullptr) {
      json.extra(std::string(size_label) + "_alsh_p50_ns", alsh->f.p50_ns);
    }
  }

  std::printf("%s", table.render().c_str());
  if (!json.write(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

// M4 — concurrent shared-cache benchmark: QPS and tail latency of the
// batched lookup path when one ApproxCache is hammered from many threads.
//
// Phases:
//   1. preload a clustered working set (the shape the cache holds in the
//      paper's steady state: many near-duplicate views of a modest object
//      population);
//   2. single-thread comparison: the legacy exclusive-path lookup() against
//      lookup_batch() — the batch amortization with zero contention;
//   3. read-only scaling: 1/8/16/32 threads, each with its own
//      CacheQueryScratch, folding periodically;
//   4. mixed 95/5 lookup/insert at 8 and 32 threads — writers take the
//      exclusive lock and stall readers, which is what p99 pays for.
//
// Emits BENCH_concurrent.json (path = first non-flag arg, default
// ./BENCH_concurrent.json) on the shared BenchJson schema. Metrics are
// ns/query so "speedup" reads as scaling ratio; absolute QPS lands in
// extras next to hw_threads — on a single-core host the scaling numbers
// are honest 1x-ish and hw_threads says why.
//
// --smoke shrinks the cache and the measurement windows for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "src/cache/approx_cache.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDim = 64;
constexpr std::size_t kBatch = 32;

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Clustered vector factory shared by preload and query streams.
struct Clusters {
  std::vector<FeatureVec> centers;

  Clusters(Rng& rng, std::size_t n) {
    centers.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      FeatureVec v(kDim);
      for (float& x : v) x = static_cast<float>(rng.normal());
      normalize(v);
      centers.push_back(std::move(v));
    }
  }

  FeatureVec near(Rng& rng, std::size_t c) const {
    FeatureVec v = centers[c];
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.03));
    normalize(v);
    return v;
  }

  /// `batches` batches of kBatch clustered queries, packed row-major.
  std::vector<float> query_pool(Rng& rng, std::size_t batches) const {
    std::vector<float> flat;
    flat.reserve(batches * kBatch * kDim);
    for (std::size_t i = 0; i < batches * kBatch; ++i) {
      const FeatureVec v = near(rng, rng.uniform_u64(centers.size()));
      flat.insert(flat.end(), v.begin(), v.end());
    }
    return flat;
  }
};

struct PhaseResult {
  double ns_per_query = 0.0;  ///< aggregate wall-time / queries answered
  double p50_ns = 0.0;        ///< per-query, from per-batch samples
  double p99_ns = 0.0;
  double qps = 0.0;
  double mean_candidates = 0.0;
};

/// Runs `threads` workers against `cache` until `deadline_ms` elapses.
/// Every worker owns a scratch, loops over a private clustered query pool,
/// folds every 64 batches, and (when `insert_every` > 0) replaces one
/// batch in `insert_every` with a kBatch-insert burst — a 95/5 mix at 32.
PhaseResult run_phase(ApproxCache& cache, const Clusters& clusters,
                      int threads, int deadline_ms, int insert_every,
                      std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> queries_done(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> candidates_sum(
      static_cast<std::size_t>(threads));
  std::vector<std::vector<double>> batch_ns(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));

  const auto t0 = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto ti = static_cast<std::size_t>(t);
      Rng rng{seed + 17 * static_cast<std::uint64_t>(t)};
      const std::vector<float> pool = clusters.query_pool(rng, 64);
      const std::size_t pool_batches = pool.size() / (kBatch * kDim);
      CacheQueryScratch scratch = cache.make_scratch();
      std::vector<CacheResult> results(kBatch);
      batch_ns[ti].reserve(1 << 14);
      std::uint64_t batches = 0;
      SimTime now = 1'000'000 + static_cast<SimTime>(t) * 1'000'000;
      while (!stop.load(std::memory_order_relaxed)) {
        if (insert_every > 0 &&
            batches % static_cast<std::uint64_t>(insert_every) ==
                static_cast<std::uint64_t>(insert_every) - 1) {
          for (std::size_t i = 0; i < kBatch; ++i) {
            cache.insert(clusters.near(rng,
                                       rng.uniform_u64(
                                           clusters.centers.size())),
                         static_cast<Label>(rng.uniform_u64(512)), 0.9f,
                         now++);
          }
          ++batches;
          continue;
        }
        const std::size_t b = batches % pool_batches;
        const std::span<const float> q{pool.data() + b * kBatch * kDim,
                                       kBatch * kDim};
        const auto bt0 = Clock::now();
        cache.lookup_batch({.features = q, .count = kBatch, .now = now++},
                           results, scratch);
        batch_ns[ti].push_back(ns_since(bt0));
        for (const CacheResult& r : results) {
          candidates_sum[ti] += r.candidates;
        }
        queries_done[ti] += kBatch;
        ++batches;
        if (batches % 64 == 0) cache.fold_scratch(scratch);
      }
      cache.fold_scratch(scratch);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(deadline_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed_ns = ns_since(t0);

  PhaseResult r;
  std::uint64_t queries = 0, cands = 0;
  std::vector<double> per_query;
  for (int t = 0; t < threads; ++t) {
    const auto ti = static_cast<std::size_t>(t);
    queries += queries_done[ti];
    cands += candidates_sum[ti];
    for (const double ns : batch_ns[ti]) {
      per_query.push_back(ns / static_cast<double>(kBatch));
    }
  }
  if (queries == 0) return r;
  // Wall-clock ns per answered query: with perfect scaling, N threads cut
  // this N-fold, so the JSON's base/new "speedup" IS the scaling ratio.
  r.ns_per_query = elapsed_ns / static_cast<double>(queries);
  r.p50_ns = percentile(per_query, 50.0);
  r.p99_ns = percentile(per_query, 99.0);
  r.qps = static_cast<double>(queries) / (elapsed_ns * 1e-9);
  r.mean_candidates =
      static_cast<double>(cands) / static_cast<double>(queries);
  return r;
}

}  // namespace
}  // namespace apx::bench

int main(int argc, char** argv) {
  using namespace apx;
  using namespace apx::bench;

  bool smoke = false;
  std::string json_path = "BENCH_concurrent.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const std::size_t entries = smoke ? 20'000 : 1'000'000;
  const std::size_t num_clusters = smoke ? 512 : 16'384;
  const int window_ms = smoke ? 150 : 2'000;

  banner("M4", "concurrent shared cache",
         "batched lookups scale with reader threads; writers only dent p99");
  std::printf("dim=%zu entries=%zu batch=%zu hw_threads=%u%s\n\n", kDim,
              entries, kBatch, std::thread::hardware_concurrency(),
              smoke ? " [smoke]" : "");

  ApproxCacheConfig cfg;
  cfg.capacity = 2 * entries;  // headroom: the O(n) evictor never runs
  cfg.index = IndexKind::kAdaptiveLsh;
  cfg.alsh.lsh.num_tables = 4;
  cfg.alsh.lsh.hashes_per_table = 8;
  // At 1M entries a 2.5 width (the 10k-entry M2 operating point) floods
  // every bucket with colliding clusters — ~8% of the cache scanned per
  // query. 0.8 keeps candidate sets near one cluster's worth while the
  // clustered queries still hit.
  cfg.alsh.lsh.bucket_width = 0.8f;
  cfg.alsh.lsh.probes_per_table = 2;
  // Pin the tables for the measurement: a mid-phase rebuild would charge
  // one unlucky batch with an O(n) rehash.
  cfg.alsh.min_queries_between_rebuilds = ~std::size_t{0};
  cfg.hknn.k = 8;
  cfg.hknn.max_distance = 0.3f;
  ApproxCache cache{kDim, cfg, make_lru_policy()};

  Rng rng{2026};
  const Clusters clusters{rng, num_clusters};

  // --- phase 1: preload -------------------------------------------------
  const auto pre0 = Clock::now();
  for (std::size_t i = 0; i < entries; ++i) {
    cache.insert(clusters.near(rng, i % num_clusters),
                 static_cast<Label>(i % 512), 0.9f,
                 static_cast<SimTime>(i));
  }
  const double preload_ns = ns_since(pre0);
  std::printf("preload: %zu entries in %.2f s (%.0f ns/insert)\n", entries,
              preload_ns * 1e-9, preload_ns / static_cast<double>(entries));

  // --- phase 2: single-thread legacy vs batched -------------------------
  const std::size_t probe_count = smoke ? 512 : 4'096;
  const std::vector<float> probes =
      clusters.query_pool(rng, probe_count / kBatch);
  std::vector<double> legacy_ns;
  legacy_ns.reserve(probe_count);
  {  // warm-up then timed pass, one sample per query
    for (std::size_t i = 0; i < probe_count; ++i) {
      const std::span<const float> q{probes.data() + i * kDim, kDim};
      (void)cache.lookup({.features = q, .now = 1});
    }
    for (std::size_t i = 0; i < probe_count; ++i) {
      const std::span<const float> q{probes.data() + i * kDim, kDim};
      const auto t0 = Clock::now();
      (void)cache.lookup({.features = q, .now = 2});
      legacy_ns.push_back(ns_since(t0));
    }
  }
  std::vector<double> batched_ns;
  {
    CacheQueryScratch scratch = cache.make_scratch();
    std::vector<CacheResult> results(kBatch);
    const std::size_t batches = probe_count / kBatch;
    for (std::size_t rep = 0; rep < 2; ++rep) {  // rep 0 warms the scratch
      if (rep == 1) batched_ns.reserve(probe_count);
      for (std::size_t b = 0; b < batches; ++b) {
        const std::span<const float> q{probes.data() + b * kBatch * kDim,
                                       kBatch * kDim};
        const auto t0 = Clock::now();
        cache.lookup_batch({.features = q, .count = kBatch, .now = 3},
                           results, scratch);
        const double per_query = ns_since(t0) / static_cast<double>(kBatch);
        if (rep == 1) {
          for (std::size_t i = 0; i < kBatch; ++i) {
            batched_ns.push_back(per_query);
          }
        }
      }
      cache.fold_scratch(scratch);
    }
  }
  const double legacy_p50 = percentile(legacy_ns, 50.0);
  const double legacy_p99 = percentile(legacy_ns, 99.0);
  const double batched_p50 = percentile(batched_ns, 50.0);
  const double batched_p99 = percentile(batched_ns, 99.0);
  std::printf("\nsingle thread (per query):\n");
  std::printf("  legacy lookup()   p50 %8.0f ns   p99 %8.0f ns\n", legacy_p50,
              legacy_p99);
  std::printf("  lookup_batch(%zu) p50 %8.0f ns   p99 %8.0f ns   (%.2fx p50)\n",
              kBatch, batched_p50, batched_p99, legacy_p50 / batched_p50);

  // --- phase 3: read-only scaling ---------------------------------------
  std::printf("\nread-only scaling (%d ms windows):\n", window_ms);
  const int thread_counts[] = {1, 8, 16, 32};
  PhaseResult read[4];
  for (int i = 0; i < 4; ++i) {
    read[i] = run_phase(cache, clusters, thread_counts[i], window_ms,
                        /*insert_every=*/0, /*seed=*/42);
    std::printf("  %2d threads: %9.0f qps   p50 %8.0f ns   p99 %8.0f ns\n",
                thread_counts[i], read[i].qps, read[i].p50_ns,
                read[i].p99_ns);
  }

  // --- phase 4: mixed 95/5 lookup/insert --------------------------------
  std::printf("\nmixed 95/5 lookup/insert:\n");
  PhaseResult mixed8 = run_phase(cache, clusters, 8, window_ms,
                                 /*insert_every=*/20, /*seed=*/43);
  PhaseResult mixed32 = run_phase(cache, clusters, 32, window_ms,
                                  /*insert_every=*/20, /*seed=*/44);
  std::printf("   8 threads: %9.0f qps   p50 %8.0f ns   p99 %8.0f ns\n",
              mixed8.qps, mixed8.p50_ns, mixed8.p99_ns);
  std::printf("  32 threads: %9.0f qps   p50 %8.0f ns   p99 %8.0f ns\n",
              mixed32.qps, mixed32.p50_ns, mixed32.p99_ns);

  const auto& c = cache.counters();
  const double hits = static_cast<double>(c.get("hit"));
  const double misses = static_cast<double>(c.get("miss"));
  const double hit_rate =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  std::printf("\nhit rate %.2f | mean candidates/query %.0f | size %zu\n",
              hit_rate, read[0].mean_candidates, cache.size());

  BenchJson json{"m4_concurrent", kDim, entries};
  // ns/query metrics: "speedup" = base/new reads as the improvement ratio.
  json.metric("single_lookup_p50", legacy_p50, batched_p50);
  json.metric("single_lookup_p99", legacy_p99, batched_p99);
  json.metric("read_ns_per_query_8t", read[0].ns_per_query,
              read[1].ns_per_query);
  json.metric("read_ns_per_query_16t", read[0].ns_per_query,
              read[2].ns_per_query);
  json.metric("read_ns_per_query_32t", read[0].ns_per_query,
              read[3].ns_per_query);
  json.metric("read_p99_8t", read[0].p99_ns, read[1].p99_ns);
  json.metric("mixed_p99_8t", read[1].p99_ns, mixed8.p99_ns);
  json.metric("mixed_p99_32t", read[3].p99_ns, mixed32.p99_ns);
  json.extra("hw_threads",
             static_cast<double>(std::thread::hardware_concurrency()));
  json.extra("qps_1t", read[0].qps);
  json.extra("qps_8t", read[1].qps);
  json.extra("qps_16t", read[2].qps);
  json.extra("qps_32t", read[3].qps);
  json.extra("mixed_qps_8t", mixed8.qps);
  json.extra("mixed_qps_32t", mixed32.qps);
  json.extra("hit_rate", hit_rate);
  json.extra("mean_candidates", read[0].mean_candidates);
  json.extra("preload_ns_per_insert",
             preload_ns / static_cast<double>(entries));
  json.extra("smoke", smoke ? 1.0 : 0.0);
  if (!json.write(json_path)) return 1;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

// F3 (Figure 3) — cache capacity and eviction policy: reuse ratio and
// latency as the per-device cache shrinks, per policy. Expected shape:
// hit ratio grows with capacity and saturates; at tight capacities the
// utility policy (frequency x recency x provenance) beats plain LRU/LFU
// because it protects popular local entries from gossip churn.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("F3", "reuse & latency vs cache capacity per eviction policy",
         "reuse grows then saturates with capacity; at tight capacity LFU "
         "leads on this Zipf-popular single-device workload (frequency is "
         "the signal; utility's provenance terms pay off under gossip "
         "churn, not here)");

  struct Policy {
    const char* name;
    EvictionKind kind;
  };
  const Policy policies[] = {{"lru", EvictionKind::kLru},
                             {"lfu", EvictionKind::kLfu},
                             {"utility", EvictionKind::kUtility}};

  for (const auto& policy : policies) {
    std::printf("--- eviction: %s ---\n", policy.name);
    TextTable table;
    table.header({"capacity", "reuse", "mean ms", "evictions"});
    for (const std::size_t capacity : {8u, 16u, 32u, 64u, 128u, 256u}) {
      // Static-image workload: with temporal locality removed, reuse comes
      // entirely from the cache, so capacity actually binds (a video
      // stream's working set is just the object currently in view, which
      // even a 16-entry cache covers).
      ScenarioConfig cfg = evaluation_scenario();
      cfg.scene.num_classes = 192;
      cfg.zipf_s = 1.1;
      cfg.duration = 240 * kSecond;
      cfg.video.fps = 0.5;
      cfg.video.change_rate_stationary = 2.0;
      cfg.video.change_rate_minor = 2.0;
      cfg.video.change_rate_major = 2.0;
      cfg.video.view_pan_sigma = 0.15f;
      cfg.video.view_zoom_min = 0.95f;
      cfg.video.view_zoom_max = 1.15f;
      cfg.pipeline = make_full_system_config();
      cfg.pipeline.cache.capacity = capacity;
      cfg.eviction = policy.kind;
      cfg.seed = 3000;
      ExperimentRunner runner{cfg};
      const ExperimentMetrics m = runner.run();
      table.row({std::to_string(capacity), TextTable::num(m.reuse_ratio(), 3),
                 TextTable::num(m.mean_latency_ms()),
                 std::to_string(runner.cache_counters().get("evict"))});
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}

// A3 (Ablation 3) — feature extractor choice: end-to-end latency, reuse,
// and accuracy per extractor. The extractor sits on the hit path (every
// frame pays extraction before the cache can answer), so a cheap extractor
// with adequate separability can beat a better-but-slower one. Expected
// shape: cnn-embed gives the best hit quality; downsample/hog trade hit
// quality for a cheaper hit path; histogram (weak geometry) worst quality.

#include "bench/common.hpp"

int main() {
  using namespace apx;
  using namespace apx::bench;

  banner("A3", "feature extractor ablation",
         "cnn-embed best reuse quality; cheaper extractors trade reuse for "
         "hit-path cost");

  struct Row {
    const char* name;
    ExtractorKind kind;
  };
  const Row extractors[] = {
      {"downsample", ExtractorKind::kDownsample},
      {"histogram", ExtractorKind::kHistogram},
      {"hog", ExtractorKind::kHog},
      {"cnn-embed", ExtractorKind::kCnn},
  };

  ScenarioConfig base = evaluation_scenario();
  base.scene.class_confusion = 0.25f;  // make hit *quality* matter
  base.scene.group_size = 4;

  base.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_seeds(base);
  std::printf("no-cache reference: %.2f ms, accuracy %.4f\n\n",
              baseline.mean_latency_ms(), baseline.accuracy());

  TextTable table;
  table.header({"extractor", "extract ms", "mean ms", "reuse", "accuracy",
                "accuracy delta"});
  for (const Row& row : extractors) {
    ScenarioConfig cfg = base;
    cfg.extractor = row.kind;
    cfg.pipeline = make_full_system_config();
    const ExperimentMetrics m = run_seeds(cfg);
    table.row({row.name,
               TextTable::num(to_ms(make_extractor(row.kind)->latency()), 1),
               TextTable::num(m.mean_latency_ms()),
               TextTable::num(m.reuse_ratio(), 3),
               TextTable::num(m.accuracy(), 4),
               TextTable::num(m.accuracy() - baseline.accuracy(), 4)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

// Chaos/soak suite for the deterministic fault-injection layer
// (src/net/faults.*): spec parsing, the injector's statistical behaviour,
// and 4-device end-to-end runs under every fault class. The end-to-end
// tests assert the robustness contract, not exact numbers: no throw
// escapes the runner, accuracy stays within two points of the fault-free
// run, a fully partitioned fleet converges to standalone latency, and the
// same seed replays to a byte-identical metrics export.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/net/faults.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

// ------------------------------------------------------------- Spec parsing

TEST(FaultSpec, EmptyIsNoFaults) {
  const FaultPlan plan = parse_fault_spec("");
  EXPECT_FALSE(plan.any());
}

TEST(FaultSpec, BurstClause) {
  FaultPlan plan = parse_fault_spec("burst:0.2");
  EXPECT_DOUBLE_EQ(plan.burst_loss, 0.2);
  EXPECT_DOUBLE_EQ(plan.burst_mean_len, 8.0);
  plan = parse_fault_spec("burst:0.3:16");
  EXPECT_DOUBLE_EQ(plan.burst_mean_len, 16.0);
  EXPECT_TRUE(plan.any());
}

TEST(FaultSpec, CombinedClauses) {
  const FaultPlan plan =
      parse_fault_spec("burst:0.1,spike:0.05:40,partition:split:5:10:30,"
                       "crash:30:5,corrupt:0.02");
  EXPECT_DOUBLE_EQ(plan.burst_loss, 0.1);
  EXPECT_DOUBLE_EQ(plan.spike_prob, 0.05);
  EXPECT_EQ(plan.spike_extra, 40 * kMillisecond);
  EXPECT_EQ(plan.partition, PartitionMode::kSplit);
  EXPECT_EQ(plan.partition_start, 5 * kSecond);
  EXPECT_EQ(plan.partition_duration, 10 * kSecond);
  EXPECT_EQ(plan.partition_period, 30 * kSecond);
  EXPECT_EQ(plan.crash_mean_uptime, 30 * kSecond);
  EXPECT_EQ(plan.crash_downtime, 5 * kSecond);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.02);
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW(parse_fault_spec("bogus:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("burst"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("burst:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("burst:0.2:0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spike:0.05"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("spike:2:40"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("partition:diag:0:5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("partition:full:0:0"), std::invalid_argument);
  // period must exceed duration
  EXPECT_THROW(parse_fault_spec("partition:full:0:10:5"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash:0:5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("corrupt:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("burst:abc"), std::invalid_argument);
}

// ------------------------------------------------------------- Injector

TEST(FaultInjector, BurstLossMatchesTargetRateAndBurstiness) {
  FaultPlan plan;
  plan.burst_loss = 0.2;
  plan.burst_mean_len = 8.0;
  FaultInjector inj{plan, 42};
  const int n = 50000;
  int lost = 0, bursts = 0;
  bool in_burst = false;
  for (int i = 0; i < n; ++i) {
    const bool drop = inj.burst_lost(/*to=*/0);
    lost += drop ? 1 : 0;
    if (drop && !in_burst) ++bursts;
    in_burst = drop;
  }
  const double rate = static_cast<double>(lost) / n;
  EXPECT_NEAR(rate, 0.2, 0.03);
  // Mean burst length near the configured dwell time (the chain is bursty,
  // not i.i.d.: at 20% loss i.i.d. bursts would average ~1.25 messages).
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_GT(mean_burst, 4.0);
  EXPECT_LT(mean_burst, 14.0);
}

TEST(FaultInjector, IndependentChainsPerReceiver) {
  FaultPlan plan;
  plan.burst_loss = 0.5;
  plan.burst_mean_len = 4.0;
  FaultInjector inj{plan, 7};
  // Both receivers see roughly the target rate; chains advance separately.
  int lost_a = 0, lost_b = 0;
  for (int i = 0; i < 20000; ++i) {
    lost_a += inj.burst_lost(1) ? 1 : 0;
    lost_b += inj.burst_lost(2) ? 1 : 0;
  }
  EXPECT_NEAR(lost_a / 20000.0, 0.5, 0.05);
  EXPECT_NEAR(lost_b / 20000.0, 0.5, 0.05);
}

TEST(FaultInjector, DelaySpikesAreZeroWhenDisabled) {
  FaultInjector inj{FaultPlan{}, 1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(inj.delay_spike(), 0);
  EXPECT_EQ(inj.counters().get("delay_spike"), 0u);
}

TEST(FaultInjector, DelaySpikesMeanNearConfigured) {
  FaultPlan plan;
  plan.spike_prob = 1.0;
  plan.spike_extra = 50 * kMillisecond;
  FaultInjector inj{plan, 3};
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(inj.delay_spike());
  EXPECT_NEAR(total / n, static_cast<double>(plan.spike_extra),
              0.1 * static_cast<double>(plan.spike_extra));
}

TEST(FaultInjector, PartitionWindowsSplitAndHeal) {
  FaultPlan plan;
  plan.partition = PartitionMode::kSplit;
  plan.partition_start = 10 * kSecond;
  plan.partition_duration = 5 * kSecond;
  plan.partition_period = 20 * kSecond;
  FaultInjector inj{plan, 1};
  // Before the window, nothing is cut.
  EXPECT_FALSE(inj.partitioned(0, 1, 9 * kSecond));
  // Inside: odd/even halves are cut, same-parity pairs still hear each other.
  EXPECT_TRUE(inj.partitioned(0, 1, 12 * kSecond));
  EXPECT_FALSE(inj.partitioned(0, 2, 12 * kSecond));
  // Healed, then partitioned again one period later.
  EXPECT_FALSE(inj.partitioned(0, 1, 16 * kSecond));
  EXPECT_TRUE(inj.partitioned(0, 1, 31 * kSecond));
  EXPECT_EQ(inj.counters().get("partition_drop"), 2u);
}

TEST(FaultInjector, FullPartitionCutsEveryPair) {
  FaultPlan plan;
  plan.partition = PartitionMode::kFull;
  plan.partition_duration = 5 * kSecond;
  FaultInjector inj{plan, 1};
  EXPECT_TRUE(inj.partitioned(0, 2, 1 * kSecond));
  EXPECT_TRUE(inj.partitioned(1, 3, 1 * kSecond));
  EXPECT_FALSE(inj.partitioned(0, 2, 6 * kSecond));
}

TEST(FaultInjector, CorruptionNeverGrowsPayloadAndCounts) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  FaultInjector inj{plan, 9};
  Rng rng{4};
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> payload(1 + rng.uniform_u64(64));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto original = payload;
    ASSERT_TRUE(inj.maybe_corrupt(payload));
    EXPECT_LE(payload.size(), original.size());
    if (payload.size() == original.size()) {
      EXPECT_NE(payload, original);
    }
  }
  std::vector<std::uint8_t> empty;
  EXPECT_FALSE(inj.maybe_corrupt(empty));  // nothing to corrupt
  EXPECT_EQ(inj.counters().get("corrupted"), 500u);
}

TEST(FaultInjector, CrashScheduleIsSortedDisjointAndDeterministic) {
  FaultPlan plan;
  plan.crash_mean_uptime = 10 * kSecond;
  plan.crash_downtime = 3 * kSecond;
  FaultInjector a{plan, 123};
  FaultInjector b{plan, 123};
  const auto& crashes = a.plan_crashes(4, 120 * kSecond);
  EXPECT_FALSE(crashes.empty());
  for (std::size_t i = 1; i < crashes.size(); ++i) {
    EXPECT_LE(crashes[i - 1].down_at, crashes[i].down_at);
  }
  // Per device: downtime windows never overlap and every crash starts
  // within the run.
  for (std::size_t d = 0; d < 4; ++d) {
    SimTime last_up = 0;
    for (const CrashEvent& ev : crashes) {
      if (ev.device != d) continue;
      EXPECT_GE(ev.down_at, last_up);
      EXPECT_EQ(ev.up_at, ev.down_at + plan.crash_downtime);
      EXPECT_LT(ev.down_at, 120 * kSecond);
      last_up = ev.up_at;
    }
  }
  // Same seed, same schedule; the call is idempotent.
  const auto& again = b.plan_crashes(4, 120 * kSecond);
  ASSERT_EQ(again.size(), crashes.size());
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    EXPECT_EQ(again[i].device, crashes[i].device);
    EXPECT_EQ(again[i].down_at, crashes[i].down_at);
  }
  EXPECT_EQ(a.plan_crashes(4, 120 * kSecond).size(), crashes.size());
}

// ------------------------------------------------------------- Chaos runs

/// Pooled metrics plus the registry values the assertions care about, from
/// one 4-device full-system scenario.
struct ChaosRun {
  ExperimentMetrics metrics;
  std::string json;
  std::uint64_t crash = 0, restart = 0, burst_drop = 0, partition_drop = 0,
                corrupted = 0, degraded = 0, backoff_skip = 0, bad_message = 0;
  std::uint64_t edge_degraded = 0, edge_backoff_skip = 0;
  double p2p_rung_max_us = 0.0;
  double edge_round_max_us = 0.0;
};

ScenarioConfig chaos_scenario(const std::string& spec) {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 4;
  cfg.duration = 15 * kSecond;
  cfg.faults = parse_fault_spec(spec);
  return cfg;
}

ChaosRun run_chaos(const ScenarioConfig& cfg) {
  ExperimentRunner runner{cfg};
  ChaosRun out;
  out.metrics = runner.run();
  const MetricsRegistry& reg = runner.metrics();
  out.json = reg.to_json();
  out.crash = reg.counter_value("faults/crash");
  out.restart = reg.counter_value("faults/restart");
  out.burst_drop = reg.counter_value("faults/burst_drop");
  out.partition_drop = reg.counter_value("faults/partition_drop");
  out.corrupted = reg.counter_value("faults/corrupted");
  out.degraded = reg.counter_value("p2p/degraded");
  out.backoff_skip = reg.counter_value("p2p/backoff_skip");
  out.bad_message = reg.counter_value("p2p/bad_message");
  out.edge_degraded = reg.counter_value("edge/degraded");
  out.edge_backoff_skip = reg.counter_value("edge/backoff_skip");
  if (const auto* h = reg.find_histogram("pipeline/rung_us/p2p")) {
    out.p2p_rung_max_us = h->max;
  }
  if (const auto* h = reg.find_histogram("edge/round_us")) {
    out.edge_round_max_us = h->max;
  }
  return out;
}

TEST(ChaosSoak, BurstLossKeepsAccuracyWithinTwoPoints) {
  const ChaosRun clean = run_chaos(chaos_scenario(""));
  const ChaosRun burst = run_chaos(chaos_scenario("burst:0.2:8"));
  EXPECT_GT(burst.burst_drop, 0u);
  EXPECT_NEAR(burst.metrics.accuracy(), clean.metrics.accuracy(), 0.02);
  // Fault-free runs export the fault counters as zeros (stable schema).
  EXPECT_EQ(clean.burst_drop, 0u);
  EXPECT_NE(clean.json.find("faults/burst_drop"), std::string::npos);
}

TEST(ChaosSoak, FullPartitionConvergesToStandaloneLatency) {
  // The whole run is partitioned: the P2P rung must never stall the ladder,
  // so the fleet behaves like the same pipeline with P2P disabled.
  const ChaosRun cut = run_chaos(chaos_scenario("partition:full:0:15"));
  ScenarioConfig standalone = chaos_scenario("");
  standalone.pipeline.enable_p2p = false;
  const ChaosRun solo = run_chaos(standalone);
  EXPECT_GT(cut.partition_drop, 0u);  // beacons kept hitting the wall
  EXPECT_NEAR(cut.metrics.accuracy(), solo.metrics.accuracy(), 0.02);
  EXPECT_LT(std::abs(cut.metrics.mean_latency_ms() -
                     solo.metrics.mean_latency_ms()),
            3.0);
  // Whatever the P2P rung did cost stayed bounded by the lookup timeout.
  const ScenarioConfig probe = chaos_scenario("");
  EXPECT_LE(cut.p2p_rung_max_us,
            static_cast<double>(probe.peer.lookup_timeout) + 2000.0);
}

TEST(ChaosSoak, MidRunPartitionDegradesThenBacksOff) {
  // Neighbours are learned in the first 5 s; when the cell shatters, rounds
  // start timing out (degraded) and after the configured streak the rung
  // backs off instead of paying the timeout every frame.
  const ChaosRun run = run_chaos(chaos_scenario("partition:full:5:10"));
  EXPECT_GT(run.degraded, 0u);
  EXPECT_GT(run.backoff_skip, 0u);
  EXPECT_LE(run.p2p_rung_max_us,
            static_cast<double>(chaos_scenario("").peer.lookup_timeout) +
                2000.0);
}

TEST(ChaosSoak, CrashRestartCyclesSurviveAndRecover) {
  // Moderate churn: each device crashes about once in the window. Heavier
  // schedules turn the run into a cold-start benchmark (every wipe pays a
  // cache-refill accuracy cost), which is measured by EXPERIMENTS.md F6,
  // not asserted here.
  const ChaosRun clean = run_chaos(chaos_scenario(""));
  const ChaosRun churn = run_chaos(chaos_scenario("crash:10:3"));
  EXPECT_GT(churn.crash, 0u);
  EXPECT_EQ(churn.crash, churn.restart);  // every crash came back
  EXPECT_NEAR(churn.metrics.accuracy(), clean.metrics.accuracy(), 0.02);
  // Same sensing schedule: every captured frame is either processed or a
  // counted busy-drop, never silently lost to a crash window.
  EXPECT_EQ(churn.metrics.frames() + churn.metrics.dropped(),
            clean.metrics.frames() + clean.metrics.dropped());
}

TEST(ChaosSoak, RestartedPeersRejoinAndResyncViaHotsetPush) {
  // With hot-set push enabled, a restarted (wiped) device is warmed by the
  // first neighbour that re-discovers it: the fleet keeps collaborating
  // across crash cycles instead of devolving into standalone islands.
  ScenarioConfig cfg = chaos_scenario("crash:6:2");
  cfg.peer.hotset_push_max = 8;
  const ChaosRun churn = run_chaos(cfg);
  EXPECT_GT(churn.crash, 1u);
  EXPECT_EQ(churn.crash, churn.restart);
  ExperimentRunner probe{cfg};
  probe.run();
  // Peer entries flowed after the wipes (merges count only entries that
  // actually joined a cache).
  EXPECT_GT(probe.p2p_counters().get("merged"), 0u);
}

TEST(ChaosSoak, CorruptionSurfacesAsDropsNeverUb) {
  const ChaosRun clean = run_chaos(chaos_scenario(""));
  const ChaosRun noisy = run_chaos(chaos_scenario("corrupt:0.3"));
  EXPECT_GT(noisy.corrupted, 0u);
  // At a 30% corruption rate some mutations must fail to decode; each one
  // is a counted drop, not a crash (ASAN/UBSAN runs enforce the "never UB"
  // half of the contract).
  EXPECT_GT(noisy.bad_message, clean.bad_message);
  EXPECT_NEAR(noisy.metrics.accuracy(), clean.metrics.accuracy(), 0.02);
}

TEST(ChaosSoak, EverythingAtOnceSameSeedIsByteIdentical) {
  const std::string spec =
      "burst:0.15:8,spike:0.05:30,partition:split:4:3:8,crash:6:2,"
      "corrupt:0.05";
  const ChaosRun a = run_chaos(chaos_scenario(spec));
  const ChaosRun b = run_chaos(chaos_scenario(spec));
  EXPECT_EQ(a.json, b.json);
  EXPECT_DOUBLE_EQ(a.metrics.accuracy(), b.metrics.accuracy());
  EXPECT_DOUBLE_EQ(a.metrics.mean_latency_ms(), b.metrics.mean_latency_ms());
  // And it actually injected every class.
  EXPECT_GT(a.burst_drop, 0u);
  EXPECT_GT(a.partition_drop, 0u);
  EXPECT_GT(a.crash, 0u);
  EXPECT_GT(a.corrupted, 0u);
}

// ------------------------------------------------------------- Edge chaos

ScenarioConfig edge_chaos_scenario(const std::string& spec) {
  ScenarioConfig cfg = chaos_scenario(spec);
  cfg.pipeline = make_edge_config();
  return cfg;
}

TEST(EdgeChaos, FullPartitionConvergesToStandaloneLatency) {
  // The edge link is cut for the whole run (along with P2P — the partition
  // severs every pair). The edge rung's timeout/backoff must keep the
  // ladder moving: the fleet converges to the same latency and accuracy as
  // a pipeline that never had the collaborative rungs.
  const ChaosRun cut = run_chaos(edge_chaos_scenario("partition:full:0:15"));
  ScenarioConfig standalone = chaos_scenario("");
  standalone.pipeline.enable_p2p = false;
  standalone.pipeline.enable_edge = false;
  const ChaosRun solo = run_chaos(standalone);
  EXPECT_GT(cut.partition_drop, 0u);
  EXPECT_GT(cut.edge_degraded, 0u);    // lookups timed out...
  EXPECT_GT(cut.edge_backoff_skip, 0u);  // ...then the client backed off
  EXPECT_NEAR(cut.metrics.accuracy(), solo.metrics.accuracy(), 0.02);
  EXPECT_LT(std::abs(cut.metrics.mean_latency_ms() -
                     solo.metrics.mean_latency_ms()),
            3.0);
  // No edge round outlived the client's lookup timeout.
  const ScenarioConfig probe = edge_chaos_scenario("");
  EXPECT_LE(cut.edge_round_max_us,
            static_cast<double>(probe.pipeline.edge.lookup_timeout) + 2000.0);
}

TEST(EdgeChaos, CrashWipesShardsAndRestartRewarms) {
  // Crash at 6 s: the service must wipe its shards and go silent. Without a
  // restart the run ends empty.
  ScenarioConfig down = edge_chaos_scenario("");
  down.edge_down_at = 6 * kSecond;
  ExperimentRunner down_runner{down};
  down_runner.run();
  EXPECT_EQ(down_runner.edge_cache_size(), 0u);

  // With a restart at 9 s the devices re-warm the empty service through
  // their normal DNN-validated feeds.
  ScenarioConfig cycle = down;
  cycle.edge_up_at = 9 * kSecond;
  ExperimentRunner cycle_runner{cycle};
  cycle_runner.run();
  EXPECT_GT(cycle_runner.edge_cache_size(), 0u);
  const std::uint64_t admitted =
      cycle_runner.metrics().counter_value("edge/srv_admit");
  EXPECT_GT(admitted, 0u);

  // The crash window costs reuse, not correctness: accuracy stays within
  // two points of the fault-free edge run. Pooled over seeds — a
  // single-seed comparison is dominated by reshuffled timing/medium draws
  // (the crash shifts every later event), not by edge-served errors.
  ExperimentMetrics clean, crashed;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ScenarioConfig cfg = edge_chaos_scenario("");
    cfg.seed = seed;
    clean.merge(run_scenario(cfg));
    cfg.edge_down_at = 6 * kSecond;
    cfg.edge_up_at = 9 * kSecond;
    crashed.merge(run_scenario(cfg));
  }
  EXPECT_NEAR(crashed.accuracy(), clean.accuracy(), 0.02);
}

TEST(EdgeChaos, EverythingAtOnceSameSeedIsByteIdentical) {
  const std::string spec =
      "burst:0.15:8,spike:0.05:30,partition:split:4:3:8,crash:6:2,"
      "corrupt:0.05";
  ScenarioConfig cfg = edge_chaos_scenario(spec);
  cfg.edge_down_at = 7 * kSecond;
  cfg.edge_up_at = 10 * kSecond;
  const ChaosRun a = run_chaos(cfg);
  const ChaosRun b = run_chaos(cfg);
  EXPECT_EQ(a.json, b.json);
  EXPECT_DOUBLE_EQ(a.metrics.accuracy(), b.metrics.accuracy());
  EXPECT_GT(a.burst_drop, 0u);
  EXPECT_GT(a.crash, 0u);
  EXPECT_GT(a.corrupted, 0u);
}

TEST(ChaosSoak, FaultFreePathUnchangedByFaultLayer) {
  // A default-constructed FaultPlan must not perturb the run at all: the
  // injector is never constructed, so RNG streams and metrics match a
  // config that never heard of faults.
  ScenarioConfig cfg = chaos_scenario("");
  ASSERT_FALSE(cfg.faults.any());
  const ChaosRun a = run_chaos(cfg);
  const ChaosRun b = run_chaos(cfg);
  EXPECT_EQ(a.json, b.json);
}

}  // namespace
}  // namespace apx

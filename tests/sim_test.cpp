// Tests for metrics aggregation and the experiment runner, plus end-to-end
// integration properties of whole scenarios (the claims the evaluation
// rests on: reuse reduces latency, accuracy stays close, determinism).

#include <gtest/gtest.h>

#include "src/sim/runner.hpp"

namespace apx {
namespace {

RecognitionResult result_with(SimDuration latency, ResultSource source,
                              bool correct, double energy = 1.0) {
  RecognitionResult r;
  r.latency = latency;
  r.source = source;
  r.correct = correct;
  r.compute_energy_mj = energy;
  return r;
}

// --------------------------------------------------------------- Metrics

TEST(Metrics, EmptyIsZero) {
  ExperimentMetrics m;
  EXPECT_EQ(m.frames(), 0u);
  EXPECT_EQ(m.accuracy(), 0.0);
  EXPECT_EQ(m.mean_latency_ms(), 0.0);
  EXPECT_EQ(m.reuse_ratio(), 0.0);
}

TEST(Metrics, RecordsAccuracyAndLatency) {
  ExperimentMetrics m;
  m.record(result_with(10 * kMillisecond, ResultSource::kLocalCacheHit, true));
  m.record(result_with(30 * kMillisecond, ResultSource::kFullInference, false));
  EXPECT_EQ(m.frames(), 2u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(m.mean_latency_ms(), 20.0);
  EXPECT_DOUBLE_EQ(m.reuse_ratio(), 0.5);
}

TEST(Metrics, SourceFractions) {
  ExperimentMetrics m;
  m.record(result_with(1, ResultSource::kTemporalReuse, true));
  m.record(result_with(1, ResultSource::kTemporalReuse, true));
  m.record(result_with(1, ResultSource::kFullInference, true));
  EXPECT_NEAR(m.source_fraction(ResultSource::kTemporalReuse), 2.0 / 3, 1e-12);
  EXPECT_NEAR(m.source_fraction(ResultSource::kImuFastPath), 0.0, 1e-12);
}

TEST(Metrics, EnergyAveragesIncludeRadio) {
  ExperimentMetrics m;
  m.record(result_with(1, ResultSource::kFullInference, true, 100.0));
  m.record(result_with(1, ResultSource::kLocalCacheHit, true, 10.0));
  EXPECT_DOUBLE_EQ(m.mean_compute_energy_mj(), 55.0);
  m.add_radio_energy_mj(20.0);
  EXPECT_DOUBLE_EQ(m.mean_total_energy_mj(), 65.0);
}

TEST(Metrics, ReductionVsBaseline) {
  ExperimentMetrics m;
  m.record(result_with(10 * kMillisecond, ResultSource::kLocalCacheHit, true));
  EXPECT_NEAR(m.reduction_vs_percent(100.0), 90.0, 1e-9);
  EXPECT_EQ(m.reduction_vs_percent(0.0), 0.0);
}

TEST(Metrics, QuantilesFromSamples) {
  ExperimentMetrics m;
  for (int i = 1; i <= 100; ++i) {
    m.record(result_with(i * kMillisecond, ResultSource::kFullInference, true));
  }
  EXPECT_NEAR(m.latency_quantile_ms(0.5), 50.5, 0.01);
  EXPECT_NEAR(m.latency_quantile_ms(0.99), 99.01, 0.01);
}

TEST(Metrics, AccuracyBySourceAttributesCorrectness) {
  ExperimentMetrics m;
  m.record(result_with(1, ResultSource::kTemporalReuse, true));
  m.record(result_with(1, ResultSource::kTemporalReuse, false));
  m.record(result_with(1, ResultSource::kFullInference, true));
  EXPECT_DOUBLE_EQ(m.accuracy_by_source(ResultSource::kTemporalReuse), 0.5);
  EXPECT_DOUBLE_EQ(m.accuracy_by_source(ResultSource::kFullInference), 1.0);
  EXPECT_DOUBLE_EQ(m.accuracy_by_source(ResultSource::kPeerCacheHit), 0.0);
}

TEST(Metrics, AccuracyBySourceSurvivesMerge) {
  ExperimentMetrics a, b;
  a.record(result_with(1, ResultSource::kLocalCacheHit, true));
  b.record(result_with(1, ResultSource::kLocalCacheHit, false));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.accuracy_by_source(ResultSource::kLocalCacheHit), 0.5);
}

TEST(Metrics, MergePoolsEverything) {
  ExperimentMetrics a, b;
  a.record(result_with(10 * kMillisecond, ResultSource::kFullInference, true));
  a.record_dropped();
  b.record(result_with(20 * kMillisecond, ResultSource::kTemporalReuse, false));
  b.add_radio_energy_mj(5.0);
  a.merge(b);
  EXPECT_EQ(a.frames(), 2u);
  EXPECT_EQ(a.dropped(), 1u);
  EXPECT_DOUBLE_EQ(a.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), 15.0);
  EXPECT_DOUBLE_EQ(a.radio_energy_mj(), 5.0);
}

// --------------------------------------------------------------- Runner

ScenarioConfig quick_scenario() {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 10 * kSecond;
  cfg.num_devices = 2;
  cfg.scene.num_classes = 16;
  return cfg;
}

TEST(Runner, RejectsBadConfig) {
  ScenarioConfig cfg = quick_scenario();
  cfg.num_devices = 0;
  EXPECT_THROW(ExperimentRunner{cfg}, std::invalid_argument);
}

TEST(Runner, RunTwiceThrows) {
  ExperimentRunner runner{quick_scenario()};
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(Runner, ProcessesExpectedFrameCount) {
  ScenarioConfig cfg = quick_scenario();
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics m = run_scenario(cfg);
  // 2 devices x 10 s x 10 fps = 200 frames, minus drops.
  EXPECT_GT(m.frames() + m.dropped(), 190u);
  EXPECT_LE(m.frames() + m.dropped(), 200u);
}

TEST(Runner, DeterministicAcrossRuns) {
  const ScenarioConfig cfg = quick_scenario();
  const ExperimentMetrics a = run_scenario(cfg);
  const ExperimentMetrics b = run_scenario(cfg);
  EXPECT_EQ(a.frames(), b.frames());
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_DOUBLE_EQ(a.accuracy(), b.accuracy());
  for (const auto& [key, count] : a.sources().items()) {
    EXPECT_EQ(b.sources().get(key), count) << key;
  }
}

TEST(Runner, SeedChangesOutcome) {
  ScenarioConfig cfg = quick_scenario();
  const ExperimentMetrics a = run_scenario(cfg);
  cfg.seed = 999;
  const ExperimentMetrics b = run_scenario(cfg);
  EXPECT_NE(a.mean_latency_ms(), b.mean_latency_ms());
}

TEST(Runner, DeviceMetricsSumToPooled) {
  ExperimentRunner runner{quick_scenario()};
  const ExperimentMetrics pooled = runner.run();
  std::size_t frames = 0;
  for (const auto& m : runner.device_metrics()) frames += m.frames();
  EXPECT_EQ(frames, pooled.frames());
  EXPECT_EQ(runner.device_metrics().size(), 2u);
}

TEST(Runner, CacheCountersExposed) {
  ExperimentRunner runner{quick_scenario()};
  runner.run();
  const Counter counters = runner.cache_counters();
  EXPECT_GT(counters.get("insert"), 0u);
}

TEST(Runner, P2pCountersExposedWhenEnabled) {
  ExperimentRunner runner{quick_scenario()};
  runner.run();
  const Counter counters = runner.p2p_counters();
  EXPECT_GT(counters.total(), 0u);
}

// ----------------------------------------------------------- Integration

TEST(Integration, FullSystemBeatsNoCacheOnLatency) {
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 20 * kSecond;
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics full = run_scenario(cfg);
  EXPECT_LT(full.mean_latency_ms(), baseline.mean_latency_ms() * 0.6);
  EXPECT_GT(full.reuse_ratio(), 0.3);
}

TEST(Integration, AccuracyLossIsMinimal) {
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 30 * kSecond;
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics full = run_scenario(cfg);
  EXPECT_GT(full.accuracy(), baseline.accuracy() - 0.06);
}

TEST(Integration, EveryAdditionalSignalHelpsOrIsNeutral) {
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 20 * kSecond;
  auto mean_for = [&](PipelineConfig p) {
    cfg.pipeline = p;
    return run_scenario(cfg).mean_latency_ms();
  };
  const double nocache = mean_for(make_nocache_config());
  const double local = mean_for(make_approx_local_config());
  const double with_video = mean_for(make_approx_video_config());
  EXPECT_LT(local, nocache);
  EXPECT_LT(with_video, local * 1.15);  // video never badly hurts
}

TEST(Integration, IsolatedDevicesGetNoPeerHits) {
  ScenarioConfig cfg = quick_scenario();
  cfg.co_located = false;
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics m = run_scenario(cfg);
  EXPECT_EQ(m.source_fraction(ResultSource::kPeerCacheHit), 0.0);
}

TEST(Integration, ExactCacheBarelyHelpsOnLiveVideo) {
  // The poster's motivation: conventional exact-match caching is nearly
  // useless on noisy camera input.
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 20 * kSecond;
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  cfg.pipeline = make_exactcache_config();
  const ExperimentMetrics exact = run_scenario(cfg);
  EXPECT_LT(exact.reuse_ratio(), 0.10);
  EXPECT_GT(exact.mean_latency_ms(), baseline.mean_latency_ms() * 0.85);
}

TEST(Integration, RealClassifierScenarioRuns) {
  // A real (non-oracle) classifier end to end. Reuse paths inherit whatever
  // the classifier says per object, so accuracy converges to its per-object
  // accuracy only across many object changes — hence the longer window.
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 25 * kSecond;
  cfg.num_devices = 1;
  cfg.scene.num_classes = 8;
  cfg.use_real_classifier = true;
  cfg.pipeline = make_approx_video_config();
  const ExperimentMetrics m = run_scenario(cfg);
  EXPECT_GT(m.frames(), 150u);
  EXPECT_GT(m.accuracy(), 0.4);
}

TEST(Integration, StationaryWorkloadNearsHeadlineReduction) {
  // The abstract's "up to 94%": a mostly-stationary, high-locality stream.
  ScenarioConfig cfg = quick_scenario();
  cfg.duration = 30 * kSecond;
  cfg.num_devices = 4;
  cfg.p_stationary = 0.85;
  cfg.p_minor = 0.15;
  cfg.p_major = 0.0;
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics full = run_scenario(cfg);
  EXPECT_GT(full.reduction_vs_percent(baseline.mean_latency_ms()), 80.0);
}

}  // namespace
}  // namespace apx

// Tests for multi-object frames and region-level operations.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/features/extractor.hpp"
#include "src/util/vecmath.hpp"
#include "src/vision/multi_object.hpp"

namespace apx {
namespace {

SceneGenerator::Config world() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 12;
  cfg.image_size = 24;
  cfg.seed = 5;
  return cfg;
}

TEST(MultiObject, ComposeAndCropRoundTrip) {
  const SceneGenerator scenes{world()};
  std::array<Label, MultiFrame::kRegions> labels{1, 2, 3, 4};
  std::array<ViewParams, MultiFrame::kRegions> views{};
  const Image frame = compose_grid(scenes, labels, views);
  EXPECT_EQ(frame.width(), 48);
  EXPECT_EQ(frame.height(), 48);
  for (int region = 0; region < MultiFrame::kRegions; ++region) {
    const Image crop = crop_region(frame, region);
    const Image direct =
        scenes.render(labels[static_cast<std::size_t>(region)],
                      views[static_cast<std::size_t>(region)]);
    EXPECT_EQ(crop.mean_abs_diff(direct), 0.0f) << "region " << region;
  }
}

TEST(MultiObject, CropBadIndexThrows) {
  Image frame(48, 48, 3);
  EXPECT_THROW(crop_region(frame, -1), std::out_of_range);
  EXPECT_THROW(crop_region(frame, 4), std::out_of_range);
}

TEST(MultiObject, StreamBadFpsThrows) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{12, 0.8};
  MultiObjectStream::Config cfg;
  cfg.fps = 0.0;
  EXPECT_THROW(MultiObjectStream(scenes, zipf, cfg, 1), std::invalid_argument);
}

TEST(MultiObject, StreamLabelsValidAndTracked) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{12, 0.8};
  MultiObjectStream stream{scenes, zipf, MultiObjectStream::Config{}, 2};
  for (int i = 0; i < 30; ++i) {
    const MultiFrame frame = stream.next();
    for (const Label label : frame.true_labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 12);
    }
  }
}

TEST(MultiObject, SlotsChangeIndependently) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{12, 0.8};
  MultiObjectStream::Config cfg;
  cfg.slot_change_rate = 1.0;  // fast churn
  MultiObjectStream stream{scenes, zipf, cfg, 3};
  std::array<int, MultiFrame::kRegions> changes{};
  int frames_with_partial_change = 0;
  for (int i = 0; i < 300; ++i) {
    const MultiFrame frame = stream.next();
    int changed = 0;
    for (int r = 0; r < MultiFrame::kRegions; ++r) {
      if (frame.changed[static_cast<std::size_t>(r)]) {
        ++changes[static_cast<std::size_t>(r)];
        ++changed;
      }
    }
    if (changed > 0 && changed < MultiFrame::kRegions) {
      ++frames_with_partial_change;
    }
  }
  for (const int c : changes) EXPECT_GT(c, 5);  // every slot churns
  EXPECT_GT(frames_with_partial_change, 10);    // but not in lockstep
}

TEST(MultiObject, UnchangedRegionStaysSimilar) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{12, 0.8};
  MultiObjectStream::Config cfg;
  cfg.slot_change_rate = 0.0;  // nothing ever changes
  MultiObjectStream stream{scenes, zipf, cfg, 4};
  const MultiFrame a = stream.next();
  const MultiFrame b = stream.next();
  for (int r = 0; r < MultiFrame::kRegions; ++r) {
    EXPECT_LT(crop_region(a.image, r).mean_abs_diff(crop_region(b.image, r)),
              0.05f);
  }
}

TEST(MultiObject, RegionFeaturesBeatWholeFrameUnderPartialChange) {
  // The structural fact F10 exhibits: when one slot changes, the
  // whole-frame feature moves far, but the unchanged regions' features
  // stay near their previous values.
  const SceneGenerator scenes{world()};
  const auto extractor = make_cnn_extractor();
  std::array<Label, MultiFrame::kRegions> labels{1, 2, 3, 4};
  std::array<ViewParams, MultiFrame::kRegions> views{};
  const Image before = compose_grid(scenes, labels, views);
  labels[0] = 9;  // one object replaced
  const Image after = compose_grid(scenes, labels, views);

  const float whole_shift =
      l2(extractor->extract(before), extractor->extract(after));
  const float unchanged_shift =
      l2(extractor->extract(crop_region(before, 3)),
         extractor->extract(crop_region(after, 3)));
  EXPECT_GT(whole_shift, unchanged_shift * 5.0f);
  EXPECT_NEAR(unchanged_shift, 0.0f, 1e-5f);
}

TEST(MultiObject, RegionChangeMaskExpandsRegionsToBlocks) {
  MultiFrame frame;
  frame.changed = {false, true, false, false};  // top-right region only
  std::vector<std::uint8_t> mask(16);
  region_change_mask(frame, 4, mask);
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      const bool want = (bx >= 2) && (by < 2);
      EXPECT_EQ(mask[static_cast<std::size_t>(by) * 4 + bx] != 0, want)
          << "bx=" << bx << " by=" << by;
    }
  }
  // grid == kGridSide degenerates to the change flags themselves.
  std::vector<std::uint8_t> coarse(4);
  region_change_mask(frame, 2, coarse);
  EXPECT_EQ(coarse, (std::vector<std::uint8_t>{0, 1, 0, 0}));
}

TEST(MultiObject, RegionChangeMaskRejectsBadGrids) {
  MultiFrame frame;
  std::vector<std::uint8_t> mask(9);
  EXPECT_THROW(region_change_mask(frame, 3, mask), std::invalid_argument);
  EXPECT_THROW(region_change_mask(frame, 0, mask), std::invalid_argument);
  std::vector<std::uint8_t> wrong_size(5);
  EXPECT_THROW(region_change_mask(frame, 2, wrong_size),
               std::invalid_argument);
}

TEST(MultiObject, DeterministicPerSeed) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{12, 0.8};
  MultiObjectStream a{scenes, zipf, MultiObjectStream::Config{}, 9};
  MultiObjectStream b{scenes, zipf, MultiObjectStream::Config{}, 9};
  for (int i = 0; i < 10; ++i) {
    const MultiFrame fa = a.next();
    const MultiFrame fb = b.next();
    EXPECT_EQ(fa.true_labels, fb.true_labels);
    EXPECT_EQ(fa.image.mean_abs_diff(fb.image), 0.0f);
  }
}

}  // namespace
}  // namespace apx

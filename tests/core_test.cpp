// Unit tests for the ReusePipeline: rung ordering, gating semantics, cost
// accounting, and fallback behaviour.

#include <gtest/gtest.h>

#include <optional>

#include "src/core/pipeline.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"

namespace apx {
namespace {

constexpr int kClasses = 8;

/// Single-device pipeline harness with controllable frames.
struct Harness {
  EventSimulator sim;
  SceneGenerator scenes;
  std::unique_ptr<FeatureExtractor> extractor;
  std::unique_ptr<RecognitionModel> model;
  std::unique_ptr<ApproxCache> cache;
  std::unique_ptr<ExactCache> exact_cache;
  std::unique_ptr<WirelessMedium> medium;
  std::unique_ptr<ApproxCache> peer_cache;
  std::unique_ptr<PeerCacheService> peer_service;   // the remote peer
  std::unique_ptr<PeerCacheService> local_service;  // this device's endpoint
  std::unique_ptr<ReusePipeline> pipeline;
  PipelineConfig config;

  explicit Harness(PipelineConfig cfg, bool with_peer = false)
      : scenes([] {
          SceneGenerator::Config sc;
          sc.num_classes = kClasses;
          sc.image_size = 24;
          sc.seed = 7;
          return sc;
        }()),
        extractor(make_downsample_extractor(8)),
        config(cfg) {
    ModelProfile profile = mobilenet_v2_profile();
    profile.top1_accuracy = 1.0;  // deterministic truth for rung tests
    model = make_oracle_model(profile, kClasses);
    if (cfg.enable_local_cache) {
      cfg.cache.index = IndexKind::kExact;
      cache = std::make_unique<ApproxCache>(extractor->dim(), cfg.cache,
                                            make_lru_policy());
    } else if (cfg.enable_exact_cache) {
      exact_cache = std::make_unique<ExactCache>(cfg.cache.capacity);
    }
    if (with_peer) {
      MediumParams mp;
      mp.loss_prob = 0.0;
      mp.jitter = 0;
      medium = std::make_unique<WirelessMedium>(sim, mp, 5);
      PeerCacheParams pp;
      pp.advert_enabled = false;
      local_service = std::make_unique<PeerCacheService>(sim, *medium, *cache,
                                                         pp, /*cell=*/0);
      ApproxCacheConfig peer_cfg = cfg.cache;
      peer_cfg.index = IndexKind::kExact;
      peer_cache = std::make_unique<ApproxCache>(
          extractor->dim(), peer_cfg, make_lru_policy());
      peer_service = std::make_unique<PeerCacheService>(
          sim, *medium, *peer_cache, pp, /*cell=*/0);
      local_service->start();
      peer_service->start();
      sim.run_until(sim.now() + 100 * kMillisecond);  // warm discovery
    }
    pipeline = std::make_unique<ReusePipeline>(
        sim, config, *extractor, *model, cache.get(), exact_cache.get(),
        local_service.get(), /*seed=*/11);
  }

  Frame frame(int class_id, float dx = 0.0f) {
    Frame f;
    f.t = sim.now();
    f.true_label = class_id;
    ViewParams view;
    view.dx = dx;
    f.image = scenes.render(class_id, view);
    return f;
  }

  /// Processes one frame synchronously; returns the result. Runs the event
  /// loop only until completion so simulated time does not leap ahead
  /// (which would age out the IMU fast path between frames).
  RecognitionResult run_one(const Frame& f,
                            MotionState motion = MotionState::kMinor) {
    std::optional<RecognitionResult> out;
    EXPECT_TRUE(pipeline->process(
        f, motion, [&](const RecognitionResult& r) { out = r; }));
    while (!out.has_value() && sim.step()) {
    }
    EXPECT_TRUE(out.has_value());
    return out.value_or(RecognitionResult{});
  }
};

PipelineConfig approx_base() {
  PipelineConfig cfg = make_approx_local_config();
  cfg.cache.hknn.max_distance = 0.3f;
  return cfg;
}

// --------------------------------------------------------------- basics

TEST(Pipeline, ApproxModeRequiresCache) {
  EventSimulator sim;
  auto extractor = make_downsample_extractor(8);
  auto model = make_oracle_model(mobilenet_v2_profile(), kClasses);
  EXPECT_THROW(ReusePipeline(sim, make_approx_local_config(), *extractor,
                             *model, nullptr, nullptr, nullptr, 1),
               std::invalid_argument);
}

TEST(Pipeline, NoCacheAlwaysInfers) {
  Harness h{make_nocache_config()};
  for (int i = 0; i < 5; ++i) {
    const RecognitionResult r = h.run_one(h.frame(i % kClasses));
    EXPECT_EQ(r.source, ResultSource::kFullInference);
    EXPECT_TRUE(r.correct);
  }
  EXPECT_EQ(h.pipeline->counters().get("inference"), 5u);
}

TEST(Pipeline, InferenceLatencyMatchesModelMagnitude) {
  Harness h{make_nocache_config()};
  const RecognitionResult r = h.run_one(h.frame(0));
  const auto mean = mobilenet_v2_profile().mean_latency;
  EXPECT_GE(r.latency, static_cast<SimDuration>(0.8 * mean));
  EXPECT_LE(r.latency, static_cast<SimDuration>(1.6 * mean));
}

TEST(Pipeline, BusyPipelineDropsFrames) {
  Harness h{make_nocache_config()};
  int completions = 0;
  ASSERT_TRUE(h.pipeline->process(h.frame(0), MotionState::kMinor,
                                  [&](const RecognitionResult&) {
                                    ++completions;
                                  }));
  EXPECT_TRUE(h.pipeline->busy());
  EXPECT_FALSE(h.pipeline->process(h.frame(1), MotionState::kMinor,
                                   [&](const RecognitionResult&) {
                                     ++completions;
                                   }));
  h.sim.run_until(h.sim.now() + 5 * kSecond);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(h.pipeline->counters().get("dropped"), 1u);
  EXPECT_FALSE(h.pipeline->busy());
}

TEST(Pipeline, CallbackFiresExactlyOnce) {
  Harness h{make_full_system_config()};
  int calls = 0;
  ASSERT_TRUE(h.pipeline->process(h.frame(0), MotionState::kMinor,
                                  [&](const RecognitionResult&) { ++calls; }));
  h.sim.run_until(h.sim.now() + 10 * kSecond);
  EXPECT_EQ(calls, 1);
}

// --------------------------------------------------------------- cache

TEST(Pipeline, SecondSimilarFrameHitsLocalCache) {
  Harness h{approx_base()};
  const RecognitionResult first = h.run_one(h.frame(3));
  EXPECT_EQ(first.source, ResultSource::kFullInference);
  const RecognitionResult second = h.run_one(h.frame(3, /*dx=*/0.01f));
  EXPECT_EQ(second.source, ResultSource::kLocalCacheHit);
  EXPECT_TRUE(second.correct);
  EXPECT_LT(second.latency, first.latency);
}

TEST(Pipeline, DifferentObjectMissesAndInfers) {
  Harness h{approx_base()};
  h.run_one(h.frame(3));
  const RecognitionResult r = h.run_one(h.frame(5));
  EXPECT_EQ(r.source, ResultSource::kFullInference);
}

TEST(Pipeline, CacheHitMuchCheaperEnergy) {
  Harness h{approx_base()};
  const RecognitionResult infer = h.run_one(h.frame(3));
  const RecognitionResult hit = h.run_one(h.frame(3, 0.01f));
  EXPECT_LT(hit.compute_energy_mj, infer.compute_energy_mj / 4.0);
}

TEST(Pipeline, ExactCacheHitsOnIdenticalFrame) {
  PipelineConfig cfg = make_exactcache_config();
  Harness h{cfg};
  h.run_one(h.frame(3));
  const RecognitionResult r = h.run_one(h.frame(3));  // bit-identical frame
  EXPECT_EQ(r.source, ResultSource::kLocalCacheHit);
}

TEST(Pipeline, ExactCacheMissesOnPerturbedFrame) {
  PipelineConfig cfg = make_exactcache_config();
  Harness h{cfg};
  h.run_one(h.frame(3));
  const RecognitionResult r = h.run_one(h.frame(3, /*dx=*/0.05f));
  EXPECT_EQ(r.source, ResultSource::kFullInference);
}

// --------------------------------------------------------------- IMU

PipelineConfig imu_only() {
  PipelineConfig cfg = approx_base();
  cfg.enable_imu_gate = true;
  cfg.enable_imu_fastpath = true;
  return cfg;
}

TEST(Pipeline, StationaryFastPathAfterFreshResult) {
  Harness h{imu_only()};
  h.run_one(h.frame(2), MotionState::kStationary);
  const RecognitionResult r = h.run_one(h.frame(2), MotionState::kStationary);
  EXPECT_EQ(r.source, ResultSource::kImuFastPath);
  EXPECT_LE(r.latency, 1 * kMillisecond);
  EXPECT_TRUE(r.correct);
}

TEST(Pipeline, FastPathRequiresStationary) {
  Harness h{imu_only()};
  h.run_one(h.frame(2), MotionState::kStationary);
  const RecognitionResult r = h.run_one(h.frame(2, 0.01f), MotionState::kMinor);
  EXPECT_NE(r.source, ResultSource::kImuFastPath);
}

TEST(Pipeline, FastPathExpiresWithAge) {
  PipelineConfig cfg = imu_only();
  cfg.imu_fastpath_max_age = 500 * kMillisecond;
  Harness h{cfg};
  h.run_one(h.frame(2), MotionState::kStationary);
  h.sim.run_until(h.sim.now() + kSecond);  // let the result go stale
  const RecognitionResult r = h.run_one(h.frame(2), MotionState::kStationary);
  EXPECT_NE(r.source, ResultSource::kImuFastPath);
}

TEST(Pipeline, FastPathDisabledConfigSkipsIt) {
  PipelineConfig cfg = imu_only();
  cfg.enable_imu_fastpath = false;
  Harness h{cfg};
  h.run_one(h.frame(2), MotionState::kStationary);
  const RecognitionResult r = h.run_one(h.frame(2), MotionState::kStationary);
  EXPECT_NE(r.source, ResultSource::kImuFastPath);
}

TEST(Pipeline, GateRelaxesThresholdWhenStationary) {
  // A borderline match — just past max_distance but within the stationary
  // gate's relaxed threshold — hits only when the gate relaxes. The
  // threshold is derived from the measured feature distance so the test is
  // robust to extractor details.
  PipelineConfig cfg = approx_base();
  cfg.enable_imu_gate = true;
  cfg.enable_imu_fastpath = false;  // isolate the threshold effect

  {
    // Measure the distance between the two probe frames.
    Harness probe{cfg};
    const float d = l2(probe.extractor->extract(probe.frame(2).image),
                       probe.extractor->extract(probe.frame(2, 0.08f).image));
    ASSERT_GT(d, 0.0f);
    cfg.cache.hknn.max_distance = d / 1.1f;  // strict threshold just misses
  }

  Harness strict{[&] {
    PipelineConfig c = cfg;
    c.enable_imu_gate = false;
    return c;
  }()};
  strict.run_one(strict.frame(2));
  const RecognitionResult miss =
      strict.run_one(strict.frame(2, /*dx=*/0.08f));
  EXPECT_EQ(miss.source, ResultSource::kFullInference);

  // Stationary gate scales the threshold by 1.25: d/1.1*1.25 > d -> hit.
  Harness relaxed{cfg};
  relaxed.run_one(relaxed.frame(2), MotionState::kMinor);
  const RecognitionResult hit =
      relaxed.run_one(relaxed.frame(2, /*dx=*/0.08f),
                      MotionState::kStationary);
  EXPECT_EQ(hit.source, ResultSource::kLocalCacheHit);
}

// --------------------------------------------------------------- video

PipelineConfig video_only() {
  PipelineConfig cfg = approx_base();
  cfg.enable_temporal = true;
  return cfg;
}

TEST(Pipeline, IdenticalFrameTemporallyReused) {
  Harness h{video_only()};
  h.run_one(h.frame(4));
  const RecognitionResult r = h.run_one(h.frame(4));
  EXPECT_EQ(r.source, ResultSource::kTemporalReuse);
  EXPECT_TRUE(r.correct);
  EXPECT_LE(r.latency, 2 * kMillisecond);
}

TEST(Pipeline, MajorMotionBlocksTemporalReuse) {
  PipelineConfig cfg = video_only();
  cfg.enable_imu_gate = true;
  cfg.enable_imu_fastpath = false;
  Harness h{cfg};
  h.run_one(h.frame(4), MotionState::kMinor);
  const RecognitionResult r = h.run_one(h.frame(4), MotionState::kMajor);
  EXPECT_NE(r.source, ResultSource::kTemporalReuse);
}

TEST(Pipeline, SceneChangeDefeatsTemporalReuse) {
  Harness h{video_only()};
  h.run_one(h.frame(4));
  const RecognitionResult r = h.run_one(h.frame(7));
  EXPECT_NE(r.source, ResultSource::kTemporalReuse);
}

TEST(Pipeline, TemporalChainBounded) {
  PipelineConfig cfg = video_only();
  cfg.temporal.max_chain = 2;
  Harness h{cfg};
  h.run_one(h.frame(4));
  EXPECT_EQ(h.run_one(h.frame(4)).source, ResultSource::kTemporalReuse);
  EXPECT_EQ(h.run_one(h.frame(4)).source, ResultSource::kTemporalReuse);
  // Chain exhausted; but the frame still matches the approximate cache.
  const RecognitionResult r = h.run_one(h.frame(4));
  EXPECT_NE(r.source, ResultSource::kTemporalReuse);
}

// --------------------------------------------------------------- P2P

TEST(Pipeline, PeerEntryEnablesPeerCacheHit) {
  PipelineConfig cfg = approx_base();
  cfg.enable_p2p = true;
  Harness h{cfg, /*with_peer=*/true};
  // The remote peer already recognized this object.
  const Frame f = h.frame(6);
  h.peer_cache->insert(h.extractor->extract(f.image), 6, 0.95f, h.sim.now());
  const RecognitionResult r = h.run_one(f);
  EXPECT_EQ(r.source, ResultSource::kPeerCacheHit);
  EXPECT_TRUE(r.correct);
  // Latency includes the network round trip but not a DNN run.
  EXPECT_LT(r.latency, 40 * kMillisecond);
  // The entry now lives locally: the next lookup hits without the network.
  const RecognitionResult again = h.run_one(h.frame(6, 0.005f));
  EXPECT_EQ(again.source, ResultSource::kLocalCacheHit);
}

TEST(Pipeline, EmptyPeerRespondsThenInfers) {
  PipelineConfig cfg = approx_base();
  cfg.enable_p2p = true;
  Harness h{cfg, /*with_peer=*/true};
  const RecognitionResult r = h.run_one(h.frame(6));
  EXPECT_EQ(r.source, ResultSource::kFullInference);
  // Latency ~= p2p wait + inference.
  EXPECT_GT(r.latency, mobilenet_v2_profile().mean_latency / 2);
}

TEST(Pipeline, P2pDisabledSkipsNetwork) {
  PipelineConfig cfg = approx_base();
  cfg.enable_p2p = false;
  Harness h{cfg, /*with_peer=*/true};
  const Frame f = h.frame(6);
  h.peer_cache->insert(h.extractor->extract(f.image), 6, 0.95f, h.sim.now());
  const RecognitionResult r = h.run_one(f);
  EXPECT_EQ(r.source, ResultSource::kFullInference);
}

// --------------------------------------------------------------- misc

TEST(Pipeline, ResultRecordsTruthAndCorrectness) {
  Harness h{approx_base()};
  const RecognitionResult r = h.run_one(h.frame(5));
  EXPECT_EQ(r.true_label, 5);
  EXPECT_EQ(r.label, 5);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.completion_time, r.frame_time + r.latency);
}

TEST(Pipeline, SourceNamesStable) {
  EXPECT_STREQ(to_string(ResultSource::kImuFastPath), "imu-fastpath");
  EXPECT_STREQ(to_string(ResultSource::kTemporalReuse), "temporal");
  EXPECT_STREQ(to_string(ResultSource::kLocalCacheHit), "local-cache");
  EXPECT_STREQ(to_string(ResultSource::kPeerCacheHit), "peer-cache");
  EXPECT_STREQ(to_string(ResultSource::kFullInference), "inference");
}

TEST(Pipeline, CountersSumToProcessedFrames) {
  Harness h{make_full_system_config()};
  for (int i = 0; i < 10; ++i) h.run_one(h.frame(i % 3));
  std::uint64_t total = 0;
  for (const auto& [key, count] : h.pipeline->counters().items()) {
    if (key != "dropped") total += count;
  }
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace apx

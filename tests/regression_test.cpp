// Golden regression guard: pins the headline behaviour of one small, fully
// seeded scenario so that accidental changes to any module show up as a
// failed expectation rather than a silently shifted EXPERIMENTS.md. The
// tolerances are deliberately loose (these are behavioural bands, not
// bit-exact goldens — those are covered by the determinism tests).

#include <gtest/gtest.h>

#include "src/sim/runner.hpp"

namespace apx {
namespace {

ScenarioConfig pinned_scenario() {
  ScenarioConfig cfg = default_scenario();
  cfg.seed = 42;
  cfg.duration = 45 * kSecond;
  cfg.num_devices = 4;
  return cfg;
}

TEST(Regression, HeadlineReductionBand) {
  ScenarioConfig cfg = pinned_scenario();
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics full = run_scenario(cfg);

  // No-cache mean must sit at the model profile (60 ms +- jitter).
  EXPECT_NEAR(baseline.mean_latency_ms(), 60.0, 2.0);
  // Full-system reduction: the mixed-mobility band (T1).
  const double reduction =
      full.reduction_vs_percent(baseline.mean_latency_ms());
  EXPECT_GT(reduction, 75.0);
  EXPECT_LT(reduction, 98.0);
  // Accuracy stays near the DNN's. The band is wide because reuse chains
  // make per-frame correctness strongly correlated (one unlucky inference
  // covers an object's whole dwell), so single-seed accuracy swings a few
  // points around the multi-seed mean that T2 reports.
  EXPECT_GT(full.accuracy(), baseline.accuracy() - 0.06);
  // All reuse paths fire on this workload.
  EXPECT_GT(full.source_fraction(ResultSource::kImuFastPath), 0.05);
  EXPECT_GT(full.source_fraction(ResultSource::kTemporalReuse), 0.05);
  EXPECT_GT(full.source_fraction(ResultSource::kLocalCacheHit), 0.05);
  EXPECT_GT(full.source_fraction(ResultSource::kFullInference), 0.01);
}

TEST(Regression, LadderIsOrdered) {
  // Each rung must not regress the previous one by more than noise.
  ScenarioConfig cfg = pinned_scenario();
  auto mean_for = [&cfg](PipelineConfig pipeline) {
    cfg.pipeline = std::move(pipeline);
    return run_scenario(cfg).mean_latency_ms();
  };
  const double nocache = mean_for(make_nocache_config());
  const double local = mean_for(make_approx_local_config());
  const double imu = mean_for(make_approx_imu_config());
  const double video = mean_for(make_approx_video_config());
  EXPECT_LT(local, nocache * 0.5);
  EXPECT_LT(imu, local * 1.10);
  EXPECT_LT(video, imu * 1.10);
}

TEST(Regression, ExactCacheBaselineStaysUseless) {
  // The motivating observation must keep holding: exact-match caching of
  // noisy camera frames reuses (almost) nothing.
  ScenarioConfig cfg = pinned_scenario();
  cfg.pipeline = make_exactcache_config();
  const ExperimentMetrics m = run_scenario(cfg);
  EXPECT_LT(m.reuse_ratio(), 0.10);
}

TEST(Regression, EnergyBand) {
  ScenarioConfig cfg = pinned_scenario();
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics m = run_scenario(cfg);
  // mJ/frame: far below the 120 mJ inference cost, above the ~1 mJ floor.
  EXPECT_LT(m.mean_total_energy_mj(), 40.0);
  EXPECT_GT(m.mean_total_energy_mj(), 1.0);
}

}  // namespace
}  // namespace apx

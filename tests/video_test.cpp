// Unit tests for the video substrate: stream generation (temporal locality
// driven by mobility) and the keyframe reuse detector.

#include <gtest/gtest.h>

#include <map>

#include "src/util/stats.hpp"
#include "src/video/locality.hpp"
#include "src/video/stream.hpp"

namespace apx {
namespace {

SceneGenerator::Config world() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 16;
  cfg.image_size = 24;
  cfg.seed = 3;
  return cfg;
}

// --------------------------------------------------------------- Stream

TEST(Stream, BadFpsThrows) {
  const SceneGenerator scenes{world()};
  const MobilityModel m = MobilityModel::constant(MotionState::kMinor, kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamConfig cfg;
  cfg.fps = 0.0;
  EXPECT_THROW(VideoStreamGenerator(scenes, m, zipf, cfg, 1),
               std::invalid_argument);
}

TEST(Stream, FrameTimesAdvanceByPeriod) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kMinor, 10 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamConfig cfg;
  cfg.fps = 10.0;
  VideoStreamGenerator stream{scenes, m, zipf, cfg, 1};
  const Frame a = stream.next();
  const Frame b = stream.next();
  EXPECT_EQ(a.t, 0);
  EXPECT_EQ(b.t - a.t, 100 * kMillisecond);
  EXPECT_EQ(stream.next_frame_time(), 200 * kMillisecond);
}

TEST(Stream, LabelsAreValidClasses) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kMajor, 30 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 2};
  for (int i = 0; i < 100; ++i) {
    const Frame f = stream.next();
    EXPECT_GE(f.true_label, 0);
    EXPECT_LT(f.true_label, 16);
    EXPECT_EQ(f.true_label, stream.current_label());
  }
}

TEST(Stream, StationaryKeepsObject) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 60 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 3};
  const Label first = stream.next().true_label;
  int changes = 0;
  for (int i = 0; i < 200; ++i) {
    if (stream.next().true_label != first) ++changes;
  }
  EXPECT_LE(changes, 3);
}

TEST(Stream, MajorMotionChangesObjectsOften) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kMajor, 60 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 4};
  int changes = 0;
  for (int i = 0; i < 200; ++i) {
    if (stream.next().object_changed) ++changes;
  }
  EXPECT_GE(changes, 5);
}

TEST(Stream, ConsecutiveStationaryFramesSimilar) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 60 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 5};
  Frame prev = stream.next();
  OnlineStats diffs;
  for (int i = 0; i < 30; ++i) {
    Frame cur = stream.next();
    if (cur.true_label == prev.true_label) {
      diffs.add(cur.image.mean_abs_diff(prev.image));
    }
    prev = std::move(cur);
  }
  EXPECT_LT(diffs.mean(), 0.05);
}

TEST(Stream, MajorMotionFramesLessSimilar) {
  const SceneGenerator scenes{world()};
  const ZipfSampler zipf{16, 0.8};
  auto mean_diff = [&](MotionState state, std::uint64_t seed) {
    const MobilityModel m = MobilityModel::constant(state, 60 * kSecond);
    VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, seed};
    Frame prev = stream.next();
    OnlineStats diffs;
    for (int i = 0; i < 50; ++i) {
      Frame cur = stream.next();
      diffs.add(cur.image.mean_abs_diff(prev.image));
      prev = std::move(cur);
    }
    return diffs.mean();
  };
  EXPECT_LT(mean_diff(MotionState::kStationary, 6),
            mean_diff(MotionState::kMajor, 6));
}

TEST(Stream, DeterministicPerSeed) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kMinor, 10 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator a{scenes, m, zipf, VideoStreamConfig{}, 9};
  VideoStreamGenerator b{scenes, m, zipf, VideoStreamConfig{}, 9};
  for (int i = 0; i < 20; ++i) {
    const Frame fa = a.next();
    const Frame fb = b.next();
    EXPECT_EQ(fa.true_label, fb.true_label);
    EXPECT_EQ(fa.image.mean_abs_diff(fb.image), 0.0f);
  }
}

TEST(Stream, PopularitySkewShowsInLabels) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kMajor, 600 * kSecond);
  const ZipfSampler zipf{16, 1.5};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 10};
  std::map<Label, int> counts;
  for (int i = 0; i < 3000; ++i) counts[stream.next().true_label]++;
  // Rank-0 must be sampled far more often than rank-15.
  EXPECT_GT(counts[0], counts[15] * 3);
}

// --------------------------------------------------------------- Locality

Image flat(float value) {
  Image img(16, 16, 1);
  for (float& v : img.data()) v = value;
  return img;
}

TEST(Temporal, BadParamsThrow) {
  TemporalReuseParams p;
  p.diff_threshold = -1.0f;
  EXPECT_THROW(TemporalReuseDetector{p}, std::invalid_argument);
  p = TemporalReuseParams{};
  p.downsample_side = 0;
  EXPECT_THROW(TemporalReuseDetector{p}, std::invalid_argument);
}

TEST(Temporal, NoKeyframeNoReuse) {
  TemporalReuseDetector det;
  const TemporalCheck check = det.check(flat(0.5f));
  EXPECT_FALSE(check.reusable);
  EXPECT_FALSE(det.has_keyframe());
}

TEST(Temporal, IdenticalFrameReusable) {
  TemporalReuseDetector det;
  det.set_keyframe(flat(0.5f));
  const TemporalCheck check = det.check(flat(0.5f));
  EXPECT_TRUE(check.reusable);
  EXPECT_EQ(check.diff, 0.0f);
  EXPECT_EQ(det.chain_length(), 1);
}

TEST(Temporal, DifferentFrameNotReusable) {
  TemporalReuseDetector det;
  det.set_keyframe(flat(0.1f));
  const TemporalCheck check = det.check(flat(0.9f));
  EXPECT_FALSE(check.reusable);
  EXPECT_NEAR(check.diff, 0.8f, 1e-5f);
}

TEST(Temporal, ChainBoundedByMaxChain) {
  TemporalReuseParams p;
  p.max_chain = 3;
  TemporalReuseDetector det{p};
  det.set_keyframe(flat(0.5f));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(det.check(flat(0.5f)).reusable) << i;
  }
  EXPECT_FALSE(det.check(flat(0.5f)).reusable);  // forced refresh
}

TEST(Temporal, SetKeyframeResetsChain) {
  TemporalReuseParams p;
  p.max_chain = 2;
  TemporalReuseDetector det{p};
  det.set_keyframe(flat(0.5f));
  det.check(flat(0.5f));
  det.check(flat(0.5f));
  det.set_keyframe(flat(0.5f));
  EXPECT_EQ(det.chain_length(), 0);
  EXPECT_TRUE(det.check(flat(0.5f)).reusable);
}

TEST(Temporal, InvalidateDropsKeyframe) {
  TemporalReuseDetector det;
  det.set_keyframe(flat(0.5f));
  det.invalidate();
  EXPECT_FALSE(det.has_keyframe());
  EXPECT_FALSE(det.check(flat(0.5f)).reusable);
}

TEST(Temporal, CheckReportsConfiguredLatency) {
  TemporalReuseParams p;
  p.check_latency = 777;
  TemporalReuseDetector det{p};
  EXPECT_EQ(det.check(flat(0.0f)).latency, 777);
}

TEST(Temporal, ComparesAgainstKeyframeNotPreviousFrame) {
  // Slow drift: each frame close to the previous but cumulative drift
  // large. Keyframe comparison must eventually refuse.
  TemporalReuseParams p;
  p.diff_threshold = 0.1f;
  p.max_chain = 1000;
  TemporalReuseDetector det{p};
  det.set_keyframe(flat(0.0f));
  bool refused = false;
  for (int i = 1; i <= 20; ++i) {
    const TemporalCheck check = det.check(flat(0.03f * static_cast<float>(i)));
    if (!check.reusable) {
      refused = true;
      break;
    }
  }
  EXPECT_TRUE(refused);
}

TEST(Temporal, WorksOnRealStream) {
  const SceneGenerator scenes{world()};
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 30 * kSecond);
  const ZipfSampler zipf{16, 0.8};
  VideoStreamGenerator stream{scenes, m, zipf, VideoStreamConfig{}, 11};
  TemporalReuseDetector det;
  det.set_keyframe(stream.next().image);
  int reused = 0;
  for (int i = 0; i < 20; ++i) {
    if (det.check(stream.next().image).reusable) ++reused;
  }
  EXPECT_GE(reused, 15);  // stationary stream is highly reusable
}

}  // namespace
}  // namespace apx

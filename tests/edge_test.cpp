// Unit tests for the edge aggregation tier (src/edge): shard routing
// determinism, the error-controlled admission gate, TTL expiry exactly at
// the sim-clock boundary, per-shard capacity eviction, and byte-identical
// same-seed metrics exports with the edge rung enabled.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "src/edge/edge_cache.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

constexpr std::size_t kDim = 8;

/// Unit vector along axis `i` (negated when sign < 0): pairwise distance
/// sqrt(2), far outside every max_distance used here.
FeatureVec axis(std::size_t i, float sign = 1.0f) {
  FeatureVec v(kDim, 0.0f);
  v[i % kDim] = sign;
  return v;
}

/// Deterministic vote geometry: exact index, no LSH width adaptation.
EdgeParams exact_params() {
  EdgeParams p;
  p.shards = 1;
  p.cache.index = IndexKind::kExact;
  p.cache.hknn.max_distance = 0.3f;
  return p;
}

// ------------------------------------------------------------ shard routing

TEST(EdgeShards, RoutingIsDeterministicAcrossInstances) {
  EdgeParams p;
  p.shards = 4;
  const EdgeCacheService a{kDim, p}, b{kDim, p};
  std::mt19937 rng{42};
  std::normal_distribution<float> dist;
  for (int trial = 0; trial < 200; ++trial) {
    FeatureVec v(kDim);
    for (float& x : v) x = dist(rng);
    const std::size_t shard = a.shard_of(v);
    EXPECT_LT(shard, a.shard_count());
    // A pure function of (dim, shards, features): every instance agrees.
    EXPECT_EQ(shard, b.shard_of(v));
  }
}

TEST(EdgeShards, NonPowerOfTwoShardCountsStayInRange) {
  EdgeParams p;
  p.shards = 3;
  const EdgeCacheService svc{kDim, p};
  std::mt19937 rng{7};
  std::normal_distribution<float> dist;
  for (int trial = 0; trial < 200; ++trial) {
    FeatureVec v(kDim);
    for (float& x : v) x = dist(rng);
    EXPECT_LT(svc.shard_of(v), 3u);
  }
}

TEST(EdgeShards, FeedLandsInTheRoutedShard) {
  EdgeParams p;
  p.shards = 4;
  p.error_budget = 1.0f;
  EdgeCacheService svc{kDim, p};
  const FeatureVec v = axis(0);
  ASSERT_TRUE(svc.feed(v, /*label=*/1, /*confidence=*/0.9f, /*now=*/0));
  const std::size_t routed = svc.shard_of(v);
  EXPECT_EQ(svc.shard(routed).size(), 1u);
  for (std::size_t s = 0; s < svc.shard_count(); ++s) {
    if (s != routed) EXPECT_EQ(svc.shard(s).size(), 0u);
  }
  // And the query for the same key answers from that shard.
  const CacheResult res = svc.query(v, /*now=*/1);
  ASSERT_TRUE(res.vote.has_value());
  EXPECT_EQ(res.vote->label, 1);
}

TEST(EdgeShards, ConstructorRejectsInvalidParams) {
  EXPECT_THROW(EdgeCacheService(0, EdgeParams{}), std::invalid_argument);
  {
    EdgeParams p;
    p.shards = 0;
    EXPECT_THROW(EdgeCacheService(kDim, p), std::invalid_argument);
  }
  {
    EdgeParams p;
    p.capacity = 0;
    EXPECT_THROW(EdgeCacheService(kDim, p), std::invalid_argument);
  }
  {
    EdgeParams p;
    p.ttl = 0;
    EXPECT_THROW(EdgeCacheService(kDim, p), std::invalid_argument);
  }
  {
    EdgeParams p;
    p.error_budget = 1.5f;
    EXPECT_THROW(EdgeCacheService(kDim, p), std::invalid_argument);
  }
}

// ---------------------------------------------------------------- admission

/// One admission scenario: a pre-populated neighbourhood around the fed
/// key, a fed label, a budget, and the expected verdict.
struct AdmissionCase {
  const char* name;
  /// (label, count) groups inserted exactly at the fed key before the feed.
  std::vector<std::pair<Label, int>> neighbourhood;
  /// When true the single pre-inserted entry sits far outside max_distance.
  bool neighbour_out_of_range = false;
  Label fed = 7;
  float budget = 0.25f;
  bool expect_admit = true;
};

TEST(EdgeAdmission, ErrorBudgetAcceptRejectTable) {
  const FeatureVec key = axis(0);
  const AdmissionCase cases[] = {
      // Empty neighbourhood: nothing served here yet, error 0 — admitted
      // even by the strictest budget.
      {"empty, budget 0", {}, false, 7, 0.0f, true},
      // Four agreeing entries: the vote already answers `fed` with
      // homogeneity 1, so the residual error is 0.
      {"agreeing homogeneous, budget 0", {{7, 4}}, false, 7, 0.0f, true},
      // Four conflicting entries: admitting splits a neighbourhood that
      // answers label 3 with homogeneity 1 — error 1 busts any budget < 1.
      {"conflicting homogeneous, budget 0.25", {{3, 4}}, false, 7, 0.25f,
       false},
      {"conflicting homogeneous, budget 1", {{3, 4}}, false, 7, 1.0f, true},
      // 2-vs-2 mixture: H-kNN abstains (share 0.5 < threshold 0.8) but the
      // nearest neighbour is in range — contested region, error 0.5.
      {"contested abstain, budget 0.25", {{3, 2}, {5, 2}}, false, 7, 0.25f,
       false},
      // The budget comparison is inclusive: error 0.5 clears budget 0.5.
      {"contested abstain, budget 0.5", {{3, 2}, {5, 2}}, false, 7, 0.5f,
       true},
      // A lone neighbour beyond max_distance: abstain with nothing in
      // range, error 0 — free to admit.
      {"out-of-range neighbour, budget 0", {{3, 1}}, true, 7, 0.0f, true},
  };
  for (const AdmissionCase& c : cases) {
    SCOPED_TRACE(c.name);
    EdgeParams p = exact_params();
    p.error_budget = c.budget;
    EdgeCacheService svc{kDim, p};
    ApproxCache& shard = svc.shard(0);
    const std::size_t before_feed = [&] {
      std::size_t n = 0;
      for (const auto& [label, count] : c.neighbourhood) {
        const FeatureVec where = c.neighbour_out_of_range ? axis(1) : key;
        for (int i = 0; i < count; ++i) {
          shard.insert(where, label, 0.9f, /*now=*/0);
          ++n;
        }
      }
      return n;
    }();
    EXPECT_EQ(svc.feed(key, c.fed, 0.9f, /*now=*/1), c.expect_admit);
    EXPECT_EQ(svc.size(), before_feed + (c.expect_admit ? 1 : 0));
    EXPECT_EQ(svc.counters().get("admit"), c.expect_admit ? 1u : 0u);
    EXPECT_EQ(svc.counters().get("reject_budget"), c.expect_admit ? 0u : 1u);
  }
}

TEST(EdgeAdmission, AdmittedEntriesCarryPeerOriginAndSource) {
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  EdgeCacheService svc{kDim, p};
  ASSERT_TRUE(svc.feed(axis(0), 4, 0.9f, /*now=*/0, /*source_device=*/11));
  svc.shard(0).for_each([](const CacheEntry& e) {
    EXPECT_EQ(e.origin, EntryOrigin::kPeer);
    EXPECT_EQ(e.hop_count, 1u);
    EXPECT_EQ(e.source_device, 11u);
  });
}

// --------------------------------------------------------------------- TTL

TEST(EdgeTtl, SweepExpiresExactlyAtTheBoundary) {
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  p.ttl = 30 * kSecond;
  EdgeCacheService svc{kDim, p};
  ASSERT_TRUE(svc.feed(axis(0), 1, 0.9f, /*now=*/5));
  // One microsecond before the boundary: kept.
  EXPECT_EQ(svc.sweep(5 + p.ttl - 1), 0u);
  EXPECT_EQ(svc.size(), 1u);
  // Exactly at insert_time + ttl: removed.
  EXPECT_EQ(svc.sweep(5 + p.ttl), 1u);
  EXPECT_EQ(svc.size(), 0u);
  EXPECT_EQ(svc.counters().get("swept"), 1u);
}

TEST(EdgeTtl, SweepRemovesOnlyExpiredEntries) {
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  p.ttl = 10 * kSecond;
  EdgeCacheService svc{kDim, p};
  ASSERT_TRUE(svc.feed(axis(0), 1, 0.9f, /*now=*/0));
  ASSERT_TRUE(svc.feed(axis(1), 2, 0.9f, /*now=*/4 * kSecond));
  EXPECT_EQ(svc.sweep(10 * kSecond), 1u);  // only the t=0 entry
  EXPECT_EQ(svc.size(), 1u);
  svc.shard(0).for_each(
      [](const CacheEntry& e) { EXPECT_EQ(e.label, 2); });
  EXPECT_EQ(svc.sweep(14 * kSecond), 1u);
  EXPECT_EQ(svc.size(), 0u);
}

TEST(EdgeTtl, PeriodicSweepRunsOnTheSimClock) {
  EventSimulator sim;
  WirelessMedium medium{sim, MediumParams{}, /*seed=*/3};
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  p.ttl = 2 * kSecond;
  p.sweep_interval = 1 * kSecond;
  EdgeCacheService svc{kDim, p};
  svc.attach_network(sim, medium);
  svc.start();
  ASSERT_TRUE(svc.feed(axis(0), 1, 0.9f, sim.now()));
  // The sweep at t=1s and t=2s run off the event loop; the entry expires
  // at exactly t=2s without any query touching it.
  sim.run_until(p.ttl - 1);
  EXPECT_EQ(svc.size(), 1u);
  sim.run_until(p.ttl + p.sweep_interval);
  EXPECT_EQ(svc.size(), 0u);
  svc.stop();
}

TEST(EdgeTtl, StopWipesShardsAndOrphansPendingSweeps) {
  EventSimulator sim;
  WirelessMedium medium{sim, MediumParams{}, /*seed=*/3};
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  EdgeCacheService svc{kDim, p};
  svc.attach_network(sim, medium);
  svc.start();
  ASSERT_TRUE(svc.feed(axis(0), 1, 0.9f, sim.now()));
  EXPECT_EQ(svc.size(), 1u);
  svc.stop();  // crash: shards wiped, traffic ignored
  EXPECT_EQ(svc.size(), 0u);
  EXPECT_FALSE(svc.running());
  // A restart re-warms from feeds; the pre-stop sweep tick chain must not
  // double-fire alongside the restarted one.
  svc.start();
  ASSERT_TRUE(svc.feed(axis(1), 2, 0.9f, sim.now()));
  sim.run_until(sim.now() + 5 * kSecond);
  EXPECT_EQ(svc.size(), 1u);  // default 30s ttl: still alive
  svc.stop();
}

// ---------------------------------------------------------------- capacity

TEST(EdgeCapacity, EvictionIsPerShard) {
  EdgeParams p = exact_params();
  p.error_budget = 1.0f;
  p.capacity = 4;
  EdgeCacheService svc{kDim, p};
  // 16 well-separated keys through one shard: the shard holds at most its
  // own capacity, evicting by utility as it fills.
  for (std::size_t i = 0; i < 16; ++i) {
    svc.feed(axis(i % kDim, i < kDim ? 1.0f : -1.0f), static_cast<Label>(i),
             0.9f, static_cast<SimTime>(i));
  }
  EXPECT_EQ(svc.size(), p.capacity);
  EXPECT_EQ(svc.shard(0).size(), p.capacity);

  // With 4 shards each shard gets its own capacity budget: the same keys
  // spread out and the total can exceed one shard's limit.
  p.shards = 4;
  EdgeCacheService sharded{kDim, p};
  for (std::size_t i = 0; i < 16; ++i) {
    sharded.feed(axis(i % kDim, i < kDim ? 1.0f : -1.0f),
                 static_cast<Label>(i), 0.9f, static_cast<SimTime>(i));
  }
  std::size_t total = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    EXPECT_LE(sharded.shard(s).size(), p.capacity);
    total += sharded.shard(s).size();
  }
  EXPECT_EQ(sharded.size(), total);
  EXPECT_GT(total, p.capacity);  // the split actually spread the keys
}

// ------------------------------------------------------------- determinism

TEST(EdgeMetrics, SameSeedExportsAreByteIdentical) {
  ScenarioConfig cfg = default_scenario();
  cfg.pipeline = make_edge_config();
  cfg.num_devices = 3;
  cfg.duration = 8 * kSecond;
  cfg.scene.num_classes = 16;
  cfg.seed = 7;
  ExperimentRunner a{cfg}, b{cfg};
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().to_json(), b.metrics().to_json());
  EXPECT_EQ(a.edge_cache_size(), b.edge_cache_size());
}

}  // namespace
}  // namespace apx

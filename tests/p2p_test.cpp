// Unit + integration tests for the collaborative cache-sharing protocol.

#include <gtest/gtest.h>

#include <cmath>

#include "src/p2p/peer_cache.hpp"

namespace apx {
namespace {

constexpr std::size_t kDim = 8;

FeatureVec unit_at(float angle) {
  FeatureVec v(kDim, 0.0f);
  v[0] = std::cos(angle);
  v[1] = std::sin(angle);
  return v;
}

ApproxCacheConfig cache_config() {
  ApproxCacheConfig cfg;
  cfg.capacity = 64;
  cfg.index = IndexKind::kExact;
  cfg.hknn.max_distance = 0.3f;
  return cfg;
}

MediumParams lossless() {
  MediumParams p;
  p.loss_prob = 0.0;
  p.jitter = 0;
  return p;
}

/// Two-or-more co-located peers with their caches, over a lossless medium.
struct Cluster {
  EventSimulator sim;
  WirelessMedium medium;
  std::vector<std::unique_ptr<ApproxCache>> caches;
  std::vector<std::unique_ptr<PeerCacheService>> peers;

  explicit Cluster(int n, PeerCacheParams params = {},
                   MediumParams medium_params = lossless())
      : medium(sim, medium_params, 77) {
    for (int i = 0; i < n; ++i) {
      caches.push_back(std::make_unique<ApproxCache>(kDim, cache_config(),
                                                     make_lru_policy()));
      peers.push_back(std::make_unique<PeerCacheService>(
          sim, medium, *caches.back(), params, /*cell=*/0));
    }
    for (auto& p : peers) p->start();
    // Let a beacon round complete so neighbour tables are warm.
    sim.run_until(sim.now() + 100 * kMillisecond);
  }
};

TEST(PeerCache, IdsAreDistinct) {
  Cluster c{3};
  EXPECT_NE(c.peers[0]->id(), c.peers[1]->id());
  EXPECT_NE(c.peers[1]->id(), c.peers[2]->id());
}

TEST(PeerCache, DiscoveryFindsAllPeers) {
  Cluster c{4};
  for (const auto& p : c.peers) {
    EXPECT_EQ(p->discovery().neighbor_count(), 3u);
  }
}

TEST(PeerCache, LookupWithNoNeighborsCompletesEmpty) {
  PeerCacheParams params;
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  ApproxCache cache{kDim, cache_config(), make_lru_policy()};
  PeerCacheService svc{sim, medium, cache, params};
  svc.start();
  bool called = false;
  svc.async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> entries) {
    called = true;
    EXPECT_TRUE(entries.empty());
  });
  sim.run_all();
  EXPECT_TRUE(called);
}

TEST(PeerCache, RemoteHitReturnsEntries) {
  PeerCacheParams params;
  params.advert_enabled = false;  // isolate the pull path
  Cluster c{2, params};
  c.caches[1]->insert(unit_at(0.0f), 42, 0.9f, c.sim.now());

  std::vector<WireEntry> got;
  bool called = false;
  c.peers[0]->async_lookup(unit_at(0.01f),
                           [&](std::vector<WireEntry> entries) {
                             called = true;
                             got = std::move(entries);
                           });
  c.sim.run_all();
  ASSERT_TRUE(called);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].label, 42);
  // The entry also merged into the requester's local cache.
  EXPECT_EQ(c.caches[0]->size(), 1u);
  EXPECT_EQ(c.peers[0]->counters().get("merged"), 1u);
}

TEST(PeerCache, LookupCompletesEarlyWhenAllRespond) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.lookup_timeout = 10 * kSecond;  // timeout would dominate otherwise
  Cluster c{3, params};
  bool called = false;
  SimTime completion = 0;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry>) {
    called = true;
    completion = c.sim.now();
  });
  c.sim.run_all();
  ASSERT_TRUE(called);
  // Early completion: two round trips of a few ms, nowhere near 10 s.
  EXPECT_LT(completion, kSecond);
}

TEST(PeerCache, LookupTimesOutUnderTotalLoss) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.lookup_timeout = 50 * kMillisecond;
  MediumParams lossy = lossless();
  Cluster c{2, params};
  // Warm neighbour tables were built; now move the peer out of range so the
  // request is never answered.
  const SimTime start = c.sim.now();
  c.medium.set_cell(c.peers[1]->id(), 99);
  bool called = false;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> e) {
    called = true;
    EXPECT_TRUE(e.empty());
  });
  c.sim.run_all();
  EXPECT_TRUE(called);
  EXPECT_GE(c.sim.now() - start, params.lookup_timeout);
  (void)lossy;
}

TEST(PeerCache, AdvertPropagatesFreshEntries) {
  PeerCacheParams params;
  params.advert_interval = 200 * kMillisecond;
  Cluster c{3, params};
  c.caches[0]->insert(unit_at(0.5f), 7, 0.9f, c.sim.now());
  c.sim.run_until(c.sim.now() + kSecond);
  // Both other peers hold the advertised entry now.
  EXPECT_GE(c.caches[1]->size(), 1u);
  EXPECT_GE(c.caches[2]->size(), 1u);
  EXPECT_GE(c.peers[0]->counters().get("advert_sent"), 1u);
}

TEST(PeerCache, MergedEntriesCarryProvenance) {
  PeerCacheParams params;
  params.advert_interval = 100 * kMillisecond;
  Cluster c{2, params};
  c.caches[0]->insert(unit_at(0.5f), 7, 1.0f, c.sim.now());
  c.sim.run_until(c.sim.now() + kSecond);
  ASSERT_EQ(c.caches[1]->size(), 1u);
  c.caches[1]->for_each([&](const CacheEntry& entry) {
    EXPECT_EQ(entry.origin, EntryOrigin::kPeer);
    EXPECT_EQ(entry.hop_count, 1);
    EXPECT_LT(entry.confidence, 1.0f);  // per-hop decay applied
  });
}

TEST(PeerCache, DedupRadiusPreventsDuplicateMerge) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.dedup_radius = 0.05f;
  Cluster c{2, params};
  // Requester already caches (almost) the same feature.
  c.caches[0]->insert(unit_at(0.0f), 42, 0.9f, c.sim.now());
  c.caches[1]->insert(unit_at(0.001f), 42, 0.9f, c.sim.now());
  bool called = false;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry>) {
    called = true;
  });
  c.sim.run_all();
  EXPECT_TRUE(called);
  EXPECT_EQ(c.caches[0]->size(), 1u);
  EXPECT_GE(c.peers[0]->counters().get("merge_dup"), 1u);
}

TEST(PeerCache, HopLimitStopsPropagation) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.max_hops = 1;
  Cluster c{2, params};
  // Peer 1 holds a remote entry that already travelled max_hops.
  c.caches[1]->insert(unit_at(0.0f), 42, 0.9f, c.sim.now(),
                      EntryOrigin::kPeer, /*hop_count=*/1, /*source=*/9);
  bool called = false;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> e) {
    called = true;
    EXPECT_EQ(e.size(), 1u);  // still returned for this lookup...
  });
  c.sim.run_all();
  EXPECT_TRUE(called);
  // ...but not merged into the requester's cache.
  EXPECT_EQ(c.caches[0]->size(), 0u);
  EXPECT_GE(c.peers[0]->counters().get("merge_hops"), 1u);
}

TEST(PeerCache, ResponseLimitedToKEntries) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.lookup_k = 2;
  Cluster c{2, params};
  for (int i = 0; i < 6; ++i) {
    c.caches[1]->insert(unit_at(0.01f * static_cast<float>(i)), 42, 0.9f,
                        c.sim.now());
  }
  std::size_t got = 0;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> e) {
    got = e.size();
  });
  c.sim.run_all();
  EXPECT_EQ(got, 2u);
}

TEST(PeerCache, FarEntriesNotReturned) {
  PeerCacheParams params;
  params.advert_enabled = false;
  params.response_max_distance = 0.3f;
  Cluster c{2, params};
  c.caches[1]->insert(unit_at(2.0f), 42, 0.9f, c.sim.now());  // far away
  std::size_t got = 99;
  c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> e) {
    got = e.size();
  });
  c.sim.run_all();
  EXPECT_EQ(got, 0u);
}

TEST(PeerCache, MalformedMessageCounted) {
  Cluster c{2};
  // Byte 2 is kLookupRequest's type but the body is garbage.
  c.medium.unicast(c.peers[1]->id(), c.peers[0]->id(), {2, 0xFF});
  c.sim.run_all();
  EXPECT_GE(c.peers[0]->counters().get("bad_message"), 1u);
}

TEST(PeerCache, WrongDimensionEntryRejected) {
  PeerCacheParams params;
  params.advert_enabled = false;
  Cluster c{2, params};
  // Craft a response-like advert with a wrong-dimension feature.
  EntryAdvertMsg msg;
  msg.sender = c.peers[1]->id();
  WireEntry e;
  e.feature = FeatureVec(3, 0.5f);  // dim mismatch (cache dim is 8)
  e.label = 5;
  msg.entries.push_back(e);
  c.medium.unicast(c.peers[1]->id(), c.peers[0]->id(), encode(msg));
  c.sim.run_all();
  EXPECT_EQ(c.caches[0]->size(), 0u);
  EXPECT_GE(c.peers[0]->counters().get("bad_message"), 1u);
}

TEST(PeerCache, CollaborationScalesWithPeers) {
  // More peers holding relevant entries -> more entries collected.
  PeerCacheParams params;
  params.advert_enabled = false;
  params.lookup_k = 8;
  std::size_t collected_2 = 0, collected_5 = 0;
  for (int n : {2, 5}) {
    Cluster c{n, params};
    for (int i = 1; i < n; ++i) {
      c.caches[static_cast<std::size_t>(i)]->insert(
          unit_at(0.01f * static_cast<float>(i)), 42, 0.9f, c.sim.now());
    }
    std::size_t got = 0;
    c.peers[0]->async_lookup(unit_at(0.0f), [&](std::vector<WireEntry> e) {
      got = e.size();
    });
    c.sim.run_all();
    (n == 2 ? collected_2 : collected_5) = got;
  }
  EXPECT_GT(collected_5, collected_2);
}

}  // namespace
}  // namespace apx

// Tests for the extension features: multiprobe LSH, 8-bit wire
// quantization, cache snapshots, the adaptive threshold controller, and
// radio-range churn in scenarios.

#include <gtest/gtest.h>

#include <cmath>

#include "src/ann/quantize.hpp"
#include "src/cache/snapshot.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/threshold_controller.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

// ------------------------------------------------------------ Multiprobe

TEST(Multiprobe, ImprovesRecallAtNarrowWidth) {
  // At a width too narrow for plain LSH, probing adjacent buckets must
  // recover a substantial share of the lost neighbours.
  LshParams narrow;
  narrow.num_tables = 4;
  narrow.hashes_per_table = 6;
  narrow.bucket_width = 0.25f;
  LshParams probed = narrow;
  probed.probes_per_table = 4;

  PStableLshIndex plain{16, narrow};
  PStableLshIndex multi{16, probed};
  Rng rng{3};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 200; ++id) {
    base.push_back(random_unit(rng, 16));
    plain.insert(id, base.back());
    multi.insert(id, base.back());
  }
  int plain_found = 0, multi_found = 0;
  for (VecId id = 0; id < 200; ++id) {
    FeatureVec q = base[id];
    for (float& x : q) x += static_cast<float>(rng.normal(0.0, 0.02));
    const auto p = plain.query(q, 1);
    const auto m = multi.query(q, 1);
    if (!p.empty() && p[0].id == id) ++plain_found;
    if (!m.empty() && m[0].id == id) ++multi_found;
  }
  EXPECT_GT(multi_found, plain_found);
}

TEST(Multiprobe, ExactMatchStillFound) {
  LshParams params;
  params.probes_per_table = 2;
  PStableLshIndex index{8, params};
  Rng rng{5};
  const FeatureVec v = random_unit(rng, 8);
  index.insert(1, v);
  const auto result = index.query(v, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(Multiprobe, ProbesBoundedByHashCount) {
  LshParams params;
  params.hashes_per_table = 4;
  params.probes_per_table = 100;  // silently capped at 4 per table
  PStableLshIndex index{8, params};
  Rng rng{5};
  for (VecId id = 0; id < 20; ++id) index.insert(id, random_unit(rng, 8));
  EXPECT_NO_THROW(index.query(random_unit(rng, 8), 4));
}

TEST(Multiprobe, NoProbesMatchesBaseline) {
  LshParams params;
  PStableLshIndex a{8, params};
  params.probes_per_table = 0;
  PStableLshIndex b{8, params};
  Rng rng{7};
  for (VecId id = 0; id < 50; ++id) {
    const FeatureVec v = random_unit(rng, 8);
    a.insert(id, v);
    b.insert(id, v);
  }
  Rng qrng{9};
  for (int i = 0; i < 20; ++i) {
    const FeatureVec q = random_unit(qrng, 8);
    const auto ra = a.query(q, 3);
    const auto rb = b.query(q, 3);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].id, rb[j].id);
    }
  }
}

// ------------------------------------------------------------ Quantize

TEST(Quantize, RoundTripWithinErrorBound) {
  Rng rng{1};
  for (int trial = 0; trial < 20; ++trial) {
    const FeatureVec v = random_unit(rng, 64);
    const FeatureVec back = dequantize(quantize(v));
    ASSERT_EQ(back.size(), v.size());
    const float bound = quantization_error_bound(v) + 1e-6f;
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(back[i], v[i], bound);
    }
  }
}

TEST(Quantize, ConstantVectorExact) {
  const FeatureVec v(16, 0.37f);
  const QuantizedVec q = quantize(v);
  EXPECT_EQ(q.scale, 0.0f);
  const FeatureVec back = dequantize(q);
  for (float x : back) EXPECT_FLOAT_EQ(x, 0.37f);
}

TEST(Quantize, EmptyVector) {
  const QuantizedVec q = quantize(FeatureVec{});
  EXPECT_TRUE(dequantize(q).empty());
}

TEST(Quantize, ExtremesMapToExtremeCodes) {
  const FeatureVec v{-1.0f, 1.0f};
  const QuantizedVec q = quantize(v);
  EXPECT_EQ(q.codes[0], 0);
  EXPECT_EQ(q.codes[1], 255);
}

TEST(Quantize, WireRoundTrip) {
  Rng rng{2};
  const FeatureVec v = random_unit(rng, 32);
  Writer w;
  write_quantized(w, quantize(v));
  Reader r{w.bytes()};
  const QuantizedVec q = read_quantized(r);
  EXPECT_EQ(dequantize(q), dequantize(quantize(v)));
  EXPECT_TRUE(r.done());
}

TEST(Quantize, WireTruncationThrows) {
  Writer w;
  write_quantized(w, quantize(FeatureVec(32, 0.5f)));
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 10);
  Reader r{bytes};
  EXPECT_THROW(read_quantized(r), CodecError);
}

TEST(Quantize, PayloadMuchSmallerThanF32) {
  Rng rng{3};
  const FeatureVec v = random_unit(rng, 64);
  Writer wq, wf;
  write_quantized(wq, quantize(v));
  wf.f32_vec(v);
  EXPECT_LT(wq.size() * 3, wf.size());  // > 3x smaller
}

TEST(Quantize, DistortionSmallerThanClassSeparation) {
  // The L2 distortion of quantization must sit far below unit-norm
  // inter-class distances (~1.4), so reuse decisions are unaffected.
  Rng rng{4};
  OnlineStats distortion;
  for (int i = 0; i < 50; ++i) {
    const FeatureVec v = random_unit(rng, 64);
    distortion.add(l2(v, dequantize(quantize(v))));
  }
  EXPECT_LT(distortion.max(), 0.05);
}

// ------------------------------------------------------------ Snapshot

ApproxCache snapshot_cache() {
  ApproxCacheConfig cfg;
  cfg.capacity = 32;
  cfg.index = IndexKind::kExact;
  return ApproxCache{4, cfg, make_lru_policy()};
}

TEST(Snapshot, RoundTripPreservesEntries) {
  ApproxCache original = snapshot_cache();
  original.insert({1, 0, 0, 0}, 7, 0.9f, 100, EntryOrigin::kLocal, 0, 0);
  original.insert({0, 1, 0, 0}, 8, 0.5f, 200, EntryOrigin::kPeer, 2, 9);
  const auto bytes = save_snapshot(original, 1000);

  ApproxCache restored = snapshot_cache();
  EXPECT_EQ(load_snapshot(restored, bytes, 5000), 2u);
  EXPECT_EQ(restored.size(), 2u);
  // Lookup still works and labels survive.
  const auto hit =
      restored.lookup({.features = FeatureVec{1, 0, 0, 0}, .now = 5000});
  ASSERT_TRUE(hit.vote.has_value());
  EXPECT_EQ(hit.vote->label, 7);
  // Provenance survives: find the peer entry.
  bool found_peer = false;
  restored.for_each([&](const CacheEntry& e) {
    if (e.label == 8) {
      found_peer = true;
      EXPECT_EQ(e.origin, EntryOrigin::kPeer);
      EXPECT_EQ(e.hop_count, 2);
      EXPECT_EQ(e.source_device, 9u);
      // Age preserved: inserted at 200 when saved at 1000 -> age 800,
      // restored at 5000 -> insert_time 4200.
      EXPECT_EQ(e.insert_time, 4200);
    }
  });
  EXPECT_TRUE(found_peer);
}

TEST(Snapshot, EmptyCacheRoundTrip) {
  ApproxCache cache = snapshot_cache();
  const auto bytes = save_snapshot(cache, 0);
  ApproxCache restored = snapshot_cache();
  EXPECT_EQ(load_snapshot(restored, bytes, 0), 0u);
}

TEST(Snapshot, BadMagicThrows) {
  ApproxCache cache = snapshot_cache();
  auto bytes = save_snapshot(cache, 0);
  bytes[0] ^= 0xff;
  EXPECT_THROW(load_snapshot(cache, bytes, 0), CodecError);
}

TEST(Snapshot, DimensionMismatchThrows) {
  ApproxCache cache = snapshot_cache();
  cache.insert({1, 0, 0, 0}, 1, 0.9f, 0);
  const auto bytes = save_snapshot(cache, 0);
  ApproxCacheConfig cfg;
  cfg.capacity = 8;
  cfg.index = IndexKind::kExact;
  ApproxCache other{8, cfg, make_lru_policy()};
  EXPECT_THROW(load_snapshot(other, bytes, 0), CodecError);
}

TEST(Snapshot, TruncatedThrows) {
  ApproxCache cache = snapshot_cache();
  cache.insert({1, 0, 0, 0}, 1, 0.9f, 0);
  auto bytes = save_snapshot(cache, 0);
  bytes.resize(bytes.size() - 4);
  ApproxCache restored = snapshot_cache();
  EXPECT_THROW(load_snapshot(restored, bytes, 0), CodecError);
}

TEST(Snapshot, DeterministicBytes) {
  ApproxCache a = snapshot_cache();
  a.insert({1, 0, 0, 0}, 1, 0.9f, 10);
  a.insert({0, 1, 0, 0}, 2, 0.8f, 20);
  EXPECT_EQ(save_snapshot(a, 100), save_snapshot(a, 100));
}

// ----------------------------------------------------- ThresholdController

TEST(Threshold, StartsNeutral) {
  const ThresholdController c;
  EXPECT_FLOAT_EQ(c.scale(), 1.0f);
}

TEST(Threshold, AgreementLoosens) {
  ThresholdController c;
  c.observe(true);
  EXPECT_GT(c.scale(), 1.0f);
  EXPECT_EQ(c.agreements(), 1u);
}

TEST(Threshold, ConflictTightensSharply) {
  ThresholdController c;
  for (int i = 0; i < 5; ++i) c.observe(true);
  const float loosened = c.scale();
  c.observe(false);
  EXPECT_LT(c.scale(), loosened * 0.9f);
  EXPECT_EQ(c.conflicts(), 1u);
}

TEST(Threshold, ClampedToRange) {
  ThresholdControllerParams params;
  params.min_scale = 0.5f;
  params.max_scale = 2.0f;
  ThresholdController c{params};
  for (int i = 0; i < 500; ++i) c.observe(true);
  EXPECT_FLOAT_EQ(c.scale(), 2.0f);
  for (int i = 0; i < 500; ++i) c.observe(false);
  EXPECT_FLOAT_EQ(c.scale(), 0.5f);
}

TEST(Threshold, EquilibriumBoundsWrongReuse) {
  // AIMD equilibrium: with conflict probability p, increases ~ (1-p)*step
  // balance decreases; for small p the scale floats high, for large p it
  // pins low. Check the direction on both ends.
  ThresholdControllerParams params;
  ThresholdController mostly_right{params}, mostly_wrong{params};
  Rng rng{11};
  for (int i = 0; i < 2000; ++i) {
    mostly_right.observe(!rng.chance(0.02));
    mostly_wrong.observe(!rng.chance(0.6));
  }
  EXPECT_GT(mostly_right.scale(), 1.2f);
  EXPECT_LT(mostly_wrong.scale(), 0.8f);
}

TEST(Threshold, PeekVoteHasNoSideEffects) {
  ApproxCache cache = snapshot_cache();
  cache.insert({1, 0, 0, 0}, 7, 0.9f, 0);
  const auto before_hits = cache.counters().get("hit");
  const auto vote = cache.peek_vote(
      {.features = FeatureVec{1, 0, 0, 0}, .threshold_scale = 1.0f});
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->label, 7);
  EXPECT_EQ(cache.counters().get("hit"), before_hits);
  const CacheEntry* entry = nullptr;
  cache.for_each([&](const CacheEntry& e) { entry = &e; });
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->access_count, 0u);
}

TEST(Threshold, AdaptiveScenarioRunsAndKeepsAccuracy) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 15 * kSecond;
  cfg.num_devices = 2;
  cfg.scene.class_confusion = 0.3f;
  cfg.pipeline = make_adaptive_config();
  const ExperimentMetrics adaptive = run_scenario(cfg);
  cfg.pipeline = make_nocache_config();
  const ExperimentMetrics baseline = run_scenario(cfg);
  EXPECT_GT(adaptive.reuse_ratio(), 0.3);
  EXPECT_GT(adaptive.accuracy(), baseline.accuracy() - 0.08);
}

// ------------------------------------------------------------ Churn

TEST(Churn, ScenarioRunsWithChurn) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 15 * kSecond;
  cfg.num_devices = 4;
  cfg.churn_period = 4 * kSecond;
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics m = run_scenario(cfg);
  EXPECT_GT(m.frames(), 400u);
  EXPECT_GT(m.reuse_ratio(), 0.2);
}

TEST(Churn, DeterministicUnderChurn) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 10 * kSecond;
  cfg.churn_period = 2 * kSecond;
  const ExperimentMetrics a = run_scenario(cfg);
  const ExperimentMetrics b = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_EQ(a.frames(), b.frames());
}

// --------------------------------------------------- Quantized protocol

TEST(WireQuantization, EntriesSurviveQuantizedTransport) {
  LookupResponseMsg msg;
  msg.request_id = 1;
  msg.sender = 2;
  Rng rng{13};
  WireEntry e;
  e.feature = random_unit(rng, 64);
  e.label = 9;
  e.confidence = 0.8f;
  e.quantize_on_wire = true;
  msg.entries.push_back(e);
  const auto decoded = decode_lookup_response(encode(msg));
  ASSERT_EQ(decoded.entries.size(), 1u);
  EXPECT_EQ(decoded.entries[0].label, 9);
  EXPECT_LT(l2(decoded.entries[0].feature, e.feature), 0.05f);
}

TEST(WireQuantization, QuantizedAdvertSmaller) {
  EntryAdvertMsg fat, slim;
  Rng rng{14};
  for (int i = 0; i < 8; ++i) {
    WireEntry e;
    e.feature = random_unit(rng, 64);
    e.label = i;
    fat.entries.push_back(e);
    e.quantize_on_wire = true;
    slim.entries.push_back(e);
  }
  EXPECT_LT(encode(slim).size() * 2, encode(fat).size());
}

TEST(WireQuantization, ScenarioWithQuantizationWorks) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 15 * kSecond;
  cfg.peer.quantize_wire_features = true;
  cfg.pipeline = make_full_system_config();
  const ExperimentMetrics quantized = run_scenario(cfg);
  cfg.peer.quantize_wire_features = false;
  const ExperimentMetrics plain = run_scenario(cfg);
  // Same order of reuse; quantization must not break collaboration.
  EXPECT_GT(quantized.reuse_ratio(), plain.reuse_ratio() - 0.1);
  EXPECT_GT(quantized.accuracy(), plain.accuracy() - 0.05);
}

}  // namespace
}  // namespace apx

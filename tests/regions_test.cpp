// Region-level partial-result reuse (DESIGN.md §11): the activation
// cache's validity/staleness contract, the block keyframe tracker's drift
// protection, and the regions rung end to end — accuracy parity with the
// same ladder minus regions, metrics presence/absence, byte-identical
// same-seed exports, and staged-extractor gating.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/dnn/activation_cache.hpp"
#include "src/features/minicnn.hpp"
#include "src/sim/runner.hpp"
#include "src/video/locality.hpp"

namespace apx {
namespace {

// ---------------------------------------------------------- ActivationCache

ActivationCache::Params cache_params(int grid, SimDuration ttl = 2 * kSecond) {
  ActivationCache::Params p;
  p.grid = grid;
  p.ttl = ttl;
  return p;
}

MiniCnn::Tensor stage1_tensor(float fill = 0.0f) {
  return MiniCnn::Tensor(MiniCnn::plan().stage1.size(), fill);
}

MiniCnn::Tensor stage2_tensor(float fill = 0.0f) {
  return MiniCnn::Tensor(MiniCnn::plan().stage2.size(), fill);
}

TEST(ActivationCacheTest, LegalGridsDivideEveryStageSide) {
  for (const int grid : {2, 4, 8}) {
    SCOPED_TRACE(grid);
    EXPECT_NO_THROW(ActivationCache(MiniCnn::plan(), cache_params(grid)));
  }
  // A block must cover whole stage-2 pixels (stage-2 side is 8).
  for (const int grid : {0, -1, 3, 5, 16}) {
    SCOPED_TRACE(grid);
    EXPECT_THROW(ActivationCache(MiniCnn::plan(), cache_params(grid)),
                 std::invalid_argument);
  }
}

TEST(ActivationCacheTest, StartsInvalidAndInstallValidates) {
  ActivationCache cache{MiniCnn::plan(), cache_params(4)};
  EXPECT_FALSE(cache.valid());
  EXPECT_EQ(cache.block_count(), 16);
  const std::vector<std::uint8_t> all(16, 1);
  cache.install(stage1_tensor(0.5f), stage2_tensor(0.25f), all, /*now=*/100);
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.stage1()[0], 0.5f);
  EXPECT_EQ(cache.stage2()[0], 0.25f);
  cache.invalidate();
  EXPECT_FALSE(cache.valid());
}

TEST(ActivationCacheTest, FootprintIsFixedByConstruction) {
  const ActivationCache cache{MiniCnn::plan(), cache_params(4)};
  // One stage-1 (16x16x8) + one stage-2 (8x8x16) float tensor, whatever
  // happens later — "bounded" is structural.
  const std::size_t expected =
      (MiniCnn::plan().stage1.size() + MiniCnn::plan().stage2.size()) *
      sizeof(float);
  EXPECT_EQ(cache.bytes(), expected);
}

TEST(ActivationCacheTest, InstallMovesOnlyRecomputedClocks) {
  ActivationCache cache{MiniCnn::plan(), cache_params(2)};
  const std::vector<std::uint8_t> all(4, 1);
  cache.install(stage1_tensor(), stage2_tensor(), all, /*now=*/10);
  for (int b = 0; b < 4; ++b) EXPECT_EQ(cache.installed_at(b), 10);

  std::vector<std::uint8_t> only_two(4, 0);
  only_two[2] = 1;
  cache.install(stage1_tensor(), stage2_tensor(), only_two, /*now=*/50);
  EXPECT_EQ(cache.installed_at(0), 10);  // reused: keeps its frame's time
  EXPECT_EQ(cache.installed_at(1), 10);
  EXPECT_EQ(cache.installed_at(2), 50);  // recomputed: moves forward
  EXPECT_EQ(cache.installed_at(3), 10);
}

TEST(ActivationCacheTest, FirstInstallAfterInvalidateRefreshesEveryClock) {
  ActivationCache cache{MiniCnn::plan(), cache_params(2)};
  const std::vector<std::uint8_t> all(4, 1);
  cache.install(stage1_tensor(), stage2_tensor(), all, /*now=*/10);
  cache.invalidate();
  // Even a "nothing recomputed" mask refreshes everything on the first
  // install after invalidation: the stored tensors are wholly new.
  const std::vector<std::uint8_t> none(4, 0);
  cache.install(stage1_tensor(), stage2_tensor(), none, /*now=*/90);
  for (int b = 0; b < 4; ++b) EXPECT_EQ(cache.installed_at(b), 90);
}

TEST(ActivationCacheTest, ExpireFlagsExactlyTheTtlExceededBlocks) {
  ActivationCache cache{MiniCnn::plan(), cache_params(2, /*ttl=*/50)};
  std::vector<std::uint8_t> expired(4, 9);
  // Invalid cache: no-op mask.
  cache.expire_blocks(/*now=*/1000, expired);
  for (const std::uint8_t v : expired) EXPECT_EQ(v, 0);

  const std::vector<std::uint8_t> all(4, 1);
  cache.install(stage1_tensor(), stage2_tensor(), all, /*now=*/0);
  std::vector<std::uint8_t> refresh(4, 0);
  refresh[1] = 1;
  cache.install(stage1_tensor(), stage2_tensor(), refresh, /*now=*/100);

  cache.expire_blocks(/*now=*/130, expired);
  EXPECT_EQ(expired[0], 1);  // age 130 > 50
  EXPECT_EQ(expired[1], 0);  // age 30
  EXPECT_EQ(expired[2], 1);
  EXPECT_EQ(expired[3], 1);
  // Exactly at the ttl boundary a block is still fresh.
  cache.expire_blocks(/*now=*/150, expired);
  EXPECT_EQ(expired[1], 0);  // age exactly 50
  cache.expire_blocks(/*now=*/151, expired);
  EXPECT_EQ(expired[1], 1);
}

TEST(ActivationCacheTest, ZeroTtlNeverExpires) {
  ActivationCache cache{MiniCnn::plan(), cache_params(2, /*ttl=*/0)};
  const std::vector<std::uint8_t> all(4, 1);
  cache.install(stage1_tensor(), stage2_tensor(), all, /*now=*/0);
  std::vector<std::uint8_t> expired(4, 9);
  cache.expire_blocks(/*now=*/1'000'000'000, expired);
  for (const std::uint8_t v : expired) EXPECT_EQ(v, 0);
}

TEST(ActivationCacheTest, InstallRejectsWrongSizes) {
  ActivationCache cache{MiniCnn::plan(), cache_params(4)};
  const std::vector<std::uint8_t> all(16, 1);
  EXPECT_THROW(
      cache.install(MiniCnn::Tensor(3), stage2_tensor(), all, /*now=*/0),
      std::invalid_argument);
  EXPECT_THROW(
      cache.install(stage1_tensor(), MiniCnn::Tensor(3), all, /*now=*/0),
      std::invalid_argument);
  const std::vector<std::uint8_t> short_mask(3, 1);
  EXPECT_THROW(
      cache.install(stage1_tensor(), stage2_tensor(), short_mask, /*now=*/0),
      std::invalid_argument);
}

TEST(ActivationCacheTest, BlockToPixelMaskExpandsBlocks) {
  const ActivationCache cache{MiniCnn::plan(), cache_params(2)};
  std::vector<std::uint8_t> blocks(4, 0);
  blocks[3] = 1;  // bottom-right block
  std::vector<std::uint8_t> pixels(8 * 8, 9);
  cache.block_to_pixel_mask(blocks, /*side=*/8, pixels);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const bool want = x >= 4 && y >= 4;
      EXPECT_EQ(pixels[static_cast<std::size_t>(y) * 8 + x] != 0, want)
          << "x=" << x << " y=" << y;
    }
  }
}

// ------------------------------------------------------ BlockKeyframeTracker

BlockMatchParams match_params(int grid = 2, int side = 32) {
  BlockMatchParams p;
  p.grid = grid;
  p.side = side;
  return p;
}

/// side x side grayscale image with every pixel of block (bx, by) at
/// `value` and the rest at zero.
Image block_image(int side, int grid, int bx, int by, float value) {
  Image img(side, side, 1);
  const int bw = side / grid;
  for (int y = by * bw; y < (by + 1) * bw; ++y) {
    for (int x = bx * bw; x < (bx + 1) * bw; ++x) img.at(x, y, 0) = value;
  }
  return img;
}

TEST(BlockKeyframeTrackerTest, BadParamsThrow) {
  EXPECT_THROW(BlockKeyframeTracker(match_params(0)), std::invalid_argument);
  EXPECT_THROW(BlockKeyframeTracker(match_params(3, 32)),  // 3 !| 32
               std::invalid_argument);
  EXPECT_THROW(BlockKeyframeTracker(match_params(2, 0)), std::invalid_argument);
  BlockMatchParams negative = match_params();
  negative.diff_threshold = -0.1f;
  EXPECT_THROW((void)BlockKeyframeTracker{negative}, std::invalid_argument);
}

TEST(BlockKeyframeTrackerTest, NoKeyframeMeansEveryBlockChanged) {
  BlockKeyframeTracker tracker{match_params()};
  EXPECT_FALSE(tracker.has_keyframe());
  std::vector<std::uint8_t> changed(4, 0);
  EXPECT_EQ(tracker.classify(Image(32, 32, 1), changed), 4);
  for (const std::uint8_t v : changed) EXPECT_EQ(v, 1);
}

TEST(BlockKeyframeTrackerTest, IdenticalFrameIsUnchangedAfterUpdate) {
  BlockKeyframeTracker tracker{match_params()};
  const Image frame = block_image(32, 2, 0, 0, 0.8f);
  std::vector<std::uint8_t> changed(4);
  tracker.classify(frame, changed);
  tracker.update(changed);
  EXPECT_TRUE(tracker.has_keyframe());
  EXPECT_EQ(tracker.classify(frame, changed), 0);
  for (const std::uint8_t v : changed) EXPECT_EQ(v, 0);
}

TEST(BlockKeyframeTrackerTest, SingleBlockChangeFlagsOnlyThatBlock) {
  BlockKeyframeTracker tracker{match_params()};
  std::vector<std::uint8_t> changed(4);
  tracker.classify(Image(32, 32, 1), changed);
  tracker.update(changed);
  // Top-right block jumps well past the threshold; the rest stay put.
  EXPECT_EQ(tracker.classify(block_image(32, 2, 1, 0, 0.5f), changed), 1);
  EXPECT_EQ(changed[0], 0);
  EXPECT_EQ(changed[1], 1);
  EXPECT_EQ(changed[2], 0);
  EXPECT_EQ(changed[3], 0);
}

TEST(BlockKeyframeTrackerTest, ReusedBlocksDiffAgainstTheirKeyframe) {
  // Drift protection: a reused block keeps being compared against the
  // frame its cached activations came from, so sub-threshold drift
  // accumulates until it trips the threshold instead of sliding unseen.
  BlockMatchParams p = match_params();
  p.diff_threshold = 0.045f;
  BlockKeyframeTracker tracker{p};
  std::vector<std::uint8_t> changed(4);
  tracker.classify(Image(32, 32, 1), changed);
  tracker.update(changed);  // keyframe: all zeros

  // Drift to 0.04: below threshold against the keyframe -> reused.
  EXPECT_EQ(tracker.classify(block_image(32, 2, 0, 0, 0.04f), changed), 0);
  tracker.update(changed);  // nothing refreshed

  // Drift to 0.08: against the *original* keyframe this is over threshold.
  // (Against the previous frame it would be only 0.04 — the unsafe diff.)
  EXPECT_EQ(tracker.classify(block_image(32, 2, 0, 0, 0.08f), changed), 1);
  EXPECT_EQ(changed[0], 1);
}

TEST(BlockKeyframeTrackerTest, UpdateRefreshesOnlyFlaggedBlocks) {
  BlockKeyframeTracker tracker{match_params()};
  std::vector<std::uint8_t> changed(4);
  tracker.classify(Image(32, 32, 1), changed);
  tracker.update(changed);
  const Image moved = block_image(32, 2, 0, 1, 0.6f);
  EXPECT_EQ(tracker.classify(moved, changed), 1);
  tracker.update(changed);
  // The refreshed block now matches `moved`; the others still match zero.
  EXPECT_EQ(tracker.classify(moved, changed), 0);
}

TEST(BlockKeyframeTrackerTest, InvalidateDropsTheKeyframe) {
  BlockKeyframeTracker tracker{match_params()};
  std::vector<std::uint8_t> changed(4);
  tracker.classify(Image(32, 32, 1), changed);
  tracker.update(changed);
  ASSERT_TRUE(tracker.has_keyframe());
  tracker.invalidate();
  EXPECT_FALSE(tracker.has_keyframe());
  EXPECT_EQ(tracker.classify(Image(32, 32, 1), changed), 4);
}

// ------------------------------------------------------------- rung, e2e

ScenarioConfig regions_scenario(std::uint64_t seed) {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 2;
  cfg.duration = 10 * kSecond;
  cfg.scene.num_classes = 8;
  cfg.extractor = ExtractorKind::kCnn;
  cfg.seed = seed;
  return cfg;
}

TEST(RegionsRungTest, AccuracyWithinOnePointOfTheNoRegionsLadder) {
  // The rung only changes *how* features get computed, never their values
  // (bit-identity is proven in features_test/property_test), so end-to-end
  // accuracy must match the regions-free ladder to within noise.
  const std::pair<const char*, const char*> ladders[] = {
      {"imu,temporal,local,dnn", "imu,temporal,regions,local,dnn"},
      {"imu,temporal,local,p2p,dnn", "imu,temporal,regions,local,p2p,dnn"},
  };
  for (const auto& [without, with] : ladders) {
    for (const std::uint64_t seed : {3ull, 17ull}) {
      SCOPED_TRACE(std::string(with) + " seed " + std::to_string(seed));
      ScenarioConfig base = regions_scenario(seed);
      base.pipeline = make_ladder_config(without);
      ScenarioConfig regions = regions_scenario(seed);
      regions.pipeline = make_ladder_config(with);
      const double acc_without = run_scenario(base).accuracy();
      const double acc_with = run_scenario(regions).accuracy();
      EXPECT_NEAR(acc_with, acc_without, 0.01);
    }
  }
}

TEST(RegionsRungTest, ExportsItsCountersOnlyWithTheRung) {
  ScenarioConfig cfg = regions_scenario(5);
  cfg.pipeline = make_ladder_config("imu,temporal,regions,local,dnn");
  ExperimentRunner runner{cfg};
  runner.run();
  const MetricsRegistry& metrics = runner.metrics();
  // Every frame passes the rung: splices + full forwards cover all blocks.
  EXPECT_GT(metrics.counter_value("regions/blocks_recomputed"), 0u);
  EXPECT_GT(metrics.counter_value("regions/cache_bytes"), 0u);
  EXPECT_NE(metrics.find_histogram("regions/splice_depth"), nullptr);
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("regions/blocks_reused"), std::string::npos);
  EXPECT_NE(json.find("pipeline/rung_hit/regions"), std::string::npos);
  EXPECT_NE(json.find("pipeline/rung_us/regions"), std::string::npos);

  // The regions subsystem is all-or-nothing: a regions-free ladder must
  // not leak a single regions key into its export.
  ScenarioConfig bare = regions_scenario(5);
  bare.pipeline = make_ladder_config("imu,temporal,local,dnn");
  ExperimentRunner plain{bare};
  plain.run();
  EXPECT_EQ(plain.metrics().to_json().find("regions/"), std::string::npos);
}

TEST(RegionsRungTest, SameSeedExportsAreByteIdentical) {
  ScenarioConfig cfg = regions_scenario(7);
  cfg.pipeline =
      make_ladder_config("imu,temporal,regions(grid=8,ttl=1s),local,dnn");
  ExperimentRunner a{cfg}, b{cfg};
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().to_json(), b.metrics().to_json());
}

TEST(RegionsRungTest, RequiresAStagedCnnExtractor) {
  // Every other extractor is a monolith the rung cannot splice into; the
  // pipeline must reject the combination loudly at build time.
  ScenarioConfig cfg = regions_scenario(1);
  cfg.extractor = ExtractorKind::kHog;
  cfg.pipeline = make_ladder_config("imu,temporal,regions,local,dnn");
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

TEST(RegionsRungTest, IllegalGridIsRejectedAtBuild) {
  // grid=16 parses (it is a positive integer) but cannot tile the 8x8
  // stage-2 tensor; the ActivationCache constructor catches it.
  ScenarioConfig cfg = regions_scenario(1);
  cfg.pipeline = make_ladder_config("imu,temporal,regions(grid=16),local,dnn");
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace apx

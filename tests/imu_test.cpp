// Unit tests for the IMU substrate: mobility model, trace generation,
// motion-state estimation, and the reuse gate.

#include <gtest/gtest.h>

#include <cmath>

#include "src/imu/gate.hpp"
#include "src/imu/motion_estimator.hpp"
#include "src/imu/trace.hpp"
#include "src/util/stats.hpp"

namespace apx {
namespace {

// ------------------------------------------------------------- Mobility

TEST(Mobility, EmptySegmentsThrow) {
  EXPECT_THROW(MobilityModel({}), std::invalid_argument);
}

TEST(Mobility, NonPositiveDurationThrows) {
  EXPECT_THROW(MobilityModel({{MotionState::kMinor, 0}}),
               std::invalid_argument);
}

TEST(Mobility, StateAtFollowsSegments) {
  const MobilityModel m{{{MotionState::kStationary, 10},
                         {MotionState::kMajor, 10},
                         {MotionState::kMinor, 10}}};
  EXPECT_EQ(m.state_at(0), MotionState::kStationary);
  EXPECT_EQ(m.state_at(9), MotionState::kStationary);
  EXPECT_EQ(m.state_at(10), MotionState::kMajor);
  EXPECT_EQ(m.state_at(19), MotionState::kMajor);
  EXPECT_EQ(m.state_at(20), MotionState::kMinor);
}

TEST(Mobility, ClampsPastEnd) {
  const MobilityModel m{{{MotionState::kMajor, 10}}};
  EXPECT_EQ(m.state_at(1000), MotionState::kMajor);
  EXPECT_EQ(m.state_at(-5), MotionState::kMajor);
}

TEST(Mobility, IntensityMonotoneInState) {
  EXPECT_LT(MobilityModel::intensity_of(MotionState::kStationary),
            MobilityModel::intensity_of(MotionState::kMinor));
  EXPECT_LT(MobilityModel::intensity_of(MotionState::kMinor),
            MobilityModel::intensity_of(MotionState::kMajor));
}

TEST(Mobility, RandomCoversRequestedDuration) {
  Rng rng{3};
  const MobilityModel m =
      MobilityModel::random(rng, 30 * kSecond, 3 * kSecond);
  EXPECT_GE(m.total_duration(), 30 * kSecond - kSecond);
  EXPECT_LE(m.total_duration(), 30 * kSecond);
  EXPECT_GE(m.segments().size(), 3u);
}

TEST(Mobility, RandomIsDeterministicPerSeed) {
  Rng a{7}, b{7};
  const MobilityModel ma = MobilityModel::random(a, 20 * kSecond, 2 * kSecond);
  const MobilityModel mb = MobilityModel::random(b, 20 * kSecond, 2 * kSecond);
  ASSERT_EQ(ma.segments().size(), mb.segments().size());
  for (std::size_t i = 0; i < ma.segments().size(); ++i) {
    EXPECT_EQ(ma.segments()[i].state, mb.segments()[i].state);
    EXPECT_EQ(ma.segments()[i].duration, mb.segments()[i].duration);
  }
}

TEST(Mobility, WeightsShiftStateMix) {
  Rng a{11}, b{11};
  const MobilityModel still = MobilityModel::random(
      a, 120 * kSecond, 2 * kSecond, 1.0, 0.0, 0.0);
  for (const auto& seg : still.segments()) {
    EXPECT_EQ(seg.state, MotionState::kStationary);
  }
  const MobilityModel moving = MobilityModel::random(
      b, 120 * kSecond, 2 * kSecond, 0.0, 0.0, 1.0);
  for (const auto& seg : moving.segments()) {
    EXPECT_EQ(seg.state, MotionState::kMajor);
  }
}

TEST(Mobility, ToStringNames) {
  EXPECT_STREQ(to_string(MotionState::kStationary), "stationary");
  EXPECT_STREQ(to_string(MotionState::kMinor), "minor");
  EXPECT_STREQ(to_string(MotionState::kMajor), "major");
}

// ------------------------------------------------------------- Trace

TEST(ImuTrace, BadRateThrows) {
  const MobilityModel m = MobilityModel::constant(MotionState::kMinor, kSecond);
  EXPECT_THROW(ImuTraceGenerator(m, 0.0, 1), std::invalid_argument);
}

TEST(ImuTrace, SampleRateRespected) {
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 10 * kSecond);
  ImuTraceGenerator gen{m, 100.0, 1};
  const auto samples = gen.samples_between(0, kSecond);
  EXPECT_EQ(samples.size(), 100u);
  EXPECT_EQ(samples.front().t, 0);
  EXPECT_EQ(samples[1].t - samples[0].t, gen.sample_period());
}

TEST(ImuTrace, WindowsAreContiguous) {
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 10 * kSecond);
  ImuTraceGenerator gen{m, 50.0, 1};
  const auto first = gen.samples_between(0, kSecond);
  const auto second = gen.samples_between(kSecond, 2 * kSecond);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(second.front().t - first.back().t, gen.sample_period());
}

TEST(ImuTrace, StationaryHoversAroundGravity) {
  const MobilityModel m =
      MobilityModel::constant(MotionState::kStationary, 10 * kSecond);
  ImuTraceGenerator gen{m, 100.0, 2};
  for (const auto& s : gen.samples_between(0, 5 * kSecond)) {
    const float mag = std::sqrt(s.accel[0] * s.accel[0] +
                                s.accel[1] * s.accel[1] +
                                s.accel[2] * s.accel[2]);
    EXPECT_NEAR(mag, 9.81f, 0.5f);
  }
}

TEST(ImuTrace, MajorMotionHasHigherVariance) {
  auto variance_for = [](MotionState state) {
    const MobilityModel m = MobilityModel::constant(state, 10 * kSecond);
    ImuTraceGenerator gen{m, 100.0, 3};
    OnlineStats stats;
    for (const auto& s : gen.samples_between(0, 5 * kSecond)) {
      stats.add(s.accel[0]);
    }
    return stats.variance();
  };
  EXPECT_LT(variance_for(MotionState::kStationary),
            variance_for(MotionState::kMinor));
  EXPECT_LT(variance_for(MotionState::kMinor),
            variance_for(MotionState::kMajor));
}

// ------------------------------------------------------------- Estimator

class EstimatorRoundTrip : public ::testing::TestWithParam<MotionState> {};

TEST_P(EstimatorRoundTrip, RecoversGeneratedState) {
  // Closing the loop: states synthesized by the trace generator must be
  // recovered by the estimator with default thresholds.
  const MotionState truth = GetParam();
  const MobilityModel m = MobilityModel::constant(truth, 10 * kSecond);
  ImuTraceGenerator gen{m, 100.0, 5};
  MotionEstimator est;
  est.add_all(gen.samples_between(0, kSecond));
  EXPECT_EQ(est.estimate(), truth);
}

INSTANTIATE_TEST_SUITE_P(AllStates, EstimatorRoundTrip,
                         ::testing::Values(MotionState::kStationary,
                                           MotionState::kMinor,
                                           MotionState::kMajor),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Estimator, EmptyWindowIsConservative) {
  MotionEstimator est;
  EXPECT_EQ(est.estimate(), MotionState::kMajor);
}

TEST(Estimator, TracksRegimeChange) {
  MotionEstimatorParams params;
  params.window = 16;
  MotionEstimator est{params};
  const MobilityModel still =
      MobilityModel::constant(MotionState::kStationary, kSecond);
  ImuTraceGenerator gen_still{still, 100.0, 7};
  est.add_all(gen_still.samples_between(0, kSecond));
  EXPECT_EQ(est.estimate(), MotionState::kStationary);

  const MobilityModel moving =
      MobilityModel::constant(MotionState::kMajor, kSecond);
  ImuTraceGenerator gen_move{moving, 100.0, 8};
  est.add_all(gen_move.samples_between(0, kSecond));
  EXPECT_EQ(est.estimate(), MotionState::kMajor);
}

TEST(Estimator, RmsReflectsSignalEnergy) {
  MotionEstimator est;
  ImuSample quiet;
  quiet.accel = {0.0f, 0.0f, 9.81f};
  est.add(quiet);
  EXPECT_NEAR(est.accel_rms(), 0.0f, 1e-5f);
  EXPECT_NEAR(est.gyro_rms(), 0.0f, 1e-5f);
  ImuSample loud;
  loud.accel = {3.0f, 0.0f, 9.81f};
  loud.gyro = {1.0f, 0.0f, 0.0f};
  est.add(loud);
  // RMS pools the quiet sample too: |a| deviation ~0.45 over two samples.
  EXPECT_GT(est.accel_rms(), 0.25f);
  EXPECT_GT(est.gyro_rms(), 0.5f);
}

TEST(Estimator, WindowFillTracksSamples) {
  MotionEstimatorParams params;
  params.window = 4;
  MotionEstimator est{params};
  EXPECT_EQ(est.window_fill(), 0u);
  for (int i = 0; i < 10; ++i) est.add(ImuSample{});
  EXPECT_EQ(est.window_fill(), 4u);
}

// ------------------------------------------------------------- Gate

TEST(Gate, StationaryRelaxesAndAllows) {
  const MotionGate gate;
  const GateDecision d = gate.decide(MotionState::kStationary);
  EXPECT_TRUE(d.allow_temporal_reuse);
  EXPECT_GT(d.threshold_scale, 1.0f);
}

TEST(Gate, MinorIsNeutral) {
  const MotionGate gate;
  const GateDecision d = gate.decide(MotionState::kMinor);
  EXPECT_TRUE(d.allow_temporal_reuse);
  EXPECT_FLOAT_EQ(d.threshold_scale, 1.0f);
}

TEST(Gate, MajorForbidsTemporalAndTightens) {
  const MotionGate gate;
  const GateDecision d = gate.decide(MotionState::kMajor);
  EXPECT_FALSE(d.allow_temporal_reuse);
  EXPECT_LT(d.threshold_scale, 1.0f);
}

TEST(Gate, CustomScalesRespected) {
  MotionGateParams params;
  params.stationary_scale = 2.0f;
  const MotionGate gate{params};
  EXPECT_FLOAT_EQ(gate.decide(MotionState::kStationary).threshold_scale,
                  2.0f);
}

}  // namespace
}  // namespace apx

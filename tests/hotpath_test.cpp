// Hot-path overhaul guards (see ISSUE 1 / bench_m2_hotpath):
//  - unrolled/batched vecmath kernels match the scalar references within
//    1e-4 across random dims, including non-multiple-of-8 tails;
//  - steady-state LSH queries via query_into perform zero heap allocations
//    (verified with a counting global allocator);
//  - the parallel simulation runner produces metrics bit-identical to the
//    sequential runner for the same seed;
//  - ThreadPool/parallel_for cover ranges exactly once, and pool-backed
//    MiniCnn embedding matches the serial path bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "src/ann/lsh.hpp"
#include "src/core/pipeline.hpp"
#include "src/features/minicnn.hpp"
#include "src/obs/metrics.hpp"
#include "src/image/scene.hpp"
#include "src/sim/runner.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vecmath.hpp"

// ------------------------------------------------- counting allocator
//
// Replaces the global allocation functions for this test binary so the
// zero-allocation claim is checked against reality, not code review.

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apx {
namespace {

FeatureVec random_vec(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// ------------------------------------------------------- kernel parity

TEST(Kernels, MatchScalarReferenceAcrossRandomDims) {
  Rng rng{101};
  for (int trial = 0; trial < 200; ++trial) {
    // Dims deliberately straddle the unroll width: 1..130 hits every tail
    // length mod 8 many times over.
    const std::size_t dim = 1 + rng.uniform_u64(130);
    const FeatureVec a = random_vec(rng, dim);
    const FeatureVec b = random_vec(rng, dim);
    const float ref_dot = ref::dot(a, b);
    const float ref_l2 = ref::l2_sq(a, b);
    const float ref_cos = ref::cosine_distance(a, b);
    const auto tol = [](float r) { return 1e-4f * std::max(1.0f, std::fabs(r)); };
    EXPECT_NEAR(dot(a, b), ref_dot, tol(ref_dot)) << "dim=" << dim;
    EXPECT_NEAR(l2_sq(a, b), ref_l2, tol(ref_l2)) << "dim=" << dim;
    EXPECT_NEAR(cosine_distance(a, b), ref_cos, 1e-4f) << "dim=" << dim;
  }
}

TEST(Kernels, BatchedVariantsMatchPerRowReference) {
  Rng rng{202};
  for (const std::size_t dim : {1u, 7u, 8u, 17u, 64u, 65u}) {
    const std::size_t n = 33;
    const FeatureVec q = random_vec(rng, dim);
    std::vector<float> rows(n * dim);
    for (float& x : rows) x = static_cast<float>(rng.normal());
    std::vector<float> out_dot(n), out_l2(n);
    dot_batch(q, rows.data(), n, out_dot.data());
    l2_sq_batch(q, rows.data(), n, out_l2.data());
    for (std::size_t i = 0; i < n; ++i) {
      const std::span<const float> row{rows.data() + i * dim, dim};
      EXPECT_NEAR(out_dot[i], ref::dot(q, row),
                  1e-4f * std::max(1.0f, std::fabs(ref::dot(q, row))));
      EXPECT_NEAR(out_l2[i], ref::l2_sq(q, row),
                  1e-4f * std::max(1.0f, std::fabs(ref::l2_sq(q, row))));
    }
    // Gather variant picks rows by slot in arbitrary order.
    std::vector<std::uint32_t> slots;
    for (std::size_t i = 0; i < n; i += 3) {
      slots.push_back(static_cast<std::uint32_t>(n - 1 - i));
    }
    std::vector<float> out_gather(slots.size());
    l2_sq_gather(q, rows.data(), slots, out_gather.data());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_FLOAT_EQ(out_gather[i], out_l2[slots[i]]);
    }
  }
}

// -------------------------------------------------- zero-alloc queries

TEST(LshHotPath, SteadyStateQueryPerformsZeroAllocations) {
  LshParams params;
  params.num_tables = 4;
  params.hashes_per_table = 8;
  params.bucket_width = 0.5f;
  params.probes_per_table = 2;  // exercise the multiprobe path too
  PStableLshIndex index{64, params};

  Rng rng{31};
  for (VecId id = 0; id < 2000; ++id) {
    FeatureVec v = random_vec(rng, 64);
    normalize(v);
    index.insert(id, v);
  }
  std::vector<FeatureVec> queries;
  for (int i = 0; i < 64; ++i) {
    FeatureVec q = random_vec(rng, 64);
    normalize(q);
    queries.push_back(std::move(q));
  }

  // Warm-up pass: grows the scratch and the reused output buffer to their
  // high-water marks for exactly this workload.
  std::vector<Neighbor> out;
  for (const auto& q : queries) index.query_into(q, 8, out);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (const auto& q : queries) index.query_into(q, 8, out);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(LshHotPath, QuantizedSteadyStateQueryPerformsZeroAllocations) {
  // The SQ8 scan adds three scratch stages (ADC rank order, survivors,
  // exact distances); like the float path, they must reach a high-water
  // mark during warm-up and never allocate again.
  LshParams params;
  params.num_tables = 4;
  params.hashes_per_table = 8;
  params.bucket_width = 0.5f;
  params.probes_per_table = 2;
  params.quantize.enabled = true;
  params.quantize.rerank_k = 16;
  PStableLshIndex index{64, params};

  Rng rng{37};
  for (VecId id = 0; id < 2000; ++id) {
    FeatureVec v = random_vec(rng, 64);
    normalize(v);
    index.insert(id, v);
  }
  std::vector<FeatureVec> queries;
  for (int i = 0; i < 64; ++i) {
    FeatureVec q = random_vec(rng, 64);
    normalize(q);
    queries.push_back(std::move(q));
  }

  std::vector<Neighbor> out;
  for (const auto& q : queries) index.query_into(q, 8, out);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (const auto& q : queries) index.query_into(q, 8, out);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(CacheHotPath, SteadyStateTracedLookupPerformsZeroAllocations) {
  // The full traced lookup path — LSH query, H-kNN vote, hit/miss counters,
  // metrics recording, trace annotation — must be allocation-free once warm.
  ApproxCacheConfig cfg;
  cfg.capacity = 4096;
  cfg.index = IndexKind::kLsh;
  cfg.alsh.lsh.num_tables = 4;
  cfg.alsh.lsh.hashes_per_table = 8;
  cfg.alsh.lsh.bucket_width = 0.5f;
  cfg.alsh.lsh.probes_per_table = 2;
  cfg.hknn.max_distance = 0.4f;
  ApproxCache cache{64, cfg, make_lru_policy()};
  MetricsRegistry registry;
  cache.attach_metrics(registry);

  Rng rng{47};
  std::vector<FeatureVec> stored;
  for (int i = 0; i < 1000; ++i) {
    FeatureVec v = random_vec(rng, 64);
    normalize(v);
    cache.insert(v, static_cast<Label>(i % 16), 0.9f, i);
    stored.push_back(std::move(v));
  }
  // Perturbed stored vectors (hits) interleaved with fresh random ones
  // (misses), so both outcome paths reach steady state during warm-up.
  std::vector<FeatureVec> queries;
  for (std::size_t i = 0; i < 32; ++i) {
    FeatureVec q = stored[i * 7];
    q[0] += 0.01f;
    normalize(q);
    queries.push_back(std::move(q));
    FeatureVec r = random_vec(rng, 64);
    normalize(r);
    queries.push_back(std::move(r));
  }

  FrameTrace trace;
  auto run_all = [&](SimTime base) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const SimTime now = base + static_cast<SimTime>(i);
      trace.reset(now);
      trace.begin_span(Rung::kLocalCache, now);
      (void)cache.lookup({.features = queries[i],
                          .now = now,
                          .threshold_scale = 1.0f,
                          .trace = &trace});
      trace.end_span(RungOutcome::kMiss, now);
    }
  };
  run_all(2000);  // warm-up: scratch buffers and counter nodes get created

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  run_all(3000);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  // Both paths actually ran.
  EXPECT_GT(cache.counters().get("hit"), 0u);
  EXPECT_GT(cache.counters().get("miss"), 0u);
  const auto* hist = registry.find_histogram("cache/lookup_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2 * queries.size());
}

TEST(LshHotPath, QueryIntoMatchesQuery) {
  LshParams params;
  params.probes_per_table = 1;
  PStableLshIndex index{16, params};
  Rng rng{77};
  for (VecId id = 0; id < 500; ++id) index.insert(id, random_vec(rng, 16));
  std::vector<Neighbor> out;
  for (int i = 0; i < 50; ++i) {
    const FeatureVec q = random_vec(rng, 16);
    const auto a = index.query(q, 5);
    index.query_into(q, 5, out);
    ASSERT_EQ(a.size(), out.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, out[j].id);
      EXPECT_FLOAT_EQ(a[j].distance, out[j].distance);
    }
  }
}

// ------------------------------------------------------- thread pool

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{3};
  std::vector<int> hits(10'000, 0);
  pool.parallel_for(0, hits.size(), 64, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, InlinePoolRunsSequentially) {
  ThreadPool pool{0};
  int calls = 0;
  pool.submit([&calls] { ++calls; });
  pool.parallel_for(0, 100, 10, [&calls](std::size_t lo, std::size_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  pool.wait_idle();
  EXPECT_EQ(calls, 101);
}

TEST(ThreadPoolTest, SubmitAndWaitIdleDrains) {
  ThreadPool pool{2};
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

// -------------------------------------------------- MiniCnn parallelism

TEST(MiniCnnParallel, PoolBackedEmbedIsBitIdentical) {
  SceneGenerator::Config scfg;
  scfg.num_classes = 4;
  SceneGenerator scenes{scfg};
  MiniCnn cnn{64, 7};
  ThreadPool pool{3};
  for (int cls = 0; cls < 4; ++cls) {
    const Image img = scenes.render(cls, ViewParams{});
    const FeatureVec serial = cnn.embed(img);
    const FeatureVec parallel = cnn.embed(img, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "lane " << i;
    }
  }
}

TEST(MiniCnnParallel, EmbedBatchMatchesPerImageEmbeds) {
  SceneGenerator::Config scfg;
  scfg.num_classes = 6;
  SceneGenerator scenes{scfg};
  MiniCnn cnn{32, 9};
  ThreadPool pool{3};
  std::vector<Image> imgs;
  for (int cls = 0; cls < 6; ++cls) imgs.push_back(scenes.render(cls, ViewParams{}));
  const auto batch = cnn.embed_batch(imgs, &pool);
  ASSERT_EQ(batch.size(), imgs.size());
  for (std::size_t i = 0; i < imgs.size(); ++i) {
    const FeatureVec one = cnn.embed(imgs[i]);
    for (std::size_t j = 0; j < one.size(); ++j) {
      EXPECT_EQ(batch[i][j], one[j]);
    }
  }
}

TEST(MiniCnnHotPath, WarmEmbedIntoPerformsZeroAllocations) {
  // The staged forward pass reuses the caller's ForwardState; once warmed,
  // embedding a stream of native-size frames must never touch the heap
  // (the same discipline as the LSH query path).
  SceneGenerator::Config scfg;
  scfg.num_classes = 4;
  scfg.image_size = MiniCnn::kInputSide;  // no resize: the pure hot path
  SceneGenerator scenes{scfg};
  MiniCnn cnn{64, 7};
  std::vector<Image> imgs;
  for (int cls = 0; cls < 4; ++cls) {
    imgs.push_back(scenes.render(cls, ViewParams{}));
  }

  MiniCnn::ForwardState state;
  FeatureVec out;
  for (const Image& img : imgs) cnn.embed_into(img, state, out);

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (const Image& img : imgs) cnn.embed_into(img, state, out);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(MiniCnnHotPath, EmbedBatchAllocatesOnlyResultsPlusConstantScratch) {
  // The serial batch path shares one ForwardState across the whole batch:
  // the only per-image allocation left is the returned FeatureVec itself.
  // (The old path built every intermediate tensor per image.)
  SceneGenerator::Config scfg;
  scfg.num_classes = 8;
  scfg.image_size = MiniCnn::kInputSide;
  SceneGenerator scenes{scfg};
  MiniCnn cnn{64, 7};
  const auto count_allocs = [&](std::size_t n) {
    std::vector<Image> imgs;
    for (std::size_t i = 0; i < n; ++i) {
      imgs.push_back(scenes.render(static_cast<int>(i % 8), ViewParams{}));
    }
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    const auto batch = cnn.embed_batch(imgs);
    const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(batch.size(), n);
    return after - before;
  };
  // Allocations grow by exactly one per extra image (its result vector),
  // not by the forward pass's tensor count.
  const std::size_t small = count_allocs(8);
  const std::size_t large = count_allocs(32);
  EXPECT_LE(small, 8u + 12u);
  EXPECT_LE(large, 32u + 12u);
  EXPECT_EQ(large - small, 24u);
}

// -------------------------------------- parallel runner determinism

void expect_metrics_identical(const ExperimentMetrics& a,
                              const ExperimentMetrics& b) {
  EXPECT_EQ(a.frames(), b.frames());
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_DOUBLE_EQ(a.accuracy(), b.accuracy());
  EXPECT_DOUBLE_EQ(a.mean_latency_ms(), b.mean_latency_ms());
  EXPECT_DOUBLE_EQ(a.latency_quantile_ms(0.5), b.latency_quantile_ms(0.5));
  EXPECT_DOUBLE_EQ(a.latency_quantile_ms(0.99), b.latency_quantile_ms(0.99));
  EXPECT_DOUBLE_EQ(a.mean_total_energy_mj(), b.mean_total_energy_mj());
  for (const auto& [key, count] : a.sources().items()) {
    EXPECT_EQ(b.sources().get(key), count) << key;
  }
  for (const auto& [key, count] : b.sources().items()) {
    EXPECT_EQ(a.sources().get(key), count) << key;
  }
}

TEST(ParallelRunner, BitIdenticalToSequentialForSameSeed) {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 4;
  cfg.duration = 8 * kSecond;
  cfg.seed = 1234;
  cfg.pipeline = make_approx_video_config();  // no P2P: devices independent
  ASSERT_FALSE(cfg.pipeline.enable_p2p);

  cfg.num_threads = 1;
  ExperimentRunner sequential{cfg};
  const ExperimentMetrics seq = sequential.run();

  cfg.num_threads = 4;
  ExperimentRunner parallel{cfg};
  const ExperimentMetrics par = parallel.run();

  expect_metrics_identical(seq, par);
  // Per-device metrics must line up too (same device order).
  ASSERT_EQ(sequential.device_metrics().size(), parallel.device_metrics().size());
  for (std::size_t d = 0; d < sequential.device_metrics().size(); ++d) {
    expect_metrics_identical(sequential.device_metrics()[d],
                             parallel.device_metrics()[d]);
  }
  // And the cache counters (insert/hit/miss/evict) must agree exactly.
  const Counter seq_counters = sequential.cache_counters();
  const Counter par_counters = parallel.cache_counters();
  for (const auto& [key, count] : seq_counters.items()) {
    EXPECT_EQ(par_counters.get(key), count) << key;
  }
}

TEST(ParallelRunner, P2pScenarioFallsBackToSequentialAndStaysDeterministic) {
  // Cross-device coupling (P2P) cannot shard; num_threads must be a no-op.
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 3;
  cfg.duration = 6 * kSecond;
  cfg.seed = 77;
  ASSERT_TRUE(cfg.pipeline.enable_p2p);

  cfg.num_threads = 1;
  const ExperimentMetrics seq = run_scenario(cfg);
  cfg.num_threads = 4;
  const ExperimentMetrics par = run_scenario(cfg);
  expect_metrics_identical(seq, par);
}

}  // namespace
}  // namespace apx

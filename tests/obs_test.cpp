// Tests for the observability subsystem: histogram bucketing and merge
// semantics, deterministic JSON export across runner thread counts, and the
// per-frame trace emitted by an instrumented pipeline.

#include <gtest/gtest.h>

#include <array>
#include <optional>

#include "src/core/pipeline.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/obs/frame_trace.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

// ------------------------------------------------------------- histograms

TEST(Metrics, HistogramBucketsFollowLeConvention) {
  MetricsRegistry reg;
  const std::array<double, 3> bounds{1.0, 10.0, 100.0};
  const auto h = reg.histogram("h", bounds);
  reg.record(h, 0.5);    // <= 1       -> bucket 0
  reg.record(h, 1.0);    // == bound   -> bucket 0 (le convention)
  reg.record(h, 5.0);    // <= 10      -> bucket 1
  reg.record(h, 100.0);  // == last    -> bucket 2
  reg.record(h, 1e6);    // overflow   -> bucket 3
  const auto* hist = reg.find_histogram("h");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->buckets.size(), 4u);
  EXPECT_EQ(hist->buckets[0], 2u);
  EXPECT_EQ(hist->buckets[1], 1u);
  EXPECT_EQ(hist->buckets[2], 1u);
  EXPECT_EQ(hist->buckets[3], 1u);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 1e6);
}

TEST(Metrics, HistogramQuantileIsClampedAndMonotone) {
  MetricsRegistry reg;
  const std::array<double, 4> bounds{10.0, 20.0, 40.0, 80.0};
  const auto h = reg.histogram("h", bounds);
  for (int i = 0; i < 100; ++i) reg.record(h, 15.0);
  const auto* hist = reg.find_histogram("h");
  ASSERT_NE(hist, nullptr);
  // All mass in one bucket: every quantile collapses to the sample range.
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), 15.0);
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), 15.0);
  EXPECT_DOUBLE_EQ(hist->mean(), 15.0);
}

TEST(Metrics, CounterHandlesAreStablePerName) {
  MetricsRegistry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.counter("x"), a);  // re-registration returns the same slot
  reg.inc(a, 2);
  reg.inc(reg.counter("x"), 3);
  EXPECT_EQ(reg.counter_value("x"), 5u);
  EXPECT_EQ(reg.counter_value("never-registered"), 0u);
}

TEST(Metrics, MergeMatchesSingleRegistryRecording) {
  // Recording split across two registries then merged must equal recording
  // everything into one — the property the parallel runner relies on.
  MetricsRegistry one, a, b;
  const std::array<double, 2> bounds{1.0, 2.0};
  const auto ho = one.histogram("h", bounds);
  const auto ha = a.histogram("h", bounds);
  const auto hb = b.histogram("h", bounds);
  const auto co = one.counter("c");
  const auto ca = a.counter("c");
  for (int i = 0; i < 10; ++i) {
    const double v = 0.3 * i;
    one.record(ho, v);
    if (i < 6) {
      a.record(ha, v);
    } else {
      b.record(hb, v);
    }
  }
  one.inc(co, 7);
  a.inc(ca, 7);
  // "b" never saw counter "c": merge must still line up by name.
  a.merge(b);
  EXPECT_EQ(a.to_json(), one.to_json());
}

TEST(Metrics, JsonExportIsSchemaShapedAndSorted) {
  MetricsRegistry reg;
  reg.inc(reg.counter("z/second"));
  reg.inc(reg.counter("a/first"), 3);
  reg.record(reg.histogram("lat", latency_us_bounds()), 123.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted by name: "a/first" must precede "z/second".
  EXPECT_LT(json.find("a/first"), json.find("z/second"));
}

// ------------------------------------------------- runner export determinism

TEST(Metrics, RunnerExportIsBitIdenticalAcrossThreadCounts) {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 4;
  cfg.duration = 8 * kSecond;
  cfg.seed = 4321;
  cfg.pipeline = make_approx_video_config();  // no P2P: devices independent
  ASSERT_FALSE(cfg.pipeline.enable_p2p);

  cfg.num_threads = 1;
  ExperimentRunner sequential{cfg};
  (void)sequential.run();

  cfg.num_threads = 4;
  ExperimentRunner parallel{cfg};
  (void)parallel.run();

  const std::string seq_json = sequential.metrics().to_json();
  EXPECT_FALSE(seq_json.empty());
  EXPECT_EQ(seq_json, parallel.metrics().to_json());
  // The run actually recorded pipeline activity, not an empty registry.
  EXPECT_GT(sequential.metrics().counter_value(
                source_metric(to_string(ResultSource::kFullInference))),
            0u);
}

// ----------------------------------------------------------- frame traces

constexpr int kClasses = 8;

/// Single-device pipeline harness (mirrors core_test.cpp's).
struct Harness {
  EventSimulator sim;
  SceneGenerator scenes;
  std::unique_ptr<FeatureExtractor> extractor;
  std::unique_ptr<RecognitionModel> model;
  std::unique_ptr<ApproxCache> cache;
  std::unique_ptr<ReusePipeline> pipeline;
  MetricsRegistry registry;
  PipelineConfig config;

  explicit Harness(PipelineConfig cfg)
      : scenes([] {
          SceneGenerator::Config sc;
          sc.num_classes = kClasses;
          sc.image_size = 24;
          sc.seed = 7;
          return sc;
        }()),
        extractor(make_downsample_extractor(8)),
        config(cfg) {
    ModelProfile profile = mobilenet_v2_profile();
    profile.top1_accuracy = 1.0;
    model = make_oracle_model(profile, kClasses);
    cfg.cache.index = IndexKind::kExact;
    cache = std::make_unique<ApproxCache>(extractor->dim(), cfg.cache,
                                          make_lru_policy());
    cache->attach_metrics(registry);
    pipeline = std::make_unique<ReusePipeline>(sim, cfg, *extractor, *model,
                                               cache.get(), nullptr, nullptr,
                                               /*seed=*/11);
    pipeline->attach_metrics(registry);
  }

  Frame frame(int class_id) {
    Frame f;
    f.t = sim.now();
    f.true_label = class_id;
    f.image = scenes.render(class_id, ViewParams{});
    return f;
  }

  RecognitionResult run_one(const Frame& f,
                            MotionState motion = MotionState::kMinor) {
    std::optional<RecognitionResult> out;
    EXPECT_TRUE(pipeline->process(
        f, motion, [&](const RecognitionResult& r) { out = r; }));
    while (!out.has_value() && sim.step()) {
    }
    EXPECT_TRUE(out.has_value());
    return out.value_or(RecognitionResult{});
  }
};

PipelineConfig approx_base() {
  PipelineConfig cfg = make_approx_local_config();
  cfg.cache.hknn.max_distance = 0.3f;
  return cfg;
}

Rung answering_rung(ResultSource source) {
  switch (source) {
    case ResultSource::kImuFastPath: return Rung::kImuGate;
    case ResultSource::kTemporalReuse: return Rung::kTemporal;
    case ResultSource::kLocalCacheHit: return Rung::kLocalCache;
    case ResultSource::kPeerCacheHit: return Rung::kP2p;
    case ResultSource::kFullInference: return Rung::kDnn;
    case ResultSource::kWarmCacheHit: return Rung::kWarm;
  }
  return Rung::kDnn;
}

/// The trace invariant: spans closed, in ladder order, every rung before
/// the answering one a miss, and the last span a hit on the rung implied by
/// the frame's ResultSource.
void expect_trace_matches(const FrameTrace& trace,
                          const RecognitionResult& result) {
  ASSERT_GT(trace.size(), 0u);
  ASSERT_FALSE(trace.has_open_span());
  EXPECT_EQ(trace.frame_time(), result.frame_time);
  const auto spans = trace.spans();
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_LT(static_cast<int>(spans[i].rung),
              static_cast<int>(spans[i + 1].rung))
        << "ladder order violated at span " << i;
    EXPECT_EQ(spans[i].outcome, RungOutcome::kMiss)
        << "non-final span " << i << " must be a miss";
    EXPECT_LE(spans[i].start, spans[i].end);
  }
  const TraceSpan& last = spans.back();
  EXPECT_EQ(last.rung, answering_rung(result.source));
  EXPECT_EQ(last.outcome, RungOutcome::kHit);
}

TEST(FrameTraceTest, ColdCacheFrameEndsAtDnn) {
  Harness h{approx_base()};
  const RecognitionResult r = h.run_one(h.frame(3));
  ASSERT_EQ(r.source, ResultSource::kFullInference);
  expect_trace_matches(h.pipeline->last_trace(), r);
  // The local-cache rung was visited (and missed) on the way down.
  bool saw_cache_miss = false;
  for (const TraceSpan& s : h.pipeline->last_trace().spans()) {
    if (s.rung == Rung::kLocalCache) {
      saw_cache_miss = (s.outcome == RungOutcome::kMiss);
    }
  }
  EXPECT_TRUE(saw_cache_miss);
}

TEST(FrameTraceTest, WarmCacheFrameEndsAtLocalCacheWithAnnotations) {
  Harness h{approx_base()};
  (void)h.run_one(h.frame(3), MotionState::kMajor);  // cold: DNN + insert
  // Major motion keeps the temporal keyframe invalid, forcing the cache.
  const RecognitionResult r = h.run_one(h.frame(3), MotionState::kMajor);
  ASSERT_EQ(r.source, ResultSource::kLocalCacheHit);
  const FrameTrace& trace = h.pipeline->last_trace();
  expect_trace_matches(trace, r);
  const TraceSpan& last = trace.spans().back();
  EXPECT_GT(last.candidates, 0u);         // the lookup annotated its span
  EXPECT_GE(last.nearest_distance, 0.0f);
}

TEST(FrameTraceTest, RegistryCountsAgreeWithSources) {
  Harness h{approx_base()};
  Counter sources;
  for (int i = 0; i < 20; ++i) {
    const RecognitionResult r = h.run_one(h.frame(i % 4));
    expect_trace_matches(h.pipeline->last_trace(), r);
    sources.inc(to_string(r.source));
  }
  // Per-source counters in the registry mirror the pipeline's Counter, and
  // each source's count shows up as hits on its answering rung.
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kResultSourceCount; ++s) {
    const auto source = static_cast<ResultSource>(s);
    const std::uint64_t n =
        h.registry.counter_value(source_metric(to_string(source)));
    EXPECT_EQ(n, sources.get(to_string(source))) << to_string(source);
    EXPECT_GE(h.registry.counter_value(
                  rung_outcome_metric(answering_rung(source), RungOutcome::kHit)),
              n)
        << to_string(source);
    total += n;
  }
  EXPECT_EQ(total, 20u);
  // Rung latency histograms saw every local-cache visit.
  const auto* cache_hist =
      h.registry.find_histogram(rung_latency_metric(Rung::kLocalCache));
  ASSERT_NE(cache_hist, nullptr);
  EXPECT_GT(cache_hist->count, 0u);
  // And the per-rung human summary renders non-trivially.
  EXPECT_NE(per_rung_summary(h.registry).find("local-cache"),
            std::string::npos);
}

TEST(FrameTraceTest, TraceResetsPerFrame) {
  Harness h{approx_base()};
  (void)h.run_one(h.frame(1));
  const std::size_t first = h.pipeline->last_trace().size();
  (void)h.run_one(h.frame(2), MotionState::kMajor);
  // A fresh frame starts a fresh trace, not an append.
  EXPECT_LE(h.pipeline->last_trace().size(), first + 1);
  EXPECT_FALSE(h.pipeline->last_trace().has_open_span());
}

}  // namespace
}  // namespace apx

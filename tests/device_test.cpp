// Unit tests for the device power/battery model.

#include <gtest/gtest.h>

#include "src/device/battery.hpp"

namespace apx {
namespace {

TEST(Battery, StartsFull) {
  const Battery battery{BatteryParams{}};
  EXPECT_DOUBLE_EQ(battery.fraction(), 1.0);
  EXPECT_FALSE(battery.empty());
}

TEST(Battery, CapacityMatchesElectrochemistry) {
  // 3000 mAh at 3.85 V = 3 Ah * 3600 s * 3.85 V = 41.58 kJ = 41.58e6 mJ.
  BatteryParams params;
  params.capacity_mah = 3000.0;
  params.voltage_v = 3.85;
  const Battery battery{params};
  EXPECT_NEAR(battery.remaining_mj(), 41.58e6, 1e3);
}

TEST(Battery, DrainByEnergy) {
  BatteryParams params;
  params.capacity_mah = 1000.0;
  params.voltage_v = 1.0;  // 3.6e6 mJ
  Battery battery{params};
  battery.drain_mj(1.8e6);
  EXPECT_NEAR(battery.fraction(), 0.5, 1e-9);
}

TEST(Battery, DrainClampsAtEmpty) {
  BatteryParams params;
  params.capacity_mah = 1.0;
  Battery battery{params};
  battery.drain_mj(1e12);
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
  EXPECT_TRUE(battery.empty());
  battery.drain_mj(1.0);  // draining an empty battery is a no-op
  EXPECT_TRUE(battery.empty());
}

TEST(Battery, NegativeDrainIgnored) {
  Battery battery{BatteryParams{}};
  battery.drain_mj(-100.0);
  EXPECT_DOUBLE_EQ(battery.fraction(), 1.0);
}

TEST(Battery, DrainByPowerOverTime) {
  BatteryParams params;
  params.capacity_mah = 1000.0;
  params.voltage_v = 1.0;  // 3.6e6 mJ
  Battery battery{params};
  // 1 W for 1800 s = 1.8e6 mJ = half the charge.
  battery.drain_power(1000.0, 1800 * kSecond);
  EXPECT_NEAR(battery.fraction(), 0.5, 1e-9);
}

TEST(Lifetime, ZeroRecognitionEnergyGivesBaselineCeiling) {
  BatteryParams params;
  const double ceiling = continuous_recognition_hours(params, 0.0, 10.0);
  // capacity / (idle + camera): 41.58e6 mJ / 1350 mW = 30800 s = 8.56 h.
  EXPECT_NEAR(ceiling, 8.556, 0.01);
}

TEST(Lifetime, MonotoneInPerFrameEnergy) {
  const BatteryParams params;
  const double cheap = continuous_recognition_hours(params, 10.0, 10.0);
  const double dear = continuous_recognition_hours(params, 120.0, 10.0);
  EXPECT_GT(cheap, dear);
  EXPECT_LT(cheap, continuous_recognition_hours(params, 0.0, 10.0));
}

TEST(Lifetime, MonotoneInFrameRate) {
  const BatteryParams params;
  EXPECT_GT(continuous_recognition_hours(params, 60.0, 5.0),
            continuous_recognition_hours(params, 60.0, 30.0));
}

TEST(Lifetime, KnownPoint) {
  // 120 mJ/frame at 10 fps = 1.2 W recognition + 1.35 W rails = 2.55 W;
  // 41.58 kJ / 2.55 W = 16306 s = 4.53 h.
  const BatteryParams params;
  EXPECT_NEAR(continuous_recognition_hours(params, 120.0, 10.0), 4.53, 0.01);
}

}  // namespace
}  // namespace apx

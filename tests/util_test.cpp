// Unit tests for the util substrate: RNG, distributions, statistics,
// serialization codec, vector math, ring buffer, text tables.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/ring_buffer.hpp"
#include "src/util/rng.hpp"
#include "src/util/serialize.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng{11};
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_u64(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{13};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{17};
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{19};
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{23};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityApproximate) {
  Rng rng{29};
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkIsIndependent) {
  Rng a{41};
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng b{41};
  b.next_u64();  // advance past the fork draw
  EXPECT_NE(child.next_u64(), b.next_u64());
}

// ---------------------------------------------------------------- Zipf

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf{4, 0.0};
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(zipf.pmf(r), 0.25, 1e-12);
}

TEST(ZipfSampler, PmfDecreasesWithRank) {
  ZipfSampler zipf{10, 1.0};
  for (std::size_t r = 1; r < 10; ++r) {
    EXPECT_GT(zipf.pmf(r - 1), zipf.pmf(r));
  }
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf{100, 0.8};
  double total = 0.0;
  for (std::size_t r = 0; r < 100; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, SampleFrequenciesTrackPmf) {
  ZipfSampler zipf{8, 1.2};
  Rng rng{5};
  std::array<int, 8> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)]++;
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(ZipfSampler, SingleItemAlwaysRankZero) {
  ZipfSampler zipf{1, 2.0};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfSampler, PmfOutOfRangeIsZero) {
  ZipfSampler zipf{3, 1.0};
  EXPECT_EQ(zipf.pmf(3), 0.0);
  EXPECT_EQ(zipf.pmf(100), 0.0);
}

// ---------------------------------------------------------------- Stats

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, left, right;
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(1.0, 3.0);
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Samples, QuantileExactRanks) {
  Samples s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

TEST(Samples, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(Samples, QuantileClampsRange) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(Samples, EmptyReturnsZero) {
  Samples s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Samples, MeanMatchesArithmetic) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Samples, SortedOutput) {
  Samples s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_EQ(s.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Samples, AddAfterQuantileInvalidatesCache) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
}

TEST(Counter, BasicCounts) {
  Counter c;
  c.inc("a");
  c.inc("a", 2);
  c.inc("b");
  EXPECT_EQ(c.get("a"), 3u);
  EXPECT_EQ(c.get("b"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(Counter, Fractions) {
  Counter c;
  c.inc("x", 3);
  c.inc("y", 1);
  EXPECT_DOUBLE_EQ(c.fraction("x"), 0.75);
  EXPECT_DOUBLE_EQ(c.fraction("missing"), 0.0);
}

TEST(Counter, EmptyFractionIsZero) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.fraction("x"), 0.0);
}

// ---------------------------------------------------------------- Codec

TEST(Codec, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f32(3.5f);
  w.f64(-2.25);
  Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1u << 20, 1ull << 35, ~0ull};
  Writer w;
  for (std::uint64_t v : values) w.varint(v);
  Reader r{w.bytes()};
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
}

TEST(Codec, VarintSmallValuesAreOneByte) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  Reader r{w.bytes()};
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(Codec, FloatVectorRoundTrip) {
  const std::vector<float> v{1.0f, -2.5f, 0.0f, 1e-20f, 3e20f};
  Writer w;
  w.f32_vec(v);
  Reader r{w.bytes()};
  EXPECT_EQ(r.f32_vec(), v);
}

TEST(Codec, EmptyVectorRoundTrip) {
  Writer w;
  w.f32_vec({});
  Reader r{w.bytes()};
  EXPECT_TRUE(r.f32_vec().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, UnderflowThrows) {
  Writer w;
  w.u16(7);
  Reader r{w.bytes()};
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, TruncatedStringThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes, provides none
  Reader r{w.bytes()};
  EXPECT_THROW(r.str(), CodecError);
}

TEST(Codec, OversizedVectorLengthThrows) {
  Writer w;
  w.varint(1ull << 40);  // absurd element count
  Reader r{w.bytes()};
  EXPECT_THROW(r.f32_vec(), CodecError);
}

TEST(Codec, MalformedVarintThrows) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  Reader r{bad};
  EXPECT_THROW(r.varint(), CodecError);
}

TEST(Codec, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r{w.bytes()};
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

// ---------------------------------------------------------------- Vecmath

TEST(VecMath, DotProduct) {
  const std::vector<float> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(VecMath, L2Distance) {
  const std::vector<float> a{0, 0}, b{3, 4};
  EXPECT_FLOAT_EQ(l2(a, b), 5.0f);
  EXPECT_FLOAT_EQ(l2_sq(a, b), 25.0f);
}

TEST(VecMath, NormalizeMakesUnitNorm) {
  std::vector<float> v{3, 4};
  normalize(v);
  EXPECT_NEAR(norm(v), 1.0f, 1e-6f);
  EXPECT_NEAR(v[0], 0.6f, 1e-6f);
}

TEST(VecMath, NormalizeZeroVectorIsNoop) {
  std::vector<float> v{0, 0, 0};
  normalize(v);
  EXPECT_EQ(v, (std::vector<float>{0, 0, 0}));
}

TEST(VecMath, CosineDistanceIdenticalIsZero) {
  const std::vector<float> a{1, 2, 3};
  EXPECT_NEAR(cosine_distance(a, a), 0.0f, 1e-6f);
}

TEST(VecMath, CosineDistanceOrthogonalIsOne) {
  const std::vector<float> a{1, 0}, b{0, 1};
  EXPECT_NEAR(cosine_distance(a, b), 1.0f, 1e-6f);
}

TEST(VecMath, CosineDistanceZeroVector) {
  const std::vector<float> a{0, 0}, b{1, 1};
  EXPECT_FLOAT_EQ(cosine_distance(a, b), 1.0f);
}

TEST(VecMath, AddAndScaleInPlace) {
  std::vector<float> a{1, 2};
  const std::vector<float> b{3, 4};
  add_in_place(a, b);
  EXPECT_EQ(a, (std::vector<float>{4, 6}));
  scale_in_place(a, 0.5f);
  EXPECT_EQ(a, (std::vector<float>{2, 3}));
}

// ---------------------------------------------------------------- Ring

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> ring{3};
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.front(), 1);
  ring.push(3);
  EXPECT_TRUE(ring.full());
  ring.push(4);  // evicts 1
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.front(), 2);
  EXPECT_EQ(ring.back(), 4);
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[1], 3);
  EXPECT_EQ(ring[2], 4);
}

TEST(RingBuffer, ClearEmpties) {
  RingBuffer<int> ring{2};
  ring.push(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push(7);
  EXPECT_EQ(ring.front(), 7);
}

TEST(RingBuffer, CapacityOne) {
  RingBuffer<int> ring{1};
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.front(), 2);
}

TEST(RingBuffer, LongWrapAround) {
  RingBuffer<int> ring{5};
  for (int i = 0; i < 100; ++i) ring.push(i);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ring[i], 95 + static_cast<int>(i));
  }
}

// ---------------------------------------------------------------- Table

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Both rows' second column starts at the same offset.
  const auto lines_start = out.find("a ");
  ASSERT_NE(lines_start, std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, RendersWithoutHeader) {
  TextTable t;
  t.row({"x", "y"});
  EXPECT_EQ(t.render(), "x  y\n");
}

TEST(TextTable, ShortRowsAllowed) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

}  // namespace
}  // namespace apx

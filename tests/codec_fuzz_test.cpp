// Deterministic seed-driven fuzzer for the wire-message codecs
// (src/net/messages.cpp). Three attack surfaces:
//
//   1. round-trip: randomized instances of every message type encode and
//      decode back to equal values (including quantized features, within
//      quantization error);
//   2. structured mutation: valid encodings with bit flips, truncations and
//      splices must either decode or throw CodecError — nothing else;
//   3. in-flight corruption: the exact mutation model the fault injector
//      applies (net/faults.hpp) replayed against every decoder.
//
// Run under the asan-ubsan preset this is the "corruption surfaces as
// CodecError drops, never UB" acceptance check in executable form.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/faults.hpp"
#include "src/net/messages.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

WireEntry random_entry(Rng& rng, std::size_t dim, bool quantize) {
  WireEntry e;
  e.feature = random_unit(rng, dim);
  e.label = static_cast<Label>(rng.uniform_u64(10000));
  e.confidence = static_cast<float>(rng.uniform());
  e.hop_count = static_cast<std::uint8_t>(rng.uniform_u64(8));
  e.source_device = static_cast<std::uint32_t>(rng.next_u64());
  e.age = static_cast<SimDuration>(rng.uniform_u64(3'600'000'000ULL));
  e.quantize_on_wire = quantize;
  return e;
}

/// Decoding any payload with any decoder must produce a value or throw
/// CodecError; anything else (other exception, crash, sanitizer report)
/// fails the test.
void exercise_all_decoders(const std::vector<std::uint8_t>& payload) {
  try { (void)peek_type(payload); } catch (const CodecError&) {}
  try { (void)decode_hello(payload); } catch (const CodecError&) {}
  try { (void)decode_lookup_request(payload); } catch (const CodecError&) {}
  try { (void)decode_lookup_response(payload); } catch (const CodecError&) {}
  try { (void)decode_entry_advert(payload); } catch (const CodecError&) {}
}

class CodecFuzzer : public ::testing::TestWithParam<std::uint64_t> {};

// --------------------------------------------------------- 1. round trips

TEST_P(CodecFuzzer, HelloRoundTrips) {
  Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    HelloMsg msg;
    msg.sender = static_cast<NodeId>(rng.next_u64());
    msg.cache_size = static_cast<std::uint32_t>(rng.next_u64());
    const HelloMsg back = decode_hello(encode(msg));
    EXPECT_EQ(back.sender, msg.sender);
    EXPECT_EQ(back.cache_size, msg.cache_size);
  }
}

TEST_P(CodecFuzzer, LookupRequestRoundTrips) {
  Rng rng{GetParam() ^ 0x11ULL};
  for (int i = 0; i < 200; ++i) {
    LookupRequestMsg msg;
    msg.request_id = rng.next_u64();
    msg.sender = static_cast<NodeId>(rng.next_u64());
    msg.k = static_cast<std::uint32_t>(1 + rng.uniform_u64(16));
    msg.query = random_unit(rng, 1 + rng.uniform_u64(64));
    const LookupRequestMsg back = decode_lookup_request(encode(msg));
    EXPECT_EQ(back.request_id, msg.request_id);
    EXPECT_EQ(back.sender, msg.sender);
    EXPECT_EQ(back.k, msg.k);
    EXPECT_EQ(back.query, msg.query);
  }
}

TEST_P(CodecFuzzer, ResponseAndAdvertRoundTripsIncludingQuantized) {
  Rng rng{GetParam() ^ 0x22ULL};
  for (int i = 0; i < 100; ++i) {
    const std::size_t dim = 2 + rng.uniform_u64(48);
    const bool quantize = rng.chance(0.5);
    LookupResponseMsg resp;
    resp.request_id = rng.next_u64();
    resp.sender = static_cast<NodeId>(rng.next_u64());
    EntryAdvertMsg advert;
    advert.sender = resp.sender;
    const std::size_t n = rng.uniform_u64(8);
    for (std::size_t k = 0; k < n; ++k) {
      resp.entries.push_back(random_entry(rng, dim, quantize));
      advert.entries.push_back(random_entry(rng, dim, quantize));
    }
    const LookupResponseMsg r = decode_lookup_response(encode(resp));
    const EntryAdvertMsg a = decode_entry_advert(encode(advert));
    ASSERT_EQ(r.entries.size(), n);
    ASSERT_EQ(a.entries.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(r.entries[k].label, resp.entries[k].label);
      EXPECT_EQ(r.entries[k].hop_count, resp.entries[k].hop_count);
      EXPECT_EQ(r.entries[k].source_device, resp.entries[k].source_device);
      EXPECT_EQ(r.entries[k].age, resp.entries[k].age);
      ASSERT_EQ(r.entries[k].feature.size(), dim);
      for (std::size_t j = 0; j < dim; ++j) {
        // Quantized features round-trip within 8-bit affine error on unit
        // vectors; float features round-trip exactly.
        const float tol = quantize ? 0.02f : 0.0f;
        EXPECT_NEAR(r.entries[k].feature[j], resp.entries[k].feature[j], tol);
      }
    }
  }
}

// --------------------------------------------------------- 2. mutations

std::vector<std::vector<std::uint8_t>> corpus(Rng& rng) {
  std::vector<std::vector<std::uint8_t>> out;
  HelloMsg hello;
  hello.sender = static_cast<NodeId>(rng.next_u64());
  out.push_back(encode(hello));
  LookupRequestMsg req;
  req.request_id = rng.next_u64();
  req.query = random_unit(rng, 16);
  out.push_back(encode(req));
  LookupResponseMsg resp;
  resp.request_id = rng.next_u64();
  for (int i = 0; i < 3; ++i) {
    resp.entries.push_back(random_entry(rng, 16, rng.chance(0.5)));
  }
  out.push_back(encode(resp));
  EntryAdvertMsg advert;
  for (int i = 0; i < 3; ++i) {
    advert.entries.push_back(random_entry(rng, 16, rng.chance(0.5)));
  }
  out.push_back(encode(advert));
  return out;
}

TEST_P(CodecFuzzer, BitFlippedMessagesThrowOrParse) {
  Rng rng{GetParam() ^ 0x33ULL};
  for (int round = 0; round < 50; ++round) {
    for (const auto& base : corpus(rng)) {
      auto bytes = base;
      const std::uint64_t flips = 1 + rng.uniform_u64(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        bytes[rng.uniform_u64(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
      }
      exercise_all_decoders(bytes);
    }
  }
}

TEST_P(CodecFuzzer, EveryTruncationThrowsOrParses) {
  Rng rng{GetParam() ^ 0x44ULL};
  for (const auto& base : corpus(rng)) {
    for (std::size_t cut = 0; cut < base.size(); ++cut) {
      exercise_all_decoders(
          {base.begin(), base.begin() + static_cast<long>(cut)});
    }
  }
}

TEST_P(CodecFuzzer, SplicedMessagesThrowOrParse) {
  // Concatenate the head of one valid message with the tail of another —
  // the nastiest inputs: valid type byte, internally inconsistent body.
  Rng rng{GetParam() ^ 0x55ULL};
  for (int round = 0; round < 100; ++round) {
    const auto msgs = corpus(rng);
    const auto& a = msgs[rng.uniform_u64(msgs.size())];
    const auto& b = msgs[rng.uniform_u64(msgs.size())];
    std::vector<std::uint8_t> spliced(
        a.begin(), a.begin() + static_cast<long>(rng.uniform_u64(a.size())));
    const std::size_t tail = rng.uniform_u64(b.size());
    spliced.insert(spliced.end(), b.end() - static_cast<long>(tail), b.end());
    exercise_all_decoders(spliced);
  }
}

TEST_P(CodecFuzzer, HostileLengthPrefixesAreRejectedNotAllocated) {
  // A handcrafted advert claiming 2^60 entries must throw, not reserve.
  Rng rng{GetParam() ^ 0x66ULL};
  for (int round = 0; round < 50; ++round) {
    EntryAdvertMsg advert;
    advert.entries.push_back(random_entry(rng, 8, false));
    auto bytes = encode(advert);
    // The entry count varint sits right after the type byte and sender;
    // stomp a huge LEB128 value over a random position instead of guessing
    // the layout — decoders must reject any inflated count they meet.
    const std::size_t pos = 1 + rng.uniform_u64(bytes.size() - 1);
    const std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff, 0xff,
                                            0xff, 0xff, 0xff, 0x7f};
    bytes.resize(pos);
    bytes.insert(bytes.end(), huge.begin(), huge.end());
    exercise_all_decoders(bytes);
  }
}

// --------------------------------------------------------- 3. injector model

TEST_P(CodecFuzzer, FaultInjectorCorruptionOnlyEverThrowsCodecError) {
  Rng rng{GetParam() ^ 0x77ULL};
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  FaultInjector inj{plan, GetParam()};
  for (int round = 0; round < 200; ++round) {
    for (auto& bytes : corpus(rng)) {
      inj.maybe_corrupt(bytes);
      exercise_all_decoders(bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzer,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace apx

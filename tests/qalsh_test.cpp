// QalshIndex unit tests: scheme derivation from the guarantee parameters,
// empirical recall against the paper's 1/2 - 1/e success bound, line
// maintenance (amortized merges, tombstone compaction, slot reuse),
// batch-vs-single parity, the zero-allocation steady state of the query
// hot path, quantized-scan composition, and deterministic metric exports.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ann/exact_knn.hpp"
#include "src/ann/qalsh.hpp"
#include "src/core/config.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/runner.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

// Global allocation counter (same trick as hotpath_test): the steady-state
// assertions measure the query path's allocation count directly.
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apx {
namespace {

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

/// Clustered workload: near-duplicate views of a modest object population,
/// the shape the cache holds in steady state.
FeatureVec cluster_point(std::size_t cluster, std::size_t dim, Rng& rng,
                         double sigma = 0.05) {
  Rng crng{cluster * 7717 + 1};
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(crng.normal());
  normalize(v);
  for (float& x : v) x += static_cast<float>(rng.normal(0.0, sigma));
  return v;
}

float exact_l2(const FeatureVec& a, const FeatureVec& b) {
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

// ------------------------------------------------------ scheme derivation

TEST(QalshScheme, DerivesPaperSchemeFromGuaranteeParams) {
  const QalshIndex index{16, QalshParams{}};  // c=2, delta~1/e, beta=0.01
  const QalshIndex::Scheme& s = index.scheme();
  // Verified against the QALSH formulas: w = sqrt(8c^2 ln c / (c^2-1)),
  // m from the Chernoff separation of p1/p2, l = ceil(alpha * m).
  EXPECT_NEAR(s.w, 2.719, 1e-3);
  EXPECT_NEAR(s.p1, 0.8262, 1e-3);
  EXPECT_NEAR(s.p2, 0.5032, 1e-3);
  EXPECT_EQ(s.m, 53u);
  EXPECT_EQ(s.l, 39u);
  EXPECT_GT(s.p1, s.p2);
  EXPECT_LE(s.l, s.m);
}

TEST(QalshScheme, LooserRatioNeedsFewerProjections) {
  QalshParams loose;
  loose.c = 3.0f;
  const QalshIndex a{16, loose};
  const QalshIndex b{16, QalshParams{}};
  EXPECT_LT(a.scheme().m, b.scheme().m);
}

TEST(QalshScheme, RejectsBadParameters) {
  QalshParams p;
  EXPECT_THROW(QalshIndex(0, p), std::invalid_argument);  // dim
  p = QalshParams{};
  p.c = 1.0f;  // ratio must exceed 1
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
  p = QalshParams{};
  p.c = 1.001f;  // c -> 1 needs an absurd projection count: capped
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
  p = QalshParams{};
  p.delta = 0.0f;
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
  p = QalshParams{};
  p.delta = 1.0f;
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
  p = QalshParams{};
  p.beta = 0.0f;
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
  p = QalshParams{};
  p.r0 = 0.0f;
  EXPECT_THROW(QalshIndex(16, p), std::invalid_argument);
}

// --------------------------------------------------------------- queries

TEST(QalshQuery, ReturnsExactSortedDistances) {
  constexpr std::size_t kDim = 8;
  QalshIndex index{kDim, QalshParams{}};
  Rng rng{5};
  std::vector<FeatureVec> stored;
  for (VecId id = 0; id < 32; ++id) {
    stored.push_back(random_unit(rng, kDim));
    index.insert(id, stored.back());
  }
  const FeatureVec q = random_unit(rng, kDim);
  const auto result = index.query(q, 5);
  ASSERT_EQ(result.size(), 5u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i].distance,
                exact_l2(q, stored[static_cast<std::size_t>(result[i].id)]),
                1e-4f);
    if (i > 0) EXPECT_GE(result[i].distance, result[i - 1].distance);
  }
}

TEST(QalshQuery, SmallIndexExhaustsToExactAnswer) {
  constexpr std::size_t kDim = 8;
  QalshIndex index{kDim, QalshParams{}};
  Rng rng{9};
  for (VecId id = 0; id < 5; ++id) index.insert(id, random_unit(rng, kDim));
  std::vector<Neighbor> out;
  QueryStats st;
  index.query_into(random_unit(rng, kDim), 10, out, &st);
  // Fewer entries than k: the sweep exhausts every line and the candidate
  // set is the whole index — exactly what an exact scan would return.
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(st.candidates, 5u);
  EXPECT_GE(st.rounds, 1u);
}

TEST(QalshQuery, EmptyIndexAndZeroK) {
  QalshIndex index{8, QalshParams{}};
  EXPECT_TRUE(index.query(FeatureVec(8, 0.1f), 4).empty());
  Rng rng{3};
  index.insert(0, random_unit(rng, 8));
  EXPECT_TRUE(index.query(FeatureVec(8, 0.1f), 0).empty());
}

// The headline guarantee: QALSH answers a c-approximate NN query with
// probability >= 1/2 - delta (= 1/2 - 1/e ~= 0.132 at the defaults).
// Empirical *exact* top-1 recall — a strictly harder event — must clear
// that floor across dimensions, scales, and projection seeds.
TEST(QalshQuery, EmpiricalRecallClearsTheoreticalBound) {
  constexpr double kBound = 0.5 - 0.36788;  // 1/2 - 1/e
  for (const std::size_t dim : {8u, 32u}) {
    for (const std::size_t size : {500u, 2000u}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE(testing::Message()
                     << "dim=" << dim << " size=" << size
                     << " seed=" << seed);
        QalshParams p;
        p.seed = seed;
        QalshIndex index{dim, p};
        ExactKnnIndex truth{dim};
        Rng rng{seed * 104729 + 17};
        for (VecId id = 0; id < size; ++id) {
          const FeatureVec v = cluster_point(id % 32, dim, rng);
          index.insert(id, v);
          truth.insert(id, v);
        }
        std::size_t agree = 0;
        const std::size_t queries = 150;
        std::vector<Neighbor> approx, exact;
        for (std::size_t q = 0; q < queries; ++q) {
          const FeatureVec query = cluster_point(q % 32, dim, rng);
          index.query_into(query, 1, approx);
          truth.query_into(query, 1, exact);
          ASSERT_FALSE(approx.empty());
          ASSERT_FALSE(exact.empty());
          if (approx[0].distance <= exact[0].distance + 1e-6f) ++agree;
        }
        const double recall =
            static_cast<double>(agree) / static_cast<double>(queries);
        EXPECT_GE(recall, kBound);
        // The bound is loose; on clustered data the defaults should do far
        // better, and a regression that *only just* clears 0.132 is a bug.
        EXPECT_GE(recall, 0.6);
      }
    }
  }
}

// ------------------------------------------------------ line maintenance

TEST(QalshMaintenance, InsertValidationAndRemoveSemantics) {
  QalshIndex index{8, QalshParams{}};
  Rng rng{21};
  index.insert(7, random_unit(rng, 8));
  EXPECT_THROW(index.insert(7, random_unit(rng, 8)),
               std::invalid_argument);  // duplicate id
  FeatureVec bad(8, 0.0f);
  bad[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(index.insert(8, bad), std::invalid_argument);
  bad[3] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(index.insert(8, bad), std::invalid_argument);
  EXPECT_EQ(index.size(), 1u);  // failed inserts left no trace
  EXPECT_TRUE(index.remove(7));
  EXPECT_FALSE(index.remove(7));
  EXPECT_EQ(index.size(), 0u);
}

TEST(QalshMaintenance, MergeCompactAndSlotReuseStayCoherent) {
  constexpr std::size_t kDim = 8;
  QalshIndex index{kDim, QalshParams{}};
  Rng rng{33};
  std::vector<FeatureVec> stored;
  for (VecId id = 0; id < 300; ++id) {
    stored.push_back(cluster_point(id % 16, kDim, rng));
    index.insert(id, stored.back());
  }
  EXPECT_GE(index.merge_count(), 1u);  // 300 inserts crossed the batch bound

  // Tombstone half the index; crossing the quarter-dead bound compacts.
  for (VecId id = 0; id < 300; id += 2) EXPECT_TRUE(index.remove(id));
  EXPECT_GE(index.compaction_count(), 1u);
  EXPECT_EQ(index.size(), 150u);

  // No removed id may ever come back from a query.
  Rng qrng{34};
  for (std::size_t q = 0; q < 50; ++q) {
    for (const Neighbor& nb :
         index.query(cluster_point(q % 16, kDim, qrng), 8)) {
      EXPECT_EQ(nb.id % 2, 1u) << "tombstoned id resurfaced";
    }
  }

  // Reinsert fresh ids into the recycled slots; results must reflect the
  // new vectors, not the stale line entries of the dead ones.
  for (VecId id = 1000; id < 1150; ++id) {
    index.insert(id, cluster_point(id % 16, kDim, rng));
  }
  index.flush();
  std::vector<Neighbor> out;
  for (std::size_t q = 0; q < 50; ++q) {
    const FeatureVec query = cluster_point(q % 16, kDim, qrng);
    index.query_into(query, 4, out);
    for (const Neighbor& nb : out) {
      EXPECT_TRUE((nb.id % 2 == 1 && nb.id < 300) || nb.id >= 1000)
          << "unexpected id " << nb.id;
    }
  }
}

// ----------------------------------------------------- batch == single

TEST(QalshBatch, BatchMatchesSingleExactly) {
  constexpr std::size_t kDim = 16;
  constexpr std::size_t kQueries = 48;
  QalshIndex index{kDim, QalshParams{}};
  Rng rng{55};
  for (VecId id = 0; id < 400; ++id) {
    index.insert(id, cluster_point(id % 24, kDim, rng));
  }
  std::vector<float> flat;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const FeatureVec v = cluster_point(q % 24, kDim, rng);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  auto scratch = index.make_scratch();
  std::vector<std::vector<Neighbor>> batched(kQueries);
  std::vector<QueryStats> batched_stats(kQueries);
  index.query_batch_into(flat, kQueries, 4, scratch.get(), batched,
                         batched_stats.data());
  std::vector<Neighbor> single;
  QueryStats st;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const std::span<const float> query{flat.data() + q * kDim, kDim};
    index.query_into(query, 4, single, &st);
    ASSERT_EQ(batched[q].size(), single.size()) << "query " << q;
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, single[i].id) << "query " << q;
      EXPECT_EQ(batched[q][i].distance, single[i].distance) << "query " << q;
    }
    EXPECT_EQ(batched_stats[q].candidates, st.candidates);
    EXPECT_EQ(batched_stats[q].rounds, st.rounds);
  }
}

TEST(QalshBatch, ForeignScratchThrows) {
  QalshIndex index{8, QalshParams{}};
  Rng rng{2};
  index.insert(0, random_unit(rng, 8));
  const std::vector<float> flat(8, 0.1f);
  std::vector<std::vector<Neighbor>> results(1);
  EXPECT_THROW(
      index.query_batch_into(flat, 1, 2, nullptr, results, nullptr),
      std::invalid_argument);
}

// ------------------------------------------------------ radius controller

TEST(QalshController, FeedbackRaisesStartRadiusAndPreservesRecall) {
  constexpr std::size_t kDim = 16;
  QalshParams p;
  p.r0 = 0.01f;  // deliberately far below the workload's d_k
  QalshIndex index{kDim, p};
  ExactKnnIndex truth{kDim};
  Rng rng{71};
  for (VecId id = 0; id < 1000; ++id) {
    const FeatureVec v = cluster_point(id % 16, kDim, rng, 0.15);
    index.insert(id, v);
    truth.insert(id, v);
  }
  index.flush();

  Rng qrng{72};
  std::vector<FeatureVec> queries;
  for (std::size_t q = 0; q < 80; ++q) {
    queries.push_back(cluster_point(q % 16, kDim, qrng, 0.15));
  }
  std::vector<Neighbor> out;
  QueryStats st;
  std::size_t rounds_before = 0;
  std::vector<float> dks;
  for (const FeatureVec& q : queries) {
    index.query_into(q, 4, out, &st);
    rounds_before += st.rounds;
    if (!out.empty()) dks.push_back(out.back().distance);
  }

  index.observe_query_feedback(dks, queries.size());
  EXPECT_GT(index.start_radius(), p.r0);

  std::size_t rounds_after = 0;
  std::size_t agree = 0;
  std::vector<Neighbor> exact;
  for (const FeatureVec& q : queries) {
    index.query_into(q, 1, out, &st);
    rounds_after += st.rounds;
    truth.query_into(q, 1, exact);
    if (!out.empty() && !exact.empty() &&
        out[0].distance <= exact[0].distance + 1e-6f) {
      ++agree;
    }
  }
  // Skipping the early rounds must cut work, not recall: collision
  // frequencies at a radius are schedule-independent.
  EXPECT_LT(rounds_after, rounds_before);
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(queries.size()),
            0.6);
}

// ----------------------------------------------------------- zero alloc

TEST(QalshHotPath, SteadyStateQueriesDoNotAllocate) {
  constexpr std::size_t kDim = 16;
  for (const bool quantized : {false, true}) {
    SCOPED_TRACE(quantized ? "sq8" : "float");
    QalshParams p;
    p.quantize.enabled = quantized;
    QalshIndex index{kDim, p};
    Rng rng{91};
    for (VecId id = 0; id < 500; ++id) {
      index.insert(id, cluster_point(id % 16, kDim, rng));
    }
    index.flush();
    std::vector<FeatureVec> queries;
    for (std::size_t q = 0; q < 64; ++q) {
      queries.push_back(cluster_point(q % 16, kDim, rng));
    }
    std::vector<Neighbor> out;
    QueryStats st;
    // Warm pass: every scratch buffer grows to its high-water mark.
    for (const FeatureVec& q : queries) index.query_into(q, 4, out, &st);
    // Steady state: the same traffic must perform zero heap allocations.
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (const FeatureVec& q : queries) index.query_into(q, 4, out, &st);
    const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
  }
}

// ------------------------------------------------------- quantized scan

TEST(QalshQuantized, Sq8ScanReranksExactly) {
  constexpr std::size_t kDim = 16;
  QalshParams p;
  p.quantize.enabled = true;
  QalshIndex index{kDim, p};
  ASSERT_TRUE(index.quantized());
  Rng rng{101};
  std::vector<FeatureVec> stored;
  for (VecId id = 0; id < 200; ++id) {
    stored.push_back(cluster_point(id % 8, kDim, rng));
    index.insert(id, stored.back());
  }
  std::vector<Neighbor> out;
  QueryStats st;
  for (std::size_t q = 0; q < 20; ++q) {
    const FeatureVec query = cluster_point(q % 8, kDim, rng);
    index.query_into(query, 4, out, &st);
    ASSERT_FALSE(out.empty());
    EXPECT_GT(st.rerank_survivors, 0u);
    EXPECT_LE(st.rerank_survivors, st.candidates);
    for (const Neighbor& nb : out) {
      // Survivor distances are exact float distances, not ADC estimates.
      EXPECT_NEAR(
          nb.distance,
          exact_l2(query, stored[static_cast<std::size_t>(nb.id)]), 1e-4f);
    }
  }
  const FeatureVec recon = index.reconstructed(0);
  ASSERT_EQ(recon.size(), kDim);
  EXPECT_NEAR(exact_l2(recon, stored[0]), 0.0f, 0.05f);
}

// ------------------------------------------------------------- metrics

TEST(QalshMetrics, RegistersWholeSubsystemAndCountsStops) {
  QalshIndex index{8, QalshParams{}};
  MetricsRegistry metrics;
  index.attach_metrics(metrics);
  Rng rng{7};
  for (VecId id = 0; id < 100; ++id) index.insert(id, random_unit(rng, 8));
  constexpr std::size_t kQueries = 30;
  for (std::size_t q = 0; q < kQueries; ++q) {
    (void)index.query(random_unit(rng, 8), 4);
  }
  // All-or-nothing: every instrument of the "ann/qalsh" group exists even
  // if its stop reason never fired.
  const auto* rounds = metrics.find_histogram("ann/qalsh/rounds");
  const auto* collisions = metrics.find_histogram("ann/qalsh/collisions");
  ASSERT_NE(rounds, nullptr);
  ASSERT_NE(collisions, nullptr);
  EXPECT_EQ(rounds->count, kQueries);
  EXPECT_EQ(collisions->count, kQueries);
  const std::uint64_t stops = metrics.value(metrics.counter("ann/qalsh/c1_stop")) +
                              metrics.value(metrics.counter("ann/qalsh/c2_stop")) +
                              metrics.value(metrics.counter("ann/qalsh/exhausted"));
  EXPECT_EQ(stops, kQueries);
  // Registered-but-idle instruments export as zeros, not absences.
  (void)metrics.value(metrics.counter("ann/qalsh/merges"));
  (void)metrics.value(metrics.counter("ann/qalsh/compactions"));
}

TEST(QalshMetrics, SameSeedExportsAreByteIdentical) {
  ScenarioConfig cfg = default_scenario();
  cfg.pipeline = make_ladder_config("imu,temporal,local(qalsh),p2p,dnn");
  cfg.num_devices = 2;
  cfg.duration = 6 * kSecond;
  cfg.scene.num_classes = 16;
  cfg.seed = 13;
  ExperimentRunner a{cfg}, b{cfg};
  a.run();
  b.run();
  const std::string json = a.metrics().to_json();
  EXPECT_EQ(json, b.metrics().to_json());
  EXPECT_NE(json.find("ann/qalsh/rounds"), std::string::npos);
  EXPECT_NE(json.find("ann/qalsh/c1_stop"), std::string::npos);
}

}  // namespace
}  // namespace apx

// Golden-file equivalence: the metrics-registry JSON export for every named
// pipeline configuration at fixed seeds must stay byte-identical across
// refactors. The committed files under tests/golden/ were generated from
// pre-refactor main (before the rung plugin architecture); any divergence in
// RNG draw order, event scheduling, metric naming or JSON formatting shows
// up as a byte diff here.
//
// Regenerate (only when an intentional behaviour change is being made):
//   APX_UPDATE_GOLDEN=1 ./build/tests/golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/sim/runner.hpp"

#ifndef APX_GOLDEN_DIR
#error "APX_GOLDEN_DIR must be defined by the build"
#endif

namespace apx {
namespace {

struct GoldenCase {
  const char* name;           ///< named config (apxsim --config vocabulary)
  PipelineConfig (*make)();
  std::uint64_t seed;
};

// The T1/T2/F4/T3 evaluation sweeps all iterate these named configurations
// over the shared live-video workload; two seeds guard against a lucky
// coincidence at one RNG stream.
const GoldenCase kCases[] = {
    {"nocache", make_nocache_config, 1},   {"nocache", make_nocache_config, 23},
    {"exact", make_exactcache_config, 1},  {"exact", make_exactcache_config, 23},
    {"local", make_approx_local_config, 1},
    {"local", make_approx_local_config, 23},
    {"imu", make_approx_imu_config, 1},    {"imu", make_approx_imu_config, 23},
    {"video", make_approx_video_config, 1},
    {"video", make_approx_video_config, 23},
    {"full", make_full_system_config, 1},  {"full", make_full_system_config, 23},
    {"adaptive", make_adaptive_config, 1}, {"adaptive", make_adaptive_config, 23},
    // The edge aggregation tier (added with src/edge): one golden pins its
    // wire traffic, admission decisions and sweep schedule at a fixed seed.
    {"edge", make_edge_config, 1},
};

/// Small but complete instance of the evaluation workload: co-located
/// devices, Zipf popularity, CNN feature keys. Fixed forever — changing any
/// of this invalidates the committed goldens.
ScenarioConfig golden_scenario(const GoldenCase& c) {
  ScenarioConfig cfg = default_scenario();
  cfg.pipeline = c.make();
  cfg.num_devices = 3;
  cfg.duration = 10 * kSecond;
  cfg.scene.num_classes = 16;
  cfg.seed = c.seed;
  return cfg;
}

std::string golden_path(const GoldenCase& c) {
  return std::string(APX_GOLDEN_DIR) + "/" + c.name + "_s" +
         std::to_string(c.seed) + ".json";
}

/// Same framing apxsim --metrics-out uses: JSON export + trailing newline.
std::string export_metrics(const GoldenCase& c) {
  ExperimentRunner runner{golden_scenario(c)};
  runner.run();
  return runner.metrics().to_json() + "\n";
}

TEST(Golden, MetricsExportsMatchPreRefactorMain) {
  const bool update = std::getenv("APX_UPDATE_GOLDEN") != nullptr;
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(std::string(c.name) + " seed " + std::to_string(c.seed));
    const std::string got = export_metrics(c);
    const std::string path = golden_path(c);
    if (update) {
      std::ofstream out{path, std::ios::binary};
      ASSERT_TRUE(out) << "cannot write " << path;
      out << got;
      continue;
    }
    std::ifstream in{path, std::ios::binary};
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with APX_UPDATE_GOLDEN=1 to generate)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str()) << "metrics export diverged from " << path;
  }
}

}  // namespace
}  // namespace apx

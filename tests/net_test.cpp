// Unit tests for the network substrate: event simulator, wireless medium,
// protocol codecs, and discovery.

#include <gtest/gtest.h>

#include "src/net/discovery.hpp"
#include "src/net/event_sim.hpp"
#include "src/net/medium.hpp"
#include "src/net/messages.hpp"

namespace apx {
namespace {

// ------------------------------------------------------------- EventSim

TEST(EventSim, StartsAtZero) {
  EventSimulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(EventSim, RunsInTimeOrder) {
  EventSimulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(EventSim, EqualTimesRunInScheduleOrder) {
  EventSimulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, ScheduleAfterUsesNow) {
  EventSimulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventSim, PastTimesClampToNow) {
  EventSimulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventSim, NegativeDelayClampsToZero) {
  EventSimulator sim;
  bool fired = false;
  sim.schedule_after(-100, [&] { fired = true; });
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 0);
}

TEST(EventSim, RunUntilStopsAtBoundary) {
  EventSimulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(EventSim, RunUntilAdvancesIdleClock) {
  EventSimulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(EventSim, EventsCanScheduleEvents) {
  EventSimulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  EXPECT_EQ(sim.run_all(), 10u);
  EXPECT_EQ(sim.now(), 9);
}

TEST(EventSim, RunAllRespectsEventCap) {
  EventSimulator sim;
  std::function<void()> forever = [&] { sim.schedule_after(1, forever); };
  sim.schedule_at(0, forever);
  EXPECT_EQ(sim.run_all(100), 100u);
}

// ------------------------------------------------------------- Medium

struct Inbox {
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> messages;
  WirelessMedium::ReceiveFn fn() {
    return [this](NodeId from, const std::vector<std::uint8_t>& payload) {
      messages.emplace_back(from, payload);
    };
  }
};

MediumParams lossless() {
  MediumParams p;
  p.loss_prob = 0.0;
  p.jitter = 0;
  return p;
}

TEST(Medium, BadParamsThrow) {
  EventSimulator sim;
  MediumParams p;
  p.bytes_per_us = 0.0;
  EXPECT_THROW(WirelessMedium(sim, p, 1), std::invalid_argument);
  p = MediumParams{};
  p.loss_prob = 1.5;
  EXPECT_THROW(WirelessMedium(sim, p, 1), std::invalid_argument);
}

TEST(Medium, NullCallbackThrows) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  EXPECT_THROW(medium.add_node(nullptr), std::invalid_argument);
}

TEST(Medium, UnicastDeliversWithLatency) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn());
  const NodeId nb = medium.add_node(b.fn());
  medium.unicast(na, nb, {1, 2, 3});
  EXPECT_TRUE(b.messages.empty());  // not yet delivered
  sim.run_all();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].first, na);
  EXPECT_EQ(b.messages[0].second, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_GE(sim.now(), lossless().base_latency);
  EXPECT_TRUE(a.messages.empty());
}

TEST(Medium, BroadcastReachesCellOnly) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b, c;
  const NodeId na = medium.add_node(a.fn(), /*cell=*/0);
  medium.add_node(b.fn(), /*cell=*/0);
  medium.add_node(c.fn(), /*cell=*/1);
  medium.broadcast(na, {9});
  sim.run_all();
  EXPECT_EQ(b.messages.size(), 1u);
  EXPECT_TRUE(c.messages.empty());
  EXPECT_TRUE(a.messages.empty());  // no self-delivery
}

TEST(Medium, UnicastOutOfCellDropped) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn(), 0);
  const NodeId nb = medium.add_node(b.fn(), 1);
  medium.unicast(na, nb, {1});
  sim.run_all();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(medium.counters().get("dropped_range"), 1u);
}

TEST(Medium, SetCellMovesNode) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn(), 0);
  const NodeId nb = medium.add_node(b.fn(), 1);
  EXPECT_TRUE(medium.neighbors(na).empty());
  medium.set_cell(nb, 0);
  EXPECT_EQ(medium.cell_of(nb), 0);
  ASSERT_EQ(medium.neighbors(na).size(), 1u);
  EXPECT_EQ(medium.neighbors(na)[0], nb);
}

TEST(Medium, LossDropsApproximatelyAtRate) {
  EventSimulator sim;
  MediumParams p = lossless();
  p.loss_prob = 0.3;
  WirelessMedium medium{sim, p, 7};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn());
  const NodeId nb = medium.add_node(b.fn());
  const int n = 2000;
  for (int i = 0; i < n; ++i) medium.unicast(na, nb, {1});
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(b.messages.size()) / n, 0.7, 0.05);
  EXPECT_EQ(medium.counters().get("dropped_loss") + b.messages.size(),
            static_cast<std::uint64_t>(n));
}

TEST(Medium, LargerPayloadsTakeLonger) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn());
  const NodeId nb = medium.add_node(b.fn());
  std::vector<SimTime> arrivals;
  medium.unicast(na, nb, std::vector<std::uint8_t>(10));
  sim.run_all();
  const SimTime small_t = sim.now();
  medium.unicast(na, nb, std::vector<std::uint8_t>(100000));
  sim.run_all();
  const SimTime big_t = sim.now() - small_t;
  EXPECT_GT(big_t, small_t);
}

TEST(Medium, EnergyAccountedPerNode) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn());
  const NodeId nb = medium.add_node(b.fn());
  medium.unicast(na, nb, std::vector<std::uint8_t>(1024));
  sim.run_all();
  EXPECT_NEAR(medium.energy_mj(na), lossless().tx_energy_mj_per_kb, 1e-9);
  EXPECT_NEAR(medium.energy_mj(nb), lossless().rx_energy_mj_per_kb, 1e-9);
}

TEST(Medium, CountersTrackBytes) {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 1};
  Inbox a, b;
  const NodeId na = medium.add_node(a.fn());
  medium.add_node(b.fn());
  medium.broadcast(na, std::vector<std::uint8_t>(50));
  sim.run_all();
  EXPECT_EQ(medium.counters().get("tx"), 1u);
  EXPECT_EQ(medium.counters().get("tx_bytes"), 50u);
  EXPECT_EQ(medium.counters().get("rx"), 1u);
}

// ------------------------------------------------------------- Messages

TEST(Messages, HelloRoundTrip) {
  HelloMsg msg;
  msg.sender = 7;
  msg.cache_size = 123;
  const auto decoded = decode_hello(encode(msg));
  EXPECT_EQ(decoded.sender, 7u);
  EXPECT_EQ(decoded.cache_size, 123u);
}

TEST(Messages, LookupRequestRoundTrip) {
  LookupRequestMsg msg;
  msg.request_id = 99;
  msg.sender = 3;
  msg.k = 5;
  msg.query = {0.5f, -1.0f, 2.0f};
  const auto decoded = decode_lookup_request(encode(msg));
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.sender, 3u);
  EXPECT_EQ(decoded.k, 5u);
  EXPECT_EQ(decoded.query, msg.query);
}

TEST(Messages, LookupResponseRoundTrip) {
  LookupResponseMsg msg;
  msg.request_id = 1;
  msg.sender = 2;
  WireEntry e;
  e.feature = {1.0f, 2.0f};
  e.label = 42;
  e.confidence = 0.75f;
  e.hop_count = 1;
  e.source_device = 9;
  e.age = 1234567;
  msg.entries.push_back(e);
  const auto decoded = decode_lookup_response(encode(msg));
  ASSERT_EQ(decoded.entries.size(), 1u);
  EXPECT_EQ(decoded.entries[0].feature, e.feature);
  EXPECT_EQ(decoded.entries[0].label, 42);
  EXPECT_FLOAT_EQ(decoded.entries[0].confidence, 0.75f);
  EXPECT_EQ(decoded.entries[0].hop_count, 1);
  EXPECT_EQ(decoded.entries[0].source_device, 9u);
  EXPECT_EQ(decoded.entries[0].age, 1234567);
}

TEST(Messages, AdvertRoundTripMultipleEntries) {
  EntryAdvertMsg msg;
  msg.sender = 4;
  for (int i = 0; i < 5; ++i) {
    WireEntry e;
    e.feature = FeatureVec(8, static_cast<float>(i));
    e.label = i;
    msg.entries.push_back(e);
  }
  const auto decoded = decode_entry_advert(encode(msg));
  EXPECT_EQ(decoded.sender, 4u);
  ASSERT_EQ(decoded.entries.size(), 5u);
  EXPECT_EQ(decoded.entries[3].label, 3);
}

TEST(Messages, PeekTypeIdentifies) {
  EXPECT_EQ(peek_type(encode(HelloMsg{})), MsgType::kHello);
  EXPECT_EQ(peek_type(encode(LookupRequestMsg{})), MsgType::kLookupRequest);
  EXPECT_EQ(peek_type(encode(LookupResponseMsg{})), MsgType::kLookupResponse);
  EXPECT_EQ(peek_type(encode(EntryAdvertMsg{})), MsgType::kEntryAdvert);
}

TEST(Messages, PeekEmptyThrows) {
  EXPECT_THROW(peek_type({}), CodecError);
}

TEST(Messages, WrongTypeThrows) {
  EXPECT_THROW(decode_hello(encode(EntryAdvertMsg{})), CodecError);
}

TEST(Messages, TruncatedPayloadThrows) {
  auto bytes = encode(LookupRequestMsg{});
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_lookup_request(bytes), CodecError);
}

// ------------------------------------------------------------- Discovery

struct DiscoveryHarness {
  EventSimulator sim;
  std::vector<std::vector<std::uint8_t>> sent;
  DiscoveryParams params;
  std::uint32_t cache_size = 5;

  DiscoveryService make(NodeId self = 0) {
    return DiscoveryService{
        sim, self, params,
        [this](std::vector<std::uint8_t> payload) {
          sent.push_back(std::move(payload));
        },
        [this] { return cache_size; }};
  }
};

TEST(Discovery, NullCallbacksThrow) {
  EventSimulator sim;
  EXPECT_THROW(DiscoveryService(sim, 0, DiscoveryParams{}, nullptr,
                                [] { return 0u; }),
               std::invalid_argument);
}

TEST(Discovery, BeaconsPeriodically) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  svc.start();
  h.sim.run_until(h.params.beacon_interval * 3 + 1);
  EXPECT_EQ(h.sent.size(), 4u);  // t=0 plus three intervals
  const HelloMsg hello = decode_hello(h.sent.front());
  EXPECT_EQ(hello.cache_size, 5u);
}

TEST(Discovery, StopEndsBeaconing) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  svc.start();
  h.sim.run_until(1);
  svc.stop();
  h.sim.run_until(10 * kSecond);
  EXPECT_EQ(h.sent.size(), 1u);
}

TEST(Discovery, HelloPopulatesNeighbors) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make(0);
  HelloMsg hello;
  hello.sender = 3;
  hello.cache_size = 77;
  svc.on_hello(hello);
  ASSERT_EQ(svc.neighbors().size(), 1u);
  EXPECT_EQ(svc.neighbors()[0], 3u);
  EXPECT_EQ(svc.peer_cache_size(3), 77u);
}

TEST(Discovery, OwnHelloIgnored) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make(5);
  HelloMsg hello;
  hello.sender = 5;
  svc.on_hello(hello);
  EXPECT_TRUE(svc.neighbors().empty());
}

TEST(Discovery, NeighborsExpire) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  HelloMsg hello;
  hello.sender = 3;
  svc.on_hello(hello);
  h.sim.run_until(h.params.neighbor_expiry + 1);
  EXPECT_TRUE(svc.neighbors().empty());
  EXPECT_EQ(svc.peer_cache_size(3), 0u);
}

TEST(Discovery, FreshHelloRefreshesExpiry) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  HelloMsg hello;
  hello.sender = 3;
  svc.on_hello(hello);
  h.sim.run_until(h.params.neighbor_expiry - 100);
  svc.on_hello(hello);
  h.sim.run_until(h.params.neighbor_expiry + 100);
  EXPECT_EQ(svc.neighbors().size(), 1u);
}

TEST(Discovery, StopThenRestartRunsExactlyOneBeaconChain) {
  // Regression: restarting before the stale scheduled beacon fires used to
  // leave TWO live beacon chains (the stale tick saw running_ == true and
  // rescheduled itself). Generation stamps orphan it instead.
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  svc.start();                 // beacon at t=0, next queued at t=interval
  h.sim.run_until(1);
  svc.stop();
  svc.start();                 // beacon at t=1, stale tick still queued
  const SimTime horizon = h.params.beacon_interval * 3 + 2;
  h.sim.run_until(horizon);
  // One chain: t=0, t=1, then every interval from t=1. A duplicate chain
  // would roughly double this.
  EXPECT_EQ(h.sent.size(), 5u);
}

TEST(Discovery, RepeatedStopStartCyclesStayIdempotent) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  for (int i = 0; i < 5; ++i) {
    svc.start();
    svc.stop();
  }
  svc.start();
  h.sent.clear();
  const SimTime from = h.sim.now();
  h.sim.run_until(from + h.params.beacon_interval * 4);
  // Exactly one beacon per interval survives all the churn.
  EXPECT_EQ(h.sent.size(), 4u);
}

TEST(Discovery, ForgetAllEmptiesNeighborTable) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  for (const NodeId id : {1u, 2u, 3u}) {
    HelloMsg hello;
    hello.sender = id;
    svc.on_hello(hello);
  }
  ASSERT_EQ(svc.neighbors().size(), 3u);
  svc.forget_all();
  EXPECT_TRUE(svc.neighbors().empty());
  EXPECT_EQ(svc.peer_cache_size(1), 0u);
}

TEST(Discovery, NeighborsSortedById) {
  DiscoveryHarness h;
  DiscoveryService svc = h.make();
  for (const NodeId id : {9u, 2u, 5u}) {
    HelloMsg hello;
    hello.sender = id;
    svc.on_hello(hello);
  }
  EXPECT_EQ(svc.neighbors(), (std::vector<NodeId>{2, 5, 9}));
}

}  // namespace
}  // namespace apx

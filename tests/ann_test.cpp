// Unit + property tests for the ANN layer: exact kNN, p-stable LSH,
// adaptive LSH, and the homogenized-kNN vote.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/exact_knn.hpp"
#include "src/ann/hknn.hpp"
#include "src/ann/lsh.hpp"
#include "src/ann/quantize.hpp"
#include "src/util/rng.hpp"

namespace apx {
namespace {

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

// -------------------------------------------------------------- ExactKnn

TEST(ExactKnn, EmptyQueryReturnsNothing) {
  ExactKnnIndex index{4};
  EXPECT_TRUE(index.query(FeatureVec(4, 0.0f), 3).empty());
}

TEST(ExactKnn, FindsExactMatchAtDistanceZero) {
  ExactKnnIndex index{2};
  index.insert(1, {1.0f, 0.0f});
  index.insert(2, {0.0f, 1.0f});
  const auto result = index.query(std::vector<float>{1.0f, 0.0f}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_FLOAT_EQ(result[0].distance, 0.0f);
}

TEST(ExactKnn, ReturnsSortedByDistance) {
  ExactKnnIndex index{1};
  index.insert(10, {5.0f});
  index.insert(11, {1.0f});
  index.insert(12, {3.0f});
  const auto result = index.query(std::vector<float>{0.0f}, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 11u);
  EXPECT_EQ(result[1].id, 12u);
  EXPECT_EQ(result[2].id, 10u);
}

TEST(ExactKnn, KLargerThanSizeReturnsAll) {
  ExactKnnIndex index{1};
  index.insert(1, {1.0f});
  EXPECT_EQ(index.query(std::vector<float>{0.0f}, 10).size(), 1u);
}

TEST(ExactKnn, RemoveDeletes) {
  ExactKnnIndex index{1};
  index.insert(1, {1.0f});
  EXPECT_TRUE(index.remove(1));
  EXPECT_FALSE(index.remove(1));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query(std::vector<float>{1.0f}, 1).empty());
}

TEST(ExactKnn, EqualDistancesTieBreakById) {
  ExactKnnIndex index{1};
  index.insert(5, {1.0f});
  index.insert(3, {-1.0f});
  const auto result = index.query(std::vector<float>{0.0f}, 2);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_EQ(result[1].id, 5u);
}

// -------------------------------------------------------------- LSH

LshParams default_lsh() {
  LshParams p;
  p.num_tables = 6;
  p.hashes_per_table = 6;
  p.bucket_width = 0.6f;
  p.seed = 21;
  return p;
}

TEST(Lsh, BadParamsThrow) {
  LshParams p = default_lsh();
  p.bucket_width = 0.0f;
  EXPECT_THROW(PStableLshIndex(8, p), std::invalid_argument);
  p = default_lsh();
  p.num_tables = 0;
  EXPECT_THROW(PStableLshIndex(8, p), std::invalid_argument);
}

TEST(Lsh, ExactDuplicateAlwaysFound) {
  PStableLshIndex index{8, default_lsh()};
  Rng rng{3};
  const FeatureVec v = random_unit(rng, 8);
  index.insert(42, v);
  const auto result = index.query(v, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 42u);
  EXPECT_FLOAT_EQ(result[0].distance, 0.0f);
}

TEST(Lsh, DuplicateIdInsertThrowsAndLeavesIndexIntact) {
  // Regression guard: duplicate-id detection used to be assert-only, so a
  // release build would stack a second slot under the id and leave the
  // first stale in every table.
  PStableLshIndex index{8, default_lsh()};
  Rng rng{5};
  const FeatureVec v = random_unit(rng, 8);
  const FeatureVec other = random_unit(rng, 8);
  index.insert(42, v);
  EXPECT_THROW(index.insert(42, other), std::invalid_argument);
  EXPECT_EQ(index.size(), 1u);
  // The original vector must still be the one indexed, at distance zero.
  const auto result = index.query(v, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 42u);
  EXPECT_FLOAT_EQ(result[0].distance, 0.0f);
  // And exactly one removal succeeds — no stale second copy.
  EXPECT_TRUE(index.remove(42));
  EXPECT_FALSE(index.remove(42));
  EXPECT_TRUE(index.query(v, 1).empty());
}

TEST(Lsh, SlotReuseAfterRemoveStaysConsistent) {
  // remove() leaves an arena hole; the next insert must reuse it without
  // resurrecting the removed id or corrupting lookups.
  PStableLshIndex index{8, default_lsh()};
  Rng rng{6};
  const FeatureVec a = random_unit(rng, 8);
  const FeatureVec b = random_unit(rng, 8);
  index.insert(1, a);
  EXPECT_TRUE(index.remove(1));
  index.insert(2, b);
  EXPECT_EQ(index.size(), 1u);
  const auto hit = index.query(b, 2);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 2u);
  EXPECT_FLOAT_EQ(hit[0].distance, 0.0f);
}

TEST(Lsh, RemoveDeletesFromAllTables) {
  PStableLshIndex index{8, default_lsh()};
  Rng rng{3};
  const FeatureVec v = random_unit(rng, 8);
  index.insert(1, v);
  EXPECT_TRUE(index.remove(1));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query(v, 1).empty());
  EXPECT_FALSE(index.remove(1));
}

TEST(Lsh, NearNeighborRecallHigh) {
  // Points perturbed by sigma << w must be retrieved nearly always.
  PStableLshIndex index{16, default_lsh()};
  Rng rng{7};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 50; ++id) {
    base.push_back(random_unit(rng, 16));
    index.insert(id, base.back());
  }
  int found = 0;
  for (VecId id = 0; id < 50; ++id) {
    FeatureVec q = base[id];
    for (float& x : q) x += static_cast<float>(rng.normal(0.0, 0.01));
    const auto result = index.query(q, 1);
    if (!result.empty() && result[0].id == id) ++found;
  }
  EXPECT_GE(found, 45);
}

TEST(Lsh, DistantPointsRarelyCollide) {
  PStableLshIndex index{16, default_lsh()};
  Rng rng{9};
  for (VecId id = 0; id < 50; ++id) {
    FeatureVec v = random_unit(rng, 16);
    scale_in_place(v, 50.0f);  // spread points far apart
    index.insert(id, v);
  }
  // A far-away random query should scan few candidates.
  FeatureVec q = random_unit(rng, 16);
  scale_in_place(q, -50.0f);
  std::vector<Neighbor> out;
  QueryStats st;
  index.query_into(q, 4, out, &st);
  EXPECT_LT(st.candidates, 25u);
}

TEST(Lsh, ReturnedDistancesAreExact) {
  PStableLshIndex index{4, default_lsh()};
  const FeatureVec v{1.0f, 0.0f, 0.0f, 0.0f};
  index.insert(1, v);
  const FeatureVec q{0.0f, 0.0f, 0.0f, 0.0f};
  const auto result = index.query(q, 1);
  if (!result.empty()) {
    EXPECT_FLOAT_EQ(result[0].distance, 1.0f);
  }
}

TEST(Lsh, RebuildPreservesContents) {
  PStableLshIndex index{8, default_lsh()};
  Rng rng{13};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 30; ++id) {
    base.push_back(random_unit(rng, 8));
    index.insert(id, base.back());
  }
  index.rebuild_with_width(1.2f);
  EXPECT_EQ(index.size(), 30u);
  EXPECT_FLOAT_EQ(index.params().bucket_width, 1.2f);
  int found = 0;
  for (VecId id = 0; id < 30; ++id) {
    const auto result = index.query(base[id], 1);
    if (!result.empty() && result[0].id == id) ++found;
  }
  EXPECT_GE(found, 28);
}

TEST(Lsh, RebuildBadWidthThrows) {
  PStableLshIndex index{8, default_lsh()};
  EXPECT_THROW(index.rebuild_with_width(0.0f), std::invalid_argument);
}

TEST(Lsh, WiderBucketsScanMoreCandidates) {
  Rng rng{15};
  std::vector<FeatureVec> points;
  for (int i = 0; i < 200; ++i) points.push_back(random_unit(rng, 8));

  LshParams narrow = default_lsh();
  narrow.bucket_width = 0.05f;
  LshParams wide = default_lsh();
  wide.bucket_width = 5.0f;
  PStableLshIndex a{8, narrow}, b{8, wide};
  for (VecId id = 0; id < points.size(); ++id) {
    a.insert(id, points[id]);
    b.insert(id, points[id]);
  }
  std::size_t narrow_c = 0, wide_c = 0;
  std::vector<Neighbor> out;
  QueryStats st;
  for (int i = 0; i < 20; ++i) {
    const FeatureVec q = random_unit(rng, 8);
    a.query_into(q, 4, out, &st);
    narrow_c += st.candidates;
    b.query_into(q, 4, out, &st);
    wide_c += st.candidates;
  }
  EXPECT_LT(narrow_c, wide_c);
}

// Property sweep: recall of LSH vs exact kNN across bucket widths.
class LshRecallSweep : public ::testing::TestWithParam<float> {};

TEST_P(LshRecallSweep, Top1RecallAboveFloor) {
  LshParams params = default_lsh();
  params.bucket_width = GetParam();
  PStableLshIndex lsh{8, params};
  ExactKnnIndex exact{8};
  Rng rng{99};
  for (VecId id = 0; id < 300; ++id) {
    // Clustered data (what a cache actually holds): 30 clusters, sigma 0.05.
    FeatureVec center(8, 0.0f);
    Rng crng{id % 30};
    center = random_unit(crng, 8);
    for (float& x : center) x += static_cast<float>(rng.normal(0.0, 0.05));
    lsh.insert(id, center);
    exact.insert(id, center);
  }
  int agree = 0;
  const int queries = 100;
  for (int i = 0; i < queries; ++i) {
    Rng crng{static_cast<std::uint64_t>(i % 30)};
    FeatureVec q = random_unit(crng, 8);
    for (float& x : q) x += static_cast<float>(rng.normal(0.0, 0.05));
    const auto truth = exact.query(q, 1);
    const auto approx = lsh.query(q, 1);
    if (!approx.empty() && !truth.empty() &&
        approx[0].distance <= truth[0].distance * 1.2f + 1e-5f) {
      ++agree;
    }
  }
  // Wide buckets: near-exact recall; even narrow-ish ones stay useful.
  EXPECT_GE(agree, 70) << "width=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, LshRecallSweep,
                         ::testing::Values(0.4f, 0.8f, 1.6f));

// -------------------------------------------------------------- A-LSH

AdaptiveLshParams default_alsh() {
  AdaptiveLshParams p;
  p.lsh = default_lsh();
  p.min_queries_between_rebuilds = 8;
  p.min_size_to_adapt = 8;
  return p;
}

TEST(AdaptiveLsh, BadParamsThrow) {
  AdaptiveLshParams p = default_alsh();
  p.width_factor = 0.0f;
  EXPECT_THROW(AdaptiveLshIndex(8, p), std::invalid_argument);
  p = default_alsh();
  p.ema_alpha = 2.0;
  EXPECT_THROW(AdaptiveLshIndex(8, p), std::invalid_argument);
}

TEST(AdaptiveLsh, NoAdaptationWhenSmall) {
  AdaptiveLshIndex index{8, default_alsh()};
  Rng rng{1};
  for (VecId id = 0; id < 4; ++id) index.insert(id, random_unit(rng, 8));
  for (int i = 0; i < 50; ++i) index.query(random_unit(rng, 8), 2);
  EXPECT_EQ(index.rebuild_count(), 0u);
}

TEST(AdaptiveLsh, AdaptsWidthTowardDataScale) {
  // Data at scale ~0.02 but initial width 0.6: the controller must shrink w.
  AdaptiveLshParams params = default_alsh();
  params.lsh.bucket_width = 0.6f;
  params.width_factor = 4.0f;
  AdaptiveLshIndex index{8, params};
  Rng rng{2};
  const FeatureVec center = random_unit(rng, 8);
  for (VecId id = 0; id < 100; ++id) {
    FeatureVec v = center;
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.01));
    index.insert(id, v);
  }
  for (int i = 0; i < 100; ++i) {
    FeatureVec q = center;
    for (float& x : q) x += static_cast<float>(rng.normal(0.0, 0.01));
    index.query(q, 4);
  }
  EXPECT_GE(index.rebuild_count(), 1u);
  EXPECT_LT(index.current_width(), 0.6f);
}

TEST(AdaptiveLsh, QueriesStillCorrectAfterAdaptation) {
  AdaptiveLshIndex index{8, default_alsh()};
  Rng rng{3};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 100; ++id) {
    base.push_back(random_unit(rng, 8));
    index.insert(id, base[id]);
  }
  for (int round = 0; round < 3; ++round) {
    int found = 0;
    for (VecId id = 0; id < 100; ++id) {
      const auto result = index.query(base[id], 1);
      if (!result.empty() && result[0].id == id) ++found;
    }
    EXPECT_GE(found, 90) << "round " << round
                         << " rebuilds=" << index.rebuild_count();
  }
}

TEST(AdaptiveLsh, InsertRemoveConsistency) {
  AdaptiveLshIndex index{8, default_alsh()};
  Rng rng{4};
  const FeatureVec v = random_unit(rng, 8);
  index.insert(7, v);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.remove(7));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query(v, 1).empty());
}

TEST(AdaptiveLsh, CandidateCountBoundedUnderDensity) {
  // As a dense cache fills, A-LSH keeps candidate sets from exploding the
  // way a too-wide fixed LSH would.
  AdaptiveLshParams params = default_alsh();
  params.lsh.bucket_width = 10.0f;  // pathologically wide start
  params.width_factor = 4.0f;
  AdaptiveLshIndex index{8, params};
  Rng rng{5};
  for (VecId id = 0; id < 500; ++id) {
    index.insert(id, random_unit(rng, 8));
    if (id % 5 == 0) index.query(random_unit(rng, 8), 4);
  }
  // After adaptation the last candidate counts must be well below "all".
  std::vector<Neighbor> out;
  QueryStats st;
  index.query_into(random_unit(rng, 8), 4, out, &st);
  EXPECT_GE(index.rebuild_count(), 1u);
  EXPECT_LT(st.candidates, 400u);
}

// -------------------------------------------------------------- H-kNN

HknnParams default_hknn() {
  HknnParams p;
  p.k = 4;
  p.homogeneity_threshold = 0.8f;
  p.max_distance = 0.5f;
  return p;
}

Label label_from_map(const std::vector<Label>& labels, VecId id) {
  return labels.at(static_cast<std::size_t>(id));
}

TEST(Hknn, EmptyNeighborsAbstains) {
  const auto vote = hknn_vote({}, [](VecId) { return 0; }, default_hknn());
  EXPECT_FALSE(vote.has_value());
}

TEST(Hknn, NearestTooFarAbstains) {
  const std::vector<Neighbor> neighbors{{1, 0.9f}};
  const auto vote =
      hknn_vote(neighbors, [](VecId) { return 3; }, default_hknn());
  EXPECT_FALSE(vote.has_value());
}

TEST(Hknn, HomogeneousNeighborhoodAccepts) {
  const std::vector<Neighbor> neighbors{{1, 0.1f}, {2, 0.12f}, {3, 0.15f}};
  const auto vote =
      hknn_vote(neighbors, [](VecId) { return 7; }, default_hknn());
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->label, 7);
  EXPECT_FLOAT_EQ(vote->homogeneity, 1.0f);
  EXPECT_EQ(vote->voters, 3u);
  EXPECT_FLOAT_EQ(vote->nearest_distance, 0.1f);
}

TEST(Hknn, MixedNeighborhoodAbstains) {
  const std::vector<Label> labels{0, 1, 2, 1, 2};
  const std::vector<Neighbor> neighbors{{1, 0.1f}, {2, 0.1f}, {3, 0.1f},
                                        {4, 0.1f}};
  const auto vote = hknn_vote(
      neighbors, [&](VecId id) { return label_from_map(labels, id); },
      default_hknn());
  EXPECT_FALSE(vote.has_value());
}

TEST(Hknn, PlainKnnAcceptsWhatHknnRejects) {
  const std::vector<Label> labels{0, 1, 2, 1, 2};
  const std::vector<Neighbor> neighbors{{1, 0.1f}, {2, 0.1f}, {3, 0.1f},
                                        {4, 0.1f}};
  const auto vote = plain_knn_vote(
      neighbors, [&](VecId id) { return label_from_map(labels, id); },
      default_hknn());
  ASSERT_TRUE(vote.has_value());  // majority of {1,2,1,2} by id order
  EXPECT_LT(vote->homogeneity, 0.8f);
}

TEST(Hknn, CloserNeighborsWeighMore) {
  // One very close label-A neighbour outweighs two distant label-B ones.
  const std::vector<Label> labels{0, 10, 20, 20};
  const std::vector<Neighbor> neighbors{{1, 0.01f}, {2, 0.4f}, {3, 0.4f}};
  HknnParams params = default_hknn();
  params.homogeneity_threshold = 0.6f;
  const auto vote = hknn_vote(
      neighbors, [&](VecId id) { return label_from_map(labels, id); },
      params);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->label, 10);
}

TEST(Hknn, OnlyKNeighborsVote) {
  HknnParams params = default_hknn();
  params.k = 2;
  const std::vector<Label> labels{0, 5, 5, 9, 9, 9};
  const std::vector<Neighbor> neighbors{
      {1, 0.1f}, {2, 0.11f}, {3, 0.12f}, {4, 0.13f}, {5, 0.14f}};
  const auto vote = hknn_vote(
      neighbors, [&](VecId id) { return label_from_map(labels, id); },
      params);
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->label, 5);  // the 9s (majority overall) never voted
  EXPECT_EQ(vote->voters, 2u);
}

TEST(Hknn, OutOfRangeNeighborsExcluded) {
  const std::vector<Label> labels{0, 5, 9};
  const std::vector<Neighbor> neighbors{{1, 0.1f}, {2, 0.9f}};
  const auto vote = hknn_vote(
      neighbors, [&](VecId id) { return label_from_map(labels, id); },
      default_hknn());
  ASSERT_TRUE(vote.has_value());
  EXPECT_EQ(vote->voters, 1u);
  EXPECT_EQ(vote->label, 5);
}

TEST(Hknn, RequireHomogeneityFlagSelectsPlainVote) {
  // The same mixed neighbourhood through hknn_vote: abstains with the gate
  // on, answers with it off (end-to-end selectable ablation baseline).
  const std::vector<Label> labels{0, 1, 2, 1, 2};
  const std::vector<Neighbor> neighbors{{1, 0.1f}, {2, 0.1f}, {3, 0.1f},
                                        {4, 0.1f}};
  auto label_of = [&](VecId id) { return label_from_map(labels, id); };
  HknnParams gated = default_hknn();
  EXPECT_FALSE(hknn_vote(neighbors, label_of, gated).has_value());
  HknnParams plain = gated;
  plain.require_homogeneity = false;
  EXPECT_TRUE(hknn_vote(neighbors, label_of, plain).has_value());
}

// Threshold sweep: stricter homogeneity accepts strictly less.
class HknnThresholdSweep : public ::testing::TestWithParam<float> {};

TEST_P(HknnThresholdSweep, AcceptanceMonotoneInThreshold) {
  Rng rng{31};
  HknnParams loose = default_hknn();
  loose.homogeneity_threshold = GetParam();
  HknnParams strict = loose;
  strict.homogeneity_threshold = std::min(1.0f, GetParam() + 0.2f);

  int loose_accepts = 0, strict_accepts = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Neighbor> neighbors;
    std::vector<Label> labels(6);
    for (VecId id = 0; id < 5; ++id) {
      neighbors.push_back({id, static_cast<float>(rng.uniform(0.01, 0.4))});
      labels[id] = static_cast<Label>(rng.uniform_u64(3));
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance < b.distance;
              });
    auto label_of = [&](VecId id) { return label_from_map(labels, id); };
    if (hknn_vote(neighbors, label_of, loose)) ++loose_accepts;
    if (hknn_vote(neighbors, label_of, strict)) ++strict_accepts;
  }
  EXPECT_GE(loose_accepts, strict_accepts);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HknnThresholdSweep,
                         ::testing::Values(0.5f, 0.6f, 0.7f, 0.8f));

// ------------------------------------------------------- SQ8 encode

TEST(Sq8, EncodeStatsMatchQuantizeGrid) {
  Rng rng{31};
  const FeatureVec v = random_unit(rng, 16);
  std::vector<std::uint8_t> codes(v.size());
  const Sq8Stats st = sq8_encode(v, codes.data());
  const QuantizedVec q = quantize(v);
  EXPECT_FLOAT_EQ(st.offset, q.offset);
  EXPECT_FLOAT_EQ(st.scale, q.scale);
  EXPECT_EQ(codes, q.codes);
  // recon_norm_sq is the squared norm of the reconstruction.
  const FeatureVec back = dequantize(q);
  float norm_sq = 0.0f;
  for (const float x : back) norm_sq += x * x;
  EXPECT_NEAR(st.recon_norm_sq, norm_sq, 1e-4f);
}

TEST(Sq8, ConstantVectorIsExact) {
  const FeatureVec v(12, 0.75f);
  std::vector<std::uint8_t> codes(v.size(), 0xFF);
  const Sq8Stats st = sq8_encode(v, codes.data());
  EXPECT_FLOAT_EQ(st.scale, 0.0f);
  EXPECT_FLOAT_EQ(st.offset, 0.75f);
  for (const std::uint8_t c : codes) EXPECT_EQ(c, 0);
  EXPECT_NEAR(st.recon_norm_sq, 12 * 0.75f * 0.75f, 1e-5f);
}

TEST(Sq8, NonFiniteInputThrows) {
  std::vector<std::uint8_t> codes(4);
  FeatureVec v{1.0f, 2.0f, std::numeric_limits<float>::quiet_NaN(), 0.0f};
  EXPECT_THROW(sq8_encode(v, codes.data()), std::invalid_argument);
  v[2] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(sq8_encode(v, codes.data()), std::invalid_argument);
  v[2] = -std::numeric_limits<float>::infinity();
  EXPECT_THROW(sq8_encode(v, codes.data()), std::invalid_argument);
  EXPECT_THROW(quantize(v), std::invalid_argument);
}

TEST(Sq8, GridBoundsSaturateAtExtremeCodes) {
  const FeatureVec v{-2.0f, 2.0f, 0.0f};
  std::vector<std::uint8_t> codes(v.size());
  const Sq8Stats st = sq8_encode(v, codes.data());
  EXPECT_EQ(codes[0], 0);     // min of the grid
  EXPECT_EQ(codes[1], 255);   // max of the grid
  EXPECT_NEAR(st.offset + st.scale * 255.0f, 2.0f, 1e-3f);
}

TEST(Sq8, EmptyVectorEncodesToZeroStats) {
  const Sq8Stats st = sq8_encode(std::span<const float>{}, nullptr);
  EXPECT_FLOAT_EQ(st.offset, 0.0f);
  EXPECT_FLOAT_EQ(st.scale, 0.0f);
  EXPECT_FLOAT_EQ(st.recon_norm_sq, 0.0f);
}

// ------------------------------------------------------- Quantized LSH scan

LshParams quantized_lsh() {
  LshParams p;
  p.num_tables = 6;
  p.hashes_per_table = 6;
  p.bucket_width = 0.6f;
  p.seed = 21;
  p.quantize.enabled = true;
  p.quantize.rerank_k = 32;
  return p;
}

TEST(LshQuantized, ReturnedDistancesAreFloatExact) {
  // The exact re-rank re-scores survivors on the float arena, so every
  // returned distance must match the float index bit for bit.
  PStableLshIndex q8{8, quantized_lsh()};
  LshParams float_params = quantized_lsh();
  float_params.quantize.enabled = false;
  PStableLshIndex flt{8, float_params};
  Rng rng{7};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 30; ++id) {
    base.push_back(random_unit(rng, 8));
    q8.insert(id, base[id]);
    flt.insert(id, base[id]);
  }
  for (VecId id = 0; id < 30; ++id) {
    const auto a = q8.query(base[id], 4);
    const auto b = flt.query(base[id], 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST(LshQuantized, ReconstructedCoherentUnderSlotReuse) {
  // Codes live in a slot-indexed sidecar; remove + reinsert must overwrite
  // the reused slot's row, never leave a stale code row behind.
  PStableLshIndex index{8, quantized_lsh()};
  Rng rng{11};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 10; ++id) {
    base.push_back(random_unit(rng, 8));
    index.insert(id, base[id]);
  }
  ASSERT_TRUE(index.remove(3));
  ASSERT_TRUE(index.remove(7));
  const FeatureVec v100 = random_unit(rng, 8);
  const FeatureVec v101 = random_unit(rng, 8);
  index.insert(100, v100);  // reuses a freed slot
  index.insert(101, v101);
  auto expect_recon = [&](VecId id, const FeatureVec& v) {
    const FeatureVec got = index.reconstructed(id);
    const FeatureVec want = dequantize(quantize(v));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i], want[i]) << "id " << id << " dim " << i;
    }
  };
  expect_recon(100, v100);
  expect_recon(101, v101);
  for (VecId id = 0; id < 10; ++id) {
    if (id == 3 || id == 7) continue;
    expect_recon(id, base[id]);
  }
  EXPECT_TRUE(index.reconstructed(3).empty());  // removed id
}

TEST(LshQuantized, NonFiniteInsertThrowsAndLeavesIndexIntact) {
  PStableLshIndex index{4, quantized_lsh()};
  index.insert(1, {1.0f, 0.0f, 0.0f, 0.0f});
  FeatureVec bad{0.0f, std::numeric_limits<float>::quiet_NaN(), 0.0f, 0.0f};
  EXPECT_THROW(index.insert(2, bad), std::invalid_argument);
  EXPECT_EQ(index.size(), 1u);
  // The id must not be half-claimed: a finite retry succeeds.
  index.insert(2, {0.0f, 1.0f, 0.0f, 0.0f});
  EXPECT_EQ(index.size(), 2u);
}

TEST(LshQuantized, RerankSurvivorsReported) {
  PStableLshIndex q8{8, quantized_lsh()};
  LshParams float_params = quantized_lsh();
  float_params.quantize.enabled = false;
  PStableLshIndex flt{8, float_params};
  Rng rng{19};
  for (VecId id = 0; id < 20; ++id) {
    const FeatureVec v = random_unit(rng, 8);
    q8.insert(id, v);
    flt.insert(id, v);
  }
  const FeatureVec probe = random_unit(rng, 8);
  std::vector<Neighbor> out;
  QueryStats st;
  q8.query_into(probe, 4, out, &st);
  if (!out.empty()) {
    EXPECT_GT(st.rerank_survivors, 0u);
    EXPECT_LE(st.rerank_survivors, st.candidates);
  }
  flt.query_into(probe, 4, out, &st);
  EXPECT_EQ(st.rerank_survivors, 0u);
  EXPECT_TRUE(flt.reconstructed(0).empty());  // float index has no codes
}

TEST(LshQuantized, RebuildPreservesCodes) {
  PStableLshIndex index{8, quantized_lsh()};
  Rng rng{23};
  std::vector<FeatureVec> base;
  for (VecId id = 0; id < 30; ++id) {
    base.push_back(random_unit(rng, 8));
    index.insert(id, base.back());
  }
  index.rebuild_with_width(1.2f);
  int found = 0;
  for (VecId id = 0; id < 30; ++id) {
    const auto result = index.query(base[id], 1);
    if (!result.empty() && result[0].id == id) {
      EXPECT_FLOAT_EQ(result[0].distance, 0.0f);
      ++found;
    }
    const FeatureVec got = index.reconstructed(id);
    const FeatureVec want = dequantize(quantize(base[id]));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i], want[i]);
    }
  }
  EXPECT_GE(found, 28);
}

}  // namespace
}  // namespace apx

// Unit + property tests for feature extraction. The key property, tested
// per extractor via TEST_P, is metric usefulness: same-class views must be
// closer in feature space than different-class views.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/features/extractor.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/scene.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

SceneGenerator::Config scene_config() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 8;
  cfg.image_size = 32;
  cfg.seed = 11;
  return cfg;
}

std::unique_ptr<FeatureExtractor> make_by_name(const std::string& name) {
  if (name == "downsample") return make_downsample_extractor();
  if (name == "histogram") return make_histogram_extractor();
  if (name == "hog") return make_hog_extractor();
  if (name == "cnn-embed") return make_cnn_extractor();
  return nullptr;
}

class ExtractorSuite : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<FeatureExtractor> extractor_ = make_by_name(GetParam());
  SceneGenerator scenes_{scene_config()};
};

TEST_P(ExtractorSuite, NameMatches) {
  EXPECT_EQ(extractor_->name(), GetParam());
}

TEST_P(ExtractorSuite, OutputHasDeclaredDim) {
  const Image img = scenes_.render(0, ViewParams{});
  EXPECT_EQ(extractor_->extract(img).size(), extractor_->dim());
}

TEST_P(ExtractorSuite, OutputIsUnitNorm) {
  const Image img = scenes_.render(1, ViewParams{});
  const FeatureVec v = extractor_->extract(img);
  EXPECT_NEAR(norm(v), 1.0f, 1e-4f);
}

TEST_P(ExtractorSuite, Deterministic) {
  const Image img = scenes_.render(2, ViewParams{});
  EXPECT_EQ(extractor_->extract(img), extractor_->extract(img));
}

TEST_P(ExtractorSuite, PositiveLatency) {
  EXPECT_GT(extractor_->latency(), 0);
}

TEST_P(ExtractorSuite, IntraClassCloserThanInterClass) {
  // Mean distance between views of the same class vs views of different
  // classes — the property that makes features usable as cache keys.
  Rng rng{5};
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (int c = 0; c < 4; ++c) {
    ViewParams a, b;
    a.noise_sigma = b.noise_sigma = 0.02f;
    a.noise_seed = rng.next_u64();
    b.noise_seed = rng.next_u64();
    b.dx = 0.05f;
    const FeatureVec va = extractor_->extract(scenes_.render(c, a));
    const FeatureVec vb = extractor_->extract(scenes_.render(c, b));
    intra += l2(va, vb);
    ++intra_n;
    const FeatureVec vo =
        extractor_->extract(scenes_.render((c + 4) % 8, a));
    inter += l2(va, vo);
    ++inter_n;
  }
  EXPECT_LT(intra / static_cast<float>(intra_n),
            inter / static_cast<float>(inter_n));
}

TEST_P(ExtractorSuite, RobustToSensorNoise) {
  // Two noise realizations of the identical view stay close.
  ViewParams a, b;
  a.noise_sigma = b.noise_sigma = 0.03f;
  a.noise_seed = 1;
  b.noise_seed = 2;
  const FeatureVec va = extractor_->extract(scenes_.render(0, a));
  const FeatureVec vb = extractor_->extract(scenes_.render(0, b));
  EXPECT_LT(l2(va, vb), 0.35f);
}

INSTANTIATE_TEST_SUITE_P(AllExtractors, ExtractorSuite,
                         ::testing::Values("downsample", "histogram", "hog",
                                           "cnn-embed"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------- params

TEST(Extractors, DownsampleDimIsSideSquared) {
  EXPECT_EQ(make_downsample_extractor(6)->dim(), 36u);
}

TEST(Extractors, HistogramDimIsThreeTimesBins) {
  EXPECT_EQ(make_histogram_extractor(10)->dim(), 30u);
}

TEST(Extractors, HogDimIsCellsSquaredTimesOrientations) {
  EXPECT_EQ(make_hog_extractor(3, 6)->dim(), 54u);
}

TEST(Extractors, BadParamsThrow) {
  EXPECT_THROW(make_downsample_extractor(0), std::invalid_argument);
  EXPECT_THROW(make_histogram_extractor(-1), std::invalid_argument);
  EXPECT_THROW(make_hog_extractor(0, 8), std::invalid_argument);
}

TEST(Extractors, ConfiguredLatencyRespected) {
  EXPECT_EQ(make_downsample_extractor(8, 7 * kMillisecond)->latency(),
            7 * kMillisecond);
}

// ---------------------------------------------------------------- MiniCnn

TEST(MiniCnn, EmbeddingDimConfigurable) {
  const MiniCnn cnn{32, 5};
  EXPECT_EQ(cnn.dim(), 32u);
  const SceneGenerator scenes{scene_config()};
  EXPECT_EQ(cnn.embed(scenes.render(0, ViewParams{})).size(), 32u);
}

TEST(MiniCnn, ZeroDimThrows) { EXPECT_THROW(MiniCnn(0, 5), std::invalid_argument); }

TEST(MiniCnn, SameSeedSameWeights) {
  const SceneGenerator scenes{scene_config()};
  const Image img = scenes.render(3, ViewParams{});
  const MiniCnn a{64, 7}, b{64, 7};
  EXPECT_EQ(a.embed(img), b.embed(img));
}

TEST(MiniCnn, DifferentSeedDifferentEmbedding) {
  const SceneGenerator scenes{scene_config()};
  const Image img = scenes.render(3, ViewParams{});
  const MiniCnn a{64, 7}, b{64, 8};
  EXPECT_NE(a.embed(img), b.embed(img));
}

TEST(MiniCnn, HandlesGrayscaleInput) {
  auto cfg = scene_config();
  cfg.channels = 1;
  const SceneGenerator scenes{cfg};
  const MiniCnn cnn{64, 7};
  const FeatureVec v = cnn.embed(scenes.render(0, ViewParams{}));
  EXPECT_NEAR(norm(v), 1.0f, 1e-4f);
}

TEST(MiniCnn, HandlesNonSquareInput) {
  Image img(48, 24, 3);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 48; ++x) img.at(x, y, 0) = 0.5f;
  }
  const MiniCnn cnn{64, 7};
  EXPECT_EQ(cnn.embed(img).size(), 64u);
}

TEST(MiniCnn, ParameterCountMatchesArchitecture) {
  const MiniCnn cnn{64, 7};
  // conv1: 8*3*9+8, conv2: 16*8*9+16, conv3: 32*16*9+32, fc: 64*32+64.
  const std::size_t expected = (8 * 3 * 9 + 8) + (16 * 8 * 9 + 16) +
                               (32 * 16 * 9 + 32) + (64 * 32 + 64);
  EXPECT_EQ(cnn.parameter_count(), expected);
}

// ------------------------------------------------- staged forward pass
//
// The staged path (ForwardState / forward / forward_spliced) must be
// bit-identical to the monolithic embed() — the region-reuse rung's whole
// correctness story rests on exact equality, not numerical closeness.

/// Marks every input pixel of block (bx, by) of a grid x grid partition of
/// a side x side mask.
void mark_block(std::vector<std::uint8_t>& mask, int side, int grid, int bx,
                int by) {
  const int bw = side / grid;
  for (int y = by * bw; y < (by + 1) * bw; ++y) {
    for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
      mask[static_cast<std::size_t>(y) * side + x] = 1;
    }
  }
}

/// Perturbs every pixel of block (bx, by) of `img` (side divisible by grid).
void perturb_block(Image& img, int grid, int bx, int by) {
  const int bw = img.width() / grid;
  for (int y = by * bw; y < (by + 1) * bw; ++y) {
    for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        img.at(x, y, c) = 1.0f - img.at(x, y, c);
      }
    }
  }
}

class MiniCnnStaged : public ::testing::Test {
 protected:
  /// Splices `current` against the cached activations of `keyframe`, with
  /// dirty masks propagated from `input_mask`, and checks bit-identity
  /// against a from-scratch embed of `current`.
  void expect_splice_matches_full(const Image& keyframe, const Image& current,
                                  const std::vector<std::uint8_t>& input_mask,
                                  int expected_resume_stage) {
    const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
    MiniCnn::ForwardState key_state;
    FeatureVec key_out;
    cnn_.embed_into(keyframe, key_state, key_out);
    const MiniCnn::Tensor cached_stage1 = key_state.stage1;
    const MiniCnn::Tensor cached_stage2 = key_state.stage2;

    std::vector<std::uint8_t> stage1_mask(plan.stage1.size() /
                                          plan.stage1.channels);
    std::vector<std::uint8_t> stage2_mask(plan.stage2.size() /
                                          plan.stage2.channels);
    MiniCnn::propagate_dirty(input_mask, plan.input.width, plan.input.height,
                             stage1_mask);
    MiniCnn::propagate_dirty(stage1_mask, plan.stage1.width, plan.stage1.height,
                             stage2_mask);

    MiniCnn::ForwardState state;
    cnn_.prepare_input(current, state);
    FeatureVec spliced;
    const MiniCnn::SpliceStats stats = cnn_.forward_spliced(
        state, cached_stage1, cached_stage2, stage1_mask, stage2_mask, spliced);
    EXPECT_EQ(stats.resume_stage, expected_resume_stage);

    EXPECT_EQ(spliced, cnn_.embed(current));
    // The state must also hold the complete activations of the current
    // frame — that is what gets installed back into the cache.
    MiniCnn::ForwardState full;
    FeatureVec full_out;
    cnn_.embed_into(current, full, full_out);
    EXPECT_EQ(state.stage1, full.stage1);
    EXPECT_EQ(state.stage2, full.stage2);
    EXPECT_EQ(state.stage3, full.stage3);
  }

  MiniCnn cnn_{64, 7};
  SceneGenerator scenes_{scene_config()};
};

TEST_F(MiniCnnStaged, PlanMatchesArchitecture) {
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  EXPECT_EQ(plan.input.width, 32);
  EXPECT_EQ(plan.input.channels, 3);
  EXPECT_EQ(plan.stage1.width, 16);
  EXPECT_EQ(plan.stage1.channels, 8);
  EXPECT_EQ(plan.stage2.width, 8);
  EXPECT_EQ(plan.stage2.channels, 16);
  EXPECT_EQ(plan.stage3.width, 8);
  EXPECT_EQ(plan.stage3.channels, 32);
  // MACs: out_w * out_h * out_c * 9 * in_c per conv.
  EXPECT_EQ(plan.conv_macs[0], 32.0 * 32 * 8 * 9 * 3);
  EXPECT_EQ(plan.conv_macs[1], 16.0 * 16 * 16 * 9 * 8);
  EXPECT_EQ(plan.conv_macs[2], 8.0 * 8 * 32 * 9 * 16);
  EXPECT_EQ(plan.total_macs(),
            plan.conv_macs[0] + plan.conv_macs[1] + plan.conv_macs[2]);
}

TEST_F(MiniCnnStaged, EmbedIntoMatchesEmbedAcrossInputShapes) {
  // Native 32x32, upscaled, non-square, and grayscale inputs all route
  // through prepare_input's resize/expansion.
  std::vector<Image> inputs;
  inputs.push_back(scenes_.render(0, ViewParams{}));
  auto big = scene_config();
  big.image_size = 48;
  inputs.push_back(SceneGenerator{big}.render(1, ViewParams{}));
  Image wide(48, 24, 3);
  Image gray(32, 32, 1);
  Rng rng{21};
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 48; ++x) {
      for (int c = 0; c < 3; ++c) {
        wide.at(x, y, c) = static_cast<float>(rng.uniform());
      }
    }
  }
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      gray.at(x, y, 0) = static_cast<float>(rng.uniform());
    }
  }
  inputs.push_back(std::move(wide));
  inputs.push_back(std::move(gray));

  MiniCnn::ForwardState state;  // deliberately reused across shapes
  FeatureVec out;
  for (const Image& img : inputs) {
    cnn_.embed_into(img, state, out);
    EXPECT_EQ(out, cnn_.embed(img));
  }
}

TEST_F(MiniCnnStaged, EmbedIntoMatchesEmbedWithPool) {
  ThreadPool pool{3};
  const Image img = scenes_.render(2, ViewParams{});
  MiniCnn::ForwardState state;
  FeatureVec out;
  cnn_.embed_into(img, state, out, &pool);
  EXPECT_EQ(out, cnn_.embed(img)) << "pool-backed staged path diverged";
}

TEST_F(MiniCnnStaged, ForwardResumesBitIdenticallyFromEveryStage) {
  const Image img = scenes_.render(4, ViewParams{});
  MiniCnn::ForwardState state;
  FeatureVec reference;
  cnn_.embed_into(img, state, reference);
  for (int from_stage = 1; from_stage <= 2; ++from_stage) {
    // Clobber everything downstream of the resume point; forward() must
    // rebuild it from the surviving stage tensor alone.
    MiniCnn::ForwardState resumed;
    resumed.stage1 = state.stage1;
    if (from_stage == 2) resumed.stage2 = state.stage2;
    FeatureVec out;
    cnn_.forward(resumed, from_stage, out);
    EXPECT_EQ(out, reference) << "from_stage=" << from_stage;
  }
}

TEST_F(MiniCnnStaged, ForwardRejectsBadResume) {
  const Image img = scenes_.render(0, ViewParams{});
  MiniCnn::ForwardState state;
  FeatureVec out;
  EXPECT_THROW(cnn_.forward(state, 3, out), std::invalid_argument);
  EXPECT_THROW(cnn_.forward(state, -1, out), std::invalid_argument);
  // Resuming from a stage whose tensor was never produced must throw, not
  // read stale-sized memory.
  EXPECT_THROW(cnn_.forward(state, 1, out), std::invalid_argument);
  state.stage1.assign(MiniCnn::plan().stage1.size() - 1, 0.0f);
  EXPECT_THROW(cnn_.forward(state, 1, out), std::invalid_argument);
}

TEST_F(MiniCnnStaged, FullSpliceResumesAtConv3) {
  // Empty dirty masks: the embedding must be the *keyframe's*, recomputed
  // from its cached stage-2 tensor alone (degenerate full-splice case).
  const Image keyframe = scenes_.render(1, ViewParams{});
  const Image current = scenes_.render(5, ViewParams{});  // ignored pixels
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  MiniCnn::ForwardState key_state;
  FeatureVec key_out;
  cnn_.embed_into(keyframe, key_state, key_out);

  const std::vector<std::uint8_t> stage1_mask(
      plan.stage1.size() / plan.stage1.channels, 0);
  const std::vector<std::uint8_t> stage2_mask(
      plan.stage2.size() / plan.stage2.channels, 0);
  MiniCnn::ForwardState state;
  cnn_.prepare_input(current, state);
  FeatureVec out;
  const MiniCnn::SpliceStats stats = cnn_.forward_spliced(
      state, key_state.stage1, key_state.stage2, stage1_mask, stage2_mask, out);
  EXPECT_EQ(stats.resume_stage, 2);
  EXPECT_EQ(stats.stage1_recomputed, 0);
  EXPECT_EQ(stats.stage2_recomputed, 0);
  EXPECT_EQ(out, key_out);
  EXPECT_EQ(state.stage1, key_state.stage1);
  EXPECT_EQ(state.stage2, key_state.stage2);
}

TEST_F(MiniCnnStaged, ZeroSpliceMatchesFullForward) {
  // All-dirty masks: nothing is reused, so the result must be bit-identical
  // to a plain forward of the current frame even against an unrelated
  // keyframe (degenerate zero-splice case).
  const Image keyframe = scenes_.render(2, ViewParams{});
  const Image current = scenes_.render(6, ViewParams{});
  std::vector<std::uint8_t> input_mask(
      static_cast<std::size_t>(MiniCnn::kInputSide) * MiniCnn::kInputSide, 1);
  expect_splice_matches_full(keyframe, current, input_mask,
                             /*expected_resume_stage=*/1);
}

TEST_F(MiniCnnStaged, PartialSpliceIsBitIdenticalForEveryBlock) {
  // Flip one block at a time (every position in a 4x4 grid, interior and
  // border) and splice the rest from the keyframe's cached activations.
  const int grid = 4;
  const Image keyframe = scenes_.render(3, ViewParams{});
  for (int by = 0; by < grid; ++by) {
    for (int bx = 0; bx < grid; ++bx) {
      Image current = keyframe;
      perturb_block(current, grid, bx, by);
      std::vector<std::uint8_t> input_mask(
          static_cast<std::size_t>(MiniCnn::kInputSide) * MiniCnn::kInputSide,
          0);
      mark_block(input_mask, MiniCnn::kInputSide, grid, bx, by);
      SCOPED_TRACE("block (" + std::to_string(bx) + "," + std::to_string(by) +
                   ")");
      expect_splice_matches_full(keyframe, current, input_mask,
                                 /*expected_resume_stage=*/1);
    }
  }
}

TEST_F(MiniCnnStaged, PartialSpliceHandlesMultipleScatteredBlocks) {
  const int grid = 8;  // finest legal grid: one block = one stage-2 pixel
  const Image keyframe = scenes_.render(7, ViewParams{});
  Image current = keyframe;
  std::vector<std::uint8_t> input_mask(
      static_cast<std::size_t>(MiniCnn::kInputSide) * MiniCnn::kInputSide, 0);
  const std::vector<std::pair<int, int>> blocks{{0, 0}, {7, 7}, {3, 4}, {5, 1}};
  for (const auto& [bx, by] : blocks) {
    perturb_block(current, grid, bx, by);
    mark_block(input_mask, MiniCnn::kInputSide, grid, bx, by);
  }
  expect_splice_matches_full(keyframe, current, input_mask,
                             /*expected_resume_stage=*/1);
}

TEST_F(MiniCnnStaged, SpliceRejectsBadTensorSizes) {
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  MiniCnn::ForwardState state;
  cnn_.prepare_input(scenes_.render(0, ViewParams{}), state);
  const MiniCnn::Tensor stage1(plan.stage1.size(), 0.0f);
  const MiniCnn::Tensor stage2(plan.stage2.size(), 0.0f);
  const std::vector<std::uint8_t> mask1(plan.stage1.size() /
                                        plan.stage1.channels);
  const std::vector<std::uint8_t> mask2(plan.stage2.size() /
                                        plan.stage2.channels);
  FeatureVec out;
  const MiniCnn::Tensor short_tensor(3, 0.0f);
  const std::vector<std::uint8_t> short_mask(3);
  EXPECT_THROW(
      cnn_.forward_spliced(state, short_tensor, stage2, mask1, mask2, out),
      std::invalid_argument);
  EXPECT_THROW(
      cnn_.forward_spliced(state, stage1, short_tensor, mask1, mask2, out),
      std::invalid_argument);
  EXPECT_THROW(
      cnn_.forward_spliced(state, stage1, stage2, short_mask, mask2, out),
      std::invalid_argument);
  EXPECT_THROW(
      cnn_.forward_spliced(state, stage1, stage2, mask1, short_mask, out),
      std::invalid_argument);
}

TEST(MiniCnnDirty, PropagateDirtyAppliesConvPoolFootprint) {
  // A single dirty input pixel at (x, y) dirties output pixel (px, py) iff
  // the 4x4 footprint [2px-1, 2px+2] x [2py-1, 2py+2] contains it.
  const int w = 8, h = 8;
  std::vector<std::uint8_t> in(static_cast<std::size_t>(w) * h, 0);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w / 2) * (h / 2), 0);
  in[static_cast<std::size_t>(5) * w + 5] = 1;  // (5, 5)
  MiniCnn::propagate_dirty(in, w, h, out);
  for (int py = 0; py < h / 2; ++py) {
    for (int px = 0; px < w / 2; ++px) {
      const bool covers_x = (2 * px - 1 <= 5) && (5 <= 2 * px + 2);
      const bool covers_y = (2 * py - 1 <= 5) && (5 <= 2 * py + 2);
      EXPECT_EQ(out[static_cast<std::size_t>(py) * (w / 2) + px] != 0,
                covers_x && covers_y)
          << "px=" << px << " py=" << py;
    }
  }
}

TEST(MiniCnnDirty, PropagateDirtyCornerPixelStaysLocal) {
  // Clamp padding reads no farther than the clipped footprint: a dirty
  // corner pixel dirties exactly the corner output pixel.
  const int w = 8, h = 8;
  std::vector<std::uint8_t> in(static_cast<std::size_t>(w) * h, 0);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w / 2) * (h / 2), 9);
  in[0] = 1;  // (0, 0)
  MiniCnn::propagate_dirty(in, w, h, out);
  int set = 0;
  for (const std::uint8_t v : out) set += (v != 0);
  EXPECT_EQ(set, 1);
  EXPECT_NE(out[0], 0);
}

TEST(MiniCnnDirty, CleanMaskStaysClean) {
  const int w = 32, h = 32;
  const std::vector<std::uint8_t> in(static_cast<std::size_t>(w) * h, 0);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w / 2) * (h / 2), 9);
  MiniCnn::propagate_dirty(in, w, h, out);
  for (const std::uint8_t v : out) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace apx

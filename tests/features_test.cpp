// Unit + property tests for feature extraction. The key property, tested
// per extractor via TEST_P, is metric usefulness: same-class views must be
// closer in feature space than different-class views.

#include <gtest/gtest.h>

#include <memory>

#include "src/features/extractor.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/scene.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

SceneGenerator::Config scene_config() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 8;
  cfg.image_size = 32;
  cfg.seed = 11;
  return cfg;
}

std::unique_ptr<FeatureExtractor> make_by_name(const std::string& name) {
  if (name == "downsample") return make_downsample_extractor();
  if (name == "histogram") return make_histogram_extractor();
  if (name == "hog") return make_hog_extractor();
  if (name == "cnn-embed") return make_cnn_extractor();
  return nullptr;
}

class ExtractorSuite : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<FeatureExtractor> extractor_ = make_by_name(GetParam());
  SceneGenerator scenes_{scene_config()};
};

TEST_P(ExtractorSuite, NameMatches) {
  EXPECT_EQ(extractor_->name(), GetParam());
}

TEST_P(ExtractorSuite, OutputHasDeclaredDim) {
  const Image img = scenes_.render(0, ViewParams{});
  EXPECT_EQ(extractor_->extract(img).size(), extractor_->dim());
}

TEST_P(ExtractorSuite, OutputIsUnitNorm) {
  const Image img = scenes_.render(1, ViewParams{});
  const FeatureVec v = extractor_->extract(img);
  EXPECT_NEAR(norm(v), 1.0f, 1e-4f);
}

TEST_P(ExtractorSuite, Deterministic) {
  const Image img = scenes_.render(2, ViewParams{});
  EXPECT_EQ(extractor_->extract(img), extractor_->extract(img));
}

TEST_P(ExtractorSuite, PositiveLatency) {
  EXPECT_GT(extractor_->latency(), 0);
}

TEST_P(ExtractorSuite, IntraClassCloserThanInterClass) {
  // Mean distance between views of the same class vs views of different
  // classes — the property that makes features usable as cache keys.
  Rng rng{5};
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (int c = 0; c < 4; ++c) {
    ViewParams a, b;
    a.noise_sigma = b.noise_sigma = 0.02f;
    a.noise_seed = rng.next_u64();
    b.noise_seed = rng.next_u64();
    b.dx = 0.05f;
    const FeatureVec va = extractor_->extract(scenes_.render(c, a));
    const FeatureVec vb = extractor_->extract(scenes_.render(c, b));
    intra += l2(va, vb);
    ++intra_n;
    const FeatureVec vo =
        extractor_->extract(scenes_.render((c + 4) % 8, a));
    inter += l2(va, vo);
    ++inter_n;
  }
  EXPECT_LT(intra / static_cast<float>(intra_n),
            inter / static_cast<float>(inter_n));
}

TEST_P(ExtractorSuite, RobustToSensorNoise) {
  // Two noise realizations of the identical view stay close.
  ViewParams a, b;
  a.noise_sigma = b.noise_sigma = 0.03f;
  a.noise_seed = 1;
  b.noise_seed = 2;
  const FeatureVec va = extractor_->extract(scenes_.render(0, a));
  const FeatureVec vb = extractor_->extract(scenes_.render(0, b));
  EXPECT_LT(l2(va, vb), 0.35f);
}

INSTANTIATE_TEST_SUITE_P(AllExtractors, ExtractorSuite,
                         ::testing::Values("downsample", "histogram", "hog",
                                           "cnn-embed"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------- params

TEST(Extractors, DownsampleDimIsSideSquared) {
  EXPECT_EQ(make_downsample_extractor(6)->dim(), 36u);
}

TEST(Extractors, HistogramDimIsThreeTimesBins) {
  EXPECT_EQ(make_histogram_extractor(10)->dim(), 30u);
}

TEST(Extractors, HogDimIsCellsSquaredTimesOrientations) {
  EXPECT_EQ(make_hog_extractor(3, 6)->dim(), 54u);
}

TEST(Extractors, BadParamsThrow) {
  EXPECT_THROW(make_downsample_extractor(0), std::invalid_argument);
  EXPECT_THROW(make_histogram_extractor(-1), std::invalid_argument);
  EXPECT_THROW(make_hog_extractor(0, 8), std::invalid_argument);
}

TEST(Extractors, ConfiguredLatencyRespected) {
  EXPECT_EQ(make_downsample_extractor(8, 7 * kMillisecond)->latency(),
            7 * kMillisecond);
}

// ---------------------------------------------------------------- MiniCnn

TEST(MiniCnn, EmbeddingDimConfigurable) {
  const MiniCnn cnn{32, 5};
  EXPECT_EQ(cnn.dim(), 32u);
  const SceneGenerator scenes{scene_config()};
  EXPECT_EQ(cnn.embed(scenes.render(0, ViewParams{})).size(), 32u);
}

TEST(MiniCnn, ZeroDimThrows) { EXPECT_THROW(MiniCnn(0, 5), std::invalid_argument); }

TEST(MiniCnn, SameSeedSameWeights) {
  const SceneGenerator scenes{scene_config()};
  const Image img = scenes.render(3, ViewParams{});
  const MiniCnn a{64, 7}, b{64, 7};
  EXPECT_EQ(a.embed(img), b.embed(img));
}

TEST(MiniCnn, DifferentSeedDifferentEmbedding) {
  const SceneGenerator scenes{scene_config()};
  const Image img = scenes.render(3, ViewParams{});
  const MiniCnn a{64, 7}, b{64, 8};
  EXPECT_NE(a.embed(img), b.embed(img));
}

TEST(MiniCnn, HandlesGrayscaleInput) {
  auto cfg = scene_config();
  cfg.channels = 1;
  const SceneGenerator scenes{cfg};
  const MiniCnn cnn{64, 7};
  const FeatureVec v = cnn.embed(scenes.render(0, ViewParams{}));
  EXPECT_NEAR(norm(v), 1.0f, 1e-4f);
}

TEST(MiniCnn, HandlesNonSquareInput) {
  Image img(48, 24, 3);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 48; ++x) img.at(x, y, 0) = 0.5f;
  }
  const MiniCnn cnn{64, 7};
  EXPECT_EQ(cnn.embed(img).size(), 64u);
}

TEST(MiniCnn, ParameterCountMatchesArchitecture) {
  const MiniCnn cnn{64, 7};
  // conv1: 8*3*9+8, conv2: 16*8*9+16, conv3: 32*16*9+32, fc: 64*32+64.
  const std::size_t expected = (8 * 3 * 9 + 8) + (16 * 8 * 9 + 16) +
                               (32 * 16 * 9 + 32) + (64 * 32 + 64);
  EXPECT_EQ(cnn.parameter_count(), expected);
}

}  // namespace
}  // namespace apx

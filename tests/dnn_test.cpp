// Unit tests for the DNN substitute layer: profiles, the accuracy oracle,
// and the real nearest-centroid classifier.

#include <gtest/gtest.h>

#include "src/dnn/centroid.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/util/stats.hpp"

namespace apx {
namespace {

TEST(Zoo, ProfilesOrderedByWeight) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 3u);
  EXPECT_LT(zoo[0].mean_latency, zoo[1].mean_latency);
  EXPECT_LT(zoo[1].mean_latency, zoo[2].mean_latency);
  EXPECT_LT(zoo[0].energy_mj, zoo[2].energy_mj);
}

TEST(Zoo, MobileNetProfileMagnitudes) {
  const ModelProfile p = mobilenet_v2_profile();
  EXPECT_EQ(p.name, "mobilenet_v2");
  EXPECT_GE(p.mean_latency, 20 * kMillisecond);
  EXPECT_LE(p.mean_latency, 200 * kMillisecond);
  EXPECT_GT(p.top1_accuracy, 0.9);
}

TEST(ProfileLatency, SampleWithinTruncationBand) {
  const ModelProfile p = mobilenet_v2_profile();
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const SimDuration lat = sample_profile_latency(p, rng);
    EXPECT_GE(lat, static_cast<SimDuration>(0.8 * p.mean_latency));
    EXPECT_LE(lat, static_cast<SimDuration>(1.5 * p.mean_latency));
  }
}

TEST(ProfileLatency, MeanApproximatelyNominal) {
  const ModelProfile p = mobilenet_v2_profile();
  Rng rng{2};
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sample_profile_latency(p, rng));
  }
  EXPECT_NEAR(sum / n / static_cast<double>(p.mean_latency), 1.0, 0.05);
}

// ---------------------------------------------------------------- Oracle

TEST(Oracle, BadParamsThrow) {
  EXPECT_THROW(make_oracle_model(mobilenet_v2_profile(), 0),
               std::invalid_argument);
  EXPECT_THROW(make_oracle_model(mobilenet_v2_profile(), 4, 0),
               std::invalid_argument);
}

TEST(Oracle, AccuracyMatchesProfile) {
  ModelProfile p = mobilenet_v2_profile();
  p.top1_accuracy = 0.9;
  const auto model = make_oracle_model(p, 16);
  Rng rng{5};
  const Image img(4, 4, 1);
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Label truth = static_cast<Label>(i % 16);
    if (model->infer(img, truth, rng).label == truth) ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.9, 0.01);
}

TEST(Oracle, WrongAnswersAreNeverTruth) {
  ModelProfile p = mobilenet_v2_profile();
  p.top1_accuracy = 0.0;  // always wrong
  const auto model = make_oracle_model(p, 8);
  Rng rng{7};
  const Image img(4, 4, 1);
  for (int i = 0; i < 500; ++i) {
    const Label truth = static_cast<Label>(i % 8);
    const Prediction pred = model->infer(img, truth, rng);
    EXPECT_NE(pred.label, truth);
    EXPECT_GE(pred.label, 0);
    EXPECT_LT(pred.label, 8);
  }
}

TEST(Oracle, ConfusionErrorsStayInGroup) {
  ModelProfile p = mobilenet_v2_profile();
  p.top1_accuracy = 0.0;
  const auto model = make_oracle_model(p, 16, /*confusion_group_size=*/4);
  Rng rng{9};
  const Image img(4, 4, 1);
  int in_group = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Label truth = 5;  // group {4,5,6,7}
    const Label got = model->infer(img, truth, rng).label;
    if (got >= 4 && got < 8) ++in_group;
  }
  EXPECT_GT(in_group, n * 9 / 10);
}

TEST(Oracle, SingleClassAlwaysCorrect) {
  ModelProfile p = mobilenet_v2_profile();
  p.top1_accuracy = 0.0;
  const auto model = make_oracle_model(p, 1);
  Rng rng{11};
  const Image img(4, 4, 1);
  EXPECT_EQ(model->infer(img, 0, rng).label, 0);
}

TEST(Oracle, CorrectAnswersMoreConfident) {
  ModelProfile p = mobilenet_v2_profile();
  p.top1_accuracy = 0.5;
  const auto model = make_oracle_model(p, 8);
  Rng rng{13};
  const Image img(4, 4, 1);
  OnlineStats right, wrong;
  for (int i = 0; i < 5000; ++i) {
    const Prediction pred = model->infer(img, 3, rng);
    (pred.label == 3 ? right : wrong).add(pred.confidence);
  }
  EXPECT_GT(right.mean(), wrong.mean());
}

// ---------------------------------------------------------------- Centroid

SceneGenerator::Config easy_world() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 6;
  cfg.image_size = 32;
  cfg.seed = 17;
  return cfg;
}

TEST(Centroid, LearnsSeparableClasses) {
  const SceneGenerator scenes{easy_world()};
  CentroidClassifier clf{scenes, /*samples_per_class=*/6,
                         mobilenet_v2_profile()};
  EXPECT_EQ(clf.num_classes(), 6);
  Rng rng{19};
  int correct = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const Label truth = static_cast<Label>(i % 6);
    ViewParams view;
    view.dx = static_cast<float>(rng.normal(0.0, 0.2));
    view.noise_sigma = 0.02f;
    view.noise_seed = rng.next_u64();
    const Prediction pred = clf.infer(scenes.render(truth, view), truth, rng);
    if (pred.label == truth) ++correct;
  }
  // A real classifier on an easy synthetic world: high but not perfect.
  EXPECT_GE(correct, trials * 7 / 10);
}

TEST(Centroid, EmbeddingIsUnitNorm) {
  const SceneGenerator scenes{easy_world()};
  const CentroidClassifier clf{scenes, 4, mobilenet_v2_profile()};
  const FeatureVec emb = clf.embed(scenes.render(0, ViewParams{}));
  EXPECT_NEAR(norm(emb), 1.0f, 1e-4f);
}

TEST(Centroid, ConfidenceReflectsMargin) {
  const SceneGenerator scenes{easy_world()};
  CentroidClassifier clf{scenes, 6, mobilenet_v2_profile()};
  Rng rng{23};
  // Confidence must be in [0, 1] and usually positive on clean views.
  const Prediction pred =
      clf.infer(scenes.render(2, ViewParams{}), 2, rng);
  EXPECT_GE(pred.confidence, 0.0f);
  EXPECT_LE(pred.confidence, 1.0f);
}

}  // namespace
}  // namespace apx

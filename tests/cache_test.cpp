// Unit tests for the approximate cache, eviction policies, and the
// exact-match baseline cache.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cache/approx_cache.hpp"
#include "src/cache/exact_cache.hpp"
#include "src/util/rng.hpp"

namespace apx {
namespace {

constexpr std::size_t kDim = 8;

FeatureVec unit_at(float angle) {
  FeatureVec v(kDim, 0.0f);
  v[0] = std::cos(angle);
  v[1] = std::sin(angle);
  return v;
}

ApproxCacheConfig small_config(IndexKind index = IndexKind::kExact) {
  ApproxCacheConfig cfg;
  cfg.capacity = 8;
  cfg.index = index;
  cfg.hknn.k = 3;
  cfg.hknn.max_distance = 0.3f;
  cfg.hknn.homogeneity_threshold = 0.7f;
  return cfg;
}

ApproxCache make_cache(IndexKind index = IndexKind::kExact,
                       std::size_t capacity = 8) {
  auto cfg = small_config(index);
  cfg.capacity = capacity;
  return ApproxCache{kDim, cfg, make_lru_policy()};
}

// ------------------------------------------------------------ ApproxCache

TEST(ApproxCache, BadConfigThrows) {
  EXPECT_THROW(ApproxCache(0, small_config(), make_lru_policy()),
               std::invalid_argument);
  auto cfg = small_config();
  cfg.capacity = 0;
  EXPECT_THROW(ApproxCache(kDim, cfg, make_lru_policy()),
               std::invalid_argument);
  EXPECT_THROW(ApproxCache(kDim, small_config(), nullptr),
               std::invalid_argument);
}

TEST(ApproxCache, EmptyLookupMisses) {
  auto cache = make_cache();
  const auto result = cache.lookup({.features = unit_at(0.0f), .now = 0});
  EXPECT_FALSE(result.vote.has_value());
  EXPECT_EQ(cache.counters().get("miss"), 1u);
}

TEST(ApproxCache, NearbyFeatureHits) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 5, 0.9f, 0);
  const auto result = cache.lookup({.features = unit_at(0.05f), .now = 1});
  ASSERT_TRUE(result.vote.has_value());
  EXPECT_EQ(result.vote->label, 5);
  EXPECT_EQ(cache.counters().get("hit"), 1u);
}

TEST(ApproxCache, FarFeatureMisses) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 5, 0.9f, 0);
  const auto result = cache.lookup({.features = unit_at(1.5f), .now = 1});
  EXPECT_FALSE(result.vote.has_value());
}

TEST(ApproxCache, ThresholdScaleRelaxesMatch) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 5, 0.9f, 0);
  // 0.35 rad apart: just beyond max_distance 0.3 (chord ~0.35).
  EXPECT_FALSE(cache.lookup({.features = unit_at(0.35f),
                             .now = 1,
                             .threshold_scale = 1.0f})
                   .vote.has_value());
  EXPECT_TRUE(cache.lookup({.features = unit_at(0.35f),
                            .now = 2,
                            .threshold_scale = 1.5f})
                  .vote.has_value());
}

TEST(ApproxCache, ThresholdScaleTightensMatch) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 5, 0.9f, 0);
  EXPECT_TRUE(cache.lookup({.features = unit_at(0.25f),
                            .now = 1,
                            .threshold_scale = 1.0f})
                  .vote.has_value());
  EXPECT_FALSE(cache.lookup({.features = unit_at(0.25f),
                             .now = 2,
                             .threshold_scale = 0.5f})
                   .vote.has_value());
}

TEST(ApproxCache, MixedLabelsAbstain) {
  // The query sits equidistant between two conflicting labels, so neither
  // side can reach the homogeneity threshold.
  auto cache = make_cache();
  cache.insert(unit_at(0.00f), 1, 0.9f, 0);
  cache.insert(unit_at(0.04f), 2, 0.9f, 0);
  const auto result = cache.lookup({.features = unit_at(0.02f), .now = 1});
  EXPECT_FALSE(result.vote.has_value());
}

TEST(ApproxCache, PlainVoteModeAnswersWhereHknnAbstains) {
  auto cfg = small_config();
  cfg.hknn.require_homogeneity = false;
  ApproxCache cache{kDim, cfg, make_lru_policy()};
  cache.insert(unit_at(0.00f), 1, 0.9f, 0);
  cache.insert(unit_at(0.04f), 2, 0.9f, 0);
  // Equidistant conflicting labels: H-kNN abstains (see MixedLabelsAbstain)
  // but the plain vote must answer.
  EXPECT_TRUE(cache.lookup({.features = unit_at(0.02f), .now = 1}).vote.has_value());
}

TEST(ApproxCache, ExactMatchDominatesMixedNeighborhood) {
  // An exact-distance match outweighs conflicting far neighbours in the
  // distance-weighted vote (weight ~ 1/eps).
  auto cache = make_cache();
  cache.insert(unit_at(0.00f), 1, 0.9f, 0);
  cache.insert(unit_at(0.02f), 2, 0.9f, 0);
  cache.insert(unit_at(0.04f), 3, 0.9f, 0);
  const auto result = cache.lookup({.features = unit_at(0.02f), .now = 1});
  ASSERT_TRUE(result.vote.has_value());
  EXPECT_EQ(result.vote->label, 2);
}

TEST(ApproxCache, CapacityEnforced) {
  auto cache = make_cache(IndexKind::kExact, 4);
  for (int i = 0; i < 10; ++i) {
    cache.insert(unit_at(static_cast<float>(i)), i, 0.9f, i);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.counters().get("evict"), 6u);
}

TEST(ApproxCache, LruEvictsOldest) {
  auto cache = make_cache(IndexKind::kExact, 2);
  const VecId a = cache.insert(unit_at(0.0f), 1, 0.9f, 0);
  const VecId b = cache.insert(unit_at(1.0f), 2, 0.9f, 1);
  // Touch a via lookup so b becomes the LRU victim.
  ASSERT_TRUE(cache.lookup({.features = unit_at(0.0f), .now = 10}).vote.has_value());
  cache.insert(unit_at(2.0f), 3, 0.9f, 11);
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_EQ(cache.find(b), nullptr);
}

TEST(ApproxCache, RemoveErasesEntry) {
  auto cache = make_cache();
  const VecId id = cache.insert(unit_at(0.0f), 1, 0.9f, 0);
  EXPECT_TRUE(cache.remove(id));
  EXPECT_FALSE(cache.remove(id));
  EXPECT_EQ(cache.find(id), nullptr);
  EXPECT_FALSE(cache.lookup({.features = unit_at(0.0f), .now = 1}).vote.has_value());
}

TEST(ApproxCache, FindReturnsMetadata) {
  auto cache = make_cache();
  const VecId id =
      cache.insert(unit_at(0.0f), 7, 0.8f, 42, EntryOrigin::kPeer, 2, 9);
  const CacheEntry* entry = cache.find(id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->label, 7);
  EXPECT_FLOAT_EQ(entry->confidence, 0.8f);
  EXPECT_EQ(entry->insert_time, 42);
  EXPECT_EQ(entry->origin, EntryOrigin::kPeer);
  EXPECT_EQ(entry->hop_count, 2);
  EXPECT_EQ(entry->source_device, 9u);
}

TEST(ApproxCache, HitTouchesVoters) {
  auto cache = make_cache();
  const VecId id = cache.insert(unit_at(0.0f), 1, 0.9f, 0);
  ASSERT_TRUE(cache.lookup({.features = unit_at(0.01f), .now = 100}).vote.has_value());
  const CacheEntry* entry = cache.find(id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->access_count, 1u);
  EXPECT_EQ(entry->last_access, 100);
}

TEST(ApproxCache, NearestDistanceEmptyIsNullopt) {
  auto cache = make_cache();
  EXPECT_FALSE(cache.nearest_distance(unit_at(0.0f)).has_value());
}

TEST(ApproxCache, NearestDistanceFindsClosest) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 1, 0.9f, 0);
  const auto d = cache.nearest_distance(unit_at(0.0f));
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 0.0f, 1e-6f);
}

TEST(ApproxCache, EntriesSinceFiltersAndSorts) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 1, 0.9f, 10);
  cache.insert(unit_at(1.0f), 2, 0.9f, 30);
  cache.insert(unit_at(2.0f), 3, 0.9f, 20);
  const auto since = cache.entries_since(15);
  ASSERT_EQ(since.size(), 2u);
  EXPECT_EQ(since[0].insert_time, 20);
  EXPECT_EQ(since[1].insert_time, 30);
}

TEST(ApproxCache, ForEachVisitsAll) {
  auto cache = make_cache();
  cache.insert(unit_at(0.0f), 1, 0.9f, 0);
  cache.insert(unit_at(1.0f), 2, 0.9f, 0);
  int visits = 0;
  cache.for_each([&](const CacheEntry&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

TEST(ApproxCache, LatencyGrowsWithCandidates) {
  auto cfg = small_config(IndexKind::kExact);
  cfg.capacity = 100;
  cfg.lookup_base_latency = 100;
  cfg.per_candidate_latency = 10;
  ApproxCache cache{kDim, cfg, make_lru_policy()};
  const auto empty = cache.lookup({.features = unit_at(0.0f), .now = 0});
  EXPECT_EQ(empty.latency, 100);
  for (int i = 0; i < 10; ++i) {
    cache.insert(unit_at(static_cast<float>(i)), i, 0.9f, 0);
  }
  const auto full = cache.lookup({.features = unit_at(0.0f), .now = 1});
  EXPECT_EQ(full.latency, 100 + 10 * 10);
  EXPECT_EQ(full.candidates, 10u);
}

TEST(ApproxCache, WorksWithAllIndexKinds) {
  for (const IndexKind kind :
       {IndexKind::kExact, IndexKind::kLsh, IndexKind::kAdaptiveLsh}) {
    auto cache = make_cache(kind, 32);
    cache.insert(unit_at(0.0f), 5, 0.9f, 0);
    const auto result = cache.lookup({.features = unit_at(0.0f), .now = 1});
    ASSERT_TRUE(result.vote.has_value())
        << "kind=" << static_cast<int>(kind);
    EXPECT_EQ(result.vote->label, 5);
  }
}

// ------------------------------------------------------------ Eviction

CacheEntry entry_with(SimTime last_access, std::uint32_t access_count,
                      std::uint8_t hops = 0, float confidence = 1.0f) {
  CacheEntry e;
  e.last_access = last_access;
  e.access_count = access_count;
  e.hop_count = hops;
  e.confidence = confidence;
  return e;
}

TEST(Eviction, LruScoresByRecency) {
  const auto policy = make_lru_policy();
  EXPECT_LT(policy->score(entry_with(10, 5), 100),
            policy->score(entry_with(20, 0), 100));
}

TEST(Eviction, LfuScoresByFrequency) {
  const auto policy = make_lfu_policy();
  EXPECT_LT(policy->score(entry_with(99, 1), 100),
            policy->score(entry_with(1, 5), 100));
}

TEST(Eviction, LfuTieBreaksByRecency) {
  const auto policy = make_lfu_policy();
  EXPECT_LT(policy->score(entry_with(10, 3), 100),
            policy->score(entry_with(90, 3), 100));
}

TEST(Eviction, UtilityPrefersLocalOverRemote) {
  const auto policy = make_utility_policy();
  EXPECT_GT(policy->score(entry_with(50, 2, 0), 100),
            policy->score(entry_with(50, 2, 2), 100));
}

TEST(Eviction, UtilityDecaysWithAge) {
  const auto policy = make_utility_policy();
  EXPECT_GT(policy->score(entry_with(90 * kSecond, 2), 100 * kSecond),
            policy->score(entry_with(10 * kSecond, 2), 100 * kSecond));
}

TEST(Eviction, UtilityDiscountsLowConfidence) {
  const auto policy = make_utility_policy();
  EXPECT_GT(policy->score(entry_with(50, 2, 0, 1.0f), 100),
            policy->score(entry_with(50, 2, 0, 0.2f), 100));
}

TEST(Eviction, PolicyNames) {
  EXPECT_EQ(make_lru_policy()->name(), "lru");
  EXPECT_EQ(make_lfu_policy()->name(), "lfu");
  EXPECT_EQ(make_utility_policy()->name(), "utility");
}

// ------------------------------------------------------------ ExactCache

TEST(ExactCache, BadParamsThrow) {
  EXPECT_THROW(ExactCache(0), std::invalid_argument);
  EXPECT_THROW(ExactCache(4, 0.0f), std::invalid_argument);
}

TEST(ExactCache, ExactMatchHits) {
  ExactCache cache{4};
  const FeatureVec v = unit_at(0.3f);
  cache.insert(v, 9);
  const auto hit = cache.lookup(v);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 9);
}

TEST(ExactCache, PerturbedFeatureMisses) {
  ExactCache cache{4, 64.0f};
  FeatureVec v = unit_at(0.3f);
  cache.insert(v, 9);
  v[0] += 0.1f;  // larger than a quantization step
  EXPECT_FALSE(cache.lookup(v).has_value());
}

TEST(ExactCache, TinyPerturbationWithinStepStillHits) {
  ExactCache cache{4, 16.0f};  // coarse grid: step 1/16
  FeatureVec v = unit_at(0.3f);
  cache.insert(v, 9);
  v[0] += 0.001f;
  EXPECT_TRUE(cache.lookup(v).has_value());
}

TEST(ExactCache, LruEvictionAtCapacity) {
  ExactCache cache{2};
  cache.insert(unit_at(0.0f), 1);
  cache.insert(unit_at(1.0f), 2);
  // Touch the first so the second is evicted.
  ASSERT_TRUE(cache.lookup(unit_at(0.0f)).has_value());
  cache.insert(unit_at(2.0f), 3);
  EXPECT_TRUE(cache.lookup(unit_at(0.0f)).has_value());
  EXPECT_FALSE(cache.lookup(unit_at(1.0f)).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExactCache, ReinsertUpdatesLabel) {
  ExactCache cache{4};
  const FeatureVec v = unit_at(0.0f);
  cache.insert(v, 1);
  cache.insert(v, 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.lookup(v), 2);
}

TEST(ExactCache, CountersTrackActivity) {
  ExactCache cache{4};
  cache.lookup(unit_at(0.0f));
  cache.insert(unit_at(0.0f), 1);
  cache.lookup(unit_at(0.0f));
  EXPECT_EQ(cache.counters().get("miss"), 1u);
  EXPECT_EQ(cache.counters().get("hit"), 1u);
  EXPECT_EQ(cache.counters().get("insert"), 1u);
}

}  // namespace
}  // namespace apx

// Ladder composition: spec parsing/round-tripping, rejection of malformed
// specs, spec-built vs preset-built equivalence, the warm-tier rung end to
// end, and the ablation property that adding rungs never increases the
// fraction of frames answered by full DNN inference.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cache/eviction.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/rungs/ladder.hpp"
#include "src/dnn/oracle.hpp"
#include "src/dnn/zoo.hpp"
#include "src/obs/report.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

// ------------------------------------------------------- parse / round-trip

TEST(LadderSpecTest, ParsesAndRoundTripsCanonicalSpecs) {
  const char* specs[] = {
      "dnn",
      "exact,dnn",
      "local,dnn",
      "imu,local,dnn",
      "imu,temporal,local,dnn",
      "imu,temporal,local,p2p,dnn",
      "imu,temporal,warm,local,p2p,dnn",
      "warm,dnn",
      "temporal,exact,dnn",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    const LadderSpec spec = LadderSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(LadderSpec::parse(spec.to_string()).to_string(), text);
    EXPECT_TRUE(spec.has("dnn"));
  }
}

TEST(LadderSpecTest, TrimsWhitespaceAroundTokens) {
  const LadderSpec spec = LadderSpec::parse(" imu , temporal ,local, dnn ");
  EXPECT_EQ(spec.to_string(), "imu,temporal,local,dnn");
}

TEST(LadderSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                    // empty spec
      ",dnn",                // empty token
      "imu,,dnn",            // empty token
      "bogus,dnn",           // unknown rung
      "local,local,dnn",     // duplicate rung
      "imu,local",           // must end with dnn
      "dnn,local",           // out of ladder order
      "local,temporal,dnn",  // out of ladder order
      "local,exact,dnn",     // two cache rungs (shared rank)
      "exact,local,dnn",     // two cache rungs (shared rank)
      "p2p,dnn",             // p2p requires local
      "imu,temporal,p2p,dnn",  // p2p requires local
      "dnn,dnn",             // duplicate + order
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)LadderSpec::parse(text), std::invalid_argument);
  }
}

TEST(LadderSpecTest, ParsesAndRoundTripsRungArguments) {
  const char* specs[] = {
      "local(q8),dnn",
      "imu,local(q8),dnn",
      "imu,temporal,local(q8),p2p,dnn",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    const LadderSpec spec = LadderSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(LadderSpec::parse(spec.to_string()).to_string(), text);
    // has() matches the base rung name, argument or not.
    EXPECT_TRUE(spec.has("local"));
    EXPECT_EQ(spec.arg("local"), "q8");
    EXPECT_EQ(spec.arg("dnn"), "");
  }
  EXPECT_EQ(LadderSpec::parse("local,dnn").arg("local"), "");
}

TEST(LadderSpecTest, RejectsMalformedRungArguments) {
  const char* bad[] = {
      "local(q9),dnn",      // unknown argument
      "local(),dnn",        // empty argument
      "local(q8,dnn",       // unterminated parenthesis
      "local(q8)x,dnn",     // trailing junk after ')'
      "(q8),dnn",           // argument without a rung name
      "dnn(q8)",            // rung that takes no arguments
      "imu(q8),local,dnn",  // likewise
      "local(q8),local,dnn",  // still a duplicate of the base rung
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)LadderSpec::parse(text), std::invalid_argument);
  }
}

TEST(LadderSpecTest, ParsesAndRoundTripsEdgeArguments) {
  const char* specs[] = {
      "imu,temporal,local,p2p,edge,dnn",
      "local,edge,dnn",
      "imu,temporal,local,p2p,edge(shards=8),dnn",
      "imu,temporal,local,p2p,"
      "edge(shards=4,capacity=1024,ttl=30s,error_budget=0.25),dnn",
      "local,edge(ttl=1500ms),dnn",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    const LadderSpec spec = LadderSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(LadderSpec::parse(spec.to_string()).to_string(), text);
    EXPECT_TRUE(spec.has("edge"));
  }
  const LadderSpec spec =
      LadderSpec::parse("local,edge(shards=8,ttl=45s,error_budget=0.5),dnn");
  EXPECT_EQ(spec.arg_value("edge", "shards"), "8");
  EXPECT_EQ(spec.arg_value("edge", "ttl"), "45s");
  EXPECT_EQ(spec.arg_value("edge", "error_budget"), "0.5");
  EXPECT_TRUE(spec.has_arg("edge", "shards"));
  EXPECT_FALSE(spec.has_arg("edge", "capacity"));
}

TEST(LadderSpecTest, RejectsMalformedEdgeArguments) {
  const char* bad[] = {
      "local,edge(shards=0),dnn",           // zero shard count
      "local,edge(shards=abc),dnn",         // non-numeric count
      "local,edge(shards),dnn",             // missing value
      "local,edge(ttl=abc),dnn",            // malformed duration
      "local,edge(ttl=30m),dnn",            // unknown duration unit
      "local,edge(ttl=0s),dnn",             // zero duration
      "local,edge(error_budget=1.5),dnn",   // fraction out of [0, 1]
      "local,edge(error_budget=x),dnn",     // non-numeric fraction
      "local,edge(bogus=1),dnn",            // unknown argument key
      "local,edge(shards=4,shards=8),dnn",  // duplicate key
      "local,edge(ttl=30s,),dnn",           // trailing comma
      "local,edge(shards=4,dnn",            // unterminated parenthesis
      "local(q8=1),dnn",                    // flag argument takes no value
      "edge,local,dnn",                     // out of ladder order
      "local,p2p,edge",                     // must still end with dnn
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)LadderSpec::parse(text), std::invalid_argument);
  }
}

TEST(LadderSpecTest, EdgeArgsSyncEdgeParams) {
  const PipelineConfig cfg = make_ladder_config(
      "imu,temporal,local,p2p,edge(shards=8,ttl=45s,error_budget=0.5),dnn");
  EXPECT_TRUE(cfg.enable_edge);
  EXPECT_EQ(cfg.edge.shards, 8u);
  EXPECT_EQ(cfg.edge.capacity, EdgeParams{}.capacity);  // omitted -> default
  EXPECT_EQ(cfg.edge.ttl, 45 * kSecond);
  EXPECT_FLOAT_EQ(cfg.edge.error_budget, 0.5f);
  // Non-default fields round-trip through from_config; defaults are elided.
  EXPECT_EQ(LadderSpec::from_config(cfg).to_string(),
            "imu,temporal,local,p2p,edge(shards=8,ttl=45s,error_budget=0.5),"
            "dnn");
  EXPECT_EQ(LadderSpec::from_config(make_edge_config()).to_string(),
            "imu,temporal,local,p2p,edge,dnn");

  const PipelineConfig bare = make_ladder_config("local,dnn");
  EXPECT_FALSE(bare.enable_edge);
}

TEST(LadderSpecTest, ParsesAndRoundTripsRegionsArguments) {
  const char* specs[] = {
      "imu,temporal,regions,local,dnn",
      "regions,dnn",
      "imu,temporal,regions(grid=8),warm,local,p2p,dnn",
      "regions(grid=8,max_changed=0.25,ttl=5s),dnn",
      "imu,regions(ttl=750ms),local,dnn",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    const LadderSpec spec = LadderSpec::parse(text);
    EXPECT_EQ(spec.to_string(), text);
    EXPECT_EQ(LadderSpec::parse(spec.to_string()).to_string(), text);
    EXPECT_TRUE(spec.has("regions"));
  }
  const LadderSpec spec =
      LadderSpec::parse("regions(grid=2,max_changed=0.75,ttl=3s),dnn");
  EXPECT_EQ(spec.arg_value("regions", "grid"), "2");
  EXPECT_EQ(spec.arg_value("regions", "max_changed"), "0.75");
  EXPECT_EQ(spec.arg_value("regions", "ttl"), "3s");
  EXPECT_FALSE(spec.has_arg("regions", "q8"));
}

TEST(LadderSpecTest, RejectsMalformedRegionsArguments) {
  const char* bad[] = {
      "warm,regions,dnn",                    // out of ladder order
      "local,regions,dnn",                   // out of ladder order
      "regions,regions,dnn",                 // duplicate rung
      "regions(grid=0),dnn",                 // zero grid
      "regions(grid=abc),dnn",               // non-numeric grid
      "regions(grid),dnn",                   // missing value
      "regions(max_changed=1.5),dnn",        // fraction out of [0, 1]
      "regions(max_changed=x),dnn",          // non-numeric fraction
      "regions(ttl=0s),dnn",                 // zero duration
      "regions(ttl=30m),dnn",                // unknown duration unit
      "regions(q8),dnn",                     // unknown argument key
      "regions(grid=4,grid=8),dnn",          // duplicate key
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)LadderSpec::parse(text), std::invalid_argument);
  }
}

TEST(LadderSpecTest, RegionsArgsSyncRegionParams) {
  const PipelineConfig cfg = make_ladder_config(
      "imu,temporal,regions(grid=8,max_changed=0.25,ttl=5s),local,dnn");
  EXPECT_TRUE(cfg.enable_regions);
  EXPECT_EQ(cfg.regions.grid, 8);
  EXPECT_FLOAT_EQ(cfg.regions.max_changed, 0.25f);
  EXPECT_EQ(cfg.regions.ttl, 5 * kSecond);
  // Non-grammar knobs stay at their defaults.
  EXPECT_FLOAT_EQ(cfg.regions.block_diff_threshold,
                  RegionReuseParams{}.block_diff_threshold);
  EXPECT_EQ(LadderSpec::from_config(cfg).to_string(),
            "imu,temporal,regions(grid=8,max_changed=0.25,ttl=5s),local,dnn");

  // Default arguments are elided on the way back out.
  const PipelineConfig plain =
      make_ladder_config("imu,temporal,regions,local,dnn");
  EXPECT_TRUE(plain.enable_regions);
  EXPECT_EQ(plain.regions.grid, RegionReuseParams{}.grid);
  EXPECT_EQ(LadderSpec::from_config(plain).to_string(),
            "imu,temporal,regions,local,dnn");

  const PipelineConfig bare = make_ladder_config("local,dnn");
  EXPECT_FALSE(bare.enable_regions);
}

TEST(LadderSpecTest, QuantizedArgSyncsQuantizeFlags) {
  const PipelineConfig q8 = make_ladder_config("imu,local(q8),dnn");
  EXPECT_TRUE(q8.enable_quantized_scan);
  EXPECT_TRUE(q8.cache.alsh.lsh.quantize.enabled);
  EXPECT_EQ(LadderSpec::from_config(q8).to_string(), "imu,local(q8),dnn");

  const PipelineConfig plain = make_ladder_config("imu,local,dnn");
  EXPECT_FALSE(plain.enable_quantized_scan);
  EXPECT_FALSE(plain.cache.alsh.lsh.quantize.enabled);
  EXPECT_EQ(LadderSpec::from_config(plain).to_string(), "imu,local,dnn");

  // Flag-driven configs derive the argumented spec.
  PipelineConfig flagged = make_approx_local_config();
  flagged.enable_quantized_scan = true;
  EXPECT_EQ(LadderSpec::from_config(flagged).to_string(), "local(q8),dnn");
}

TEST(LadderSpecTest, QalshArgsSelectAndRoundTrip) {
  // Bare flag: QALSH backend at its guarantee defaults.
  const PipelineConfig basic = make_ladder_config("imu,local(qalsh),dnn");
  EXPECT_EQ(basic.cache.index, IndexKind::kQalsh);
  EXPECT_FLOAT_EQ(basic.cache.qalsh.c, QalshParams{}.c);
  EXPECT_FLOAT_EQ(basic.cache.qalsh.delta, QalshParams{}.delta);
  EXPECT_FLOAT_EQ(basic.cache.qalsh.beta, QalshParams{}.beta);
  EXPECT_FALSE(basic.cache.qalsh.quantize.enabled);
  EXPECT_EQ(LadderSpec::from_config(basic).to_string(),
            "imu,local(qalsh),dnn");

  // Tuned guarantee knobs survive a config round trip.
  const char* tuned_text = "imu,local(qalsh,c=1.5,delta=0.25,beta=0.05),dnn";
  const PipelineConfig tuned = make_ladder_config(tuned_text);
  EXPECT_EQ(tuned.cache.index, IndexKind::kQalsh);
  EXPECT_FLOAT_EQ(tuned.cache.qalsh.c, 1.5f);
  EXPECT_FLOAT_EQ(tuned.cache.qalsh.delta, 0.25f);
  EXPECT_FLOAT_EQ(tuned.cache.qalsh.beta, 0.05f);
  EXPECT_EQ(LadderSpec::from_config(tuned).to_string(), tuned_text);

  // q8 composes: the SQ8 sidecar follows the selected backend.
  const PipelineConfig q8 = make_ladder_config("imu,local(q8,qalsh),dnn");
  EXPECT_EQ(q8.cache.index, IndexKind::kQalsh);
  EXPECT_TRUE(q8.enable_quantized_scan);
  EXPECT_TRUE(q8.cache.qalsh.quantize.enabled);
  EXPECT_EQ(LadderSpec::from_config(q8).to_string(),
            "imu,local(q8,qalsh),dnn");

  // Dropping the flag reverts the backend to the A-LSH default.
  PipelineConfig reverted = make_ladder_config("imu,local(qalsh),dnn");
  apply_ladder(reverted, LadderSpec::parse("imu,local,dnn"));
  EXPECT_EQ(reverted.cache.index, IndexKind::kAdaptiveLsh);
}

TEST(LadderSpecTest, RejectsBadQalshArgs) {
  const char* bad[] = {
      // Guarantee knobs demand the qalsh flag on the same rung.
      "local(c=2),dnn",
      "local(delta=0.3),dnn",
      "local(beta=0.1),dnn",
      "local(q8,c=2),dnn",
      // Ratio must sit in (1, 64]; delta in (0, 1); beta in (0, 1].
      "local(qalsh,c=1),dnn",
      "local(qalsh,c=0.5),dnn",
      "local(qalsh,c=100),dnn",
      "local(qalsh,delta=0),dnn",
      "local(qalsh,delta=1),dnn",
      "local(qalsh,beta=0),dnn",
      // qalsh is a flag, not a valued argument.
      "local(qalsh=1),dnn",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)LadderSpec::parse(text), std::invalid_argument);
  }
}

TEST(LadderSpecTest, ErrorsNameTheSpecAndTheViolation) {
  try {
    (void)LadderSpec::parse("p2p,dnn");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("p2p,dnn"), std::string::npos) << what;
  }
}

// ------------------------------------------------ flags <-> spec duality

TEST(LadderSpecTest, ApplyLadderThenFromConfigRoundTrips) {
  const char* specs[] = {
      "dnn",       "exact,dnn",
      "local,dnn", "imu,temporal,warm,local,p2p,dnn",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    const PipelineConfig cfg = make_ladder_config(text);
    EXPECT_EQ(cfg.ladder, text);
    EXPECT_EQ(LadderSpec::from_config(cfg).to_string(), text);
  }
}

TEST(LadderSpecTest, ApplyLadderSyncsProvisioningFlags) {
  const PipelineConfig warm =
      make_ladder_config("imu,temporal,warm,local,p2p,dnn");
  EXPECT_TRUE(warm.enable_imu_gate);
  EXPECT_TRUE(warm.enable_temporal);
  EXPECT_TRUE(warm.enable_warm_tier);
  EXPECT_TRUE(warm.enable_p2p);
  EXPECT_TRUE(warm.enable_local_cache);
  EXPECT_FALSE(warm.enable_exact_cache);

  const PipelineConfig exact = make_ladder_config("exact,dnn");
  EXPECT_FALSE(exact.enable_imu_gate);
  EXPECT_FALSE(exact.enable_temporal);
  EXPECT_FALSE(exact.enable_warm_tier);
  EXPECT_FALSE(exact.enable_p2p);
  EXPECT_FALSE(exact.enable_local_cache);
  EXPECT_TRUE(exact.enable_exact_cache);

  const PipelineConfig bare = make_ladder_config("dnn");
  EXPECT_FALSE(bare.enable_local_cache);
  EXPECT_FALSE(bare.enable_exact_cache);
  EXPECT_FALSE(bare.enable_p2p);
}

TEST(LadderSpecTest, PresetsDeriveTheirDocumentedSpecs) {
  EXPECT_EQ(LadderSpec::from_config(make_nocache_config()).to_string(),
            "dnn");
  EXPECT_EQ(LadderSpec::from_config(make_exactcache_config()).to_string(),
            "exact,dnn");
  EXPECT_EQ(LadderSpec::from_config(make_approx_local_config()).to_string(),
            "local,dnn");
  EXPECT_EQ(LadderSpec::from_config(make_approx_imu_config()).to_string(),
            "imu,local,dnn");
  EXPECT_EQ(LadderSpec::from_config(make_approx_video_config()).to_string(),
            "imu,temporal,local,dnn");
  EXPECT_EQ(LadderSpec::from_config(make_full_system_config()).to_string(),
            "imu,temporal,local,p2p,dnn");
}

// -------------------------------------------------- registry introspection

TEST(RungRegistryTest, NamesComeBackInRankOrder) {
  const std::vector<std::string> names = RungRegistry::instance().names();
  ASSERT_GE(names.size(), 8u);
  EXPECT_EQ(names.front(), "imu");
  EXPECT_EQ(names.back(), "dnn");
  bool has_regions = false;
  for (const std::string& n : names) has_regions |= (n == "regions");
  EXPECT_TRUE(has_regions);
  const auto rank = [&](std::string_view n) {
    return RungRegistry::instance().find(n)->rank;
  };
  for (std::size_t i = 0; i + 1 < names.size(); ++i) {
    EXPECT_LE(rank(names[i]), rank(names[i + 1]));
  }
}

// ------------------------------------- spec-built == preset-built property

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig cfg = default_scenario();
  cfg.num_devices = 2;
  cfg.duration = 5 * kSecond;
  cfg.scene.num_classes = 8;
  cfg.seed = seed;
  return cfg;
}

std::string run_to_json(const ScenarioConfig& cfg) {
  ExperimentRunner runner{cfg};
  runner.run();
  return runner.metrics().to_json();
}

TEST(LadderEquivalenceTest, SpecBuiltMatchesPresetBuiltByteForByte) {
  struct Pair {
    const char* spec;
    PipelineConfig (*preset)();
  };
  const Pair pairs[] = {
      {"dnn", make_nocache_config},
      {"exact,dnn", make_exactcache_config},
      {"local,dnn", make_approx_local_config},
      {"imu,local,dnn", make_approx_imu_config},
      {"imu,temporal,local,dnn", make_approx_video_config},
      {"imu,temporal,local,p2p,dnn", make_full_system_config},
  };
  for (const Pair& p : pairs) {
    SCOPED_TRACE(p.spec);
    ScenarioConfig via_preset = small_scenario(3);
    via_preset.pipeline = p.preset();
    ScenarioConfig via_spec = small_scenario(3);
    via_spec.pipeline = make_ladder_config(p.spec);
    EXPECT_EQ(run_to_json(via_preset), run_to_json(via_spec));
  }
}

// ------------------------------------------------------- invalid ladders

TEST(LadderEquivalenceTest, RunnerRejectsMalformedLadderStrings) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.pipeline.ladder = "local";  // missing dnn
  EXPECT_THROW((void)ExperimentRunner{cfg}, std::invalid_argument);
}

// ------------------------------------------------------- warm tier, e2e

TEST(WarmTierTest, WarmLadderExportsItsOwnCountersAndHistogram) {
  ScenarioConfig cfg = small_scenario(7);
  cfg.pipeline = make_ladder_config("imu,temporal,warm,local,p2p,dnn");
  ExperimentRunner runner{cfg};
  runner.run();
  const MetricsRegistry& m = runner.metrics();
  const std::uint64_t hits =
      m.counter_value(rung_outcome_metric("warm", RungOutcome::kHit));
  const std::uint64_t misses =
      m.counter_value(rung_outcome_metric("warm", RungOutcome::kMiss));
  EXPECT_GT(hits + misses, 0u) << "warm rung never ran";
  const auto* hist = m.find_histogram(rung_latency_metric("warm"));
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, hits + misses);
  // The source counter exists (equal to the rung's hits by construction).
  EXPECT_EQ(m.counter_value(source_metric("warm-cache")), hits);
  // And the baseline schema is still present alongside the extras.
  EXPECT_GT(m.counter_value(source_metric("inference")), 0u);
}

TEST(WarmTierTest, BaselineExportsCarryNoWarmKeys) {
  ScenarioConfig cfg = small_scenario(7);
  cfg.pipeline = make_full_system_config();
  ExperimentRunner runner{cfg};
  runner.run();
  const std::string json = runner.metrics().to_json();
  EXPECT_EQ(json.find("warm"), std::string::npos)
      << "warm metrics leaked into a ladder without the warm rung";
}

// Single-device harness driving frames straight into a pipeline, so the
// warm tier's learn-then-answer cycle is observable deterministically.
struct WarmHarness {
  static constexpr int kClasses = 8;

  EventSimulator sim;
  SceneGenerator scenes;
  std::unique_ptr<FeatureExtractor> extractor;
  std::unique_ptr<RecognitionModel> model;
  std::unique_ptr<ApproxCache> cache;
  std::unique_ptr<ReusePipeline> pipeline;

  explicit WarmHarness(PipelineConfig cfg)
      : scenes([] {
          SceneGenerator::Config sc;
          sc.num_classes = kClasses;
          sc.image_size = 24;
          sc.seed = 7;
          return sc;
        }()),
        extractor(make_downsample_extractor(8)) {
    ModelProfile profile = mobilenet_v2_profile();
    profile.top1_accuracy = 1.0;
    model = make_oracle_model(profile, kClasses);
    cfg.cache.index = IndexKind::kExact;
    cfg.cache.hknn.max_distance = 0.3f;
    cache = std::make_unique<ApproxCache>(extractor->dim(), cfg.cache,
                                          make_lru_policy());
    pipeline = std::make_unique<ReusePipeline>(sim, cfg, *extractor, *model,
                                               cache.get(), nullptr, nullptr,
                                               /*seed=*/11);
  }

  RecognitionResult run_one(int class_id) {
    Frame f;
    f.t = sim.now();
    f.true_label = class_id;
    f.image = scenes.render(class_id, ViewParams{});
    std::optional<RecognitionResult> out;
    EXPECT_TRUE(pipeline->process(
        f, MotionState::kMajor, [&](const RecognitionResult& r) { out = r; }));
    while (!out.has_value() && sim.step()) {
    }
    return out.value_or(RecognitionResult{});
  }
};

TEST(WarmTierTest, LearnsFromInferenceThenAnswersBeforeLocalCache) {
  PipelineConfig cfg = make_ladder_config("warm,local,dnn");
  cfg.warm.min_support = 1;  // answer after a single validated observation
  WarmHarness h{cfg};
  // Cold frame: warm has no prototypes, local cache is empty -> full DNN;
  // the result trains the warm tier's class prototype.
  const RecognitionResult cold = h.run_one(3);
  EXPECT_EQ(cold.source, ResultSource::kFullInference);
  // Same view again: the quantized prototype answers before the cache does.
  const RecognitionResult warm = h.run_one(3);
  EXPECT_EQ(warm.source, ResultSource::kWarmCacheHit);
  EXPECT_EQ(warm.label, 3);
  // An untrained class still falls through past the warm rung.
  const RecognitionResult other = h.run_one(5);
  EXPECT_EQ(other.source, ResultSource::kFullInference);
}

TEST(WarmTierTest, MinSupportGatesAnswering) {
  PipelineConfig cfg = make_ladder_config("warm,dnn");
  cfg.warm.min_support = 100;  // unreachable in this test
  WarmHarness h{cfg};
  (void)h.run_one(3);
  // Warm never answers under min_support, even for an identical view. (In a
  // warm,dnn ladder nothing extracts features before the DNN, so the warm
  // tier cannot learn at all — it must stay inert, not crash.)
  const RecognitionResult again = h.run_one(3);
  EXPECT_EQ(again.source, ResultSource::kFullInference);
}

// --------------------------------------------------------- ablation sweep

TEST(LadderAblationTest, AddingRungsNeverIncreasesDnnFraction) {
  // Every step adds one pure reuse rung (answers only when confident,
  // passes the frame through unchanged otherwise), so the fraction of
  // frames that reach full inference must be non-increasing. The IMU rung
  // is held constant across the sweep: it is admission control, not reuse —
  // its fastpath and threshold scaling deliberately alter downstream
  // dynamics, so "adding imu" is not a monotone-reuse step. Gate threshold
  // scaling is pinned to 1.0 for the same reason.
  const char* sweep[] = {
      "imu,dnn",
      "imu,local,dnn",
      "imu,temporal,local,dnn",
      "imu,temporal,warm,local,dnn",
      "imu,temporal,warm,local,p2p,dnn",
  };
  double prev = 1.0;
  for (const char* spec : sweep) {
    SCOPED_TRACE(spec);
    ScenarioConfig cfg = small_scenario(11);
    cfg.duration = 10 * kSecond;
    cfg.pipeline = make_ladder_config(spec);
    cfg.pipeline.gate.stationary_scale = 1.0f;
    cfg.pipeline.gate.minor_scale = 1.0f;
    cfg.pipeline.gate.major_scale = 1.0f;
    ExperimentRunner runner{cfg};
    const ExperimentMetrics m = runner.run();
    const double frac =
        static_cast<double>(m.sources().get("inference")) /
        static_cast<double>(m.frames());
    EXPECT_LE(frac, prev + 1e-9) << "DNN fraction went up when adding a rung";
    prev = frac;
  }
  EXPECT_LT(prev, 1.0) << "the full ladder reused nothing";
}

}  // namespace
}  // namespace apx

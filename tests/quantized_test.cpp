// SQ8 quantized-scan parity: the opt-in local(q8) ladder must match the
// float ladder's recognition quality — the scan is approximate but the
// exact re-rank hands H-kNN the same float distances, so votes only change
// when ADC ordering pushes a true neighbour out of the re-rank set. These
// tests pin that agreement at the cache level (top-1 vote parity >= 99%)
// and end to end (accuracy within one point on every named config at two
// seeds), and check the "quantized" metrics subsystem is all-or-nothing.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/cache/approx_cache.hpp"
#include "src/cache/eviction.hpp"
#include "src/core/config.hpp"
#include "src/sim/runner.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

// ------------------------------------------------- cache-level vote parity

TEST(QuantizedParity, PeekVoteAgreesWithFloatScan) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kClusters = 96;
  constexpr int kEntries = 2000;
  constexpr int kProbes = 1000;

  ApproxCacheConfig base;
  base.capacity = 4096;
  base.index = IndexKind::kLsh;
  base.alsh.lsh.num_tables = 4;
  base.alsh.lsh.hashes_per_table = 8;
  base.alsh.lsh.bucket_width = 0.5f;
  base.alsh.lsh.probes_per_table = 2;
  base.hknn.max_distance = 0.4f;
  ApproxCacheConfig q8_cfg = base;
  q8_cfg.alsh.lsh.quantize.enabled = true;

  ApproxCache flt{kDim, base, make_lru_policy()};
  ApproxCache q8{kDim, q8_cfg, make_lru_policy()};
  ASSERT_FALSE(flt.quantized_scan());
  ASSERT_TRUE(q8.quantized_scan());

  // Near-duplicate views of kClusters objects — the workload the paper's
  // cache actually holds.
  Rng rng{2025};
  std::vector<FeatureVec> centers;
  for (std::size_t c = 0; c < kClusters; ++c) {
    FeatureVec v(kDim);
    for (float& x : v) x = static_cast<float>(rng.normal());
    normalize(v);
    centers.push_back(std::move(v));
  }
  auto near_center = [&](std::size_t c) {
    FeatureVec v = centers[c];
    for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.03));
    normalize(v);
    return v;
  };
  for (int i = 0; i < kEntries; ++i) {
    const std::size_t c = static_cast<std::size_t>(i) % kClusters;
    const FeatureVec v = near_center(c);
    flt.insert(v, static_cast<Label>(c), 0.9f, i);
    q8.insert(v, static_cast<Label>(c), 0.9f, i);
  }

  int agree = 0;
  int votes = 0;
  for (int i = 0; i < kProbes; ++i) {
    const FeatureVec probe = near_center(rng.uniform_u64(kClusters));
    const auto a = flt.peek_vote({.features = probe});
    const auto b = q8.peek_vote({.features = probe});
    if (a.has_value() || b.has_value()) ++votes;
    if (a.has_value() == b.has_value() &&
        (!a.has_value() || a->label == b->label)) {
      ++agree;
    }
  }
  ASSERT_GT(votes, kProbes / 2) << "workload barely exercised the cache";
  EXPECT_GE(static_cast<double>(agree) / kProbes, 0.99)
      << agree << "/" << kProbes << " probes agreed";
}

// ------------------------------------------------------- end-to-end parity

ScenarioConfig parity_scenario(std::uint64_t seed) {
  ScenarioConfig cfg = default_scenario();
  cfg.seed = seed;
  cfg.duration = 20 * kSecond;
  cfg.num_devices = 2;
  return cfg;
}

TEST(QuantizedParity, EndToEndAccuracyWithinOnePointOnEveryNamedConfig) {
  struct NamedPreset {
    const char* name;
    PipelineConfig (*make)();
  };
  const NamedPreset presets[] = {
      {"approx-local", &make_approx_local_config},
      {"approx+imu", &make_approx_imu_config},
      {"approx+imu+video", &make_approx_video_config},
      {"full-system(+p2p)", &make_full_system_config},
      {"adaptive", &make_adaptive_config},
  };
  for (const std::uint64_t seed : {42ULL, 1042ULL}) {
    for (const NamedPreset& p : presets) {
      SCOPED_TRACE(std::string(p.name) + " seed " + std::to_string(seed));
      ScenarioConfig cfg = parity_scenario(seed);
      cfg.pipeline = p.make();
      const ExperimentMetrics flt = run_scenario(cfg);
      cfg.pipeline = p.make();
      cfg.pipeline.enable_quantized_scan = true;
      const ExperimentMetrics q8 = run_scenario(cfg);
      EXPECT_NEAR(q8.accuracy(), flt.accuracy(), 0.01);
      // The quantized run still reuses: same ballpark of cache service.
      EXPECT_GT(q8.reuse_ratio(), 0.0);
    }
  }
}

// --------------------------------------------------- metrics presence

TEST(QuantizedMetrics, Q8LadderExportsTheQuantizedSubsystem) {
  ScenarioConfig cfg = parity_scenario(7);
  cfg.duration = 5 * kSecond;
  cfg.pipeline = make_ladder_config("imu,temporal,local(q8),p2p,dnn");
  ExperimentRunner runner{cfg};
  runner.run();
  const MetricsRegistry& m = runner.metrics();
  const std::string json = m.to_json();
  // All-or-nothing subsystem: both gauges and the histogram are present.
  EXPECT_NE(json.find("cache/bytes_float"), std::string::npos) << json;
  EXPECT_NE(json.find("cache/bytes_codes"), std::string::npos) << json;
  const auto* hist = m.find_histogram("ann/rerank_survivors");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count, 0u) << "quantized scan never ran a re-rank";
  // The code arena is the small side of the ledger.
  EXPECT_LE(m.counter_value("cache/bytes_codes"),
            m.counter_value("cache/bytes_float"));
}

TEST(QuantizedMetrics, FloatLadderCarriesNoQuantizedKeys) {
  ScenarioConfig cfg = parity_scenario(7);
  cfg.duration = 5 * kSecond;
  cfg.pipeline = make_full_system_config();
  ExperimentRunner runner{cfg};
  runner.run();
  const std::string json = runner.metrics().to_json();
  EXPECT_EQ(json.find("bytes_codes"), std::string::npos)
      << "quantized gauges leaked into a float ladder";
  EXPECT_EQ(json.find("rerank_survivors"), std::string::npos)
      << "re-rank histogram leaked into a float ladder";
}

}  // namespace
}  // namespace apx

// Property-based and fuzz tests: randomized inputs against invariants that
// must hold for every input — codec robustness on arbitrary bytes, cache
// invariants under random operation sequences, LSH-vs-exact consistency,
// event ordering, trace/snapshot round trips.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <thread>

#include "src/ann/exact_knn.hpp"
#include "src/ann/lsh.hpp"
#include "src/ann/quantize.hpp"
#include "src/cache/approx_cache.hpp"
#include "src/cache/snapshot.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/features/minicnn.hpp"
#include "src/image/image.hpp"
#include "src/net/event_sim.hpp"
#include "src/net/messages.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

FeatureVec random_unit(Rng& rng, std::size_t dim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

// ---------------------------------------------------------- Codec fuzz

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng{GetParam()};
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes(rng.uniform_u64(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    // Every decoder must either produce a value or throw CodecError —
    // never crash, never loop, never read out of bounds (ASAN would bark).
    try { (void)decode_hello(bytes); } catch (const CodecError&) {}
    try { (void)decode_lookup_request(bytes); } catch (const CodecError&) {}
    try { (void)decode_lookup_response(bytes); } catch (const CodecError&) {}
    try { (void)decode_entry_advert(bytes); } catch (const CodecError&) {}
  }
}

TEST_P(CodecFuzz, TruncationsOfValidMessagesThrowOrParse) {
  Rng rng{GetParam() ^ 0xabcdULL};
  LookupResponseMsg msg;
  msg.request_id = rng.next_u64();
  msg.sender = static_cast<NodeId>(rng.next_u64());
  for (int i = 0; i < 3; ++i) {
    WireEntry e;
    e.feature = random_unit(rng, 16);
    e.label = static_cast<Label>(rng.uniform_u64(100));
    e.quantize_on_wire = rng.chance(0.5);
    msg.entries.push_back(std::move(e));
  }
  const auto full = encode(msg);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> truncated(full.begin(),
                                        full.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)decode_lookup_response(truncated), CodecError)
        << "cut=" << cut;
  }
  // The untruncated message parses.
  EXPECT_EQ(decode_lookup_response(full).entries.size(), 3u);
}

TEST_P(CodecFuzz, MessageRoundTripExact) {
  Rng rng{GetParam() ^ 0x1234ULL};
  EntryAdvertMsg msg;
  msg.sender = static_cast<NodeId>(rng.next_u64());
  const std::size_t n = rng.uniform_u64(6);
  for (std::size_t i = 0; i < n; ++i) {
    WireEntry e;
    e.feature = random_unit(rng, 1 + rng.uniform_u64(32));
    e.label = static_cast<Label>(rng.uniform_u64(1000));
    e.confidence = static_cast<float>(rng.uniform());
    e.hop_count = static_cast<std::uint8_t>(rng.uniform_u64(4));
    e.source_device = static_cast<std::uint32_t>(rng.next_u64());
    e.age = static_cast<SimDuration>(rng.uniform_u64(1'000'000'000));
    msg.entries.push_back(std::move(e));
  }
  const auto decoded = decode_entry_advert(encode(msg));
  ASSERT_EQ(decoded.entries.size(), msg.entries.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(decoded.entries[i].feature, msg.entries[i].feature);
    EXPECT_EQ(decoded.entries[i].label, msg.entries[i].label);
    EXPECT_EQ(decoded.entries[i].age, msg.entries[i].age);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------- Cache fuzz

class CacheFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheFuzz, InvariantsUnderRandomOperations) {
  Rng rng{GetParam()};
  ApproxCacheConfig cfg;
  cfg.capacity = 16;
  cfg.index = IndexKind::kExact;
  ApproxCache cache{8, cfg, make_lru_policy()};

  std::set<VecId> live;
  SimTime now = 0;
  for (int op = 0; op < 2000; ++op) {
    now += static_cast<SimTime>(rng.uniform_u64(1000));
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const VecId id = cache.insert(random_unit(rng, 8),
                                    static_cast<Label>(rng.uniform_u64(10)),
                                    static_cast<float>(rng.uniform()), now);
      live.insert(id);
    } else if (dice < 0.7 && !live.empty()) {
      // Remove a random live-or-evicted id: remove() must return whether
      // the entry was actually present, never crash.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform_u64(live.size())));
      const bool present = cache.find(*it) != nullptr;
      EXPECT_EQ(cache.remove(*it), present);
      live.erase(it);
    } else {
      (void)cache.lookup({.features = random_unit(rng, 8), .now = now});
    }
    // Invariants after every operation:
    ASSERT_LE(cache.size(), cfg.capacity);
    std::size_t counted = 0;
    cache.for_each([&](const CacheEntry& e) {
      ++counted;
      EXPECT_EQ(e.feature.size(), 8u);
      EXPECT_LE(e.insert_time, now);
    });
    ASSERT_EQ(counted, cache.size());
  }
  // Accounting: every lookup was either a hit or a miss.
  const auto& counters = cache.counters();
  EXPECT_GT(counters.get("insert"), 0u);
  EXPECT_EQ(counters.get("hit") + counters.get("miss"),
            counters.get("hit") + counters.get("miss"));
}

TEST_P(CacheFuzz, SnapshotOfFuzzedCacheRoundTrips) {
  Rng rng{GetParam() ^ 0x5eedULL};
  ApproxCacheConfig cfg;
  cfg.capacity = 64;
  cfg.index = IndexKind::kExact;
  ApproxCache cache{8, cfg, make_utility_policy()};
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 1000;
    cache.insert(random_unit(rng, 8), static_cast<Label>(rng.uniform_u64(10)),
                 static_cast<float>(rng.uniform()), now,
                 rng.chance(0.3) ? EntryOrigin::kPeer : EntryOrigin::kLocal,
                 static_cast<std::uint8_t>(rng.uniform_u64(3)),
                 static_cast<std::uint32_t>(rng.uniform_u64(8)));
  }
  const auto bytes = save_snapshot(cache, now);
  ApproxCache restored{8, cfg, make_utility_policy()};
  EXPECT_EQ(load_snapshot(restored, bytes, now), cache.size());
  EXPECT_EQ(restored.size(), cache.size());
  // Same label multiset.
  std::multiset<Label> a, b;
  cache.for_each([&a](const CacheEntry& e) { a.insert(e.label); });
  restored.for_each([&b](const CacheEntry& e) { b.insert(e.label); });
  EXPECT_EQ(a, b);
}

TEST_P(CacheFuzz, SnapshotBitFlipsNeverCrash) {
  Rng rng{GetParam() ^ 0xf00dULL};
  ApproxCacheConfig cfg;
  cfg.capacity = 16;
  cfg.index = IndexKind::kExact;
  ApproxCache cache{8, cfg, make_lru_policy()};
  for (int i = 0; i < 10; ++i) {
    cache.insert(random_unit(rng, 8), static_cast<Label>(i), 0.9f, i);
  }
  const auto good = save_snapshot(cache, 100);
  for (int trial = 0; trial < 300; ++trial) {
    auto bad = good;
    const std::size_t pos = rng.uniform_u64(bad.size());
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    ApproxCache target{8, cfg, make_lru_policy()};
    try {
      (void)load_snapshot(target, bad, 100);
    } catch (const CodecError&) {
      // fine: malformed input must be rejected, not crash
    }
  }
}

TEST_P(CacheFuzz, EvictionPlusSnapshotPreservesEntriesAndVotes) {
  // 200 randomized insert/evict/lookup schedules; after each, a snapshot
  // save/load round trip must preserve the exact entry set (label +
  // feature) and answer H-kNN probes identically to the original cache.
  Rng rng{GetParam() ^ 0xe51cULL};
  for (int schedule = 0; schedule < 200; ++schedule) {
    ApproxCacheConfig cfg;
    cfg.capacity = 6 + rng.uniform_u64(20);
    cfg.index = IndexKind::kExact;
    ApproxCache cache{8, cfg, rng.chance(0.5)
                                  ? make_lru_policy()
                                  : make_utility_policy()};
    std::vector<VecId> ids;
    SimTime now = 0;
    const int ops = 30 + static_cast<int>(rng.uniform_u64(40));
    for (int op = 0; op < ops; ++op) {
      now += 1 + static_cast<SimTime>(rng.uniform_u64(2000));
      const double dice = rng.uniform();
      if (dice < 0.6) {
        // Inserting past capacity exercises eviction on most schedules.
        ids.push_back(cache.insert(
            random_unit(rng, 8), static_cast<Label>(rng.uniform_u64(12)),
            static_cast<float>(rng.uniform()), now,
            rng.chance(0.3) ? EntryOrigin::kPeer : EntryOrigin::kLocal));
      } else if (dice < 0.75 && !ids.empty()) {
        (void)cache.remove(ids[rng.uniform_u64(ids.size())]);
      } else {
        // Touches voters.
        (void)cache.lookup({.features = random_unit(rng, 8), .now = now});
      }
    }

    const auto bytes = save_snapshot(cache, now);
    ApproxCache restored{8, cfg, make_lru_policy()};
    ASSERT_EQ(load_snapshot(restored, bytes, now), cache.size());
    ASSERT_EQ(restored.size(), cache.size());

    // Identical entry set: same multiset of (label, feature).
    using Key = std::pair<Label, FeatureVec>;
    std::multiset<Key> a, b;
    cache.for_each(
        [&a](const CacheEntry& e) { a.emplace(e.label, e.feature); });
    restored.for_each(
        [&b](const CacheEntry& e) { b.emplace(e.label, e.feature); });
    ASSERT_EQ(a, b) << "schedule " << schedule;

    // Identical H-kNN behaviour on random probes.
    for (int probe = 0; probe < 5; ++probe) {
      const FeatureVec q = random_unit(rng, 8);
      const auto va = cache.peek_vote({.features = q});
      const auto vb = restored.peek_vote({.features = q});
      ASSERT_EQ(va.has_value(), vb.has_value()) << "schedule " << schedule;
      if (va.has_value()) {
        EXPECT_EQ(va->label, vb->label);
        EXPECT_EQ(va->voters, vb->voters);
        EXPECT_FLOAT_EQ(va->nearest_distance, vb->nearest_distance);
      }
    }
  }
}

TEST_P(CacheFuzz, ClearEmptiesCacheAndIndexButKeepsIdsFresh) {
  Rng rng{GetParam() ^ 0xc1eaULL};
  ApproxCacheConfig cfg;
  cfg.capacity = 32;
  cfg.index = IndexKind::kExact;
  ApproxCache cache{8, cfg, make_lru_policy()};
  std::vector<VecId> before;
  for (int i = 0; i < 20; ++i) {
    before.push_back(cache.insert(random_unit(rng, 8),
                                  static_cast<Label>(i % 5), 0.9f, i));
  }
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.nearest_distance(random_unit(rng, 8)).has_value());
  EXPECT_FALSE(cache.lookup({.features = random_unit(rng, 8), .now = 100}).vote.has_value());
  // Ids are never reused after a wipe: stale provenance cannot alias.
  const VecId fresh =
      cache.insert(random_unit(rng, 8), 1, 0.9f, 101);
  for (const VecId old : before) EXPECT_NE(fresh, old);
  EXPECT_GT(fresh, before.back());
}

TEST_P(CacheFuzz, QuantizedSnapshotKeepsCodesCoherentWithFloats) {
  // With the SQ8 scan on, every float row has a code-arena row. Churn the
  // cache, snapshot, restore (restore re-inserts, so codes are re-encoded),
  // and clear: at each step every live entry's SQ8 reconstruction must
  // equal re-encoding its float feature from scratch — no stale code rows.
  Rng rng{GetParam() ^ 0x58aaULL};
  ApproxCacheConfig cfg;
  cfg.capacity = 24;
  cfg.index = IndexKind::kLsh;
  cfg.alsh.lsh.num_tables = 4;
  cfg.alsh.lsh.hashes_per_table = 6;
  cfg.alsh.lsh.bucket_width = 0.6f;
  cfg.alsh.lsh.quantize.enabled = true;
  cfg.alsh.lsh.quantize.rerank_k = 8;

  auto expect_coherent = [](const ApproxCache& c) {
    c.for_each([&c](const CacheEntry& e) {
      const FeatureVec got = c.index().reconstructed(e.id);
      const FeatureVec want = dequantize(quantize(e.feature));
      ASSERT_EQ(got.size(), want.size()) << "id " << e.id;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_FLOAT_EQ(got[i], want[i]) << "id " << e.id << " dim " << i;
      }
    });
  };

  ApproxCache cache{8, cfg, make_lru_policy()};
  ASSERT_TRUE(cache.quantized_scan());
  std::vector<VecId> ids;
  SimTime now = 0;
  for (int op = 0; op < 200; ++op) {
    now += 1 + static_cast<SimTime>(rng.uniform_u64(1000));
    const double dice = rng.uniform();
    if (dice < 0.6) {
      // Past capacity this evicts, freeing slots for reuse.
      ids.push_back(cache.insert(random_unit(rng, 8),
                                 static_cast<Label>(rng.uniform_u64(10)),
                                 static_cast<float>(rng.uniform()), now));
    } else if (dice < 0.75 && !ids.empty()) {
      (void)cache.remove(ids[rng.uniform_u64(ids.size())]);
    } else {
      (void)cache.lookup({.features = random_unit(rng, 8), .now = now});
    }
  }
  expect_coherent(cache);

  const auto bytes = save_snapshot(cache, now);
  ApproxCache restored{8, cfg, make_lru_policy()};
  ASSERT_EQ(load_snapshot(restored, bytes, now), cache.size());
  ASSERT_TRUE(restored.quantized_scan());
  expect_coherent(restored);

  // Crash-recovery wipe: no code row may survive clear().
  restored.clear();
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_TRUE(restored.index().reconstructed(ids.empty() ? 0 : ids[0])
                  .empty());
  const VecId fresh = restored.insert(random_unit(rng, 8), 1, 0.9f, now + 1);
  (void)fresh;
  expect_coherent(restored);
}

TEST_P(CacheFuzz, ConcurrentBatchedReadersSurviveMixedWriterOps) {
  // Randomized schedule of the concurrent API: batched readers (each with
  // its own scratch, folding at random points) race a writer running the
  // same insert/remove/lookup mix as the sequential fuzz above. Invariants
  // after the dust settles: capacity respected, folded hit+miss tallies
  // equal the lookups answered, and the cache still answers queries.
  const std::uint64_t schedule = GetParam();
  ApproxCacheConfig cfg;
  cfg.capacity = 48;
  cfg.index = IndexKind::kLsh;
  cfg.hknn.k = 3;
  ApproxCache cache{8, cfg, make_lru_policy()};
  Rng seed_rng{schedule};
  for (int i = 0; i < 32; ++i) {
    cache.insert(random_unit(seed_rng, 8), static_cast<Label>(i % 6), 0.9f,
                 static_cast<SimTime>(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&cache, &stop, &answered, schedule, t] {
      Rng rng{schedule ^ (0xbeefULL + static_cast<std::uint64_t>(t))};
      CacheQueryScratch scratch = cache.make_scratch();
      std::vector<CacheResult> out(8);
      std::uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<float> flat;
        for (int i = 0; i < 8; ++i) {
          const FeatureVec v = random_unit(rng, 8);
          flat.insert(flat.end(), v.begin(), v.end());
        }
        cache.lookup_batch({.features = flat, .count = 8, .now = 1}, out,
                           scratch);
        done += 8;
        if (rng.chance(0.1)) cache.fold_scratch(scratch);
      }
      cache.fold_scratch(scratch);
      answered.fetch_add(done, std::memory_order_relaxed);
    });
  }

  std::thread writer([&cache, &stop, schedule] {
    Rng rng{schedule ^ 0xf00dULL};
    std::vector<VecId> ids;
    SimTime now = 100;
    for (int op = 0; op < 1500; ++op) {
      now += 1 + static_cast<SimTime>(rng.uniform_u64(100));
      const double dice = rng.uniform();
      if (dice < 0.6 || ids.empty()) {
        ids.push_back(cache.insert(random_unit(rng, 8),
                                   static_cast<Label>(rng.uniform_u64(10)),
                                   static_cast<float>(rng.uniform()), now));
      } else if (dice < 0.75) {
        (void)cache.remove(ids[rng.uniform_u64(ids.size())]);
      } else {
        (void)cache.lookup({.features = random_unit(rng, 8), .now = now});
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (auto& th : readers) th.join();

  EXPECT_LE(cache.size(), cfg.capacity);
  // Writer-side legacy lookups also tally hit/miss, so the folded batched
  // tallies are a lower bound on the total.
  EXPECT_GE(cache.counters().get("hit") + cache.counters().get("miss"),
            answered.load());
  // Still serves queries after the churn.
  CacheQueryScratch scratch = cache.make_scratch();
  std::vector<CacheResult> out(1);
  const FeatureVec probe = random_unit(seed_rng, 8);
  cache.lookup_batch({.features = probe, .count = 1, .now = 9999}, out,
                     scratch);
  EXPECT_GE(out[0].latency, cfg.lookup_base_latency);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz, ::testing::Values(10u, 20u, 30u));

// ---------------------------------------------------------- LSH property

class LshProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LshProperty, ResultsAlwaysValid) {
  Rng rng{GetParam()};
  LshParams params;
  params.probes_per_table = rng.uniform_u64(3);
  PStableLshIndex lsh{8, params};
  ExactKnnIndex exact{8};
  std::set<VecId> stored;
  for (int op = 0; op < 500; ++op) {
    if (rng.chance(0.6) || stored.empty()) {
      const VecId id = static_cast<VecId>(op);
      const FeatureVec v = random_unit(rng, 8);
      lsh.insert(id, v);
      exact.insert(id, v);
      stored.insert(id);
    } else if (rng.chance(0.3)) {
      auto it = stored.begin();
      std::advance(it, static_cast<long>(rng.uniform_u64(stored.size())));
      EXPECT_TRUE(lsh.remove(*it));
      EXPECT_TRUE(exact.remove(*it));
      stored.erase(it);
    } else {
      const FeatureVec q = random_unit(rng, 8);
      const auto approx = lsh.query(q, 4);
      const auto truth = exact.query(q, 4);
      // Every returned id exists; distances ascend; the approximate top-1
      // can never beat the exact top-1.
      for (std::size_t i = 0; i < approx.size(); ++i) {
        EXPECT_TRUE(stored.count(approx[i].id));
        if (i > 0) EXPECT_GE(approx[i].distance, approx[i - 1].distance);
      }
      if (!approx.empty() && !truth.empty()) {
        EXPECT_GE(approx[0].distance, truth[0].distance - 1e-6f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LshProperty,
                         ::testing::Values(100u, 200u, 300u));

// ---------------------------------------------------------- Event order

class EventOrderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderFuzz, FiringOrderIsTimeThenFifo) {
  Rng rng{GetParam()};
  EventSimulator sim;
  struct Fired {
    SimTime t;
    int seq;
  };
  std::vector<Fired> fired;
  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<SimTime>(rng.uniform_u64(100));
    sim.schedule_at(t, [&fired, t, i] { fired.push_back({t, i}); });
  }
  sim.run_all();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i].t, fired[i - 1].t);
    if (fired[i].t == fired[i - 1].t) {
      ASSERT_GT(fired[i].seq, fired[i - 1].seq);  // FIFO within a timestamp
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderFuzz,
                         ::testing::Values(7u, 77u, 777u));

// ---------------------------------------------------------- Trace

TEST(Trace, RoundTripAndAnalysisMatchesLiveMetrics) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 8 * kSecond;
  cfg.num_devices = 2;
  cfg.record_trace = true;
  ExperimentRunner runner{cfg};
  const ExperimentMetrics live = runner.run();

  const auto bytes = runner.trace().serialize();
  const auto events = TraceRecorder::parse(bytes);
  EXPECT_EQ(events.size(), live.frames());

  const ExperimentMetrics replayed = analyze_trace(events);
  EXPECT_EQ(replayed.frames(), live.frames());
  EXPECT_DOUBLE_EQ(replayed.accuracy(), live.accuracy());
  // Live metrics merge device samples in sorted order, the trace replays
  // them chronologically; the float sums differ in the last ulp.
  EXPECT_NEAR(replayed.mean_latency_ms(), live.mean_latency_ms(), 1e-9);
  EXPECT_DOUBLE_EQ(replayed.reuse_ratio(), live.reuse_ratio());

  // Per-device slices partition the whole.
  const ExperimentMetrics d0 = analyze_trace_device(events, 0);
  const ExperimentMetrics d1 = analyze_trace_device(events, 1);
  EXPECT_EQ(d0.frames() + d1.frames(), live.frames());
}

TEST(Trace, EmptyTraceSerializes) {
  TraceRecorder recorder;
  const auto events = TraceRecorder::parse(recorder.serialize());
  EXPECT_TRUE(events.empty());
}

TEST(Trace, DisabledByDefault) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 3 * kSecond;
  cfg.num_devices = 1;
  ExperimentRunner runner{cfg};
  runner.run();
  EXPECT_EQ(runner.trace().size(), 0u);
}

TEST(Trace, CorruptBytesThrow) {
  TraceRecorder recorder;
  RecognitionResult result;
  result.source = ResultSource::kTemporalReuse;
  recorder.record(0, result);
  auto bytes = recorder.serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(TraceRecorder::parse(bytes), CodecError);
  auto truncated = recorder.serialize();
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(TraceRecorder::parse(truncated), CodecError);
}

TEST(Trace, DeterministicBytesAcrossIdenticalRuns) {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 5 * kSecond;
  cfg.num_devices = 2;
  cfg.record_trace = true;
  ExperimentRunner a{cfg}, b{cfg};
  a.run();
  b.run();
  EXPECT_EQ(a.trace().serialize(), b.trace().serialize());
}

// ---------------------------------------------------------- Edge sweep fuzz

class EdgeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The TTL sweep's contract: for any mix of shard counts, TTLs, insert
// times and sweep times, a sweep removes exactly the expired entries —
// never an unexpired one, and never leaves an expired one behind.
TEST_P(EdgeFuzz, SweepRemovesExactlyTheExpiredEntries) {
  Rng rng{GetParam()};
  constexpr std::size_t kDim = 16;
  for (int trial = 0; trial < 25; ++trial) {
    EdgeParams params;
    params.shards = 1 + rng.uniform_u64(4);
    params.capacity = 512;  // roomy: eviction must not muddy the property
    params.ttl = 1 + static_cast<SimDuration>(rng.uniform_u64(50'000));
    params.error_budget = 1.0f;  // admit everything
    EdgeCacheService svc{kDim, params};

    const std::size_t n = 1 + rng.uniform_u64(64);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(svc.feed(random_unit(rng, kDim),
                           static_cast<Label>(rng.uniform_u64(8)), 0.9f,
                           static_cast<SimTime>(rng.uniform_u64(100'000))));
    }
    // Entry ids are per-shard sequences, so key the bookkeeping by
    // (shard, id) — two shards can both hold an id 1.
    std::map<std::pair<std::size_t, VecId>, SimTime> inserted;
    for (std::size_t s = 0; s < svc.shard_count(); ++s) {
      svc.shard(s).for_each([&inserted, s](const CacheEntry& e) {
        inserted.emplace(std::make_pair(s, e.id), e.insert_time);
      });
    }
    ASSERT_EQ(inserted.size(), n);

    const SimTime now = static_cast<SimTime>(rng.uniform_u64(160'000));
    const std::size_t removed = svc.sweep(now);

    std::set<std::pair<std::size_t, VecId>> alive;
    for (std::size_t s = 0; s < svc.shard_count(); ++s) {
      svc.shard(s).for_each([&alive, s](const CacheEntry& e) {
        alive.insert(std::make_pair(s, e.id));
      });
    }
    for (const auto& [key, at] : inserted) {
      const bool expired = now >= at + params.ttl;
      EXPECT_EQ(alive.count(key) == 0, expired)
          << "shard " << key.first << " id " << key.second << " inserted at "
          << at << ", sweep at " << now << ", ttl " << params.ttl;
    }
    EXPECT_EQ(removed, inserted.size() - alive.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeFuzz, ::testing::Values(11u, 22u, 33u));

// ------------------------------------------------- staged splice fuzz

class SpliceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The region-reuse correctness contract: splicing the cached activations of
// every *unchanged* block back into the staged forward pass never changes
// the embedding — bit-identical to recomputing the whole frame, for any
// keyframe, any legal grid, and any subset of changed blocks.
TEST_P(SpliceFuzz, SplicingUnchangedBlocksNeverChangesTheEmbedding) {
  Rng rng{GetParam()};
  const MiniCnn cnn{48, 7};
  const MiniCnn::ForwardPlan& plan = MiniCnn::plan();
  constexpr int kSide = MiniCnn::kInputSide;
  for (int trial = 0; trial < 20; ++trial) {
    Image keyframe(kSide, kSide, 3);
    for (int y = 0; y < kSide; ++y) {
      for (int x = 0; x < kSide; ++x) {
        for (int c = 0; c < 3; ++c) {
          keyframe.at(x, y, c) = static_cast<float>(rng.uniform());
        }
      }
    }
    const int grids[] = {2, 4, 8};
    const int grid = grids[rng.uniform_u64(3)];
    const int bw = kSide / grid;

    // Flip a random subset of blocks (possibly none, possibly all) and
    // perturb a random sample of each flipped block's pixels.
    Image current = keyframe;
    std::vector<std::uint8_t> input_mask(
        static_cast<std::size_t>(kSide) * kSide, 0);
    for (int by = 0; by < grid; ++by) {
      for (int bx = 0; bx < grid; ++bx) {
        if (rng.uniform() >= 0.4) continue;
        for (int y = by * bw; y < (by + 1) * bw; ++y) {
          for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
            input_mask[static_cast<std::size_t>(y) * kSide + x] = 1;
            if (rng.uniform() < 0.5) {
              current.at(x, y, static_cast<int>(rng.uniform_u64(3))) =
                  static_cast<float>(rng.uniform());
            }
          }
        }
      }
    }

    MiniCnn::ForwardState key_state;
    FeatureVec key_out;
    cnn.embed_into(keyframe, key_state, key_out);

    std::vector<std::uint8_t> stage1_mask(plan.stage1.size() /
                                          plan.stage1.channels);
    std::vector<std::uint8_t> stage2_mask(plan.stage2.size() /
                                          plan.stage2.channels);
    MiniCnn::propagate_dirty(input_mask, plan.input.width, plan.input.height,
                             stage1_mask);
    MiniCnn::propagate_dirty(stage1_mask, plan.stage1.width,
                             plan.stage1.height, stage2_mask);

    MiniCnn::ForwardState state;
    cnn.prepare_input(current, state);
    FeatureVec spliced;
    (void)cnn.forward_spliced(state, key_state.stage1, key_state.stage2,
                              stage1_mask, stage2_mask, spliced);
    ASSERT_EQ(spliced, cnn.embed(current))
        << "trial " << trial << " grid " << grid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpliceFuzz,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace apx

// Tests for the collaboration extensions: hot-set push on discovery, the
// edge cache server, and their scenario-level integration.

#include <gtest/gtest.h>

#include <cmath>

#include "src/p2p/peer_cache.hpp"
#include "src/sim/runner.hpp"

namespace apx {
namespace {

constexpr std::size_t kDim = 8;

FeatureVec unit_at(float angle) {
  FeatureVec v(kDim, 0.0f);
  v[0] = std::cos(angle);
  v[1] = std::sin(angle);
  return v;
}

ApproxCacheConfig cache_config() {
  ApproxCacheConfig cfg;
  cfg.capacity = 64;
  cfg.index = IndexKind::kExact;
  cfg.hknn.max_distance = 0.3f;
  return cfg;
}

MediumParams lossless() {
  MediumParams p;
  p.loss_prob = 0.0;
  p.jitter = 0;
  return p;
}

// ------------------------------------------------------------ Hot-set

struct TwoPeers {
  EventSimulator sim;
  WirelessMedium medium{sim, lossless(), 7};
  ApproxCache cache_a{kDim, cache_config(), make_lru_policy()};
  ApproxCache cache_b{kDim, cache_config(), make_lru_policy()};
  std::unique_ptr<PeerCacheService> a, b;

  explicit TwoPeers(PeerCacheParams params) {
    params.advert_enabled = false;  // isolate the hot-set path
    a = std::make_unique<PeerCacheService>(sim, medium, cache_a, params, 0);
    b = std::make_unique<PeerCacheService>(sim, medium, cache_b, params, 0);
  }
};

TEST(HotSet, PushedToNewlyDiscoveredPeer) {
  PeerCacheParams params;
  params.hotset_push_max = 4;
  TwoPeers peers{params};
  // A has popular entries before B appears.
  for (int i = 0; i < 8; ++i) {
    peers.cache_a.insert(unit_at(0.3f * static_cast<float>(i)), i, 0.9f, 0);
  }
  // Make entries 0..3 the most accessed.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      peers.cache_a.lookup(
          {.features = unit_at(0.3f * static_cast<float>(i)), .now = 1});
    }
  }
  peers.a->start();
  peers.b->start();
  peers.sim.run_until(200 * kMillisecond);
  // B received A's hot set (4 entries, the most-accessed ones).
  EXPECT_EQ(peers.cache_b.size(), 4u);
  EXPECT_GE(peers.a->counters().get("hotset_push"), 1u);
  EXPECT_EQ(peers.a->counters().get("hotset_entries"), 4u);
  int found_popular = 0;
  peers.cache_b.for_each([&](const CacheEntry& e) {
    if (e.label >= 0 && e.label < 4) ++found_popular;
    EXPECT_EQ(e.origin, EntryOrigin::kPeer);
  });
  EXPECT_EQ(found_popular, 4);
}

TEST(HotSet, DisabledByDefault) {
  TwoPeers peers{PeerCacheParams{}};
  peers.cache_a.insert(unit_at(0.0f), 1, 0.9f, 0);
  peers.a->start();
  peers.b->start();
  peers.sim.run_until(200 * kMillisecond);
  EXPECT_EQ(peers.cache_b.size(), 0u);
  EXPECT_EQ(peers.a->counters().get("hotset_push"), 0u);
}

TEST(HotSet, NotRepeatedWhileNeighborStaysLive) {
  PeerCacheParams params;
  params.hotset_push_max = 4;
  TwoPeers peers{params};
  peers.cache_a.insert(unit_at(0.0f), 1, 0.9f, 0);
  peers.a->start();
  peers.b->start();
  // Many beacon rounds: the push must fire only on first contact.
  peers.sim.run_until(5 * kSecond);
  EXPECT_EQ(peers.a->counters().get("hotset_push"), 1u);
}

TEST(HotSet, RefiresAfterExpiryAndReturn) {
  PeerCacheParams params;
  params.hotset_push_max = 2;
  TwoPeers peers{params};
  peers.cache_a.insert(unit_at(0.0f), 1, 0.9f, 0);
  peers.a->start();
  peers.b->start();
  peers.sim.run_until(300 * kMillisecond);
  EXPECT_EQ(peers.a->counters().get("hotset_push"), 1u);
  // B leaves radio range long enough to expire, then returns.
  peers.medium.set_cell(peers.b->id(), 99);
  peers.sim.run_until(peers.sim.now() + 3 * kSecond);
  peers.medium.set_cell(peers.b->id(), 0);
  peers.sim.run_until(peers.sim.now() + 2 * kSecond);
  EXPECT_GE(peers.a->counters().get("hotset_push"), 2u);
}

TEST(HotSet, OnlyLocalEntriesPushed) {
  PeerCacheParams params;
  params.hotset_push_max = 8;
  TwoPeers peers{params};
  peers.cache_a.insert(unit_at(0.0f), 1, 0.9f, 0);
  peers.cache_a.insert(unit_at(1.0f), 2, 0.9f, 0, EntryOrigin::kPeer, 1, 5);
  peers.a->start();
  peers.b->start();
  peers.sim.run_until(300 * kMillisecond);
  EXPECT_EQ(peers.cache_b.size(), 1u);  // only the local-origin entry
  peers.cache_b.for_each(
      [](const CacheEntry& e) { EXPECT_EQ(e.label, 1); });
}

// --------------------------------------------------------------- Edge tier

ScenarioConfig edge_scenario() {
  ScenarioConfig cfg = default_scenario();
  cfg.duration = 12 * kSecond;
  cfg.num_devices = 3;
  cfg.pipeline = make_edge_config();
  return cfg;
}

TEST(EdgeTier, AccumulatesDeviceResults) {
  ExperimentRunner runner{edge_scenario()};
  runner.run();
  // Devices feed their DNN-validated results; the edge admits them.
  EXPECT_GT(runner.edge_cache_size(), 0u);
}

TEST(EdgeTier, AbsentWithoutTheRung) {
  ScenarioConfig cfg = edge_scenario();
  cfg.pipeline = make_full_system_config();
  ExperimentRunner runner{cfg};
  runner.run();
  EXPECT_EQ(runner.edge_cache_size(), 0u);
}

TEST(EdgeTier, RunsAreDeterministic) {
  const ScenarioConfig cfg = edge_scenario();
  ExperimentRunner a{cfg}, b{cfg};
  const ExperimentMetrics ma = a.run();
  const ExperimentMetrics mb = b.run();
  EXPECT_DOUBLE_EQ(ma.mean_latency_ms(), mb.mean_latency_ms());
  EXPECT_EQ(a.edge_cache_size(), b.edge_cache_size());
}

TEST(EdgeTier, DoesNotDegradeAccuracy) {
  // Pooled over seeds: a single-seed comparison of two different ladders is
  // dominated by reshuffled timing/medium draws, not by edge-served errors.
  ExperimentMetrics with, without;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ScenarioConfig cfg = edge_scenario();
    cfg.duration = 20 * kSecond;
    cfg.seed = seed;
    cfg.pipeline = make_full_system_config();
    without.merge(run_scenario(cfg));
    cfg.pipeline = make_edge_config();
    with.merge(run_scenario(cfg));
  }
  EXPECT_GT(with.accuracy(), without.accuracy() - 0.03);
}

}  // namespace
}  // namespace apx

// Concurrency tests for the shared ApproxCache: batched-vs-single parity,
// deferred side-effect folding, and N-readers/1-writer interleavings. The
// interleaved tests are the payload of the TSan CI leg — they pass trivially
// on a race-free build and light up under ThreadSanitizer otherwise.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "src/ann/adaptive_lsh.hpp"
#include "src/cache/approx_cache.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx {
namespace {

constexpr std::size_t kDim = 16;

FeatureVec random_unit(Rng& rng, std::size_t dim = kDim) {
  FeatureVec v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal());
  normalize(v);
  return v;
}

ApproxCacheConfig test_config(IndexKind index, std::size_t capacity = 512) {
  ApproxCacheConfig cfg;
  cfg.capacity = capacity;
  cfg.index = index;
  cfg.hknn.k = 4;
  cfg.hknn.max_distance = 0.8f;
  cfg.hknn.homogeneity_threshold = 0.6f;
  return cfg;
}

// Packs `count` fresh random unit vectors row-major, as lookup_batch wants.
std::vector<float> pack_queries(Rng& rng, std::size_t count) {
  std::vector<float> flat;
  flat.reserve(count * kDim);
  for (std::size_t i = 0; i < count; ++i) {
    const FeatureVec v = random_unit(rng);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

void fill_cache(ApproxCache& cache, Rng& rng, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    cache.insert(random_unit(rng), static_cast<Label>(i % 16), 0.9f,
                 static_cast<SimTime>(i));
  }
}

// ------------------------------------------------------ Batch == single

// The batched path must agree with the sequential path wherever the
// sequential path is side-effect-free on query results: p-stable LSH, the
// exact scan, and QALSH (whose radius controller is fed only through
// observe_query_feedback, never inline). (A-LSH is excluded on purpose —
// its legacy query_into feeds the width controller, so interleaving legacy
// queries changes the tables the next query sees.)
TEST(BatchParity, BatchMatchesSingleLookup) {
  for (const IndexKind kind :
       {IndexKind::kExact, IndexKind::kLsh, IndexKind::kQalsh}) {
    SCOPED_TRACE(static_cast<int>(kind));
    ApproxCache cache{kDim, test_config(kind), make_lru_policy()};
    Rng rng{7};
    fill_cache(cache, rng, 256);

    constexpr std::size_t kQueries = 64;
    const std::vector<float> flat = pack_queries(rng, kQueries);

    // Batched answers first: the shared path is read-only, so the
    // sequential reference afterwards sees an identical cache.
    CacheQueryScratch scratch = cache.make_scratch();
    std::vector<CacheResult> batched(kQueries);
    cache.lookup_batch({.features = flat, .count = kQueries, .now = 1000},
                       batched, scratch);

    for (std::size_t i = 0; i < kQueries; ++i) {
      const std::span<const float> q{flat.data() + i * kDim, kDim};
      const CacheResult single = cache.lookup({.features = q, .now = 1000});
      ASSERT_EQ(batched[i].vote.has_value(), single.vote.has_value())
          << "query " << i;
      if (single.vote.has_value()) {
        EXPECT_EQ(batched[i].vote->label, single.vote->label);
        EXPECT_EQ(batched[i].vote->voters, single.vote->voters);
        EXPECT_FLOAT_EQ(batched[i].vote->homogeneity,
                        single.vote->homogeneity);
        EXPECT_FLOAT_EQ(batched[i].vote->nearest_distance,
                        single.vote->nearest_distance);
      }
      EXPECT_EQ(batched[i].candidates, single.candidates) << "query " << i;
      EXPECT_EQ(batched[i].latency, single.latency) << "query " << i;
    }
  }
}

TEST(BatchParity, BatchIsDeterministicAcrossRuns) {
  ApproxCache cache{kDim, test_config(IndexKind::kAdaptiveLsh),
                    make_lru_policy()};
  Rng rng{11};
  fill_cache(cache, rng, 256);
  constexpr std::size_t kQueries = 32;
  const std::vector<float> flat = pack_queries(rng, kQueries);
  const CacheQuery q{.features = flat, .count = kQueries, .now = 5};

  CacheQueryScratch s1 = cache.make_scratch();
  CacheQueryScratch s2 = cache.make_scratch();
  std::vector<CacheResult> a(kQueries), b(kQueries);
  cache.lookup_batch(q, a, s1);
  cache.lookup_batch(q, b, s2);  // no fold between: tables unchanged
  for (std::size_t i = 0; i < kQueries; ++i) {
    ASSERT_EQ(a[i].vote.has_value(), b[i].vote.has_value());
    if (a[i].vote.has_value()) {
      EXPECT_EQ(a[i].vote->label, b[i].vote->label);
    }
    EXPECT_EQ(a[i].candidates, b[i].candidates);
  }
}

// ------------------------------------------------------ Fold semantics

TEST(FoldScratch, SideEffectsDeferredUntilFold) {
  ApproxCache cache{kDim, test_config(IndexKind::kExact), make_lru_policy()};
  Rng rng{3};
  const FeatureVec hot = random_unit(rng);
  const VecId id = cache.insert(hot, 1, 0.9f, 0);

  CacheQueryScratch scratch = cache.make_scratch();
  std::vector<CacheResult> out(1);
  cache.lookup_batch({.features = hot, .count = 1, .now = 500}, out, scratch);
  ASSERT_TRUE(out[0].vote.has_value());

  // Nothing visible yet: counters untouched, entry untouched.
  EXPECT_EQ(cache.counters().get("hit"), 0u);
  EXPECT_EQ(cache.find(id)->access_count, 0u);
  EXPECT_EQ(scratch.pending_lookups(), 1u);
  EXPECT_EQ(scratch.pending_hits(), 1u);

  cache.fold_scratch(scratch);
  EXPECT_EQ(cache.counters().get("hit"), 1u);
  EXPECT_EQ(cache.find(id)->access_count, 1u);
  EXPECT_EQ(cache.find(id)->last_access, 500);
  EXPECT_EQ(scratch.pending_lookups(), 0u);
  EXPECT_EQ(scratch.pending_hits(), 0u);

  // A miss folds into the miss counter.
  FeatureVec far(kDim, 0.0f);
  far[kDim - 1] = 1.0f;
  cache.lookup_batch({.features = far, .count = 1, .now = 600}, out, scratch);
  EXPECT_FALSE(out[0].vote.has_value());
  cache.fold_scratch(scratch);
  EXPECT_EQ(cache.counters().get("miss"), 1u);
}

TEST(FoldScratch, FeedsAdaptiveWidthController) {
  // Start with a bucket width wildly off target so a single fold's worth of
  // d_k samples crosses the rebuild tolerance.
  ApproxCacheConfig cfg = test_config(IndexKind::kAdaptiveLsh);
  cfg.alsh.lsh.bucket_width = 64.0f;
  cfg.alsh.width_factor = 8.0f;
  cfg.alsh.min_queries_between_rebuilds = 4;
  cfg.alsh.min_size_to_adapt = 4;
  ApproxCache cache{kDim, cfg, make_lru_policy()};
  Rng rng{19};
  fill_cache(cache, rng, 64);

  const auto* alsh = dynamic_cast<const AdaptiveLshIndex*>(&cache.index());
  ASSERT_NE(alsh, nullptr);
  ASSERT_EQ(alsh->rebuild_count(), 0u);

  constexpr std::size_t kQueries = 16;
  const std::vector<float> flat = pack_queries(rng, kQueries);
  CacheQueryScratch scratch = cache.make_scratch();
  std::vector<CacheResult> out(kQueries);
  cache.lookup_batch({.features = flat, .count = kQueries, .now = 1},
                     out, scratch);
  cache.fold_scratch(scratch);

  // Unit vectors are never farther than 2 apart, so the EMA lands near 1-2
  // and the 64.0 width triggers a rebuild at fold time.
  EXPECT_GE(alsh->rebuild_count(), 1u);
  EXPECT_LT(alsh->current_width(), 64.0f);
}

// ------------------------------------------------------ API validation

TEST(BatchApi, BadSizesThrow) {
  ApproxCache cache{kDim, test_config(IndexKind::kExact), make_lru_policy()};
  Rng rng{5};
  const std::vector<float> flat = pack_queries(rng, 4);
  CacheQueryScratch scratch = cache.make_scratch();
  std::vector<CacheResult> out(4);

  // count disagrees with features.size().
  EXPECT_THROW(cache.lookup_batch({.features = flat, .count = 3}, out,
                                  scratch),
               std::invalid_argument);
  // results span too small.
  std::vector<CacheResult> tiny(2);
  EXPECT_THROW(cache.lookup_batch({.features = flat, .count = 4}, tiny,
                                  scratch),
               std::invalid_argument);
  // Single-frame entry points reject multi-frame requests.
  EXPECT_THROW((void)cache.lookup({.features = flat, .count = 4}),
               std::invalid_argument);
  EXPECT_THROW((void)cache.peek_vote({.features = flat, .count = 4}),
               std::invalid_argument);
  // An empty batch is a no-op, not an error.
  cache.lookup_batch({.features = {}, .count = 0}, out, scratch);
}

// ------------------------------------------------- Readers vs readers

void many_readers_see_identical_results(IndexKind kind) {
  ApproxCache cache{kDim, test_config(kind), make_lru_policy()};
  Rng rng{23};
  fill_cache(cache, rng, 256);
  constexpr std::size_t kQueries = 128;
  const std::vector<float> flat = pack_queries(rng, kQueries);
  const CacheQuery q{.features = flat, .count = kQueries, .now = 9};

  // Sequential reference.
  CacheQueryScratch ref_scratch = cache.make_scratch();
  std::vector<CacheResult> reference(kQueries);
  cache.lookup_batch(q, reference, ref_scratch);

  constexpr int kThreads = 8;
  std::vector<std::vector<CacheResult>> per_thread(
      kThreads, std::vector<CacheResult>(kQueries));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &q, &per_thread, t] {
      CacheQueryScratch scratch = cache.make_scratch();
      for (int round = 0; round < 4; ++round) {
        cache.lookup_batch(q, per_thread[static_cast<std::size_t>(t)],
                           scratch);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kQueries; ++i) {
      const CacheResult& got = per_thread[static_cast<std::size_t>(t)][i];
      ASSERT_EQ(got.vote.has_value(), reference[i].vote.has_value())
          << "thread " << t << " query " << i;
      if (reference[i].vote.has_value()) {
        EXPECT_EQ(got.vote->label, reference[i].vote->label);
      }
      EXPECT_EQ(got.candidates, reference[i].candidates);
    }
  }
}

TEST(ConcurrentReads, ManyReadersSeeIdenticalResults) {
  many_readers_see_identical_results(IndexKind::kLsh);
}

TEST(ConcurrentReads, QalshManyReadersSeeIdenticalResults) {
  many_readers_see_identical_results(IndexKind::kQalsh);
}

// ------------------------------------------------- Readers vs writer

void readers_survive_writer_churn(IndexKind kind) {
  ApproxCacheConfig cfg = test_config(kind, /*capacity=*/256);
  ApproxCache cache{kDim, cfg, make_lru_policy()};
  Rng seed_rng{31};
  fill_cache(cache, seed_rng, 128);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_lookups{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&cache, &stop, &total_lookups, t] {
      Rng rng{100 + static_cast<std::uint64_t>(t)};
      CacheQueryScratch scratch = cache.make_scratch();
      constexpr std::size_t kBatch = 16;
      std::vector<CacheResult> out(kBatch);
      std::uint64_t done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<float> flat = pack_queries(rng, kBatch);
        cache.lookup_batch(
            {.features = flat, .count = kBatch, .now = 1}, out, scratch);
        for (const CacheResult& r : out) {
          // Latency always includes the base cost; a torn read of the
          // entry map or index arenas would break this (and TSan barks).
          EXPECT_GE(r.latency, cache.config().lookup_base_latency);
        }
        done += kBatch;
        if ((done & 0xff) == 0) cache.fold_scratch(scratch);
      }
      cache.fold_scratch(scratch);
      total_lookups.fetch_add(done, std::memory_order_relaxed);
    });
  }

  std::thread writer([&cache, &stop] {
    Rng rng{77};
    std::vector<VecId> ids;
    SimTime now = 1000;
    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.uniform();
      if (dice < 0.70 || ids.empty()) {
        ids.push_back(cache.insert(random_unit(rng),
                                   static_cast<Label>(rng.uniform_u64(16)),
                                   0.9f, now++));
      } else if (dice < 0.95) {
        (void)cache.remove(ids[rng.uniform_u64(ids.size())]);
      } else {
        cache.clear();
        ids.clear();
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  for (auto& th : readers) th.join();

  EXPECT_LE(cache.size(), cfg.capacity);
  EXPECT_GT(total_lookups.load(), 0u);
  // Folded tallies landed: hits + misses == lookups answered.
  EXPECT_EQ(cache.counters().get("hit") + cache.counters().get("miss"),
            total_lookups.load());
}

TEST(ConcurrentReadWrite, ReadersSurviveWriterChurn) {
  readers_survive_writer_churn(IndexKind::kLsh);
}

// The QALSH read path walks sorted lines, pending tails, and the alive
// bitmap that insert/remove/compact mutate — the TSan leg proves the
// reader-writer split covers all of them.
TEST(ConcurrentReadWrite, QalshReadersSurviveWriterChurn) {
  readers_survive_writer_churn(IndexKind::kQalsh);
}

TEST(ConcurrentReadWrite, SharedReadSurfaceDuringBatches) {
  // find/for_each/entries_since/size share the read lock with lookup_batch;
  // hammer them together against a writer.
  ApproxCache cache{kDim, test_config(IndexKind::kExact, 128),
                    make_lru_policy()};
  Rng seed_rng{41};
  fill_cache(cache, seed_rng, 64);

  std::atomic<bool> stop{false};
  std::thread batcher([&cache, &stop] {
    Rng rng{1};
    CacheQueryScratch scratch = cache.make_scratch();
    std::vector<CacheResult> out(8);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<float> flat = pack_queries(rng, 8);
      cache.lookup_batch({.features = flat, .count = 8}, out, scratch);
    }
  });
  std::thread scanner([&cache, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t n = 0;
      cache.for_each([&n](const CacheEntry&) { ++n; });
      EXPECT_LE(n, cache.capacity());
      (void)cache.entries_since(0);
      (void)cache.size();
      (void)cache.find(1);
    }
  });
  std::thread writer([&cache, &stop] {
    Rng rng{2};
    for (int op = 0; op < 2000; ++op) {
      cache.insert(random_unit(rng), static_cast<Label>(op % 8), 0.9f,
                   static_cast<SimTime>(op));
    }
    stop.store(true, std::memory_order_relaxed);
  });

  writer.join();
  batcher.join();
  scanner.join();
  EXPECT_LE(cache.size(), cache.capacity());
}

// ------------------------------------------------------- Edge service

// Many threads hammer one EdgeCacheService with the full direct API mix.
// Each shard serializes its own mutations and the service counters sit
// behind a mutex, so the test passes trivially on a race-free build and
// lights up under TSan otherwise.
TEST(EdgeConcurrent, MixedQueryFeedSweepHammer) {
  EdgeParams params;
  params.shards = 4;
  params.capacity = 64;
  params.error_budget = 1.0f;
  // Tight TTL on a microsecond clock: sweeps race feeds over live entries
  // instead of no-oping on an empty expiry set.
  params.ttl = 20'000;
  params.cache.hknn.max_distance = 0.8f;
  EdgeCacheService svc{kDim, params};

  constexpr int kThreads = 16;  // ISSUE calls for 8-32
  constexpr int kOpsPerThread = 400;
  std::atomic<std::uint64_t> queries{0}, feeds{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&svc, &params, &queries, &feeds, t] {
      Rng rng{900 + static_cast<std::uint64_t>(t)};
      for (int op = 0; op < kOpsPerThread; ++op) {
        const SimTime now = static_cast<SimTime>(op) * 100;
        const double dice = rng.uniform();
        if (dice < 0.45) {
          const CacheResult res = svc.query(random_unit(rng), now);
          EXPECT_GE(res.latency, svc.params().cache.lookup_base_latency);
          queries.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 0.85) {
          (void)svc.feed(random_unit(rng),
                         static_cast<Label>(rng.uniform_u64(16)), 0.9f, now);
          feeds.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 0.95) {
          (void)svc.sweep(now);
        } else {
          EXPECT_LE(svc.size(), params.shards * params.capacity);
        }
      }
    });
  }
  for (auto& th : workers) th.join();

  // Quiescent now: the tallies must balance exactly.
  const Counter& c = svc.counters();
  EXPECT_EQ(c.get("lookup"), queries.load());
  EXPECT_EQ(c.get("feed"), feeds.load());
  EXPECT_EQ(c.get("admit") + c.get("reject_budget"), feeds.load());
  EXPECT_LE(svc.size(), params.shards * params.capacity);
}

}  // namespace
}  // namespace apx

// Unit tests for the image type and the synthetic scene generator,
// including the two generative properties the cache depends on (intra-class
// similarity, inter-class separation).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/image/diff.hpp"
#include "src/image/image.hpp"
#include "src/image/scene.hpp"

namespace apx {
namespace {

// ---------------------------------------------------------------- Image

TEST(Image, ConstructorZeroes) {
  Image img(4, 3, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  for (float v : img.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Image, BadDimensionsThrow) {
  EXPECT_THROW(Image(0, 4, 3), std::invalid_argument);
  EXPECT_THROW(Image(4, -1, 3), std::invalid_argument);
  EXPECT_THROW(Image(4, 4, 2), std::invalid_argument);
}

TEST(Image, AtReadsWhatWasWritten) {
  Image img(2, 2, 3);
  img.at(1, 0, 2) = 0.75f;
  EXPECT_EQ(img.at(1, 0, 2), 0.75f);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
}

TEST(Image, ClampBoundsValues) {
  Image img(1, 1, 1);
  img.at(0, 0, 0) = 2.5f;
  img.clamp();
  EXPECT_EQ(img.at(0, 0, 0), 1.0f);
  img.at(0, 0, 0) = -1.0f;
  img.clamp();
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
}

TEST(Image, ToGrayUsesLumaWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 1.0f;  // pure red
  const Image gray = img.to_gray();
  EXPECT_EQ(gray.channels(), 1);
  EXPECT_NEAR(gray.at(0, 0, 0), 0.299f, 1e-6f);
}

TEST(Image, ToGrayOnGrayIsCopy) {
  Image img(2, 2, 1);
  img.at(1, 1, 0) = 0.5f;
  const Image gray = img.to_gray();
  EXPECT_EQ(gray.at(1, 1, 0), 0.5f);
}

TEST(Image, ResizePreservesConstantImage) {
  Image img(8, 8, 3);
  for (float& v : img.data()) v = 0.42f;
  const Image small = img.resized(3, 5);
  EXPECT_EQ(small.width(), 3);
  EXPECT_EQ(small.height(), 5);
  for (float v : small.data()) EXPECT_NEAR(v, 0.42f, 1e-6f);
}

TEST(Image, ResizeIdentityKeepsPixels) {
  Image img(4, 4, 1);
  img.at(2, 1, 0) = 0.9f;
  const Image same = img.resized(4, 4);
  EXPECT_NEAR(same.at(2, 1, 0), 0.9f, 1e-6f);
}

TEST(Image, ResizeBadDimensionsThrow) {
  Image img(4, 4, 1);
  EXPECT_THROW(img.resized(0, 4), std::invalid_argument);
}

TEST(Image, UpscaleInterpolatesBetweenPixels) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 0.0f;
  img.at(1, 0, 0) = 1.0f;
  const Image big = img.resized(4, 1);
  // Monotone nondecreasing across the gradient.
  for (int x = 1; x < 4; ++x) {
    EXPECT_GE(big.at(x, 0, 0), big.at(x - 1, 0, 0));
  }
}

TEST(Image, MeanAbsDiffIdenticalIsZero) {
  Image img(4, 4, 3);
  for (float& v : img.data()) v = 0.3f;
  EXPECT_EQ(img.mean_abs_diff(img), 0.0f);
}

TEST(Image, MeanAbsDiffKnownValue) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.at(0, 0, 0) = 1.0f;  // diff 1.0 and 0.0 -> mean 0.5
  EXPECT_FLOAT_EQ(a.mean_abs_diff(b), 0.5f);
}

TEST(Image, MeanComputesAverage) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(img.mean(), 0.5f);
}

// ------------------------------------------------------------ diff helpers

TEST(Diff, DownsampleGrayMatchesToGrayResized) {
  // The helper must be exactly to_gray + resized — the temporal rung's
  // keyframe diffs were built on that composition and must not move.
  Image img(12, 8, 3);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 12; ++x) {
      img.at(x, y, 0) = static_cast<float>(x) / 12.0f;
      img.at(x, y, 1) = static_cast<float>(y) / 8.0f;
      img.at(x, y, 2) = 0.25f;
    }
  }
  const Image got = downsample_gray(img, 4);
  const Image want = img.to_gray().resized(4, 4);
  ASSERT_EQ(got.channels(), 1);
  ASSERT_EQ(got.width(), 4);
  ASSERT_EQ(got.height(), 4);
  EXPECT_EQ(got.mean_abs_diff(want), 0.0f);
}

TEST(Diff, BlockMeanAbsDiffIsPerBlock) {
  Image a(8, 8, 1), b(8, 8, 1);
  // Change only the top-right 4x4 block by a constant 0.5.
  for (int y = 0; y < 4; ++y) {
    for (int x = 4; x < 8; ++x) b.at(x, y, 0) = 0.5f;
  }
  std::vector<float> diffs(4);
  block_mean_abs_diff(a, b, 2, diffs);
  EXPECT_FLOAT_EQ(diffs[0], 0.0f);
  EXPECT_FLOAT_EQ(diffs[1], 0.5f);  // row-major: (1, 0) is top-right
  EXPECT_FLOAT_EQ(diffs[2], 0.0f);
  EXPECT_FLOAT_EQ(diffs[3], 0.0f);
}

TEST(Diff, BlockMeanAbsDiffWholeImageMatchesMeanAbsDiff) {
  Image a(8, 8, 1), b(8, 8, 1);
  int i = 0;
  for (float& v : a.data()) v = static_cast<float>(i++ % 7) / 7.0f;
  i = 3;
  for (float& v : b.data()) v = static_cast<float>(i++ % 5) / 5.0f;
  std::vector<float> diffs(1);
  block_mean_abs_diff(a, b, 1, diffs);
  EXPECT_FLOAT_EQ(diffs[0], a.mean_abs_diff(b));
}

TEST(Diff, BlockMeanAbsDiffRejectsBadShapes) {
  Image gray(8, 8, 1), color(8, 8, 3), small(4, 4, 1);
  std::vector<float> diffs(4);
  EXPECT_THROW(block_mean_abs_diff(gray, color, 2, diffs),
               std::invalid_argument);
  EXPECT_THROW(block_mean_abs_diff(gray, small, 2, diffs),
               std::invalid_argument);
  EXPECT_THROW(block_mean_abs_diff(gray, gray, 3, diffs),  // 3 !| 8
               std::invalid_argument);
  std::vector<float> short_out(3);
  EXPECT_THROW(block_mean_abs_diff(gray, gray, 2, short_out),
               std::invalid_argument);
}

// ---------------------------------------------------------------- Scene

SceneGenerator::Config small_config() {
  SceneGenerator::Config cfg;
  cfg.num_classes = 8;
  cfg.image_size = 16;
  cfg.seed = 3;
  return cfg;
}

TEST(Scene, DeterministicRendering) {
  const SceneGenerator gen{small_config()};
  ViewParams view;
  view.noise_sigma = 0.05f;
  view.noise_seed = 9;
  const Image a = gen.render(2, view);
  const Image b = gen.render(2, view);
  EXPECT_EQ(a.mean_abs_diff(b), 0.0f);
}

TEST(Scene, PixelsInUnitRange) {
  const SceneGenerator gen{small_config()};
  ViewParams view;
  view.noise_sigma = 0.2f;
  view.brightness = 0.4f;
  const Image img = gen.render(0, view);
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Scene, ClassOutOfRangeThrows) {
  const SceneGenerator gen{small_config()};
  EXPECT_THROW(gen.render(8, ViewParams{}), std::out_of_range);
  EXPECT_THROW(gen.render(-1, ViewParams{}), std::out_of_range);
}

TEST(Scene, BadConfigThrows) {
  auto cfg = small_config();
  cfg.num_classes = 0;
  EXPECT_THROW(SceneGenerator{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.class_confusion = 1.5f;
  EXPECT_THROW(SceneGenerator{cfg}, std::invalid_argument);
}

TEST(Scene, SameClassNearbyViewsSimilar) {
  const SceneGenerator gen{small_config()};
  ViewParams a;
  ViewParams b = a;
  b.dx += 0.02f;
  const float same_class = gen.render(1, a).mean_abs_diff(gen.render(1, b));
  EXPECT_LT(same_class, 0.05f);
}

TEST(Scene, DifferentClassesDissimilar) {
  const SceneGenerator gen{small_config()};
  const ViewParams view;
  // Average inter-class distance dominates small-view intra-class distance.
  float inter = 0.0f;
  int pairs = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      inter += gen.render(a, view).mean_abs_diff(gen.render(b, view));
      ++pairs;
    }
  }
  inter /= static_cast<float>(pairs);
  EXPECT_GT(inter, 0.05f);
}

TEST(Scene, ConfusionMakesGroupMatesSimilar) {
  auto cfg = small_config();
  cfg.group_size = 2;
  const SceneGenerator distinct{cfg};
  cfg.class_confusion = 0.9f;
  const SceneGenerator confused{cfg};
  const ViewParams view;
  // Classes 0 and 1 share a group; confusion must pull them together.
  const float d_distinct =
      distinct.render(0, view).mean_abs_diff(distinct.render(1, view));
  const float d_confused =
      confused.render(0, view).mean_abs_diff(confused.render(1, view));
  EXPECT_LT(d_confused, d_distinct);
}

TEST(Scene, BrightnessShiftsMean) {
  const SceneGenerator gen{small_config()};
  ViewParams dark, bright;
  bright.brightness = 0.3f;
  EXPECT_GT(gen.render(0, bright).mean(), gen.render(0, dark).mean());
}

TEST(Scene, NoiseChangesWithSeed) {
  const SceneGenerator gen{small_config()};
  ViewParams a;
  a.noise_sigma = 0.1f;
  a.noise_seed = 1;
  ViewParams b = a;
  b.noise_seed = 2;
  EXPECT_GT(gen.render(0, a).mean_abs_diff(gen.render(0, b)), 0.0f);
}

TEST(Scene, OcclusionChangesImage) {
  const SceneGenerator gen{small_config()};
  ViewParams clear;
  ViewParams occluded = clear;
  occluded.occlusion = 0.5f;
  EXPECT_GT(gen.render(0, clear).mean_abs_diff(gen.render(0, occluded)),
            0.01f);
}

TEST(Scene, GrayscaleConfigProducesOneChannel) {
  auto cfg = small_config();
  cfg.channels = 1;
  const SceneGenerator gen{cfg};
  EXPECT_EQ(gen.render(0, ViewParams{}).channels(), 1);
}

// ---------------------------------------------------------------- View

TEST(ViewParams, JitterZeroMagnitudeKeepsPose) {
  Rng rng{1};
  ViewParams v;
  v.dx = 0.5f;
  const ViewParams j = v.jittered(rng, 0.0f);
  EXPECT_EQ(j.dx, v.dx);
  EXPECT_EQ(j.zoom, v.zoom);
}

TEST(ViewParams, JitterRefreshesNoiseSeed) {
  Rng rng{1};
  ViewParams v;
  v.noise_seed = 42;
  const ViewParams j = v.jittered(rng, 0.0f);
  EXPECT_NE(j.noise_seed, v.noise_seed);
}

TEST(ViewParams, LargerMagnitudeMovesFarther) {
  ViewParams v;
  float small_move = 0.0f, big_move = 0.0f;
  for (int i = 0; i < 50; ++i) {
    Rng rng{static_cast<std::uint64_t>(i)};
    Rng rng2{static_cast<std::uint64_t>(i)};
    small_move += std::abs(v.jittered(rng, 0.1f).dx - v.dx);
    big_move += std::abs(v.jittered(rng2, 1.0f).dx - v.dx);
  }
  EXPECT_GT(big_move, small_move);
}

TEST(ViewParams, JitterKeepsZoomPositive) {
  ViewParams v;
  v.zoom = 0.25f;
  for (int i = 0; i < 200; ++i) {
    Rng rng{static_cast<std::uint64_t>(i)};
    EXPECT_GT(v.jittered(rng, 1.0f).zoom, 0.0f);
  }
}

}  // namespace
}  // namespace apx

#include "src/video/stream.hpp"

#include <cmath>
#include <stdexcept>

namespace apx {

VideoStreamGenerator::VideoStreamGenerator(const SceneGenerator& scenes,
                                           const MobilityModel& mobility,
                                           const ZipfSampler& popularity,
                                           const VideoStreamConfig& config,
                                           std::uint64_t seed)
    : scenes_(&scenes),
      mobility_(&mobility),
      popularity_(&popularity),
      config_(config),
      rng_(seed) {
  if (config.fps <= 0.0) {
    throw std::invalid_argument("VideoStreamGenerator: fps <= 0");
  }
  period_ =
      static_cast<SimDuration>(static_cast<double>(kSecond) / config.fps);
  if (period_ <= 0) period_ = 1;
  change_object();
}

void VideoStreamGenerator::change_object() {
  current_label_ = static_cast<Label>(popularity_->sample(rng_));
  view_ = ViewParams{};
  view_.dx = static_cast<float>(
      rng_.normal(0.0, static_cast<double>(config_.view_pan_sigma)));
  view_.dy = static_cast<float>(
      rng_.normal(0.0, static_cast<double>(config_.view_pan_sigma)));
  view_.zoom = static_cast<float>(
      rng_.uniform(static_cast<double>(config_.view_zoom_min),
                   static_cast<double>(config_.view_zoom_max)));
  view_.brightness = static_cast<float>(rng_.normal(0.0, 0.05));
  view_.contrast = static_cast<float>(rng_.uniform(0.9, 1.1));
  view_.noise_sigma = config_.sensor_noise;
  view_.noise_seed = rng_.next_u64();
}

Frame VideoStreamGenerator::next() {
  const SimTime t = next_t_;
  next_t_ += period_;

  const MotionState state = mobility_->state_at(t);
  const double rate = state == MotionState::kStationary
                          ? config_.change_rate_stationary
                      : state == MotionState::kMinor
                          ? config_.change_rate_minor
                          : config_.change_rate_major;
  const double p_change = 1.0 - std::exp(-rate * to_seconds(period_));

  Frame frame;
  frame.t = t;
  frame.true_motion = state;
  if (rng_.chance(p_change)) {
    change_object();
    frame.object_changed = true;
  } else {
    // View drifts proportionally to motion intensity; noise seed refreshes
    // every frame (sensor noise is i.i.d. across frames).
    const auto magnitude = static_cast<float>(
        config_.jitter_scale * mobility_->intensity_of(state));
    view_ = view_.jittered(rng_, magnitude);
    view_.noise_sigma = config_.sensor_noise;
  }
  frame.true_label = current_label_;
  frame.image = scenes_->render(current_label_, view_);
  return frame;
}

}  // namespace apx

#pragma once
// Live-video stream generator: renders a frame sequence whose temporal
// locality is driven by the device's MobilityModel (the same timeline that
// drives the IMU generator). Object changes are a Poisson process whose
// rate depends on the motion state — a stationary phone keeps looking at
// the same thing; a fast pan finds new objects.

#include "src/dnn/model.hpp"
#include "src/image/scene.hpp"
#include "src/imu/mobility.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// One camera frame with its simulation ground truth attached.
struct Frame {
  SimTime t = 0;
  Label true_label = kNoLabel;   ///< object actually in view
  Image image;
  MotionState true_motion = MotionState::kStationary;  ///< for diagnostics
  bool object_changed = false;   ///< first frame of a new object
};

/// Stream shape knobs.
struct VideoStreamConfig {
  double fps = 10.0;
  /// Poisson object-change rates (events/second) per motion state.
  double change_rate_stationary = 0.005;
  double change_rate_minor = 0.08;
  double change_rate_major = 0.80;
  float sensor_noise = 0.02f;    ///< per-frame Gaussian pixel noise sigma
  float jitter_scale = 0.45f;    ///< view drift per unit motion intensity
  /// Vantage-point spread when a new object comes into view. Small values
  /// model venues where everyone sees objects from similar positions
  /// (kiosks, exhibits behind a rail); large values model free movement.
  float view_pan_sigma = 0.4f;
  float view_zoom_min = 0.75f;
  float view_zoom_max = 1.3f;
};

/// Deterministic frame source. Each call to next() advances simulated time
/// by one frame period.
class VideoStreamGenerator {
 public:
  VideoStreamGenerator(const SceneGenerator& scenes,
                       const MobilityModel& mobility,
                       const ZipfSampler& popularity,
                       const VideoStreamConfig& config, std::uint64_t seed);

  /// Renders the next frame.
  Frame next();

  /// Time the next frame will carry.
  SimTime next_frame_time() const noexcept { return next_t_; }

  SimDuration frame_period() const noexcept { return period_; }
  Label current_label() const noexcept { return current_label_; }

 private:
  void change_object();

  const SceneGenerator* scenes_;
  const MobilityModel* mobility_;
  const ZipfSampler* popularity_;
  VideoStreamConfig config_;
  Rng rng_;
  SimDuration period_;
  SimTime next_t_ = 0;
  Label current_label_ = kNoLabel;
  ViewParams view_;
};

}  // namespace apx

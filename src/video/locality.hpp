#pragma once
// Temporal-locality reuse (DESIGN.md §5.5): when a frame is nearly identical
// to the last *keyframe*, the pipeline inherits the keyframe's recognition
// result without extracting features at all. Comparing against the keyframe
// (not the previous frame) prevents unbounded drift; a maximum chain length
// bounds staleness even when frames stay similar.

#include <optional>

#include "src/image/image.hpp"
#include "src/util/clock.hpp"

namespace apx {

/// Temporal reuse knobs.
struct TemporalReuseParams {
  float diff_threshold = 0.045f;  ///< mean-abs-diff accepting reuse
  int max_chain = 30;             ///< reuses before a forced refresh
  int downsample_side = 16;       ///< comparison resolution
  SimDuration check_latency = 400;///< simulated cost of one diff (0.4 ms)
};

/// Result of a temporal-locality check.
struct TemporalCheck {
  bool reusable = false;
  float diff = 0.0f;          ///< mean abs diff vs the keyframe
  SimDuration latency = 0;    ///< simulated cost paid for the check
};

/// Keyframe-based frame-difference detector.
class TemporalReuseDetector {
 public:
  explicit TemporalReuseDetector(const TemporalReuseParams& params = {});

  /// Tests `frame` against the current keyframe. Reuse is refused when
  /// there is no keyframe, the difference exceeds the threshold, or the
  /// chain has reached max_chain. A successful check extends the chain.
  TemporalCheck check(const Image& frame);

  /// Installs `frame` as the new keyframe and resets the chain. Called by
  /// the pipeline after it computed (or fetched) a fresh result.
  void set_keyframe(const Image& frame);

  /// Drops the keyframe (e.g. after major motion invalidates it).
  void invalidate() noexcept;

  int chain_length() const noexcept { return chain_; }
  bool has_keyframe() const noexcept { return keyframe_.has_value(); }
  const TemporalReuseParams& params() const noexcept { return params_; }

 private:
  Image downsample(const Image& frame) const;

  TemporalReuseParams params_;
  std::optional<Image> keyframe_;  ///< downsampled grayscale
  int chain_ = 0;
};

}  // namespace apx

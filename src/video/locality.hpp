#pragma once
// Temporal-locality reuse (DESIGN.md §5.5): when a frame is nearly identical
// to the last *keyframe*, the pipeline inherits the keyframe's recognition
// result without extracting features at all. Comparing against the keyframe
// (not the previous frame) prevents unbounded drift; a maximum chain length
// bounds staleness even when frames stay similar.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/image/image.hpp"
#include "src/util/clock.hpp"

namespace apx {

/// Temporal reuse knobs.
struct TemporalReuseParams {
  float diff_threshold = 0.045f;  ///< mean-abs-diff accepting reuse
  int max_chain = 30;             ///< reuses before a forced refresh
  int downsample_side = 16;       ///< comparison resolution
  SimDuration check_latency = 400;///< simulated cost of one diff (0.4 ms)
};

/// Result of a temporal-locality check.
struct TemporalCheck {
  bool reusable = false;
  float diff = 0.0f;          ///< mean abs diff vs the keyframe
  SimDuration latency = 0;    ///< simulated cost paid for the check
};

/// Keyframe-based frame-difference detector.
class TemporalReuseDetector {
 public:
  explicit TemporalReuseDetector(const TemporalReuseParams& params = {});

  /// Tests `frame` against the current keyframe. Reuse is refused when
  /// there is no keyframe, the difference exceeds the threshold, or the
  /// chain has reached max_chain. A successful check extends the chain.
  TemporalCheck check(const Image& frame);

  /// Installs `frame` as the new keyframe and resets the chain. Called by
  /// the pipeline after it computed (or fetched) a fresh result.
  void set_keyframe(const Image& frame);

  /// Drops the keyframe (e.g. after major motion invalidates it).
  void invalidate() noexcept;

  int chain_length() const noexcept { return chain_; }
  bool has_keyframe() const noexcept { return keyframe_.has_value(); }
  const TemporalReuseParams& params() const noexcept { return params_; }

 private:
  Image downsample(const Image& frame) const;

  TemporalReuseParams params_;
  std::optional<Image> keyframe_;  ///< downsampled grayscale
  int chain_ = 0;
};

/// Block-grid matcher knobs.
struct BlockMatchParams {
  int grid = 4;                   ///< blocks per side
  int side = 32;                  ///< comparison resolution (gray side*side)
  float diff_threshold = 0.045f;  ///< per-block mean-abs-diff accepting reuse
};

/// Block-grid extension of the keyframe machinery: where
/// TemporalReuseDetector answers "is the whole frame still the keyframe?",
/// this tracker answers it per grid block, so a partially-changed frame can
/// reuse the unchanged blocks' cached work (the region-reuse rung,
/// DESIGN.md §11). The reference pixels of a reused block stay those of the
/// frame whose activations were cached — diffing against the latest frame
/// instead would let slow drift accumulate unseen.
class BlockKeyframeTracker {
 public:
  explicit BlockKeyframeTracker(const BlockMatchParams& params = {});

  /// Downsamples `frame` (shared src/image/diff helper) and compares each
  /// block against the keyframe: changed[b] = per-block mean-abs-diff >
  /// threshold, row-major over the grid. With no keyframe every block is
  /// marked changed. Returns the number of changed blocks. `changed` must
  /// have grid*grid entries.
  int classify(const Image& frame, std::span<std::uint8_t> changed);

  /// Installs the blocks flagged in `refresh` from the last classified
  /// frame as the new reference for those blocks (all blocks when there is
  /// no keyframe yet). Call after the frame's activations were (re)computed.
  void update(std::span<const std::uint8_t> refresh);

  /// Drops the keyframe (e.g. after major motion invalidates it).
  void invalidate() noexcept;

  bool has_keyframe() const noexcept { return has_keyframe_; }
  const BlockMatchParams& params() const noexcept { return params_; }

 private:
  BlockMatchParams params_;
  Image reference_;  ///< downsampled grayscale keyframe (per-block ages vary)
  Image last_;       ///< downsampled grayscale of the last classified frame
  std::vector<float> block_diffs_;
  bool has_keyframe_ = false;
};

}  // namespace apx

#include "src/video/locality.hpp"

#include <stdexcept>

#include "src/image/diff.hpp"

namespace apx {

TemporalReuseDetector::TemporalReuseDetector(const TemporalReuseParams& params)
    : params_(params) {
  if (params.diff_threshold < 0.0f || params.max_chain < 0 ||
      params.downsample_side <= 0) {
    throw std::invalid_argument("TemporalReuseDetector: bad parameters");
  }
}

Image TemporalReuseDetector::downsample(const Image& frame) const {
  return downsample_gray(frame, params_.downsample_side);
}

TemporalCheck TemporalReuseDetector::check(const Image& frame) {
  TemporalCheck result;
  result.latency = params_.check_latency;
  if (!keyframe_.has_value()) return result;
  const Image small = downsample(frame);
  result.diff = small.mean_abs_diff(*keyframe_);
  if (result.diff <= params_.diff_threshold && chain_ < params_.max_chain) {
    result.reusable = true;
    ++chain_;
  }
  return result;
}

void TemporalReuseDetector::set_keyframe(const Image& frame) {
  keyframe_ = downsample(frame);
  chain_ = 0;
}

void TemporalReuseDetector::invalidate() noexcept {
  keyframe_.reset();
  chain_ = 0;
}

BlockKeyframeTracker::BlockKeyframeTracker(const BlockMatchParams& params)
    : params_(params) {
  if (params.grid <= 0 || params.side <= 0 ||
      params.side % params.grid != 0 || params.diff_threshold < 0.0f) {
    throw std::invalid_argument("BlockKeyframeTracker: bad parameters");
  }
  block_diffs_.resize(static_cast<std::size_t>(params.grid) * params.grid);
}

int BlockKeyframeTracker::classify(const Image& frame,
                                   std::span<std::uint8_t> changed) {
  const std::size_t blocks =
      static_cast<std::size_t>(params_.grid) * params_.grid;
  if (changed.size() != blocks) {
    throw std::invalid_argument("BlockKeyframeTracker: bad mask size");
  }
  last_ = downsample_gray(frame, params_.side);
  if (!has_keyframe_) {
    for (std::uint8_t& c : changed) c = 1;
    return static_cast<int>(blocks);
  }
  block_mean_abs_diff(last_, reference_, params_.grid, block_diffs_);
  int n = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    changed[b] = block_diffs_[b] > params_.diff_threshold ? 1 : 0;
    n += changed[b];
  }
  return n;
}

void BlockKeyframeTracker::update(std::span<const std::uint8_t> refresh) {
  if (last_.empty()) return;  // nothing classified yet
  if (!has_keyframe_) {
    reference_ = last_;
    has_keyframe_ = true;
    return;
  }
  const int bw = params_.side / params_.grid;
  for (int by = 0; by < params_.grid; ++by) {
    for (int bx = 0; bx < params_.grid; ++bx) {
      if (refresh[static_cast<std::size_t>(by) * params_.grid + bx] == 0) {
        continue;
      }
      for (int y = by * bw; y < (by + 1) * bw; ++y) {
        for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
          reference_.at(x, y, 0) = last_.at(x, y, 0);
        }
      }
    }
  }
}

void BlockKeyframeTracker::invalidate() noexcept {
  has_keyframe_ = false;
}

}  // namespace apx

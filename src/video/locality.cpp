#include "src/video/locality.hpp"

#include <stdexcept>

namespace apx {

TemporalReuseDetector::TemporalReuseDetector(const TemporalReuseParams& params)
    : params_(params) {
  if (params.diff_threshold < 0.0f || params.max_chain < 0 ||
      params.downsample_side <= 0) {
    throw std::invalid_argument("TemporalReuseDetector: bad parameters");
  }
}

Image TemporalReuseDetector::downsample(const Image& frame) const {
  return frame.to_gray().resized(params_.downsample_side,
                                 params_.downsample_side);
}

TemporalCheck TemporalReuseDetector::check(const Image& frame) {
  TemporalCheck result;
  result.latency = params_.check_latency;
  if (!keyframe_.has_value()) return result;
  const Image small = downsample(frame);
  result.diff = small.mean_abs_diff(*keyframe_);
  if (result.diff <= params_.diff_threshold && chain_ < params_.max_chain) {
    result.reusable = true;
    ++chain_;
  }
  return result;
}

void TemporalReuseDetector::set_keyframe(const Image& frame) {
  keyframe_ = downsample(frame);
  chain_ = 0;
}

void TemporalReuseDetector::invalidate() noexcept {
  keyframe_.reset();
  chain_ = 0;
}

}  // namespace apx

#pragma once
// Nearest-neighbour index abstraction the approximate cache builds on.
// Implementations: ExactKnnIndex (linear scan baseline), PStableLshIndex,
// and AdaptiveLshIndex (the A-LSH variant the poster's lineage uses).

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/vecmath.hpp"

namespace apx {

/// Identifier of an indexed vector (the cache's entry id).
using VecId = std::uint64_t;

/// One query result: an indexed vector and its exact L2 distance to the query.
struct Neighbor {
  VecId id = 0;
  float distance = 0.0f;
};

/// Mutable nearest-neighbour index over fixed-dimension float vectors.
///
/// All implementations return *exact* distances for the candidates they
/// surface; approximation only affects which candidates are considered.
class NnIndex {
 public:
  virtual ~NnIndex() = default;

  /// Adds a vector under `id`. Ids must be unique; re-inserting an existing
  /// id is a precondition violation.
  virtual void insert(VecId id, const FeatureVec& v) = 0;

  /// Removes `id` if present; returns whether it was.
  virtual bool remove(VecId id) = 0;

  /// Returns up to `k` nearest stored vectors, closest first.
  virtual std::vector<Neighbor> query(std::span<const float> q,
                                      std::size_t k) const = 0;

  /// Number of stored vectors.
  virtual std::size_t size() const noexcept = 0;

  /// Vector dimensionality the index was built for.
  virtual std::size_t dim() const noexcept = 0;
};

}  // namespace apx

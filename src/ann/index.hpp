#pragma once
// Nearest-neighbour index abstraction the approximate cache builds on.
// Implementations: ExactKnnIndex (linear scan baseline), PStableLshIndex,
// and AdaptiveLshIndex (the A-LSH variant the poster's lineage uses).
// New backends register in make_index() (src/ann/factory.hpp).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/util/vecmath.hpp"

namespace apx {

class MetricsRegistry;

/// Identifier of an indexed vector (the cache's entry id).
using VecId = std::uint64_t;

/// One query result: an indexed vector and its exact L2 distance to the query.
struct Neighbor {
  VecId id = 0;
  float distance = 0.0f;
};

/// Opaque per-caller working set for the batched read-only query path.
/// Backends that keep reusable query buffers (the LSH family) return their
/// own derived type from NnIndex::make_scratch(); one instance per querying
/// thread makes query_batch_into() safe for concurrent callers. Like the
/// legacy internal scratch, it grows to its high-water mark and is never
/// shrunk, so steady-state batched queries allocate nothing.
class IndexScratch {
 public:
  virtual ~IndexScratch() = default;
};

/// Per-query work accounting, returned by value so concurrent readers never
/// share mutable index state. Both the single-query path (query_into's
/// `stats` out-parameter) and the batched path fill one of these; there is
/// no index-owned mirror to race on.
struct QueryStats {
  std::size_t candidates = 0;        ///< vectors whose distance was computed
  std::size_t rerank_survivors = 0;  ///< exact re-rank pass size (SQ8 only)
  std::size_t rounds = 0;            ///< virtual-rehash rounds (QALSH only)
};

/// Mutable nearest-neighbour index over fixed-dimension float vectors.
///
/// All implementations return *exact* distances for the candidates they
/// surface; approximation only affects which candidates are considered.
class NnIndex {
 public:
  virtual ~NnIndex() = default;

  /// Adds a vector under `id`. Ids must be unique; re-inserting an existing
  /// id is a precondition violation.
  virtual void insert(VecId id, const FeatureVec& v) = 0;

  /// Removes `id` if present; returns whether it was.
  virtual bool remove(VecId id) = 0;

  /// Returns up to `k` nearest stored vectors, closest first.
  virtual std::vector<Neighbor> query(std::span<const float> q,
                                      std::size_t k) const = 0;

  /// Allocation-conscious query path: clears and fills `out` with up to `k`
  /// nearest stored vectors, closest first, and — when `stats` is non-null —
  /// fills it with this query's work accounting. Implementations that keep
  /// an internal scratch (the LSH family, the exact scan) perform zero heap
  /// allocations in steady state — `out`'s capacity and the scratch are
  /// reused across calls. The default simply wraps query() and assumes a
  /// full scan for accounting.
  virtual void query_into(std::span<const float> q, std::size_t k,
                          std::vector<Neighbor>& out,
                          QueryStats* stats = nullptr) const {
    out = query(q, k);
    if (stats != nullptr) *stats = {size(), 0, 0};
  }

  /// Creates the per-caller scratch query_batch_into() uses. Returns
  /// nullptr for backends whose query path is already pure (the exact scan
  /// keeps no query state, so the default batch loop is thread-safe as-is).
  /// Callers that query one index from many threads hold one scratch per
  /// thread; the scratch must not outlive the index.
  virtual std::unique_ptr<IndexScratch> make_scratch() const {
    return nullptr;
  }

  /// Batched query path: `queries` holds `count` row-major dim()-sized
  /// vectors; fills results[i] with up to `k` nearest stored vectors for
  /// query i (closest first, same order/tie-break contract as query_into)
  /// and, when `stats` is non-null, stats[i] with that query's work
  /// accounting. Both spans must hold at least `count` elements.
  ///
  /// Thread-safety contract: with a distinct make_scratch() scratch per
  /// caller this is a *read-only* operation — no metrics recording, no
  /// index-owned accounting updates, no width-controller feedback — so any
  /// number of threads may run it concurrently against each other (but not
  /// against insert/remove/rebuild, which require exclusive access; the
  /// cache layer provides that discipline). Backends amortize per-batch
  /// work here (the LSH family hashes table-major so each projection matrix
  /// stays hot across the whole batch); this default simply loops over
  /// query_into and is concurrency-safe only when query_into is genuinely
  /// const (the exact scan), so stateful backends must override it.
  virtual void query_batch_into(std::span<const float> queries,
                                std::size_t count, std::size_t k,
                                IndexScratch* scratch,
                                std::span<std::vector<Neighbor>> results,
                                QueryStats* stats = nullptr) const {
    (void)scratch;
    for (std::size_t i = 0; i < count; ++i) {
      query_into(queries.subspan(i * dim(), dim()), k, results[i],
                 stats != nullptr ? &stats[i] : nullptr);
    }
  }

  /// Applies query feedback gathered on the batched read path, under the
  /// caller's exclusive access: `dk_samples` are the farthest returned
  /// distances of recent queries, `query_count` how many queries ran.
  /// Self-tuning backends (A-LSH) feed their width controller here instead
  /// of inside the read-only batch path. Default: stateless, ignore.
  virtual void observe_query_feedback(std::span<const float> dk_samples,
                                      std::size_t query_count) {
    (void)dk_samples;
    (void)query_count;
  }

  /// The lossy reconstruction of `id`'s stored vector as the quantized
  /// scan sees it (empty when `id` is absent or the index keeps no codes).
  /// Test/diagnostic seam for code<->float arena coherence.
  virtual FeatureVec reconstructed(VecId id) const {
    (void)id;
    return {};
  }

  /// Registers this index's instruments (candidate-set histograms, rebuild
  /// counters, ...) on `metrics`; recording is zero-alloc afterwards. The
  /// registry must outlive the index. Default: not instrumented.
  virtual void attach_metrics(MetricsRegistry& metrics) { (void)metrics; }

  /// Number of stored vectors.
  virtual std::size_t size() const noexcept = 0;

  /// Vector dimensionality the index was built for.
  virtual std::size_t dim() const noexcept = 0;
};

}  // namespace apx

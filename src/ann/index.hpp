#pragma once
// Nearest-neighbour index abstraction the approximate cache builds on.
// Implementations: ExactKnnIndex (linear scan baseline), PStableLshIndex,
// and AdaptiveLshIndex (the A-LSH variant the poster's lineage uses).
// New backends register in make_index() (src/ann/factory.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/vecmath.hpp"

namespace apx {

class MetricsRegistry;

/// Identifier of an indexed vector (the cache's entry id).
using VecId = std::uint64_t;

/// One query result: an indexed vector and its exact L2 distance to the query.
struct Neighbor {
  VecId id = 0;
  float distance = 0.0f;
};

/// Mutable nearest-neighbour index over fixed-dimension float vectors.
///
/// All implementations return *exact* distances for the candidates they
/// surface; approximation only affects which candidates are considered.
class NnIndex {
 public:
  virtual ~NnIndex() = default;

  /// Adds a vector under `id`. Ids must be unique; re-inserting an existing
  /// id is a precondition violation.
  virtual void insert(VecId id, const FeatureVec& v) = 0;

  /// Removes `id` if present; returns whether it was.
  virtual bool remove(VecId id) = 0;

  /// Returns up to `k` nearest stored vectors, closest first.
  virtual std::vector<Neighbor> query(std::span<const float> q,
                                      std::size_t k) const = 0;

  /// Allocation-conscious query path: clears and fills `out` with up to `k`
  /// nearest stored vectors, closest first. Implementations that keep an
  /// internal scratch (the LSH family, the exact scan) perform zero heap
  /// allocations in steady state — `out`'s capacity and the scratch are
  /// reused across calls. The default simply wraps query().
  virtual void query_into(std::span<const float> q, std::size_t k,
                          std::vector<Neighbor>& out) const {
    out = query(q, k);
  }

  /// Stored vectors whose distance the last query (query/query_into)
  /// computed — the work an approximate lookup actually did. Defaults to
  /// size(), which is exact for full-scan indexes.
  virtual std::size_t last_query_candidates() const noexcept {
    return size();
  }

  /// Survivors of the last query's exact re-rank pass — non-zero only for
  /// indexes running a quantized scan (the SQ8 path scores candidates on
  /// codes, then re-scores this many with float vectors). Defaults to 0:
  /// float-scan indexes have no re-rank stage.
  virtual std::size_t last_rerank_survivors() const noexcept { return 0; }

  /// The lossy reconstruction of `id`'s stored vector as the quantized
  /// scan sees it (empty when `id` is absent or the index keeps no codes).
  /// Test/diagnostic seam for code<->float arena coherence.
  virtual FeatureVec reconstructed(VecId id) const {
    (void)id;
    return {};
  }

  /// Registers this index's instruments (candidate-set histograms, rebuild
  /// counters, ...) on `metrics`; recording is zero-alloc afterwards. The
  /// registry must outlive the index. Default: not instrumented.
  virtual void attach_metrics(MetricsRegistry& metrics) { (void)metrics; }

  /// Number of stored vectors.
  virtual std::size_t size() const noexcept = 0;

  /// Vector dimensionality the index was built for.
  virtual std::size_t dim() const noexcept = 0;
};

}  // namespace apx

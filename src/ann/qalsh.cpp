#include "src/ann/qalsh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/util/rng.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

namespace {

/// Ascending (projection, slot): the canonical line order. The slot
/// tie-break makes merges deterministic for equal projections.
struct EntryLess {
  template <typename E>
  bool operator()(const E& a, const E& b) const noexcept {
    return a.proj < b.proj || (a.proj == b.proj && a.slot < b.slot);
  }
};

/// P(|N(0, sigma)| <= h) for sigma = 1: the p-stable collision probability
/// of a window of half-width h at unit distance.
double collision_prob(double h) noexcept {
  return std::erf(h / std::sqrt(2.0));
}

}  // namespace

QalshIndex::QalshIndex(std::size_t dim, const QalshParams& params)
    : dim_(dim), params_(params) {
  if (dim == 0 || !(params.c > 1.0f) ||
      !(params.delta > 0.0f && params.delta < 1.0f) ||
      !(params.beta > 0.0f && params.beta <= 1.0f) || !(params.r0 > 0.0f)) {
    throw std::invalid_argument("QalshIndex: bad parameters");
  }
  // Derive the scheme [Huang et al., PVLDB'15 §4]: the window unit w
  // minimizes the hash count for ratio c; m projections and collision
  // threshold l separate distance-1 collisions (probability p1) from
  // distance-c collisions (p2) with failure probability delta and
  // false-positive fraction beta.
  const double c = static_cast<double>(params.c);
  const double w =
      std::sqrt(8.0 * c * c * std::log(c) / (c * c - 1.0));
  const double p1 = collision_prob(w / 2.0);
  const double p2 = collision_prob(w / (2.0 * c));
  const double ln2b = std::log(2.0 / static_cast<double>(params.beta));
  const double ln1d = std::log(1.0 / static_cast<double>(params.delta));
  const double gap = p1 - p2;
  const double md =
      std::ceil((std::sqrt(ln2b) + std::sqrt(ln1d)) *
                (std::sqrt(ln2b) + std::sqrt(ln1d)) / (2.0 * gap * gap));
  if (!(md >= 1.0) || md > 4096.0) {
    throw std::invalid_argument(
        "QalshIndex: derived projection count out of range "
        "(c too close to 1, or delta/beta too tight)");
  }
  const double eta = std::sqrt(ln2b / ln1d);
  const double alpha = (eta * p1 + p2) / (1.0 + eta);
  scheme_.w = static_cast<float>(w);
  scheme_.p1 = static_cast<float>(p1);
  scheme_.p2 = static_cast<float>(p2);
  scheme_.m = static_cast<std::size_t>(md);
  scheme_.l = std::min(
      scheme_.m,
      std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(alpha * md))));
  start_radius_ = params.r0;

  Rng rng{params.seed};
  proj_.resize(scheme_.m * dim);
  for (float& x : proj_) x = static_cast<float>(rng.normal());
  lines_.resize(scheme_.m);
  prepare_scratch(scratch_);
}

void QalshIndex::prepare_scratch(QueryScratch& sc) const {
  if (sc.proj_q.size() < scheme_.m) sc.proj_q.resize(scheme_.m);
  sc.left.resize(scheme_.m);
  sc.right.resize(scheme_.m);
  sc.pending_left.resize(scheme_.m);
}

std::unique_ptr<IndexScratch> QalshIndex::make_scratch() const {
  auto handle = std::make_unique<ScratchHandle>();
  prepare_scratch(handle->sc);
  return handle;
}

QalshIndex::Slot QalshIndex::claim_slot(VecId id, const FeatureVec& v) {
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_ids_[slot] = id;
    alive_[slot] = 1;
  } else {
    slot = static_cast<Slot>(slot_ids_.size());
    slot_ids_.push_back(id);
    alive_.push_back(1);
    arena_.resize(arena_.size() + dim_);
    if (quantized()) {
      code_arena_.resize(code_arena_.size() + dim_);
      sq8_offset_.resize(sq8_offset_.size() + 1);
      sq8_scale_.resize(sq8_scale_.size() + 1);
      sq8_recon_norm_sq_.resize(sq8_recon_norm_sq_.size() + 1);
    }
  }
  std::copy(v.begin(), v.end(),
            arena_.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(slot) * dim_));
  if (quantized()) {
    const Sq8Stats st = sq8_encode(
        v, code_arena_.data() + static_cast<std::size_t>(slot) * dim_);
    sq8_offset_[slot] = st.offset;
    sq8_scale_[slot] = st.scale;
    sq8_recon_norm_sq_[slot] = st.recon_norm_sq;
  }
  return slot;
}

void QalshIndex::insert(VecId id, const FeatureVec& v) {
  assert(v.size() == dim_);
  // Validate before any state changes: a non-finite projection would poison
  // the sorted line order (and sq8_encode rejects it anyway), and throwing
  // after the slot was claimed would leave the id map inconsistent.
  for (const float x : v) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument("QalshIndex::insert: non-finite value");
    }
  }
  const auto [it, inserted] = id_to_slot_.try_emplace(id, Slot{0});
  if (!inserted) {
    // A silent duplicate would stack a second slot under the same id and
    // leave the first one stale in every line — corrupt under NDEBUG.
    throw std::invalid_argument("QalshIndex::insert: duplicate id");
  }
  const Slot slot = claim_slot(id, v);
  it->second = slot;
  // One matrix-vector pass over the flat projection matrix, then append to
  // every line's pending tail (merged in batches, below).
  dot_batch(v, proj_.data(), scheme_.m, scratch_.proj_q.data());
  for (std::size_t i = 0; i < scheme_.m; ++i) {
    lines_[i].pending.push_back({scratch_.proj_q[i], slot});
  }
  // Amortized merge: a per-insert inplace_merge would be O(n) each;
  // batching max(64, n/64) inserts amortizes the merge while bounding the
  // unsorted tail queries must linearly scan — capped at 4096 so tail
  // scans stay bounded even in very large indexes.
  if (lines_[0].pending.size() >
      std::max<std::size_t>(
          64, std::min<std::size_t>(4096, id_to_slot_.size() / 64))) {
    merge_pending();
  }
}

void QalshIndex::flush() {
  if (!lines_.empty() && !lines_[0].pending.empty()) merge_pending();
}

void QalshIndex::merge_pending() {
  for (HashLine& line : lines_) {
    const auto mid = static_cast<std::ptrdiff_t>(line.sorted.size());
    std::sort(line.pending.begin(), line.pending.end(), EntryLess{});
    line.sorted.insert(line.sorted.end(), line.pending.begin(),
                       line.pending.end());
    std::inplace_merge(line.sorted.begin(), line.sorted.begin() + mid,
                       line.sorted.end(), EntryLess{});
    line.pending.clear();
  }
  ++merges_;
  if (metrics_ != nullptr) metrics_->inc(merges_counter_);
}

bool QalshIndex::remove(VecId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const Slot slot = it->second;
  // Tombstone only: the slot's line entries stay in place (sweeps skip dead
  // slots at candidacy) and the slot is NOT reusable until compaction has
  // filtered those entries — reuse before that would alias a fresh vector
  // with a stale projection.
  alive_[slot] = 0;
  dead_slots_.push_back(slot);
  id_to_slot_.erase(it);
  if (dead_slots_.size() >
      std::max<std::size_t>(64, id_to_slot_.size() / 4)) {
    compact();
  }
  return true;
}

void QalshIndex::compact() {
  for (HashLine& line : lines_) {
    // Stable filters: the surviving sorted order is preserved as-is.
    std::erase_if(line.sorted,
                  [this](const Entry& e) { return alive_[e.slot] == 0; });
    std::erase_if(line.pending,
                  [this](const Entry& e) { return alive_[e.slot] == 0; });
  }
  free_slots_.insert(free_slots_.end(), dead_slots_.begin(),
                     dead_slots_.end());
  dead_slots_.clear();
  ++compactions_;
  if (metrics_ != nullptr) metrics_->inc(compactions_counter_);
}

std::vector<Neighbor> QalshIndex::query(std::span<const float> q,
                                        std::size_t k) const {
  std::vector<Neighbor> result;
  query_into(q, k, result);
  return result;
}

void QalshIndex::score_from(QueryScratch& sc, std::span<const float> q,
                            std::size_t from, std::size_t k) const {
  const std::size_t total = sc.candidates.size();
  if (total == from) return;
  if (sc.distances.size() < total) sc.distances.resize(total);
  const std::span<const std::uint32_t> fresh{sc.candidates.data() + from,
                                             total - from};
  if (quantized()) {
    float q_norm_sq = 0.0f;
    float q_sum = 0.0f;
    for (const float x : q) {
      q_norm_sq += x * x;
      q_sum += x;
    }
    adc_l2_sq_gather(q, q_norm_sq, q_sum, code_arena_.data(),
                     sq8_offset_.data(), sq8_scale_.data(),
                     sq8_recon_norm_sq_.data(), fresh,
                     sc.distances.data() + from);
  } else {
    l2_sq_gather(q, arena_.data(), fresh, sc.distances.data() + from);
  }
  // Feed the k-element max-heap of best (squared) distances — the running
  // k-th-best the C1 termination check reads in O(1).
  for (std::size_t i = from; i < total; ++i) {
    const float d = sc.distances[i];
    if (sc.heap.size() < k) {
      sc.heap.push_back(d);
      std::push_heap(sc.heap.begin(), sc.heap.end());
    } else if (d < sc.heap.front()) {
      std::pop_heap(sc.heap.begin(), sc.heap.end());
      sc.heap.back() = d;
      std::push_heap(sc.heap.begin(), sc.heap.end());
    }
  }
}

QalshIndex::SweepOutcome QalshIndex::collect(QueryScratch& sc,
                                             const float* proj_q,
                                             std::span<const float> q,
                                             std::size_t k) const {
  const std::size_t m = scheme_.m;
  const std::uint16_t l = static_cast<std::uint16_t>(scheme_.l);
  const std::size_t n = id_to_slot_.size();
  SweepOutcome sw;

  // Stamp-reset collision-frequency table over arena slots: no clearing
  // between queries (a stamp survives until the 32-bit generation wraps,
  // at which point the table is rewritten once).
  if (sc.freq.size() < slot_count()) {
    sc.freq.resize(slot_count(), 0);
    sc.stamp.resize(slot_count(), 0);
  }
  if (++sc.generation == 0) {
    std::fill(sc.stamp.begin(), sc.stamp.end(), 0u);
    sc.generation = 1;
  }
  const std::uint32_t gen = sc.generation;

  sc.candidates.clear();
  sc.candidates.reserve(sc.last_candidates);
  sc.heap.clear();

  // Query-centric cursor init: each line's two pointers start at the
  // query's own projection and only ever move outward.
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<Entry>& sorted = lines_[i].sorted;
    const float pq = proj_q[i];
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), pq,
        [](const Entry& e, float val) { return e.proj < val; });
    const auto idx = static_cast<std::uint32_t>(it - sorted.begin());
    sc.left[i] = idx;
    sc.right[i] = idx;
    sc.pending_left[i] =
        static_cast<std::uint32_t>(lines_[i].pending.size());
  }

  // C2 candidate budget: k true positives plus the beta*n false-positive
  // allowance the scheme was derived for.
  const std::size_t want =
      k + static_cast<std::size_t>(
              std::ceil(static_cast<double>(params_.beta) *
                        static_cast<double>(n)));
  const float c = params_.c;
  float radius = start_radius_;
  float prev_hw = -1.0f;  // below any |diff|, so round 1 sweeps (0, hw]
  std::size_t scored = 0;
  bool done = false;

  while (!done) {
    ++sw.rounds;
    // Virtual rehashing: the collision window at radius R is
    // |h(o) - h(q)| <= w*R/2 — widening R touches no stored state.
    const float hw = 0.5f * scheme_.w * radius;
    bool exhausted = true;
    for (std::size_t i = 0; i < m && !done; ++i) {
      const HashLine& line = lines_[i];
      const float pq = proj_q[i];
      const auto touch = [&](Slot slot) {
        ++sw.touched;
        if (sc.stamp[slot] != gen) {
          sc.stamp[slot] = gen;
          sc.freq[slot] = 0;
        }
        if (++sc.freq[slot] == l && alive_[slot] != 0) {
          sc.candidates.push_back(slot);
        }
      };
      std::uint32_t rt = sc.right[i];
      while (rt < line.sorted.size() && line.sorted[rt].proj - pq <= hw) {
        touch(line.sorted[rt].slot);
        ++rt;
      }
      sc.right[i] = rt;
      std::uint32_t lt = sc.left[i];
      while (lt > 0 && pq - line.sorted[lt - 1].proj <= hw) {
        touch(line.sorted[lt - 1].slot);
        --lt;
      }
      sc.left[i] = lt;
      if (sc.pending_left[i] > 0) {
        // The unmerged tail has no sorted order: scan it per round, each
        // entry counted exactly once when the growing window first covers
        // it (the (prev_hw, hw] windows partition the projection axis).
        std::uint32_t left_cnt = sc.pending_left[i];
        for (const Entry& e : line.pending) {
          const float d = std::abs(e.proj - pq);
          if (d <= hw && d > prev_hw) {
            touch(e.slot);
            --left_cnt;
          }
        }
        sc.pending_left[i] = left_cnt;
      }
      if (lt > 0 || rt < line.sorted.size() || sc.pending_left[i] > 0) {
        exhausted = false;
      }
      // C2, checked per line so a dense round can't overshoot the budget
      // by more than one line's sweep.
      if (sc.candidates.size() >= want) {
        sw.stop = Stop::kC2;
        done = true;
      }
    }
    // Score this round's new candidates in one gather pass.
    if (sc.candidates.size() > scored) {
      score_from(sc, q, scored, k);
      scored = sc.candidates.size();
    }
    if (done) break;
    // C1: k candidates found and the k-th best already lies within c*R —
    // by the QALSH argument the true nearest neighbour is then covered at
    // ratio c. Distances are squared, so compare against (c*R)^2. On the
    // quantized path the check reads ADC distances: candidate *selection*
    // stays approximate, the returned distances are re-ranked exactly.
    if (k > 0 && sc.heap.size() >= k) {
      const float bound = c * radius;
      if (sc.heap.front() <= bound * bound) {
        sw.stop = Stop::kC1;
        break;
      }
    }
    if (exhausted) {
      // Every line fully swept: every live slot reached frequency m >= l,
      // so the candidate set is the whole index and the result is exact.
      sw.stop = Stop::kExhausted;
      break;
    }
    prev_hw = hw;
    radius *= c;
  }
  sc.last_candidates = sc.candidates.size();
  return sw;
}

void QalshIndex::finalize(QueryScratch& sc, std::span<const float> q,
                          std::size_t k, std::vector<Neighbor>& out,
                          QueryStats& st) const {
  out.clear();
  const std::size_t n = sc.candidates.size();
  st.candidates = n;
  st.rerank_survivors = 0;
  if (n == 0 || k == 0) return;
  const auto by_distance_then_id = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  };
  if (!quantized()) {
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(
          {slot_ids_[sc.candidates[i]], std::sqrt(sc.distances[i])});
    }
    const std::size_t take = std::min(k, out.size());
    std::partial_sort(out.begin(),
                      out.begin() + static_cast<std::ptrdiff_t>(take),
                      out.end(), by_distance_then_id);
    out.resize(take);
    return;
  }
  // Quantized path: sc.distances holds ADC scores. Keep the rerank_k best
  // (at least k), re-score them exactly — identical discipline to the LSH
  // family's score_quantized, so `local(q8)` semantics carry over.
  const std::size_t rerank =
      std::min(std::max(params_.quantize.rerank_k, k), n);
  if (sc.rank_order.size() < n) sc.rank_order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) sc.rank_order[i] = i;
  std::partial_sort(
      sc.rank_order.begin(),
      sc.rank_order.begin() + static_cast<std::ptrdiff_t>(rerank),
      sc.rank_order.begin() + static_cast<std::ptrdiff_t>(n),
      [&sc](std::uint32_t a, std::uint32_t b) {
        return sc.distances[a] < sc.distances[b] ||
               (sc.distances[a] == sc.distances[b] &&
                sc.candidates[a] < sc.candidates[b]);
      });
  if (sc.survivors.size() < rerank) sc.survivors.resize(rerank);
  for (std::size_t i = 0; i < rerank; ++i) {
    sc.survivors[i] = sc.candidates[sc.rank_order[i]];
  }
  st.rerank_survivors = rerank;
  if (sc.exact.size() < rerank) sc.exact.resize(rerank);
  l2_sq_gather(q, arena_.data(), {sc.survivors.data(), rerank},
               sc.exact.data());
  out.reserve(rerank);
  for (std::size_t i = 0; i < rerank; ++i) {
    out.push_back({slot_ids_[sc.survivors[i]], std::sqrt(sc.exact[i])});
  }
  const std::size_t take = std::min(k, out.size());
  std::partial_sort(out.begin(),
                    out.begin() + static_cast<std::ptrdiff_t>(take),
                    out.end(), by_distance_then_id);
  out.resize(take);
}

void QalshIndex::query_one(QueryScratch& sc, const float* proj_q,
                           std::span<const float> q, std::size_t k,
                           std::vector<Neighbor>& out, QueryStats& st,
                           SweepOutcome& sweep) const {
  st = {};
  sweep = {};
  if (k == 0 || id_to_slot_.empty()) {
    out.clear();
    return;
  }
  sweep = collect(sc, proj_q, q, k);
  st.rounds = sweep.rounds;
  finalize(sc, q, k, out, st);
}

void QalshIndex::query_into(std::span<const float> q, std::size_t k,
                            std::vector<Neighbor>& out,
                            QueryStats* stats) const {
  assert(q.size() == dim_);
  QueryScratch& sc = scratch_;
  dot_batch(q, proj_.data(), scheme_.m, sc.proj_q.data());
  QueryStats st;
  SweepOutcome sweep;
  query_one(sc, sc.proj_q.data(), q, k, out, st, sweep);
  if (metrics_ != nullptr) {
    metrics_->record(candidates_hist_, static_cast<double>(st.candidates));
    if (quantized()) {
      metrics_->record(rerank_hist_,
                       static_cast<double>(st.rerank_survivors));
    }
    metrics_->record(collisions_hist_, static_cast<double>(sweep.touched));
    metrics_->record(rounds_hist_, static_cast<double>(sweep.rounds));
    switch (sweep.stop) {
      case Stop::kC1: metrics_->inc(c1_counter_); break;
      case Stop::kC2: metrics_->inc(c2_counter_); break;
      case Stop::kExhausted: metrics_->inc(exhausted_counter_); break;
    }
  }
  // No controller feed here: observe_query_feedback() is the radius
  // controller's only input, so query_into and query_batch_into always run
  // the same schedule and their results stay byte-identical (unlike A-LSH,
  // whose legacy path feeds its width controller inline).
  if (stats != nullptr) *stats = st;
}

void QalshIndex::query_batch_into(std::span<const float> queries,
                                  std::size_t count, std::size_t k,
                                  IndexScratch* scratch,
                                  std::span<std::vector<Neighbor>> results,
                                  QueryStats* stats) const {
  auto* handle = dynamic_cast<ScratchHandle*>(scratch);
  if (handle == nullptr) {
    throw std::invalid_argument(
        "QalshIndex::query_batch_into: scratch must come from "
        "make_scratch()");
  }
  assert(queries.size() == count * dim_);
  assert(results.size() >= count);
  QueryScratch& sc = handle->sc;
  const std::size_t m = scheme_.m;
  if (sc.proj_q.size() < count * m) sc.proj_q.resize(count * m);
  // Stage 1 for the whole batch: the m x dim projection matrix is applied
  // to every query before any sweep runs, so it stays hot across frames.
  for (std::size_t b = 0; b < count; ++b) {
    dot_batch(queries.subspan(b * dim_, dim_), proj_.data(), m,
              sc.proj_q.data() + b * m);
  }
  // Sweeps per query, replaying exactly the single-query code path —
  // results are byte-identical to query_into. No metrics, no controller
  // feed: this path is read-only.
  for (std::size_t b = 0; b < count; ++b) {
    QueryStats st;
    SweepOutcome sweep;
    query_one(sc, sc.proj_q.data() + b * m, queries.subspan(b * dim_, dim_),
              k, results[b], st, sweep);
    if (stats != nullptr) stats[b] = st;
  }
}

void QalshIndex::observe_query_feedback(std::span<const float> dk_samples,
                                        std::size_t query_count) {
  (void)query_count;
  for (const float dk_f : dk_samples) {
    const double dk = static_cast<double>(dk_f);
    if (dk <= 0.0) continue;
    if (has_ema_) {
      dk_ema_ += kEmaAlpha * (dk - dk_ema_);
    } else {
      dk_ema_ = dk;
      has_ema_ = true;
    }
  }
  if (has_ema_) retune_start_radius();
}

void QalshIndex::retune_start_radius() {
  // Start one expansion below the observed k-th-neighbour distance: the
  // schedule then terminates in ~2 rounds instead of climbing from r0.
  // Skipping rounds is safe — collision frequencies at radius R are
  // identical whatever schedule reached R (each entry is counted exactly
  // once when the window first covers it), so recall is unaffected; only
  // the skipped rounds' C1/C2 early-outs are forfeited. The adaptation
  // goes both ways: on near-duplicate traffic the start radius drops well
  // below r0 (the first round's half-width — and with it the number of
  // entries touched — scales with the radius), and on drifted traffic it
  // climbs so easy rounds are not wasted.
  const float target = static_cast<float>(dk_ema_) / params_.c;
  start_radius_ = std::max(1.0e-4f, std::min(target, 1.0e6f));
}

FeatureVec QalshIndex::reconstructed(VecId id) const {
  if (!quantized()) return {};
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return {};
  const Slot slot = it->second;
  const std::uint8_t* codes =
      code_arena_.data() + static_cast<std::size_t>(slot) * dim_;
  FeatureVec v(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    v[i] = sq8_offset_[slot] +
           sq8_scale_[slot] * static_cast<float>(codes[i]);
  }
  return v;
}

void QalshIndex::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  candidates_hist_ = metrics.histogram("ann/candidates", count_bounds());
  if (quantized()) {
    rerank_hist_ = metrics.histogram("ann/rerank_survivors", count_bounds());
  }
  // The "ann/qalsh" subsystem group (tools/metrics_schema.json): registered
  // whole at attach time so exports carry every instrument (as zeros when
  // idle) and the all-or-nothing schema check holds.
  collisions_hist_ = metrics.histogram("ann/qalsh/collisions", count_bounds());
  rounds_hist_ = metrics.histogram("ann/qalsh/rounds", count_bounds());
  c1_counter_ = metrics.counter("ann/qalsh/c1_stop");
  c2_counter_ = metrics.counter("ann/qalsh/c2_stop");
  exhausted_counter_ = metrics.counter("ann/qalsh/exhausted");
  merges_counter_ = metrics.counter("ann/qalsh/merges");
  compactions_counter_ = metrics.counter("ann/qalsh/compactions");
}

}  // namespace apx

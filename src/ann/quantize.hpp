#pragma once
// Lossy 8-bit feature quantization, shared by two consumers:
//
//  * the wire: a 64-dim float32 feature is 256 bytes; its 8-bit affine
//    quantization is 64 bytes + 8 bytes of scale/offset — a 3.7x cut in P2P
//    payload for a distance distortion well below typical intra-class
//    feature distances (PeerCacheParams::quantize_wire_features);
//  * the SQ8 candidate-scan path: the LSH index keeps a uint8 code arena
//    next to the float arena and scores candidates with an asymmetric
//    distance over the codes (sq8_encode + vecmath::adc_l2_sq_gather),
//    re-ranking survivors exactly (see QuantizeParams and DESIGN.md §8).
//
// Degenerate inputs: constant vectors encode with scale 0 (every code 0,
// exact reconstruction); non-finite inputs (NaN, ±inf) are rejected with
// std::invalid_argument — a NaN would poison the affine grid and make every
// code meaningless, so callers must sanitize first (the P2P merge path
// already does).

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Opt-in SQ8 candidate-scan configuration for the LSH index family.
struct QuantizeParams {
  /// Score LSH candidates with uint8 codes (asymmetric distance), then
  /// re-rank the top survivors exactly. Off: pure float scan (default).
  bool enabled = false;
  /// Survivors re-scored with the float vectors; the returned neighbours
  /// and distances are exact, so H-kNN vote semantics are unchanged.
  std::size_t rerank_k = 32;
};

/// Affine-quantized feature vector: value[i] ~= offset + scale * code[i].
struct QuantizedVec {
  float offset = 0.0f;
  float scale = 0.0f;  ///< 0 for constant vectors (all values == offset)
  std::vector<std::uint8_t> codes;
};

/// Per-vector terms the asymmetric-distance scan needs besides the codes:
/// |q - recon|^2 = |q|^2 - 2 (offset * sum(q) + scale * dot(q, codes))
///               + recon_norm_sq.
struct Sq8Stats {
  float offset = 0.0f;
  float scale = 0.0f;
  float recon_norm_sq = 0.0f;  ///< |offset + scale * codes|^2
};

/// Encodes `v` into `codes` (caller-provided, v.size() bytes) on the
/// min/max affine grid and returns the ADC terms. Values on the grid
/// boundaries saturate at codes 0/255. Throws std::invalid_argument on
/// non-finite input.
Sq8Stats sq8_encode(std::span<const float> v, std::uint8_t* codes);

/// Quantizes `v` to 8 bits per dimension (min/max affine grid). Throws
/// std::invalid_argument on non-finite input.
QuantizedVec quantize(std::span<const float> v);

/// Reconstructs the (lossy) float vector.
FeatureVec dequantize(const QuantizedVec& q);

/// Wire helpers.
void write_quantized(Writer& w, const QuantizedVec& q);
QuantizedVec read_quantized(Reader& r);

/// Worst-case per-dimension reconstruction error of quantizing `v`
/// (half a quantization step).
float quantization_error_bound(std::span<const float> v);

}  // namespace apx

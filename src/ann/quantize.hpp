#pragma once
// Lossy 8-bit feature quantization for the wire. A 64-dim float32 feature
// is 256 bytes; its 8-bit affine quantization is 64 bytes + 8 bytes of
// scale/offset — a 3.7x cut in P2P payload for a distance distortion well
// below typical intra-class feature distances. Used by the peer protocol
// when PeerCacheParams::quantize_wire_features is set.

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Affine-quantized feature vector: value[i] ~= offset + scale * code[i].
struct QuantizedVec {
  float offset = 0.0f;
  float scale = 0.0f;  ///< 0 for constant vectors (all values == offset)
  std::vector<std::uint8_t> codes;
};

/// Quantizes `v` to 8 bits per dimension (min/max affine grid).
QuantizedVec quantize(std::span<const float> v);

/// Reconstructs the (lossy) float vector.
FeatureVec dequantize(const QuantizedVec& q);

/// Wire helpers.
void write_quantized(Writer& w, const QuantizedVec& q);
QuantizedVec read_quantized(Reader& r);

/// Worst-case per-dimension reconstruction error of quantizing `v`
/// (half a quantization step).
float quantization_error_bound(std::span<const float> v);

}  // namespace apx

#pragma once
// Index construction: the one place that knows every NnIndex backend. The
// cache (and anything else hosting an index) selects by IndexKind and never
// names a concrete index type, so adding a backend touches only this pair
// of files.

#include <memory>

#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/index.hpp"

namespace apx {

/// Which ANN index backs a cache.
enum class IndexKind { kExact, kLsh, kAdaptiveLsh };

/// Printable kind name ("exact", "lsh", "adaptive-lsh").
const char* to_string(IndexKind kind) noexcept;

/// Builds an index of `kind` over `dim`-dimensional vectors. `params`
/// covers the whole LSH family: kLsh uses params.lsh, kAdaptiveLsh all of
/// it, kExact neither. Throws std::invalid_argument on an unknown kind.
///
/// Every backend returned here serves the batched request path
/// (NnIndex::query_batch_into + make_scratch): the LSH family overrides it
/// with table-major amortized hashing, the exact scan inherits the default
/// loop, and future backends (QALSH, ...) get the loop-over-single default
/// for free — consumers never need to know which one they hold.
std::unique_ptr<NnIndex> make_index(IndexKind kind, std::size_t dim,
                                    const AdaptiveLshParams& params);

}  // namespace apx

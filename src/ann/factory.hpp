#pragma once
// Index construction: the one place that knows every NnIndex backend. The
// cache (and anything else hosting an index) selects by IndexKind and never
// names a concrete index type, so adding a backend touches only this pair
// of files.

#include <memory>

#include "src/ann/adaptive_lsh.hpp"
#include "src/ann/index.hpp"
#include "src/ann/qalsh.hpp"

namespace apx {

/// Which ANN index backs a cache.
enum class IndexKind { kExact, kLsh, kAdaptiveLsh, kQalsh };

/// Printable kind name ("exact", "lsh", "adaptive-lsh", "qalsh").
const char* to_string(IndexKind kind) noexcept;

/// Builds an index of `kind` over `dim`-dimensional vectors. `params`
/// covers the whole bucketed LSH family: kLsh uses params.lsh, kAdaptiveLsh
/// all of it; `qalsh` configures the query-aware backend; kExact uses
/// neither. Throws std::invalid_argument on an unknown kind.
///
/// Every backend returned here serves the batched request path
/// (NnIndex::query_batch_into + make_scratch): the LSH family overrides it
/// with table-major amortized hashing, QALSH with batch projection +
/// per-query sweeps, the exact scan inherits the default loop — consumers
/// never need to know which one they hold.
std::unique_ptr<NnIndex> make_index(IndexKind kind, std::size_t dim,
                                    const AdaptiveLshParams& params,
                                    const QalshParams& qalsh = QalshParams{});

}  // namespace apx

#include "src/ann/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apx {
namespace {

/// Min/max of `v` after validating every element is finite.
std::pair<float, float> finite_range(std::span<const float> v) {
  float lo = v.front();
  float hi = v.front();
  for (const float x : v) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument("quantize: non-finite input value");
    }
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  return {lo, hi};
}

/// Grid-encodes one value; saturates at codes 0/255 (scale 0 => code 0).
inline std::uint8_t encode_one(float x, float offset, float scale) noexcept {
  if (scale == 0.0f) return 0;
  const float code = std::round((x - offset) / scale);
  return static_cast<std::uint8_t>(std::clamp(code, 0.0f, 255.0f));
}

}  // namespace

Sq8Stats sq8_encode(std::span<const float> v, std::uint8_t* codes) {
  Sq8Stats st;
  if (v.empty()) return st;
  const auto [lo, hi] = finite_range(v);
  st.offset = lo;
  st.scale = (hi > lo) ? (hi - lo) / 255.0f : 0.0f;
  float norm_sq = 0.0f;
  for (std::size_t i = 0; i < v.size(); ++i) {
    codes[i] = encode_one(v[i], st.offset, st.scale);
    const float recon = st.offset + st.scale * static_cast<float>(codes[i]);
    norm_sq += recon * recon;
  }
  st.recon_norm_sq = norm_sq;
  return st;
}

QuantizedVec quantize(std::span<const float> v) {
  QuantizedVec q;
  if (v.empty()) return q;
  const auto [lo, hi] = finite_range(v);
  q.offset = lo;
  q.scale = (hi > lo) ? (hi - lo) / 255.0f : 0.0f;
  q.codes.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    q.codes[i] = encode_one(v[i], q.offset, q.scale);
  }
  return q;
}

FeatureVec dequantize(const QuantizedVec& q) {
  FeatureVec v(q.codes.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = q.offset + q.scale * static_cast<float>(q.codes[i]);
  }
  return v;
}

void write_quantized(Writer& w, const QuantizedVec& q) {
  w.f32(q.offset);
  w.f32(q.scale);
  w.varint(q.codes.size());
  w.raw(q.codes);
}

QuantizedVec read_quantized(Reader& r) {
  QuantizedVec q;
  q.offset = r.f32();
  q.scale = r.f32();
  const std::uint64_t n = r.varint();
  if (n > r.remaining()) throw CodecError("quantized vector too long");
  q.codes.resize(n);
  for (auto& code : q.codes) code = r.u8();
  return q;
}

float quantization_error_bound(std::span<const float> v) {
  if (v.empty()) return 0.0f;
  const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
  return (*hi_it - *lo_it) / 255.0f / 2.0f;
}

}  // namespace apx

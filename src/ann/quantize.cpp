#include "src/ann/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace apx {

QuantizedVec quantize(std::span<const float> v) {
  QuantizedVec q;
  if (v.empty()) return q;
  const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
  const float lo = *lo_it;
  const float hi = *hi_it;
  q.offset = lo;
  q.scale = (hi > lo) ? (hi - lo) / 255.0f : 0.0f;
  q.codes.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (q.scale == 0.0f) {
      q.codes[i] = 0;
    } else {
      const float code = std::round((v[i] - q.offset) / q.scale);
      q.codes[i] = static_cast<std::uint8_t>(
          std::clamp(code, 0.0f, 255.0f));
    }
  }
  return q;
}

FeatureVec dequantize(const QuantizedVec& q) {
  FeatureVec v(q.codes.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = q.offset + q.scale * static_cast<float>(q.codes[i]);
  }
  return v;
}

void write_quantized(Writer& w, const QuantizedVec& q) {
  w.f32(q.offset);
  w.f32(q.scale);
  w.varint(q.codes.size());
  w.raw(q.codes);
}

QuantizedVec read_quantized(Reader& r) {
  QuantizedVec q;
  q.offset = r.f32();
  q.scale = r.f32();
  const std::uint64_t n = r.varint();
  if (n > r.remaining()) throw CodecError("quantized vector too long");
  q.codes.resize(n);
  for (auto& code : q.codes) code = r.u8();
  return q;
}

float quantization_error_bound(std::span<const float> v) {
  if (v.empty()) return 0.0f;
  const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
  return (*hi_it - *lo_it) / 255.0f / 2.0f;
}

}  // namespace apx

#include "src/ann/factory.hpp"

#include <stdexcept>

#include "src/ann/exact_knn.hpp"
#include "src/ann/lsh.hpp"

namespace apx {

const char* to_string(IndexKind kind) noexcept {
  switch (kind) {
    case IndexKind::kExact: return "exact";
    case IndexKind::kLsh: return "lsh";
    case IndexKind::kAdaptiveLsh: return "adaptive-lsh";
    case IndexKind::kQalsh: return "qalsh";
  }
  return "?";
}

std::unique_ptr<NnIndex> make_index(IndexKind kind, std::size_t dim,
                                    const AdaptiveLshParams& params,
                                    const QalshParams& qalsh) {
  switch (kind) {
    case IndexKind::kExact:
      return std::make_unique<ExactKnnIndex>(dim);
    case IndexKind::kLsh:
      return std::make_unique<PStableLshIndex>(dim, params.lsh);
    case IndexKind::kAdaptiveLsh:
      return std::make_unique<AdaptiveLshIndex>(dim, params);
    case IndexKind::kQalsh:
      return std::make_unique<QalshIndex>(dim, qalsh);
  }
  throw std::invalid_argument("make_index: unknown index kind");
}

}  // namespace apx

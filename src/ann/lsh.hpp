#pragma once
// Locality-sensitive hashing with p-stable (Gaussian) projections
// [Datar et al., SoCG'04]: h(v) = floor((a.v + b) / w). Vectors whose L2
// distance is small collide with high probability; `w` (bucket width)
// trades candidate-set size against recall.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ann/index.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// Tuning parameters for p-stable LSH.
struct LshParams {
  std::size_t num_tables = 4;        ///< L: independent hash tables
  std::size_t hashes_per_table = 8;  ///< k: projections concatenated per table
  float bucket_width = 0.5f;         ///< w: quantization step
  std::uint64_t seed = 42;           ///< projection seed
  /// Multiprobe (Lv et al., VLDB'07, query-directed single-coordinate
  /// variant): per table, additionally probe this many buckets obtained by
  /// flipping the hash coordinates whose projections fall closest to a
  /// quantization boundary. Buys recall without more tables; 0 disables.
  std::size_t probes_per_table = 0;
};

/// p-stable LSH index over L2 distance.
class PStableLshIndex final : public NnIndex {
 public:
  PStableLshIndex(std::size_t dim, const LshParams& params);

  void insert(VecId id, const FeatureVec& v) override;
  bool remove(VecId id) override;
  std::vector<Neighbor> query(std::span<const float> q,
                              std::size_t k) const override;
  std::size_t size() const noexcept override { return entries_.size(); }
  std::size_t dim() const noexcept override { return dim_; }

  const LshParams& params() const noexcept { return params_; }

  /// Number of stored vectors whose distance was computed on the last
  /// query — the work an approximate lookup actually did.
  std::size_t last_candidate_count() const noexcept {
    return last_candidates_;
  }

  /// Rebuilds every table with a new bucket width, reusing the projections.
  /// O(n L k dim); called rarely (adaptation), never per query.
  void rebuild_with_width(float new_width);

 private:
  struct Table {
    std::vector<FeatureVec> projections;  // k vectors of dim floats
    std::vector<float> offsets;           // k offsets in [0, w)
    std::unordered_map<std::uint64_t, std::vector<VecId>> buckets;
  };
  struct Entry {
    FeatureVec vec;
    std::vector<std::uint64_t> keys;  // bucket key per table
  };

  std::uint64_t bucket_key(const Table& table,
                           std::span<const float> v) const;
  /// Quantized per-hash coordinates; optionally also the within-bucket
  /// fractional positions (for multiprobe boundary-proximity ordering).
  std::vector<std::int64_t> quantized_coords(
      const Table& table, std::span<const float> v,
      std::vector<float>* fractions) const;

  std::size_t dim_;
  LshParams params_;
  std::vector<Table> tables_;
  std::unordered_map<VecId, Entry> entries_;
  mutable std::size_t last_candidates_ = 0;
};

}  // namespace apx

#pragma once
// Locality-sensitive hashing with p-stable (Gaussian) projections
// [Datar et al., SoCG'04]: h(v) = floor((a.v + b) / w). Vectors whose L2
// distance is small collide with high probability; `w` (bucket width)
// trades candidate-set size against recall.
//
// Hot-path layout (see DESIGN.md and bench_m2_hotpath):
//  - each table's k projection vectors live in one flat row-major matrix,
//    so hashing a vector is a single matrix-vector pass over contiguous
//    memory instead of k separate dot() calls;
//  - stored vectors live in a contiguous slot-indexed arena, so candidate
//    scoring is a batched gather kernel (l2_sq_gather) rather than one
//    hash-map lookup plus pointer chase per candidate;
//  - a reusable per-index QueryScratch (coords, fractions, probe order,
//    candidate and distance buffers, a generation-stamped seen mask) makes
//    steady-state queries perform zero heap allocations via query_into().

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/ann/index.hpp"
#include "src/ann/quantize.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// Tuning parameters for p-stable LSH.
struct LshParams {
  std::size_t num_tables = 4;        ///< L: independent hash tables
  std::size_t hashes_per_table = 8;  ///< k: projections concatenated per table
  float bucket_width = 0.5f;         ///< w: quantization step
  std::uint64_t seed = 42;           ///< projection seed
  /// Multiprobe (Lv et al., VLDB'07, query-directed single-coordinate
  /// variant): per table, additionally probe this many buckets obtained by
  /// flipping the hash coordinates whose projections fall closest to a
  /// quantization boundary. Buys recall without more tables; 0 disables.
  std::size_t probes_per_table = 0;
  /// Opt-in SQ8 candidate scan: keep a uint8 code arena beside the float
  /// arena, score candidates with asymmetric distance over the codes, and
  /// re-rank the top survivors exactly (see DESIGN.md §8).
  QuantizeParams quantize;
};

/// p-stable LSH index over L2 distance.
///
/// Thread-safety contract (audited for the concurrent shared cache):
///  - query_batch_into() with a distinct make_scratch() scratch per caller
///    is read-only: any number of threads may run it concurrently against
///    each other. It touches no index state — candidates, distances, seen
///    stamps, and work accounting all live in the caller's scratch.
///  - query()/query_into() use the index-owned scratch and record metrics:
///    one caller at a time (work accounting is returned via the QueryStats
///    out-parameter, never stored on the index).
///  - insert()/remove()/rebuild_with_width()/attach_metrics() mutate tables
///    and arenas: exclusive access required (no concurrent readers).
/// The cache layer (ApproxCache) enforces this discipline with its
/// reader-writer lock; a bare index embedded elsewhere must do the same.
class PStableLshIndex final : public NnIndex {
 public:
  /// Per-caller reusable query working set; grows to the high-water mark
  /// and is never shrunk, so steady-state queries allocate nothing. The
  /// index owns one for the legacy single-query path; the batched path
  /// hands each querying thread its own via make_scratch().
  struct QueryScratch {
    std::vector<float> projected;       // k projections of one table
    std::vector<std::int64_t> coords;   // quantized per-hash coordinates
    std::vector<float> fractions;       // within-bucket fractional positions
    std::vector<std::uint32_t> order;   // multiprobe flip order
    std::vector<std::uint64_t> keys;    // staged bucket keys, probe order
    std::vector<std::uint32_t> candidates;  // deduplicated candidate slots
    std::vector<float> distances;       // squared distances per candidate
    std::vector<std::uint32_t> seen;    // per-slot generation stamp
    std::uint32_t generation = 0;
    std::size_t last_candidates = 0;    // reservation hint for the next query
    // Quantized-scan stage (unused on the float path):
    std::vector<std::uint32_t> rank_order;  // candidate ranks by ADC score
    std::vector<std::uint32_t> survivors;   // slots kept for exact re-rank
    std::vector<float> exact;               // re-ranked squared distances
  };

  PStableLshIndex(std::size_t dim, const LshParams& params);

  /// Adds a vector under `id`. Throws std::invalid_argument on a duplicate
  /// id (a silent duplicate would leave stale slots in the tables).
  void insert(VecId id, const FeatureVec& v) override;
  bool remove(VecId id) override;
  std::vector<Neighbor> query(std::span<const float> q,
                              std::size_t k) const override;

  /// Allocation-free query path: clears and fills `out` with up to `k`
  /// nearest stored vectors, closest first, and fills `stats` (optional)
  /// with the query's work accounting. After a warm-up call with a
  /// comparable workload, performs zero heap allocations (the internal
  /// scratch and `out`'s capacity are reused).
  void query_into(std::span<const float> q, std::size_t k,
                  std::vector<Neighbor>& out,
                  QueryStats* stats = nullptr) const override;

  /// One QueryScratch per querying thread (see class comment).
  std::unique_ptr<IndexScratch> make_scratch() const override;

  /// Read-only batched query (see NnIndex::query_batch_into). Hashes
  /// table-major — each table's projection matrix is applied to the whole
  /// batch before moving on — so the matrices and offsets stay hot in cache
  /// across frames; candidate gathering and scoring then run per query with
  /// byte-identical results to query_into. Requires a scratch obtained from
  /// make_scratch(); throws std::invalid_argument otherwise.
  void query_batch_into(std::span<const float> queries, std::size_t count,
                        std::size_t k, IndexScratch* scratch,
                        std::span<std::vector<Neighbor>> results,
                        QueryStats* stats = nullptr) const override;

  std::size_t size() const noexcept override { return id_to_slot_.size(); }
  std::size_t dim() const noexcept override { return dim_; }

  const LshParams& params() const noexcept { return params_; }

  /// Whether the SQ8 candidate scan is active.
  bool quantized() const noexcept { return params_.quantize.enabled; }

  /// Lossy SQ8 reconstruction of `id`'s stored vector; empty when `id` is
  /// absent or the scan is not quantized.
  FeatureVec reconstructed(VecId id) const override;

  /// Registers the "ann/candidates" per-query candidate-set histogram,
  /// plus "ann/rerank_survivors" when the quantized scan is active.
  void attach_metrics(MetricsRegistry& metrics) override;

  /// Rebuilds every table with a new bucket width, reusing the projections.
  /// O(n L k dim); called rarely (adaptation), never per query.
  void rebuild_with_width(float new_width);

 private:
  /// Index into the vector arena (row `slot` starts at arena_[slot * dim_]).
  using Slot = std::uint32_t;

  struct Table {
    std::vector<float> projections;  ///< k x dim row-major matrix
    std::vector<float> offsets;      ///< k offsets in [0, w)
    std::unordered_map<std::uint64_t, std::vector<Slot>> buckets;
  };

  /// The scratch wrapper make_scratch() hands out.
  struct ScratchHandle final : IndexScratch {
    QueryScratch sc;
  };

  std::span<const float> slot_vec(Slot slot) const noexcept {
    return {arena_.data() + static_cast<std::size_t>(slot) * dim_, dim_};
  }
  std::size_t slot_count() const noexcept { return slot_ids_.size(); }

  /// Effective multiprobe flips per table.
  std::size_t probes() const noexcept {
    return std::min(params_.probes_per_table, params_.hashes_per_table);
  }
  /// Staged bucket keys per query: tables x (base probe + flips).
  std::size_t keys_per_query() const noexcept {
    return tables_.size() * (1 + probes());
  }

  /// Sizes sc's fixed per-query buffers (projection row, coords, ...).
  void prepare_scratch(QueryScratch& sc) const;
  /// Fills sc.projected/coords (and fractions when asked) for one table;
  /// returns the bucket key of the base probe.
  std::uint64_t compute_coords(QueryScratch& sc, const Table& table,
                               std::span<const float> v,
                               bool want_fractions) const;
  /// Stage 1 of a query against one table: base bucket key plus the
  /// query-directed multiprobe flip keys, written to keys[0..probes()].
  void hash_query(QueryScratch& sc, const Table& table,
                  std::span<const float> q, std::uint64_t* keys) const;
  /// Stages 2+3: gathers candidates for the staged keys (dedup via sc's
  /// generation stamps, same bucket order as hashing), scores them (float
  /// gather or SQ8 scan + exact re-rank), fills `out` with the top k.
  /// Read-only with respect to the index; all mutation lands in sc/st.
  void gather_score(QueryScratch& sc, std::span<const float> q,
                    std::size_t k, const std::uint64_t* keys,
                    std::vector<Neighbor>& out, QueryStats& st) const;
  /// Hashes `slot`'s vector into every table, recording per-table keys.
  void link_slot(Slot slot);
  /// SQ8 scan + exact re-rank over sc.candidates (quantized() only).
  void score_quantized(QueryScratch& sc, std::span<const float> q,
                       std::size_t k, std::vector<Neighbor>& out,
                       QueryStats& st) const;

  std::size_t dim_;
  LshParams params_;
  std::vector<Table> tables_;

  std::vector<float> arena_;              ///< slot-major vector storage
  std::vector<VecId> slot_ids_;           ///< slot -> owning id
  std::vector<std::uint64_t> slot_keys_;  ///< slot * L + t -> bucket key
  std::vector<Slot> free_slots_;          ///< reusable holes left by remove()
  std::unordered_map<VecId, Slot> id_to_slot_;

  // SQ8 sidecar (quantized() only), kept slot-coherent with arena_: rows
  // are encoded on insert (slot reuse overwrites), never touched by bucket
  // rebuilds. SoA so the ADC kernel reads each term as a flat array.
  std::vector<std::uint8_t> code_arena_;  ///< slot-major uint8 codes
  std::vector<float> sq8_offset_;         ///< per-slot grid offset
  std::vector<float> sq8_scale_;          ///< per-slot grid scale
  std::vector<float> sq8_recon_norm_sq_;  ///< per-slot |reconstruction|^2

  // Legacy single-query path only: the index-owned scratch. The batched
  // path never touches it (its scratch and QueryStats are caller-owned),
  // which is what makes that path read-only.
  mutable QueryScratch scratch_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t candidates_hist_ = 0;
  std::uint32_t rerank_hist_ = 0;
};

}  // namespace apx

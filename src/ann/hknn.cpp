#include "src/ann/hknn.hpp"

#include <map>

namespace apx {
namespace {

std::optional<HknnVote> vote_impl(const std::vector<Neighbor>& neighbors,
                                  const std::function<Label(VecId)>& label_of,
                                  const HknnParams& params,
                                  bool require_homogeneity) {
  if (neighbors.empty()) return std::nullopt;
  if (neighbors.front().distance > params.max_distance) return std::nullopt;

  // Distance-weighted vote over the in-range prefix (closest first).
  std::map<Label, float> weights;
  float total = 0.0f;
  std::size_t voters = 0;
  for (const Neighbor& n : neighbors) {
    if (voters >= params.k) break;
    if (n.distance > params.max_distance) break;
    const float w = 1.0f / (n.distance + params.distance_epsilon);
    weights[label_of(n.id)] += w;
    total += w;
    ++voters;
  }
  if (voters == 0 || total <= 0.0f) return std::nullopt;

  Label best = kNoLabel;
  float best_weight = -1.0f;
  for (const auto& [label, w] : weights) {
    if (w > best_weight) {
      best_weight = w;
      best = label;
    }
  }
  const float homogeneity = best_weight / total;
  if (require_homogeneity && homogeneity < params.homogeneity_threshold) {
    return std::nullopt;
  }
  return HknnVote{best, homogeneity, neighbors.front().distance, voters};
}

}  // namespace

std::optional<HknnVote> hknn_vote(const std::vector<Neighbor>& neighbors,
                                  const std::function<Label(VecId)>& label_of,
                                  const HknnParams& params) {
  return vote_impl(neighbors, label_of, params, params.require_homogeneity);
}

std::optional<HknnVote> plain_knn_vote(
    const std::vector<Neighbor>& neighbors,
    const std::function<Label(VecId)>& label_of, const HknnParams& params) {
  return vote_impl(neighbors, label_of, params, /*require_homogeneity=*/false);
}

}  // namespace apx

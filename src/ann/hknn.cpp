#include "src/ann/hknn.hpp"

#include <array>
#include <map>

namespace apx {
namespace {

/// Picks the winner from (label, weight) pairs. Ties break toward the
/// smaller label, matching the historical std::map-iteration behaviour.
template <typename Pairs>
Label pick_best(const Pairs& pairs, std::size_t n, float& best_weight) {
  Label best = kNoLabel;
  best_weight = -1.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [label, w] = pairs[i];
    if (w > best_weight || (w == best_weight && label < best)) {
      best_weight = w;
      best = label;
    }
  }
  return best;
}

std::optional<HknnVote> vote_impl(const std::vector<Neighbor>& neighbors,
                                  const std::function<Label(VecId)>& label_of,
                                  const HknnParams& params,
                                  bool require_homogeneity) {
  if (neighbors.empty()) return std::nullopt;
  if (neighbors.front().distance > params.max_distance) return std::nullopt;

  // Distance-weighted vote over the in-range prefix (closest first). At
  // most params.k voters participate, so the distinct-label tally almost
  // always fits the fixed inline buffer: the vote then runs without heap
  // allocations, which the traced cache-lookup hot path depends on. The
  // std::map fallback only triggers for degenerate parameter choices
  // (k > kInlineLabels with all-distinct labels).
  constexpr std::size_t kInlineLabels = 64;
  std::array<std::pair<Label, float>, kInlineLabels> tally;
  std::size_t distinct = 0;
  bool overflow = false;

  float total = 0.0f;
  std::size_t voters = 0;
  for (const Neighbor& n : neighbors) {
    if (voters >= params.k) break;
    if (n.distance > params.max_distance) break;
    const float w = 1.0f / (n.distance + params.distance_epsilon);
    const Label label = label_of(n.id);
    std::size_t i = 0;
    while (i < distinct && tally[i].first != label) ++i;
    if (i < distinct) {
      tally[i].second += w;
    } else if (distinct < kInlineLabels) {
      tally[distinct++] = {label, w};
    } else {
      overflow = true;
      break;
    }
    total += w;
    ++voters;
  }

  Label best = kNoLabel;
  float best_weight = -1.0f;
  if (overflow) {
    // Redo the tally with an unbounded map; correctness over allocation.
    std::map<Label, float> weights;
    total = 0.0f;
    voters = 0;
    for (const Neighbor& n : neighbors) {
      if (voters >= params.k) break;
      if (n.distance > params.max_distance) break;
      const float w = 1.0f / (n.distance + params.distance_epsilon);
      weights[label_of(n.id)] += w;
      total += w;
      ++voters;
    }
    for (const auto& [label, w] : weights) {
      if (w > best_weight) {
        best_weight = w;
        best = label;
      }
    }
  } else {
    best = pick_best(tally, distinct, best_weight);
  }

  if (voters == 0 || total <= 0.0f) return std::nullopt;
  const float homogeneity = best_weight / total;
  if (require_homogeneity && homogeneity < params.homogeneity_threshold) {
    return std::nullopt;
  }
  return HknnVote{best, homogeneity, neighbors.front().distance, voters};
}

}  // namespace

std::optional<HknnVote> hknn_vote(const std::vector<Neighbor>& neighbors,
                                  const std::function<Label(VecId)>& label_of,
                                  const HknnParams& params) {
  return vote_impl(neighbors, label_of, params, params.require_homogeneity);
}

std::optional<HknnVote> plain_knn_vote(
    const std::vector<Neighbor>& neighbors,
    const std::function<Label(VecId)>& label_of, const HknnParams& params) {
  return vote_impl(neighbors, label_of, params, /*require_homogeneity=*/false);
}

}  // namespace apx

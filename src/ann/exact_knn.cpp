#include "src/ann/exact_knn.hpp"

#include <algorithm>
#include <cassert>

namespace apx {

ExactKnnIndex::ExactKnnIndex(std::size_t dim) : dim_(dim) {
  assert(dim > 0);
}

void ExactKnnIndex::insert(VecId id, const FeatureVec& v) {
  assert(v.size() == dim_);
  [[maybe_unused]] const auto [_, inserted] = vectors_.emplace(id, v);
  assert(inserted && "duplicate id");
}

bool ExactKnnIndex::remove(VecId id) { return vectors_.erase(id) > 0; }

std::vector<Neighbor> ExactKnnIndex::query(std::span<const float> q,
                                           std::size_t k) const {
  std::vector<Neighbor> out;
  query_into(q, k, out);
  return out;
}

void ExactKnnIndex::query_into(std::span<const float> q, std::size_t k,
                               std::vector<Neighbor>& out,
                               QueryStats* stats) const {
  assert(q.size() == dim_);
  if (stats != nullptr) *stats = {vectors_.size(), 0, 0};
  out.clear();
  out.reserve(vectors_.size());
  for (const auto& [id, v] : vectors_) {
    out.push_back({id, l2(q, v)});
  }
  const std::size_t take = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(take),
                    out.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  out.resize(take);
}

}  // namespace apx

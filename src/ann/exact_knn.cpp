#include "src/ann/exact_knn.hpp"

#include <algorithm>
#include <cassert>

namespace apx {

ExactKnnIndex::ExactKnnIndex(std::size_t dim) : dim_(dim) {
  assert(dim > 0);
}

void ExactKnnIndex::insert(VecId id, const FeatureVec& v) {
  assert(v.size() == dim_);
  [[maybe_unused]] const auto [_, inserted] = vectors_.emplace(id, v);
  assert(inserted && "duplicate id");
}

bool ExactKnnIndex::remove(VecId id) { return vectors_.erase(id) > 0; }

std::vector<Neighbor> ExactKnnIndex::query(std::span<const float> q,
                                           std::size_t k) const {
  assert(q.size() == dim_);
  std::vector<Neighbor> all;
  all.reserve(vectors_.size());
  for (const auto& [id, v] : vectors_) {
    all.push_back({id, l2(q, v)});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  all.resize(take);
  return all;
}

}  // namespace apx

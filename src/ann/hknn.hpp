#pragma once
// Homogenized kNN (H-kNN) [lineage: FoggyCache, MobiCom'18]. A plain kNN
// vote happily returns a majority label even when the neighbourhood is an
// ambiguous mixture — exactly the situation where reusing a cached result
// produces a wrong answer. H-kNN only accepts when the distance-weighted
// vote is sufficiently *homogeneous*; otherwise it abstains and the pipeline
// falls back to full inference. This is the mechanism behind the poster's
// "minimal loss of recognition accuracy".

#include <functional>
#include <optional>

#include "src/ann/index.hpp"
#include "src/dnn/model.hpp"

namespace apx {

/// H-kNN decision parameters.
struct HknnParams {
  std::size_t k = 4;             ///< neighbours consulted
  float homogeneity_threshold = 0.8f;  ///< min winning-label weight share
  float max_distance = 0.5f;     ///< nearest neighbour farther -> abstain
  float distance_epsilon = 1e-3f;///< weight = 1 / (d + eps)
  /// When false the vote degenerates to plain distance-weighted kNN (no
  /// homogeneity gate) — the ablation baseline, selectable end to end so
  /// experiments can show what H-kNN is protecting against.
  bool require_homogeneity = true;
};

/// Accepted H-kNN outcome.
struct HknnVote {
  Label label = kNoLabel;
  float homogeneity = 0.0f;   ///< winning share of total weight, in (0, 1]
  float nearest_distance = 0.0f;
  std::size_t voters = 0;     ///< neighbours that participated
};

/// Runs the homogenized vote over `neighbors` (as returned by an NnIndex
/// query, closest first). `label_of` maps an entry id to its cached label.
/// Returns nullopt when the vote abstains: no neighbours, nearest too far,
/// or homogeneity below threshold.
std::optional<HknnVote> hknn_vote(
    const std::vector<Neighbor>& neighbors,
    const std::function<Label(VecId)>& label_of, const HknnParams& params);

/// Plain (non-homogenized) distance-weighted kNN vote — the ablation
/// baseline. Abstains only when there are no neighbours in range.
std::optional<HknnVote> plain_knn_vote(
    const std::vector<Neighbor>& neighbors,
    const std::function<Label(VecId)>& label_of, const HknnParams& params);

}  // namespace apx

#pragma once
// Query-aware LSH (QALSH) [Huang et al., PVLDB'15]. The bucketed p-stable
// family fixes its quantization grid at build time: h(v) = floor((a.v+b)/w)
// commits every vector to a bucket, and recall at a given latency is
// whatever the hash draw gave. QALSH keeps only the raw projections
// h_i(o) = a_i.o in per-hash *sorted arrays* and makes the bucket
// query-centric: a lookup walks outward from the query's own projection
// with two pointers per hash, counts per-object collisions, and promotes an
// object to candidate once it collides in l of the m hashes. "Virtual
// rehashing" — geometrically widening the search half-width w*R/2 without
// touching any stored state — replaces physical multi-radius tables.
//
// The payoff is a provable, configurable frontier: for approximation ratio
// c > 1, failure probability delta and false-positive fraction beta, the
// constructor derives (w, m, l) such that a c-approximate nearest neighbour
// is returned with probability at least 1/2 - delta (delta = 1/e gives the
// paper's 1/2 - 1/e bound), while the candidate set — the vectors whose
// distance is actually computed — stays near k + beta*n. Tightening c
// buys recall with more hashes (larger m); loosening it buys latency.
//
// Hot-path layout (mirrors the LSH slot arena, DESIGN.md §12):
//  - all m projection vectors live in one flat row-major matrix, so
//    projecting a vector or query is a single dot_batch pass;
//  - stored vectors live in the contiguous slot arena; candidate scoring is
//    the same gather kernel (l2_sq_gather / adc_l2_sq_gather) the LSH
//    family uses, with the identical SQ8 re-rank discipline when quantized;
//  - each hash keeps a sorted (projection, slot) array plus a small
//    unsorted pending tail: inserts append to the tail and are batch-merged
//    (sort + inplace_merge) once the tail outgrows an amortization bound,
//    so single inserts never pay an O(n) re-sort;
//  - removals tombstone the slot (generation-free: an alive bitmap) and
//    defer compaction until a quarter of the index is dead; dead slots are
//    only reused after compaction has filtered their line entries, so a
//    reused slot can never alias a stale projection entry;
//  - a per-caller QueryScratch (projections, per-line cursors, a
//    stamp-reset collision-frequency table, candidate and distance buffers,
//    a k-element distance heap) makes steady-state queries perform zero
//    heap allocations via query_into()/query_batch_into().

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/ann/index.hpp"
#include "src/ann/quantize.hpp"

namespace apx {

/// QALSH tuning knobs. The guarantee parameters (c, delta, beta) fully
/// determine the derived scheme (projection count m, collision threshold l,
/// bucket width w) — see QalshIndex::scheme().
struct QalshParams {
  /// Approximation ratio (> 1). The returned nearest neighbour is within
  /// c times the true nearest distance with the stated probability.
  float c = 2.0f;
  /// Failure probability in (0, 1): success probability is >= 1/2 - delta.
  /// The default 0.368 ~= 1/e yields the paper's 1/2 - 1/e bound.
  float delta = 0.368f;
  /// False-positive fraction in (0, 1]: the query terminates once it has
  /// collected k + ceil(beta * n) candidates (termination condition C2).
  float beta = 0.01f;
  /// Initial search radius of the virtual rehashing schedule R = r0 * c^j.
  /// Features here are unit-normalized, so the default starts well below
  /// typical intra-class distances; observe_query_feedback() adapts the
  /// starting radius toward the observed k-th-neighbour distance.
  float r0 = 0.125f;
  std::uint64_t seed = 42;  ///< projection seed
  /// Opt-in SQ8 candidate scan: identical discipline to the LSH family
  /// (score candidates on uint8 codes, re-rank the top survivors exactly).
  QuantizeParams quantize;
};

/// Query-aware LSH index over L2 distance (see file comment).
///
/// Thread-safety contract (same discipline as PStableLshIndex, audited for
/// the concurrent shared cache):
///  - query_batch_into() with a distinct make_scratch() scratch per caller
///    is read-only: any number of threads may run it concurrently against
///    each other. All per-query state — cursors, collision frequencies,
///    candidates, the distance heap — lives in the caller's scratch.
///  - query()/query_into() use the index-owned scratch and record metrics:
///    one caller at a time.
///  - insert()/remove()/observe_query_feedback()/attach_metrics() mutate
///    lines, arenas, or the radius controller: exclusive access required.
/// The cache layer (ApproxCache) enforces this with its reader-writer lock.
class QalshIndex final : public NnIndex {
 public:
  /// The derived scheme the guarantee parameters produced (exposed for
  /// tests and diagnostics).
  struct Scheme {
    float w = 0.0f;     ///< projection collision half-width unit
    float p1 = 0.0f;    ///< collision probability at distance 1
    float p2 = 0.0f;    ///< collision probability at distance c
    std::size_t m = 0;  ///< projection (hash) count
    std::size_t l = 0;  ///< collision-frequency candidacy threshold
  };

  /// Per-caller reusable query working set; grows to the high-water mark
  /// and is never shrunk, so steady-state queries allocate nothing.
  struct QueryScratch {
    std::vector<float> proj_q;      // m query projections (batch: count x m)
    std::vector<std::uint32_t> left;          // per-line left cursor
    std::vector<std::uint32_t> right;         // per-line right cursor
    std::vector<std::uint32_t> pending_left;  // per-line unswept tail count
    std::vector<std::uint16_t> freq;   // per-slot collision count
    std::vector<std::uint32_t> stamp;  // per-slot generation stamp
    std::uint32_t generation = 0;
    std::vector<std::uint32_t> candidates;  // slots that reached frequency l
    std::vector<float> distances;  // squared distances (ADC when quantized)
    std::vector<float> heap;       // k-element max-heap of best distances
    std::size_t last_candidates = 0;  // reservation hint for the next query
    // Quantized-scan re-rank stage (unused on the float path):
    std::vector<std::uint32_t> rank_order;
    std::vector<std::uint32_t> survivors;
    std::vector<float> exact;
  };

  QalshIndex(std::size_t dim, const QalshParams& params);

  /// Adds a vector under `id`. Throws std::invalid_argument on a duplicate
  /// id or non-finite values (a NaN projection would poison the sorted
  /// line order for every future query).
  void insert(VecId id, const FeatureVec& v) override;
  bool remove(VecId id) override;
  std::vector<Neighbor> query(std::span<const float> q,
                              std::size_t k) const override;

  /// Allocation-free query path (index-owned scratch): clears and fills
  /// `out` with up to `k` nearest stored vectors, closest first, and fills
  /// `stats` (optional) with candidates / re-rank survivors / rehash
  /// rounds. Records the "ann/candidates" and "ann/qalsh/*" instruments
  /// when metrics are attached.
  void query_into(std::span<const float> q, std::size_t k,
                  std::vector<Neighbor>& out,
                  QueryStats* stats = nullptr) const override;

  /// One QueryScratch per querying thread (see class comment).
  std::unique_ptr<IndexScratch> make_scratch() const override;

  /// Read-only batched query (see NnIndex::query_batch_into). Projects the
  /// whole batch first — the m x dim projection matrix stays hot across
  /// frames — then sweeps per query with byte-identical results to
  /// query_into. Requires a scratch obtained from make_scratch(); throws
  /// std::invalid_argument otherwise.
  void query_batch_into(std::span<const float> queries, std::size_t count,
                        std::size_t k, IndexScratch* scratch,
                        std::span<std::vector<Neighbor>> results,
                        QueryStats* stats = nullptr) const override;

  /// Radius controller feed (exclusive access): EMAs the farthest returned
  /// distances of recent queries and starts future virtual-rehash
  /// schedules one expansion below that estimate, skipping rounds that
  /// cannot terminate. Skipping ahead counts exactly the collisions the
  /// skipped rounds would have (the per-line windows partition the
  /// projection axis), so recall is unaffected — only wasted early rounds
  /// are removed.
  void observe_query_feedback(std::span<const float> dk_samples,
                              std::size_t query_count) override;

  /// Lossy SQ8 reconstruction of `id`'s stored vector; empty when `id` is
  /// absent or the scan is not quantized.
  FeatureVec reconstructed(VecId id) const override;

  /// Registers "ann/candidates" (plus "ann/rerank_survivors" when the
  /// quantized scan is active) and the all-or-nothing "ann/qalsh" group:
  /// collision/round histograms and the frontier stop counters.
  void attach_metrics(MetricsRegistry& metrics) override;

  std::size_t size() const noexcept override { return id_to_slot_.size(); }
  std::size_t dim() const noexcept override { return dim_; }

  const QalshParams& params() const noexcept { return params_; }
  const Scheme& scheme() const noexcept { return scheme_; }

  /// Whether the SQ8 candidate scan is active.
  bool quantized() const noexcept { return params_.quantize.enabled; }

  /// Current starting radius of the virtual-rehash schedule (params().r0
  /// until observe_query_feedback() has adapted it).
  float start_radius() const noexcept { return start_radius_; }

  /// Bulk-load hook: merges every line's pending insert tail into its
  /// sorted array now, so queries after a large batch of inserts never
  /// scan an unsorted tail. No-op when the tails are empty.
  void flush();

  /// Line merges / compactions performed so far (tests and diagnostics).
  std::size_t merge_count() const noexcept { return merges_; }
  std::size_t compaction_count() const noexcept { return compactions_; }

 private:
  /// Index into the vector arena (row `slot` starts at arena_[slot * dim_]).
  using Slot = std::uint32_t;

  /// One (projection, slot) pair of a hash line.
  struct Entry {
    float proj = 0.0f;
    Slot slot = 0;
  };

  /// One hash: the sorted projection array plus the unsorted insert tail.
  struct HashLine {
    std::vector<Entry> sorted;   ///< ascending (proj, slot)
    std::vector<Entry> pending;  ///< unmerged recent inserts
  };

  /// The scratch wrapper make_scratch() hands out.
  struct ScratchHandle final : IndexScratch {
    QueryScratch sc;
  };

  /// Why a sweep stopped (the frontier counters).
  enum class Stop : std::uint8_t { kC1, kC2, kExhausted };

  /// Per-sweep accounting beyond QueryStats.
  struct SweepOutcome {
    std::size_t rounds = 0;
    std::size_t touched = 0;  ///< line entries collision-counted
    Stop stop = Stop::kExhausted;
  };

  std::span<const float> slot_vec(Slot slot) const noexcept {
    return {arena_.data() + static_cast<std::size_t>(slot) * dim_, dim_};
  }
  std::size_t slot_count() const noexcept { return slot_ids_.size(); }

  /// Sizes sc's fixed per-query buffers (projections, cursors).
  void prepare_scratch(QueryScratch& sc) const;
  /// Claims a slot (reuse or arena growth) and stores `v` (+ SQ8 codes).
  Slot claim_slot(VecId id, const FeatureVec& v);
  /// Batch-merges every line's pending tail into its sorted array.
  void merge_pending();
  /// Filters dead slots out of every line and recycles them.
  void compact();

  /// The QALSH sweep: walks every line outward from proj_q under the
  /// virtual-rehash schedule, collision-counts entries, promotes frequent
  /// slots to candidates and scores them per round (float gather or ADC),
  /// until C1 (k-th candidate within c*R), C2 (k + beta*n candidates) or
  /// exhaustion. Read-only with respect to the index.
  SweepOutcome collect(QueryScratch& sc, const float* proj_q,
                       std::span<const float> q, std::size_t k) const;
  /// Scores candidates [from, candidates.size()) and feeds the k-heap.
  void score_from(QueryScratch& sc, std::span<const float> q,
                  std::size_t from, std::size_t k) const;
  /// Ranks sc's scored candidates into `out` (exact re-rank when
  /// quantized), filling st's survivor count.
  void finalize(QueryScratch& sc, std::span<const float> q, std::size_t k,
                std::vector<Neighbor>& out, QueryStats& st) const;
  /// query_into/query_batch_into shared core for one query.
  void query_one(QueryScratch& sc, const float* proj_q,
                 std::span<const float> q, std::size_t k,
                 std::vector<Neighbor>& out, QueryStats& st,
                 SweepOutcome& sweep) const;

  std::size_t dim_;
  QalshParams params_;
  Scheme scheme_;
  float start_radius_ = 0.0f;  ///< retuned by observe_query_feedback()

  std::vector<float> proj_;      ///< m x dim row-major projection matrix
  std::vector<HashLine> lines_;  ///< m sorted projection lines

  std::vector<float> arena_;     ///< slot-major vector storage
  std::vector<VecId> slot_ids_;  ///< slot -> owning id
  std::vector<std::uint8_t> alive_;  ///< slot liveness (tombstones are 0)
  std::vector<Slot> free_slots_;  ///< compacted holes, reusable
  std::vector<Slot> dead_slots_;  ///< tombstoned, awaiting compaction
  std::unordered_map<VecId, Slot> id_to_slot_;

  // SQ8 sidecar (quantized() only), slot-coherent with arena_ — encoded on
  // insert, untouched by merges/compactions. SoA for the ADC kernel.
  std::vector<std::uint8_t> code_arena_;
  std::vector<float> sq8_offset_;
  std::vector<float> sq8_scale_;
  std::vector<float> sq8_recon_norm_sq_;

  /// Recomputes start_radius_ from the EMA.
  void retune_start_radius();

  // Radius controller. Fed ONLY through observe_query_feedback() (an
  // exclusive-access call): the query paths never touch it, so batched and
  // single queries always run the same schedule and stay byte-identical.
  static constexpr double kEmaAlpha = 0.1;
  double dk_ema_ = 0.0;
  bool has_ema_ = false;

  std::size_t merges_ = 0;
  std::size_t compactions_ = 0;

  // Legacy single-query path only: the index-owned scratch. The batched
  // path never touches it, which is what makes that path read-only.
  mutable QueryScratch scratch_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t candidates_hist_ = 0;
  std::uint32_t rerank_hist_ = 0;
  std::uint32_t collisions_hist_ = 0;
  std::uint32_t rounds_hist_ = 0;
  std::uint32_t c1_counter_ = 0;
  std::uint32_t c2_counter_ = 0;
  std::uint32_t exhausted_counter_ = 0;
  std::uint32_t merges_counter_ = 0;
  std::uint32_t compactions_counter_ = 0;
};

}  // namespace apx

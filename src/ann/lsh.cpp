#include "src/ann/lsh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace apx {

PStableLshIndex::PStableLshIndex(std::size_t dim, const LshParams& params)
    : dim_(dim), params_(params) {
  if (dim == 0 || params.num_tables == 0 || params.hashes_per_table == 0 ||
      params.bucket_width <= 0.0f) {
    throw std::invalid_argument("PStableLshIndex: bad parameters");
  }
  Rng rng{params.seed};
  tables_.resize(params.num_tables);
  for (auto& table : tables_) {
    table.projections.resize(params.hashes_per_table);
    table.offsets.resize(params.hashes_per_table);
    for (std::size_t h = 0; h < params.hashes_per_table; ++h) {
      auto& proj = table.projections[h];
      proj.resize(dim);
      for (float& x : proj) x = static_cast<float>(rng.normal());
      table.offsets[h] =
          static_cast<float>(rng.uniform(0.0, params.bucket_width));
    }
  }
}

namespace {

std::uint64_t hash_coords(std::span<const std::int64_t> coords) {
  // FNV-1a over the concatenated quantized projections.
  std::uint64_t key = 0xcbf29ce484222325ULL;
  for (const std::int64_t q : coords) {
    const auto uq = static_cast<std::uint64_t>(q);
    for (int byte = 0; byte < 8; ++byte) {
      key ^= (uq >> (8 * byte)) & 0xff;
      key *= 0x100000001b3ULL;
    }
  }
  return key;
}

}  // namespace

std::vector<std::int64_t> PStableLshIndex::quantized_coords(
    const Table& table, std::span<const float> v,
    std::vector<float>* fractions) const {
  std::vector<std::int64_t> coords(params_.hashes_per_table);
  if (fractions != nullptr) fractions->resize(params_.hashes_per_table);
  for (std::size_t h = 0; h < params_.hashes_per_table; ++h) {
    const float scaled =
        (dot(table.projections[h], v) + table.offsets[h]) /
        params_.bucket_width;
    const float floor_val = std::floor(scaled);
    coords[h] = static_cast<std::int64_t>(floor_val);
    if (fractions != nullptr) (*fractions)[h] = scaled - floor_val;
  }
  return coords;
}

std::uint64_t PStableLshIndex::bucket_key(const Table& table,
                                          std::span<const float> v) const {
  const auto coords = quantized_coords(table, v, nullptr);
  return hash_coords(coords);
}

void PStableLshIndex::insert(VecId id, const FeatureVec& v) {
  assert(v.size() == dim_);
  Entry entry{v, {}};
  entry.keys.reserve(tables_.size());
  for (auto& table : tables_) {
    const std::uint64_t key = bucket_key(table, v);
    table.buckets[key].push_back(id);
    entry.keys.push_back(key);
  }
  [[maybe_unused]] const auto [_, inserted] =
      entries_.emplace(id, std::move(entry));
  assert(inserted && "duplicate id");
}

bool PStableLshIndex::remove(VecId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    auto& table = tables_[t];
    const auto bucket_it = table.buckets.find(it->second.keys[t]);
    if (bucket_it != table.buckets.end()) {
      auto& ids = bucket_it->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty()) table.buckets.erase(bucket_it);
    }
  }
  entries_.erase(it);
  return true;
}

std::vector<Neighbor> PStableLshIndex::query(std::span<const float> q,
                                             std::size_t k) const {
  assert(q.size() == dim_);
  // Union of candidate buckets across tables, deduplicated by sort.
  std::vector<VecId> candidates;
  std::vector<float> fractions;
  for (const auto& table : tables_) {
    auto coords = quantized_coords(table, q, &fractions);
    const auto base_it = table.buckets.find(hash_coords(coords));
    if (base_it != table.buckets.end()) {
      candidates.insert(candidates.end(), base_it->second.begin(),
                        base_it->second.end());
    }
    if (params_.probes_per_table > 0) {
      // Query-directed multiprobe: flip the coordinates whose projections
      // sit closest to a quantization boundary, one at a time, toward that
      // boundary.
      std::vector<std::size_t> order(coords.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&fractions](std::size_t a, std::size_t b) {
                  const float da = std::min(fractions[a], 1.0f - fractions[a]);
                  const float db = std::min(fractions[b], 1.0f - fractions[b]);
                  return da < db;
                });
      const std::size_t probes =
          std::min(params_.probes_per_table, coords.size());
      for (std::size_t p = 0; p < probes; ++p) {
        const std::size_t h = order[p];
        const std::int64_t delta = fractions[h] < 0.5f ? -1 : 1;
        coords[h] += delta;
        const auto it = table.buckets.find(hash_coords(coords));
        if (it != table.buckets.end()) {
          candidates.insert(candidates.end(), it->second.begin(),
                            it->second.end());
        }
        coords[h] -= delta;  // restore for the next single-flip probe
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  last_candidates_ = candidates.size();

  std::vector<Neighbor> result;
  result.reserve(candidates.size());
  for (const VecId id : candidates) {
    result.push_back({id, l2(q, entries_.at(id).vec)});
  }
  const std::size_t take = std::min(k, result.size());
  std::partial_sort(result.begin(),
                    result.begin() + static_cast<std::ptrdiff_t>(take),
                    result.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  result.resize(take);
  return result;
}

void PStableLshIndex::rebuild_with_width(float new_width) {
  if (new_width <= 0.0f) {
    throw std::invalid_argument("rebuild_with_width: width <= 0");
  }
  // Rescale offsets proportionally so they stay uniform in [0, w).
  const float scale = new_width / params_.bucket_width;
  params_.bucket_width = new_width;
  for (auto& table : tables_) {
    table.buckets.clear();
    for (float& off : table.offsets) off *= scale;
  }
  for (auto& [id, entry] : entries_) {
    entry.keys.clear();
    for (auto& table : tables_) {
      const std::uint64_t key = bucket_key(table, entry.vec);
      table.buckets[key].push_back(id);
      entry.keys.push_back(key);
    }
  }
}

}  // namespace apx

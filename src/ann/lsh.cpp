#include "src/ann/lsh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"

namespace apx {

PStableLshIndex::PStableLshIndex(std::size_t dim, const LshParams& params)
    : dim_(dim), params_(params) {
  if (dim == 0 || params.num_tables == 0 || params.hashes_per_table == 0 ||
      params.bucket_width <= 0.0f) {
    throw std::invalid_argument("PStableLshIndex: bad parameters");
  }
  Rng rng{params.seed};
  tables_.resize(params.num_tables);
  for (auto& table : tables_) {
    table.projections.resize(params.hashes_per_table * dim);
    table.offsets.resize(params.hashes_per_table);
    for (std::size_t h = 0; h < params.hashes_per_table; ++h) {
      float* row = table.projections.data() + h * dim;
      for (std::size_t i = 0; i < dim; ++i) {
        row[i] = static_cast<float>(rng.normal());
      }
      table.offsets[h] =
          static_cast<float>(rng.uniform(0.0, params.bucket_width));
    }
  }
  prepare_scratch(scratch_);
}

void PStableLshIndex::prepare_scratch(QueryScratch& sc) const {
  sc.projected.resize(params_.hashes_per_table);
  sc.coords.resize(params_.hashes_per_table);
  sc.fractions.resize(params_.hashes_per_table);
  sc.order.resize(params_.hashes_per_table);
  sc.keys.resize(keys_per_query());
}

std::unique_ptr<IndexScratch> PStableLshIndex::make_scratch() const {
  auto handle = std::make_unique<ScratchHandle>();
  prepare_scratch(handle->sc);
  return handle;
}

namespace {

/// Finalizer from MurmurHash3: full 64-bit avalanche in three multiplies.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Word-at-a-time key over the quantized projections: one avalanche per
/// coordinate (chained, so position matters) instead of the old FNV-1a
/// byte loop (8 xor-multiplies per coordinate).
inline std::uint64_t hash_coords(std::span<const std::int64_t> coords) noexcept {
  std::uint64_t key = 0x9e3779b97f4a7c15ULL ^ coords.size();
  for (const std::int64_t q : coords) {
    key = mix64(key ^ static_cast<std::uint64_t>(q));
  }
  return key;
}

}  // namespace

std::uint64_t PStableLshIndex::compute_coords(QueryScratch& sc,
                                              const Table& table,
                                              std::span<const float> v,
                                              bool want_fractions) const {
  const std::size_t k = params_.hashes_per_table;
  // One matrix-vector pass over the table's contiguous projection rows.
  dot_batch(v, table.projections.data(), k, sc.projected.data());
  const float inv_w = 1.0f / params_.bucket_width;
  for (std::size_t h = 0; h < k; ++h) {
    const float scaled = (sc.projected[h] + table.offsets[h]) * inv_w;
    const float floor_val = std::floor(scaled);
    sc.coords[h] = static_cast<std::int64_t>(floor_val);
    if (want_fractions) sc.fractions[h] = scaled - floor_val;
  }
  return hash_coords(sc.coords);
}

void PStableLshIndex::link_slot(Slot slot) {
  const std::span<const float> v = slot_vec(slot);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const std::uint64_t key =
        compute_coords(scratch_, tables_[t], v, /*want_fractions=*/false);
    tables_[t].buckets[key].push_back(slot);
    slot_keys_[static_cast<std::size_t>(slot) * tables_.size() + t] = key;
  }
}

void PStableLshIndex::insert(VecId id, const FeatureVec& v) {
  assert(v.size() == dim_);
  if (quantized()) {
    // Validate before any state changes: sq8_encode rejects non-finite
    // input, and throwing after the slot was claimed would leave the id
    // map and tables inconsistent.
    for (const float x : v) {
      if (!std::isfinite(x)) {
        throw std::invalid_argument(
            "PStableLshIndex::insert: non-finite value on quantized index");
      }
    }
  }
  const auto [it, inserted] = id_to_slot_.try_emplace(id, Slot{0});
  if (!inserted) {
    // A silent duplicate would stack a second slot under the same id and
    // leave the first one stale in every table — corrupt under NDEBUG.
    throw std::invalid_argument("PStableLshIndex::insert: duplicate id");
  }
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_ids_[slot] = id;
  } else {
    slot = static_cast<Slot>(slot_ids_.size());
    slot_ids_.push_back(id);
    arena_.resize(arena_.size() + dim_);
    slot_keys_.resize(slot_keys_.size() + tables_.size());
    if (quantized()) {
      code_arena_.resize(code_arena_.size() + dim_);
      sq8_offset_.resize(sq8_offset_.size() + 1);
      sq8_scale_.resize(sq8_scale_.size() + 1);
      sq8_recon_norm_sq_.resize(sq8_recon_norm_sq_.size() + 1);
    }
  }
  std::copy(v.begin(), v.end(),
            arena_.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(slot) * dim_));
  if (quantized()) {
    // Encode into the slot's code row; a reused slot's stale codes are
    // overwritten here, so codes and floats can never diverge.
    const Sq8Stats st = sq8_encode(
        v, code_arena_.data() + static_cast<std::size_t>(slot) * dim_);
    sq8_offset_[slot] = st.offset;
    sq8_scale_[slot] = st.scale;
    sq8_recon_norm_sq_[slot] = st.recon_norm_sq;
  }
  it->second = slot;
  link_slot(slot);
}

bool PStableLshIndex::remove(VecId id) {
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  const Slot slot = it->second;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    auto& table = tables_[t];
    const std::uint64_t key =
        slot_keys_[static_cast<std::size_t>(slot) * tables_.size() + t];
    const auto bucket_it = table.buckets.find(key);
    if (bucket_it != table.buckets.end()) {
      auto& slots = bucket_it->second;
      slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
      if (slots.empty()) table.buckets.erase(bucket_it);
    }
  }
  free_slots_.push_back(slot);
  id_to_slot_.erase(it);
  return true;
}

std::vector<Neighbor> PStableLshIndex::query(std::span<const float> q,
                                             std::size_t k) const {
  std::vector<Neighbor> result;
  query_into(q, k, result);
  return result;
}

void PStableLshIndex::hash_query(QueryScratch& sc, const Table& table,
                                 std::span<const float> q,
                                 std::uint64_t* keys) const {
  const std::size_t p = probes();
  keys[0] = compute_coords(sc, table, q, /*want_fractions=*/p > 0);
  if (p == 0) return;
  // Query-directed multiprobe: flip the coordinates whose projections sit
  // closest to a quantization boundary, one at a time, toward that boundary.
  for (std::uint32_t i = 0; i < sc.order.size(); ++i) sc.order[i] = i;
  std::sort(sc.order.begin(), sc.order.end(),
            [&sc](std::uint32_t a, std::uint32_t b) {
              const float da =
                  std::min(sc.fractions[a], 1.0f - sc.fractions[a]);
              const float db =
                  std::min(sc.fractions[b], 1.0f - sc.fractions[b]);
              return da < db;
            });
  for (std::size_t i = 0; i < p; ++i) {
    const std::uint32_t h = sc.order[i];
    const std::int64_t delta = sc.fractions[h] < 0.5f ? -1 : 1;
    sc.coords[h] += delta;
    keys[1 + i] = hash_coords(sc.coords);
    sc.coords[h] -= delta;  // restore for the next single-flip probe
  }
}

void PStableLshIndex::gather_score(QueryScratch& sc, std::span<const float> q,
                                   std::size_t k, const std::uint64_t* keys,
                                   std::vector<Neighbor>& out,
                                   QueryStats& st) const {
  out.clear();

  // Generation-stamped seen mask over arena slots: dedup is O(candidates)
  // with no sorting and no clearing between queries (a stamp survives until
  // the 32-bit generation wraps, at which point the mask is rewritten once).
  if (sc.seen.size() < slot_count()) sc.seen.resize(slot_count(), 0);
  if (++sc.generation == 0) {
    std::fill(sc.seen.begin(), sc.seen.end(), 0u);
    sc.generation = 1;
  }
  const std::uint32_t gen = sc.generation;

  sc.candidates.clear();
  sc.candidates.reserve(sc.last_candidates);  // typical steady-state size

  const std::size_t per_table = 1 + probes();
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto& buckets = tables_[t].buckets;
    for (std::size_t j = 0; j < per_table; ++j) {
      const auto it = buckets.find(keys[t * per_table + j]);
      if (it == buckets.end()) continue;
      for (const Slot slot : it->second) {
        if (sc.seen[slot] != gen) {
          sc.seen[slot] = gen;
          sc.candidates.push_back(slot);
        }
      }
    }
  }
  st.candidates = sc.candidates.size();
  st.rerank_survivors = 0;
  sc.last_candidates = st.candidates;
  if (sc.candidates.empty()) return;

  if (quantized()) {
    score_quantized(sc, q, k, out, st);
    return;
  }

  // Batched scoring: one gather pass over the contiguous arena.
  if (sc.distances.size() < sc.candidates.size()) {
    sc.distances.resize(sc.candidates.size());
  }
  l2_sq_gather(q, arena_.data(), sc.candidates, sc.distances.data());

  out.reserve(sc.candidates.size());
  for (std::size_t i = 0; i < sc.candidates.size(); ++i) {
    out.push_back(
        {slot_ids_[sc.candidates[i]], std::sqrt(sc.distances[i])});
  }
  const std::size_t take = std::min(k, out.size());
  std::partial_sort(out.begin(),
                    out.begin() + static_cast<std::ptrdiff_t>(take),
                    out.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  out.resize(take);
}

void PStableLshIndex::query_into(std::span<const float> q, std::size_t k,
                                 std::vector<Neighbor>& out,
                                 QueryStats* stats) const {
  assert(q.size() == dim_);
  QueryScratch& sc = scratch_;
  const std::size_t per_table = 1 + probes();
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    hash_query(sc, tables_[t], q, sc.keys.data() + t * per_table);
  }
  QueryStats st;
  gather_score(sc, q, k, sc.keys.data(), out, st);
  if (metrics_ != nullptr) {
    metrics_->record(candidates_hist_, static_cast<double>(st.candidates));
    if (quantized()) {
      metrics_->record(rerank_hist_,
                       static_cast<double>(st.rerank_survivors));
    }
  }
  if (stats != nullptr) *stats = st;
}

void PStableLshIndex::query_batch_into(std::span<const float> queries,
                                       std::size_t count, std::size_t k,
                                       IndexScratch* scratch,
                                       std::span<std::vector<Neighbor>> results,
                                       QueryStats* stats) const {
  auto* handle = dynamic_cast<ScratchHandle*>(scratch);
  if (handle == nullptr) {
    throw std::invalid_argument(
        "PStableLshIndex::query_batch_into: scratch must come from "
        "make_scratch()");
  }
  assert(queries.size() == count * dim_);
  assert(results.size() >= count);
  QueryScratch& sc = handle->sc;
  const std::size_t per_query = keys_per_query();
  const std::size_t per_table = 1 + probes();
  if (sc.keys.size() < count * per_query) {
    sc.keys.resize(count * per_query);
  }
  // Stage 1, table-major: one pass per table over the whole batch, so each
  // table's projection matrix stays hot in cache across frames — the
  // locality win batching buys over per-query hashing.
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    for (std::size_t b = 0; b < count; ++b) {
      hash_query(sc, tables_[t], queries.subspan(b * dim_, dim_),
                 sc.keys.data() + b * per_query + t * per_table);
    }
  }
  // Stages 2+3 per query, replaying the staged keys in the exact bucket
  // order the single-query path probes — results are byte-identical.
  for (std::size_t b = 0; b < count; ++b) {
    QueryStats st;
    gather_score(sc, queries.subspan(b * dim_, dim_), k,
                 sc.keys.data() + b * per_query, results[b], st);
    if (stats != nullptr) stats[b] = st;
  }
}

void PStableLshIndex::score_quantized(QueryScratch& sc,
                                      std::span<const float> q, std::size_t k,
                                      std::vector<Neighbor>& out,
                                      QueryStats& st) const {
  const std::size_t n = sc.candidates.size();

  // Stage 1 — ADC scan: one uint8 gather pass over the code arena. The
  // per-query terms |q|^2 and sum(q) fold every per-slot affine correction
  // into O(1) arithmetic around the u8 dot product.
  float q_norm_sq = 0.0f;
  float q_sum = 0.0f;
  for (const float x : q) {
    q_norm_sq += x * x;
    q_sum += x;
  }
  if (sc.distances.size() < n) sc.distances.resize(n);
  adc_l2_sq_gather(q, q_norm_sq, q_sum, code_arena_.data(),
                   sq8_offset_.data(), sq8_scale_.data(),
                   sq8_recon_norm_sq_.data(), sc.candidates,
                   sc.distances.data());

  // Stage 2 — survivor selection: the rerank_k best ADC scores (at least k,
  // so the vote never sees fewer neighbours than the float path would keep).
  const std::size_t rerank =
      std::min(std::max(params_.quantize.rerank_k, k), n);
  if (sc.rank_order.size() < n) sc.rank_order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) sc.rank_order[i] = i;
  std::partial_sort(
      sc.rank_order.begin(),
      sc.rank_order.begin() + static_cast<std::ptrdiff_t>(rerank),
      sc.rank_order.begin() + static_cast<std::ptrdiff_t>(n),
      [&sc](std::uint32_t a, std::uint32_t b) {
        return sc.distances[a] < sc.distances[b] ||
               (sc.distances[a] == sc.distances[b] &&
                sc.candidates[a] < sc.candidates[b]);
      });
  if (sc.survivors.size() < rerank) sc.survivors.resize(rerank);
  for (std::size_t i = 0; i < rerank; ++i) {
    sc.survivors[i] = sc.candidates[sc.rank_order[i]];
  }
  st.rerank_survivors = rerank;

  // Stage 3 — exact re-rank: float-arena gather over the survivors only.
  // Returned distances are exact, so H-kNN thresholds and vote semantics
  // match the float path; only candidate *selection* was approximate.
  if (sc.exact.size() < rerank) sc.exact.resize(rerank);
  l2_sq_gather(q, arena_.data(), {sc.survivors.data(), rerank},
               sc.exact.data());
  out.reserve(rerank);
  for (std::size_t i = 0; i < rerank; ++i) {
    out.push_back({slot_ids_[sc.survivors[i]], std::sqrt(sc.exact[i])});
  }
  const std::size_t take = std::min(k, out.size());
  std::partial_sort(out.begin(),
                    out.begin() + static_cast<std::ptrdiff_t>(take),
                    out.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  out.resize(take);
}

FeatureVec PStableLshIndex::reconstructed(VecId id) const {
  if (!quantized()) return {};
  const auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return {};
  const Slot slot = it->second;
  const std::uint8_t* codes =
      code_arena_.data() + static_cast<std::size_t>(slot) * dim_;
  FeatureVec v(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    v[i] = sq8_offset_[slot] +
           sq8_scale_[slot] * static_cast<float>(codes[i]);
  }
  return v;
}

void PStableLshIndex::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  candidates_hist_ = metrics.histogram("ann/candidates", count_bounds());
  if (quantized()) {
    rerank_hist_ = metrics.histogram("ann/rerank_survivors", count_bounds());
  }
}

void PStableLshIndex::rebuild_with_width(float new_width) {
  if (new_width <= 0.0f) {
    throw std::invalid_argument("rebuild_with_width: width <= 0");
  }
  // Rescale offsets proportionally so they stay uniform in [0, w).
  const float scale = new_width / params_.bucket_width;
  params_.bucket_width = new_width;
  for (auto& table : tables_) {
    table.buckets.clear();
    for (float& off : table.offsets) off *= scale;
  }
  for (const auto& [id, slot] : id_to_slot_) {
    link_slot(slot);
  }
}

}  // namespace apx

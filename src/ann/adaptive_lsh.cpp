#include "src/ann/adaptive_lsh.hpp"

#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"

namespace apx {

AdaptiveLshIndex::AdaptiveLshIndex(std::size_t dim,
                                   const AdaptiveLshParams& params)
    : params_(params), base_(dim, params.lsh) {
  if (params.width_factor <= 0.0f || params.ema_alpha <= 0.0 ||
      params.ema_alpha > 1.0 || params.rebuild_tolerance <= 0.0) {
    throw std::invalid_argument("AdaptiveLshIndex: bad parameters");
  }
}

void AdaptiveLshIndex::insert(VecId id, const FeatureVec& v) {
  base_.insert(id, v);
}

bool AdaptiveLshIndex::remove(VecId id) { return base_.remove(id); }

std::vector<Neighbor> AdaptiveLshIndex::query(std::span<const float> q,
                                              std::size_t k) const {
  std::vector<Neighbor> result;
  query_into(q, k, result);
  return result;
}

void AdaptiveLshIndex::query_into(std::span<const float> q, std::size_t k,
                                  std::vector<Neighbor>& out,
                                  QueryStats* stats) const {
  base_.query_into(q, k, out, stats);
  if (!out.empty()) {
    // Feed the controller with the farthest distance this query actually
    // needed (the k-th neighbour, or the last one found when fewer exist).
    const double dk = static_cast<double>(out.back().distance);
    if (dk > 0.0) {
      if (has_ema_) {
        dk_ema_ += params_.ema_alpha * (dk - dk_ema_);
      } else {
        dk_ema_ = dk;
        has_ema_ = true;
      }
    }
  }
  ++queries_since_rebuild_;
  maybe_adapt();
}

void AdaptiveLshIndex::observe_query_feedback(
    std::span<const float> dk_samples, std::size_t query_count) {
  for (const float dk_f : dk_samples) {
    const double dk = static_cast<double>(dk_f);
    if (dk <= 0.0) continue;
    if (has_ema_) {
      dk_ema_ += params_.ema_alpha * (dk - dk_ema_);
    } else {
      dk_ema_ = dk;
      has_ema_ = true;
    }
  }
  queries_since_rebuild_ += query_count;
  maybe_adapt();
}

void AdaptiveLshIndex::attach_metrics(MetricsRegistry& metrics) {
  base_.attach_metrics(metrics);
  metrics_ = &metrics;
  rebuilds_counter_ = metrics.counter("ann/rebuilds");
}

void AdaptiveLshIndex::maybe_adapt() const {
  if (!has_ema_ || base_.size() < params_.min_size_to_adapt ||
      queries_since_rebuild_ < params_.min_queries_between_rebuilds) {
    return;
  }
  const double target =
      static_cast<double>(params_.width_factor) * dk_ema_;
  if (target <= 0.0) return;
  const double current = static_cast<double>(base_.params().bucket_width);
  const double drift = std::abs(current - target) / current;
  if (drift > params_.rebuild_tolerance) {
    base_.rebuild_with_width(static_cast<float>(target));
    ++rebuilds_;
    queries_since_rebuild_ = 0;
    if (metrics_ != nullptr) metrics_->inc(rebuilds_counter_);
  }
}

}  // namespace apx

#pragma once
// Adaptive LSH (A-LSH) [lineage: FoggyCache, MobiCom'18]. Standard p-stable
// LSH has a fixed bucket width `w`: too narrow and nearby vectors stop
// colliding (recall collapses), too wide and every query scans huge
// candidate sets (lookup latency grows with cache density). A-LSH closes
// the loop: it tracks a moving estimate of the k-th-neighbour distance seen
// by real queries and periodically rebuilds the tables so that
// w ~= width_factor * d_k, keeping both recall and candidate counts stable
// as the cache fills up.

#include <memory>

#include "src/ann/lsh.hpp"

namespace apx {

/// A-LSH tuning knobs.
struct AdaptiveLshParams {
  LshParams lsh;                 ///< initial LSH configuration
  /// Target w = width_factor * EMA(d_k). With k concatenated hashes per
  /// table the per-table collision probability is roughly p(d/w)^k, so the
  /// factor must be generous: at w = 8 d the per-hash collision probability
  /// is ~0.9, giving ~0.95 recall with 8 hashes x 4 tables.
  float width_factor = 8.0f;
  double ema_alpha = 0.1;        ///< smoothing of the d_k estimate
  double rebuild_tolerance = 0.5;///< rebuild when |w - target| / w exceeds
  std::size_t min_queries_between_rebuilds = 32;
  std::size_t min_size_to_adapt = 16;  ///< don't adapt a near-empty index
};

/// Self-tuning LSH index (see file comment).
///
/// Thread-safety: query_batch_into() with per-caller scratches is read-only
/// and safe for concurrent callers; everything else — including query() and
/// query_into(), whose controller feed mutates the EMA and can trigger a
/// rebuild despite the const signature — requires exclusive access.
class AdaptiveLshIndex final : public NnIndex {
 public:
  AdaptiveLshIndex(std::size_t dim, const AdaptiveLshParams& params);

  void insert(VecId id, const FeatureVec& v) override;
  bool remove(VecId id) override;
  /// Queries and, as a side effect, feeds the width controller. Logically
  /// const (results are unaffected within a call), hence the mutable state.
  std::vector<Neighbor> query(std::span<const float> q,
                              std::size_t k) const override;
  /// Zero-steady-state-allocation variant of query() (same side effects);
  /// a rebuild, when the controller triggers one, does allocate.
  void query_into(std::span<const float> q, std::size_t k,
                  std::vector<Neighbor>& out,
                  QueryStats* stats = nullptr) const override;

  /// Forwards to the base index's per-caller scratch.
  std::unique_ptr<IndexScratch> make_scratch() const override {
    return base_.make_scratch();
  }

  /// Read-only batched query against the *current* tables: unlike
  /// query_into, it feeds neither the d_k estimate nor the rebuild
  /// trigger, so concurrent callers (one scratch each) never contend on
  /// controller state. Callers that want adaptation under a batched
  /// workload collect farthest-neighbour distances and hand them back via
  /// observe_query_feedback() under exclusive access (ApproxCache::
  /// fold_scratch does exactly this).
  void query_batch_into(std::span<const float> queries, std::size_t count,
                        std::size_t k, IndexScratch* scratch,
                        std::span<std::vector<Neighbor>> results,
                        QueryStats* stats = nullptr) const override {
    base_.query_batch_into(queries, count, k, scratch, results, stats);
  }

  /// Deferred controller feed for the batched path (exclusive access):
  /// applies each d_k sample to the EMA in order, advances the query
  /// counter by `query_count`, then runs the usual rebuild check once.
  void observe_query_feedback(std::span<const float> dk_samples,
                              std::size_t query_count) override;
  std::size_t size() const noexcept override { return base_.size(); }
  std::size_t dim() const noexcept override { return base_.dim(); }

  FeatureVec reconstructed(VecId id) const override {
    return base_.reconstructed(id);
  }

  /// Registers the base index's instruments plus the "ann/rebuilds" counter.
  void attach_metrics(MetricsRegistry& metrics) override;

  /// Current bucket width (changes over time; exposed for tests/benches).
  float current_width() const noexcept {
    return base_.params().bucket_width;
  }

  /// Rebuilds performed so far.
  std::size_t rebuild_count() const noexcept { return rebuilds_; }

 private:
  void maybe_adapt() const;

  AdaptiveLshParams params_;
  mutable PStableLshIndex base_;
  mutable double dk_ema_ = 0.0;
  mutable bool has_ema_ = false;
  mutable std::size_t queries_since_rebuild_ = 0;
  mutable std::size_t rebuilds_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t rebuilds_counter_ = 0;
};

}  // namespace apx

#pragma once
// Exact k-nearest-neighbour index by linear scan. The correctness baseline
// every approximate index is validated against, and the right choice for
// small caches where a scan beats hashing overhead.

#include <unordered_map>

#include "src/ann/index.hpp"

namespace apx {

/// Linear-scan exact kNN.
///
/// Thread-safety: query()/query_into() are genuinely const (no internal
/// scratch, no accounting members), so the inherited query_batch_into()
/// default — a loop over query_into with no scratch — is already safe for
/// concurrent callers. Only insert()/remove() require exclusive access.
class ExactKnnIndex final : public NnIndex {
 public:
  explicit ExactKnnIndex(std::size_t dim);

  void insert(VecId id, const FeatureVec& v) override;
  bool remove(VecId id) override;
  std::vector<Neighbor> query(std::span<const float> q,
                              std::size_t k) const override;
  /// Scores every stored vector into `out` (reusing its capacity), then
  /// partial-sorts the top k — zero heap allocations once `out` has grown
  /// to the index size. `stats` (optional) reports the full scan size.
  void query_into(std::span<const float> q, std::size_t k,
                  std::vector<Neighbor>& out,
                  QueryStats* stats = nullptr) const override;
  std::size_t size() const noexcept override { return vectors_.size(); }
  std::size_t dim() const noexcept override { return dim_; }

 private:
  std::size_t dim_;
  std::unordered_map<VecId, FeatureVec> vectors_;
};

}  // namespace apx

#include "src/p2p/peer_cache.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.hpp"

namespace apx {

PeerCacheService::PeerCacheService(EventSimulator& sim, WirelessMedium& medium,
                                   ApproxCache& cache,
                                   const PeerCacheParams& params, int cell)
    : sim_(&sim),
      medium_(&medium),
      cache_(&cache),
      params_(params),
      self_(medium.add_node(
          [this](NodeId from, const std::vector<std::uint8_t>& payload) {
            on_message(from, payload);
          },
          cell)),
      discovery_(
          sim, self_, params.discovery,
          [this](std::vector<std::uint8_t> payload) {
            medium_->broadcast(self_, std::move(payload));
          },
          [this] { return static_cast<std::uint32_t>(cache_->size()); }) {}

void PeerCacheService::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  last_advert_scan_ = sim_->now();
  // A restart begins a fresh protocol life: no backoff debt carries over.
  degraded_streak_ = 0;
  backoff_level_ = 0;
  suppressed_until_ = 0;
  discovery_.start();
  if (params_.advert_enabled) {
    sim_->schedule_after(params_.advert_interval,
                         [this, g = generation_] { advert_tick(g); });
  }
}

void PeerCacheService::stop() {
  if (!running_) return;
  running_ = false;
  discovery_.stop();
  discovery_.forget_all();
  // Fail pending lookups in request order (deterministic regardless of the
  // hash map's iteration order). Callbacks may re-enter the service.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, _] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) complete_lookup(id);
}

void PeerCacheService::on_message(NodeId from,
                                  const std::vector<std::uint8_t>& payload) {
  if (!running_) return;  // a crashed endpoint's radio hears nothing
  try {
    switch (peek_type(payload)) {
      case MsgType::kHello: {
        const HelloMsg hello = decode_hello(payload);
        const bool is_new = discovery_.on_hello(hello);
        if (is_new && params_.hotset_push_max > 0) {
          push_hotset(hello.sender);
        }
        break;
      }
      case MsgType::kLookupRequest:
        handle_lookup_request(decode_lookup_request(payload));
        break;
      case MsgType::kLookupResponse:
        handle_lookup_response(decode_lookup_response(payload));
        break;
      case MsgType::kEntryAdvert:
        handle_advert(decode_entry_advert(payload));
        break;
      default:
        counters_.inc("bad_message");
        break;
    }
  } catch (const CodecError&) {
    counters_.inc("bad_message");
  }
  (void)from;
}

void PeerCacheService::async_lookup(const FeatureVec& query,
                                    LookupCallback cb) {
  const auto neighbors = discovery_.neighbors();
  const std::uint64_t request_id = next_request_id_++;
  if (neighbors.empty()) {
    // Complete through the event loop so callers see uniform asynchrony.
    sim_->schedule_after(0, [cb = std::move(cb)] { cb({}); });
    return;
  }
  PendingLookup pending;
  pending.cb = std::move(cb);
  pending.expected = neighbors.size();
  pending.start = sim_->now();
  pending_.emplace(request_id, std::move(pending));

  LookupRequestMsg msg;
  msg.request_id = request_id;
  msg.sender = self_;
  msg.query = query;
  msg.k = params_.lookup_k;
  medium_->broadcast(self_, encode(msg));
  counters_.inc("lookup_sent");

  sim_->schedule_after(params_.lookup_timeout,
                       [this, request_id] { complete_lookup(request_id); });
}

void PeerCacheService::complete_lookup(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // already completed
  // Move out before erase: the callback may start another lookup.
  PendingLookup pending = std::move(it->second);
  pending_.erase(it);
  const SimDuration round = sim_->now() - pending.start;
  // A round that ends with answers still missing was bounded by the
  // timeout (or cut short by a crash): the degraded signal that feeds both
  // the p2p_degraded observability and the rung backoff.
  note_round_outcome(pending.received < pending.expected, sim_->now());
  if (metrics_ != nullptr) {
    metrics_->record(round_us_hist_, static_cast<double>(round));
    if (pending.received < pending.expected) {
      metrics_->record(degraded_round_us_hist_, static_cast<double>(round));
    }
  }
  pending.cb(std::move(pending.collected));
}

void PeerCacheService::note_round_outcome(bool degraded, SimTime now) {
  if (!degraded) {
    degraded_streak_ = 0;
    backoff_level_ = 0;
    suppressed_until_ = 0;
    return;
  }
  counters_.inc("degraded");
  if (params_.backoff_after == 0) return;
  ++degraded_streak_;
  if (degraded_streak_ < params_.backoff_after) return;
  // Exponential growth, capped; each further degraded round after the
  // threshold extends the suppression at the next level.
  SimDuration window = params_.backoff_base;
  for (std::uint32_t i = 0; i < backoff_level_ && window < params_.backoff_max;
       ++i) {
    window *= 2;
  }
  window = std::min(window, params_.backoff_max);
  ++backoff_level_;
  suppressed_until_ = now + window;
}

bool PeerCacheService::should_attempt(SimTime now) {
  if (now >= suppressed_until_) return true;
  counters_.inc("backoff_skip");
  return false;
}

void PeerCacheService::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  round_us_hist_ = metrics.histogram("p2p/round_us", latency_us_bounds());
  degraded_round_us_hist_ =
      metrics.histogram("p2p/degraded_round_us", latency_us_bounds());
  metrics.counter("p2p/lookup_sent");
  metrics.counter("p2p/response_sent");
  metrics.counter("p2p/response_recv");
  metrics.counter("p2p/merged");
  metrics.counter("p2p/degraded");
  metrics.counter("p2p/backoff_skip");
}

void PeerCacheService::push_hotset(NodeId newcomer) {
  // The most-accessed local entries are the best predictors of what the
  // newcomer will ask about; ship them proactively so it starts warm.
  std::vector<const CacheEntry*> hot;
  cache_->for_each([&hot](const CacheEntry& entry) {
    if (entry.origin == EntryOrigin::kLocal) hot.push_back(&entry);
  });
  if (hot.empty()) return;
  std::sort(hot.begin(), hot.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->access_count > b->access_count ||
                     (a->access_count == b->access_count && a->id < b->id);
            });
  if (hot.size() > params_.hotset_push_max) {
    hot.resize(params_.hotset_push_max);
  }
  EntryAdvertMsg msg;
  msg.sender = self_;
  for (const CacheEntry* entry : hot) {
    WireEntry wire;
    wire.feature = entry->feature;
    wire.label = entry->label;
    wire.confidence = entry->confidence;
    wire.hop_count = entry->hop_count;
    wire.source_device = entry->source_device;
    wire.age = std::max<SimDuration>(0, sim_->now() - entry->insert_time);
    wire.quantize_on_wire = params_.quantize_wire_features;
    msg.entries.push_back(std::move(wire));
  }
  medium_->unicast(self_, newcomer, encode(msg));
  counters_.inc("hotset_push");
  counters_.inc("hotset_entries", msg.entries.size());
}

void PeerCacheService::handle_lookup_request(const LookupRequestMsg& msg) {
  LookupResponseMsg resp;
  resp.request_id = msg.request_id;
  resp.sender = self_;
  if (!msg.query.empty() && msg.query.size() == cache_->dim()) {
    // Answer from the raw entry set: share the neighbours themselves and
    // let the requester run its own H-kNN over the merged pool.
    std::vector<std::pair<float, const CacheEntry*>> close;
    cache_->for_each([&](const CacheEntry& entry) {
      const float d = l2(msg.query, entry.feature);
      if (d <= params_.response_max_distance) close.emplace_back(d, &entry);
    });
    std::sort(close.begin(), close.end(),
              [](const auto& a, const auto& b) {
                return a.first < b.first ||
                       (a.first == b.first && a.second->id < b.second->id);
              });
    const std::size_t take =
        std::min<std::size_t>(msg.k, close.size());
    for (std::size_t i = 0; i < take; ++i) {
      const CacheEntry& entry = *close[i].second;
      WireEntry wire;
      wire.feature = entry.feature;
      wire.label = entry.label;
      wire.confidence = entry.confidence;
      wire.hop_count = entry.hop_count;
      wire.source_device = entry.source_device;
      wire.age = std::max<SimDuration>(0, sim_->now() - entry.insert_time);
      wire.quantize_on_wire = params_.quantize_wire_features;
      resp.entries.push_back(std::move(wire));
    }
  }
  medium_->unicast(self_, msg.sender, encode(resp));
  counters_.inc("response_sent");
}

void PeerCacheService::handle_lookup_response(const LookupResponseMsg& msg) {
  counters_.inc("response_recv");
  const auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return;  // late response after timeout
  auto& pending = it->second;
  for (const auto& entry : msg.entries) {
    pending.collected.push_back(entry);
    merge_entry(entry);
  }
  ++pending.received;
  if (pending.received >= pending.expected) {
    complete_lookup(msg.request_id);
  }
}

void PeerCacheService::handle_advert(const EntryAdvertMsg& msg) {
  for (const auto& entry : msg.entries) merge_entry(entry);
}

bool PeerCacheService::merge_entry(const WireEntry& entry) {
  if (entry.feature.size() != cache_->dim() || entry.label == kNoLabel) {
    counters_.inc("bad_message");
    return false;
  }
  // A corrupted payload can decode "successfully" into garbage floats; a
  // NaN feature would defeat every distance comparison downstream and sit
  // in the cache poisoning votes forever. Reject non-finite values here.
  for (const float x : entry.feature) {
    if (!std::isfinite(x)) {
      counters_.inc("bad_message");
      return false;
    }
  }
  if (!std::isfinite(entry.confidence)) {
    counters_.inc("bad_message");
    return false;
  }
  if (entry.hop_count >= params_.max_hops) {
    counters_.inc("merge_hops");
    return false;
  }
  const auto nearest = cache_->nearest_distance(entry.feature);
  if (nearest.has_value() && *nearest <= params_.dedup_radius) {
    counters_.inc("merge_dup");
    return false;
  }
  const auto hops = static_cast<std::uint8_t>(entry.hop_count + 1);
  const auto confidence = static_cast<float>(
      entry.confidence *
      std::pow(params_.merge_confidence_decay, static_cast<double>(hops)));
  const SimTime insert_time =
      std::max<SimTime>(0, sim_->now() - std::max<SimDuration>(0, entry.age));
  // Insert with provenance; back-date last_access via insert_time so stale
  // remote entries do not outlive fresh local ones under utility eviction.
  cache_->insert(entry.feature, entry.label, confidence, insert_time,
                 EntryOrigin::kPeer, hops, entry.source_device);
  counters_.inc("merged");
  return true;
}

void PeerCacheService::advert_tick(std::uint64_t generation) {
  // Generation stamp: a tick scheduled before stop() must not revive (or
  // duplicate) the chain after a restart re-arms its own tick.
  if (!running_ || generation != generation_) return;
  const SimTime since = last_advert_scan_;
  last_advert_scan_ = sim_->now();
  // Gossip only locally computed results; re-advertising merged entries
  // would amplify traffic quadratically (hop limits bound it regardless).
  std::vector<CacheEntry> fresh;
  for (CacheEntry& entry : cache_->entries_since(since)) {
    if (entry.origin == EntryOrigin::kLocal) {
      fresh.push_back(std::move(entry));
    }
  }
  if (!fresh.empty() && !discovery_.neighbors().empty()) {
    EntryAdvertMsg msg;
    msg.sender = self_;
    const std::size_t start =
        fresh.size() > params_.advert_batch_max
            ? fresh.size() - params_.advert_batch_max
            : 0;
    for (std::size_t i = start; i < fresh.size(); ++i) {
      const CacheEntry& entry = fresh[i];
      WireEntry wire;
      wire.feature = entry.feature;
      wire.label = entry.label;
      wire.confidence = entry.confidence;
      wire.hop_count = entry.hop_count;
      wire.source_device = entry.source_device;
      wire.age = std::max<SimDuration>(0, sim_->now() - entry.insert_time);
      wire.quantize_on_wire = params_.quantize_wire_features;
      msg.entries.push_back(std::move(wire));
    }
    medium_->broadcast(self_, encode(msg));
    counters_.inc("advert_sent");
    counters_.inc("advert_entries", msg.entries.size());
  }
  sim_->schedule_after(params_.advert_interval,
                       [this, generation] { advert_tick(generation); });
}

}  // namespace apx

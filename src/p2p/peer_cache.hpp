#pragma once
// Collaborative cache sharing over the broadcast medium — the poster's
// "information from nearby, peer-to-peer devices". One PeerCacheService per
// device wires its ApproxCache to the network:
//
//   * discovery: periodic HELLO beacons maintain a neighbour table;
//   * pull: async_lookup() broadcasts a feature vector and collects
//     neighbours' matching entries (completes early once every live
//     neighbour answered, or at the timeout);
//   * push: freshly computed local results are gossiped in batched
//     EntryAdvert messages;
//   * merge: received entries join the local cache with hop count + age
//     provenance, unless a near-duplicate is already cached or the entry
//     travelled too many hops.

#include <functional>
#include <unordered_map>

#include "src/cache/approx_cache.hpp"
#include "src/net/discovery.hpp"
#include "src/net/medium.hpp"

namespace apx {

class MetricsRegistry;

/// Protocol parameters.
struct PeerCacheParams {
  DiscoveryParams discovery;
  /// Upper bound on the wait for neighbour answers; ~2x the medium's RTT.
  /// Lookups complete early once every live neighbour responded, so this
  /// binds only when a response is lost.
  SimDuration lookup_timeout = 15 * kMillisecond;
  std::uint32_t lookup_k = 4;
  /// A node answers a remote lookup only with entries this close to the
  /// query (no point shipping far-away vectors).
  float response_max_distance = 0.6f;
  std::uint8_t max_hops = 2;         ///< drop entries that travelled further
  float dedup_radius = 0.05f;        ///< skip merge when this close to cached
  double merge_confidence_decay = 0.95;  ///< per-hop confidence discount
  bool advert_enabled = true;
  SimDuration advert_interval = 1 * kSecond;
  std::size_t advert_batch_max = 16; ///< newest-first cap per advert
  /// Ship features 8-bit quantized (~3.7x smaller payloads, slight lossy
  /// distortion; see ann/quantize.hpp).
  bool quantize_wire_features = false;
  /// When a peer is first discovered (or re-appears after expiry), push it
  /// the `hotset_push_max` most-accessed local entries so it starts warm —
  /// valuable under range churn. 0 disables.
  std::size_t hotset_push_max = 0;
  /// After this many consecutive degraded lookup rounds (rounds that hit
  /// the timeout with answers missing), the P2P rung backs off: lookups are
  /// suppressed for an exponentially growing window, so a partitioned or
  /// loss-swamped device converges to standalone latency instead of paying
  /// the timeout on every frame. Any completed (non-degraded) round resets
  /// the backoff. 0 disables.
  std::uint32_t backoff_after = 3;
  SimDuration backoff_base = 2 * kSecond;  ///< first suppression window
  SimDuration backoff_max = 30 * kSecond;  ///< window growth cap
};

/// P2P collaboration endpoint for one device.
class PeerCacheService {
 public:
  using LookupCallback = std::function<void(std::vector<WireEntry>)>;

  /// Registers a node on `medium` in `cell`; `cache` must outlive this.
  PeerCacheService(EventSimulator& sim, WirelessMedium& medium,
                   ApproxCache& cache, const PeerCacheParams& params,
                   int cell = 0);

  /// Starts beaconing and (if enabled) the advertisement timer. Callable
  /// again after stop() (peer restart): timers re-arm exactly once — stale
  /// scheduled ticks from before the stop are generation-stamped no-ops.
  void start();

  /// Simulates a crash of this endpoint: stops beaconing and adverts, wipes
  /// the neighbour table, fails every pending lookup (callbacks fire with
  /// no entries, in request order) and ignores incoming traffic until the
  /// next start(). The local cache is NOT touched — the owner decides
  /// whether the crash wiped it.
  void stop();

  bool running() const noexcept { return running_; }

  /// Broadcasts a lookup for `query`; `cb` fires exactly once, with every
  /// entry collected by completion (possibly none). With no live
  /// neighbours, `cb` fires via the event loop immediately.
  void async_lookup(const FeatureVec& query, LookupCallback cb);

  /// Backoff gate for the pipeline's P2P rung: false while lookups are
  /// suppressed after `backoff_after` consecutive degraded rounds (counts
  /// the skip). True (and cheap) when backoff is disabled or healthy.
  bool should_attempt(SimTime now);

  NodeId id() const noexcept { return self_; }
  DiscoveryService& discovery() noexcept { return discovery_; }
  const PeerCacheParams& params() const noexcept { return params_; }

  /// Counters: "lookup_sent", "response_sent", "response_recv", "merged",
  /// "merge_dup", "merge_hops", "advert_sent", "advert_entries",
  /// "bad_message", "degraded", "backoff_skip".
  const Counter& counters() const noexcept { return counters_; }

  /// Registers the "p2p/round_us" lookup round-trip histogram and the
  /// "p2p/degraded_round_us" histogram of rounds that hit the timeout with
  /// answers missing (plus the counters the runner later copies, as zeros,
  /// for schema stability). The registry must outlive the service.
  void attach_metrics(MetricsRegistry& metrics);

 private:
  void on_message(NodeId from, const std::vector<std::uint8_t>& payload);
  void push_hotset(NodeId newcomer);
  void handle_lookup_request(const LookupRequestMsg& msg);
  void handle_lookup_response(const LookupResponseMsg& msg);
  void handle_advert(const EntryAdvertMsg& msg);
  /// Merges one wire entry into the local cache; returns whether it joined.
  bool merge_entry(const WireEntry& entry);
  void advert_tick(std::uint64_t generation);
  void complete_lookup(std::uint64_t request_id);
  void note_round_outcome(bool degraded, SimTime now);

  struct PendingLookup {
    LookupCallback cb;
    std::vector<WireEntry> collected;
    std::size_t expected = 0;
    std::size_t received = 0;
    SimTime start = 0;  ///< when the request was broadcast
  };

  EventSimulator* sim_;
  WirelessMedium* medium_;
  ApproxCache* cache_;
  PeerCacheParams params_;
  NodeId self_;
  DiscoveryService discovery_;
  std::unordered_map<std::uint64_t, PendingLookup> pending_;
  std::uint64_t next_request_id_ = 1;
  SimTime last_advert_scan_ = 0;
  bool running_ = false;
  /// Bumped by every start(); orphans advert ticks scheduled pre-stop().
  std::uint64_t generation_ = 0;
  // Backoff state: consecutive degraded rounds and the suppression window.
  std::uint32_t degraded_streak_ = 0;
  std::uint32_t backoff_level_ = 0;
  SimTime suppressed_until_ = 0;
  Counter counters_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t round_us_hist_ = 0;
  std::uint32_t degraded_round_us_hist_ = 0;
};

}  // namespace apx

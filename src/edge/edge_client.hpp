#pragma once
// Device-side endpoint of the edge tier: one EdgeClient per device, holding
// a unicast conversation with the region's EdgeCacheService over the
// shared medium. Mirrors the P2P service's discipline — pending-lookup map
// with a timeout, deterministic failure order on stop(), and the same
// exponential backoff so a device cut off from the edge converges back to
// P2P/local latency instead of paying the timeout every frame.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "src/ann/hknn.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/net/medium.hpp"

namespace apx {

class MetricsRegistry;

/// One device's connection to the region edge cache.
class EdgeClient {
 public:
  using LookupCallback = std::function<void(std::optional<HknnVote>)>;

  /// Registers a node on `medium` in `cell`. `server` is the
  /// EdgeCacheService's node id — infrastructure, not discovered.
  EdgeClient(EventSimulator& sim, WirelessMedium& medium, NodeId server,
             const EdgeParams& params, int cell = 0);

  /// Callable again after stop() (device restart); backoff debt resets.
  void start();

  /// Simulates a crash of this endpoint: fails every pending lookup
  /// (callbacks fire with nullopt, in request order) and ignores incoming
  /// traffic until the next start().
  void stop();

  bool running() const noexcept { return running_; }

  /// Sends one lookup to the edge; `cb` fires exactly once — with the
  /// edge's vote, or nullopt on a miss, a lost/timed-out round, or when
  /// the client is stopped.
  void async_lookup(const FeatureVec& query, float threshold_scale,
                    LookupCallback cb);

  /// Backoff gate for the pipeline's edge rung: false while lookups are
  /// suppressed after `backoff_after` consecutive timed-out rounds (counts
  /// the skip). A completed round — hit or miss — resets the backoff.
  bool should_attempt(SimTime now);

  /// Fire-and-forget upload of a DNN-validated result; the edge decides
  /// admission against its error budget.
  void feed(const FeatureVec& features, Label label, float confidence);

  NodeId id() const noexcept { return self_; }
  const EdgeParams& params() const noexcept { return params_; }

  /// Counters: "lookup_sent", "response_recv", "feed_sent", "degraded",
  /// "backoff_skip", "bad_message" (folded by the runner as "edge/<key>").
  const Counter& counters() const noexcept { return counters_; }

  /// Registers the "edge/round_us" lookup round-trip histogram plus the
  /// folded counters (as zeros, for schema stability). The registry must
  /// outlive the client.
  void attach_metrics(MetricsRegistry& metrics);

 private:
  void on_message(NodeId from, const std::vector<std::uint8_t>& payload);
  void handle_response(const EdgeLookupResponseMsg& msg);
  void complete(std::uint64_t request_id, std::optional<HknnVote> vote,
                bool degraded);
  void note_round_outcome(bool degraded, SimTime now);

  struct PendingLookup {
    LookupCallback cb;
    SimTime start = 0;  ///< when the request was sent
  };

  EventSimulator* sim_;
  WirelessMedium* medium_;
  NodeId server_;
  EdgeParams params_;
  NodeId self_;
  std::unordered_map<std::uint64_t, PendingLookup> pending_;
  std::uint64_t next_request_id_ = 1;
  bool running_ = false;
  // Backoff state: consecutive timed-out rounds and the suppression window.
  std::uint32_t degraded_streak_ = 0;
  std::uint32_t backoff_level_ = 0;
  SimTime suppressed_until_ = 0;
  Counter counters_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t round_us_hist_ = 0;
};

}  // namespace apx

#include "src/edge/edge_client.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"

namespace apx {

EdgeClient::EdgeClient(EventSimulator& sim, WirelessMedium& medium,
                       NodeId server, const EdgeParams& params, int cell)
    : sim_(&sim),
      medium_(&medium),
      server_(server),
      params_(params),
      self_(medium.add_node(
          [this](NodeId from, const std::vector<std::uint8_t>& payload) {
            on_message(from, payload);
          },
          cell)) {}

void EdgeClient::start() {
  if (running_) return;
  running_ = true;
  // A restart begins a fresh protocol life: no backoff debt carries over.
  degraded_streak_ = 0;
  backoff_level_ = 0;
  suppressed_until_ = 0;
}

void EdgeClient::stop() {
  if (!running_) return;
  running_ = false;
  // Fail pending lookups in request order (deterministic regardless of the
  // hash map's iteration order). Callbacks may re-enter the client.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, _] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    complete(id, std::nullopt, /*degraded=*/true);
  }
}

void EdgeClient::async_lookup(const FeatureVec& query, float threshold_scale,
                              LookupCallback cb) {
  if (!running_) {
    // Complete through the event loop so callers see uniform asynchrony.
    sim_->schedule_after(0, [cb = std::move(cb)] { cb(std::nullopt); });
    return;
  }
  const std::uint64_t request_id = next_request_id_++;
  PendingLookup pending;
  pending.cb = std::move(cb);
  pending.start = sim_->now();
  pending_.emplace(request_id, std::move(pending));

  EdgeLookupRequestMsg msg;
  msg.request_id = request_id;
  msg.sender = self_;
  msg.threshold_scale = threshold_scale;
  msg.query = query;
  medium_->unicast(self_, server_, encode(msg));
  counters_.inc("lookup_sent");

  sim_->schedule_after(params_.lookup_timeout, [this, request_id] {
    complete(request_id, std::nullopt, /*degraded=*/true);
  });
}

void EdgeClient::complete(std::uint64_t request_id,
                          std::optional<HknnVote> vote, bool degraded) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // already completed
  // Move out before erase: the callback may start another lookup.
  PendingLookup pending = std::move(it->second);
  pending_.erase(it);
  note_round_outcome(degraded, sim_->now());
  if (metrics_ != nullptr) {
    metrics_->record(round_us_hist_,
                     static_cast<double>(sim_->now() - pending.start));
  }
  pending.cb(vote);
}

void EdgeClient::note_round_outcome(bool degraded, SimTime now) {
  if (!degraded) {
    degraded_streak_ = 0;
    backoff_level_ = 0;
    suppressed_until_ = 0;
    return;
  }
  counters_.inc("degraded");
  if (params_.backoff_after == 0) return;
  ++degraded_streak_;
  if (degraded_streak_ < params_.backoff_after) return;
  // Exponential growth, capped; same shape as the P2P rung's backoff.
  SimDuration window = params_.backoff_base;
  for (std::uint32_t i = 0; i < backoff_level_ && window < params_.backoff_max;
       ++i) {
    window *= 2;
  }
  window = std::min(window, params_.backoff_max);
  ++backoff_level_;
  suppressed_until_ = now + window;
}

bool EdgeClient::should_attempt(SimTime now) {
  if (now >= suppressed_until_) return true;
  counters_.inc("backoff_skip");
  return false;
}

void EdgeClient::feed(const FeatureVec& features, Label label,
                      float confidence) {
  if (!running_) return;
  EdgeFeedMsg msg;
  msg.sender = self_;
  msg.entry.feature = features;
  msg.entry.label = label;
  msg.entry.confidence = confidence;
  msg.entry.hop_count = 0;
  msg.entry.source_device = self_;
  msg.entry.age = 0;
  msg.entry.quantize_on_wire = params_.quantize_wire_features;
  medium_->unicast(self_, server_, encode(msg));
  counters_.inc("feed_sent");
}

void EdgeClient::on_message(NodeId from,
                            const std::vector<std::uint8_t>& payload) {
  if (!running_) return;  // a crashed endpoint's radio hears nothing
  try {
    switch (peek_type(payload)) {
      case MsgType::kEdgeLookupResponse:
        handle_response(decode_edge_lookup_response(payload));
        break;
      default:
        // Shared-medium chatter (P2P beacons, adverts) reaching this node's
        // radio — not ours, not an error.
        break;
    }
  } catch (const CodecError&) {
    counters_.inc("bad_message");
  }
  (void)from;
}

void EdgeClient::handle_response(const EdgeLookupResponseMsg& msg) {
  counters_.inc("response_recv");
  std::optional<HknnVote> vote;
  if (msg.has_vote) {
    HknnVote v;
    v.label = msg.label;
    v.homogeneity = msg.homogeneity;
    v.nearest_distance = msg.nearest_distance;
    v.voters = msg.voters;
    vote = v;
  }
  // An answered round — hit or miss — is healthy; only losses/timeouts
  // count toward backoff.
  complete(msg.request_id, vote, /*degraded=*/false);
}

void EdgeClient::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  round_us_hist_ = metrics.histogram("edge/round_us", latency_us_bounds());
  metrics.counter("edge/lookup_sent");
  metrics.counter("edge/degraded");
  metrics.counter("edge/backoff_skip");
}

}  // namespace apx

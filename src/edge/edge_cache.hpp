#pragma once
// Region-scale edge aggregation tier — the reuse rung above device-to-device
// sharing. One EdgeCacheService serves a whole proximity region: devices
// query it after a local/P2P miss and feed it DNN-validated results, so
// recognition history aggregates across every device in range (the
// GAN-assisted edge caches of Souza et al., minus the GAN).
//
// Three mechanisms distinguish the edge tier from one big ApproxCache:
//
//  * sharding — the key space is split across N concurrent ApproxCache
//    shards by a feature hash (sign random projections, so near-identical
//    keys land in the same shard and ANN recall survives the split). Each
//    shard is the shared-reader/exclusive-writer cache of DESIGN.md §9 with
//    its own capacity, so writers on different shards never contend.
//  * error-controlled admission — following Finamore et al., an entry joins
//    only when the estimated extra serving error it introduces clears
//    EdgeParams::error_budget. The estimate comes from the shard's own
//    H-kNN vote over the new key: an agreeing, homogeneous neighbourhood is
//    cheap to extend; a conflicting one is expensive.
//  * TTL staleness sweep — entries expire `ttl` after insertion and are
//    removed by a deterministic periodic sweep on the sim clock (never
//    lazily during queries, so same-seed runs stay byte-identical).
//
// The service is usable standalone (direct query/feed/sweep calls — the
// bench backend) or attached to a WirelessMedium, where it answers
// EdgeLookupRequest/EdgeFeed messages so partitions, burst loss and
// crash/restart faults apply to the edge link for free.
//
// Thread-safety: query/feed/sweep/clear/size may be called concurrently
// from many threads — each shard serializes its own mutations internally
// (DESIGN.md §9) and the service-level counters/metrics sit behind a
// mutex. Two caveats: a concurrent feed's admission estimate and insert
// are not one atomic step (a racing feed may shift the vote in between —
// harmless, just nondeterministic), and the network surface
// (attach_network/start/stop/on_message) belongs to the sim thread only.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "src/cache/approx_cache.hpp"
#include "src/net/medium.hpp"
#include "src/net/messages.hpp"
#include "src/util/stats.hpp"

namespace apx {

class MetricsRegistry;

/// Edge tier parameters. The ladder grammar exposes the first four as rung
/// arguments: `edge(shards=4,capacity=2048,ttl=30s,error_budget=0.25)`.
struct EdgeParams {
  std::size_t shards = 4;          ///< concurrent ApproxCache shards
  std::size_t capacity = 2048;     ///< per-shard entry capacity
  SimDuration ttl = 30 * kSecond;  ///< entry lifetime; swept, not lazy
  /// Admission gate: reject a feed when the estimated serving-error
  /// increase exceeds this. 0 admits only entries a current vote already
  /// agrees with; 1 admits everything (the no-gate ablation).
  float error_budget = 0.25f;
  SimDuration sweep_interval = 1 * kSecond;  ///< staleness sweep period
  /// Client-side knobs (one EdgeClient per device).
  SimDuration lookup_timeout = 15 * kMillisecond;
  std::uint32_t backoff_after = 3;         ///< degraded rounds before backoff
  SimDuration backoff_base = 2 * kSecond;  ///< first suppression window
  SimDuration backoff_max = 30 * kSecond;  ///< window growth cap
  bool quantize_wire_features = false;     ///< SQ8 feed payloads
  /// Per-shard cache configuration (index, H-kNN, latency model).
  ApproxCacheConfig cache;
};

/// The region edge cache: N feature-hash-routed ApproxCache shards behind
/// one (optional) network endpoint.
class EdgeCacheService {
 public:
  /// Builds the shards for `dim`-dimensional keys. The routing projections
  /// are a pure function of (dim, shards) — no RNG stream is consumed, so
  /// adding an edge service never shifts another component's draws.
  EdgeCacheService(std::size_t dim, const EdgeParams& params);

  // ---- direct API (also the message handlers' implementation) ----------

  /// Shard index for `features`; deterministic across runs and threads.
  std::size_t shard_of(std::span<const float> features) const;

  /// H-kNN vote of the routed shard (latency/candidates in the result).
  CacheResult query(std::span<const float> features, SimTime now,
                    float threshold_scale = 1.0f);

  /// Error-controlled admission: estimates the serving-error increase of
  /// the candidate entry from the routed shard's current vote and admits
  /// only within params().error_budget. Returns whether the entry joined.
  bool feed(const FeatureVec& features, Label label, float confidence,
            SimTime now, std::uint32_t source_device = 0);

  /// Removes every entry whose ttl elapsed. Expiry is exactly at the
  /// boundary: an entry inserted at t is kept by a sweep at t + ttl - 1 and
  /// removed by one at t + ttl. Returns the number removed. Deterministic:
  /// per shard, ids are removed in ascending order.
  std::size_t sweep(SimTime now);

  /// Wipes every shard (edge process crash). Entry ids are not reused.
  void clear();

  /// Total entries across shards.
  std::size_t size() const;

  // ---- network endpoint ------------------------------------------------

  /// Registers a node on `medium` in `cell` and starts answering edge
  /// messages once start()ed. Call at most once, before start().
  void attach_network(EventSimulator& sim, WirelessMedium& medium,
                      int cell = 0);

  /// Begins serving (and, when attached to a sim, the periodic staleness
  /// sweep). Callable again after stop(): sweep ticks are generation-
  /// stamped so pre-stop ticks cannot revive or duplicate the chain.
  void start();

  /// Simulates an edge crash: stops serving, wipes every shard via clear()
  /// and ignores traffic until the next start(). Devices re-warm the
  /// restarted service through their normal feeds.
  void stop();

  bool running() const noexcept { return running_; }

  /// Network id; only valid after attach_network().
  NodeId id() const noexcept { return self_; }

  // ---- introspection ---------------------------------------------------

  /// Registers the "edge/srv_lookup_us" histogram plus the service counters
  /// the runner later folds (as zeros, for schema stability). The registry
  /// must outlive the service.
  void attach_metrics(MetricsRegistry& metrics);

  /// Counters: "lookup", "feed", "admit", "reject_budget", "swept",
  /// "bad_message" (folded by the runner as "edge/srv_<key>"). Reading
  /// while another thread mutates needs an external quiescent point.
  const Counter& counters() const noexcept { return counters_; }

  const EdgeParams& params() const noexcept { return params_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  ApproxCache& shard(std::size_t i) { return *shards_[i]; }
  const ApproxCache& shard(std::size_t i) const { return *shards_[i]; }

 private:
  void on_message(NodeId from, const std::vector<std::uint8_t>& payload);
  void handle_lookup(const EdgeLookupRequestMsg& msg);
  void handle_feed(const EdgeFeedMsg& msg);
  void sweep_tick(std::uint64_t generation);

  std::size_t dim_;
  EdgeParams params_;
  /// Routing hyperplanes, row-major (planes x dim); sign bits form the
  /// shard index. Empty when shards == 1.
  std::vector<float> planes_;
  std::size_t plane_count_ = 0;
  std::vector<std::unique_ptr<ApproxCache>> shards_;
  EventSimulator* sim_ = nullptr;
  WirelessMedium* medium_ = nullptr;
  NodeId self_ = 0;
  bool running_ = false;
  /// Bumped by every start(); orphans sweep ticks scheduled pre-stop().
  std::uint64_t generation_ = 0;
  /// Guards counters_ and metrics recording: the shards serialize their own
  /// state, but concurrent query/feed/sweep callers share these tallies.
  mutable std::mutex counters_mu_;
  Counter counters_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t lookup_us_hist_ = 0;
};

}  // namespace apx

#include "src/edge/edge_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/util/rng.hpp"

namespace apx {
namespace {

/// Smallest number of sign bits covering `shards` buckets.
std::size_t planes_for(std::size_t shards) {
  std::size_t planes = 0;
  while ((std::size_t{1} << planes) < shards) ++planes;
  return planes;
}

}  // namespace

EdgeCacheService::EdgeCacheService(std::size_t dim, const EdgeParams& params)
    : dim_(dim), params_(params) {
  if (dim_ == 0) throw std::invalid_argument("edge: dim must be positive");
  if (params_.shards == 0) {
    throw std::invalid_argument("edge: shards must be positive");
  }
  if (params_.capacity == 0) {
    throw std::invalid_argument("edge: capacity must be positive");
  }
  if (params_.ttl <= 0) throw std::invalid_argument("edge: ttl must be > 0");
  if (!(params_.error_budget >= 0.0f && params_.error_budget <= 1.0f)) {
    throw std::invalid_argument("edge: error_budget must be in [0, 1]");
  }
  // Routing hyperplanes from a constant seed mixed with (dim, shards): a
  // pure function of the configuration, never the experiment's RNG streams.
  plane_count_ = planes_for(params_.shards);
  if (plane_count_ > 0) {
    Rng rng{0xed6ecac4e5eedULL ^ (static_cast<std::uint64_t>(dim_) << 16) ^
            static_cast<std::uint64_t>(params_.shards)};
    planes_.resize(plane_count_ * dim_);
    for (float& x : planes_) x = static_cast<float>(rng.normal());
  }
  ApproxCacheConfig shard_cfg = params_.cache;
  shard_cfg.capacity = params_.capacity;
  shards_.reserve(params_.shards);
  for (std::size_t s = 0; s < params_.shards; ++s) {
    shards_.push_back(
        std::make_unique<ApproxCache>(dim_, shard_cfg, make_utility_policy()));
  }
}

std::size_t EdgeCacheService::shard_of(std::span<const float> features) const {
  if (shards_.size() == 1) return 0;
  // SimHash routing: the sign pattern of a few random projections. Nearby
  // keys share signs with high probability, so ANN neighbourhoods tend to
  // co-locate in one shard and recall survives the split.
  std::size_t h = 0;
  for (std::size_t p = 0; p < plane_count_; ++p) {
    const float* row = planes_.data() + p * dim_;
    float dot = 0.0f;
    const std::size_t n = std::min(features.size(), dim_);
    for (std::size_t i = 0; i < n; ++i) dot += row[i] * features[i];
    h = (h << 1) | static_cast<std::size_t>(dot >= 0.0f);
  }
  return h % shards_.size();
}

CacheResult EdgeCacheService::query(std::span<const float> features,
                                    SimTime now, float threshold_scale) {
  ApproxCache& shard = *shards_[shard_of(features)];
  const CacheResult res = shard.lookup({.features = features,
                                        .now = now,
                                        .threshold_scale = threshold_scale});
  std::lock_guard<std::mutex> lock{counters_mu_};
  counters_.inc("lookup");
  if (metrics_ != nullptr) {
    metrics_->record(lookup_us_hist_, static_cast<double>(res.latency));
  }
  return res;
}

bool EdgeCacheService::feed(const FeatureVec& features, Label label,
                            float confidence, SimTime now,
                            std::uint32_t source_device) {
  {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("feed");
  }
  ApproxCache& shard = *shards_[shard_of(features)];
  // Estimated serving-error increase of admitting (features -> label),
  // derived from the shard's own current answer for this key:
  //   * vote agrees      -> the neighbourhood already serves this label;
  //                         the residual risk is its heterogeneity.
  //   * vote conflicts   -> admitting splits a neighbourhood that today
  //                         answers confidently: cost = its homogeneity.
  //   * abstains, but a neighbour is in range -> contested region, coin-
  //                         flip risk (0.5).
  //   * empty neighbourhood -> free: nothing served here yet.
  float error = 0.0f;
  const auto vote = shard.peek_vote({.features = features, .now = now});
  if (vote.has_value()) {
    error = vote->label == label ? 1.0f - vote->homogeneity
                                 : vote->homogeneity;
  } else {
    const auto nearest = shard.nearest_distance(features);
    if (nearest.has_value() &&
        *nearest <= params_.cache.hknn.max_distance) {
      error = 0.5f;
    }
  }
  if (error > params_.error_budget) {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("reject_budget");
    return false;
  }
  shard.insert(features, label, confidence, now, EntryOrigin::kPeer,
               /*hop_count=*/1, source_device);
  std::lock_guard<std::mutex> lock{counters_mu_};
  counters_.inc("admit");
  return true;
}

std::size_t EdgeCacheService::sweep(SimTime now) {
  std::size_t removed = 0;
  std::vector<VecId> expired;
  for (const auto& shard : shards_) {
    expired.clear();
    shard->for_each([&](const CacheEntry& entry) {
      if (now >= entry.insert_time + params_.ttl) expired.push_back(entry.id);
    });
    // for_each holds the shared lock; mutate only after it returns. Sorted
    // ids keep the removal order independent of hash-map iteration.
    std::sort(expired.begin(), expired.end());
    for (const VecId id : expired) {
      if (shard->remove(id)) ++removed;
    }
  }
  std::lock_guard<std::mutex> lock{counters_mu_};
  counters_.inc("swept", removed);
  return removed;
}

void EdgeCacheService::clear() {
  for (const auto& shard : shards_) shard->clear();
}

std::size_t EdgeCacheService::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

void EdgeCacheService::attach_network(EventSimulator& sim,
                                      WirelessMedium& medium, int cell) {
  sim_ = &sim;
  medium_ = &medium;
  self_ = medium.add_node(
      [this](NodeId from, const std::vector<std::uint8_t>& payload) {
        on_message(from, payload);
      },
      cell);
}

void EdgeCacheService::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  if (sim_ != nullptr && params_.sweep_interval > 0) {
    sim_->schedule_after(params_.sweep_interval,
                         [this, g = generation_] { sweep_tick(g); });
  }
}

void EdgeCacheService::stop() {
  if (!running_) return;
  running_ = false;
  // A crash loses the in-memory shards; a restarted service starts cold
  // and is re-warmed by device feeds.
  clear();
}

void EdgeCacheService::sweep_tick(std::uint64_t generation) {
  // Generation stamp: a tick scheduled before stop() must not revive (or
  // duplicate) the chain after a restart re-arms its own tick.
  if (!running_ || generation != generation_) return;
  sweep(sim_->now());
  sim_->schedule_after(params_.sweep_interval,
                       [this, generation] { sweep_tick(generation); });
}

void EdgeCacheService::on_message(NodeId from,
                                  const std::vector<std::uint8_t>& payload) {
  if (!running_) return;  // a crashed service's radio hears nothing
  try {
    switch (peek_type(payload)) {
      case MsgType::kEdgeLookupRequest:
        handle_lookup(decode_edge_lookup_request(payload));
        break;
      case MsgType::kEdgeFeed:
        handle_feed(decode_edge_feed(payload));
        break;
      default:
        // Shared-medium chatter (P2P beacons, adverts) reaching this node's
        // radio — not ours, not an error.
        break;
    }
  } catch (const CodecError&) {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("bad_message");
  }
  (void)from;
}

void EdgeCacheService::handle_lookup(const EdgeLookupRequestMsg& msg) {
  EdgeLookupResponseMsg resp;
  resp.request_id = msg.request_id;
  resp.sender = self_;
  SimDuration latency = 0;
  if (msg.query.size() == dim_) {
    const CacheResult res = query(msg.query, sim_->now(), msg.threshold_scale);
    latency = res.latency;
    if (res.vote.has_value()) {
      resp.has_vote = true;
      resp.label = res.vote->label;
      resp.homogeneity = res.vote->homogeneity;
      resp.nearest_distance = res.vote->nearest_distance;
      resp.voters = static_cast<std::uint32_t>(res.vote->voters);
    }
  } else {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("bad_message");
  }
  // The reply leaves after the shard lookup's simulated latency.
  sim_->schedule_after(latency, [this, resp, to = msg.sender] {
    if (running_) medium_->unicast(self_, to, encode(resp));
  });
}

void EdgeCacheService::handle_feed(const EdgeFeedMsg& msg) {
  const WireEntry& entry = msg.entry;
  if (entry.feature.size() != dim_ || entry.label == kNoLabel) {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("bad_message");
    return;
  }
  // Corruption can decode into garbage floats; NaN keys would poison every
  // distance comparison in the shard. Reject non-finite values up front.
  for (const float x : entry.feature) {
    if (!std::isfinite(x)) {
      std::lock_guard<std::mutex> lock{counters_mu_};
      counters_.inc("bad_message");
      return;
    }
  }
  if (!std::isfinite(entry.confidence)) {
    std::lock_guard<std::mutex> lock{counters_mu_};
    counters_.inc("bad_message");
    return;
  }
  feed(entry.feature, entry.label, entry.confidence, sim_->now(),
       entry.source_device);
}

void EdgeCacheService::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  lookup_us_hist_ =
      metrics.histogram("edge/srv_lookup_us", latency_us_bounds());
  // Pre-register the folded counters as zeros so the export schema is
  // stable whether or not any edge traffic happened.
  metrics.counter("edge/srv_lookup");
  metrics.counter("edge/srv_feed");
  metrics.counter("edge/srv_admit");
  metrics.counter("edge/srv_reject_budget");
  metrics.counter("edge/srv_swept");
}

}  // namespace apx

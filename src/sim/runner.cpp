#include "src/sim/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/core/pipeline.hpp"
#include "src/dnn/centroid.hpp"
#include "src/dnn/oracle.hpp"
#include "src/edge/edge_cache.hpp"
#include "src/edge/edge_client.hpp"
#include "src/imu/trace.hpp"
#include "src/net/event_sim.hpp"
#include "src/util/thread_pool.hpp"

namespace apx {

ScenarioConfig default_scenario() {
  ScenarioConfig cfg;
  cfg.scene.num_classes = 64;
  cfg.scene.image_size = 32;
  cfg.num_devices = 4;
  cfg.duration = 60 * kSecond;
  cfg.pipeline = make_full_system_config();
  return cfg;
}

std::unique_ptr<FeatureExtractor> make_extractor(ExtractorKind kind) {
  switch (kind) {
    case ExtractorKind::kDownsample: return make_downsample_extractor();
    case ExtractorKind::kHistogram: return make_histogram_extractor();
    case ExtractorKind::kHog: return make_hog_extractor();
    case ExtractorKind::kCnn: return make_cnn_extractor();
  }
  throw std::invalid_argument("make_extractor: unknown kind");
}

std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru: return make_lru_policy();
    case EvictionKind::kLfu: return make_lfu_policy();
    case EvictionKind::kUtility: return make_utility_policy();
  }
  throw std::invalid_argument("make_eviction: unknown kind");
}

namespace {

/// Everything one simulated device owns.
struct Device {
  std::unique_ptr<MobilityModel> mobility;
  std::unique_ptr<VideoStreamGenerator> stream;
  std::unique_ptr<ImuTraceGenerator> imu;
  std::unique_ptr<MotionEstimator> motion;
  std::unique_ptr<RecognitionModel> model;
  std::unique_ptr<ApproxCache> cache;
  std::unique_ptr<ExactCache> exact_cache;
  std::unique_ptr<PeerCacheService> peers;
  std::unique_ptr<EdgeClient> edge;
  std::unique_ptr<ReusePipeline> pipeline;
  SimTime last_imu_pull = 0;
  ExperimentMetrics metrics;
  /// Private registry — shard-local recording needs no synchronization;
  /// the runner merges these in global device order after the run.
  MetricsRegistry registry;
  Rng churn_rng{0};
};

}  // namespace

struct ExperimentRunner::Impl {
  /// One independently runnable event world. Sequential mode uses a single
  /// shard holding every device; parallel mode gives each device its own
  /// (devices that cannot interact share no mutable state, so the shards
  /// can execute on any thread in any order with identical results).
  struct Shard {
    EventSimulator sim;
    std::unique_ptr<WirelessMedium> medium;
    std::unique_ptr<FaultInjector> faults;
    std::vector<std::size_t> device_indices;
  };

  ScenarioConfig config;
  std::unique_ptr<SceneGenerator> scenes;
  std::unique_ptr<ZipfSampler> popularity;
  std::unique_ptr<FeatureExtractor> extractor;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::unique_ptr<Device>> devices;   // global device order
  std::vector<Shard*> shard_of;                   // per device
  std::unique_ptr<EdgeCacheService> edge_service;
  /// The edge service's private registry (histograms recorded live); merged
  /// into the pooled registry after the devices, in run().
  MetricsRegistry edge_registry;
  std::vector<ExperimentMetrics> device_metrics;
  MetricsRegistry pooled_registry;
  TraceRecorder trace;
  bool parallel = false;
  bool ran = false;

  explicit Impl(const ScenarioConfig& scenario) : config(scenario) {
    if (config.num_devices < 1) {
      throw std::invalid_argument("ScenarioConfig: num_devices < 1");
    }
    // A declarative ladder spec is authoritative: sync the enable_* flags
    // to it up front so provisioning (cache, peers, parallel gating) sees
    // the same composition the pipelines will run.
    if (!config.pipeline.ladder.empty()) {
      apply_ladder(config.pipeline, LadderSpec::parse(config.pipeline.ladder));
    }
    // Flag-driven configs (presets with enable_quantized_scan toggled)
    // must reach the cache config the caches are built from below;
    // apply_ladder already did this for spec-driven configs.
    config.pipeline.cache.alsh.lsh.quantize.enabled =
        config.pipeline.enable_quantized_scan;
    // Devices may only run concurrently when nothing couples them: no P2P
    // traffic, no edge tier, and no shared frame trace. Everything else
    // they touch (scenes, popularity, extractor) is immutable after
    // construction.
    parallel = config.num_threads > 1 && config.num_devices > 1 &&
               !config.pipeline.enable_p2p && !config.pipeline.enable_edge &&
               !config.record_trace;

    Rng master{config.seed};
    scenes = std::make_unique<SceneGenerator>(config.scene);
    popularity = std::make_unique<ZipfSampler>(
        static_cast<std::size_t>(config.scene.num_classes), config.zipf_s);
    // The medium seed is drawn before any device fork in both modes, so
    // per-device RNG streams are identical sequential vs parallel.
    const std::uint64_t medium_seed = master.next_u64();
    const std::size_t shard_count =
        parallel ? static_cast<std::size_t>(config.num_devices) : 1;
    shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->medium = std::make_unique<WirelessMedium>(
          shard->sim, config.medium, medium_seed);
      if (config.faults.any()) {
        // Derived arithmetically from the medium seed (no extra master
        // draw), so enabling faults never shifts the per-device RNG
        // streams of the fault-free portion of a run. Shards are seeded
        // identically — their worlds cannot interact, so identical
        // injector streams keep sequential and parallel modes matching.
        shard->faults = std::make_unique<FaultInjector>(
            config.faults, medium_seed ^ 0xfa017c0de5eedULL);
        shard->faults->plan_crashes(
            static_cast<std::size_t>(config.num_devices), config.duration);
        shard->medium->attach_faults(shard->faults.get());
      }
      shards.push_back(std::move(shard));
    }
    extractor = make_extractor(config.extractor);
    if (config.auto_threshold) {
      config.pipeline.cache.hknn.max_distance =
          extractor->recommended_max_distance();
    }

    if (config.pipeline.enable_edge) {
      // One region edge service, living on the shared cell. Its per-shard
      // index/vote configuration tracks the device caches' (including the
      // auto-threshold calibration above) so a vote means the same thing at
      // every tier; capacity comes from EdgeParams, not the device config.
      EdgeParams edge_params = config.pipeline.edge;
      edge_params.cache = config.pipeline.cache;
      edge_service =
          std::make_unique<EdgeCacheService>(extractor->dim(), edge_params);
      edge_service->attach_network(shards[0]->sim, *shards[0]->medium,
                                   /*cell=*/0);
      edge_service->attach_metrics(edge_registry);
    }

    for (int d = 0; d < config.num_devices; ++d) {
      Shard& shard = *shards[parallel ? static_cast<std::size_t>(d) : 0];
      auto device = std::make_unique<Device>();
      Rng rng = master.fork();
      device->mobility = std::make_unique<MobilityModel>(MobilityModel::random(
          rng, config.duration + kSecond, config.mean_segment, config.p_stationary,
          config.p_minor, config.p_major));
      device->stream = std::make_unique<VideoStreamGenerator>(
          *scenes, *device->mobility, *popularity, config.video, rng.next_u64());
      device->imu = std::make_unique<ImuTraceGenerator>(
          *device->mobility, config.imu_rate_hz, rng.next_u64());
      device->motion =
          std::make_unique<MotionEstimator>(config.pipeline.motion);

      const int oracle_groups =
          config.scene.class_confusion > 0.0f ? config.scene.group_size : 1;
      if (config.use_real_classifier) {
        device->model = std::make_unique<CentroidClassifier>(
            *scenes, /*samples_per_class=*/8, config.model, config.seed + 1000);
      } else {
        device->model = make_oracle_model(config.model, config.scene.num_classes,
                                          oracle_groups);
      }

      if (config.pipeline.enable_local_cache) {
        device->cache = std::make_unique<ApproxCache>(
            extractor->dim(), config.pipeline.cache,
            make_eviction(config.eviction));
      } else if (config.pipeline.enable_exact_cache) {
        device->exact_cache =
            std::make_unique<ExactCache>(config.pipeline.cache.capacity);
      }

      const int cell = config.co_located ? 0 : d;
      if (config.pipeline.enable_p2p && device->cache != nullptr) {
        device->peers = std::make_unique<PeerCacheService>(
            shard.sim, *shard.medium, *device->cache, config.peer, cell);
      }
      if (config.pipeline.enable_edge) {
        device->edge = std::make_unique<EdgeClient>(
            shard.sim, *shard.medium, edge_service->id(),
            edge_service->params(), cell);
      }

      device->pipeline = std::make_unique<ReusePipeline>(
          shard.sim, config.pipeline, *extractor, *device->model,
          device->cache.get(), device->exact_cache.get(), device->peers.get(),
          device->edge.get(), rng.next_u64());
      if (device->cache) device->cache->attach_metrics(device->registry);
      if (device->peers) device->peers->attach_metrics(device->registry);
      if (device->edge) device->edge->attach_metrics(device->registry);
      device->pipeline->attach_metrics(device->registry);
      device->churn_rng = rng.fork();
      shard.device_indices.push_back(devices.size());
      shard_of.push_back(&shard);
      devices.push_back(std::move(device));
    }
  }

  /// Radio-range churn: toggles the device between the shared cell (0) and
  /// a private cell. `present` is the state being entered now.
  void schedule_churn(std::size_t index, bool present) {
    Device& device = *devices[index];
    if (!device.peers) return;
    Shard& shard = *shard_of[index];
    const double f = std::clamp(config.churn_away_fraction, 0.01, 0.99);
    const double mean = static_cast<double>(config.churn_period) *
                        (present ? (1.0 - f) : f);
    const auto stay = static_cast<SimDuration>(
        device.churn_rng.exponential(1.0 / std::max(mean, 1.0)));
    shard.sim.schedule_after(stay, [this, &shard, index, present] {
      Device& d = *devices[index];
      const NodeId node = d.peers->id();
      shard.medium->set_cell(node,
                             present ? 1000 + static_cast<int>(index) : 0);
      schedule_churn(index, !present);
    });
  }

  /// Simulated process crash: the device's cache is wiped, its P2P endpoint
  /// goes silent (pending lookups fail into the local/DNN fallback) and its
  /// radio leaves the air. The pipeline itself keeps running — the app
  /// restarts cold, exactly the FoggyCache-style churn regime.
  void crash_device(std::size_t index) {
    Device& device = *devices[index];
    Shard& shard = *shard_of[index];
    shard.faults->note_crash();
    if (device.cache) device.cache->clear();
    if (device.peers) {
      device.peers->stop();
      shard.medium->set_cell(device.peers->id(),
                             2000 + static_cast<int>(index));
    }
    if (device.edge) {
      device.edge->stop();
      shard.medium->set_cell(device.edge->id(),
                             3000 + static_cast<int>(index));
    }
  }

  /// Restart after a crash: back on the air (rejoining the shared cell —
  /// any in-progress churn excursion is forgotten), beaconing resumes, and
  /// neighbours' first-contact hot-set pushes warm the wiped cache.
  void restart_device(std::size_t index) {
    Device& device = *devices[index];
    Shard& shard = *shard_of[index];
    shard.faults->note_restart();
    if (device.peers) {
      shard.medium->set_cell(device.peers->id(),
                             config.co_located ? 0 : static_cast<int>(index));
      device.peers->start();
    }
    if (device.edge) {
      shard.medium->set_cell(device.edge->id(),
                             config.co_located ? 0 : static_cast<int>(index));
      device.edge->start();
    }
  }

  void schedule_device_frames(std::size_t index) {
    Device& device = *devices[index];
    const SimTime frame_time = device.stream->next_frame_time();
    if (frame_time >= config.duration) return;
    shard_of[index]->sim.schedule_at(frame_time,
                                     [this, index] { device_tick(index); });
  }

  void device_tick(std::size_t index) {
    Device& device = *devices[index];
    // Sensor hub: feed the motion estimator with all IMU samples since the
    // previous frame, then classify.
    const SimTime now = shard_of[index]->sim.now();
    device.motion->add_all(device.imu->samples_between(device.last_imu_pull,
                                                       now));
    device.last_imu_pull = now;

    const Frame frame = device.stream->next();
    const MotionState motion = device.motion->estimate();
    const bool accepted = device.pipeline->process(
        frame, motion,
        [this, &device, index](const RecognitionResult& result) {
          device.metrics.record(result);
          if (config.record_trace) {
            trace.record(static_cast<std::uint32_t>(index), result);
          }
        });
    if (!accepted) device.metrics.record_dropped();
    schedule_device_frames(index);
  }

  /// Starts and drains one shard's event world. In parallel mode this runs
  /// on a pool thread and touches only shard-local and device-local state.
  void run_shard(Shard& shard) {
    for (const std::size_t d : shard.device_indices) {
      if (devices[d]->peers) devices[d]->peers->start();
      if (devices[d]->edge) devices[d]->edge->start();
      if (config.churn_period > 0 && config.co_located) {
        schedule_churn(d, /*present=*/true);
      }
      schedule_device_frames(d);
    }
    if (shard.faults != nullptr) {
      // The schedule was precomputed at construction (idempotent call), so
      // the timeline is independent of event execution order.
      for (const CrashEvent& ev : shard.faults->plan_crashes(
               static_cast<std::size_t>(config.num_devices),
               config.duration)) {
        if (shard_of[ev.device] != &shard) continue;
        shard.sim.schedule_at(ev.down_at,
                              [this, d = ev.device] { crash_device(d); });
        shard.sim.schedule_at(ev.up_at,
                              [this, d = ev.device] { restart_device(d); });
      }
    }
    shard.sim.run_until(config.duration + 5 * kSecond);  // drain in-flight
  }

  ExperimentMetrics run() {
    if (ran) throw std::logic_error("ExperimentRunner::run: already ran");
    ran = true;
    if (edge_service) {
      edge_service->start();
      // Edge chaos hooks: a crash stops the service and wipes every shard;
      // a later restart comes back empty. The edge tier forces sequential
      // mode (it couples devices), so shard 0 holds the whole world.
      if (config.edge_down_at > 0) {
        shards[0]->sim.schedule_at(config.edge_down_at,
                                   [this] { edge_service->stop(); });
        if (config.edge_up_at > config.edge_down_at) {
          shards[0]->sim.schedule_at(config.edge_up_at,
                                     [this] { edge_service->start(); });
        }
      }
    }
    if (parallel && shards.size() > 1) {
      const std::size_t threads = std::min<std::size_t>(
          static_cast<std::size_t>(config.num_threads), shards.size());
      ThreadPool pool(threads - 1);  // the caller participates
      pool.parallel_for(0, shards.size(), /*grain=*/1,
                        [this](std::size_t lo, std::size_t hi) {
                          for (std::size_t s = lo; s < hi; ++s) {
                            run_shard(*shards[s]);
                          }
                        });
    } else {
      run_shard(*shards[0]);
    }

    // Deterministic merge: always in global device order, regardless of
    // which thread finished which shard first.
    ExperimentMetrics pooled;
    device_metrics.clear();
    for (std::size_t d = 0; d < devices.size(); ++d) {
      Device& device = *devices[d];
      if (device.peers) {
        device.metrics.add_radio_energy_mj(
            shard_of[d]->medium->energy_mj(device.peers->id()));
      }
      // Fold the legacy string-keyed counters into the device registry
      // (namespaced) so one export carries everything. Histograms recorded
      // live during the run; these counters are copied once, here, to avoid
      // double counting.
      if (device.cache) {
        for (const auto& [key, count] : device.cache->counters().items()) {
          device.registry.inc(device.registry.counter("cache/" + key), count);
        }
      }
      if (device.peers) {
        for (const auto& [key, count] : device.peers->counters().items()) {
          device.registry.inc(device.registry.counter("p2p/" + key), count);
        }
      }
      if (device.edge) {
        device.metrics.add_radio_energy_mj(
            shard_of[d]->medium->energy_mj(device.edge->id()));
        for (const auto& [key, count] : device.edge->counters().items()) {
          device.registry.inc(device.registry.counter("edge/" + key), count);
        }
      }
      // Pipeline counters (sources, dropped) live directly in the device
      // registry since attach_metrics — nothing to copy.
      pooled_registry.merge(device.registry);
      pooled.merge(device.metrics);
      device_metrics.push_back(device.metrics);
    }
    if (edge_service) {
      for (const auto& [key, count] : edge_service->counters().items()) {
        edge_registry.inc(edge_registry.counter("edge/srv_" + key), count);
      }
      pooled_registry.merge(edge_registry);
    }
    // Fault counters are shard-level, not per-device. Register every key
    // unconditionally so the export schema is identical for chaos and
    // fault-free runs (zeros in the latter).
    for (const std::string& key : FaultInjector::counter_keys()) {
      const auto id = pooled_registry.counter("faults/" + key);
      for (const auto& shard : shards) {
        if (shard->faults != nullptr) {
          pooled_registry.inc(id, shard->faults->counters().get(key));
        }
      }
    }
    return pooled;
  }
};

ExperimentRunner::ExperimentRunner(const ScenarioConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

ExperimentRunner::~ExperimentRunner() = default;

ExperimentMetrics ExperimentRunner::run() { return impl_->run(); }

const std::vector<ExperimentMetrics>& ExperimentRunner::device_metrics()
    const noexcept {
  return impl_->device_metrics;
}

Counter ExperimentRunner::cache_counters() const {
  Counter pooled;
  for (const auto& device : impl_->devices) {
    if (device->cache) {
      for (const auto& [key, count] : device->cache->counters().items()) {
        pooled.inc(key, count);
      }
    }
  }
  return pooled;
}

Counter ExperimentRunner::p2p_counters() const {
  Counter pooled;
  for (const auto& device : impl_->devices) {
    if (device->peers) {
      for (const auto& [key, count] : device->peers->counters().items()) {
        pooled.inc(key, count);
      }
    }
  }
  return pooled;
}

std::size_t ExperimentRunner::edge_cache_size() const {
  return impl_->edge_service ? impl_->edge_service->size() : 0;
}

const MetricsRegistry& ExperimentRunner::metrics() const noexcept {
  return impl_->pooled_registry;
}

const TraceRecorder& ExperimentRunner::trace() const { return impl_->trace; }

ExperimentMetrics run_scenario(const ScenarioConfig& config) {
  ExperimentRunner runner{config};
  return runner.run();
}

}  // namespace apx

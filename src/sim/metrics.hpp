#pragma once
// Metrics collected by experiment runs: the quantities every reproduced
// table/figure reports (latency distribution, accuracy, hit-source
// breakdown, energy).

#include "src/core/result.hpp"
#include "src/util/stats.hpp"

namespace apx {

/// Aggregate over one experiment (all devices pooled).
class ExperimentMetrics {
 public:
  /// Records one completed frame.
  void record(const RecognitionResult& result);

  /// Records a frame dropped because the pipeline was busy.
  void record_dropped();

  /// Adds device-external energy (radio) to the total.
  void add_radio_energy_mj(double mj) { radio_energy_mj_ += mj; }

  std::size_t frames() const noexcept { return frames_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Top-1 accuracy over processed frames.
  double accuracy() const noexcept;

  /// Fraction of frames answered without running the DNN.
  double reuse_ratio() const noexcept;

  /// Fraction of frames answered by `source`.
  double source_fraction(ResultSource source) const noexcept;

  /// Top-1 accuracy restricted to frames answered by `source` (0 when that
  /// source answered nothing). Attributes accuracy loss to reuse paths.
  double accuracy_by_source(ResultSource source) const noexcept;

  double mean_latency_ms() const noexcept;
  double latency_quantile_ms(double q) const;

  /// Mean per-frame on-device compute energy (mJ).
  double mean_compute_energy_mj() const noexcept;

  /// Total radio energy across devices (mJ).
  double radio_energy_mj() const noexcept { return radio_energy_mj_; }

  /// Mean total (compute + amortized radio) energy per frame (mJ).
  double mean_total_energy_mj() const noexcept;

  /// Latency reduction vs a baseline mean, in percent.
  double reduction_vs_percent(double baseline_mean_ms) const noexcept;

  const Samples& latencies_ms() const noexcept { return latency_ms_; }
  const Counter& sources() const noexcept { return sources_; }

  /// Pools another run's metrics into this one (multi-seed aggregation).
  void merge(const ExperimentMetrics& other);

 private:
  Samples latency_ms_;
  Counter sources_;
  Counter correct_by_source_;
  std::size_t frames_ = 0;
  std::size_t correct_ = 0;
  std::size_t dropped_ = 0;
  double compute_energy_mj_ = 0.0;
  double radio_energy_mj_ = 0.0;
};

}  // namespace apx

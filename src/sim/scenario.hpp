#pragma once
// Scenario description: everything an experiment needs, in one value type.
// A scenario is a pure function of this config plus its seed — re-running
// one is bit-reproducible.

#include "src/core/config.hpp"
#include "src/dnn/zoo.hpp"
#include "src/image/scene.hpp"
#include "src/net/faults.hpp"
#include "src/video/stream.hpp"

namespace apx {

/// Which feature extractor devices run.
enum class ExtractorKind { kDownsample, kHistogram, kHog, kCnn };

/// Which eviction policy caches use.
enum class EvictionKind { kLru, kLfu, kUtility };

/// Full multi-device experiment description.
struct ScenarioConfig {
  // --- world ---
  SceneGenerator::Config scene;   ///< classes, size, confusion
  double zipf_s = 0.8;            ///< object popularity skew
  std::uint64_t seed = 1;

  // --- fleet ---
  int num_devices = 1;
  SimDuration duration = 60 * kSecond;
  /// Worker threads for the simulation runner. When devices cannot interact
  /// (P2P disabled, no edge tier, no trace recording) each device runs in
  /// its own event simulation, spread across this many threads; per-device
  /// RNG streams are forked identically to the sequential path and metrics
  /// merge in device order, so results are bit-identical to num_threads = 1.
  /// Scenarios with cross-device interaction fall back to sequential.
  int num_threads = 1;
  /// All devices share one proximity cell when true (co-located crowd);
  /// otherwise each device sits alone and P2P finds no peers.
  bool co_located = true;

  // --- per-device sensing ---
  VideoStreamConfig video;
  double imu_rate_hz = 100.0;
  /// Random mobility schedule shape.
  SimDuration mean_segment = 4 * kSecond;
  double p_stationary = 0.4;
  double p_minor = 0.4;
  double p_major = 0.2;

  // --- recognition stack ---
  PipelineConfig pipeline;
  ModelProfile model = mobilenet_v2_profile();
  /// Use the real centroid classifier instead of the accuracy oracle
  /// (slower; for small runs and correctness checks).
  bool use_real_classifier = false;
  ExtractorKind extractor = ExtractorKind::kCnn;
  EvictionKind eviction = EvictionKind::kUtility;
  /// Record every per-frame outcome to an in-memory trace readable via
  /// ExperimentRunner::trace() (see sim/trace.hpp).
  bool record_trace = false;
  /// Override pipeline.cache.hknn.max_distance with the extractor's
  /// geometry-calibrated recommendation (see
  /// FeatureExtractor::recommended_max_distance). Set false when sweeping
  /// the threshold explicitly.
  bool auto_threshold = true;

  // --- network ---
  MediumParams medium;
  PeerCacheParams peer;
  /// Deterministic fault injection (burst loss, delay spikes, partitions,
  /// crash/restart, corruption). Default-constructed = no faults; the
  /// injector is seeded from the scenario seed, so chaos runs stay
  /// bit-reproducible. See net/faults.hpp and `apxsim --faults`.
  FaultPlan faults;

  // --- infrastructure ---
  /// Edge-tier chaos hooks (only meaningful when the pipeline ladder has an
  /// edge rung). When edge_down_at > 0 the region's EdgeCacheService
  /// crashes at that time — it stops serving and wipes every shard. When
  /// edge_up_at > edge_down_at it restarts empty and devices re-warm it
  /// through their normal DNN-validated feeds.
  SimTime edge_down_at = 0;
  SimTime edge_up_at = 0;

  // --- churn ---
  /// When > 0, each device independently alternates between the shared
  /// cell and an isolated cell (people walking in and out of radio range).
  /// Stay durations are exponential with means churn_period * (1 - f) in
  /// range and churn_period * f out of range, where f = churn_away_fraction.
  /// Only meaningful with co_located = true and P2P enabled.
  SimDuration churn_period = 0;
  double churn_away_fraction = 0.3;
};

/// Baseline scenario used across the evaluation: a co-located group of
/// devices watching a shared 64-class world with Zipf-popular objects.
ScenarioConfig default_scenario();

}  // namespace apx

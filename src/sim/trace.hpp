#pragma once
// Experiment traces: a compact binary log of every per-frame recognition
// outcome in a run. Traces decouple measurement from analysis — a sweep
// can be recorded once and re-analyzed offline (new metrics, per-device
// slicing, debugging a regression) without re-simulating, and traces are
// byte-comparable across runs for reproducibility checks.

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/result.hpp"
#include "src/sim/metrics.hpp"

namespace apx {

/// One trace record: which device produced which per-frame outcome.
struct TraceEvent {
  std::uint32_t device = 0;
  RecognitionResult result;
};

/// Accumulates events and serializes them (versioned, length-prefixed).
class TraceRecorder {
 public:
  void record(std::uint32_t device, const RecognitionResult& result);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Serializes all events (deterministic byte stream).
  std::vector<std::uint8_t> serialize() const;

  /// Parses a serialized trace; throws CodecError on malformed input.
  static std::vector<TraceEvent> parse(std::span<const std::uint8_t> bytes);

 private:
  std::vector<TraceEvent> events_;
};

/// Re-derives pooled metrics from a trace (equals the live metrics of the
/// run that produced it, minus drop counts, which traces do not carry).
ExperimentMetrics analyze_trace(const std::vector<TraceEvent>& events);

/// Metrics for one device only.
ExperimentMetrics analyze_trace_device(const std::vector<TraceEvent>& events,
                                       std::uint32_t device);

}  // namespace apx

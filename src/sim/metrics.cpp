#include "src/sim/metrics.hpp"

namespace apx {

void ExperimentMetrics::record(const RecognitionResult& result) {
  ++frames_;
  if (result.correct) {
    ++correct_;
    correct_by_source_.inc(to_string(result.source));
  }
  latency_ms_.add(to_ms(result.latency));
  sources_.inc(to_string(result.source));
  compute_energy_mj_ += result.compute_energy_mj;
}

double ExperimentMetrics::accuracy_by_source(
    ResultSource source) const noexcept {
  const std::uint64_t answered = sources_.get(to_string(source));
  if (answered == 0) return 0.0;
  return static_cast<double>(correct_by_source_.get(to_string(source))) /
         static_cast<double>(answered);
}

void ExperimentMetrics::record_dropped() { ++dropped_; }

double ExperimentMetrics::accuracy() const noexcept {
  if (frames_ == 0) return 0.0;
  return static_cast<double>(correct_) / static_cast<double>(frames_);
}

double ExperimentMetrics::reuse_ratio() const noexcept {
  if (frames_ == 0) return 0.0;
  const auto inferences =
      sources_.get(to_string(ResultSource::kFullInference));
  return 1.0 - static_cast<double>(inferences) / static_cast<double>(frames_);
}

double ExperimentMetrics::source_fraction(ResultSource source) const noexcept {
  if (frames_ == 0) return 0.0;
  return static_cast<double>(sources_.get(to_string(source))) /
         static_cast<double>(frames_);
}

double ExperimentMetrics::mean_latency_ms() const noexcept {
  return latency_ms_.mean();
}

double ExperimentMetrics::latency_quantile_ms(double q) const {
  return latency_ms_.quantile(q);
}

double ExperimentMetrics::mean_compute_energy_mj() const noexcept {
  if (frames_ == 0) return 0.0;
  return compute_energy_mj_ / static_cast<double>(frames_);
}

double ExperimentMetrics::mean_total_energy_mj() const noexcept {
  if (frames_ == 0) return 0.0;
  return (compute_energy_mj_ + radio_energy_mj_) /
         static_cast<double>(frames_);
}

double ExperimentMetrics::reduction_vs_percent(
    double baseline_mean_ms) const noexcept {
  if (baseline_mean_ms <= 0.0) return 0.0;
  return 100.0 * (1.0 - mean_latency_ms() / baseline_mean_ms);
}

void ExperimentMetrics::merge(const ExperimentMetrics& other) {
  for (double v : other.latency_ms_.sorted()) latency_ms_.add(v);
  for (const auto& [key, count] : other.sources_.items()) {
    sources_.inc(key, count);
  }
  for (const auto& [key, count] : other.correct_by_source_.items()) {
    correct_by_source_.inc(key, count);
  }
  frames_ += other.frames_;
  correct_ += other.correct_;
  dropped_ += other.dropped_;
  compute_energy_mj_ += other.compute_energy_mj_;
  radio_energy_mj_ += other.radio_energy_mj_;
}

}  // namespace apx

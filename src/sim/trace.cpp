#include "src/sim/trace.hpp"

#include "src/util/serialize.hpp"

namespace apx {
namespace {

constexpr std::uint32_t kMagic = 0x41505452;  // "APTR"
constexpr std::uint8_t kVersion = 1;

}  // namespace

void TraceRecorder::record(std::uint32_t device,
                           const RecognitionResult& result) {
  events_.push_back(TraceEvent{device, result});
}

std::vector<std::uint8_t> TraceRecorder::serialize() const {
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.varint(events_.size());
  for (const TraceEvent& event : events_) {
    w.u32(event.device);
    w.i64(event.result.frame_time);
    w.i64(event.result.completion_time);
    w.i64(event.result.label);
    w.i64(event.result.true_label);
    w.u8(event.result.correct ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(event.result.source));
    w.f64(event.result.compute_energy_mj);
  }
  return w.take();
}

std::vector<TraceEvent> TraceRecorder::parse(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.u32() != kMagic) throw CodecError("trace: bad magic");
  if (r.u8() != kVersion) throw CodecError("trace: unsupported version");
  const std::uint64_t count = r.varint();
  // Each event is > 1 byte on the wire; a larger count is malformed (and
  // must not reach reserve(), which would throw bad_alloc on hostile input).
  if (count > r.remaining()) throw CodecError("trace: count exceeds payload");
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.device = r.u32();
    event.result.frame_time = r.i64();
    event.result.completion_time = r.i64();
    event.result.latency =
        event.result.completion_time - event.result.frame_time;
    event.result.label = static_cast<Label>(r.i64());
    event.result.true_label = static_cast<Label>(r.i64());
    event.result.correct = r.u8() != 0;
    const std::uint8_t source = r.u8();
    if (source > static_cast<std::uint8_t>(ResultSource::kWarmCacheHit)) {
      throw CodecError("trace: bad source");
    }
    event.result.source = static_cast<ResultSource>(source);
    event.result.compute_energy_mj = r.f64();
    events.push_back(event);
  }
  if (!r.done()) throw CodecError("trace: trailing bytes");
  return events;
}

ExperimentMetrics analyze_trace(const std::vector<TraceEvent>& events) {
  ExperimentMetrics metrics;
  for (const TraceEvent& event : events) metrics.record(event.result);
  return metrics;
}

ExperimentMetrics analyze_trace_device(const std::vector<TraceEvent>& events,
                                       std::uint32_t device) {
  ExperimentMetrics metrics;
  for (const TraceEvent& event : events) {
    if (event.device == device) metrics.record(event.result);
  }
  return metrics;
}

}  // namespace apx

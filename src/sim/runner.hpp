#pragma once
// Experiment runner: assembles the full per-device stack (camera stream,
// IMU, motion estimator, caches, peer service, pipeline) for every device
// in a scenario, drives the event simulation for the configured duration,
// and returns pooled metrics.

#include <memory>

#include "src/features/extractor.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/scenario.hpp"
#include "src/sim/trace.hpp"

namespace apx {

/// Runs one scenario to completion.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ScenarioConfig& config);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Executes the scenario and returns pooled metrics. Callable once.
  ExperimentMetrics run();

  /// Per-device metrics, valid after run().
  const std::vector<ExperimentMetrics>& device_metrics() const noexcept;

  /// Pooled cache counters across devices ("hit"/"miss"/"insert"/"evict"),
  /// valid after run().
  Counter cache_counters() const;

  /// Pooled P2P counters across devices, valid after run().
  Counter p2p_counters() const;

  /// Entries held by the region edge service across its shards (0 when the
  /// ladder has no edge rung).
  std::size_t edge_cache_size() const;

  /// Pooled observability registry (per-rung latency histograms, hit/miss
  /// and source counters, cache/ann/p2p instruments), valid after run().
  /// Devices record into private registries during the run; those are
  /// merged here in global device order, so the export is bit-identical
  /// for any num_threads.
  const MetricsRegistry& metrics() const noexcept;

  /// Recorded per-frame trace (empty unless ScenarioConfig::record_trace).
  const TraceRecorder& trace() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: build, run, return pooled metrics.
ExperimentMetrics run_scenario(const ScenarioConfig& config);

/// Builds the scenario's feature extractor (the runner's choice exposed for
/// benches that need extractor parity with a scenario).
std::unique_ptr<FeatureExtractor> make_extractor(ExtractorKind kind);

/// Builds an eviction policy by kind.
std::unique_ptr<EvictionPolicy> make_eviction(EvictionKind kind);

}  // namespace apx

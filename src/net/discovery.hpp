#pragma once
// Infrastructure-less peer discovery: periodic HELLO beacons over the
// broadcast medium plus a soft-state neighbour table with expiry. No
// coordinator, no registration — exactly the "infrastructure-less" regime
// the poster targets.

#include <functional>
#include <map>
#include <vector>

#include "src/net/event_sim.hpp"
#include "src/net/messages.hpp"

namespace apx {

/// Discovery timing knobs.
struct DiscoveryParams {
  SimDuration beacon_interval = 500 * kMillisecond;
  /// Neighbour forgotten if silent this long (> 2 beacon intervals, so one
  /// lost beacon does not flap the table).
  SimDuration neighbor_expiry = 1600 * kMillisecond;
};

/// Beaconing + neighbour table for one node. The owner wires `broadcast_fn`
/// to the medium and routes incoming kHello payloads to on_hello().
class DiscoveryService {
 public:
  using BroadcastFn = std::function<void(std::vector<std::uint8_t>)>;
  /// Supplies the advertised cache size for outgoing beacons.
  using CacheSizeFn = std::function<std::uint32_t()>;

  DiscoveryService(EventSimulator& sim, NodeId self,
                   const DiscoveryParams& params, BroadcastFn broadcast_fn,
                   CacheSizeFn cache_size_fn);

  /// Begins periodic beaconing (first beacon fires immediately). start()
  /// after stop() re-arms a single fresh beacon chain: stale scheduled
  /// beacons from before the stop are generation-stamped and can neither
  /// fire nor re-schedule, so stop/start cycles (peer crash/restart) never
  /// accumulate duplicate chains.
  void start();

  /// Stops future beacons (already-scheduled ones become no-ops).
  void stop() noexcept { running_ = false; }

  /// Drops every known neighbour (a crashed device loses its soft state).
  void forget_all() { peers_.clear(); }

  /// Feeds a received HELLO. Returns true when the sender was not already
  /// a live neighbour (first contact, or re-appearance after expiry) — the
  /// trigger for join-time protocol actions like hot-set pushes.
  bool on_hello(const HelloMsg& msg);

  /// Live (non-expired) neighbours, ascending id.
  std::vector<NodeId> neighbors() const;

  std::size_t neighbor_count() const { return neighbors().size(); }

  /// Advertised cache size of `peer`, or 0 if unknown/expired.
  std::uint32_t peer_cache_size(NodeId peer) const;

  const DiscoveryParams& params() const noexcept { return params_; }

 private:
  void beacon(std::uint64_t generation);

  struct PeerInfo {
    SimTime last_seen = 0;
    std::uint32_t cache_size = 0;
  };

  EventSimulator* sim_;
  NodeId self_;
  DiscoveryParams params_;
  BroadcastFn broadcast_fn_;
  CacheSizeFn cache_size_fn_;
  std::map<NodeId, PeerInfo> peers_;
  bool running_ = false;
  /// Bumped by every start(); orphans beacons scheduled before a stop().
  std::uint64_t generation_ = 0;
};

}  // namespace apx

#pragma once
// Single-threaded discrete-event simulator: the spine of every multi-device
// experiment. Events with equal timestamps fire in scheduling order (a
// monotone sequence number breaks ties), which keeps runs bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/clock.hpp"

namespace apx {

/// Minimal discrete-event loop over SimTime.
class EventSimulator {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time. Advances only while events execute.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void schedule_at(SimTime t, Handler fn);

  /// Schedules `fn` after `delay` (negative delays clamp to zero).
  void schedule_after(SimDuration delay, Handler fn);

  /// Runs the earliest pending event. Returns false when none remain.
  bool step();

  /// Runs every event with time <= `t`, then sets now to `t`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Drains the queue (events may schedule more events); `max_events`
  /// guards against runaway self-scheduling loops.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace apx

#include "src/net/messages.hpp"

#include "src/ann/quantize.hpp"

namespace apx {
namespace {

constexpr std::uint8_t kEncodingF32 = 0;
constexpr std::uint8_t kEncodingQuantized = 1;

void write_entry(Writer& w, const WireEntry& e) {
  if (e.quantize_on_wire) {
    w.u8(kEncodingQuantized);
    write_quantized(w, quantize(e.feature));
  } else {
    w.u8(kEncodingF32);
    w.f32_vec(e.feature);
  }
  w.i64(e.label);
  w.f32(e.confidence);
  w.u8(e.hop_count);
  w.u32(e.source_device);
  w.i64(e.age);
}

WireEntry read_entry(Reader& r) {
  WireEntry e;
  const std::uint8_t encoding = r.u8();
  if (encoding == kEncodingQuantized) {
    e.feature = dequantize(read_quantized(r));
  } else if (encoding == kEncodingF32) {
    e.feature = r.f32_vec();
  } else {
    throw CodecError("unknown feature encoding");
  }
  e.label = static_cast<Label>(r.i64());
  e.confidence = r.f32();
  e.hop_count = r.u8();
  e.source_device = r.u32();
  e.age = r.i64();
  return e;
}

Reader open(const std::vector<std::uint8_t>& payload, MsgType expected) {
  Reader r{payload};
  if (static_cast<MsgType>(r.u8()) != expected) {
    throw CodecError("unexpected message type");
  }
  return r;
}

// Guards reserve() against hostile counts: every wire entry occupies at
// least one byte, so a count exceeding the remaining payload is malformed.
// (Found by the codec fuzzer: an unchecked varint count reached
// vector::reserve and threw bad_alloc instead of CodecError.)
std::uint64_t read_entry_count(Reader& r) {
  const std::uint64_t n = r.varint();
  if (n > r.remaining()) throw CodecError("entry count exceeds payload");
  return n;
}

}  // namespace

MsgType peek_type(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) throw CodecError("empty payload");
  return static_cast<MsgType>(payload.front());
}

std::vector<std::uint8_t> encode(const HelloMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kHello));
  w.u32(msg.sender);
  w.u32(msg.cache_size);
  return w.take();
}

std::vector<std::uint8_t> encode(const LookupRequestMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLookupRequest));
  w.u64(msg.request_id);
  w.u32(msg.sender);
  w.u32(msg.k);
  w.f32_vec(msg.query);
  return w.take();
}

std::vector<std::uint8_t> encode(const LookupResponseMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLookupResponse));
  w.u64(msg.request_id);
  w.u32(msg.sender);
  w.varint(msg.entries.size());
  for (const auto& e : msg.entries) write_entry(w, e);
  return w.take();
}

std::vector<std::uint8_t> encode(const EntryAdvertMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kEntryAdvert));
  w.u32(msg.sender);
  w.varint(msg.entries.size());
  for (const auto& e : msg.entries) write_entry(w, e);
  return w.take();
}

std::vector<std::uint8_t> encode(const EdgeLookupRequestMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kEdgeLookupRequest));
  w.u64(msg.request_id);
  w.u32(msg.sender);
  w.f32(msg.threshold_scale);
  w.f32_vec(msg.query);
  return w.take();
}

std::vector<std::uint8_t> encode(const EdgeLookupResponseMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kEdgeLookupResponse));
  w.u64(msg.request_id);
  w.u32(msg.sender);
  w.u8(msg.has_vote ? 1 : 0);
  w.i64(msg.label);
  w.f32(msg.homogeneity);
  w.f32(msg.nearest_distance);
  w.u32(msg.voters);
  return w.take();
}

std::vector<std::uint8_t> encode(const EdgeFeedMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kEdgeFeed));
  w.u32(msg.sender);
  write_entry(w, msg.entry);
  return w.take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kHello);
  HelloMsg msg;
  msg.sender = r.u32();
  msg.cache_size = r.u32();
  return msg;
}

LookupRequestMsg decode_lookup_request(
    const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kLookupRequest);
  LookupRequestMsg msg;
  msg.request_id = r.u64();
  msg.sender = r.u32();
  msg.k = r.u32();
  msg.query = r.f32_vec();
  return msg;
}

LookupResponseMsg decode_lookup_response(
    const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kLookupResponse);
  LookupResponseMsg msg;
  msg.request_id = r.u64();
  msg.sender = r.u32();
  const std::uint64_t n = read_entry_count(r);
  msg.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) msg.entries.push_back(read_entry(r));
  return msg;
}

EntryAdvertMsg decode_entry_advert(const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kEntryAdvert);
  EntryAdvertMsg msg;
  msg.sender = r.u32();
  const std::uint64_t n = read_entry_count(r);
  msg.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) msg.entries.push_back(read_entry(r));
  return msg;
}

EdgeLookupRequestMsg decode_edge_lookup_request(
    const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kEdgeLookupRequest);
  EdgeLookupRequestMsg msg;
  msg.request_id = r.u64();
  msg.sender = r.u32();
  msg.threshold_scale = r.f32();
  msg.query = r.f32_vec();
  return msg;
}

EdgeLookupResponseMsg decode_edge_lookup_response(
    const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kEdgeLookupResponse);
  EdgeLookupResponseMsg msg;
  msg.request_id = r.u64();
  msg.sender = r.u32();
  const std::uint8_t flag = r.u8();
  if (flag > 1) throw CodecError("bad has_vote flag");
  msg.has_vote = flag != 0;
  msg.label = static_cast<Label>(r.i64());
  msg.homogeneity = r.f32();
  msg.nearest_distance = r.f32();
  msg.voters = r.u32();
  return msg;
}

EdgeFeedMsg decode_edge_feed(const std::vector<std::uint8_t>& payload) {
  Reader r = open(payload, MsgType::kEdgeFeed);
  EdgeFeedMsg msg;
  msg.sender = r.u32();
  msg.entry = read_entry(r);
  return msg;
}

}  // namespace apx

#include "src/net/medium.hpp"

#include <stdexcept>
#include <utility>

#include "src/net/faults.hpp"

namespace apx {

WirelessMedium::WirelessMedium(EventSimulator& sim, const MediumParams& params,
                               std::uint64_t seed)
    : sim_(&sim), params_(params), rng_(seed) {
  if (params.bytes_per_us <= 0.0 || params.loss_prob < 0.0 ||
      params.loss_prob > 1.0) {
    throw std::invalid_argument("WirelessMedium: bad parameters");
  }
}

NodeId WirelessMedium::add_node(ReceiveFn on_receive, int cell) {
  if (!on_receive) {
    throw std::invalid_argument("WirelessMedium::add_node: null callback");
  }
  nodes_.push_back(Node{std::move(on_receive), cell, 0.0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void WirelessMedium::set_cell(NodeId node, int cell) {
  nodes_.at(node).cell = cell;
}

int WirelessMedium::cell_of(NodeId node) const { return nodes_.at(node).cell; }

std::vector<NodeId> WirelessMedium::neighbors(NodeId node) const {
  const int cell = nodes_.at(node).cell;
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (id != node && nodes_[id].cell == cell) out.push_back(id);
  }
  return out;
}

SimDuration WirelessMedium::transmission_delay(std::size_t bytes) {
  const auto serialization = static_cast<SimDuration>(
      static_cast<double>(bytes) / params_.bytes_per_us);
  const auto jitter =
      params_.jitter > 0
          ? static_cast<SimDuration>(rng_.uniform_u64(
                static_cast<std::uint64_t>(params_.jitter)))
          : 0;
  return params_.base_latency + jitter + serialization;
}

void WirelessMedium::deliver(NodeId from, NodeId to,
                             const std::vector<std::uint8_t>& payload) {
  if (faults_ != nullptr && faults_->partitioned(from, to, sim_->now())) {
    counters_.inc("dropped_partition");
    return;
  }
  if (faults_ != nullptr && faults_->burst_lost(to)) {
    counters_.inc("dropped_burst");
    return;
  }
  if (rng_.chance(params_.loss_prob)) {
    counters_.inc("dropped_loss");
    return;
  }
  SimDuration delay = transmission_delay(payload.size());
  std::vector<std::uint8_t> data = payload;
  if (faults_ != nullptr) {
    delay += faults_->delay_spike();
    if (faults_->maybe_corrupt(data)) counters_.inc("corrupted_in_flight");
  }
  sim_->schedule_after(delay, [this, from, to, payload = std::move(data)] {
    // Receiver may have moved; radio range is checked at send time only
    // (the cell granularity makes mid-flight departures negligible).
    nodes_.at(to).energy_mj +=
        params_.rx_energy_mj_per_kb *
        (static_cast<double>(payload.size()) / 1024.0);
    counters_.inc("rx");
    counters_.inc("rx_bytes", payload.size());
    nodes_.at(to).on_receive(from, payload);
  });
}

void WirelessMedium::unicast(NodeId from, NodeId to,
                             std::vector<std::uint8_t> payload) {
  auto& sender = nodes_.at(from);
  sender.energy_mj += params_.tx_energy_mj_per_kb *
                      (static_cast<double>(payload.size()) / 1024.0);
  counters_.inc("tx");
  counters_.inc("tx_bytes", payload.size());
  if (nodes_.at(to).cell != sender.cell) {
    counters_.inc("dropped_range");
    return;
  }
  deliver(from, to, payload);
}

void WirelessMedium::broadcast(NodeId from, std::vector<std::uint8_t> payload) {
  auto& sender = nodes_.at(from);
  sender.energy_mj += params_.tx_energy_mj_per_kb *
                      (static_cast<double>(payload.size()) / 1024.0);
  counters_.inc("tx");
  counters_.inc("tx_bytes", payload.size());
  for (const NodeId peer : neighbors(from)) {
    deliver(from, peer, payload);
  }
}

double WirelessMedium::energy_mj(NodeId node) const {
  return nodes_.at(node).energy_mj;
}

}  // namespace apx

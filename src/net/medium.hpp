#pragma once
// Wireless broadcast medium for infrastructure-less device-to-device
// communication — the WiFi-Direct/BLE substitute (DESIGN.md §4). Nodes are
// grouped into proximity cells; nodes in the same cell hear each other.
// Delivery cost = base latency + uniform jitter + serialization time at the
// configured bandwidth, with i.i.d. per-receiver loss. Radio energy is
// accounted per node (tx and rx, proportional to bytes).

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/event_sim.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace apx {

class FaultInjector;

/// Network-visible device identifier.
using NodeId = std::uint32_t;

/// Medium cost/reliability envelope. Defaults approximate WiFi-Direct on
/// phones: ~3 ms one-hop latency, ~10 Mbit/s effective, ~1% loss.
struct MediumParams {
  SimDuration base_latency = 3 * kMillisecond;
  SimDuration jitter = 1 * kMillisecond;  ///< uniform in [0, jitter)
  double bytes_per_us = 1.25;             ///< ~10 Mbit/s
  double loss_prob = 0.01;                ///< per receiver per message
  double tx_energy_mj_per_kb = 2.0;
  double rx_energy_mj_per_kb = 1.0;
};

/// Shared broadcast medium with proximity cells.
class WirelessMedium {
 public:
  /// Delivery callback: (sender, payload bytes).
  using ReceiveFn =
      std::function<void(NodeId, const std::vector<std::uint8_t>&)>;

  WirelessMedium(EventSimulator& sim, const MediumParams& params,
                 std::uint64_t seed);

  /// Registers a node in `cell` and returns its id (ids are dense from 0).
  NodeId add_node(ReceiveFn on_receive, int cell = 0);

  /// Moves a node between proximity cells (device walked away / arrived).
  void set_cell(NodeId node, int cell);
  int cell_of(NodeId node) const;

  /// Nodes currently sharing a cell with `node` (excluding itself).
  std::vector<NodeId> neighbors(NodeId node) const;

  /// Sends to one node. Delivery only if the peer is in the same cell at
  /// send time; otherwise the message is silently dropped (out of range).
  void unicast(NodeId from, NodeId to, std::vector<std::uint8_t> payload);

  /// Sends to every node in the sender's cell.
  void broadcast(NodeId from, std::vector<std::uint8_t> payload);

  /// Radio energy spent by `node` so far, in millijoules.
  double energy_mj(NodeId node) const;

  /// Routes every delivery decision through `faults` (burst loss, partition
  /// cuts, delay spikes, in-flight corruption). Pass nullptr to detach. The
  /// injector must outlive the medium while attached.
  void attach_faults(FaultInjector* faults) noexcept { faults_ = faults; }

  /// Counters: "tx", "rx", "dropped_loss", "dropped_range", "tx_bytes",
  /// "rx_bytes"; with faults attached also "dropped_burst",
  /// "dropped_partition", "corrupted_in_flight".
  const Counter& counters() const noexcept { return counters_; }
  const MediumParams& params() const noexcept { return params_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    ReceiveFn on_receive;
    int cell = 0;
    double energy_mj = 0.0;
  };

  void deliver(NodeId from, NodeId to,
               const std::vector<std::uint8_t>& payload);
  SimDuration transmission_delay(std::size_t bytes);

  EventSimulator* sim_;
  MediumParams params_;
  Rng rng_;
  std::vector<Node> nodes_;
  Counter counters_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace apx

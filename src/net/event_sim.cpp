#include "src/net/event_sim.hpp"

#include <cassert>
#include <utility>

namespace apx {

void EventSimulator::schedule_at(SimTime t, Handler fn) {
  assert(fn);
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventSimulator::schedule_after(SimDuration delay, Handler fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

bool EventSimulator::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();  // copy: top() is const& and pop() destroys it
  queue_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

std::size_t EventSimulator::run_until(SimTime t) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
    ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

std::size_t EventSimulator::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace apx

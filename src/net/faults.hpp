#pragma once
// Deterministic fault injection for the device-to-device substrate.
//
// The happy-path medium models i.i.d. loss only; real infrastructure-less
// deployments live with bursty loss, delay spikes, radio partitions, peer
// crashes and malformed traffic. A FaultPlan describes which of those to
// inject and a FaultInjector turns the plan plus a seed into concrete,
// bit-reproducible decisions the WirelessMedium / PeerCacheService / runner
// consult. Everything is driven off the event simulation, so a chaos run
// with the same seed replays byte-identically — which is what makes the
// chaos/soak suite (tests/faults_test.cpp) assertable.
//
// Fault classes:
//   * burst loss    — Gilbert–Elliott two-state chain per receiver: a node
//                     alternates between a good state (no extra loss) and a
//                     bad state (every message lost), tuned so the overall
//                     loss rate matches `burst_loss`;
//   * delay spikes  — a per-delivery chance of an extra latency spike
//                     (channel contention / driver hiccup);
//   * partitions    — the shared cell splits (by node-id parity) or shatters
//                     (every node isolated) for a window, then heals;
//                     optionally periodic;
//   * crash/restart — devices crash (cache wiped, radio off) and come back
//                     after a fixed downtime; the schedule is precomputed
//                     from the seed so it is independent of event order;
//   * corruption    — a per-delivery chance that payload bytes are bit-
//                     flipped or truncated in flight; decoders must surface
//                     this as CodecError drops, never undefined behaviour.

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/event_sim.hpp"
#include "src/net/medium.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace apx {

/// How a partition window divides the (single shared) cell.
enum class PartitionMode : std::uint8_t {
  kNone = 0,
  kSplit,  ///< two halves by node-id parity; halves cannot hear each other
  kFull,   ///< every node isolated (worst case: no P2P at all)
};

/// Declarative description of the faults to inject. Value type; lives in
/// ScenarioConfig so a chaos scenario stays a pure function of its config.
struct FaultPlan {
  // --- burst loss (Gilbert–Elliott) ---
  /// Target overall loss rate in [0, 0.95]; 0 disables the chain.
  double burst_loss = 0.0;
  /// Mean messages lost per burst (bad-state dwell length), >= 1.
  double burst_mean_len = 8.0;

  // --- delay spikes ---
  double spike_prob = 0.0;  ///< per delivery; 0 disables
  SimDuration spike_extra = 50 * kMillisecond;  ///< mean extra delay

  // --- partition windows ---
  PartitionMode partition = PartitionMode::kNone;
  SimTime partition_start = 0;
  SimDuration partition_duration = 0;
  /// When > 0, the window repeats every `partition_period` (heal, then
  /// partition again); must exceed partition_duration.
  SimDuration partition_period = 0;

  // --- crash/restart ---
  /// Mean up-time between crashes per device (exponential); 0 disables.
  SimDuration crash_mean_uptime = 0;
  /// Fixed downtime per crash.
  SimDuration crash_downtime = 5 * kSecond;

  // --- corruption ---
  double corrupt_prob = 0.0;  ///< per delivery; 0 disables

  /// Whether any fault class is active.
  bool any() const noexcept;
};

/// Parses a `--faults` spec: comma-separated clauses, times in seconds.
///
///   burst:LOSS[:MEANLEN]           e.g. burst:0.2  burst:0.3:16
///   spike:PROB:EXTRA_MS            e.g. spike:0.05:40
///   partition:MODE:START:DUR[:PERIOD]   MODE = split | full
///   crash:MEAN_UP:DOWN             e.g. crash:30:5
///   corrupt:PROB                   e.g. corrupt:0.02
///
/// Throws std::invalid_argument on malformed specs.
FaultPlan parse_fault_spec(const std::string& spec);

/// One planned crash of one device.
struct CrashEvent {
  std::size_t device = 0;
  SimTime down_at = 0;
  SimTime up_at = 0;
};

/// Seed-driven decision engine for a FaultPlan. One injector per event
/// world (runner shard); not thread-safe, like everything else shard-local.
///
/// Counters: "burst_drop", "partition_drop", "delay_spike", "corrupted",
/// "crash", "restart".
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t seed);

  // --- medium hooks (consulted per delivery, at send time) ---

  /// True when `a` and `b` sit on opposite sides of an active partition.
  bool partitioned(NodeId a, NodeId b, SimTime now);

  /// Advances `to`'s Gilbert–Elliott chain one step; true = message lost.
  bool burst_lost(NodeId to);

  /// Extra delivery delay; 0 most of the time, an exponential spike with
  /// probability spike_prob.
  SimDuration delay_spike();

  /// With probability corrupt_prob, mutates `payload` in flight (bit flips
  /// or truncation) and returns true. Never grows the payload.
  bool maybe_corrupt(std::vector<std::uint8_t>& payload);

  // --- crash schedule (consumed by the runner at construction) ---

  /// Precomputes the crash/restart schedule for `num_devices` devices over
  /// `duration`, sorted by down time. Idempotent per injector.
  const std::vector<CrashEvent>& plan_crashes(std::size_t num_devices,
                                              SimDuration duration);

  /// Bookkeeping for the runner's crash/restart events.
  void note_crash() { counters_.inc("crash"); }
  void note_restart() { counters_.inc("restart"); }

  const FaultPlan& plan() const noexcept { return plan_; }
  const Counter& counters() const noexcept { return counters_; }

  /// Every counter key the injector can emit (schema stability: exports
  /// carry them as zeros even in fault-free runs).
  static const std::vector<std::string>& counter_keys();

 private:
  bool in_partition_window(SimTime now) const noexcept;

  FaultPlan plan_;
  Rng rng_;
  /// Gilbert–Elliott transition probabilities derived from the plan.
  double ge_enter_ = 0.0;  ///< good -> bad
  double ge_exit_ = 0.0;   ///< bad -> good
  std::vector<std::uint8_t> ge_state_;  ///< per receiver; 0 good, 1 bad
  std::vector<CrashEvent> crashes_;
  bool crashes_planned_ = false;
  Counter counters_;
};

}  // namespace apx

#pragma once
// Wire messages of the collaborative-caching protocol. Every message is a
// type byte followed by the body encoded with the util/serialize codec.
// Decoders throw CodecError on malformed input; a node drops such messages.

#include <cstdint>
#include <vector>

#include "src/dnn/model.hpp"
#include "src/net/medium.hpp"
#include "src/util/serialize.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Protocol message kinds.
enum class MsgType : std::uint8_t {
  kHello = 1,           ///< periodic discovery beacon
  kLookupRequest = 2,   ///< "does anyone recognize this feature vector?"
  kLookupResponse = 3,  ///< neighbours' matching entries
  kEntryAdvert = 4,     ///< push of freshly computed entries
  kEdgeLookupRequest = 5,   ///< device → edge service query
  kEdgeLookupResponse = 6,  ///< edge service vote (or miss) back to device
  kEdgeFeed = 7,            ///< device → edge: DNN-validated entry
};

/// Reads the leading type byte (throws CodecError on empty payloads).
MsgType peek_type(const std::vector<std::uint8_t>& payload);

/// Discovery beacon.
struct HelloMsg {
  NodeId sender = 0;
  std::uint32_t cache_size = 0;  ///< advertised entry count
};

/// One cache entry in wire form. `age` (rather than an absolute timestamp)
/// crosses the wire so receivers need no clock agreement with senders.
struct WireEntry {
  FeatureVec feature;
  Label label = kNoLabel;
  float confidence = 0.0f;
  std::uint8_t hop_count = 0;
  std::uint32_t source_device = 0;
  SimDuration age = 0;
  /// Sender-side only (not itself serialized): encode `feature` as 8-bit
  /// affine-quantized instead of float32 (~3.7x smaller payload; see
  /// ann/quantize.hpp). Receivers get the dequantized floats either way.
  bool quantize_on_wire = false;
};

/// Remote cache lookup.
struct LookupRequestMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  FeatureVec query;
  std::uint32_t k = 4;
};

/// Answer to a LookupRequest; empty `entries` means "no match".
struct LookupResponseMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  std::vector<WireEntry> entries;
};

/// Unsolicited advertisement of new results (gossip).
struct EntryAdvertMsg {
  NodeId sender = 0;
  std::vector<WireEntry> entries;
};

/// Device-to-edge lookup. Carries the device's current adaptive threshold
/// scale so the edge answers with the same match strictness the device
/// would apply locally.
struct EdgeLookupRequestMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  float threshold_scale = 1.0f;
  FeatureVec query;
};

/// Edge answer: the H-kNN vote of the routed shard, or a miss
/// (`has_vote == false`, remaining fields zero).
struct EdgeLookupResponseMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  bool has_vote = false;
  Label label = kNoLabel;
  float homogeneity = 0.0f;
  float nearest_distance = 0.0f;
  std::uint32_t voters = 0;
};

/// Fire-and-forget upload of one DNN-validated entry; the edge decides
/// admission against its error budget.
struct EdgeFeedMsg {
  NodeId sender = 0;
  WireEntry entry;
};

std::vector<std::uint8_t> encode(const HelloMsg& msg);
std::vector<std::uint8_t> encode(const LookupRequestMsg& msg);
std::vector<std::uint8_t> encode(const LookupResponseMsg& msg);
std::vector<std::uint8_t> encode(const EntryAdvertMsg& msg);
std::vector<std::uint8_t> encode(const EdgeLookupRequestMsg& msg);
std::vector<std::uint8_t> encode(const EdgeLookupResponseMsg& msg);
std::vector<std::uint8_t> encode(const EdgeFeedMsg& msg);

/// Decoders; the payload must carry the matching type byte.
HelloMsg decode_hello(const std::vector<std::uint8_t>& payload);
LookupRequestMsg decode_lookup_request(
    const std::vector<std::uint8_t>& payload);
LookupResponseMsg decode_lookup_response(
    const std::vector<std::uint8_t>& payload);
EntryAdvertMsg decode_entry_advert(const std::vector<std::uint8_t>& payload);
EdgeLookupRequestMsg decode_edge_lookup_request(
    const std::vector<std::uint8_t>& payload);
EdgeLookupResponseMsg decode_edge_lookup_response(
    const std::vector<std::uint8_t>& payload);
EdgeFeedMsg decode_edge_feed(const std::vector<std::uint8_t>& payload);

}  // namespace apx

#pragma once
// Wire messages of the collaborative-caching protocol. Every message is a
// type byte followed by the body encoded with the util/serialize codec.
// Decoders throw CodecError on malformed input; a node drops such messages.

#include <cstdint>
#include <vector>

#include "src/dnn/model.hpp"
#include "src/net/medium.hpp"
#include "src/util/serialize.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Protocol message kinds.
enum class MsgType : std::uint8_t {
  kHello = 1,           ///< periodic discovery beacon
  kLookupRequest = 2,   ///< "does anyone recognize this feature vector?"
  kLookupResponse = 3,  ///< neighbours' matching entries
  kEntryAdvert = 4,     ///< push of freshly computed entries
};

/// Reads the leading type byte (throws CodecError on empty payloads).
MsgType peek_type(const std::vector<std::uint8_t>& payload);

/// Discovery beacon.
struct HelloMsg {
  NodeId sender = 0;
  std::uint32_t cache_size = 0;  ///< advertised entry count
};

/// One cache entry in wire form. `age` (rather than an absolute timestamp)
/// crosses the wire so receivers need no clock agreement with senders.
struct WireEntry {
  FeatureVec feature;
  Label label = kNoLabel;
  float confidence = 0.0f;
  std::uint8_t hop_count = 0;
  std::uint32_t source_device = 0;
  SimDuration age = 0;
  /// Sender-side only (not itself serialized): encode `feature` as 8-bit
  /// affine-quantized instead of float32 (~3.7x smaller payload; see
  /// ann/quantize.hpp). Receivers get the dequantized floats either way.
  bool quantize_on_wire = false;
};

/// Remote cache lookup.
struct LookupRequestMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  FeatureVec query;
  std::uint32_t k = 4;
};

/// Answer to a LookupRequest; empty `entries` means "no match".
struct LookupResponseMsg {
  std::uint64_t request_id = 0;
  NodeId sender = 0;
  std::vector<WireEntry> entries;
};

/// Unsolicited advertisement of new results (gossip).
struct EntryAdvertMsg {
  NodeId sender = 0;
  std::vector<WireEntry> entries;
};

std::vector<std::uint8_t> encode(const HelloMsg& msg);
std::vector<std::uint8_t> encode(const LookupRequestMsg& msg);
std::vector<std::uint8_t> encode(const LookupResponseMsg& msg);
std::vector<std::uint8_t> encode(const EntryAdvertMsg& msg);

/// Decoders; the payload must carry the matching type byte.
HelloMsg decode_hello(const std::vector<std::uint8_t>& payload);
LookupRequestMsg decode_lookup_request(
    const std::vector<std::uint8_t>& payload);
LookupResponseMsg decode_lookup_response(
    const std::vector<std::uint8_t>& payload);
EntryAdvertMsg decode_entry_advert(const std::vector<std::uint8_t>& payload);

}  // namespace apx

#include "src/net/discovery.hpp"

#include <stdexcept>

namespace apx {

DiscoveryService::DiscoveryService(EventSimulator& sim, NodeId self,
                                   const DiscoveryParams& params,
                                   BroadcastFn broadcast_fn,
                                   CacheSizeFn cache_size_fn)
    : sim_(&sim),
      self_(self),
      params_(params),
      broadcast_fn_(std::move(broadcast_fn)),
      cache_size_fn_(std::move(cache_size_fn)) {
  if (!broadcast_fn_ || !cache_size_fn_) {
    throw std::invalid_argument("DiscoveryService: null callback");
  }
  if (params.beacon_interval <= 0 || params.neighbor_expiry <= 0) {
    throw std::invalid_argument("DiscoveryService: bad intervals");
  }
}

void DiscoveryService::start() {
  if (running_) return;
  running_ = true;
  beacon(++generation_);
}

void DiscoveryService::beacon(std::uint64_t generation) {
  // A beacon scheduled before stop() may fire after a restart; without the
  // generation stamp it would re-schedule alongside the fresh chain and
  // every stop/start cycle would add one more beacon per interval.
  if (!running_ || generation != generation_) return;
  HelloMsg msg;
  msg.sender = self_;
  msg.cache_size = cache_size_fn_();
  broadcast_fn_(encode(msg));
  sim_->schedule_after(params_.beacon_interval,
                       [this, generation] { beacon(generation); });
}

bool DiscoveryService::on_hello(const HelloMsg& msg) {
  if (msg.sender == self_) return false;
  const auto it = peers_.find(msg.sender);
  const bool is_new =
      it == peers_.end() ||
      it->second.last_seen < sim_->now() - params_.neighbor_expiry;
  peers_[msg.sender] = PeerInfo{sim_->now(), msg.cache_size};
  return is_new;
}

std::vector<NodeId> DiscoveryService::neighbors() const {
  std::vector<NodeId> out;
  const SimTime cutoff = sim_->now() - params_.neighbor_expiry;
  for (const auto& [id, info] : peers_) {
    if (info.last_seen >= cutoff) out.push_back(id);
  }
  return out;
}

std::uint32_t DiscoveryService::peer_cache_size(NodeId peer) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return 0;
  if (it->second.last_seen < sim_->now() - params_.neighbor_expiry) return 0;
  return it->second.cache_size;
}

}  // namespace apx

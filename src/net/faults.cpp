#include "src/net/faults.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace apx {

bool FaultPlan::any() const noexcept {
  return burst_loss > 0.0 || spike_prob > 0.0 ||
         partition != PartitionMode::kNone || crash_mean_uptime > 0 ||
         corrupt_prob > 0.0;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double parse_num(const std::string& clause, const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size()) {
    throw std::invalid_argument("fault spec: bad number '" + field +
                                "' in clause '" + clause + "'");
  }
  return v;
}

SimDuration seconds(const std::string& clause, const std::string& field) {
  return static_cast<SimDuration>(parse_num(clause, field) * kSecond);
}

}  // namespace

FaultPlan parse_fault_spec(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) continue;
    const std::vector<std::string> f = split(clause, ':');
    const std::string& kind = f[0];
    if (kind == "burst" && (f.size() == 2 || f.size() == 3)) {
      plan.burst_loss = parse_num(clause, f[1]);
      if (f.size() == 3) plan.burst_mean_len = parse_num(clause, f[2]);
      if (plan.burst_loss < 0.0 || plan.burst_loss > 0.95 ||
          plan.burst_mean_len < 1.0) {
        throw std::invalid_argument("fault spec: burst loss must be in "
                                    "[0, 0.95] with mean length >= 1");
      }
    } else if (kind == "spike" && f.size() == 3) {
      plan.spike_prob = parse_num(clause, f[1]);
      plan.spike_extra =
          static_cast<SimDuration>(parse_num(clause, f[2]) * kMillisecond);
      if (plan.spike_prob < 0.0 || plan.spike_prob > 1.0 ||
          plan.spike_extra <= 0) {
        throw std::invalid_argument("fault spec: bad spike clause");
      }
    } else if (kind == "partition" && (f.size() == 4 || f.size() == 5)) {
      if (f[1] == "split") {
        plan.partition = PartitionMode::kSplit;
      } else if (f[1] == "full") {
        plan.partition = PartitionMode::kFull;
      } else {
        throw std::invalid_argument("fault spec: partition mode must be "
                                    "'split' or 'full'");
      }
      plan.partition_start = seconds(clause, f[2]);
      plan.partition_duration = seconds(clause, f[3]);
      if (f.size() == 5) plan.partition_period = seconds(clause, f[4]);
      if (plan.partition_duration <= 0 ||
          (plan.partition_period != 0 &&
           plan.partition_period <= plan.partition_duration)) {
        throw std::invalid_argument(
            "fault spec: partition needs duration > 0 and period > duration");
      }
    } else if (kind == "crash" && f.size() == 3) {
      plan.crash_mean_uptime = seconds(clause, f[1]);
      plan.crash_downtime = seconds(clause, f[2]);
      if (plan.crash_mean_uptime <= 0 || plan.crash_downtime <= 0) {
        throw std::invalid_argument("fault spec: crash needs positive times");
      }
    } else if (kind == "corrupt" && f.size() == 2) {
      plan.corrupt_prob = parse_num(clause, f[1]);
      if (plan.corrupt_prob < 0.0 || plan.corrupt_prob > 1.0) {
        throw std::invalid_argument("fault spec: corrupt prob in [0, 1]");
      }
    } else {
      throw std::invalid_argument("fault spec: unknown clause '" + clause +
                                  "'");
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed)
    : plan_(plan), rng_(seed) {
  if (plan_.burst_loss > 0.0) {
    // Bad state loses everything, so the stationary bad-state probability
    // must equal the target loss: enter/(enter + exit) = loss.
    ge_exit_ = 1.0 / plan_.burst_mean_len;
    ge_enter_ = plan_.burst_loss * ge_exit_ / (1.0 - plan_.burst_loss);
  }
}

bool FaultInjector::in_partition_window(SimTime now) const noexcept {
  if (plan_.partition == PartitionMode::kNone || now < plan_.partition_start) {
    return false;
  }
  const SimTime since = now - plan_.partition_start;
  if (plan_.partition_period > 0) {
    return since % plan_.partition_period < plan_.partition_duration;
  }
  return since < plan_.partition_duration;
}

bool FaultInjector::partitioned(NodeId a, NodeId b, SimTime now) {
  if (!in_partition_window(now)) return false;
  const bool cut = plan_.partition == PartitionMode::kFull || (a % 2) != (b % 2);
  if (cut) counters_.inc("partition_drop");
  return cut;
}

bool FaultInjector::burst_lost(NodeId to) {
  if (plan_.burst_loss <= 0.0) return false;
  if (to >= ge_state_.size()) ge_state_.resize(to + 1, 0);
  std::uint8_t& state = ge_state_[to];
  state = rng_.chance(state == 0 ? ge_enter_ : 1.0 - ge_exit_) ? 1 : 0;
  if (state == 1) {
    counters_.inc("burst_drop");
    return true;
  }
  return false;
}

SimDuration FaultInjector::delay_spike() {
  if (plan_.spike_prob <= 0.0 || !rng_.chance(plan_.spike_prob)) return 0;
  counters_.inc("delay_spike");
  return static_cast<SimDuration>(
      rng_.exponential(1.0 / static_cast<double>(plan_.spike_extra)));
}

bool FaultInjector::maybe_corrupt(std::vector<std::uint8_t>& payload) {
  if (plan_.corrupt_prob <= 0.0 || payload.empty() ||
      !rng_.chance(plan_.corrupt_prob)) {
    return false;
  }
  counters_.inc("corrupted");
  if (rng_.chance(0.25)) {
    // Truncation: keep a random prefix (possibly empty).
    payload.resize(rng_.uniform_u64(payload.size()));
    return true;
  }
  const std::uint64_t flips = 1 + rng_.uniform_u64(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng_.uniform_u64(payload.size());
    payload[pos] ^= static_cast<std::uint8_t>(1u << rng_.uniform_u64(8));
  }
  return true;
}

const std::vector<CrashEvent>& FaultInjector::plan_crashes(
    std::size_t num_devices, SimDuration duration) {
  if (crashes_planned_) return crashes_;
  crashes_planned_ = true;
  if (plan_.crash_mean_uptime <= 0) return crashes_;
  const double rate = 1.0 / static_cast<double>(plan_.crash_mean_uptime);
  for (std::size_t d = 0; d < num_devices; ++d) {
    // Each device gets its own forked stream so schedules do not shift when
    // another device's crash count changes.
    Rng device_rng = rng_.fork();
    SimTime t = 0;
    for (;;) {
      t += static_cast<SimDuration>(device_rng.exponential(rate));
      if (t >= duration) break;
      CrashEvent ev;
      ev.device = d;
      ev.down_at = t;
      ev.up_at = t + plan_.crash_downtime;
      crashes_.push_back(ev);
      t = ev.up_at;
    }
  }
  std::sort(crashes_.begin(), crashes_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.down_at < b.down_at ||
                     (a.down_at == b.down_at && a.device < b.device);
            });
  return crashes_;
}

const std::vector<std::string>& FaultInjector::counter_keys() {
  static const std::vector<std::string> keys = {
      "burst_drop", "partition_drop", "delay_spike",
      "corrupted",  "crash",          "restart"};
  return keys;
}

}  // namespace apx

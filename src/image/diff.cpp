#include "src/image/diff.hpp"

#include <cmath>
#include <stdexcept>

namespace apx {

Image downsample_gray(const Image& frame, int side) {
  return frame.to_gray().resized(side, side);
}

void block_mean_abs_diff(const Image& a, const Image& b, int grid,
                         std::span<float> out) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != 1 || b.channels() != 1) {
    throw std::invalid_argument(
        "block_mean_abs_diff: images must be single-channel and same shape");
  }
  if (grid <= 0 || a.width() % grid != 0 || a.height() % grid != 0 ||
      out.size() != static_cast<std::size_t>(grid) * grid) {
    throw std::invalid_argument("block_mean_abs_diff: bad grid");
  }
  const int bw = a.width() / grid;
  const int bh = a.height() / grid;
  for (int by = 0; by < grid; ++by) {
    for (int bx = 0; bx < grid; ++bx) {
      float sum = 0.0f;
      for (int y = by * bh; y < (by + 1) * bh; ++y) {
        for (int x = bx * bw; x < (bx + 1) * bw; ++x) {
          sum += std::fabs(a.at(x, y, 0) - b.at(x, y, 0));
        }
      }
      out[static_cast<std::size_t>(by) * grid + bx] =
          sum / static_cast<float>(bw * bh);
    }
  }
}

}  // namespace apx

#pragma once
// Frame-differencing helpers shared by everything that compares frames:
// the temporal rung's whole-frame keyframe diff, the downsample extractor,
// and the region-reuse rung's per-block matcher. One implementation of
// "grayscale thumbnail" and "how different are these pixels" keeps every
// consumer's notion of frame similarity identical.

#include <cstdint>
#include <span>

#include "src/image/image.hpp"

namespace apx {

/// Grayscale `side` x `side` thumbnail of `frame` (luma then bilinear
/// resize) — the canonical comparison representation for frame diffing.
Image downsample_gray(const Image& frame, int side);

/// Mean absolute per-sample difference of each `grid` x `grid` block of two
/// single-channel images of identical shape, row-major into `out` (size
/// grid*grid). The image side must be divisible by `grid`. Summing the
/// per-block means over equal-sized blocks reproduces the whole-frame
/// mean_abs_diff exactly up to float associativity.
void block_mean_abs_diff(const Image& a, const Image& b, int grid,
                         std::span<float> out);

}  // namespace apx

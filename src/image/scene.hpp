#pragma once
// Synthetic scene generator — the reproduction's substitute for real camera
// frames (see DESIGN.md §4). Each object class is a procedural texture
// (sinusoid mixture + Gaussian blobs) derived deterministically from the
// generator seed; a ViewParams struct describes how the camera currently
// sees that object (pan, zoom, photometrics, occlusion).
//
// The two properties the cache exploits hold by construction:
//   * views of the SAME class under nearby ViewParams produce similar images,
//   * DIFFERENT classes produce dissimilar images — except within confusion
//     groups when `class_confusion > 0`, which deliberately recreates the
//     hard (ImageNet-like) regime for the accuracy experiments.

#include <cstdint>
#include <vector>

#include "src/image/image.hpp"
#include "src/util/rng.hpp"

namespace apx {

/// How the camera currently views an object. Small deltas in these fields
/// yield small image deltas (continuity is what makes video locality work).
struct ViewParams {
  float dx = 0.0f;          ///< horizontal pan, texture units
  float dy = 0.0f;          ///< vertical pan, texture units
  float zoom = 1.0f;        ///< scale factor (> 0)
  float brightness = 0.0f;  ///< additive offset
  float contrast = 1.0f;    ///< multiplicative gain around mid-gray
  float noise_sigma = 0.0f; ///< per-pixel Gaussian sensor noise
  float occlusion = 0.0f;   ///< fraction of the frame hidden by a flat patch
  std::uint64_t noise_seed = 0;  ///< seeds sensor noise + occluder placement

  /// Returns a copy perturbed by `magnitude` (0 = identical view, 1 = a
  /// completely re-drawn view). Used to synthesize consecutive video frames.
  ViewParams jittered(Rng& rng, float magnitude) const;
};

/// Deterministic renderer of class-conditioned synthetic objects.
class SceneGenerator {
 public:
  struct Config {
    int num_classes = 64;
    int image_size = 32;            ///< square frames
    int channels = 3;
    int components_per_class = 6;   ///< sinusoid mixture size
    int blobs_per_class = 3;        ///< Gaussian blob count
    /// 0 = classes fully distinct; 1 = classes within a group identical.
    float class_confusion = 0.0f;
    int group_size = 4;             ///< classes per confusion group
    std::uint64_t seed = 1;
  };

  explicit SceneGenerator(const Config& cfg);

  /// Renders `class_id` (in [0, num_classes)) under `view`.
  Image render(int class_id, const ViewParams& view) const;

  int num_classes() const noexcept { return cfg_.num_classes; }
  const Config& config() const noexcept { return cfg_; }

 private:
  struct Component {
    float fx, fy, phase;
    float amp[3];
  };
  struct Blob {
    float cx, cy, radius;
    float color[3];
  };
  struct ClassTexture {
    std::vector<Component> components;
    std::vector<Blob> blobs;
  };

  static ClassTexture make_texture(Rng& rng, const Config& cfg);
  float sample_texture(const ClassTexture& tex, float u, float v,
                       int channel) const;

  Config cfg_;
  std::vector<ClassTexture> class_textures_;
  std::vector<ClassTexture> group_textures_;
};

}  // namespace apx

#include "src/image/scene.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apx {

ViewParams ViewParams::jittered(Rng& rng, float magnitude) const {
  ViewParams out = *this;
  out.dx += static_cast<float>(rng.normal(0.0, 0.30 * magnitude));
  out.dy += static_cast<float>(rng.normal(0.0, 0.30 * magnitude));
  out.zoom = std::max(0.2f, out.zoom + static_cast<float>(
                                           rng.normal(0.0, 0.10 * magnitude)));
  out.brightness += static_cast<float>(rng.normal(0.0, 0.05 * magnitude));
  out.brightness = std::clamp(out.brightness, -0.5f, 0.5f);
  out.contrast =
      std::clamp(out.contrast + static_cast<float>(
                                    rng.normal(0.0, 0.05 * magnitude)),
                 0.5f, 1.5f);
  out.noise_seed = rng.next_u64();
  return out;
}

SceneGenerator::SceneGenerator(const Config& cfg) : cfg_(cfg) {
  if (cfg.num_classes <= 0 || cfg.image_size <= 0 ||
      (cfg.channels != 1 && cfg.channels != 3) || cfg.group_size <= 0 ||
      cfg.class_confusion < 0.0f || cfg.class_confusion > 1.0f) {
    throw std::invalid_argument("SceneGenerator: bad config");
  }
  Rng rng{cfg.seed};
  class_textures_.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (int c = 0; c < cfg.num_classes; ++c) {
    Rng class_rng = rng.fork();
    class_textures_.push_back(make_texture(class_rng, cfg));
  }
  const int num_groups = (cfg.num_classes + cfg.group_size - 1) / cfg.group_size;
  Rng group_rng{cfg.seed ^ 0xabcdef1234567890ULL};
  group_textures_.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    Rng r = group_rng.fork();
    group_textures_.push_back(make_texture(r, cfg));
  }
}

SceneGenerator::ClassTexture SceneGenerator::make_texture(Rng& rng,
                                                          const Config& cfg) {
  ClassTexture tex;
  tex.components.reserve(static_cast<std::size_t>(cfg.components_per_class));
  for (int i = 0; i < cfg.components_per_class; ++i) {
    Component comp{};
    comp.fx = static_cast<float>(rng.uniform(0.5, 6.0));
    comp.fy = static_cast<float>(rng.uniform(0.5, 6.0));
    comp.phase = static_cast<float>(rng.uniform(0.0, 6.283185));
    for (float& a : comp.amp) a = static_cast<float>(rng.uniform(0.05, 0.30));
    tex.components.push_back(comp);
  }
  tex.blobs.reserve(static_cast<std::size_t>(cfg.blobs_per_class));
  for (int i = 0; i < cfg.blobs_per_class; ++i) {
    Blob blob{};
    blob.cx = static_cast<float>(rng.uniform(-1.0, 1.0));
    blob.cy = static_cast<float>(rng.uniform(-1.0, 1.0));
    blob.radius = static_cast<float>(rng.uniform(0.15, 0.60));
    for (float& ch : blob.color) ch = static_cast<float>(rng.uniform(-0.4, 0.4));
    tex.blobs.push_back(blob);
  }
  return tex;
}

float SceneGenerator::sample_texture(const ClassTexture& tex, float u, float v,
                                     int channel) const {
  float value = 0.5f;
  for (const auto& comp : tex.components) {
    value += comp.amp[channel] *
             std::sin(comp.fx * u + comp.fy * v + comp.phase);
  }
  for (const auto& blob : tex.blobs) {
    const float du = u - blob.cx;
    const float dv = v - blob.cy;
    const float r2 = blob.radius * blob.radius;
    value += blob.color[channel] * std::exp(-(du * du + dv * dv) / (2.0f * r2));
  }
  return value;
}

Image SceneGenerator::render(int class_id, const ViewParams& view) const {
  if (class_id < 0 || class_id >= cfg_.num_classes) {
    throw std::out_of_range("SceneGenerator::render: class_id out of range");
  }
  const ClassTexture& own = class_textures_[static_cast<std::size_t>(class_id)];
  const ClassTexture& group =
      group_textures_[static_cast<std::size_t>(class_id / cfg_.group_size)];
  const float mix = cfg_.class_confusion;

  const int n = cfg_.image_size;
  Image img(n, n, cfg_.channels);
  Rng noise_rng{view.noise_seed};
  const float inv_zoom = 1.0f / std::max(view.zoom, 0.05f);

  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      // Map pixel to texture coordinates in roughly [-1, 1] at zoom 1.
      const float u =
          ((static_cast<float>(x) / static_cast<float>(n)) * 2.0f - 1.0f) *
              inv_zoom +
          view.dx;
      const float v =
          ((static_cast<float>(y) / static_cast<float>(n)) * 2.0f - 1.0f) *
              inv_zoom +
          view.dy;
      for (int c = 0; c < cfg_.channels; ++c) {
        float value = (1.0f - mix) * sample_texture(own, u, v, c) +
                      mix * sample_texture(group, u, v, c);
        value = (value - 0.5f) * view.contrast + 0.5f + view.brightness;
        if (view.noise_sigma > 0.0f) {
          value += static_cast<float>(
              noise_rng.normal(0.0, static_cast<double>(view.noise_sigma)));
        }
        img.at(x, y, c) = value;
      }
    }
  }

  if (view.occlusion > 0.0f) {
    // A flat mid-gray patch covering `occlusion` of the frame, placed by the
    // noise seed so consecutive frames keep the occluder roughly stable.
    Rng occ_rng{view.noise_seed ^ 0x5eedULL};
    const float frac = std::clamp(view.occlusion, 0.0f, 0.95f);
    const int side =
        std::max(1, static_cast<int>(std::sqrt(frac) * static_cast<float>(n)));
    const int ox = static_cast<int>(occ_rng.uniform_u64(
        static_cast<std::uint64_t>(std::max(1, n - side))));
    const int oy = static_cast<int>(occ_rng.uniform_u64(
        static_cast<std::uint64_t>(std::max(1, n - side))));
    for (int y = oy; y < std::min(n, oy + side); ++y) {
      for (int x = ox; x < std::min(n, ox + side); ++x) {
        for (int c = 0; c < cfg_.channels; ++c) img.at(x, y, c) = 0.5f;
      }
    }
  }

  img.clamp();
  return img;
}

}  // namespace apx

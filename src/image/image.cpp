#include "src/image/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace apx {

Image::Image(int width, int height, int channels)
    : width_(width), height_(height), channels_(channels) {
  if (width <= 0 || height <= 0 || (channels != 1 && channels != 3)) {
    throw std::invalid_argument("Image: bad dimensions");
  }
  data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
                   static_cast<std::size_t>(channels),
               0.0f);
}

void Image::clamp() {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

Image Image::to_gray() const {
  assert(!empty());
  if (channels_ == 1) return *this;
  Image out(width_, height_, 1);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out.at(x, y, 0) = 0.299f * at(x, y, 0) + 0.587f * at(x, y, 1) +
                        0.114f * at(x, y, 2);
    }
  }
  return out;
}

Image Image::resized(int new_width, int new_height) const {
  assert(!empty());
  if (new_width <= 0 || new_height <= 0) {
    throw std::invalid_argument("Image::resized: bad dimensions");
  }
  Image out(new_width, new_height, channels_);
  const float sx = static_cast<float>(width_) / static_cast<float>(new_width);
  const float sy = static_cast<float>(height_) / static_cast<float>(new_height);
  for (int y = 0; y < new_height; ++y) {
    // Sample at source-space pixel centers.
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, height_ - 1);
    const int y1 = std::min(y0 + 1, height_ - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (int x = 0; x < new_width; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const int x0 =
          std::clamp(static_cast<int>(std::floor(fx)), 0, width_ - 1);
      const int x1 = std::min(x0 + 1, width_ - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      for (int c = 0; c < channels_; ++c) {
        const float top =
            at(x0, y0, c) * (1.0f - wx) + at(x1, y0, c) * wx;
        const float bot =
            at(x0, y1, c) * (1.0f - wx) + at(x1, y1, c) * wx;
        out.at(x, y, c) = top * (1.0f - wy) + bot * wy;
      }
    }
  }
  return out;
}

float Image::mean_abs_diff(const Image& other) const {
  assert(width_ == other.width_ && height_ == other.height_ &&
         channels_ == other.channels_);
  if (data_.empty()) return 0.0f;
  float sum = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += std::abs(data_[i] - other.data_[i]);
  }
  return sum / static_cast<float>(data_.size());
}

float Image::mean() const {
  if (data_.empty()) return 0.0f;
  float sum = 0.0f;
  for (float v : data_) sum += v;
  return sum / static_cast<float>(data_.size());
}

}  // namespace apx

#pragma once
// Dense float image type. Pixel values live in [0, 1]; layout is row-major,
// interleaved channels (HWC), matching what a camera pipeline would hand a
// mobile vision stack after decode.

#include <cstddef>
#include <span>
#include <vector>

namespace apx {

/// Owning float image. Channels is 1 (grayscale) or 3 (RGB).
class Image {
 public:
  Image() = default;

  /// Allocates a zeroed image. Requires positive dimensions, channels 1 or 3.
  Image(int width, int height, int channels);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int channels() const noexcept { return channels_; }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  /// Mutable access; caller must keep coordinates in range.
  float& at(int x, int y, int c) noexcept {
    return data_[index(x, y, c)];
  }
  float at(int x, int y, int c) const noexcept {
    return data_[index(x, y, c)];
  }

  std::span<const float> data() const noexcept { return data_; }
  std::span<float> data() noexcept { return data_; }

  /// Clamps every sample into [0, 1].
  void clamp();

  /// Single-channel copy (luma for RGB: 0.299 R + 0.587 G + 0.114 B).
  Image to_gray() const;

  /// Bilinear resize to the given dimensions (same channel count).
  Image resized(int new_width, int new_height) const;

  /// Mean absolute per-sample difference against an image of identical
  /// shape — the frame-differencing primitive used by the video module.
  float mean_abs_diff(const Image& other) const;

  /// Mean sample value.
  float mean() const;

 private:
  std::size_t index(int x, int y, int c) const noexcept {
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) *
               static_cast<std::size_t>(channels_) +
           static_cast<std::size_t>(c);
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

}  // namespace apx

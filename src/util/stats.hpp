#pragma once
// Streaming and batch statistics used by the metrics layer and benchmarks.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apx {

/// Numerically stable streaming mean/variance (Welford), plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains every sample to answer exact quantile queries.
///
/// Our experiments collect at most a few million scalar samples, so exact
/// storage is cheaper than the complexity of a sketch. Quantiles use linear
/// interpolation between closest ranks (same convention as numpy's default).
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  double mean() const noexcept;
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;
  double min() const;
  double max() const;

  /// Sorted copy of the samples (for CDF output).
  std::vector<double> sorted() const;

  void clear() noexcept { values_.clear(); dirty_ = true; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

/// Counter keyed by a small set of string labels (hit sources, outcome
/// classes, ...). Deterministic iteration order (std::map).
class Counter {
 public:
  void inc(const std::string& key, std::uint64_t by = 1);
  /// Overwrites `key` (gauge semantics: current sizes, byte footprints).
  void set(const std::string& key, std::uint64_t value);
  std::uint64_t get(const std::string& key) const noexcept;
  std::uint64_t total() const noexcept;
  /// Fraction of the total attributed to `key`; 0 when total is 0.
  double fraction(const std::string& key) const noexcept;

  const std::map<std::string, std::uint64_t>& items() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace apx

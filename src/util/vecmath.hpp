#pragma once
// Dense float-vector math shared by feature extraction and ANN search.

#include <cstddef>
#include <span>
#include <vector>

namespace apx {

/// Dense feature vector. Plain alias: features are data, not behaviour.
using FeatureVec = std::vector<float>;

/// Inner product; spans must be the same length.
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Squared Euclidean distance; spans must be the same length.
float l2_sq(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean distance; spans must be the same length.
float l2(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean norm.
float norm(std::span<const float> a) noexcept;

/// Cosine distance in [0, 2]: 1 - cos(a, b). Zero vectors compare at 1.
float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept;

/// Scales `v` in place to unit L2 norm; leaves zero vectors untouched.
void normalize(std::span<float> v) noexcept;

/// Element-wise a += b; spans must be the same length.
void add_in_place(std::span<float> a, std::span<const float> b) noexcept;

/// Element-wise a *= s.
void scale_in_place(std::span<float> a, float s) noexcept;

}  // namespace apx

#pragma once
// Dense float-vector math shared by feature extraction and ANN search.
//
// The hot kernels (dot, l2_sq and their batched variants) are written as
// multi-accumulator unrolled loops over __restrict pointers: the explicit
// accumulator split removes the loop-carried floating-point dependency that
// blocks auto-vectorization under strict FP semantics, so the compiler can
// keep 8 independent lanes in flight (SSE/AVX at -O2/-O3, plain ILP
// otherwise). Scalar one-element-at-a-time references live in apx::ref for
// property tests and benchmark baselines.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace apx {

/// Dense feature vector. Plain alias: features are data, not behaviour.
using FeatureVec = std::vector<float>;

/// Inner product; spans must be the same length.
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Squared Euclidean distance; spans must be the same length.
float l2_sq(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean distance; spans must be the same length.
float l2(std::span<const float> a, std::span<const float> b) noexcept;

/// Euclidean norm.
float norm(std::span<const float> a) noexcept;

/// Cosine distance in [0, 2]: 1 - cos(a, b). Zero vectors compare at 1.
float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept;

/// Scales `v` in place to unit L2 norm; leaves zero vectors untouched.
void normalize(std::span<float> v) noexcept;

/// Element-wise a += b; spans must be the same length.
void add_in_place(std::span<float> a, std::span<const float> b) noexcept;

/// Element-wise a *= s.
void scale_in_place(std::span<float> a, float s) noexcept;

// ------------------------------------------------------- batched kernels
//
// `rows` points at `n` contiguous row-major vectors of `q.size()` floats
// each (row i at rows + i * q.size()); `out` receives n results. One pass
// over contiguous memory: this is how candidate scoring should be done.

/// out[i] = dot(q, row_i).
void dot_batch(std::span<const float> q, const float* rows, std::size_t n,
               float* out) noexcept;

/// out[i] = l2_sq(q, row_i).
void l2_sq_batch(std::span<const float> q, const float* rows, std::size_t n,
                 float* out) noexcept;

/// Gather variant: out[i] = l2_sq(q, arena + slots[i] * q.size()). Rows are
/// picked from an arena by slot index (still contiguous per row).
void l2_sq_gather(std::span<const float> q, const float* arena,
                  std::span<const std::uint32_t> slots, float* out) noexcept;

// -------------------------------------------------- SQ8 scan kernels
//
// Asymmetric distance computation over 8-bit affine codes: the query stays
// float, stored rows are uint8 codes with per-row affine parameters
// (value[i] ~= offset + scale * code[i]). Expanding the squared distance to
// the reconstruction,
//
//   |q - recon|^2 = |q|^2 - 2 (offset * sum(q) + scale * dot(q, codes))
//                 + |recon|^2,
//
// only dot(q, codes) depends on the row's codes; everything else is O(1)
// per row from precomputed terms. The uint8 rows quarter the memory
// traffic of the float scan, which is what the scan is bound by at
// realistic cache sizes.

/// Inner product of a float vector with a uint8 code row of equal length.
float dot_u8(std::span<const float> a, const std::uint8_t* codes) noexcept;

/// ADC gather: out[i] = squared L2 distance from `q` to the reconstruction
/// of code row slots[i]. `code_arena` holds slot-major uint8 rows of
/// q.size() bytes; offsets/scales/recon_norm_sqs are per-slot affine
/// parameters and reconstruction norms (see above). `q_norm_sq` = |q|^2
/// and `q_sum` = sum(q) are per-query precomputes.
void adc_l2_sq_gather(std::span<const float> q, float q_norm_sq, float q_sum,
                      const std::uint8_t* code_arena, const float* offsets,
                      const float* scales, const float* recon_norm_sqs,
                      std::span<const std::uint32_t> slots,
                      float* out) noexcept;

namespace ref {

/// One-element-at-a-time scalar references (the pre-overhaul kernels).
/// Ground truth for property tests and the benchmark baseline.
float dot(std::span<const float> a, std::span<const float> b) noexcept;
float l2_sq(std::span<const float> a, std::span<const float> b) noexcept;
float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept;

}  // namespace ref

}  // namespace apx

#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace apx {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  if (workers_.empty() || n <= grain) {
    body(begin, end);
    return;
  }

  // Chunks are claimed from a shared atomic cursor; each claim covers a
  // disjoint [lo, hi), so writes never overlap and the union is exact.
  struct State {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> done{0};
    std::size_t end;
    std::size_t grain;
    std::size_t total;
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->total = n;

  auto drain = [](State& s,
                  const std::function<void(std::size_t, std::size_t)>& f) {
    for (;;) {
      const std::size_t lo =
          s.next.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) return;
      const std::size_t hi = std::min(lo + s.grain, s.end);
      f(lo, hi);
      if (s.done.fetch_add(hi - lo, std::memory_order_acq_rel) + (hi - lo) ==
          s.total) {
        std::lock_guard lock(s.m);
        s.cv.notify_all();
      }
    }
  };

  // One helper task per worker; each drains chunks until none remain.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    submit([state, &body, drain] { drain(*state, body); });
  }
  drain(*state, body);  // the caller works too
  std::unique_lock lock(state->m);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

std::size_t ThreadPool::default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
}

}  // namespace apx

#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace apx {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < ncols; ++i) total += widths[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace apx

#pragma once
// Compact little-endian binary codec used for all peer-to-peer messages.
//
// The wire format is deliberately simple: fixed-width integers are written
// little-endian, unsigned varints use LEB128, floats are bit-cast to their
// IEEE-754 representation. Readers are bounds-checked and never read past
// the buffer; a malformed message surfaces as CodecError rather than UB.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace apx {

/// Thrown by Reader on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to an internal byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f32(float v);
  void f64(double v);
  /// LEB128 unsigned varint (1-10 bytes).
  void varint(std::uint64_t v);
  /// Length-prefixed (varint) byte string.
  void str(std::string_view v);
  /// Length-prefixed (varint) float vector.
  void f32_vec(std::span<const float> v);
  /// Raw bytes with no length prefix.
  void raw(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads primitive values from a byte span; throws CodecError on underflow.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::uint64_t varint();
  std::string str();
  std::vector<float> f32_vec();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  template <typename T>
  T fixed();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace apx

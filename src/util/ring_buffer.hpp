#pragma once
// Fixed-capacity ring buffer used for IMU windows and frame-history state.

#include <cassert>
#include <cstddef>
#include <vector>

namespace apx {

/// Fixed-capacity FIFO that overwrites the oldest element when full.
///
/// Indexing is oldest-first: operator[](0) is the oldest retained element,
/// operator[](size()-1) the newest.
template <typename T>
class RingBuffer {
 public:
  /// Requires capacity >= 1.
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    assert(capacity >= 1);
  }

  void push(T value) {
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % buf_.size();
    }
  }

  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == buf_.size(); }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace apx

#include "src/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apx {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  values_.push_back(x);
  dirty_ = true;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

void Samples::ensure_sorted() const {
  if (!dirty_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::min() const { return quantile(0.0); }
double Samples::max() const { return quantile(1.0); }

std::vector<double> Samples::sorted() const {
  ensure_sorted();
  return sorted_;
}

void Counter::inc(const std::string& key, std::uint64_t by) {
  counts_[key] += by;
}

void Counter::set(const std::string& key, std::uint64_t value) {
  counts_[key] = value;
}

std::uint64_t Counter::get(const std::string& key) const noexcept {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t Counter::total() const noexcept {
  std::uint64_t t = 0;
  for (const auto& [_, v] : counts_) t += v;
  return t;
}

double Counter::fraction(const std::string& key) const noexcept {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(get(key)) / static_cast<double>(t);
}

}  // namespace apx

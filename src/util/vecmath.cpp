#include "src/util/vecmath.hpp"

#include <cassert>
#include <cmath>

namespace apx {
namespace {

// 8 independent accumulators: the unroll width that fills one AVX register
// (or two SSE ones) and gives scalar fallback enough ILP to hide FMA
// latency. Tails shorter than 8 fall through to the scalar loop.
inline float dot_kernel(const float* __restrict a, const float* __restrict b,
                        std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i + 0] * b[i + 0];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  float s = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline float l2_sq_kernel(const float* __restrict a, const float* __restrict b,
                          std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float d0 = a[i + 0] - b[i + 0];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    const float d4 = a[i + 4] - b[i + 4];
    const float d5 = a[i + 5] - b[i + 5];
    const float d6 = a[i + 6] - b[i + 6];
    const float d7 = a[i + 7] - b[i + 7];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
    s4 += d4 * d4;
    s5 += d5 * d5;
    s6 += d6 * d6;
    s7 += d7 * d7;
  }
  float s = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return dot_kernel(a.data(), b.data(), a.size());
}

float l2_sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return l2_sq_kernel(a.data(), b.data(), a.size());
}

float l2(std::span<const float> a, std::span<const float> b) noexcept {
  return std::sqrt(l2_sq(a, b));
}

float norm(std::span<const float> a) noexcept {
  return std::sqrt(dot(a, a));
}

float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  // One fused pass: dot and both norms share the loads.
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  const std::size_t n = a.size();
  float ab0 = 0.0f, ab1 = 0.0f, ab2 = 0.0f, ab3 = 0.0f;
  float aa0 = 0.0f, aa1 = 0.0f, aa2 = 0.0f, aa3 = 0.0f;
  float bb0 = 0.0f, bb1 = 0.0f, bb2 = 0.0f, bb3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ab0 += pa[i + 0] * pb[i + 0];
    ab1 += pa[i + 1] * pb[i + 1];
    ab2 += pa[i + 2] * pb[i + 2];
    ab3 += pa[i + 3] * pb[i + 3];
    aa0 += pa[i + 0] * pa[i + 0];
    aa1 += pa[i + 1] * pa[i + 1];
    aa2 += pa[i + 2] * pa[i + 2];
    aa3 += pa[i + 3] * pa[i + 3];
    bb0 += pb[i + 0] * pb[i + 0];
    bb1 += pb[i + 1] * pb[i + 1];
    bb2 += pb[i + 2] * pb[i + 2];
    bb3 += pb[i + 3] * pb[i + 3];
  }
  float ab = (ab0 + ab1) + (ab2 + ab3);
  float aa = (aa0 + aa1) + (aa2 + aa3);
  float bb = (bb0 + bb1) + (bb2 + bb3);
  for (; i < n; ++i) {
    ab += pa[i] * pb[i];
    aa += pa[i] * pa[i];
    bb += pb[i] * pb[i];
  }
  const float na = std::sqrt(aa);
  const float nb = std::sqrt(bb);
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - ab / (na * nb);
}

void normalize(std::span<float> v) noexcept {
  const float n = norm(v);
  if (n == 0.0f) return;
  scale_in_place(v, 1.0f / n);
}

void add_in_place(std::span<float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void scale_in_place(std::span<float> a, float s) noexcept {
  for (float& x : a) x *= s;
}

void dot_batch(std::span<const float> q, const float* rows, std::size_t n,
               float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = dot_kernel(q.data(), rows + i * dim, dim);
  }
}

void l2_sq_batch(std::span<const float> q, const float* rows, std::size_t n,
                 float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = l2_sq_kernel(q.data(), rows + i * dim, dim);
  }
}

void l2_sq_gather(std::span<const float> q, const float* arena,
                  std::span<const std::uint32_t> slots, float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out[i] = l2_sq_kernel(q.data(), arena + slots[i] * dim, dim);
  }
}

namespace ref {

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

float l2_sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept {
  const float na = std::sqrt(ref::dot(a, a));
  const float nb = std::sqrt(ref::dot(b, b));
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - ref::dot(a, b) / (na * nb);
}

}  // namespace ref

}  // namespace apx

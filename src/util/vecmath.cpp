#include "src/util/vecmath.hpp"

#include <cassert>
#include <cmath>

namespace apx {

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

float l2_sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float l2(std::span<const float> a, std::span<const float> b) noexcept {
  return std::sqrt(l2_sq(a, b));
}

float norm(std::span<const float> a) noexcept {
  return std::sqrt(dot(a, a));
}

float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept {
  const float na = norm(a);
  const float nb = norm(b);
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - dot(a, b) / (na * nb);
}

void normalize(std::span<float> v) noexcept {
  const float n = norm(v);
  if (n == 0.0f) return;
  scale_in_place(v, 1.0f / n);
}

void add_in_place(std::span<float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void scale_in_place(std::span<float> a, float s) noexcept {
  for (float& x : a) x *= s;
}

}  // namespace apx

#include "src/util/vecmath.hpp"

#include <cassert>
#include <cmath>

// The SQ8 kernels runtime-dispatch to an AVX2+FMA variant on x86-64: the
// u8 -> f32 widening the asymmetric-distance pass lives on does not
// auto-vectorize profitably at the baseline ISA, unlike the pure-float
// kernels below. Only the new quantized-scan kernels dispatch — the float
// kernels keep one portable code path so simulation goldens cannot shift
// with the host CPU.
#if defined(__x86_64__) && defined(__GNUC__)
#define APX_SQ8_X86_DISPATCH 1
#include <immintrin.h>
#else
#define APX_SQ8_X86_DISPATCH 0
#endif

namespace apx {
namespace {

// 8 independent accumulators: the unroll width that fills one AVX register
// (or two SSE ones) and gives scalar fallback enough ILP to hide FMA
// latency. Tails shorter than 8 fall through to the scalar loop.
inline float dot_kernel(const float* __restrict a, const float* __restrict b,
                        std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i + 0] * b[i + 0];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
    s4 += a[i + 4] * b[i + 4];
    s5 += a[i + 5] * b[i + 5];
    s6 += a[i + 6] * b[i + 6];
    s7 += a[i + 7] * b[i + 7];
  }
  float s = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline float l2_sq_kernel(const float* __restrict a, const float* __restrict b,
                          std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float d0 = a[i + 0] - b[i + 0];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    const float d4 = a[i + 4] - b[i + 4];
    const float d5 = a[i + 5] - b[i + 5];
    const float d6 = a[i + 6] - b[i + 6];
    const float d7 = a[i + 7] - b[i + 7];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
    s4 += d4 * d4;
    s5 += d5 * d5;
    s6 += d6 * d6;
    s7 += d7 * d7;
  }
  float s = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// Same 8-accumulator shape as dot_kernel, but the second operand is a uint8
// code row: the u8 -> float widening vectorizes (pmovzxbd + cvtdq2ps) and
// the row costs a quarter of the float row's memory traffic.
inline float dot_u8_kernel(const float* __restrict a,
                           const std::uint8_t* __restrict b,
                           std::size_t n) noexcept {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 += a[i + 0] * static_cast<float>(b[i + 0]);
    s1 += a[i + 1] * static_cast<float>(b[i + 1]);
    s2 += a[i + 2] * static_cast<float>(b[i + 2]);
    s3 += a[i + 3] * static_cast<float>(b[i + 3]);
    s4 += a[i + 4] * static_cast<float>(b[i + 4]);
    s5 += a[i + 5] * static_cast<float>(b[i + 5]);
    s6 += a[i + 6] * static_cast<float>(b[i + 6]);
    s7 += a[i + 7] * static_cast<float>(b[i + 7]);
  }
  float s = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  for (; i < n; ++i) s += a[i] * static_cast<float>(b[i]);
  return s;
}

#if APX_SQ8_X86_DISPATCH

__attribute__((target("avx2,fma"))) inline float dot_u8_avx2(
    const float* __restrict a, const std::uint8_t* __restrict b,
    std::size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // 16 codes per load; vpmovzxbd + vcvtdq2ps widens each half to 8 floats.
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m256 lo = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw));
    const __m256 hi =
        _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(raw, 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), lo, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), hi, acc1);
  }
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  __m128 s =
      _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  float out = _mm_cvtss_f32(s);
  for (; i < n; ++i) out += a[i] * static_cast<float>(b[i]);
  return out;
}

// Widen 8 codes to floats from an m64 memory operand: one shuffle-port uop
// per 8 elements, with no vpsrldq to split a 16B load.
__attribute__((target("avx2,fma"))) inline __m256 widen8_avx2(
    const std::uint8_t* p) noexcept {
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
}

// Blocks of four candidate rows share the query loads and give the core
// eight independent FMA chains — a single row's two chains leave the FMA
// units idle on their 4-cycle latency, and the per-row horizontal reduce
// serialises behind them.
__attribute__((target("avx2,fma"))) void adc_l2_sq_gather_avx2(
    std::span<const float> q, float q_norm_sq, float q_sum,
    const std::uint8_t* code_arena, const float* offsets, const float* scales,
    const float* recon_norm_sqs, std::span<const std::uint32_t> slots,
    float* out) noexcept {
  const std::size_t dim = q.size();
  const float* qp = q.data();
  std::size_t i = 0;
  if (dim % 16 == 0) {
    const __m256 vq_norm = _mm256_set1_ps(q_norm_sq);
    const __m256 vq_sum = _mm256_set1_ps(q_sum);
    for (; i + 4 <= slots.size(); i += 4) {
      const std::uint8_t* r0 =
          code_arena + static_cast<std::size_t>(slots[i + 0]) * dim;
      const std::uint8_t* r1 =
          code_arena + static_cast<std::size_t>(slots[i + 1]) * dim;
      const std::uint8_t* r2 =
          code_arena + static_cast<std::size_t>(slots[i + 2]) * dim;
      const std::uint8_t* r3 =
          code_arena + static_cast<std::size_t>(slots[i + 3]) * dim;
      __m256 a0l = _mm256_setzero_ps(), a0h = _mm256_setzero_ps();
      __m256 a1l = _mm256_setzero_ps(), a1h = _mm256_setzero_ps();
      __m256 a2l = _mm256_setzero_ps(), a2h = _mm256_setzero_ps();
      __m256 a3l = _mm256_setzero_ps(), a3h = _mm256_setzero_ps();
      for (std::size_t j = 0; j < dim; j += 16) {
        const __m256 qlo = _mm256_loadu_ps(qp + j);
        const __m256 qhi = _mm256_loadu_ps(qp + j + 8);
        // Two m64-sourced vpmovzxbd per row instead of a 16B load plus a
        // vpsrldq: the byte-shift competes with the widen for the shuffle
        // port, which is what this loop saturates first.
        a0l = _mm256_fmadd_ps(qlo, widen8_avx2(r0 + j), a0l);
        a0h = _mm256_fmadd_ps(qhi, widen8_avx2(r0 + j + 8), a0h);
        a1l = _mm256_fmadd_ps(qlo, widen8_avx2(r1 + j), a1l);
        a1h = _mm256_fmadd_ps(qhi, widen8_avx2(r1 + j + 8), a1h);
        a2l = _mm256_fmadd_ps(qlo, widen8_avx2(r2 + j), a2l);
        a2h = _mm256_fmadd_ps(qhi, widen8_avx2(r2 + j + 8), a2h);
        a3l = _mm256_fmadd_ps(qlo, widen8_avx2(r3 + j), a3l);
        a3h = _mm256_fmadd_ps(qhi, widen8_avx2(r3 + j + 8), a3h);
      }
      // 4 x ymm -> one xmm holding {dot0, dot1, dot2, dot3}.
      const __m256 t01 =
          _mm256_hadd_ps(_mm256_add_ps(a0l, a0h), _mm256_add_ps(a1l, a1h));
      const __m256 t23 =
          _mm256_hadd_ps(_mm256_add_ps(a2l, a2h), _mm256_add_ps(a3l, a3h));
      const __m256 t = _mm256_hadd_ps(t01, t23);
      const __m128 dots =
          _mm_add_ps(_mm256_castps256_ps128(t), _mm256_extractf128_ps(t, 1));
      // out = q_norm - 2*(offset*q_sum + scale*dot) + recon_norm, 4 wide.
      const __m128i vslots = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(slots.data() + i));
      const __m128 voff = _mm_i32gather_ps(offsets, vslots, 4);
      const __m128 vscale = _mm_i32gather_ps(scales, vslots, 4);
      const __m128 vrecon = _mm_i32gather_ps(recon_norm_sqs, vslots, 4);
      const __m128 cross = _mm_fmadd_ps(
          vscale, dots, _mm_mul_ps(voff, _mm256_castps256_ps128(vq_sum)));
      const __m128 res = _mm_add_ps(
          _mm_fnmadd_ps(_mm_set1_ps(2.0f), cross,
                        _mm256_castps256_ps128(vq_norm)),
          vrecon);
      _mm_storeu_ps(out + i, res);
    }
  }
  for (; i < slots.size(); ++i) {
    const std::uint32_t slot = slots[i];
    const float d = dot_u8_avx2(
        qp, code_arena + static_cast<std::size_t>(slot) * dim, dim);
    const float cross = offsets[slot] * q_sum + scales[slot] * d;
    out[i] = q_norm_sq - 2.0f * cross + recon_norm_sqs[slot];
  }
}

// GCC 12's AVX-512 intrinsic headers trip -Wmaybe-uninitialized on their
// own undefined merge operands (__Y); scoped suppression, not our code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx2,fma"))) inline __m512 widen16_avx512(
    const std::uint8_t* p) noexcept {
  return _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))));
}

// zmm -> ymm lane fold; extractf64x4 keeps this AVX512F-only.
__attribute__((target("avx512f,avx2,fma"))) inline __m256 fold512_avx512(
    __m512 a) noexcept {
  return _mm256_add_ps(
      _mm512_castps512_ps256(a),
      _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(a), 1)));
}

// Per-slot tail of the scan for one group of four rows: fold each zmm
// accumulator to a ymm, hadd-ladder into {dot0..dot3}, then finish the
// expansion q_norm - 2*(offset*q_sum + scale*dot) + recon_norm four wide
// with 128-bit gathers over the SoA stats (legal inside an avx512f target).
__attribute__((target("avx512f,avx2,fma"))) inline void adc_epilogue4_avx512(
    __m512 a0, __m512 a1, __m512 a2, __m512 a3, const std::uint32_t* slots,
    const float* offsets, const float* scales, const float* recon_norm_sqs,
    float q_norm_sq, float q_sum, float* out) noexcept {
  const __m256 t01 = _mm256_hadd_ps(fold512_avx512(a0), fold512_avx512(a1));
  const __m256 t23 = _mm256_hadd_ps(fold512_avx512(a2), fold512_avx512(a3));
  const __m256 t = _mm256_hadd_ps(t01, t23);
  const __m128 dots =
      _mm_add_ps(_mm256_castps256_ps128(t), _mm256_extractf128_ps(t, 1));
  const __m128i vslots =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots));
  const __m128 voff = _mm_i32gather_ps(offsets, vslots, 4);
  const __m128 vscale = _mm_i32gather_ps(scales, vslots, 4);
  const __m128 vrecon = _mm_i32gather_ps(recon_norm_sqs, vslots, 4);
  const __m128 cross =
      _mm_fmadd_ps(vscale, dots, _mm_mul_ps(voff, _mm_set1_ps(q_sum)));
  const __m128 res = _mm_add_ps(
      _mm_fnmadd_ps(_mm_set1_ps(2.0f), cross, _mm_set1_ps(q_norm_sq)),
      vrecon);
  _mm_storeu_ps(out, res);
}

// AVX-512 tier: one vpmovzxbd widens 16 codes (vs 8), and the dual 512-bit
// FMA units halve the multiply-add uops per element. Eight rows per block
// keeps eight independent chains in flight and amortises the shared query
// loads and the per-slot epilogue across the block.
__attribute__((target("avx512f,avx2,fma"))) void adc_l2_sq_gather_avx512(
    std::span<const float> q, float q_norm_sq, float q_sum,
    const std::uint8_t* code_arena, const float* offsets, const float* scales,
    const float* recon_norm_sqs, std::span<const std::uint32_t> slots,
    float* out) noexcept {
  const std::size_t dim = q.size();
  const float* qp = q.data();
  std::size_t i = 0;
  if (dim % 16 == 0) {
    for (; i + 8 <= slots.size(); i += 8) {
      const std::uint8_t* r0 =
          code_arena + static_cast<std::size_t>(slots[i + 0]) * dim;
      const std::uint8_t* r1 =
          code_arena + static_cast<std::size_t>(slots[i + 1]) * dim;
      const std::uint8_t* r2 =
          code_arena + static_cast<std::size_t>(slots[i + 2]) * dim;
      const std::uint8_t* r3 =
          code_arena + static_cast<std::size_t>(slots[i + 3]) * dim;
      const std::uint8_t* r4 =
          code_arena + static_cast<std::size_t>(slots[i + 4]) * dim;
      const std::uint8_t* r5 =
          code_arena + static_cast<std::size_t>(slots[i + 5]) * dim;
      const std::uint8_t* r6 =
          code_arena + static_cast<std::size_t>(slots[i + 6]) * dim;
      const std::uint8_t* r7 =
          code_arena + static_cast<std::size_t>(slots[i + 7]) * dim;
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps();
      __m512 a3 = _mm512_setzero_ps();
      __m512 a4 = _mm512_setzero_ps();
      __m512 a5 = _mm512_setzero_ps();
      __m512 a6 = _mm512_setzero_ps();
      __m512 a7 = _mm512_setzero_ps();
      for (std::size_t j = 0; j < dim; j += 16) {
        const __m512 qv = _mm512_loadu_ps(qp + j);
        a0 = _mm512_fmadd_ps(qv, widen16_avx512(r0 + j), a0);
        a1 = _mm512_fmadd_ps(qv, widen16_avx512(r1 + j), a1);
        a2 = _mm512_fmadd_ps(qv, widen16_avx512(r2 + j), a2);
        a3 = _mm512_fmadd_ps(qv, widen16_avx512(r3 + j), a3);
        a4 = _mm512_fmadd_ps(qv, widen16_avx512(r4 + j), a4);
        a5 = _mm512_fmadd_ps(qv, widen16_avx512(r5 + j), a5);
        a6 = _mm512_fmadd_ps(qv, widen16_avx512(r6 + j), a6);
        a7 = _mm512_fmadd_ps(qv, widen16_avx512(r7 + j), a7);
      }
      adc_epilogue4_avx512(a0, a1, a2, a3, slots.data() + i, offsets, scales,
                           recon_norm_sqs, q_norm_sq, q_sum, out + i);
      adc_epilogue4_avx512(a4, a5, a6, a7, slots.data() + i + 4, offsets,
                           scales, recon_norm_sqs, q_norm_sq, q_sum,
                           out + i + 4);
    }
  }
  for (; i < slots.size(); ++i) {
    const std::uint32_t slot = slots[i];
    const float d = dot_u8_avx2(
        qp, code_arena + static_cast<std::size_t>(slot) * dim, dim);
    const float cross = offsets[slot] * q_sum + scales[slot] * d;
    out[i] = q_norm_sq - 2.0f * cross + recon_norm_sqs[slot];
  }
}

#pragma GCC diagnostic pop

bool cpu_has_avx2_fma() noexcept {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool cpu_has_avx512() noexcept {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") && cpu_has_avx2_fma();
}

#endif  // APX_SQ8_X86_DISPATCH

}  // namespace

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return dot_kernel(a.data(), b.data(), a.size());
}

float l2_sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  return l2_sq_kernel(a.data(), b.data(), a.size());
}

float l2(std::span<const float> a, std::span<const float> b) noexcept {
  return std::sqrt(l2_sq(a, b));
}

float norm(std::span<const float> a) noexcept {
  return std::sqrt(dot(a, a));
}

float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  // One fused pass: dot and both norms share the loads.
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  const std::size_t n = a.size();
  float ab0 = 0.0f, ab1 = 0.0f, ab2 = 0.0f, ab3 = 0.0f;
  float aa0 = 0.0f, aa1 = 0.0f, aa2 = 0.0f, aa3 = 0.0f;
  float bb0 = 0.0f, bb1 = 0.0f, bb2 = 0.0f, bb3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ab0 += pa[i + 0] * pb[i + 0];
    ab1 += pa[i + 1] * pb[i + 1];
    ab2 += pa[i + 2] * pb[i + 2];
    ab3 += pa[i + 3] * pb[i + 3];
    aa0 += pa[i + 0] * pa[i + 0];
    aa1 += pa[i + 1] * pa[i + 1];
    aa2 += pa[i + 2] * pa[i + 2];
    aa3 += pa[i + 3] * pa[i + 3];
    bb0 += pb[i + 0] * pb[i + 0];
    bb1 += pb[i + 1] * pb[i + 1];
    bb2 += pb[i + 2] * pb[i + 2];
    bb3 += pb[i + 3] * pb[i + 3];
  }
  float ab = (ab0 + ab1) + (ab2 + ab3);
  float aa = (aa0 + aa1) + (aa2 + aa3);
  float bb = (bb0 + bb1) + (bb2 + bb3);
  for (; i < n; ++i) {
    ab += pa[i] * pb[i];
    aa += pa[i] * pa[i];
    bb += pb[i] * pb[i];
  }
  const float na = std::sqrt(aa);
  const float nb = std::sqrt(bb);
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - ab / (na * nb);
}

void normalize(std::span<float> v) noexcept {
  const float n = norm(v);
  if (n == 0.0f) return;
  scale_in_place(v, 1.0f / n);
}

void add_in_place(std::span<float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void scale_in_place(std::span<float> a, float s) noexcept {
  for (float& x : a) x *= s;
}

void dot_batch(std::span<const float> q, const float* rows, std::size_t n,
               float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = dot_kernel(q.data(), rows + i * dim, dim);
  }
}

void l2_sq_batch(std::span<const float> q, const float* rows, std::size_t n,
                 float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = l2_sq_kernel(q.data(), rows + i * dim, dim);
  }
}

void l2_sq_gather(std::span<const float> q, const float* arena,
                  std::span<const std::uint32_t> slots, float* out) noexcept {
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out[i] = l2_sq_kernel(q.data(), arena + slots[i] * dim, dim);
  }
}

float dot_u8(std::span<const float> a, const std::uint8_t* codes) noexcept {
#if APX_SQ8_X86_DISPATCH
  static const bool kAvx2 = cpu_has_avx2_fma();
  if (kAvx2) return dot_u8_avx2(a.data(), codes, a.size());
#endif
  return dot_u8_kernel(a.data(), codes, a.size());
}

void adc_l2_sq_gather(std::span<const float> q, float q_norm_sq, float q_sum,
                      const std::uint8_t* code_arena, const float* offsets,
                      const float* scales, const float* recon_norm_sqs,
                      std::span<const std::uint32_t> slots,
                      float* out) noexcept {
#if APX_SQ8_X86_DISPATCH
  static const bool kAvx512 = cpu_has_avx512();
  if (kAvx512) {
    adc_l2_sq_gather_avx512(q, q_norm_sq, q_sum, code_arena, offsets, scales,
                            recon_norm_sqs, slots, out);
    return;
  }
  static const bool kAvx2 = cpu_has_avx2_fma();
  if (kAvx2) {
    adc_l2_sq_gather_avx2(q, q_norm_sq, q_sum, code_arena, offsets, scales,
                          recon_norm_sqs, slots, out);
    return;
  }
#endif
  const std::size_t dim = q.size();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint32_t slot = slots[i];
    const float d = dot_u8_kernel(
        q.data(), code_arena + static_cast<std::size_t>(slot) * dim, dim);
    const float cross = offsets[slot] * q_sum + scales[slot] * d;
    out[i] = q_norm_sq - 2.0f * cross + recon_norm_sqs[slot];
  }
}

namespace ref {

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

float l2_sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float cosine_distance(std::span<const float> a,
                      std::span<const float> b) noexcept {
  const float na = std::sqrt(ref::dot(a, a));
  const float nb = std::sqrt(ref::dot(b, b));
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - ref::dot(a, b) / (na * nb);
}

}  // namespace ref

}  // namespace apx

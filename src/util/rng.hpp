#pragma once
// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component in the library takes an explicit Rng (or a seed)
// instead of touching global state, so that a whole multi-device experiment
// is a pure function of its configuration. The generator is xoshiro256**,
// seeded via SplitMix64 as its authors recommend.

#include <array>
#include <cstdint>
#include <vector>

namespace apx {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience distributions.
///
/// Not a C++ UniformRandomBitGenerator on purpose: the standard library's
/// distributions are implementation-defined, which would make results differ
/// across standard libraries. All distributions here are hand-rolled and
/// stable across platforms.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is unbiased.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; stable given call order.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent s.
///
/// Rank 0 is the most popular item. Uses the inverse-CDF method over a
/// precomputed table (O(log n) per sample), exact for our n (<= millions).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of rank `r`.
  double pmf(std::size_t r) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace apx

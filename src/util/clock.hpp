#pragma once
// Simulated-time primitives. All latencies and timestamps in the library are
// expressed in simulated microseconds (SimTime), fully decoupled from wall
// clock so experiments are deterministic and fast.

#include <cstdint>

namespace apx {

/// Simulated time in microseconds since the start of an experiment.
using SimTime = std::int64_t;

/// Simulated duration in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1'000'000;

constexpr double to_ms(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration from_ms(double ms) noexcept {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

}  // namespace apx

#pragma once
// Small fixed-size thread pool with a blocking parallel_for.
//
// Scope: coarse-grained, deterministic-output parallelism — independent
// simulation shards, batch feature extraction, conv-row partitioning. Tasks
// must write disjoint state; the pool guarantees nothing about execution
// order, so anything that needs a deterministic result must make each
// task's output independent of scheduling (the callers in this repo index
// results by slot and merge in a fixed order).
//
// parallel_for blocks the caller and has the caller thread participate in
// chunk processing, so a pool of size 0 (or a single-core machine) degrades
// to a plain sequential loop with no queueing overhead.

#include <cstddef>
#include <functional>

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace apx {

/// Fixed-size worker pool. Threads start in the constructor and join in the
/// destructor; submitted tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 is valid: submit() runs inline and
  /// parallel_for degrades to a sequential loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 for an inline pool).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn` for asynchronous execution (inline when size() == 0).
  void submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Runs body(begin, end) over [begin, end) split into chunks of at most
  /// `grain` items, spread across the workers plus the calling thread.
  /// Blocks until the whole range is done. Chunks are disjoint, so the
  /// result is deterministic whenever `body` writes only to its own range.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// A reasonable pool width for this machine: hardware_concurrency - 1
  /// workers (the caller participates), at least 0.
  static std::size_t default_workers() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;   // workers wait for tasks
  std::condition_variable cv_idle_;   // wait_idle waits for drain
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace apx

#pragma once
// Minimal leveled logging. Off by default so simulation output stays clean;
// examples and debugging turn it up explicitly.

#include <cstdio>
#include <string>

namespace apx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level emitted (default kOff).
void set_log_level(LogLevel level) noexcept;

/// Current global level.
LogLevel log_level() noexcept;

/// Writes one formatted line to stderr if `level` passes the global filter.
void log_line(LogLevel level, const std::string& msg);

}  // namespace apx

#define APX_LOG(level, msg)                                 \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::apx::log_level())) {             \
      ::apx::log_line(level, (msg));                        \
    }                                                       \
  } while (0)

#define APX_DEBUG(msg) APX_LOG(::apx::LogLevel::kDebug, msg)
#define APX_INFO(msg) APX_LOG(::apx::LogLevel::kInfo, msg)
#define APX_WARN(msg) APX_LOG(::apx::LogLevel::kWarn, msg)
#define APX_ERROR(msg) APX_LOG(::apx::LogLevel::kError, msg)

#pragma once
// Aligned-column text tables for benchmark and experiment output.

#include <string>
#include <vector>

namespace apx {

/// Accumulates rows of strings and renders an aligned plain-text table,
/// matching the row/column layout the reproduced exhibits report.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with two-space column gaps and a dashed rule under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apx

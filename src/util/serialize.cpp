#include "src/util/serialize.hpp"

#include <bit>
#include <limits>

namespace apx {
namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }
void Writer::u16(std::uint16_t v) { append_le(buf_, v); }
void Writer::u32(std::uint32_t v) { append_le(buf_, v); }
void Writer::u64(std::uint64_t v) { append_le(buf_, v); }
void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void Writer::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::str(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::f32_vec(std::span<const float> v) {
  varint(v.size());
  for (float x : v) f32(x);
}

void Writer::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("buffer underflow");
}

template <typename T>
T Reader::fixed() {
  need(sizeof(T));
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
  }
  pos_ += sizeof(T);
  return v;
}

std::uint8_t Reader::u8() { return fixed<std::uint8_t>(); }
std::uint16_t Reader::u16() { return fixed<std::uint16_t>(); }
std::uint32_t Reader::u32() { return fixed<std::uint32_t>(); }
std::uint64_t Reader::u64() { return fixed<std::uint64_t>(); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }
float Reader::f32() { return std::bit_cast<float>(u32()); }
double Reader::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7e) != 0) throw CodecError("varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw CodecError("varint too long");
  }
  return v;
}

std::string Reader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> Reader::f32_vec() {
  const std::uint64_t n = varint();
  if (n > remaining() / sizeof(float)) throw CodecError("vector too long");
  std::vector<float> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f32());
  return v;
}

}  // namespace apx

#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace apx {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  assert(n > 0);
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() noexcept { return Rng{next_u64()}; }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // Binary search for the first rank with cdf >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t r) const noexcept {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace apx

#pragma once
// From-scratch convolutional embedding network with fixed random weights.
//
// This plays the role of the "feature layer of a mobile DNN" that
// FoggyCache-style systems tap for cache keys. Random convolutional
// features are a well-studied stand-in (random-weight CNNs preserve
// metric structure well enough for retrieval), and fixed seeded weights
// keep the whole reproduction deterministic with no model files.
//
// Architecture (input resized to 32x32x3):
//   conv3x3(3 -> 8) + ReLU + maxpool2      -> 16x16x8   (stage 1)
//   conv3x3(8 -> 16) + ReLU + maxpool2     -> 8x8x16    (stage 2)
//   conv3x3(16 -> 32) + ReLU               -> 8x8x32    (stage 3)
//   global average pool                    -> 32
//   fully connected (32 -> dim), L2 norm   -> dim
//
// The forward pass is staged (DESIGN.md §11): a ForwardState materializes
// the per-stage activation tensors, and the pass can resume from any stage
// with spliced activations — the seam the region-reuse rung uses to skip
// conv work for unchanged image blocks. embed()/embed_batch() are thin
// wrappers over the same staged path, so the monolithic and staged results
// are the same code, not merely equal.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/image/image.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Deterministic random-weight CNN used as an embedding function.
class MiniCnn {
 public:
  /// Every input is resized to this square side before the forward pass.
  static constexpr int kInputSide = 32;

  using Tensor = std::vector<float>;  // HWC layout

  /// Dimensions of one activation tensor.
  struct StageShape {
    int width = 0;
    int height = 0;
    int channels = 0;
    std::size_t size() const noexcept {
      return static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
             static_cast<std::size_t>(channels);
    }
  };

  /// Static description of the staged forward pass: the tensor shapes a
  /// ForwardState materializes plus each conv stage's multiply-accumulate
  /// count (the honest relative-cost model for partial recomputation).
  struct ForwardPlan {
    StageShape input;   ///< 32x32x3 (post resize/channel expansion)
    StageShape stage1;  ///< post conv1 + pool
    StageShape stage2;  ///< post conv2 + pool
    StageShape stage3;  ///< post conv3 (no pool)
    std::array<double, 3> conv_macs{};  ///< full-resolution MACs per conv
    double total_macs() const noexcept {
      return conv_macs[0] + conv_macs[1] + conv_macs[2];
    }
  };

  /// The plan is a property of the architecture, not of any instance.
  static const ForwardPlan& plan() noexcept;

  /// Reusable scratch for the staged forward pass. All tensors keep their
  /// capacity across frames, so a warmed state runs with zero steady-state
  /// allocations (the PR 1 hot-path discipline).
  struct ForwardState {
    Tensor input;   ///< 32x32x3
    Tensor conv1;   ///< 32x32x8, pre-pool
    Tensor conv2;   ///< 16x16x16, pre-pool
    Tensor stage1;  ///< 16x16x8
    Tensor stage2;  ///< 8x8x16
    Tensor stage3;  ///< 8x8x32
    std::vector<float> pooled;  ///< 32 (global average pool)
  };

  /// What forward_spliced actually recomputed.
  struct SpliceStats {
    int stage1_recomputed = 0;  ///< stage-1 pooled pixels recomputed
    int stage2_recomputed = 0;  ///< stage-2 pooled pixels recomputed
    /// Deepest stage fully satisfied from the cache: 2 when nothing was
    /// dirty (resumed at conv3), 1 when stage-1/2 tiles were partially
    /// recomputed. A full recompute (every pixel dirty) still reports 1 —
    /// depth 0 is the non-spliced forward() path.
    int resume_stage = 0;
  };

  /// `dim` is the embedding size; `seed` fixes the weights.
  explicit MiniCnn(std::size_t dim = 64, std::uint64_t seed = 7);

  /// Embeds `img` (any size; resized internally) into a unit-norm vector.
  /// With a pool, conv layers partition their output rows across workers;
  /// rows are disjoint, so the result is bit-identical to the serial path.
  FeatureVec embed(const Image& img, ThreadPool* pool = nullptr) const;

  /// Embeds a batch of images through the same staged path. Tasks own
  /// contiguous slices and reuse one ForwardState across their images, so
  /// steady-state per-image allocations are zero; results are indexed by
  /// input position, independent of scheduling.
  std::vector<FeatureVec> embed_batch(std::span<const Image> imgs,
                                      ThreadPool* pool = nullptr) const;

  // ------------------------------------------------------- staged forward

  /// Resizes `img` to kInputSide and expands grayscale into state.input.
  void prepare_input(const Image& img, ForwardState& state) const;

  /// Runs the forward pass from `from_stage` (0 = from the input, 1 = the
  /// state's stage1 tensor is valid, 2 = stage2 is valid) plus the head,
  /// leaving every later activation tensor and the embedding in place.
  /// Throws std::invalid_argument when the resumed-from tensor has the
  /// wrong size or from_stage is out of [0, 2].
  void forward(ForwardState& state, int from_stage, FeatureVec& out,
               ThreadPool* pool = nullptr) const;

  /// prepare_input + forward(0): the staged equivalent of embed(), writing
  /// into caller-owned scratch (zero steady-state allocations when warm).
  void embed_into(const Image& img, ForwardState& state, FeatureVec& out,
                  ThreadPool* pool = nullptr) const;

  /// Splices cached stage-1/stage-2 activations and recomputes only the
  /// pooled pixels flagged dirty: `stage1_mask` (16x16) and `stage2_mask`
  /// (8x8) come from propagate_dirty over the changed input pixels. With an
  /// empty stage-1 mask the pass resumes at conv3 from the cached stage-2
  /// tensor. state.input must hold the current frame (prepare_input). The
  /// recomputation replays the full conv's per-pixel accumulation order, so
  /// the result is bit-identical to forward(state, 0, ...) whenever every
  /// pixel that actually differs from the cached frame is flagged.
  /// On return state.stage1/stage2/stage3 hold the complete (spliced +
  /// recomputed) activations of the current frame.
  SpliceStats forward_spliced(ForwardState& state, const Tensor& cached_stage1,
                              const Tensor& cached_stage2,
                              std::span<const std::uint8_t> stage1_mask,
                              std::span<const std::uint8_t> stage2_mask,
                              FeatureVec& out) const;

  /// Propagates a dirty mask through one conv3x3 + maxpool2 stage: output
  /// pixel (px, py) is dirty when any input pixel in the 4x4 footprint
  /// [2px-1, 2px+2] x [2py-1, 2py+2] (the 2x2 pool window dilated by the
  /// conv's 1-pixel halo, clipped to the image — clamp padding reads no
  /// farther) is dirty. `in` is width x height, `out` (width/2) x (height/2).
  static void propagate_dirty(std::span<const std::uint8_t> in, int width,
                              int height, std::span<std::uint8_t> out);

  std::size_t dim() const noexcept { return dim_; }

  /// Number of scalar weights (for reporting / sanity tests).
  std::size_t parameter_count() const noexcept;

 private:
  struct ConvLayer {
    int in_channels = 0;
    int out_channels = 0;
    std::vector<float> weights;  // [out][in][3][3]
    std::vector<float> bias;     // [out]
  };

  static void conv3x3_relu_into(const Tensor& in, int width, int height,
                                const ConvLayer& layer, ThreadPool* pool,
                                Tensor& out);
  static void maxpool2_into(const Tensor& in, int width, int height,
                            int channels, Tensor& out);
  /// All output channels of one conv output pixel, replaying the full
  /// conv's accumulation order exactly (bit-identity of recomputed pixels).
  static void conv_pixel(const Tensor& in, int width, int height,
                         const ConvLayer& layer, int x, int y,
                         std::span<float> out);
  /// Recomputes the flagged pooled pixels of a conv+pool stage in place.
  static void recompute_pooled(const Tensor& in, int in_width, int in_height,
                               const ConvLayer& layer,
                               std::span<const std::uint8_t> mask,
                               Tensor& stage);
  /// Global average pool + FC + L2 normalization over state.stage3.
  void head(ForwardState& state, FeatureVec& out) const;

  std::size_t dim_;
  ConvLayer conv1_, conv2_, conv3_;
  std::vector<float> fc_weights_;  // [dim][32]
  std::vector<float> fc_bias_;     // [dim]
};

}  // namespace apx

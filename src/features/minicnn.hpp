#pragma once
// From-scratch convolutional embedding network with fixed random weights.
//
// This plays the role of the "feature layer of a mobile DNN" that
// FoggyCache-style systems tap for cache keys. Random convolutional
// features are a well-studied stand-in (random-weight CNNs preserve
// metric structure well enough for retrieval), and fixed seeded weights
// keep the whole reproduction deterministic with no model files.
//
// Architecture (input resized to 32x32x3):
//   conv3x3(3 -> 8) + ReLU + maxpool2      -> 16x16x8
//   conv3x3(8 -> 16) + ReLU + maxpool2     -> 8x8x16
//   conv3x3(16 -> 32) + ReLU               -> 8x8x32
//   global average pool                    -> 32
//   fully connected (32 -> dim), L2 norm   -> dim

#include <cstdint>
#include <span>
#include <vector>

#include "src/image/image.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// Deterministic random-weight CNN used as an embedding function.
class MiniCnn {
 public:
  /// `dim` is the embedding size; `seed` fixes the weights.
  explicit MiniCnn(std::size_t dim = 64, std::uint64_t seed = 7);

  /// Embeds `img` (any size; resized internally) into a unit-norm vector.
  /// With a pool, conv layers partition their output rows across workers;
  /// rows are disjoint, so the result is bit-identical to the serial path.
  FeatureVec embed(const Image& img, ThreadPool* pool = nullptr) const;

  /// Embeds a batch of images, one parallel_for task per image (the
  /// coarser and usually better-scaling grain than per-row). Results are
  /// indexed by input position, independent of scheduling.
  std::vector<FeatureVec> embed_batch(std::span<const Image> imgs,
                                      ThreadPool* pool = nullptr) const;

  std::size_t dim() const noexcept { return dim_; }

  /// Number of scalar weights (for reporting / sanity tests).
  std::size_t parameter_count() const noexcept;

 private:
  struct ConvLayer {
    int in_channels = 0;
    int out_channels = 0;
    std::vector<float> weights;  // [out][in][3][3]
    std::vector<float> bias;     // [out]
  };

  using Tensor = std::vector<float>;  // HWC layout

  static Tensor conv3x3_relu(const Tensor& in, int width, int height,
                             const ConvLayer& layer, ThreadPool* pool);
  static Tensor maxpool2(const Tensor& in, int width, int height,
                         int channels);

  std::size_t dim_;
  ConvLayer conv1_, conv2_, conv3_;
  std::vector<float> fc_weights_;  // [dim][32]
  std::vector<float> fc_bias_;     // [dim]
};

}  // namespace apx

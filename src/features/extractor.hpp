#pragma once
// Feature extraction turns a frame into the fixed-dimension float vector
// that keys the approximate cache. Extractors also carry the simulated
// on-device latency of running them, so the pipeline can account for the
// hit-path cost honestly (a cache hit still pays for feature extraction).

#include <memory>
#include <string>

#include "src/image/image.hpp"
#include "src/util/clock.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

class MiniCnn;

/// Interface for image -> feature-vector transforms.
///
/// Implementations must be deterministic: the same image always maps to the
/// same vector (cache correctness depends on it).
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Human-readable identifier ("downsample", "cnn-embed", ...).
  virtual const std::string& name() const noexcept = 0;

  /// Output dimensionality; constant over the extractor's lifetime.
  virtual std::size_t dim() const noexcept = 0;

  /// Extracts the (L2-normalized) feature vector for `img`.
  virtual FeatureVec extract(const Image& img) const = 0;

  /// Simulated on-device latency of one extraction.
  virtual SimDuration latency() const noexcept = 0;

  /// Recommended H-kNN max_distance for this extractor's metric geometry:
  /// above the typical intra-class distance of nearby views, below the
  /// minimum inter-class distance (values measured on the synthetic world;
  /// a real deployment would calibrate the same way on its own data).
  virtual float recommended_max_distance() const noexcept = 0;

  /// The staged-forward CNN behind this extractor when there is one (see
  /// minicnn.hpp); the region-reuse rung needs the staged API to splice
  /// cached activations. Null for closed-form extractors.
  virtual const MiniCnn* staged_cnn() const noexcept { return nullptr; }
};

/// Factory helpers (definitions in the respective .cpp files).

/// Grayscale `side`x`side` downsample, flattened and L2-normalized.
std::unique_ptr<FeatureExtractor> make_downsample_extractor(
    int side = 8, SimDuration latency = 1 * kMillisecond);

/// Per-channel intensity histogram with `bins` bins per channel.
std::unique_ptr<FeatureExtractor> make_histogram_extractor(
    int bins = 16, SimDuration latency = 2 * kMillisecond);

/// HOG-style gradient-orientation histogram over a `cells`x`cells` grid.
std::unique_ptr<FeatureExtractor> make_hog_extractor(
    int cells = 4, int orientations = 8,
    SimDuration latency = 4 * kMillisecond);

/// Fixed-random-weight convolutional embedding network (see minicnn.hpp).
std::unique_ptr<FeatureExtractor> make_cnn_extractor(
    std::size_t dim = 64, std::uint64_t seed = 7,
    SimDuration latency = 8 * kMillisecond);

}  // namespace apx

// Downsample, histogram, and HOG extractors. All outputs are L2-normalized
// so Euclidean and cosine similarity agree up to a monotone transform.

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/features/extractor.hpp"
#include "src/image/diff.hpp"

namespace apx {
namespace {

class DownsampleExtractor final : public FeatureExtractor {
 public:
  DownsampleExtractor(int side, SimDuration latency)
      : side_(side), latency_(latency), name_("downsample") {
    if (side <= 0) throw std::invalid_argument("downsample: side <= 0");
  }

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim() const noexcept override {
    return static_cast<std::size_t>(side_) * static_cast<std::size_t>(side_);
  }
  SimDuration latency() const noexcept override { return latency_; }
  float recommended_max_distance() const noexcept override { return 0.45f; }

  FeatureVec extract(const Image& img) const override {
    const Image small = downsample_gray(img, side_);
    FeatureVec v(small.data().begin(), small.data().end());
    normalize(v);
    return v;
  }

 private:
  int side_;
  SimDuration latency_;
  std::string name_;
};

class HistogramExtractor final : public FeatureExtractor {
 public:
  HistogramExtractor(int bins, SimDuration latency)
      : bins_(bins), latency_(latency), name_("histogram") {
    if (bins <= 0) throw std::invalid_argument("histogram: bins <= 0");
  }

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim() const noexcept override {
    return static_cast<std::size_t>(bins_) * 3;
  }
  SimDuration latency() const noexcept override { return latency_; }
  float recommended_max_distance() const noexcept override { return 0.25f; }

  FeatureVec extract(const Image& img) const override {
    FeatureVec v(dim(), 0.0f);
    const int chans = img.channels();
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        for (int c = 0; c < 3; ++c) {
          const float value = img.at(x, y, std::min(c, chans - 1));
          int bin = static_cast<int>(value * static_cast<float>(bins_));
          bin = std::clamp(bin, 0, bins_ - 1);
          v[static_cast<std::size_t>(c * bins_ + bin)] += 1.0f;
        }
      }
    }
    normalize(v);
    return v;
  }

 private:
  int bins_;
  SimDuration latency_;
  std::string name_;
};

class HogExtractor final : public FeatureExtractor {
 public:
  HogExtractor(int cells, int orientations, SimDuration latency)
      : cells_(cells),
        orientations_(orientations),
        latency_(latency),
        name_("hog") {
    if (cells <= 0 || orientations <= 0) {
      throw std::invalid_argument("hog: bad parameters");
    }
  }

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim() const noexcept override {
    return static_cast<std::size_t>(cells_) * static_cast<std::size_t>(cells_) *
           static_cast<std::size_t>(orientations_);
  }
  SimDuration latency() const noexcept override { return latency_; }
  float recommended_max_distance() const noexcept override { return 0.65f; }

  FeatureVec extract(const Image& img) const override {
    const Image gray = img.to_gray();
    FeatureVec v(dim(), 0.0f);
    const int w = gray.width();
    const int h = gray.height();
    for (int y = 1; y + 1 < h; ++y) {
      for (int x = 1; x + 1 < w; ++x) {
        const float gx = gray.at(x + 1, y, 0) - gray.at(x - 1, y, 0);
        const float gy = gray.at(x, y + 1, 0) - gray.at(x, y - 1, 0);
        const float mag = std::sqrt(gx * gx + gy * gy);
        if (mag <= 1e-8f) continue;
        // Unsigned orientation in [0, pi).
        float angle = std::atan2(gy, gx);
        if (angle < 0.0f) angle += std::numbers::pi_v<float>;
        int bin = static_cast<int>(angle / std::numbers::pi_v<float> *
                                   static_cast<float>(orientations_));
        bin = std::clamp(bin, 0, orientations_ - 1);
        const int cx = std::min(x * cells_ / w, cells_ - 1);
        const int cy = std::min(y * cells_ / h, cells_ - 1);
        v[static_cast<std::size_t>((cy * cells_ + cx) * orientations_ + bin)] +=
            mag;
      }
    }
    normalize(v);
    return v;
  }

 private:
  int cells_;
  int orientations_;
  SimDuration latency_;
  std::string name_;
};

}  // namespace

std::unique_ptr<FeatureExtractor> make_downsample_extractor(
    int side, SimDuration latency) {
  return std::make_unique<DownsampleExtractor>(side, latency);
}

std::unique_ptr<FeatureExtractor> make_histogram_extractor(
    int bins, SimDuration latency) {
  return std::make_unique<HistogramExtractor>(bins, latency);
}

std::unique_ptr<FeatureExtractor> make_hog_extractor(int cells,
                                                     int orientations,
                                                     SimDuration latency) {
  return std::make_unique<HogExtractor>(cells, orientations, latency);
}

}  // namespace apx

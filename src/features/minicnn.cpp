#include "src/features/minicnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/features/extractor.hpp"
#include "src/util/rng.hpp"

namespace apx {
namespace {

constexpr int kInputSide = 32;

void init_conv(Rng& rng, int in_ch, int out_ch, MiniCnn* /*unused*/,
               std::vector<float>& weights, std::vector<float>& bias) {
  // He-style initialization keeps activations in a sane range through depth.
  const double stddev = std::sqrt(2.0 / (9.0 * in_ch));
  weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
  for (float& w : weights) w = static_cast<float>(rng.normal(0.0, stddev));
  bias.assign(static_cast<std::size_t>(out_ch), 0.0f);
}

}  // namespace

MiniCnn::MiniCnn(std::size_t dim, std::uint64_t seed) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("MiniCnn: dim == 0");
  Rng rng{seed};
  conv1_.in_channels = 3;
  conv1_.out_channels = 8;
  init_conv(rng, 3, 8, this, conv1_.weights, conv1_.bias);
  conv2_.in_channels = 8;
  conv2_.out_channels = 16;
  init_conv(rng, 8, 16, this, conv2_.weights, conv2_.bias);
  conv3_.in_channels = 16;
  conv3_.out_channels = 32;
  init_conv(rng, 16, 32, this, conv3_.weights, conv3_.bias);

  const double fc_stddev = std::sqrt(2.0 / 32.0);
  fc_weights_.resize(dim * 32);
  for (float& w : fc_weights_) {
    w = static_cast<float>(rng.normal(0.0, fc_stddev));
  }
  fc_bias_.assign(dim, 0.0f);
}

std::size_t MiniCnn::parameter_count() const noexcept {
  return conv1_.weights.size() + conv1_.bias.size() + conv2_.weights.size() +
         conv2_.bias.size() + conv3_.weights.size() + conv3_.bias.size() +
         fc_weights_.size() + fc_bias_.size();
}

MiniCnn::Tensor MiniCnn::conv3x3_relu(const Tensor& in, int width, int height,
                                      const ConvLayer& layer,
                                      ThreadPool* pool) {
  const int in_ch = layer.in_channels;
  const int out_ch = layer.out_channels;
  Tensor out(static_cast<std::size_t>(width) * height * out_ch, 0.0f);
  auto rows = [&](std::size_t y_begin, std::size_t y_end) {
    for (int y = static_cast<int>(y_begin); y < static_cast<int>(y_end); ++y) {
    for (int x = 0; x < width; ++x) {
      for (int oc = 0; oc < out_ch; ++oc) {
        float acc = layer.bias[static_cast<std::size_t>(oc)];
        for (int ky = -1; ky <= 1; ++ky) {
          const int sy = std::clamp(y + ky, 0, height - 1);
          for (int kx = -1; kx <= 1; ++kx) {
            const int sx = std::clamp(x + kx, 0, width - 1);
            const std::size_t in_base =
                (static_cast<std::size_t>(sy) * width + sx) * in_ch;
            const std::size_t w_base =
                ((static_cast<std::size_t>(oc) * in_ch) * 9) +
                static_cast<std::size_t>((ky + 1) * 3 + (kx + 1));
            for (int ic = 0; ic < in_ch; ++ic) {
              acc += in[in_base + static_cast<std::size_t>(ic)] *
                     layer.weights[w_base + static_cast<std::size_t>(ic) * 9];
            }
          }
        }
        out[(static_cast<std::size_t>(y) * width + x) * out_ch +
            static_cast<std::size_t>(oc)] = std::max(acc, 0.0f);
      }
    }
    }
  };
  if (pool != nullptr && pool->size() > 0 && height >= 8) {
    // Each task owns a disjoint band of output rows (halo reads overlap,
    // writes never do), so the result matches the serial loop bit for bit.
    pool->parallel_for(0, static_cast<std::size_t>(height), /*grain=*/4,
                       rows);
  } else {
    rows(0, static_cast<std::size_t>(height));
  }
  return out;
}

MiniCnn::Tensor MiniCnn::maxpool2(const Tensor& in, int width, int height,
                                  int channels) {
  const int ow = width / 2;
  const int oh = height / 2;
  Tensor out(static_cast<std::size_t>(ow) * oh * channels, 0.0f);
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x) {
      for (int c = 0; c < channels; ++c) {
        float m = -1e30f;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t idx =
                (static_cast<std::size_t>(y * 2 + dy) * width + (x * 2 + dx)) *
                    channels +
                static_cast<std::size_t>(c);
            m = std::max(m, in[idx]);
          }
        }
        out[(static_cast<std::size_t>(y) * ow + x) * channels +
            static_cast<std::size_t>(c)] = m;
      }
    }
  }
  return out;
}

FeatureVec MiniCnn::embed(const Image& img, ThreadPool* pool) const {
  Image input = img;
  if (input.width() != kInputSide || input.height() != kInputSide) {
    input = input.resized(kInputSide, kInputSide);
  }
  // Expand grayscale to 3 channels.
  Tensor t(static_cast<std::size_t>(kInputSide) * kInputSide * 3, 0.0f);
  for (int y = 0; y < kInputSide; ++y) {
    for (int x = 0; x < kInputSide; ++x) {
      for (int c = 0; c < 3; ++c) {
        t[(static_cast<std::size_t>(y) * kInputSide + x) * 3 +
          static_cast<std::size_t>(c)] =
            input.at(x, y, std::min(c, input.channels() - 1));
      }
    }
  }

  int w = kInputSide, h = kInputSide;
  t = conv3x3_relu(t, w, h, conv1_, pool);
  t = maxpool2(t, w, h, conv1_.out_channels);
  w /= 2;
  h /= 2;
  t = conv3x3_relu(t, w, h, conv2_, pool);
  t = maxpool2(t, w, h, conv2_.out_channels);
  w /= 2;
  h /= 2;
  t = conv3x3_relu(t, w, h, conv3_, pool);

  // Global average pool.
  std::vector<float> pooled(32, 0.0f);
  const int pixels = w * h;
  for (int p = 0; p < pixels; ++p) {
    for (int c = 0; c < 32; ++c) {
      pooled[static_cast<std::size_t>(c)] +=
          t[static_cast<std::size_t>(p) * 32 + static_cast<std::size_t>(c)];
    }
  }
  for (float& v : pooled) v /= static_cast<float>(pixels);

  FeatureVec out(dim_, 0.0f);
  for (std::size_t d = 0; d < dim_; ++d) {
    float acc = fc_bias_[d];
    for (std::size_t c = 0; c < 32; ++c) {
      acc += fc_weights_[d * 32 + c] * pooled[c];
    }
    out[d] = acc;
  }
  normalize(out);
  return out;
}

std::vector<FeatureVec> MiniCnn::embed_batch(std::span<const Image> imgs,
                                             ThreadPool* pool) const {
  std::vector<FeatureVec> out(imgs.size());
  if (pool == nullptr || pool->size() == 0 || imgs.size() < 2) {
    for (std::size_t i = 0; i < imgs.size(); ++i) out[i] = embed(imgs[i]);
    return out;
  }
  // One image per task: images are independent and each result lands in its
  // own slot, so scheduling order cannot affect the output.
  pool->parallel_for(0, imgs.size(), /*grain=*/1,
                     [this, imgs, &out](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         out[i] = embed(imgs[i]);
                       }
                     });
  return out;
}

namespace {

class CnnExtractor final : public FeatureExtractor {
 public:
  CnnExtractor(std::size_t dim, std::uint64_t seed, SimDuration latency)
      : cnn_(dim, seed), latency_(latency), name_("cnn-embed") {}

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim() const noexcept override { return cnn_.dim(); }
  SimDuration latency() const noexcept override { return latency_; }
  float recommended_max_distance() const noexcept override { return 0.045f; }
  FeatureVec extract(const Image& img) const override {
    return cnn_.embed(img);
  }

 private:
  MiniCnn cnn_;
  SimDuration latency_;
  std::string name_;
};

}  // namespace

std::unique_ptr<FeatureExtractor> make_cnn_extractor(std::size_t dim,
                                                     std::uint64_t seed,
                                                     SimDuration latency) {
  return std::make_unique<CnnExtractor>(dim, seed, latency);
}

}  // namespace apx

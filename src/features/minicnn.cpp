#include "src/features/minicnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/features/extractor.hpp"
#include "src/util/rng.hpp"

namespace apx {
namespace {

void init_conv(Rng& rng, int in_ch, int out_ch, MiniCnn* /*unused*/,
               std::vector<float>& weights, std::vector<float>& bias) {
  // He-style initialization keeps activations in a sane range through depth.
  const double stddev = std::sqrt(2.0 / (9.0 * in_ch));
  weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
  for (float& w : weights) w = static_cast<float>(rng.normal(0.0, stddev));
  bias.assign(static_cast<std::size_t>(out_ch), 0.0f);
}

void check_size(const MiniCnn::Tensor& t, const MiniCnn::StageShape& shape,
                const char* what) {
  if (t.size() != shape.size()) {
    throw std::invalid_argument(std::string("MiniCnn: ") + what +
                                " tensor has the wrong size");
  }
}

}  // namespace

const MiniCnn::ForwardPlan& MiniCnn::plan() noexcept {
  static const ForwardPlan p = [] {
    ForwardPlan out;
    out.input = {kInputSide, kInputSide, 3};
    out.stage1 = {kInputSide / 2, kInputSide / 2, 8};
    out.stage2 = {kInputSide / 4, kInputSide / 4, 16};
    out.stage3 = {kInputSide / 4, kInputSide / 4, 32};
    // MACs = output pixels * out_channels * 9 taps * in_channels.
    out.conv_macs = {
        static_cast<double>(out.input.width) * out.input.height * 8 * 9 * 3,
        static_cast<double>(out.stage1.width) * out.stage1.height * 16 * 9 * 8,
        static_cast<double>(out.stage2.width) * out.stage2.height * 32 * 9 * 16,
    };
    return out;
  }();
  return p;
}

MiniCnn::MiniCnn(std::size_t dim, std::uint64_t seed) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("MiniCnn: dim == 0");
  Rng rng{seed};
  conv1_.in_channels = 3;
  conv1_.out_channels = 8;
  init_conv(rng, 3, 8, this, conv1_.weights, conv1_.bias);
  conv2_.in_channels = 8;
  conv2_.out_channels = 16;
  init_conv(rng, 8, 16, this, conv2_.weights, conv2_.bias);
  conv3_.in_channels = 16;
  conv3_.out_channels = 32;
  init_conv(rng, 16, 32, this, conv3_.weights, conv3_.bias);

  const double fc_stddev = std::sqrt(2.0 / 32.0);
  fc_weights_.resize(dim * 32);
  for (float& w : fc_weights_) {
    w = static_cast<float>(rng.normal(0.0, fc_stddev));
  }
  fc_bias_.assign(dim, 0.0f);
}

std::size_t MiniCnn::parameter_count() const noexcept {
  return conv1_.weights.size() + conv1_.bias.size() + conv2_.weights.size() +
         conv2_.bias.size() + conv3_.weights.size() + conv3_.bias.size() +
         fc_weights_.size() + fc_bias_.size();
}

void MiniCnn::conv3x3_relu_into(const Tensor& in, int width, int height,
                                const ConvLayer& layer, ThreadPool* pool,
                                Tensor& out) {
  const int in_ch = layer.in_channels;
  const int out_ch = layer.out_channels;
  out.resize(static_cast<std::size_t>(width) * height * out_ch);
  auto rows = [&](std::size_t y_begin, std::size_t y_end) {
    for (int y = static_cast<int>(y_begin); y < static_cast<int>(y_end); ++y) {
    for (int x = 0; x < width; ++x) {
      for (int oc = 0; oc < out_ch; ++oc) {
        float acc = layer.bias[static_cast<std::size_t>(oc)];
        for (int ky = -1; ky <= 1; ++ky) {
          const int sy = std::clamp(y + ky, 0, height - 1);
          for (int kx = -1; kx <= 1; ++kx) {
            const int sx = std::clamp(x + kx, 0, width - 1);
            const std::size_t in_base =
                (static_cast<std::size_t>(sy) * width + sx) * in_ch;
            const std::size_t w_base =
                ((static_cast<std::size_t>(oc) * in_ch) * 9) +
                static_cast<std::size_t>((ky + 1) * 3 + (kx + 1));
            for (int ic = 0; ic < in_ch; ++ic) {
              acc += in[in_base + static_cast<std::size_t>(ic)] *
                     layer.weights[w_base + static_cast<std::size_t>(ic) * 9];
            }
          }
        }
        out[(static_cast<std::size_t>(y) * width + x) * out_ch +
            static_cast<std::size_t>(oc)] = std::max(acc, 0.0f);
      }
    }
    }
  };
  if (pool != nullptr && pool->size() > 0 && height >= 8) {
    // Each task owns a disjoint band of output rows (halo reads overlap,
    // writes never do), so the result matches the serial loop bit for bit.
    pool->parallel_for(0, static_cast<std::size_t>(height), /*grain=*/4,
                       rows);
  } else {
    rows(0, static_cast<std::size_t>(height));
  }
}

void MiniCnn::maxpool2_into(const Tensor& in, int width, int height,
                            int channels, Tensor& out) {
  const int ow = width / 2;
  const int oh = height / 2;
  out.resize(static_cast<std::size_t>(ow) * oh * channels);
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x) {
      for (int c = 0; c < channels; ++c) {
        float m = -1e30f;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t idx =
                (static_cast<std::size_t>(y * 2 + dy) * width + (x * 2 + dx)) *
                    channels +
                static_cast<std::size_t>(c);
            m = std::max(m, in[idx]);
          }
        }
        out[(static_cast<std::size_t>(y) * ow + x) * channels +
            static_cast<std::size_t>(c)] = m;
      }
    }
  }
}

void MiniCnn::conv_pixel(const Tensor& in, int width, int height,
                         const ConvLayer& layer, int x, int y,
                         std::span<float> out) {
  const int in_ch = layer.in_channels;
  const int out_ch = layer.out_channels;
  // Same accumulation sequence per scalar as conv3x3_relu_into: the builds
  // carry no FMA contraction or arch-specific flags, so replaying the order
  // reproduces the full pass bit for bit.
  for (int oc = 0; oc < out_ch; ++oc) {
    float acc = layer.bias[static_cast<std::size_t>(oc)];
    for (int ky = -1; ky <= 1; ++ky) {
      const int sy = std::clamp(y + ky, 0, height - 1);
      for (int kx = -1; kx <= 1; ++kx) {
        const int sx = std::clamp(x + kx, 0, width - 1);
        const std::size_t in_base =
            (static_cast<std::size_t>(sy) * width + sx) * in_ch;
        const std::size_t w_base =
            ((static_cast<std::size_t>(oc) * in_ch) * 9) +
            static_cast<std::size_t>((ky + 1) * 3 + (kx + 1));
        for (int ic = 0; ic < in_ch; ++ic) {
          acc += in[in_base + static_cast<std::size_t>(ic)] *
                 layer.weights[w_base + static_cast<std::size_t>(ic) * 9];
        }
      }
    }
    out[static_cast<std::size_t>(oc)] = std::max(acc, 0.0f);
  }
}

void MiniCnn::recompute_pooled(const Tensor& in, int in_width, int in_height,
                               const ConvLayer& layer,
                               std::span<const std::uint8_t> mask,
                               Tensor& stage) {
  const int ow = in_width / 2;
  const int oh = in_height / 2;
  const int ch = layer.out_channels;
  std::array<std::array<float, 32>, 4> window;  // 2x2 conv pixels, all oc
  for (int py = 0; py < oh; ++py) {
    for (int px = 0; px < ow; ++px) {
      if (mask[static_cast<std::size_t>(py) * ow + px] == 0) continue;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          conv_pixel(in, in_width, in_height, layer, px * 2 + dx, py * 2 + dy,
                     {window[static_cast<std::size_t>(dy * 2 + dx)].data(),
                      static_cast<std::size_t>(ch)});
        }
      }
      for (int c = 0; c < ch; ++c) {
        float m = -1e30f;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            m = std::max(m, window[static_cast<std::size_t>(dy * 2 + dx)]
                                  [static_cast<std::size_t>(c)]);
          }
        }
        stage[(static_cast<std::size_t>(py) * ow + px) * ch +
              static_cast<std::size_t>(c)] = m;
      }
    }
  }
}

void MiniCnn::propagate_dirty(std::span<const std::uint8_t> in, int width,
                              int height, std::span<std::uint8_t> out) {
  const int ow = width / 2;
  const int oh = height / 2;
  for (int py = 0; py < oh; ++py) {
    for (int px = 0; px < ow; ++px) {
      const int x0 = std::max(px * 2 - 1, 0);
      const int x1 = std::min(px * 2 + 2, width - 1);
      const int y0 = std::max(py * 2 - 1, 0);
      const int y1 = std::min(py * 2 + 2, height - 1);
      std::uint8_t dirty = 0;
      for (int y = y0; y <= y1 && dirty == 0; ++y) {
        for (int x = x0; x <= x1; ++x) {
          if (in[static_cast<std::size_t>(y) * width + x] != 0) {
            dirty = 1;
            break;
          }
        }
      }
      out[static_cast<std::size_t>(py) * ow + px] = dirty;
    }
  }
}

void MiniCnn::prepare_input(const Image& img, ForwardState& state) const {
  const Image* src = &img;
  Image scaled;
  if (img.width() != kInputSide || img.height() != kInputSide) {
    scaled = img.resized(kInputSide, kInputSide);
    src = &scaled;
  }
  // Expand grayscale to 3 channels.
  state.input.resize(static_cast<std::size_t>(kInputSide) * kInputSide * 3);
  for (int y = 0; y < kInputSide; ++y) {
    for (int x = 0; x < kInputSide; ++x) {
      for (int c = 0; c < 3; ++c) {
        state.input[(static_cast<std::size_t>(y) * kInputSide + x) * 3 +
                    static_cast<std::size_t>(c)] =
            src->at(x, y, std::min(c, src->channels() - 1));
      }
    }
  }
}

void MiniCnn::forward(ForwardState& state, int from_stage, FeatureVec& out,
                      ThreadPool* pool) const {
  const ForwardPlan& p = plan();
  if (from_stage < 0 || from_stage > 2) {
    throw std::invalid_argument("MiniCnn::forward: from_stage out of [0, 2]");
  }
  if (from_stage == 0) check_size(state.input, p.input, "input");
  if (from_stage == 1) check_size(state.stage1, p.stage1, "stage1");
  if (from_stage == 2) check_size(state.stage2, p.stage2, "stage2");
  if (from_stage < 1) {
    conv3x3_relu_into(state.input, p.input.width, p.input.height, conv1_,
                      pool, state.conv1);
    maxpool2_into(state.conv1, p.input.width, p.input.height,
                  conv1_.out_channels, state.stage1);
  }
  if (from_stage < 2) {
    conv3x3_relu_into(state.stage1, p.stage1.width, p.stage1.height, conv2_,
                      pool, state.conv2);
    maxpool2_into(state.conv2, p.stage1.width, p.stage1.height,
                  conv2_.out_channels, state.stage2);
  }
  conv3x3_relu_into(state.stage2, p.stage2.width, p.stage2.height, conv3_,
                    pool, state.stage3);
  head(state, out);
}

void MiniCnn::embed_into(const Image& img, ForwardState& state,
                         FeatureVec& out, ThreadPool* pool) const {
  prepare_input(img, state);
  forward(state, /*from_stage=*/0, out, pool);
}

MiniCnn::SpliceStats MiniCnn::forward_spliced(
    ForwardState& state, const Tensor& cached_stage1,
    const Tensor& cached_stage2, std::span<const std::uint8_t> stage1_mask,
    std::span<const std::uint8_t> stage2_mask, FeatureVec& out) const {
  const ForwardPlan& p = plan();
  check_size(state.input, p.input, "input");
  check_size(cached_stage1, p.stage1, "cached stage1");
  check_size(cached_stage2, p.stage2, "cached stage2");
  if (stage1_mask.size() !=
          static_cast<std::size_t>(p.stage1.width) * p.stage1.height ||
      stage2_mask.size() !=
          static_cast<std::size_t>(p.stage2.width) * p.stage2.height) {
    throw std::invalid_argument("MiniCnn::forward_spliced: bad mask size");
  }
  SpliceStats stats;
  const auto count = [](std::span<const std::uint8_t> mask) {
    int n = 0;
    for (const std::uint8_t v : mask) n += (v != 0);
    return n;
  };
  stats.stage1_recomputed = count(stage1_mask);
  // Splice: copy-assignment reuses the state tensors' capacity.
  state.stage1 = cached_stage1;
  state.stage2 = cached_stage2;
  if (stats.stage1_recomputed == 0) {
    // Every block cached and clean: resume straight at conv3.
    stats.resume_stage = 2;
  } else {
    stats.resume_stage = 1;
    stats.stage2_recomputed = count(stage2_mask);
    recompute_pooled(state.input, p.input.width, p.input.height, conv1_,
                     stage1_mask, state.stage1);
    recompute_pooled(state.stage1, p.stage1.width, p.stage1.height, conv2_,
                     stage2_mask, state.stage2);
  }
  conv3x3_relu_into(state.stage2, p.stage2.width, p.stage2.height, conv3_,
                    nullptr, state.stage3);
  head(state, out);
  return stats;
}

void MiniCnn::head(ForwardState& state, FeatureVec& out) const {
  const ForwardPlan& p = plan();
  // Global average pool.
  state.pooled.assign(32, 0.0f);
  const int pixels = p.stage3.width * p.stage3.height;
  for (int px = 0; px < pixels; ++px) {
    for (int c = 0; c < 32; ++c) {
      state.pooled[static_cast<std::size_t>(c)] +=
          state.stage3[static_cast<std::size_t>(px) * 32 +
                       static_cast<std::size_t>(c)];
    }
  }
  for (float& v : state.pooled) v /= static_cast<float>(pixels);

  out.resize(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    float acc = fc_bias_[d];
    for (std::size_t c = 0; c < 32; ++c) {
      acc += fc_weights_[d * 32 + c] * state.pooled[c];
    }
    out[d] = acc;
  }
  normalize(out);
}

FeatureVec MiniCnn::embed(const Image& img, ThreadPool* pool) const {
  ForwardState state;
  FeatureVec out;
  embed_into(img, state, out, pool);
  return out;
}

std::vector<FeatureVec> MiniCnn::embed_batch(std::span<const Image> imgs,
                                             ThreadPool* pool) const {
  std::vector<FeatureVec> out(imgs.size());
  if (pool == nullptr || pool->size() == 0 || imgs.size() < 2) {
    ForwardState state;
    for (std::size_t i = 0; i < imgs.size(); ++i) {
      embed_into(imgs[i], state, out[i]);
    }
    return out;
  }
  // Contiguous slices, a few per worker for balance; each task reuses one
  // ForwardState across its images, so only the first image of a slice
  // allocates. Images are independent and each result lands in its own
  // slot, so scheduling order cannot affect the output.
  const std::size_t grain =
      std::max<std::size_t>(1, imgs.size() / (4 * (pool->size() + 1)));
  pool->parallel_for(0, imgs.size(), grain,
                     [this, imgs, &out](std::size_t lo, std::size_t hi) {
                       ForwardState state;
                       for (std::size_t i = lo; i < hi; ++i) {
                         embed_into(imgs[i], state, out[i]);
                       }
                     });
  return out;
}

namespace {

class CnnExtractor final : public FeatureExtractor {
 public:
  CnnExtractor(std::size_t dim, std::uint64_t seed, SimDuration latency)
      : cnn_(dim, seed), latency_(latency), name_("cnn-embed") {}

  const std::string& name() const noexcept override { return name_; }
  std::size_t dim() const noexcept override { return cnn_.dim(); }
  SimDuration latency() const noexcept override { return latency_; }
  float recommended_max_distance() const noexcept override { return 0.045f; }
  FeatureVec extract(const Image& img) const override {
    return cnn_.embed(img);
  }
  const MiniCnn* staged_cnn() const noexcept override { return &cnn_; }

 private:
  MiniCnn cnn_;
  SimDuration latency_;
  std::string name_;
};

}  // namespace

std::unique_ptr<FeatureExtractor> make_cnn_extractor(std::size_t dim,
                                                     std::uint64_t seed,
                                                     SimDuration latency) {
  return std::make_unique<CnnExtractor>(dim, seed, latency);
}

}  // namespace apx

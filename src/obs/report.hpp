#pragma once
// Naming scheme + human rendering for the pipeline's per-rung metrics.
// Instruments (core/pipeline.cpp) and reporters (runner, apxsim, examples)
// both go through these helpers so the metric names cannot drift apart.

#include <span>
#include <string>
#include <string_view>

#include "src/obs/frame_trace.hpp"
#include "src/obs/metrics.hpp"

namespace apx {

/// Histogram of simulated latency (us) spent in `rung` per visiting frame:
/// "pipeline/rung_us/<rung>".
std::string rung_latency_metric(Rung rung);
std::string rung_latency_metric(std::string_view rung_name);

/// Counter of rung visits that ended with `outcome`:
/// "pipeline/rung_<outcome>/<rung>".
std::string rung_outcome_metric(Rung rung, RungOutcome outcome);
std::string rung_outcome_metric(std::string_view rung_name,
                                RungOutcome outcome);

/// Counter of frames answered by `source` ("pipeline/source/<source>").
std::string source_metric(const char* source_name);

/// The rung names every pipeline registers unconditionally, whatever its
/// ladder — the stable baseline of the metrics export schema. Ladder rungs
/// outside this set (e.g. "warm") add their instruments on top.
std::span<const char* const> schema_rung_names() noexcept;

/// The result-source names every pipeline registers unconditionally
/// (schema baseline; extra sources ride on the rungs that produce them).
std::span<const char* const> schema_source_names() noexcept;

/// Renders the per-rung latency/hit breakdown table from a registry filled
/// by an instrumented pipeline (empty string when nothing was recorded).
std::string per_rung_summary(const MetricsRegistry& metrics);

}  // namespace apx

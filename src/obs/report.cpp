#include "src/obs/report.hpp"

#include "src/util/table.hpp"

namespace apx {

std::string rung_latency_metric(Rung rung) {
  return rung_latency_metric(std::string_view{to_string(rung)});
}

std::string rung_latency_metric(std::string_view rung_name) {
  return std::string("pipeline/rung_us/") + std::string(rung_name);
}

std::string rung_outcome_metric(Rung rung, RungOutcome outcome) {
  return rung_outcome_metric(std::string_view{to_string(rung)}, outcome);
}

std::string rung_outcome_metric(std::string_view rung_name,
                                RungOutcome outcome) {
  return std::string("pipeline/rung_") + to_string(outcome) + "/" +
         std::string(rung_name);
}

std::string source_metric(const char* source_name) {
  return std::string("pipeline/source/") + source_name;
}

std::span<const char* const> schema_rung_names() noexcept {
  // The pre-plugin pipeline registered exactly these five rungs for every
  // configuration; goldens pin that export shape, so the baseline is fixed.
  static constexpr const char* kNames[] = {"imu-gate", "temporal",
                                           "local-cache", "p2p", "dnn"};
  return kNames;
}

std::span<const char* const> schema_source_names() noexcept {
  static constexpr const char* kNames[] = {"imu-fastpath", "temporal",
                                           "local-cache", "peer-cache",
                                           "inference"};
  return kNames;
}

std::string per_rung_summary(const MetricsRegistry& metrics) {
  TextTable table;
  table.header(
      {"rung", "visits", "hits", "mean ms", "p50 ms", "p95 ms", "max ms"});
  bool any = false;
  for (std::size_t r = 0; r < kRungCount; ++r) {
    const Rung rung = static_cast<Rung>(r);
    const MetricsRegistry::Histogram* h =
        metrics.find_histogram(rung_latency_metric(rung));
    if (h == nullptr || h->count == 0) continue;
    any = true;
    const std::uint64_t hits =
        metrics.counter_value(rung_outcome_metric(rung, RungOutcome::kHit));
    table.row({to_string(rung), std::to_string(h->count),
               std::to_string(hits), TextTable::num(h->mean() / 1000.0, 3),
               TextTable::num(h->quantile(0.5) / 1000.0, 3),
               TextTable::num(h->quantile(0.95) / 1000.0, 3),
               TextTable::num(h->max / 1000.0, 3)});
  }
  return any ? table.render() : std::string{};
}

}  // namespace apx

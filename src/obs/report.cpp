#include "src/obs/report.hpp"

#include "src/util/table.hpp"

namespace apx {

std::string rung_latency_metric(Rung rung) {
  return std::string("pipeline/rung_us/") + to_string(rung);
}

std::string rung_outcome_metric(Rung rung, RungOutcome outcome) {
  return std::string("pipeline/rung_") + to_string(outcome) + "/" +
         to_string(rung);
}

std::string source_metric(const char* source_name) {
  return std::string("pipeline/source/") + source_name;
}

std::string per_rung_summary(const MetricsRegistry& metrics) {
  TextTable table;
  table.header(
      {"rung", "visits", "hits", "mean ms", "p50 ms", "p95 ms", "max ms"});
  bool any = false;
  for (std::size_t r = 0; r < kRungCount; ++r) {
    const Rung rung = static_cast<Rung>(r);
    const MetricsRegistry::Histogram* h =
        metrics.find_histogram(rung_latency_metric(rung));
    if (h == nullptr || h->count == 0) continue;
    any = true;
    const std::uint64_t hits =
        metrics.counter_value(rung_outcome_metric(rung, RungOutcome::kHit));
    table.row({to_string(rung), std::to_string(h->count),
               std::to_string(hits), TextTable::num(h->mean() / 1000.0, 3),
               TextTable::num(h->quantile(0.5) / 1000.0, 3),
               TextTable::num(h->quantile(0.95) / 1000.0, 3),
               TextTable::num(h->max / 1000.0, 3)});
  }
  return any ? table.render() : std::string{};
}

}  // namespace apx

#pragma once
// Per-frame trace spans: which rungs of the reuse ladder one frame visited,
// in order, with simulated start/stop times and the rung's outcome. This is
// the measurement seam behind the poster's headline claim — "where does the
// time go?" is answered by attributing each frame's latency to the rungs
// that actually ran (IMU gate, temporal check, local cache, P2P round, DNN)
// instead of inferring it from pooled counters.
//
// A FrameTrace is a fixed-capacity value type (a ladder visits at most
// kMaxSpans rungs) so tracing adds no heap allocations to the frame hot
// path; the pipeline owns one and reuses it for every frame it processes.

#include <array>
#include <cstdint>
#include <span>

#include "src/util/clock.hpp"

namespace apx {

/// Rungs of the reuse ladder, in ladder order.
enum class Rung : std::uint8_t {
  kImuGate = 0,     ///< motion estimate consulted / stationary fast path
  kTemporal = 1,    ///< frame-diff keyframe check
  kLocalCache = 2,  ///< feature extraction + approximate cache lookup
  kP2p = 3,         ///< peer lookup round + re-vote
  kDnn = 4,         ///< full inference
  kWarm = 5,        ///< quantized warm-tier prototype scan
  kEdge = 6,        ///< region edge-cache lookup round
  kRegions = 7,     ///< block-level activation reuse (staged forward)
};

inline constexpr std::size_t kRungCount = 8;

/// Printable rung name ("imu-gate", "temporal", "local-cache", "p2p",
/// "dnn", "warm", "edge", "regions").
const char* to_string(Rung rung) noexcept;

/// How a visited rung ended: it either answered the frame or passed it down.
enum class RungOutcome : std::uint8_t { kHit = 0, kMiss = 1 };

const char* to_string(RungOutcome outcome) noexcept;

/// One visited rung.
struct TraceSpan {
  Rung rung = Rung::kDnn;
  RungOutcome outcome = RungOutcome::kMiss;
  SimTime start = 0;  ///< simulated time the rung began
  SimTime end = 0;    ///< simulated time the rung decided
  /// Local-cache / P2P rungs: vectors whose distance the lookup computed.
  std::uint32_t candidates = 0;
  /// Nearest cached neighbour's distance; negative when nothing was found.
  float nearest_distance = -1.0f;
  /// Quantized scan only: candidates kept for the exact re-rank pass
  /// (0 on the float path — the whole candidate set is scored exactly).
  std::uint32_t rerank_survivors = 0;
  /// QALSH backend only: virtual-rehash rounds the lookup ran before its
  /// termination condition fired (0 for the bucketed LSH family).
  std::uint32_t rehash_rounds = 0;
};

/// Trace of one frame through the ladder. Spans appear in visit order; a
/// rung that was disabled or skipped records no span.
class FrameTrace {
 public:
  /// Spans are bounded by the ladder depth; extra slack guards future rungs
  /// (the deepest ladder today visits 8).
  static constexpr std::size_t kMaxSpans = 10;

  /// Starts a new frame; drops all previous spans.
  void reset(SimTime frame_time) noexcept {
    count_ = 0;
    open_ = false;
    frame_time_ = frame_time;
  }

  /// Opens a span for `rung` at `now`. At most one span is open at a time;
  /// returns false (and records nothing) when full or one is already open.
  bool begin_span(Rung rung, SimTime now) noexcept {
    if (open_ || count_ >= kMaxSpans) return false;
    spans_[count_] = TraceSpan{rung, RungOutcome::kMiss, now, now, 0, -1.0f};
    open_ = true;
    return true;
  }

  /// Closes the open span with `outcome` at `now`; no-op when none is open.
  void end_span(RungOutcome outcome, SimTime now) noexcept {
    if (!open_) return;
    spans_[count_].outcome = outcome;
    spans_[count_].end = now;
    ++count_;
    open_ = false;
  }

  /// Annotates the open span with lookup work (candidate count + nearest
  /// distance). Called by ApproxCache::lookup when CacheQuery::trace is
  /// set; no-op when no span is open.
  void annotate_lookup(std::uint32_t candidates,
                       float nearest_distance) noexcept {
    if (!open_) return;
    spans_[count_].candidates = candidates;
    spans_[count_].nearest_distance = nearest_distance;
  }

  /// Annotates the open span with the quantized scan's exact re-rank size;
  /// no-op when no span is open (float-path lookups never call this).
  void annotate_rerank(std::uint32_t survivors) noexcept {
    if (!open_) return;
    spans_[count_].rerank_survivors = survivors;
  }

  /// Annotates the open span with the QALSH virtual-rehash round count;
  /// no-op when no span is open (bucketed-LSH lookups never call this).
  void annotate_rounds(std::uint32_t rounds) noexcept {
    if (!open_) return;
    spans_[count_].rehash_rounds = rounds;
  }

  /// Closed spans, in visit order.
  std::span<const TraceSpan> spans() const noexcept {
    return {spans_.data(), count_};
  }

  std::size_t size() const noexcept { return count_; }
  bool has_open_span() const noexcept { return open_; }
  SimTime frame_time() const noexcept { return frame_time_; }

 private:
  std::array<TraceSpan, kMaxSpans> spans_{};
  std::size_t count_ = 0;
  bool open_ = false;
  SimTime frame_time_ = 0;
};

}  // namespace apx

#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/util/table.hpp"

namespace apx {
namespace {

/// Shortest round-trippable formatting, so exports are byte-stable for
/// byte-stable inputs (the parallel-vs-sequential determinism contract).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

double MetricsRegistry::Histogram::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double MetricsRegistry::Histogram::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lo, hi), clamped to the observed min/max so
      // sparse histograms do not report values outside the sample range.
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          buckets[i] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(buckets[i]);
      const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min, max);
    }
    seen = next;
  }
  return max;
}

MetricsRegistry::CounterId MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  const auto id = static_cast<CounterId>(counters_.size());
  counters_.push_back(NamedCounter{name, 0});
  counter_ids_.emplace(name, id);
  ++version_;
  return id;
}

MetricsRegistry::HistogramId MetricsRegistry::histogram(
    const std::string& name, std::span<const double> bounds) {
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    const Histogram& existing = histograms_[it->second];
    if (!std::equal(existing.bounds.begin(), existing.bounds.end(),
                    bounds.begin(), bounds.end())) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
    }
    return it->second;
  }
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument("MetricsRegistry: bounds must be ascending");
  }
  const auto id = static_cast<HistogramId>(histograms_.size());
  Histogram h;
  h.name = name;
  h.bounds.assign(bounds.begin(), bounds.end());
  h.buckets.assign(bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
  histogram_ids_.emplace(name, id);
  ++version_;
  return id;
}

void MetricsRegistry::record(HistogramId id, double value) noexcept {
  Histogram& h = histograms_[id];
  const auto it =
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  ++h.buckets[static_cast<std::size_t>(it - h.bounds.begin())];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++version_;
}

std::uint64_t MetricsRegistry::counter_value(
    const std::string& name) const noexcept {
  const auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? 0 : counters_[it->second].value;
}

const MetricsRegistry::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const noexcept {
  const auto it = histogram_ids_.find(name);
  return it == histogram_ids_.end() ? nullptr : &histograms_[it->second];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Match by name (sorted id maps), not by handle: two registries may have
  // registered the same instruments in different orders.
  for (const auto& [name, id] : other.counter_ids_) {
    inc(counter(name), other.counters_[id].value);
  }
  for (const auto& [name, id] : other.histogram_ids_) {
    const Histogram& src = other.histograms_[id];
    Histogram& dst = histograms_[histogram(name, src.bounds)];
    for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
      dst.buckets[i] += src.buckets[i];
    }
    if (src.count > 0) {
      if (dst.count == 0) {
        dst.min = src.min;
        dst.max = src.max;
      } else {
        dst.min = std::min(dst.min, src.min);
        dst.max = std::max(dst.max, src.max);
      }
      dst.count += src.count;
      dst.sum += src.sum;
    }
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"schema\": \"apx-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, id] : counter_ids_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + std::to_string(counters_[id].value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, id] : histogram_ids_) {
    const Histogram& h = histograms_[id];
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_double(h.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "], \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + fmt_double(h.sum);
    out += ", \"min\": " + fmt_double(h.min);
    out += ", \"max\": " + fmt_double(h.max);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::summary() const {
  std::string out;
  if (!histogram_ids_.empty()) {
    TextTable table;
    table.header({"histogram", "count", "mean", "p50", "p95", "max"});
    for (const auto& [name, id] : histogram_ids_) {
      const Histogram& h = histograms_[id];
      table.row({name, std::to_string(h.count), TextTable::num(h.mean()),
                 TextTable::num(h.quantile(0.5)),
                 TextTable::num(h.quantile(0.95)), TextTable::num(h.max)});
    }
    out += table.render();
  }
  if (!counter_ids_.empty()) {
    if (!out.empty()) out += "\n";
    TextTable table;
    table.header({"counter", "value"});
    for (const auto& [name, id] : counter_ids_) {
      table.row({name, std::to_string(counters_[id].value)});
    }
    out += table.render();
  }
  return out;
}

namespace {
// One shared set of bounds per quantity so instruments and shards agree.
constexpr double kLatencyUsBounds[] = {
    10,     20,     50,      100,     200,     500,      1000,    2000,
    5000,   10000,  20000,   50000,   100000,  200000,   500000,  1000000,
    2000000, 5000000};
constexpr double kDistanceBounds[] = {0.025, 0.05, 0.075, 0.1,  0.15, 0.2,
                                      0.3,   0.4,  0.5,   0.65, 0.8,  1.0,
                                      1.25,  1.5,  2.0};
constexpr double kCountBounds[] = {1,  2,   4,   8,   16,   32,  64,
                                   128, 256, 512, 1024, 2048, 4096};
}  // namespace

std::span<const double> latency_us_bounds() noexcept {
  return kLatencyUsBounds;
}
std::span<const double> distance_bounds() noexcept { return kDistanceBounds; }
std::span<const double> count_bounds() noexcept { return kCountBounds; }

}  // namespace apx

#include "src/obs/frame_trace.hpp"

namespace apx {

const char* to_string(Rung rung) noexcept {
  switch (rung) {
    case Rung::kImuGate: return "imu-gate";
    case Rung::kTemporal: return "temporal";
    case Rung::kLocalCache: return "local-cache";
    case Rung::kP2p: return "p2p";
    case Rung::kDnn: return "dnn";
    case Rung::kWarm: return "warm";
    case Rung::kEdge: return "edge";
    case Rung::kRegions: return "regions";
  }
  return "?";
}

const char* to_string(RungOutcome outcome) noexcept {
  switch (outcome) {
    case RungOutcome::kHit: return "hit";
    case RungOutcome::kMiss: return "miss";
  }
  return "?";
}

}  // namespace apx

#pragma once
// Observability metrics: a registry of named counters and fixed-bucket
// histograms shared by every layer of the stack (ann -> cache -> pipeline
// -> p2p -> sim). Design constraints, in order:
//
//  1. Zero allocations on the hot path. Instruments register by name ONCE
//     (at attach time) and receive an integer handle; inc()/record() are
//     array index + arithmetic. Bucket bounds are fixed at registration.
//  2. Deterministic merging. Runner shards each own a registry; merging in
//     device order produces bit-identical state whether the shards ran on
//     one thread or eight (see sim/runner.cpp).
//  3. Two export formats: JSON (machine, schema-checked by tools/check.sh)
//     and an aligned text table (human).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace apx {

/// Registry of named counters and fixed-bucket histograms.
///
/// Not thread-safe: one registry per simulated device / runner shard, merged
/// after the run (the same ownership discipline as every other per-device
/// object in this codebase).
class MetricsRegistry {
 public:
  using CounterId = std::uint32_t;
  using HistogramId = std::uint32_t;

  /// One histogram: `buckets[i]` counts samples with value <= bounds[i]
  /// (Prometheus "le" convention); the final bucket is the overflow.
  struct Histogram {
    std::string name;
    std::vector<double> bounds;          ///< ascending upper bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 slots
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const noexcept;
    /// Approximate quantile by linear interpolation within the bucket that
    /// crosses rank q*count; exact at bucket boundaries. q in [0, 1].
    double quantile(double q) const noexcept;
  };

  /// Finds or creates the counter `name`; stable handle for this registry.
  CounterId counter(const std::string& name);

  /// Finds or creates the histogram `name` with the given bucket bounds
  /// (ascending). Re-registering must pass identical bounds.
  HistogramId histogram(const std::string& name,
                        std::span<const double> bounds);

  void inc(CounterId id, std::uint64_t by = 1) noexcept {
    counters_[id].value += by;
    ++version_;
  }

  /// Overwrites a counter with an absolute value — gauge semantics (e.g.
  /// resident cache bytes). Merging still sums gauges across registries,
  /// the same fleet-total convention as cache/bytes_float.
  void set(CounterId id, std::uint64_t value) noexcept {
    counters_[id].value = value;
    ++version_;
  }

  void record(HistogramId id, double value) noexcept;

  /// Mutation stamp: bumped by every inc/record/registration/merge. Lets
  /// derived views (ReusePipeline::counters()) cache their rebuild and
  /// invalidate only when the registry actually changed.
  std::uint64_t version() const noexcept { return version_; }

  /// Current value of a registered counter (handle variant of
  /// counter_value(); no name lookup).
  std::uint64_t value(CounterId id) const noexcept {
    return counters_[id].value;
  }

  /// Value of counter `name`; 0 when never registered.
  std::uint64_t counter_value(const std::string& name) const noexcept;

  /// Histogram by name; nullptr when never registered.
  const Histogram* find_histogram(const std::string& name) const noexcept;

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::size_t histogram_count() const noexcept { return histograms_.size(); }

  /// Adds `other`'s counters and histograms into this registry, matching by
  /// name (creating anything absent). Histograms must agree on bounds.
  /// Merging registries in a fixed order is deterministic regardless of the
  /// thread that filled each one.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON export: keys sorted by name, fixed number
  /// formatting. Top-level: {"schema", "counters", "histograms"}.
  std::string to_json() const;

  /// Human-readable summary (counters + histogram mean/p50/p95/max table).
  std::string summary() const;

 private:
  struct NamedCounter {
    std::string name;
    std::uint64_t value = 0;
  };

  std::vector<NamedCounter> counters_;
  std::vector<Histogram> histograms_;
  std::map<std::string, CounterId> counter_ids_;
  std::map<std::string, HistogramId> histogram_ids_;
  std::uint64_t version_ = 0;
};

/// Shared bucket boundary sets so the same quantity is comparable across
/// instruments (and across runner shards, where merge requires identical
/// bounds). Spans point at static storage.
std::span<const double> latency_us_bounds() noexcept;  ///< 10 us .. 5 s
std::span<const double> distance_bounds() noexcept;    ///< 0.025 .. 2.0
std::span<const double> count_bounds() noexcept;       ///< 1 .. 4096

}  // namespace apx

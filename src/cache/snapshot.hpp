#pragma once
// Cache snapshots: serialize a cache's entries to bytes and restore them
// into a fresh cache. Lets a recognition app warm-start from its previous
// session (or from a snapshot shipped by a kiosk/venue) instead of paying
// the cold-start inference burst — an extension the poster's in-memory
// design naturally invites.

#include <cstdint>
#include <vector>

#include "src/cache/approx_cache.hpp"

namespace apx {

/// Serializes every entry of `cache`. Timestamps are stored relative to
/// `now` (as ages), so a snapshot can be restored under any clock.
std::vector<std::uint8_t> save_snapshot(const ApproxCache& cache, SimTime now);

/// Restores entries from `bytes` into `cache` (which keeps its own
/// capacity/config; excess entries beyond capacity evict normally).
/// Entries with mismatching dimensionality cause CodecError. Returns the
/// number of entries restored. Restored timestamps are back-dated from
/// `now` by the stored ages.
std::size_t load_snapshot(ApproxCache& cache,
                          const std::vector<std::uint8_t>& bytes, SimTime now);

}  // namespace apx

#include "src/cache/eviction.hpp"

#include <cmath>

namespace apx {
namespace {

class LruPolicy final : public EvictionPolicy {
 public:
  const std::string& name() const noexcept override { return name_; }
  double score(const CacheEntry& entry, SimTime /*now*/) const override {
    return static_cast<double>(entry.last_access);
  }

 private:
  std::string name_ = "lru";
};

class LfuPolicy final : public EvictionPolicy {
 public:
  const std::string& name() const noexcept override { return name_; }
  double score(const CacheEntry& entry, SimTime now) const override {
    // Tie-break equal frequencies by recency: the fractional part is the
    // entry's age share, so older entries score lower.
    const double age =
        std::max<double>(1.0, static_cast<double>(now - entry.last_access));
    return static_cast<double>(entry.access_count) + 1.0 / (1.0 + age);
  }

 private:
  std::string name_ = "lfu";
};

class UtilityPolicy final : public EvictionPolicy {
 public:
  explicit UtilityPolicy(const UtilityPolicyParams& params)
      : params_(params) {}

  const std::string& name() const noexcept override { return name_; }

  double score(const CacheEntry& entry, SimTime now) const override {
    const double recency_s = to_seconds(now - entry.last_access);
    const double decay =
        std::exp2(-recency_s / std::max(params_.age_halflife_s, 1e-9));
    const double frequency = 1.0 + static_cast<double>(entry.access_count);
    const double provenance =
        std::pow(params_.hop_discount, static_cast<double>(entry.hop_count));
    const double confidence =
        1.0 - params_.confidence_weight *
                  (1.0 - static_cast<double>(entry.confidence));
    return frequency * decay * provenance * confidence;
  }

 private:
  UtilityPolicyParams params_;
  std::string name_ = "utility";
};

}  // namespace

std::unique_ptr<EvictionPolicy> make_lru_policy() {
  return std::make_unique<LruPolicy>();
}

std::unique_ptr<EvictionPolicy> make_lfu_policy() {
  return std::make_unique<LfuPolicy>();
}

std::unique_ptr<EvictionPolicy> make_utility_policy(
    const UtilityPolicyParams& params) {
  return std::make_unique<UtilityPolicy>(params);
}

}  // namespace apx

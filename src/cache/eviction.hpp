#pragma once
// Eviction policies. The cache evicts the entry with the lowest score when
// full; policies only define the score, so new policies are one function.
// Victim selection is a linear scan — for the few-thousand-entry caches a
// phone would hold, a scan on the (rare) eviction path is cheaper and
// simpler than maintaining an intrusive priority structure on every access.

#include <memory>
#include <string>

#include "src/cache/entry.hpp"

namespace apx {

/// Scores entries for eviction; the minimum score is evicted first.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual const std::string& name() const noexcept = 0;
  virtual double score(const CacheEntry& entry, SimTime now) const = 0;
};

/// Least-recently-used: score = last access time.
std::unique_ptr<EvictionPolicy> make_lru_policy();

/// Least-frequently-used with LRU tie-break encoded in the fraction bits.
std::unique_ptr<EvictionPolicy> make_lfu_policy();

/// Utility-based policy tuned for collaborative caches: frequency per unit
/// age, discounted for entries that travelled more hops (staler provenance)
/// and for low recognition confidence.
struct UtilityPolicyParams {
  double hop_discount = 0.8;        ///< multiplied once per hop
  double confidence_weight = 0.5;   ///< 0 = ignore confidence
  double age_halflife_s = 60.0;     ///< seconds for recency decay
};
std::unique_ptr<EvictionPolicy> make_utility_policy(
    const UtilityPolicyParams& params = {});

}  // namespace apx

#include "src/cache/exact_cache.hpp"

#include <cmath>
#include <stdexcept>

namespace apx {

ExactCache::ExactCache(std::size_t capacity, float quant_steps,
                       SimDuration lookup_latency)
    : capacity_(capacity),
      quant_steps_(quant_steps),
      lookup_latency_(lookup_latency) {
  if (capacity == 0 || quant_steps <= 0.0f) {
    throw std::invalid_argument("ExactCache: bad parameters");
  }
}

std::uint64_t ExactCache::key_of(std::span<const float> q) const {
  std::uint64_t key = 0xcbf29ce484222325ULL;
  for (float x : q) {
    const auto step = static_cast<std::int64_t>(
        std::llround(static_cast<double>(x) *
                     static_cast<double>(quant_steps_)));
    const auto us = static_cast<std::uint64_t>(step);
    for (int byte = 0; byte < 8; ++byte) {
      key ^= (us >> (8 * byte)) & 0xff;
      key *= 0x100000001b3ULL;
    }
  }
  return key;
}

std::optional<Label> ExactCache::lookup(std::span<const float> q) {
  const auto it = map_.find(key_of(q));
  if (it == map_.end()) {
    counters_.inc("miss");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  counters_.inc("hit");
  return it->second.label;
}

void ExactCache::insert(std::span<const float> q, Label label) {
  const std::uint64_t key = key_of(q);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.label = label;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    counters_.inc("evict");
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{label, lru_.begin()});
  counters_.inc("insert");
}

}  // namespace apx

#include "src/cache/snapshot.hpp"

#include <algorithm>

#include "src/util/serialize.hpp"

namespace apx {
namespace {

constexpr std::uint32_t kMagic = 0x41504358;  // "APCX"
constexpr std::uint8_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> save_snapshot(const ApproxCache& cache,
                                        SimTime now) {
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.varint(cache.dim());
  w.varint(cache.size());
  // Deterministic order: collect and sort by id.
  std::vector<const CacheEntry*> entries;
  entries.reserve(cache.size());
  cache.for_each([&entries](const CacheEntry& e) { entries.push_back(&e); });
  std::sort(entries.begin(), entries.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->id < b->id;
            });
  for (const CacheEntry* e : entries) {
    w.f32_vec(e->feature);
    w.i64(e->label);
    w.f32(e->confidence);
    w.i64(std::max<SimDuration>(0, now - e->insert_time));  // age
    w.u8(static_cast<std::uint8_t>(e->origin));
    w.u8(e->hop_count);
    w.u32(e->source_device);
    w.u32(e->access_count);
  }
  return w.take();
}

std::size_t load_snapshot(ApproxCache& cache,
                          const std::vector<std::uint8_t>& bytes,
                          SimTime now) {
  Reader r{bytes};
  if (r.u32() != kMagic) throw CodecError("snapshot: bad magic");
  if (r.u8() != kVersion) throw CodecError("snapshot: unsupported version");
  const std::uint64_t dim = r.varint();
  if (dim != cache.dim()) throw CodecError("snapshot: dimension mismatch");
  const std::uint64_t count = r.varint();
  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    FeatureVec feature = r.f32_vec();
    if (feature.size() != dim) throw CodecError("snapshot: bad entry dim");
    const auto label = static_cast<Label>(r.i64());
    const float confidence = r.f32();
    const SimDuration age = std::max<SimDuration>(0, r.i64());
    const auto origin = static_cast<EntryOrigin>(r.u8());
    const std::uint8_t hops = r.u8();
    const std::uint32_t source = r.u32();
    r.u32();  // access_count: informational; fresh caches restart at 0
    cache.insert(std::move(feature), label, confidence,
                 std::max<SimTime>(0, now - age), origin, hops, source);
    ++restored;
  }
  if (!r.done()) throw CodecError("snapshot: trailing bytes");
  return restored;
}

}  // namespace apx

#include "src/cache/approx_cache.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "src/obs/frame_trace.hpp"
#include "src/obs/metrics.hpp"

namespace apx {

ApproxCache::ApproxCache(std::size_t dim, const ApproxCacheConfig& config,
                         std::unique_ptr<EvictionPolicy> eviction)
    : dim_(dim),
      config_(config),
      quantized_scan_(config.alsh.lsh.quantize.enabled &&
                      config.index != IndexKind::kExact),
      eviction_(std::move(eviction)),
      index_(make_index(config.index, dim, config.alsh)),
      label_of_([this](VecId id) { return entries_.at(id).label; }) {
  if (dim == 0 || config.capacity == 0 || eviction_ == nullptr) {
    throw std::invalid_argument("ApproxCache: bad configuration");
  }
}

CacheLookupResult ApproxCache::lookup(std::span<const float> q, SimTime now,
                                      const LookupOptions& opts) {
  assert(q.size() == dim_);
  CacheLookupResult result;
  const std::size_t k =
      opts.k_override != 0 ? opts.k_override : config_.hknn.k;
  index_->query_into(q, k, neighbor_scratch_);
  const std::vector<Neighbor>& neighbors = neighbor_scratch_;

  // Simulated lookup cost: fixed overhead + one distance per candidate.
  // The quantized scan pays a quarter of the per-candidate cost (uint8
  // rows quarter the memory traffic) plus the full cost for each
  // exactly re-ranked survivor.
  const std::size_t candidates = index_->last_query_candidates();
  const std::size_t survivors = index_->last_rerank_survivors();
  result.candidates = candidates;
  if (quantized_scan_) {
    result.latency = config_.lookup_base_latency +
                     static_cast<SimDuration>(candidates) *
                         config_.per_candidate_latency / 4 +
                     static_cast<SimDuration>(survivors) *
                         config_.per_candidate_latency;
  } else {
    result.latency = config_.lookup_base_latency +
                     static_cast<SimDuration>(candidates) *
                         config_.per_candidate_latency;
  }

  const float nearest =
      neighbors.empty() ? -1.0f : neighbors.front().distance;
  if (opts.trace != nullptr) {
    opts.trace->annotate_lookup(static_cast<std::uint32_t>(candidates),
                                nearest);
    if (quantized_scan_) {
      opts.trace->annotate_rerank(static_cast<std::uint32_t>(survivors));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->record(lookup_us_hist_, static_cast<double>(result.latency));
    if (nearest >= 0.0f) {
      metrics_->record(nearest_distance_hist_,
                       static_cast<double>(nearest));
    }
  }

  HknnParams params = config_.hknn;
  params.max_distance *= opts.threshold_scale;
  if (opts.k_override != 0) params.k = opts.k_override;
  result.vote = hknn_vote(neighbors, label_of_, params);

  if (result.vote.has_value()) {
    counters_.inc("hit");
    // Touch every voter so eviction sees their usefulness.
    std::size_t touched = 0;
    for (const Neighbor& n : neighbors) {
      if (touched >= result.vote->voters) break;
      auto it = entries_.find(n.id);
      if (it != entries_.end()) {
        it->second.last_access = now;
        ++it->second.access_count;
      }
      ++touched;
    }
  } else {
    counters_.inc("miss");
  }
  return result;
}

VecId ApproxCache::insert(FeatureVec feature, Label label, float confidence,
                          SimTime now, EntryOrigin origin,
                          std::uint8_t hop_count,
                          std::uint32_t source_device) {
  assert(feature.size() == dim_);
  while (entries_.size() >= config_.capacity) {
    evict_one(now);
  }
  const VecId id = next_id_++;
  CacheEntry entry;
  entry.id = id;
  entry.feature = std::move(feature);
  entry.label = label;
  entry.confidence = confidence;
  entry.insert_time = now;
  entry.last_access = now;
  entry.origin = origin;
  entry.hop_count = hop_count;
  entry.source_device = source_device;
  index_->insert(id, entry.feature);
  entries_.emplace(id, std::move(entry));
  counters_.inc("insert");
  update_memory_gauges();
  return id;
}

bool ApproxCache::remove(VecId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  index_->remove(id);
  entries_.erase(it);
  update_memory_gauges();
  return true;
}

void ApproxCache::clear() {
  for (const auto& [id, _] : entries_) index_->remove(id);
  entries_.clear();
  counters_.inc("clear");
  update_memory_gauges();
}

const CacheEntry* ApproxCache::find(VecId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<float> ApproxCache::nearest_distance(
    std::span<const float> q) const {
  index_->query_into(q, 1, neighbor_scratch_);
  if (neighbor_scratch_.empty()) return std::nullopt;
  return neighbor_scratch_.front().distance;
}

std::optional<HknnVote> ApproxCache::peek_vote(
    std::span<const float> q, const LookupOptions& opts) const {
  index_->query_into(q, config_.hknn.k, neighbor_scratch_);
  HknnParams params = config_.hknn;
  params.max_distance *= opts.threshold_scale;
  if (opts.k_override != 0) params.k = opts.k_override;
  return hknn_vote(neighbor_scratch_, label_of_, params);
}

void ApproxCache::for_each(
    const std::function<void(const CacheEntry&)>& fn) const {
  for (const auto& [_, entry] : entries_) fn(entry);
}

std::vector<CacheEntry> ApproxCache::entries_since(SimTime since) const {
  std::vector<CacheEntry> out;
  for (const auto& [_, entry] : entries_) {
    if (entry.insert_time >= since) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheEntry& a, const CacheEntry& b) {
              return a.insert_time < b.insert_time ||
                     (a.insert_time == b.insert_time && a.id < b.id);
            });
  return out;
}

void ApproxCache::attach_metrics(MetricsRegistry& metrics) {
  metrics_ = &metrics;
  lookup_us_hist_ = metrics.histogram("cache/lookup_us", latency_us_bounds());
  nearest_distance_hist_ =
      metrics.histogram("cache/nearest_distance", distance_bounds());
  // Pre-register the counters the runner later copies from the legacy
  // Counter map, so exports carry them (as zeros) even in empty runs and
  // the JSON schema stays stable.
  metrics.counter("cache/hit");
  metrics.counter("cache/miss");
  metrics.counter("cache/insert");
  metrics.counter("cache/evict");
  if (quantized_scan_) {
    // Pre-register the feature-memory gauges so the "quantized" schema
    // subsystem exports whole (all-or-nothing) even before any insert.
    metrics.counter("cache/bytes_float");
    metrics.counter("cache/bytes_codes");
  }
  index_->attach_metrics(metrics);
}

void ApproxCache::update_memory_gauges() {
  if (!quantized_scan_) return;
  // Per entry: dim float32s in the float arena vs dim uint8 codes plus
  // three float32 ADC terms (offset, scale, |recon|^2) in the sidecar.
  const std::uint64_t n = entries_.size();
  counters_.set("bytes_float", n * dim_ * sizeof(float));
  counters_.set("bytes_codes", n * (dim_ + 3 * sizeof(float)));
}

VecId ApproxCache::evict_one(SimTime now) {
  assert(!entries_.empty());
  VecId victim = 0;
  double worst = std::numeric_limits<double>::max();
  for (const auto& [id, entry] : entries_) {
    const double s = eviction_->score(entry, now);
    if (s < worst || (s == worst && id < victim)) {
      worst = s;
      victim = id;
    }
  }
  index_->remove(victim);
  entries_.erase(victim);
  counters_.inc("evict");
  return victim;
}

}  // namespace apx

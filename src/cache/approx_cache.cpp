#include "src/cache/approx_cache.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace apx {
namespace {

std::unique_ptr<NnIndex> make_index(std::size_t dim,
                                    const ApproxCacheConfig& config) {
  switch (config.index) {
    case IndexKind::kExact:
      return std::make_unique<ExactKnnIndex>(dim);
    case IndexKind::kLsh:
      return std::make_unique<PStableLshIndex>(dim, config.alsh.lsh);
    case IndexKind::kAdaptiveLsh:
      return std::make_unique<AdaptiveLshIndex>(dim, config.alsh);
  }
  throw std::invalid_argument("ApproxCache: unknown index kind");
}

}  // namespace

ApproxCache::ApproxCache(std::size_t dim, const ApproxCacheConfig& config,
                         std::unique_ptr<EvictionPolicy> eviction)
    : dim_(dim),
      config_(config),
      eviction_(std::move(eviction)),
      index_(make_index(dim, config)) {
  if (dim == 0 || config.capacity == 0 || eviction_ == nullptr) {
    throw std::invalid_argument("ApproxCache: bad configuration");
  }
}

CacheLookupResult ApproxCache::lookup(std::span<const float> q, SimTime now,
                                      float threshold_scale) {
  assert(q.size() == dim_);
  CacheLookupResult result;
  const auto neighbors = index_->query(q, config_.hknn.k);

  // Simulated lookup cost: fixed overhead + one distance per candidate.
  std::size_t candidates = neighbors.size();
  if (config_.index == IndexKind::kLsh) {
    candidates =
        static_cast<PStableLshIndex*>(index_.get())->last_candidate_count();
  } else if (config_.index == IndexKind::kAdaptiveLsh) {
    candidates =
        static_cast<AdaptiveLshIndex*>(index_.get())->last_candidate_count();
  } else {
    candidates = index_->size();  // exact scan touches everything
  }
  result.candidates = candidates;
  result.latency = config_.lookup_base_latency +
                   static_cast<SimDuration>(candidates) *
                       config_.per_candidate_latency;

  HknnParams params = config_.hknn;
  params.max_distance *= threshold_scale;
  result.vote = hknn_vote(
      neighbors, [this](VecId id) { return entries_.at(id).label; }, params);

  if (result.vote.has_value()) {
    counters_.inc("hit");
    // Touch every voter so eviction sees their usefulness.
    std::size_t touched = 0;
    for (const Neighbor& n : neighbors) {
      if (touched >= result.vote->voters) break;
      auto it = entries_.find(n.id);
      if (it != entries_.end()) {
        it->second.last_access = now;
        ++it->second.access_count;
      }
      ++touched;
    }
  } else {
    counters_.inc("miss");
  }
  return result;
}

VecId ApproxCache::insert(FeatureVec feature, Label label, float confidence,
                          SimTime now, EntryOrigin origin,
                          std::uint8_t hop_count,
                          std::uint32_t source_device) {
  assert(feature.size() == dim_);
  while (entries_.size() >= config_.capacity) {
    evict_one(now);
  }
  const VecId id = next_id_++;
  CacheEntry entry;
  entry.id = id;
  entry.feature = std::move(feature);
  entry.label = label;
  entry.confidence = confidence;
  entry.insert_time = now;
  entry.last_access = now;
  entry.origin = origin;
  entry.hop_count = hop_count;
  entry.source_device = source_device;
  index_->insert(id, entry.feature);
  entries_.emplace(id, std::move(entry));
  counters_.inc("insert");
  return id;
}

bool ApproxCache::remove(VecId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  index_->remove(id);
  entries_.erase(it);
  return true;
}

const CacheEntry* ApproxCache::find(VecId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<float> ApproxCache::nearest_distance(
    std::span<const float> q) const {
  const auto neighbors = index_->query(q, 1);
  if (neighbors.empty()) return std::nullopt;
  return neighbors.front().distance;
}

std::optional<HknnVote> ApproxCache::peek_vote(std::span<const float> q,
                                               float threshold_scale) const {
  const auto neighbors = index_->query(q, config_.hknn.k);
  HknnParams params = config_.hknn;
  params.max_distance *= threshold_scale;
  return hknn_vote(
      neighbors, [this](VecId id) { return entries_.at(id).label; }, params);
}

void ApproxCache::for_each(
    const std::function<void(const CacheEntry&)>& fn) const {
  for (const auto& [_, entry] : entries_) fn(entry);
}

std::vector<const CacheEntry*> ApproxCache::entries_since(SimTime since) const {
  std::vector<const CacheEntry*> out;
  for (const auto& [_, entry] : entries_) {
    if (entry.insert_time >= since) out.push_back(&entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->insert_time < b->insert_time ||
                     (a->insert_time == b->insert_time && a->id < b->id);
            });
  return out;
}

VecId ApproxCache::evict_one(SimTime now) {
  assert(!entries_.empty());
  VecId victim = 0;
  double worst = std::numeric_limits<double>::max();
  for (const auto& [id, entry] : entries_) {
    const double s = eviction_->score(entry, now);
    if (s < worst || (s == worst && id < victim)) {
      worst = s;
      victim = id;
    }
  }
  index_->remove(victim);
  entries_.erase(victim);
  counters_.inc("evict");
  return victim;
}

}  // namespace apx

#include "src/cache/approx_cache.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "src/obs/frame_trace.hpp"
#include "src/obs/metrics.hpp"

namespace apx {

ApproxCache::ApproxCache(std::size_t dim, const ApproxCacheConfig& config,
                         std::unique_ptr<EvictionPolicy> eviction)
    : dim_(dim),
      config_(config),
      quantized_scan_(config.index == IndexKind::kQalsh
                          ? config.qalsh.quantize.enabled
                          : (config.alsh.lsh.quantize.enabled &&
                             config.index != IndexKind::kExact)),
      eviction_(std::move(eviction)),
      index_(make_index(config.index, dim, config.alsh, config.qalsh)),
      label_of_([this](VecId id) { return entries_.at(id).label; }) {
  if (dim == 0 || config.capacity == 0 || eviction_ == nullptr) {
    throw std::invalid_argument("ApproxCache: bad configuration");
  }
}

SimDuration ApproxCache::simulated_latency(
    std::size_t candidates, std::size_t survivors) const noexcept {
  // Fixed overhead + one distance per candidate. The quantized scan pays a
  // quarter of the per-candidate cost (uint8 rows quarter the memory
  // traffic) plus the full cost for each exactly re-ranked survivor.
  if (quantized_scan_) {
    return config_.lookup_base_latency +
           static_cast<SimDuration>(candidates) *
               config_.per_candidate_latency / 4 +
           static_cast<SimDuration>(survivors) *
               config_.per_candidate_latency;
  }
  return config_.lookup_base_latency +
         static_cast<SimDuration>(candidates) *
             config_.per_candidate_latency;
}

HknnParams ApproxCache::effective_params(
    float threshold_scale, std::size_t k_override) const noexcept {
  HknnParams params = config_.hknn;
  params.max_distance *= threshold_scale;
  if (k_override != 0) params.k = k_override;
  return params;
}

CacheResult ApproxCache::lookup(const CacheQuery& q) {
  if (q.count != 1) {
    throw std::invalid_argument(
        "ApproxCache::lookup: single-frame path (use lookup_batch)");
  }
  assert(q.features.size() == dim_);
  std::unique_lock lock(mu_);
  CacheResult result;
  const std::size_t k = q.k_override != 0 ? q.k_override : config_.hknn.k;
  QueryStats st;
  index_->query_into(q.features, k, neighbor_scratch_, &st);
  const std::vector<Neighbor>& neighbors = neighbor_scratch_;

  result.candidates = st.candidates;
  result.latency = simulated_latency(st.candidates, st.rerank_survivors);

  const float nearest =
      neighbors.empty() ? -1.0f : neighbors.front().distance;
  if (q.trace != nullptr) {
    q.trace->annotate_lookup(static_cast<std::uint32_t>(st.candidates),
                             nearest);
    if (quantized_scan_) {
      q.trace->annotate_rerank(
          static_cast<std::uint32_t>(st.rerank_survivors));
    }
    if (st.rounds > 0) {
      q.trace->annotate_rounds(static_cast<std::uint32_t>(st.rounds));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->record(lookup_us_hist_, static_cast<double>(result.latency));
    if (nearest >= 0.0f) {
      metrics_->record(nearest_distance_hist_,
                       static_cast<double>(nearest));
    }
  }

  result.vote = hknn_vote(neighbors, label_of_,
                          effective_params(q.threshold_scale, q.k_override));

  if (result.vote.has_value()) {
    counters_.inc("hit");
    // Touch every voter so eviction sees their usefulness.
    std::size_t touched = 0;
    for (const Neighbor& n : neighbors) {
      if (touched >= result.vote->voters) break;
      auto it = entries_.find(n.id);
      if (it != entries_.end()) {
        it->second.last_access = q.now;
        ++it->second.access_count;
      }
      ++touched;
    }
  } else {
    counters_.inc("miss");
  }
  return result;
}

void ApproxCache::lookup_batch(const CacheQuery& q,
                               std::span<CacheResult> results,
                               CacheQueryScratch& scratch) const {
  if (q.count == 0) return;
  if (q.features.size() != q.count * dim_ || results.size() < q.count) {
    throw std::invalid_argument("ApproxCache::lookup_batch: bad sizes");
  }
  std::shared_lock lock(mu_);
  const std::size_t k = q.k_override != 0 ? q.k_override : config_.hknn.k;
  const HknnParams params =
      effective_params(q.threshold_scale, q.k_override);

  if (scratch.results_.size() < q.count) scratch.results_.resize(q.count);
  if (scratch.stats_.size() < q.count) scratch.stats_.resize(q.count);
  index_->query_batch_into(q.features, q.count, k, scratch.index_scratch_.get(),
                           {scratch.results_.data(), q.count},
                           scratch.stats_.data());

  for (std::size_t b = 0; b < q.count; ++b) {
    const std::vector<Neighbor>& neighbors = scratch.results_[b];
    const QueryStats& st = scratch.stats_[b];
    CacheResult r;
    r.candidates = st.candidates;
    r.latency = simulated_latency(st.candidates, st.rerank_survivors);
    r.vote = hknn_vote(neighbors, label_of_, params);
    if (q.trace != nullptr && q.count == 1) {
      q.trace->annotate_lookup(
          static_cast<std::uint32_t>(st.candidates),
          neighbors.empty() ? -1.0f : neighbors.front().distance);
      if (quantized_scan_) {
        q.trace->annotate_rerank(
            static_cast<std::uint32_t>(st.rerank_survivors));
      }
      if (st.rounds > 0) {
        q.trace->annotate_rounds(static_cast<std::uint32_t>(st.rounds));
      }
    }
    ++scratch.lookups_;
    if (r.vote.has_value()) {
      ++scratch.hits_;
      // Defer voter touches to the next fold (bounded buffer: overflow is
      // dropped — recency is an eviction heuristic, not correctness).
      std::size_t touched = 0;
      for (const Neighbor& n : neighbors) {
        if (touched >= r.vote->voters) break;
        if (scratch.touches_.size() < CacheQueryScratch::kMaxTouches) {
          scratch.touches_.push_back({n.id, q.now});
        }
        ++touched;
      }
    } else {
      ++scratch.misses_;
    }
    if (!neighbors.empty() &&
        scratch.dk_samples_.size() < CacheQueryScratch::kMaxDkSamples) {
      // The farthest distance this query actually needed — the A-LSH width
      // controller's food, applied at fold time.
      scratch.dk_samples_.push_back(neighbors.back().distance);
    }
    results[b] = std::move(r);
  }
}

CacheQueryScratch ApproxCache::make_scratch() const {
  CacheQueryScratch scratch;
  std::shared_lock lock(mu_);
  scratch.index_scratch_ = index_->make_scratch();
  return scratch;
}

void ApproxCache::fold_scratch(CacheQueryScratch& scratch) {
  std::unique_lock lock(mu_);
  for (const CacheQueryScratch::Touch& t : scratch.touches_) {
    auto it = entries_.find(t.id);
    if (it != entries_.end()) {
      it->second.last_access = t.now;
      ++it->second.access_count;
    }
  }
  if (scratch.hits_ > 0) counters_.inc("hit", scratch.hits_);
  if (scratch.misses_ > 0) counters_.inc("miss", scratch.misses_);
  index_->observe_query_feedback(scratch.dk_samples_, scratch.lookups_);
  scratch.touches_.clear();
  scratch.dk_samples_.clear();
  scratch.lookups_ = 0;
  scratch.hits_ = 0;
  scratch.misses_ = 0;
}

VecId ApproxCache::insert(FeatureVec feature, Label label, float confidence,
                          SimTime now, EntryOrigin origin,
                          std::uint8_t hop_count,
                          std::uint32_t source_device) {
  assert(feature.size() == dim_);
  std::unique_lock lock(mu_);
  while (entries_.size() >= config_.capacity) {
    evict_one(now);
  }
  const VecId id = next_id_++;
  CacheEntry entry;
  entry.id = id;
  entry.feature = std::move(feature);
  entry.label = label;
  entry.confidence = confidence;
  entry.insert_time = now;
  entry.last_access = now;
  entry.origin = origin;
  entry.hop_count = hop_count;
  entry.source_device = source_device;
  index_->insert(id, entry.feature);
  entries_.emplace(id, std::move(entry));
  counters_.inc("insert");
  update_memory_gauges();
  return id;
}

bool ApproxCache::remove(VecId id) {
  std::unique_lock lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  index_->remove(id);
  entries_.erase(it);
  update_memory_gauges();
  return true;
}

void ApproxCache::clear() {
  std::unique_lock lock(mu_);
  for (const auto& [id, _] : entries_) index_->remove(id);
  entries_.clear();
  counters_.inc("clear");
  update_memory_gauges();
}

const CacheEntry* ApproxCache::find(VecId id) const {
  std::shared_lock lock(mu_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<float> ApproxCache::nearest_distance(
    std::span<const float> q) const {
  std::unique_lock lock(mu_);
  index_->query_into(q, 1, neighbor_scratch_);
  if (neighbor_scratch_.empty()) return std::nullopt;
  return neighbor_scratch_.front().distance;
}

std::optional<HknnVote> ApproxCache::peek_vote(const CacheQuery& q) const {
  if (q.count != 1) {
    throw std::invalid_argument(
        "ApproxCache::peek_vote: single-frame path");
  }
  std::unique_lock lock(mu_);
  index_->query_into(q.features, config_.hknn.k, neighbor_scratch_);
  return hknn_vote(neighbor_scratch_, label_of_,
                   effective_params(q.threshold_scale, q.k_override));
}

void ApproxCache::for_each(
    const std::function<void(const CacheEntry&)>& fn) const {
  std::shared_lock lock(mu_);
  for (const auto& [_, entry] : entries_) fn(entry);
}

std::vector<CacheEntry> ApproxCache::entries_since(SimTime since) const {
  std::shared_lock lock(mu_);
  std::vector<CacheEntry> out;
  for (const auto& [_, entry] : entries_) {
    if (entry.insert_time >= since) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheEntry& a, const CacheEntry& b) {
              return a.insert_time < b.insert_time ||
                     (a.insert_time == b.insert_time && a.id < b.id);
            });
  return out;
}

std::size_t ApproxCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

void ApproxCache::attach_metrics(MetricsRegistry& metrics) {
  std::unique_lock lock(mu_);
  metrics_ = &metrics;
  lookup_us_hist_ = metrics.histogram("cache/lookup_us", latency_us_bounds());
  nearest_distance_hist_ =
      metrics.histogram("cache/nearest_distance", distance_bounds());
  // Pre-register the counters the runner later copies from the legacy
  // Counter map, so exports carry them (as zeros) even in empty runs and
  // the JSON schema stays stable.
  metrics.counter("cache/hit");
  metrics.counter("cache/miss");
  metrics.counter("cache/insert");
  metrics.counter("cache/evict");
  if (quantized_scan_) {
    // Pre-register the feature-memory gauges so the "quantized" schema
    // subsystem exports whole (all-or-nothing) even before any insert.
    metrics.counter("cache/bytes_float");
    metrics.counter("cache/bytes_codes");
  }
  index_->attach_metrics(metrics);
}

void ApproxCache::update_memory_gauges() {
  if (!quantized_scan_) return;
  // Per entry: dim float32s in the float arena vs dim uint8 codes plus
  // three float32 ADC terms (offset, scale, |recon|^2) in the sidecar.
  const std::uint64_t n = entries_.size();
  counters_.set("bytes_float", n * dim_ * sizeof(float));
  counters_.set("bytes_codes", n * (dim_ + 3 * sizeof(float)));
}

VecId ApproxCache::evict_one(SimTime now) {
  assert(!entries_.empty());
  VecId victim = 0;
  double worst = std::numeric_limits<double>::max();
  for (const auto& [id, entry] : entries_) {
    const double s = eviction_->score(entry, now);
    if (s < worst || (s == worst && id < victim)) {
      worst = s;
      victim = id;
    }
  }
  index_->remove(victim);
  entries_.erase(victim);
  counters_.inc("evict");
  return victim;
}

}  // namespace apx

#pragma once
// Cache entry: one previously computed recognition result keyed by its
// feature vector, with the provenance metadata the eviction and P2P layers
// need (origin, hop count, age, access history).

#include <cstdint>

#include "src/ann/index.hpp"
#include "src/dnn/model.hpp"
#include "src/util/clock.hpp"

namespace apx {

/// Where an entry came from.
enum class EntryOrigin : std::uint8_t {
  kLocal = 0,  ///< computed by this device's own DNN
  kPeer = 1,   ///< received from a nearby device
};

/// One cached (feature -> label) pair.
struct CacheEntry {
  VecId id = 0;
  FeatureVec feature;
  Label label = kNoLabel;
  float confidence = 0.0f;
  SimTime insert_time = 0;
  SimTime last_access = 0;
  std::uint32_t access_count = 0;
  EntryOrigin origin = EntryOrigin::kLocal;
  std::uint8_t hop_count = 0;      ///< 0 = local, 1 = direct peer, ...
  std::uint32_t source_device = 0; ///< device that computed the result
};

}  // namespace apx

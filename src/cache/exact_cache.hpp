#pragma once
// Exact-match cache baseline: features are quantized onto a coarse grid and
// looked up by hash equality. This is what a conventional memoization cache
// does for image recognition — and why it barely ever hits on live camera
// input (sensor noise perturbs every dimension). Kept as the paper-style
// baseline that motivates *approximate* caching.

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "src/dnn/model.hpp"
#include "src/util/clock.hpp"
#include "src/util/stats.hpp"
#include "src/util/vecmath.hpp"

namespace apx {

/// LRU hash cache over quantized feature vectors.
class ExactCache {
 public:
  /// `quant_steps`: grid resolution per dimension; higher = stricter match.
  /// The default (256) reflects what float-hash memoization effectively is:
  /// any visible sensor noise breaks the key.
  ExactCache(std::size_t capacity, float quant_steps = 256.0f,
             SimDuration lookup_latency = 100 /* 0.1 ms */);

  /// Returns the cached label on an exact quantized match.
  std::optional<Label> lookup(std::span<const float> q);

  /// Memoizes `label` under the quantized key of `q` (LRU eviction).
  void insert(std::span<const float> q, Label label);

  SimDuration lookup_latency() const noexcept { return lookup_latency_; }
  std::size_t size() const noexcept { return map_.size(); }
  const Counter& counters() const noexcept { return counters_; }

 private:
  std::uint64_t key_of(std::span<const float> q) const;

  std::size_t capacity_;
  float quant_steps_;
  SimDuration lookup_latency_;
  // LRU list of keys, most recent at front; map values hold list iterators.
  std::list<std::uint64_t> lru_;
  struct Slot {
    Label label;
    std::list<std::uint64_t>::iterator lru_it;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
  Counter counters_;
};

}  // namespace apx

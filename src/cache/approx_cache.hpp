#pragma once
// The approximate in-memory cache — the data structure at the centre of the
// poster. Keys are feature vectors; a lookup is an approximate-nearest-
// neighbour query followed by a homogenized-kNN vote, so "equal enough"
// inputs reuse previous recognition results.

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ann/factory.hpp"
#include "src/ann/hknn.hpp"
#include "src/ann/index.hpp"
#include "src/cache/entry.hpp"
#include "src/cache/eviction.hpp"
#include "src/util/stats.hpp"

namespace apx {

class FrameTrace;
class MetricsRegistry;

/// Cache configuration.
struct ApproxCacheConfig {
  std::size_t capacity = 512;
  IndexKind index = IndexKind::kAdaptiveLsh;
  AdaptiveLshParams alsh;       ///< used by kLsh (inner) and kAdaptiveLsh
  HknnParams hknn;
  /// Simulated cost model of one lookup on the device: a fixed overhead
  /// plus a per-candidate distance computation cost.
  SimDuration lookup_base_latency = 300;     // 0.3 ms
  SimDuration per_candidate_latency = 2;     // 2 us per distance
};

/// Per-call knobs for lookup()/peek_vote(). Designed for designated
/// initializers at call sites: `cache.lookup(q, now, {.threshold_scale = s})`.
struct LookupOptions {
  /// Scales HknnParams::max_distance for this call only — the hook the IMU
  /// motion gate uses (stationary devices accept slightly farther matches,
  /// §5.4).
  float threshold_scale = 1.0f;
  /// When non-zero, overrides HknnParams::k for this call.
  std::size_t k_override = 0;
  /// When set, the open span of this trace is annotated with the candidate
  /// count and nearest-neighbour distance of the lookup.
  FrameTrace* trace = nullptr;
};

/// Outcome of one cache lookup.
struct CacheLookupResult {
  std::optional<HknnVote> vote;   ///< accepted result, or abstention
  SimDuration latency = 0;        ///< simulated device time spent
  std::size_t candidates = 0;     ///< vectors whose distance was computed
};

/// Approximate cache mapping feature vectors to recognition labels.
///
/// Not thread-safe: each simulated device owns one instance and the
/// simulation is single-threaded by design (DESIGN.md §5.7).
class ApproxCache {
 public:
  ApproxCache(std::size_t dim, const ApproxCacheConfig& config,
              std::unique_ptr<EvictionPolicy> eviction);

  /// Looks up `q`. Accessed entries are touched. Steady-state calls perform
  /// zero heap allocations (neighbour scratch and index scratch are reused).
  CacheLookupResult lookup(std::span<const float> q, SimTime now,
                           const LookupOptions& opts = {});

  /// Inserts a new entry, evicting first when full. Returns the new id.
  VecId insert(FeatureVec feature, Label label, float confidence, SimTime now,
               EntryOrigin origin = EntryOrigin::kLocal,
               std::uint8_t hop_count = 0, std::uint32_t source_device = 0);

  /// Removes an entry; returns whether it existed.
  bool remove(VecId id);

  /// Removes every entry (simulated process crash / app data wipe). Ids are
  /// not reused: the id counter keeps running, so snapshots and provenance
  /// from before the wipe can never alias fresh entries.
  void clear();

  /// Entry access (nullptr when absent). Pointer invalidated by mutation.
  const CacheEntry* find(VecId id) const;

  /// Distance from `q` to its nearest cached neighbour via the index
  /// (nullopt when empty) — used by the P2P layer to dedupe merges.
  std::optional<float> nearest_distance(std::span<const float> q) const;

  /// Hypothetical vote with NO side effects: no counter updates, no entry
  /// touches, no metrics. Used by the adaptive threshold controller to ask
  /// "would the cache have answered, and what?" on frames where the DNN ran
  /// anyway.
  std::optional<HknnVote> peek_vote(std::span<const float> q,
                                    const LookupOptions& opts = {}) const;

  /// Calls `fn` for every entry (unspecified order).
  void for_each(const std::function<void(const CacheEntry&)>& fn) const;

  /// Entries inserted at or after `since`, newest last — the P2P
  /// advertisement source. Returns copies: callers iterate this while
  /// inserting into (possibly the same) cache, which rehashes `entries_`
  /// and would invalidate any pointer/reference into it.
  std::vector<CacheEntry> entries_since(SimTime since) const;

  /// Registers this cache's instruments ("cache/lookup_us",
  /// "cache/nearest_distance", hit/miss/insert/evict counters) and the
  /// backing index's, on `metrics`. The registry must outlive the cache.
  void attach_metrics(MetricsRegistry& metrics);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return config_.capacity; }
  std::size_t dim() const noexcept { return dim_; }
  const ApproxCacheConfig& config() const noexcept { return config_; }
  const EvictionPolicy& eviction() const noexcept { return *eviction_; }

  /// The backing ANN index (read-only; for tests and diagnostics).
  const NnIndex& index() const noexcept { return *index_; }

  /// Whether the backing index scans candidates on SQ8 codes.
  bool quantized_scan() const noexcept { return quantized_scan_; }

  /// Lifetime counters: "hit", "miss", "insert", "evict", "merge_dup",
  /// plus the "bytes_float"/"bytes_codes" feature-memory gauges when the
  /// quantized scan is active.
  const Counter& counters() const noexcept { return counters_; }
  Counter& counters() noexcept { return counters_; }

 private:
  VecId evict_one(SimTime now);
  /// Refreshes the "bytes_float"/"bytes_codes" gauges (quantized scan only).
  void update_memory_gauges();

  std::size_t dim_;
  ApproxCacheConfig config_;
  bool quantized_scan_ = false;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::unique_ptr<NnIndex> index_;
  std::unordered_map<VecId, CacheEntry> entries_;
  VecId next_id_ = 1;
  Counter counters_;
  /// Constructed once (single this-pointer capture fits std::function's
  /// small-buffer storage) so votes never rebuild a closure per lookup.
  std::function<Label(VecId)> label_of_;
  mutable std::vector<Neighbor> neighbor_scratch_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t lookup_us_hist_ = 0;
  std::uint32_t nearest_distance_hist_ = 0;
};

}  // namespace apx

#pragma once
// The approximate in-memory cache — the data structure at the centre of the
// poster. Keys are feature vectors; a lookup is an approximate-nearest-
// neighbour query followed by a homogenized-kNN vote, so "equal enough"
// inputs reuse previous recognition results.
//
// Thread-safety contract (DESIGN.md §9). One instance may be shared by many
// threads; a reader-writer lock splits the surface in two:
//
//  shared path — wait-free against each other, all per-call mutable state
//  lives in a caller-owned CacheQueryScratch (one per thread):
//    lookup_batch()           the serving-scale hot path
//    find(), for_each(), entries_since(), size(), nearest-neighbour reads
//      of config()/dim()/capacity() (immutable after construction)
//
//  exclusive path — internally serialized, safe to call from any thread but
//  one at a time; mutates entries, counters, index arenas, or the
//  index-owned query scratch:
//    lookup(), peek_vote(), nearest_distance()   (legacy/simulation path:
//      drives the A-LSH width controller and the index-owned scratch)
//    insert(), remove(), clear(), fold_scratch()
//    attach_metrics()  (call before any concurrent use; the registry itself
//      is not thread-safe, so metrics recording stays on exclusive paths)
//    counters()        (the non-const overload, and any read that races a
//      writer — take an external quiescent point for exact counter reads)
//
// Pointers returned by find() and references observed inside for_each() are
// invalidated by the next exclusive-path mutation; for_each's callback must
// not call exclusive-path methods on the same cache (the lock is not
// recursive).

#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/ann/factory.hpp"
#include "src/ann/hknn.hpp"
#include "src/ann/index.hpp"
#include "src/cache/entry.hpp"
#include "src/cache/eviction.hpp"
#include "src/util/stats.hpp"

namespace apx {

class FrameTrace;
class MetricsRegistry;

/// Cache configuration.
struct ApproxCacheConfig {
  std::size_t capacity = 512;
  IndexKind index = IndexKind::kAdaptiveLsh;
  AdaptiveLshParams alsh;       ///< used by kLsh (inner) and kAdaptiveLsh
  QalshParams qalsh;            ///< used by kQalsh only
  HknnParams hknn;
  /// Simulated cost model of one lookup on the device: a fixed overhead
  /// plus a per-candidate distance computation cost.
  SimDuration lookup_base_latency = 300;     // 0.3 ms
  SimDuration per_candidate_latency = 2;     // 2 us per distance
};

/// One cache request: the query data plus every per-call knob. Designed for
/// designated initializers at call sites:
///   cache.lookup({.features = key, .now = t, .threshold_scale = s});
/// The batched path packs `count` frames row-major into `features`
/// (count * dim floats) and answers through lookup_batch().
struct CacheQuery {
  /// `count` dim-sized feature vectors, row-major.
  std::span<const float> features;
  /// Frames in this request. lookup()/peek_vote() require 1.
  std::size_t count = 1;
  /// Device time of the request (entry touches, eviction recency).
  SimTime now = 0;
  /// Scales HknnParams::max_distance for this call only — the hook the IMU
  /// motion gate uses (stationary devices accept slightly farther matches,
  /// §5.4).
  float threshold_scale = 1.0f;
  /// When non-zero, overrides HknnParams::k for this call.
  std::size_t k_override = 0;
  /// When set (single-frame requests), the open span of this trace is
  /// annotated with the candidate count and nearest-neighbour distance.
  FrameTrace* trace = nullptr;
};

/// Outcome of one cache lookup.
struct CacheResult {
  std::optional<HknnVote> vote;   ///< accepted result, or abstention
  SimDuration latency = 0;        ///< simulated device time spent
  std::size_t candidates = 0;     ///< vectors whose distance was computed
};

/// Per-thread working set for lookup_batch(): the index scratch, neighbour
/// buffers, and the side effects a read-only lookup must defer — entry
/// touches, hit/miss tallies, A-LSH width-controller samples. Obtain one
/// per querying thread from ApproxCache::make_scratch(); hand it back
/// periodically via ApproxCache::fold_scratch() so eviction recency,
/// counters, and index adaptation catch up with the read traffic. Buffers
/// grow to their high-water mark and are reused, so steady-state batched
/// lookups perform zero heap allocations. The deferred-side-effect buffers
/// are bounded (kMaxTouches/kMaxDkSamples): between folds, overflowing
/// touches and d_k samples are dropped — both feed heuristics (eviction
/// recency, width adaptation), not correctness.
class CacheQueryScratch {
 public:
  CacheQueryScratch() = default;

  /// Batched lookups answered since the last fold.
  std::uint64_t pending_lookups() const noexcept { return lookups_; }
  /// Accepted votes since the last fold.
  std::uint64_t pending_hits() const noexcept { return hits_; }

 private:
  friend class ApproxCache;

  static constexpr std::size_t kMaxTouches = 4096;
  static constexpr std::size_t kMaxDkSamples = 1024;

  struct Touch {
    VecId id = 0;
    SimTime now = 0;
  };

  std::unique_ptr<IndexScratch> index_scratch_;
  std::vector<std::vector<Neighbor>> results_;  // per-frame neighbour lists
  std::vector<QueryStats> stats_;               // per-frame work accounting
  std::vector<Touch> touches_;                  // deferred voter touches
  std::vector<float> dk_samples_;               // deferred A-LSH feedback
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Approximate cache mapping feature vectors to recognition labels.
///
/// Shareable across threads — see the thread-safety contract in the file
/// comment. The legacy simulation remains single-threaded per device; its
/// uncontended lock acquisitions cost nanoseconds against sub-millisecond
/// lookups.
class ApproxCache {
 public:
  ApproxCache(std::size_t dim, const ApproxCacheConfig& config,
              std::unique_ptr<EvictionPolicy> eviction);

  /// Looks up the single frame in `q`. Accessed entries are touched, hit/
  /// miss counters updated, and the A-LSH width controller fed — the
  /// exclusive path. Steady-state calls perform zero heap allocations
  /// (neighbour scratch and index scratch are reused). Throws
  /// std::invalid_argument when q.count != 1.
  CacheResult lookup(const CacheQuery& q);

  /// Answers the `q.count` frames packed in `q.features` into
  /// `results[0..count)`, amortizing hashing and candidate scoring across
  /// the batch. This is the *shared* path: any number of threads may call
  /// it concurrently, each with its own `scratch` from make_scratch().
  /// Touches, hit/miss tallies, and width-controller feedback are deferred
  /// into the scratch (bounded; see CacheQueryScratch) until the caller
  /// folds them back with fold_scratch(); per-lookup metrics histograms are
  /// not recorded on this path. q.trace is honoured for single-frame
  /// batches (the trace object is caller-owned thread-local state).
  void lookup_batch(const CacheQuery& q, std::span<CacheResult> results,
                    CacheQueryScratch& scratch) const;

  /// Creates a per-thread scratch for lookup_batch(). The scratch must not
  /// outlive the cache.
  CacheQueryScratch make_scratch() const;

  /// Applies a scratch's deferred side effects under the write lock: entry
  /// touches (eviction recency), hit/miss counters, and the A-LSH width
  /// controller feed (which may trigger a rebuild). Clears the scratch's
  /// pending state; the scratch remains usable for further batches.
  void fold_scratch(CacheQueryScratch& scratch);

  /// Inserts a new entry, evicting first when full. Returns the new id.
  VecId insert(FeatureVec feature, Label label, float confidence, SimTime now,
               EntryOrigin origin = EntryOrigin::kLocal,
               std::uint8_t hop_count = 0, std::uint32_t source_device = 0);

  /// Removes an entry; returns whether it existed.
  bool remove(VecId id);

  /// Removes every entry (simulated process crash / app data wipe). Ids are
  /// not reused: the id counter keeps running, so snapshots and provenance
  /// from before the wipe can never alias fresh entries.
  void clear();

  /// Entry access (nullptr when absent). Pointer invalidated by the next
  /// exclusive-path mutation.
  const CacheEntry* find(VecId id) const;

  /// Distance from `q` to its nearest cached neighbour via the index
  /// (nullopt when empty) — used by the P2P layer to dedupe merges.
  /// Exclusive path (index-owned scratch, A-LSH controller feed).
  std::optional<float> nearest_distance(std::span<const float> q) const;

  /// Hypothetical vote with NO observable side effects: no counter updates,
  /// no entry touches, no metrics. Used by the adaptive threshold
  /// controller to ask "would the cache have answered, and what?" on frames
  /// where the DNN ran anyway. Exclusive path: it shares the index-owned
  /// query scratch and feeds the A-LSH width controller. Only q.features
  /// (single frame), q.threshold_scale and q.k_override participate.
  std::optional<HknnVote> peek_vote(const CacheQuery& q) const;

  /// Calls `fn` for every entry (unspecified order). `fn` must not call
  /// exclusive-path methods on this cache (non-recursive lock).
  void for_each(const std::function<void(const CacheEntry&)>& fn) const;

  /// Entries inserted at or after `since`, newest last — the P2P
  /// advertisement source. Returns copies: callers iterate this while
  /// inserting into (possibly the same) cache, which rehashes `entries_`
  /// and would invalidate any pointer/reference into it.
  std::vector<CacheEntry> entries_since(SimTime since) const;

  /// Registers this cache's instruments ("cache/lookup_us",
  /// "cache/nearest_distance", hit/miss/insert/evict counters) and the
  /// backing index's, on `metrics`. The registry must outlive the cache.
  /// Call before any concurrent use.
  void attach_metrics(MetricsRegistry& metrics);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return config_.capacity; }
  std::size_t dim() const noexcept { return dim_; }
  const ApproxCacheConfig& config() const noexcept { return config_; }
  const EvictionPolicy& eviction() const noexcept { return *eviction_; }

  /// The backing ANN index (read-only; for tests and diagnostics).
  const NnIndex& index() const noexcept { return *index_; }

  /// Whether the backing index scans candidates on SQ8 codes.
  bool quantized_scan() const noexcept { return quantized_scan_; }

  /// Lifetime counters: "hit", "miss", "insert", "evict", "merge_dup",
  /// plus the "bytes_float"/"bytes_codes" feature-memory gauges when the
  /// quantized scan is active. Batched-path hits/misses land here at
  /// fold_scratch() time. Reading while writers or folds run elsewhere is
  /// racy; take a quiescent point for exact values.
  const Counter& counters() const noexcept { return counters_; }
  Counter& counters() noexcept { return counters_; }

 private:
  VecId evict_one(SimTime now);
  /// Refreshes the "bytes_float"/"bytes_codes" gauges (quantized scan only).
  void update_memory_gauges();
  /// Simulated device cost of a lookup that computed `candidates` distances
  /// (quantized scan: on codes, plus `survivors` exact re-ranks).
  SimDuration simulated_latency(std::size_t candidates,
                                std::size_t survivors) const noexcept;
  /// Shared vote logic: H-kNN params for this request.
  HknnParams effective_params(float threshold_scale,
                              std::size_t k_override) const noexcept;

  std::size_t dim_;
  ApproxCacheConfig config_;
  bool quantized_scan_ = false;
  std::unique_ptr<EvictionPolicy> eviction_;
  std::unique_ptr<NnIndex> index_;
  std::unordered_map<VecId, CacheEntry> entries_;
  VecId next_id_ = 1;
  Counter counters_;
  /// Constructed once (single this-pointer capture fits std::function's
  /// small-buffer storage) so votes never rebuild a closure per lookup.
  std::function<Label(VecId)> label_of_;
  mutable std::vector<Neighbor> neighbor_scratch_;
  MetricsRegistry* metrics_ = nullptr;
  std::uint32_t lookup_us_hist_ = 0;
  std::uint32_t nearest_distance_hist_ = 0;
  /// Reader-writer split: shared for lookup_batch/find/for_each/
  /// entries_since/size, exclusive for everything that mutates (see file
  /// comment). mutable so const read methods can lock.
  mutable std::shared_mutex mu_;
};

}  // namespace apx

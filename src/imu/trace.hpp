#pragma once
// Synthetic IMU (accelerometer + gyroscope) trace generation, driven by a
// MobilityModel. Substitutes for real sensors (DESIGN.md §4): per-state
// signal variances are calibrated to published smartphone IMU magnitudes
// (gravity 9.81 m/s^2, stationary sensor noise ~0.05 m/s^2, walking
// ~0.5-1 m/s^2 RMS, vehicle/fast pan several m/s^2).

#include <array>
#include <vector>

#include "src/imu/mobility.hpp"

namespace apx {

/// One 6-axis IMU reading.
struct ImuSample {
  SimTime t = 0;
  std::array<float, 3> accel{};  ///< m/s^2, includes gravity on z
  std::array<float, 3> gyro{};   ///< rad/s
};

/// Streams IMU samples at a fixed rate along a mobility timeline.
class ImuTraceGenerator {
 public:
  /// `rate_hz` is the sampling rate (phones: 50-200 Hz).
  ImuTraceGenerator(const MobilityModel& mobility, double rate_hz,
                    std::uint64_t seed);

  /// Returns all samples with t in [from, to), advancing internal state.
  /// Calls must pass non-overlapping, increasing windows.
  std::vector<ImuSample> samples_between(SimTime from, SimTime to);

  SimDuration sample_period() const noexcept { return period_; }

 private:
  ImuSample sample_at(SimTime t);

  const MobilityModel* mobility_;
  SimDuration period_;
  SimTime next_t_ = 0;
  Rng rng_;
};

}  // namespace apx

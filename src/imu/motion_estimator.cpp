#include "src/imu/motion_estimator.hpp"

#include <cmath>

namespace apx {
namespace {

constexpr float kGravity = 9.81f;

float rms(const RingBuffer<float>& window) {
  if (window.empty()) return 0.0f;
  float sum_sq = 0.0f;
  for (std::size_t i = 0; i < window.size(); ++i) {
    sum_sq += window[i] * window[i];
  }
  return std::sqrt(sum_sq / static_cast<float>(window.size()));
}

}  // namespace

MotionEstimator::MotionEstimator(const MotionEstimatorParams& params)
    : params_(params),
      accel_dev_(params.window == 0 ? 1 : params.window),
      gyro_mag_(params.window == 0 ? 1 : params.window) {}

void MotionEstimator::add(const ImuSample& sample) {
  const float accel_mag =
      std::sqrt(sample.accel[0] * sample.accel[0] +
                sample.accel[1] * sample.accel[1] +
                sample.accel[2] * sample.accel[2]);
  accel_dev_.push(std::abs(accel_mag - kGravity));
  gyro_mag_.push(std::sqrt(sample.gyro[0] * sample.gyro[0] +
                           sample.gyro[1] * sample.gyro[1] +
                           sample.gyro[2] * sample.gyro[2]));
}

void MotionEstimator::add_all(const std::vector<ImuSample>& samples) {
  for (const auto& s : samples) add(s);
}

float MotionEstimator::accel_rms() const { return rms(accel_dev_); }
float MotionEstimator::gyro_rms() const { return rms(gyro_mag_); }

MotionState MotionEstimator::estimate() const {
  if (accel_dev_.empty()) return MotionState::kMajor;
  const float a = accel_rms();
  const float g = gyro_rms();
  if (a >= params_.accel_major_threshold ||
      g >= params_.gyro_major_threshold) {
    return MotionState::kMajor;
  }
  if (a >= params_.accel_minor_threshold ||
      g >= params_.gyro_minor_threshold) {
    return MotionState::kMinor;
  }
  return MotionState::kStationary;
}

}  // namespace apx

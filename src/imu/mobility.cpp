#include "src/imu/mobility.hpp"

#include <algorithm>
#include <stdexcept>

namespace apx {

const char* to_string(MotionState s) noexcept {
  switch (s) {
    case MotionState::kStationary: return "stationary";
    case MotionState::kMinor: return "minor";
    case MotionState::kMajor: return "major";
  }
  return "?";
}

MobilityModel::MobilityModel(std::vector<MobilitySegment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("MobilityModel: no segments");
  }
  ends_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    if (seg.duration <= 0) {
      throw std::invalid_argument("MobilityModel: non-positive duration");
    }
    total_ += seg.duration;
    ends_.push_back(total_);
  }
}

MobilityModel MobilityModel::random(Rng& rng, SimDuration total,
                                    SimDuration mean_segment,
                                    double p_stationary, double p_minor,
                                    double p_major) {
  if (total <= 0 || mean_segment <= 0) {
    throw std::invalid_argument("MobilityModel::random: bad durations");
  }
  const double weight_sum = p_stationary + p_minor + p_major;
  if (weight_sum <= 0.0) {
    throw std::invalid_argument("MobilityModel::random: bad weights");
  }
  std::vector<MobilitySegment> segments;
  SimDuration elapsed = 0;
  MotionState prev = MotionState::kStationary;
  bool first = true;
  while (elapsed < total) {
    MotionState state;
    do {
      const double u = rng.uniform() * weight_sum;
      state = u < p_stationary ? MotionState::kStationary
              : u < p_stationary + p_minor ? MotionState::kMinor
                                           : MotionState::kMajor;
    } while (!first && state == prev && rng.chance(0.7));  // bias alternation
    first = false;
    prev = state;
    auto duration = static_cast<SimDuration>(
        rng.exponential(1.0 / static_cast<double>(mean_segment)));
    duration = std::clamp<SimDuration>(duration, mean_segment / 4,
                                       mean_segment * 4);
    duration = std::min(duration, total - elapsed);
    if (duration <= 0) break;
    segments.push_back({state, duration});
    elapsed += duration;
  }
  if (segments.empty()) segments.push_back({MotionState::kStationary, total});
  return MobilityModel{std::move(segments)};
}

MobilityModel MobilityModel::constant(MotionState state, SimDuration total) {
  return MobilityModel{{MobilitySegment{state, total}}};
}

MotionState MobilityModel::state_at(SimTime t) const noexcept {
  if (t < 0) return segments_.front().state;
  const auto it = std::upper_bound(ends_.begin(), ends_.end(), t);
  const std::size_t idx = std::min(
      static_cast<std::size_t>(it - ends_.begin()), segments_.size() - 1);
  return segments_[idx].state;
}

double MobilityModel::intensity_of(MotionState s) noexcept {
  switch (s) {
    case MotionState::kStationary: return 0.02;
    case MotionState::kMinor: return 0.30;
    case MotionState::kMajor: return 1.00;
  }
  return 0.0;
}

double MobilityModel::intensity_at(SimTime t) const noexcept {
  return intensity_of(state_at(t));
}

}  // namespace apx

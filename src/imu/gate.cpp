#include "src/imu/gate.hpp"

namespace apx {

GateDecision MotionGate::decide(MotionState state) const noexcept {
  switch (state) {
    case MotionState::kStationary:
      return {true, params_.stationary_scale};
    case MotionState::kMinor:
      return {true, params_.minor_scale};
    case MotionState::kMajor:
      return {false, params_.major_scale};
  }
  return {true, 1.0f};
}

}  // namespace apx
